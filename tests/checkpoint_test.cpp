#include "train/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <fstream>

#include "core/layergcn.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "train/trainer.h"
#include "util/rng.h"

namespace layergcn::train {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, RoundTripsValues) {
  util::Rng rng(1);
  Parameter a("emb", 5, 3);
  Parameter b("weights", 2, 2);
  a.InitXavier(&rng);
  b.InitGaussian(&rng, 0.3f);
  const tensor::Matrix a_orig = a.value;
  const tensor::Matrix b_orig = b.value;

  const std::string path = TempPath("ckpt_roundtrip.bin");
  SaveCheckpoint(path, {&a, &b});
  a.value.Zero();
  b.value.Fill(9.f);
  EXPECT_EQ(LoadCheckpoint(path, {&a, &b}), 2);
  EXPECT_TRUE(a.value.Equals(a_orig));
  EXPECT_TRUE(b.value.Equals(b_orig));
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadByNameIgnoresOrderAndExtras) {
  util::Rng rng(2);
  Parameter a("a", 2, 2), b("b", 3, 1), c("c", 1, 4);
  a.InitXavier(&rng);
  b.InitXavier(&rng);
  c.InitXavier(&rng);
  const std::string path = TempPath("ckpt_order.bin");
  SaveCheckpoint(path, {&a, &b, &c});

  Parameter b2("b", 3, 1), a2("a", 2, 2);  // reversed subset
  EXPECT_EQ(LoadCheckpoint(path, {&b2, &a2}), 2);
  EXPECT_TRUE(a2.value.Equals(a.value));
  EXPECT_TRUE(b2.value.Equals(b.value));
  std::remove(path.c_str());
}

TEST(CheckpointTest, IsCheckpointFileDetects) {
  util::Rng rng(3);
  Parameter p("p", 2, 2);
  p.InitXavier(&rng);
  const std::string good = TempPath("ckpt_good.bin");
  SaveCheckpoint(good, {&p});
  EXPECT_TRUE(IsCheckpointFile(good));

  const std::string bad = TempPath("ckpt_bad.bin");
  {
    std::ofstream out(bad, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_FALSE(IsCheckpointFile(bad));
  EXPECT_FALSE(IsCheckpointFile(TempPath("ckpt_missing.bin")));
  std::remove(good.c_str());
  std::remove(bad.c_str());
}

TEST(CheckpointTest, IsCheckpointFileValidatesHeaderLengthAndVersion) {
  // Magic alone, shorter than a complete header: truncated, not a
  // checkpoint.
  const std::string trunc = TempPath("ckpt_trunc_header.bin");
  {
    std::ofstream out(trunc, std::ios::binary);
    out.write("LGCN\x02", 5);
  }
  EXPECT_FALSE(IsCheckpointFile(trunc));

  const auto write_header = [](const std::string& path, uint32_t version) {
    std::ofstream out(path, std::ios::binary);
    const uint32_t count = 0;
    out.write("LGCN", 4);
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  };

  // Full-length header with an out-of-range version.
  const std::string badver = TempPath("ckpt_bad_version.bin");
  write_header(badver, 9);
  EXPECT_FALSE(IsCheckpointFile(badver));

  // Both supported versions pass.
  const std::string v1 = TempPath("ckpt_v1_header.bin");
  const std::string v2 = TempPath("ckpt_v2_header.bin");
  write_header(v1, 1);
  write_header(v2, 2);
  EXPECT_TRUE(IsCheckpointFile(v1));
  EXPECT_TRUE(IsCheckpointFile(v2));

  std::remove(trunc.c_str());
  std::remove(badver.c_str());
  std::remove(v1.c_str());
  std::remove(v2.c_str());
}

TEST(CheckpointDeathTest, MissingParameterAborts) {
  util::Rng rng(4);
  Parameter a("a", 2, 2);
  a.InitXavier(&rng);
  const std::string path = TempPath("ckpt_missing_param.bin");
  SaveCheckpoint(path, {&a});
  Parameter other("other", 2, 2);
  EXPECT_DEATH((void)LoadCheckpoint(path, {&other}), "missing parameter");
  std::remove(path.c_str());
}

TEST(CheckpointDeathTest, ShapeMismatchAborts) {
  util::Rng rng(5);
  Parameter a("a", 2, 2);
  a.InitXavier(&rng);
  const std::string path = TempPath("ckpt_shape.bin");
  SaveCheckpoint(path, {&a});
  Parameter wrong("a", 3, 2);
  EXPECT_DEATH((void)LoadCheckpoint(path, {&wrong}), "shape mismatch");
  std::remove(path.c_str());
}

TEST(CheckpointDeathTest, DuplicateNamesAbortOnSave) {
  Parameter a("same", 1, 1), b("same", 1, 1);
  EXPECT_DEATH(SaveCheckpoint(TempPath("ckpt_dup.bin"), {&a, &b}),
               "duplicate parameter");
}

TEST(CheckpointTest, TrainedModelRestoresExactScores) {
  // Train LayerGCN briefly, checkpoint, clobber, restore: scores must be
  // bit-identical.
  const data::Dataset ds = layergcn::testing::TinyDataset();
  core::LayerGcn model;
  TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.batch_size = 4;
  cfg.max_epochs = 8;
  cfg.seed = 6;
  cfg.edge_drop_ratio = 0.0;
  cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  FitRecommender(&model, ds, cfg);
  model.PrepareEval();
  const tensor::Matrix scores_before = model.ScoreUsers({0, 1});

  const std::string path = TempPath("ckpt_model.bin");
  SaveCheckpoint(path, model.Params());
  for (Parameter* p : model.Params()) p->value.Zero();
  LoadCheckpoint(path, model.Params());
  model.PrepareEval();
  EXPECT_TRUE(model.ScoreUsers({0, 1}).Equals(scores_before));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace layergcn::train
