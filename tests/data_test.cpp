#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/dataset.h"
#include "data/kcore.h"
#include "data/loader.h"
#include "data/split.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/status.h"

namespace layergcn::data {
namespace {

std::vector<Interaction> SequentialInteractions(int n) {
  std::vector<Interaction> out;
  for (int k = 0; k < n; ++k) {
    out.push_back({k % 4, k % 3, k});
  }
  return out;
}

TEST(SplitTest, FractionsRespected) {
  Split s = ChronologicalSplit(SequentialInteractions(100), 0.7, 0.1);
  EXPECT_EQ(s.train.size(), 70u);
  EXPECT_EQ(s.valid.size(), 10u);
  EXPECT_EQ(s.test.size(), 20u);
}

TEST(SplitTest, ChronologicalOrdering) {
  // Shuffle timestamps; split must be by time, not input order.
  std::vector<Interaction> xs = {{0, 0, 50}, {1, 1, 10}, {2, 2, 90},
                                 {3, 0, 30}, {0, 1, 70}, {1, 2, 20},
                                 {2, 0, 80}, {3, 1, 40}, {0, 2, 60},
                                 {1, 0, 100}};
  Split s = ChronologicalSplit(xs, 0.7, 0.1);
  int64_t max_train = -1;
  for (const auto& x : s.train) max_train = std::max(max_train, x.timestamp);
  for (const auto& x : s.valid) EXPECT_GT(x.timestamp, max_train);
  int64_t max_valid = max_train;
  for (const auto& x : s.valid) max_valid = std::max(max_valid, x.timestamp);
  for (const auto& x : s.test) EXPECT_GT(x.timestamp, max_valid);
}

TEST(SplitTest, DeterministicTieBreaking) {
  // All identical timestamps: ordering falls back to (user, item).
  std::vector<Interaction> xs = {{1, 1, 5}, {0, 0, 5}, {1, 0, 5}, {0, 1, 5},
                                 {2, 0, 5}};
  Split a = ChronologicalSplit(xs, 0.6, 0.2);
  std::reverse(xs.begin(), xs.end());
  Split b = ChronologicalSplit(xs, 0.6, 0.2);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].user, b.train[i].user);
    EXPECT_EQ(a.train[i].item, b.train[i].item);
  }
}

TEST(SplitDeathTest, BadFractionsAbort) {
  EXPECT_DEATH((void)ChronologicalSplit(SequentialInteractions(10), 0.9, 0.2),
               "split fractions");
  EXPECT_DEATH((void)ChronologicalSplit(SequentialInteractions(10), 0.0, 0.1),
               "split fractions");
}

TEST(BuildDatasetTest, ColdStartRemoval) {
  // Item 2 and user 2 appear only in the held-out part: they must be
  // filtered from ground truth.
  std::vector<Interaction> train = {{0, 0, 1}, {1, 1, 2}, {0, 1, 3}};
  std::vector<Interaction> valid = {{0, 2, 4}};   // cold item
  std::vector<Interaction> test = {{2, 0, 5},     // cold user
                                   {1, 0, 6}};    // warm pair: kept
  Dataset ds = BuildDataset("t", 3, 3, train, valid, test);
  EXPECT_TRUE(ds.valid_users.empty());
  ASSERT_EQ(ds.test_users.size(), 1u);
  EXPECT_EQ(ds.test_users[0], 1);
  EXPECT_EQ(ds.test_items[1], (std::vector<int32_t>{0}));
}

TEST(BuildDatasetTest, TrainPairsAlsoInHeldOutAreDropped) {
  std::vector<Interaction> train = {{0, 0, 1}, {0, 1, 2}};
  std::vector<Interaction> test = {{0, 0, 9}};  // duplicate of training pair
  Dataset ds = BuildDataset("t", 1, 2, train, {}, test);
  EXPECT_TRUE(ds.test_users.empty());
}

TEST(BuildDatasetTest, SparsityPercent) {
  std::vector<Interaction> train = {{0, 0, 1}, {1, 1, 2}};
  Dataset ds = BuildDataset("t", 2, 2, train, {}, {});
  // 2 of 4 cells filled -> sparsity 50%.
  EXPECT_DOUBLE_EQ(ds.SparsityPercent(), 50.0);
}

TEST(BuildDatasetTest, SummaryMentionsEverything) {
  Dataset ds = layergcn::testing::TinyDataset();
  const std::string s = ds.Summary();
  EXPECT_NE(s.find("tiny"), std::string::npos);
  EXPECT_NE(s.find("users"), std::string::npos);
  EXPECT_NE(s.find("sparsity"), std::string::npos);
}

TEST(KCoreTest, RemovesLowDegreeIteratively) {
  // user 2 has a single interaction with item 2; removing it drops item 2
  // to degree 0 as well. Users 0/1 and items 0/1 form a stable 2-core.
  std::vector<Interaction> xs = {{0, 0, 1}, {0, 1, 2}, {1, 0, 3},
                                 {1, 1, 4}, {2, 2, 5}};
  const auto out = KCoreFilter(xs, 2, 2);
  EXPECT_EQ(out.size(), 4u);
  for (const auto& x : out) {
    EXPECT_LT(x.user, 2);
    EXPECT_LT(x.item, 2);
  }
}

TEST(KCoreTest, CascadingRemoval) {
  // A chain: removing the weakest node cascades.
  // u0: items {0,1}; u1: item {1}; item1 degree 2, item0 degree 1.
  std::vector<Interaction> xs = {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}};
  // 2-core on both sides: item0 (deg 1) goes, then u0 has deg 1, goes, then
  // item1 deg 1, goes, then u1 deg 0 -> empty.
  EXPECT_TRUE(KCoreFilter(xs, 2, 2).empty());
}

TEST(KCoreTest, ZeroCoreKeepsEverything) {
  std::vector<Interaction> xs = SequentialInteractions(10);
  EXPECT_EQ(KCoreFilter(xs, 0, 0).size(), 10u);
}

TEST(CompactIdsTest, RemapsToDenseRange) {
  std::vector<Interaction> xs = {{100, 50, 1}, {200, 50, 2}, {100, 60, 3}};
  int32_t nu = 0, ni = 0;
  const auto out = CompactIds(xs, &nu, &ni);
  EXPECT_EQ(nu, 2);
  EXPECT_EQ(ni, 2);
  EXPECT_EQ(out[0].user, 0);
  EXPECT_EQ(out[1].user, 1);
  EXPECT_EQ(out[2].user, 0);
  EXPECT_EQ(out[0].item, 0);
  EXPECT_EQ(out[2].item, 1);
  EXPECT_EQ(out[2].timestamp, 3);
}

TEST(LoaderTest, RoundTripsThroughCsv) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "layergcn_loader_test.csv")
          .string();
  SaveInteractions(path, {{0, 1, 100}, {1, 0, 200}, {0, 2, 300}});
  LoaderOptions opts;
  int32_t nu = 0, ni = 0;
  const auto loaded = LoadInteractions(path, opts, &nu, &ni);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(nu, 2);
  EXPECT_EQ(ni, 3);
  EXPECT_EQ(loaded[1].timestamp, 200);
  std::remove(path.c_str());
}

TEST(LoaderTest, StringIdsAndHeaderSkipping) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "layergcn_loader_str.csv")
          .string();
  {
    std::ofstream out(path);
    out << "user,item,ts\n";
    out << "alice,apple,5\n";
    out << "bob,apple,6\n";
    out << "alice,pear,7\n";
  }
  LoaderOptions opts;
  opts.skip_lines = 1;
  int32_t nu = 0, ni = 0;
  const auto loaded = LoadInteractions(path, opts, &nu, &ni);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(nu, 2);
  EXPECT_EQ(ni, 2);
  EXPECT_EQ(loaded[0].user, loaded[2].user);  // both "alice"
  EXPECT_EQ(loaded[0].item, loaded[1].item);  // both "apple"
  std::remove(path.c_str());
}

TEST(LoaderTest, MissingTimestampColumnUsesRowOrder) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "layergcn_loader_nots.csv")
          .string();
  {
    std::ofstream out(path);
    out << "u1,i1\nu2,i2\n";
  }
  LoaderOptions opts;
  opts.timestamp_column = -1;
  int32_t nu = 0, ni = 0;
  const auto loaded = LoadInteractions(path, opts, &nu, &ni);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_LT(loaded[0].timestamp, loaded[1].timestamp);
  std::remove(path.c_str());
}

TEST(LoaderDeathTest, MissingFileAborts) {
  LoaderOptions opts;
  int32_t nu, ni;
  EXPECT_DEATH((void)LoadInteractions("/nonexistent/x.csv", opts, &nu, &ni),
               "cannot open");
}

TEST(LoaderTest, MissingFileIsNotFound) {
  LoaderOptions opts;
  int32_t nu = 0, ni = 0;
  const auto r = LoadInteractionsOr("/nonexistent/x.csv", opts, &nu, &ni);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

std::string WriteTempCsv(const char* name, const char* content) {
  const std::string path =
      (std::filesystem::temp_directory_path() / name).string();
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(LoaderTest, MalformedRowsSkippedAndCountedWithinBudget) {
  const std::string path = WriteTempCsv("layergcn_loader_malformed.csv",
                                        "0,1,100\n"
                                        "only_one_field\n"   // too few fields
                                        "1,0,notatime\n"     // bad timestamp
                                        "0,2,300\n");
  LoaderOptions opts;
  opts.max_malformed = 2;
  LoadStats stats;
  int32_t nu = 0, ni = 0;
  const auto loaded = LoadInteractionsOr(path, opts, &nu, &ni, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(stats.rows_total, 4);
  EXPECT_EQ(stats.rows_loaded, 2);
  EXPECT_EQ(stats.rows_malformed, 2);
  EXPECT_EQ(stats.malformed_lines, (std::vector<int64_t>{2, 3}));
  // Skipped rows must not mint user/item ids.
  EXPECT_EQ(nu, 1);  // "0"
  EXPECT_EQ(ni, 2);  // "1", "2"
  std::remove(path.c_str());
}

TEST(LoaderTest, StrictDefaultRejectsFirstMalformedRow) {
  const std::string path = WriteTempCsv("layergcn_loader_strict.csv",
                                        "0,1,100\nbroken\n0,2,300\n");
  LoaderOptions opts;  // max_malformed defaults to 0: strict
  int32_t nu = 0, ni = 0;
  const auto r = LoadInteractionsOr(path, opts, &nu, &ni);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
  // The error names the offending line.
  EXPECT_NE(r.status().message().find("malformed"), std::string::npos);
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LoaderTest, BudgetExhaustionIsInvalidArgument) {
  const std::string path = WriteTempCsv("layergcn_loader_budget.csv",
                                        "bad\nworse\nstill_bad\n");
  LoaderOptions opts;
  opts.max_malformed = 2;
  int32_t nu = 0, ni = 0;
  const auto r = LoadInteractionsOr(path, opts, &nu, &ni);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(LoaderDeathTest, LegacyLoaderAbortsOnMalformedRow) {
  const std::string path = WriteTempCsv("layergcn_loader_legacy_bad.csv",
                                        "0,1,100\nbroken\n");
  LoaderOptions opts;
  int32_t nu = 0, ni = 0;
  EXPECT_DEATH((void)LoadInteractions(path, opts, &nu, &ni), "malformed");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace layergcn::data
