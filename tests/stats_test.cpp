#include "eval/stats.h"

#include <cmath>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace layergcn::eval {
namespace {

TEST(MeanStdTest, HandComputed) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({7}), 7.0);
  EXPECT_NEAR(SampleStdDev({2, 4, 4, 4, 5, 5, 7, 9}),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(SampleStdDev({5, 5, 5}), 0.0);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(IncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(IncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetryAndKnownValues) {
  // I_x(1,1) = x (uniform CDF).
  for (double x : {0.1, 0.35, 0.5, 0.8}) {
    EXPECT_NEAR(IncompleteBeta(1, 1, x), x, 1e-10);
  }
  // I_x(a,b) = 1 − I_{1−x}(b,a).
  EXPECT_NEAR(IncompleteBeta(2.5, 4.0, 0.3),
              1.0 - IncompleteBeta(4.0, 2.5, 0.7), 1e-10);
  // I_{0.5}(a,a) = 0.5 by symmetry.
  EXPECT_NEAR(IncompleteBeta(3.0, 3.0, 0.5), 0.5, 1e-10);
}

TEST(StudentTTest, KnownQuantiles) {
  // For df=10, t=2.228 is the 97.5% quantile -> two-sided p ≈ 0.05.
  EXPECT_NEAR(StudentTTwoSidedP(2.228, 10), 0.05, 1e-3);
  // df=4, t=2.776 -> p ≈ 0.05.
  EXPECT_NEAR(StudentTTwoSidedP(2.776, 4), 0.05, 1e-3);
  // t=0 -> p = 1.
  EXPECT_NEAR(StudentTTwoSidedP(0.0, 7), 1.0, 1e-12);
  // Symmetric in the sign of t.
  EXPECT_NEAR(StudentTTwoSidedP(-1.5, 9), StudentTTwoSidedP(1.5, 9), 1e-12);
}

TEST(PairedTTestTest, DetectsClearDifference) {
  // b consistently 0.1 above a.
  std::vector<double> a, b;
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const double base = rng.NextDouble();
    a.push_back(base);
    b.push_back(base + 0.1 + 0.01 * rng.NextGaussian());
  }
  const TTestResult r = PairedTTest(b, a);
  EXPECT_GT(r.t_statistic, 3.0);
  EXPECT_LT(r.p_value, 0.05);
  EXPECT_EQ(r.degrees_of_freedom, 19);
}

TEST(PairedTTestTest, NoDifferenceGivesHighP) {
  std::vector<double> a, b;
  util::Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    const double base = rng.NextDouble();
    a.push_back(base + 0.05 * rng.NextGaussian());
    b.push_back(base + 0.05 * rng.NextGaussian());
  }
  const TTestResult r = PairedTTest(a, b);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(PairedTTestTest, IdenticalSamplesGivePOne) {
  const std::vector<double> a{1, 2, 3};
  const TTestResult r = PairedTTest(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_DOUBLE_EQ(r.t_statistic, 0.0);
}

TEST(PairedTTestTest, ConstantNonzeroDifferenceGivesPZero) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{2, 3, 4};
  const TTestResult r = PairedTTest(b, a);
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
}

TEST(PairedTTestDeathTest, MismatchedSizesAbort) {
  EXPECT_DEATH((void)PairedTTest({1, 2}, {1}), "");
}

TEST(PairedTTestTest, MatchesManualComputation) {
  // diffs = {1, 2, 3}: mean 2, sd 1, t = 2/(1/sqrt(3)) = 2*sqrt(3).
  const std::vector<double> a{2, 4, 6};
  const std::vector<double> b{1, 2, 3};
  const TTestResult r = PairedTTest(a, b);
  EXPECT_NEAR(r.t_statistic, 2.0 * std::sqrt(3.0), 1e-12);
}

}  // namespace
}  // namespace layergcn::eval
