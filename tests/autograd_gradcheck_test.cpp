// Central-difference gradient checks for every autograd op and for the
// composite losses used by the models (BPR, LayerGCN refinement chain,
// VAE-style pipeline). These tests are the ground truth that training
// gradients are correct.

#include <cmath>

#include "autograd/ops.h"
#include "gtest/gtest.h"
#include "sparse/csr_matrix.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "util/rng.h"

namespace layergcn::ag {
namespace {

using layergcn::testing::ExpectGradientsMatch;
using layergcn::testing::LossBuilder;
using layergcn::testing::RandomMatrix;

// Each case perturbs two 4x3 inputs a, b through one op and reduces with a
// weighted sum (Hadamard with fixed weights, then Sum) so every output
// entry gets a distinct gradient.
struct OpCase {
  const char* name;
  std::function<Var(Tape*, Var, Var)> apply;
};

class UnaryBinaryGradTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(UnaryBinaryGradTest, MatchesNumericalGradient) {
  util::Rng rng(1234);
  tensor::Matrix a = RandomMatrix(4, 3, &rng, 0.2f, 1.5f);  // positive: Log
  tensor::Matrix b = RandomMatrix(4, 3, &rng, 0.2f, 1.5f);
  tensor::Matrix weights = RandomMatrix(4, 3, &rng, -1.f, 1.f);
  const auto& apply = GetParam().apply;
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    Var out = apply(tape, leaves[0], leaves[1]);
    Var w = tape->Constant(
        tensor::SliceCols(weights, 0, tape->value(out).cols()));
    // For Nx1 outputs, reuse the first weight column.
    return Sum(Hadamard(out, w));
  };
  ExpectGradientsMatch(build, {&a, &b});
}

INSTANTIATE_TEST_SUITE_P(
    Ops, UnaryBinaryGradTest,
    ::testing::Values(
        OpCase{"Add", [](Tape*, Var a, Var b) { return Add(a, b); }},
        OpCase{"Sub", [](Tape*, Var a, Var b) { return Sub(a, b); }},
        OpCase{"Hadamard",
               [](Tape*, Var a, Var b) { return Hadamard(a, b); }},
        OpCase{"Scale", [](Tape*, Var a, Var) { return Scale(a, -1.7f); }},
        OpCase{"AddScalar",
               [](Tape*, Var a, Var) { return AddScalar(a, 0.3f); }},
        OpCase{"Negate", [](Tape*, Var a, Var) { return Negate(a); }},
        OpCase{"Sigmoid", [](Tape*, Var a, Var) { return Sigmoid(a); }},
        OpCase{"Tanh", [](Tape*, Var a, Var) { return Tanh(a); }},
        OpCase{"Softplus", [](Tape*, Var a, Var) { return Softplus(a); }},
        OpCase{"Exp", [](Tape*, Var a, Var) { return Exp(a); }},
        OpCase{"Log", [](Tape*, Var a, Var) { return Log(a); }},
        OpCase{"Square", [](Tape*, Var a, Var) { return Square(a); }},
        OpCase{"LeakyRelu",
               [](Tape*, Var a, Var) { return LeakyRelu(a, 0.2f); }},
        OpCase{"Relu", [](Tape*, Var a, Var) { return Relu(a); }},
        OpCase{"RowDots",
               [](Tape*, Var a, Var b) { return RowDots(a, b); }},
        OpCase{"RowwiseCosine",
               [](Tape*, Var a, Var b) {
                 return RowwiseCosine(a, b, 1e-8f);
               }},
        OpCase{"SoftmaxRows",
               [](Tape*, Var a, Var) { return SoftmaxRows(a); }},
        OpCase{"LogSoftmaxRows",
               [](Tape*, Var a, Var) { return LogSoftmaxRows(a); }},
        OpCase{"Transpose",
               [](Tape*, Var a, Var) { return Transpose(Transpose(a)); }},
        OpCase{"AddN", [](Tape*, Var a, Var b) { return AddN({a, b, a}); }},
        OpCase{"ConcatSelf",
               [](Tape*, Var a, Var b) {
                 // concat then fold back to 3 cols via matmul with a fixed
                 // 6x3 projection so the weighted-sum reducer fits.
                 Var cat = ConcatCols({a, b});
                 tensor::Matrix proj(6, 3);
                 util::Rng r(7);
                 proj.UniformInit(&r, -1.f, 1.f);
                 return MatMul(cat, cat.tape->Constant(proj));
               }}),
    [](const ::testing::TestParamInfo<OpCase>& info) {
      return info.param.name;
    });

TEST(GradCheckTest, MatMulAllTransposeLayouts) {
  util::Rng rng(77);
  for (const auto& [ta, tb] : std::vector<std::pair<bool, bool>>{
           {false, false}, {false, true}, {true, false}, {true, true}}) {
    tensor::Matrix a = ta ? RandomMatrix(4, 3, &rng) : RandomMatrix(3, 4, &rng);
    tensor::Matrix b = tb ? RandomMatrix(5, 4, &rng) : RandomMatrix(4, 5, &rng);
    tensor::Matrix w = RandomMatrix(3, 5, &rng);
    const bool tra = ta, trb = tb;
    LossBuilder build = [&, tra, trb](Tape* tape,
                                      const std::vector<Var>& leaves) {
      Var out = MatMul(leaves[0], leaves[1], tra, trb);
      return Sum(Hadamard(out, tape->Constant(w)));
    };
    ExpectGradientsMatch(build, {&a, &b});
  }
}

TEST(GradCheckTest, GatherRowsWithDuplicates) {
  util::Rng rng(88);
  tensor::Matrix x = RandomMatrix(5, 3, &rng);
  tensor::Matrix w = RandomMatrix(4, 3, &rng);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    Var g = GatherRows(leaves[0], {0, 2, 2, 4});
    return Sum(Hadamard(g, tape->Constant(w)));
  };
  ExpectGradientsMatch(build, {&x});
}

TEST(GradCheckTest, ScaleRows) {
  util::Rng rng(89);
  tensor::Matrix x = RandomMatrix(4, 3, &rng);
  tensor::Matrix s = RandomMatrix(4, 1, &rng);
  tensor::Matrix w = RandomMatrix(4, 3, &rng);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    return Sum(Hadamard(ScaleRows(leaves[0], leaves[1]),
                        tape->Constant(w)));
  };
  ExpectGradientsMatch(build, {&x, &s});
}

TEST(GradCheckTest, SpMMGeneralAndSymmetric) {
  util::Rng rng(90);
  // Non-symmetric rectangular operand with explicit transpose.
  sparse::CooMatrix coo;
  coo.rows = 5;
  coo.cols = 4;
  for (int k = 0; k < 9; ++k) {
    coo.entries.push_back({rng.NextInt(0, 5), rng.NextInt(0, 4),
                           static_cast<float>(rng.NextGaussian())});
  }
  sparse::CsrMatrix m = sparse::CsrMatrix::FromCoo(coo);
  sparse::CsrMatrix mt = m.Transpose();
  tensor::Matrix x = RandomMatrix(4, 3, &rng);
  tensor::Matrix w = RandomMatrix(5, 3, &rng);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    return Sum(Hadamard(SpMM(&m, &mt, leaves[0]), tape->Constant(w)));
  };
  ExpectGradientsMatch(build, {&x});

  // Symmetric operand via SpMMSymmetric.
  sparse::CooMatrix sym;
  sym.rows = 4;
  sym.cols = 4;
  for (int k = 0; k < 5; ++k) {
    const int32_t i = rng.NextInt(0, 4), j = rng.NextInt(0, 4);
    const float v = static_cast<float>(rng.NextGaussian());
    sym.entries.push_back({i, j, v});
    if (i != j) sym.entries.push_back({j, i, v});
  }
  sparse::CsrMatrix ms = sparse::CsrMatrix::FromCoo(sym);
  tensor::Matrix x2 = RandomMatrix(4, 3, &rng);
  tensor::Matrix w2 = RandomMatrix(4, 3, &rng);
  LossBuilder build2 = [&](Tape* tape, const std::vector<Var>& leaves) {
    return Sum(Hadamard(SpMMSymmetric(&ms, leaves[0]), tape->Constant(w2)));
  };
  ExpectGradientsMatch(build2, {&x2});
}

TEST(GradCheckTest, LinCombGradientsForLayersAndWeights) {
  util::Rng rng(91);
  tensor::Matrix a = RandomMatrix(3, 2, &rng);
  tensor::Matrix b = RandomMatrix(3, 2, &rng);
  tensor::Matrix w = RandomMatrix(2, 1, &rng);
  tensor::Matrix red = RandomMatrix(3, 2, &rng);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    return Sum(Hadamard(LinComb({leaves[0], leaves[1]}, leaves[2]),
                        tape->Constant(red)));
  };
  ExpectGradientsMatch(build, {&a, &b, &w});
}

TEST(GradCheckTest, NormalizeRows) {
  util::Rng rng(915);
  tensor::Matrix x = RandomMatrix(4, 3, &rng, 0.3f, 1.5f);
  tensor::Matrix w = RandomMatrix(4, 3, &rng);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    return Sum(Hadamard(NormalizeRows(leaves[0]), tape->Constant(w)));
  };
  ExpectGradientsMatch(build, {&x});
}

TEST(GradCheckTest, InfoNceStyleContrastiveLoss) {
  // normalize → BxB similarity → temperature scale → logsoftmax → -diag
  // mean: the SSL objective of core::LayerGcnSsl.
  util::Rng rng(916);
  tensor::Matrix z1 = RandomMatrix(4, 3, &rng, -1.f, 1.f);
  tensor::Matrix z2 = RandomMatrix(4, 3, &rng, -1.f, 1.f);
  tensor::Matrix eye(4, 4);
  for (int i = 0; i < 4; ++i) eye(i, i) = 1.f;
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    Var a = NormalizeRows(leaves[0]);
    Var b = NormalizeRows(leaves[1]);
    Var sim = Scale(MatMul(a, b, false, true), 1.f / 0.2f);
    Var log_probs = LogSoftmaxRows(sim);
    return Scale(Sum(Hadamard(log_probs, tape->Constant(eye))), -0.25f);
  };
  ExpectGradientsMatch(build, {&z1, &z2});
}

TEST(GradCheckTest, AddRowVectorBias) {
  util::Rng rng(92);
  tensor::Matrix x = RandomMatrix(4, 3, &rng);
  tensor::Matrix bias = RandomMatrix(1, 3, &rng);
  tensor::Matrix w = RandomMatrix(4, 3, &rng);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    return Sum(Hadamard(AddRowVector(leaves[0], leaves[1]),
                        tape->Constant(w)));
  };
  ExpectGradientsMatch(build, {&x, &bias});
}

TEST(GradCheckTest, ReductionsMeanAndSumSquares) {
  util::Rng rng(93);
  tensor::Matrix x = RandomMatrix(4, 3, &rng);
  LossBuilder mean_build = [](Tape*, const std::vector<Var>& leaves) {
    return Mean(leaves[0]);
  };
  ExpectGradientsMatch(mean_build, {&x});
  LossBuilder sq_build = [](Tape*, const std::vector<Var>& leaves) {
    return SumSquares(leaves[0]);
  };
  ExpectGradientsMatch(sq_build, {&x});
}

TEST(GradCheckTest, RowwiseCosineEpsBranch) {
  // Tiny norms so |a||b| < eps exercises the constant-denominator branch.
  util::Rng rng(94);
  tensor::Matrix a = RandomMatrix(3, 2, &rng, -1e-4f, 1e-4f);
  tensor::Matrix b = RandomMatrix(3, 2, &rng, -1e-4f, 1e-4f);
  LossBuilder build = [](Tape*, const std::vector<Var>& leaves) {
    return Sum(RowwiseCosine(leaves[0], leaves[1], 1.f));
  };
  // Larger eps-perturbation tolerance: values are tiny.
  ExpectGradientsMatch(build, {&a, &b}, /*eps=*/1e-5f, /*rel_tol=*/5e-2f,
                       /*abs_tol=*/5e-3f);
}

TEST(GradCheckTest, BprLossPipeline) {
  // The exact loss used by EmbeddingRecommender: gather + rowdots +
  // softplus + mean + L2 reg.
  util::Rng rng(95);
  tensor::Matrix emb = RandomMatrix(8, 4, &rng, -0.5f, 0.5f);
  const std::vector<int32_t> users{0, 1, 2};
  const std::vector<int32_t> pos{4, 5, 6};
  const std::vector<int32_t> neg{5, 6, 7};
  LossBuilder build = [&](Tape*, const std::vector<Var>& leaves) {
    Var x0 = leaves[0];
    Var eu = GatherRows(x0, users);
    Var ei = GatherRows(x0, pos);
    Var ej = GatherRows(x0, neg);
    Var bpr = Mean(Softplus(Sub(RowDots(eu, ej), RowDots(eu, ei))));
    return Add(bpr, Scale(SumSquares(eu), 1e-3f));
  };
  ExpectGradientsMatch(build, {&emb});
}

TEST(GradCheckTest, LayerGcnRefinementChain) {
  // Full Eq. 6-9 pipeline: SpMM → cosine with ego → (a + eps) row scaling,
  // two layers, sum readout, BPR-ish reduction.
  util::Rng rng(96);
  sparse::CooMatrix coo;
  coo.rows = 6;
  coo.cols = 6;
  auto sym = [&](int32_t a, int32_t b, float v) {
    coo.entries.push_back({a, b, v});
    coo.entries.push_back({b, a, v});
  };
  sym(0, 3, 0.5f);
  sym(0, 4, 0.4f);
  sym(1, 4, 0.7f);
  sym(2, 5, 0.6f);
  sym(1, 5, 0.3f);
  sparse::CsrMatrix adj = sparse::CsrMatrix::FromCoo(coo);
  tensor::Matrix emb = RandomMatrix(6, 4, &rng, -0.8f, 0.8f);
  tensor::Matrix w = RandomMatrix(6, 4, &rng);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    Var x0 = leaves[0];
    Var x = x0;
    std::vector<Var> layers;
    for (int l = 0; l < 2; ++l) {
      Var h = SpMMSymmetric(&adj, x);
      Var a = RowwiseCosine(h, x0, 1e-8f);
      x = ScaleRows(h, AddScalar(a, 1e-8f));
      layers.push_back(x);
    }
    return Sum(Hadamard(AddN(layers), tape->Constant(w)));
  };
  ExpectGradientsMatch(build, {&emb});
}

TEST(GradCheckTest, VaeStylePipeline) {
  // Linear → tanh → linear → logsoftmax multinomial + KL-ish quadratic.
  util::Rng rng(97);
  tensor::Matrix x_in = RandomMatrix(3, 5, &rng, 0.f, 1.f);
  tensor::Matrix w1 = RandomMatrix(5, 4, &rng, -0.5f, 0.5f);
  tensor::Matrix b1 = RandomMatrix(1, 4, &rng, -0.1f, 0.1f);
  tensor::Matrix w2 = RandomMatrix(4, 5, &rng, -0.5f, 0.5f);
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    Var x = tape->Constant(x_in);
    Var h = Tanh(AddRowVector(MatMul(x, leaves[0]), leaves[1]));
    Var logits = MatMul(h, leaves[2]);
    Var nll = Scale(Sum(Hadamard(LogSoftmaxRows(logits), x)), -1.f / 3.f);
    Var kl = Scale(SumSquares(h), 0.05f);
    return Add(nll, kl);
  };
  ExpectGradientsMatch(build, {&w1, &b1, &w2});
}

TEST(GradCheckTest, EhcfEfficientLoss) {
  util::Rng rng(98);
  tensor::Matrix u = RandomMatrix(4, 3, &rng, -0.5f, 0.5f);
  tensor::Matrix v = RandomMatrix(5, 3, &rng, -0.5f, 0.5f);
  const std::vector<int32_t> eu{0, 1, 2, 3};
  const std::vector<int32_t> ei{0, 2, 4, 1};
  LossBuilder build = [&](Tape*, const std::vector<Var>& leaves) {
    Var users = leaves[0];
    Var items = leaves[1];
    Var pu = GatherRows(users, eu);
    Var pi = GatherRows(items, ei);
    Var pos = RowDots(pu, pi);
    Var pos_part = Add(Scale(Sum(Square(pos)), 0.95f),
                       Scale(Sum(pos), -2.f));
    Var gram = Hadamard(MatMul(users, users, true, false),
                        MatMul(items, items, true, false));
    return Add(pos_part, Scale(Sum(gram), 0.05f));
  };
  ExpectGradientsMatch(build, {&u, &v});
}

}  // namespace
}  // namespace layergcn::ag
