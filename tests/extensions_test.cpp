// Tests of the extension models: LayerGCN-SSL (paper §VI future work) and
// the content-feature variants (paper §II-B), plus the cluster-feature
// generator behind them.

#include <cmath>
#include <memory>

#include "core/layergcn_content.h"
#include "core/layergcn_ssl.h"
#include "core/model_factory.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "train/trainer.h"

namespace layergcn::core {
namespace {

data::SyntheticConfig SmallConfig() {
  data::SyntheticConfig cfg;
  cfg.name = "ext";
  cfg.num_users = 120;
  cfg.num_items = 60;
  cfg.num_interactions = 1200;
  cfg.num_clusters = 4;
  return cfg;
}

train::TrainConfig FastTrain() {
  train::TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.num_layers = 2;
  cfg.batch_size = 256;
  cfg.max_epochs = 10;
  cfg.early_stop_patience = 100;
  cfg.seed = 9;
  return cfg;
}

TEST(ClusterFeaturesTest, ShapeAndClusterSimilarityStructure) {
  const std::vector<int> clusters{0, 0, 1, 1, 2};
  const tensor::Matrix f =
      data::MakeClusterFeatures(clusters, 3, 8, /*noise=*/0.05, 7);
  EXPECT_EQ(f.rows(), 5);
  EXPECT_EQ(f.cols(), 8);
  // Same-cluster rows must be far more similar than cross-cluster rows.
  auto cosine = [&](int64_t a, int64_t b) {
    tensor::Matrix ra(1, 8), rb(1, 8);
    std::copy(f.row(a), f.row(a) + 8, ra.row(0));
    std::copy(f.row(b), f.row(b) + 8, rb.row(0));
    return tensor::RowwiseCosine(ra, rb, 1e-12f)(0, 0);
  };
  EXPECT_GT(cosine(0, 1), 0.9f);   // same cluster
  EXPECT_GT(cosine(2, 3), 0.9f);
  EXPECT_LT(std::fabs(cosine(0, 2)), 0.7f);  // different clusters
}

TEST(ClusterFeaturesTest, DeterministicAndNoiseSensitive) {
  const std::vector<int> clusters{0, 1, 0, 1};
  const tensor::Matrix a = data::MakeClusterFeatures(clusters, 2, 6, 0.1, 3);
  const tensor::Matrix b = data::MakeClusterFeatures(clusters, 2, 6, 0.1, 3);
  EXPECT_TRUE(a.Equals(b));
  const tensor::Matrix c = data::MakeClusterFeatures(clusters, 2, 6, 0.1, 4);
  EXPECT_FALSE(a.Equals(c));
}

TEST(ClusterFeaturesDeathTest, BadClusterIdAborts) {
  EXPECT_DEATH((void)data::MakeClusterFeatures({0, 5}, 2, 4, 0.1, 1),
               "cluster id");
}

TEST(GenerateWithClustersTest, MatchesPlainGeneratorStream) {
  const data::SyntheticConfig cfg = SmallConfig();
  const auto plain = data::GenerateInteractions(cfg, 11);
  const auto with = data::GenerateInteractionsWithClusters(cfg, 11);
  ASSERT_EQ(plain.size(), with.interactions.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].user, with.interactions[i].user);
    EXPECT_EQ(plain[i].item, with.interactions[i].item);
  }
  EXPECT_EQ(with.user_clusters.size(), static_cast<size_t>(cfg.num_users));
  EXPECT_EQ(with.item_clusters.size(), static_cast<size_t>(cfg.num_items));
  for (int c : with.user_clusters) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, cfg.num_clusters);
  }
}

TEST(LayerGcnSslTest, TrainsAndLossIncludesSslTerm) {
  const data::SyntheticConfig gen = SmallConfig();
  data::Dataset ds = data::ChronologicalSplitDataset(
      gen.name, gen.num_users, gen.num_items,
      data::GenerateInteractions(gen, 21));
  train::TrainConfig cfg = FastTrain();

  // With weight 0 the SSL model must match plain LayerGCN exactly (same
  // rng consumption aside — so compare losses qualitatively instead: the
  // weighted model's loss must exceed the unweighted one at epoch 1, since
  // InfoNCE of in-batch negatives is positive).
  SslOptions on;
  on.weight = 0.5f;
  LayerGcnSsl with_ssl(on);
  util::Rng r1(cfg.seed);
  with_ssl.Init(ds, cfg, &r1);
  with_ssl.BeginEpoch(1, &r1);
  const double loss_on = with_ssl.TrainEpoch(&r1, nullptr);

  SslOptions off;
  off.weight = 0.f;
  LayerGcnSsl without_ssl(off);
  util::Rng r2(cfg.seed);
  without_ssl.Init(ds, cfg, &r2);
  without_ssl.BeginEpoch(1, &r2);
  const double loss_off = without_ssl.TrainEpoch(&r2, nullptr);

  EXPECT_GT(loss_on, loss_off);
  EXPECT_TRUE(std::isfinite(loss_on));
}

TEST(LayerGcnSslTest, EndToEndImprovesOverUntrained) {
  const data::SyntheticConfig gen = SmallConfig();
  data::Dataset ds = data::ChronologicalSplitDataset(
      gen.name, gen.num_users, gen.num_items,
      data::GenerateInteractions(gen, 23));
  LayerGcnSsl model;
  train::TrainConfig cfg = FastTrain();
  cfg.max_epochs = 15;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_GT(r.test_metrics.recall.at(20), 0.0);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(LayerGcnSslTest, FactoryConstructible) {
  EXPECT_NE(core::CreateModel("LayerGCN-SSL"), nullptr);
}

class ContentModeTest : public ::testing::TestWithParam<ContentMode> {};

TEST_P(ContentModeTest, TrainsAndProjectionLearns) {
  const data::SyntheticConfig gen = SmallConfig();
  const auto out = data::GenerateInteractionsWithClusters(gen, 31);
  data::Dataset ds = data::ChronologicalSplitDataset(
      gen.name, gen.num_users, gen.num_items, out.interactions);

  // Unified node feature matrix: users then items.
  std::vector<int> clusters = out.user_clusters;
  clusters.insert(clusters.end(), out.item_clusters.begin(),
                  out.item_clusters.end());
  tensor::Matrix features =
      data::MakeClusterFeatures(clusters, gen.num_clusters, 12, 0.2, 33);

  LayerGcnContent model(features, GetParam());
  train::TrainConfig cfg = FastTrain();
  util::Rng rng(cfg.seed);
  model.Init(ds, cfg, &rng);
  const tensor::Matrix w_before = model.projection().value;
  model.BeginEpoch(1, &rng);
  const double first = model.TrainEpoch(&rng, nullptr);
  model.BeginEpoch(2, &rng);
  const double second = model.TrainEpoch(&rng, nullptr);
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_LT(second, first);
  EXPECT_FALSE(model.projection().value.Equals(w_before))
      << "content projection received no gradient";

  model.PrepareEval();
  const tensor::Matrix scores = model.ScoreUsers({0, 1});
  EXPECT_EQ(scores.rows(), 2);
  EXPECT_EQ(scores.cols(), ds.num_items);
}

INSTANTIATE_TEST_SUITE_P(Modes, ContentModeTest,
                         ::testing::Values(ContentMode::kEgoFusion,
                                           ContentMode::kLateFusion),
                         [](const ::testing::TestParamInfo<ContentMode>& i) {
                           return i.param == ContentMode::kEgoFusion
                                      ? "EgoFusion"
                                      : "LateFusion";
                         });

TEST(ContentModeTest, ModesProduceDifferentEmbeddingWidths) {
  const data::SyntheticConfig gen = SmallConfig();
  const auto out = data::GenerateInteractionsWithClusters(gen, 41);
  data::Dataset ds = data::ChronologicalSplitDataset(
      gen.name, gen.num_users, gen.num_items, out.interactions);
  std::vector<int> clusters = out.user_clusters;
  clusters.insert(clusters.end(), out.item_clusters.begin(),
                  out.item_clusters.end());
  tensor::Matrix features =
      data::MakeClusterFeatures(clusters, gen.num_clusters, 12, 0.2, 43);
  train::TrainConfig cfg = FastTrain();

  LayerGcnContent ego(features, ContentMode::kEgoFusion);
  util::Rng r1(1);
  ego.Init(ds, cfg, &r1);
  ego.BeginEpoch(1, &r1);
  ego.PrepareEval();
  EXPECT_EQ(ego.final_embeddings().cols(), cfg.embedding_dim);

  LayerGcnContent late(features, ContentMode::kLateFusion);
  util::Rng r2(1);
  late.Init(ds, cfg, &r2);
  late.BeginEpoch(1, &r2);
  late.PrepareEval();
  EXPECT_EQ(late.final_embeddings().cols(), cfg.embedding_dim * 2);
}

TEST(ContentModeDeathTest, WrongFeatureRowCountAborts) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  tensor::Matrix features(3, 4);  // wrong: needs num_nodes rows
  LayerGcnContent model(features, ContentMode::kEgoFusion);
  train::TrainConfig cfg = FastTrain();
  util::Rng rng(1);
  EXPECT_DEATH(model.Init(ds, cfg, &rng), "feature matrix");
}

}  // namespace
}  // namespace layergcn::core
