#include "train/bpr_sampler.h"

#include <map>
#include <set>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace layergcn::train {
namespace {

graph::BipartiteGraph SmallGraph() {
  return graph::BipartiteGraph(
      3, 5, {{0, 0}, {0, 1}, {1, 2}, {1, 3}, {2, 0}, {2, 4}});
}

TEST(BprSamplerTest, EpochCoversEveryEdgeExactlyOnce) {
  graph::BipartiteGraph g = SmallGraph();
  BprSampler sampler(&g);
  util::Rng rng(1);
  sampler.BeginEpoch(&rng);
  std::multiset<std::pair<int32_t, int32_t>> seen;
  BprBatch batch;
  while (sampler.NextBatch(2, &rng, &batch)) {
    for (int64_t k = 0; k < batch.size(); ++k) {
      seen.emplace(batch.users[static_cast<size_t>(k)],
                   batch.pos_items[static_cast<size_t>(k)]);
    }
  }
  EXPECT_EQ(seen.size(), 6u);
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(seen.count({g.edge_users()[static_cast<size_t>(e)],
                          g.edge_items()[static_cast<size_t>(e)]}),
              1u);
  }
}

TEST(BprSamplerTest, NegativesAreTrueNegatives) {
  graph::BipartiteGraph g = SmallGraph();
  BprSampler sampler(&g);
  util::Rng rng(2);
  for (int epoch = 0; epoch < 20; ++epoch) {
    sampler.BeginEpoch(&rng);
    BprBatch batch;
    while (sampler.NextBatch(4, &rng, &batch)) {
      for (int64_t k = 0; k < batch.size(); ++k) {
        const int32_t u = batch.users[static_cast<size_t>(k)];
        const int32_t j = batch.neg_items[static_cast<size_t>(k)];
        EXPECT_FALSE(g.HasInteraction(u, j))
            << "user " << u << " negative " << j;
        EXPECT_GE(j, 0);
        EXPECT_LT(j, g.num_items());
      }
    }
  }
}

TEST(BprSamplerTest, BatchSizesAndExhaustion) {
  graph::BipartiteGraph g = SmallGraph();
  BprSampler sampler(&g);
  util::Rng rng(3);
  sampler.BeginEpoch(&rng);
  BprBatch batch;
  EXPECT_TRUE(sampler.NextBatch(4, &rng, &batch));
  EXPECT_EQ(batch.size(), 4);
  EXPECT_TRUE(sampler.NextBatch(4, &rng, &batch));
  EXPECT_EQ(batch.size(), 2);  // remainder
  EXPECT_FALSE(sampler.NextBatch(4, &rng, &batch));
  EXPECT_EQ(batch.size(), 0);
}

TEST(BprSamplerTest, NumBatchesRoundsUp) {
  graph::BipartiteGraph g = SmallGraph();
  BprSampler sampler(&g);
  EXPECT_EQ(sampler.NumBatches(2), 3);
  EXPECT_EQ(sampler.NumBatches(4), 2);
  EXPECT_EQ(sampler.NumBatches(6), 1);
  EXPECT_EQ(sampler.NumBatches(100), 1);
}

TEST(BprSamplerTest, ShuffleChangesOrderAcrossEpochs) {
  graph::BipartiteGraph g = SmallGraph();
  BprSampler sampler(&g);
  util::Rng rng(4);
  auto epoch_order = [&]() {
    sampler.BeginEpoch(&rng);
    std::vector<std::pair<int32_t, int32_t>> order;
    BprBatch batch;
    while (sampler.NextBatch(3, &rng, &batch)) {
      for (int64_t k = 0; k < batch.size(); ++k) {
        order.emplace_back(batch.users[static_cast<size_t>(k)],
                           batch.pos_items[static_cast<size_t>(k)]);
      }
    }
    return order;
  };
  const auto a = epoch_order();
  const auto b = epoch_order();
  EXPECT_NE(a, b);  // 1/720 chance of collision, deterministic seed avoids
}

TEST(BprSamplerTest, DenseUserStillFindsNegative) {
  // User 0 interacted with 4 of 5 items: rejection sampling must still
  // terminate and return the single remaining item.
  graph::BipartiteGraph g(1, 5, {{0, 0}, {0, 1}, {0, 2}, {0, 3}});
  BprSampler sampler(&g);
  util::Rng rng(5);
  sampler.BeginEpoch(&rng);
  BprBatch batch;
  while (sampler.NextBatch(10, &rng, &batch)) {
    for (int64_t k = 0; k < batch.size(); ++k) {
      EXPECT_EQ(batch.neg_items[static_cast<size_t>(k)], 4);
    }
  }
}

TEST(BprSamplerDeathTest, SaturatedUserAborts) {
  graph::BipartiteGraph g(1, 2, {{0, 0}, {0, 1}});
  BprSampler sampler(&g);
  util::Rng rng(6);
  sampler.BeginEpoch(&rng);
  BprBatch batch;
  EXPECT_DEATH((void)sampler.NextBatch(2, &rng, &batch),
               "interacted with every item");
}

}  // namespace
}  // namespace layergcn::train
