// Shared helpers for the unit tests: random matrices, numerical gradient
// checking against the autograd engine, and tiny fixture datasets.

#ifndef LAYERGCN_TESTS_TEST_UTIL_H_
#define LAYERGCN_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "data/dataset.h"
#include "data/split.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace layergcn::testing {

/// Uniform random matrix in [lo, hi].
inline tensor::Matrix RandomMatrix(int64_t rows, int64_t cols, util::Rng* rng,
                                   float lo = -1.f, float hi = 1.f) {
  tensor::Matrix m(rows, cols);
  m.UniformInit(rng, lo, hi);
  return m;
}

/// A loss builder: receives a tape and leaf Vars (one per parameter, in
/// order) and returns a scalar Var.
using LossBuilder =
    std::function<ag::Var(ag::Tape*, const std::vector<ag::Var>&)>;

/// Checks d(loss)/d(params) against central differences. `params` are
/// perturbed in place and restored. Gradients must match within
/// rel_tol (relative to max magnitude) or abs_tol, whichever is looser.
/// At most `max_checks` entries per parameter are probed (strided).
inline void ExpectGradientsMatch(const LossBuilder& build,
                                 std::vector<tensor::Matrix*> params,
                                 float eps = 1e-2f, float rel_tol = 2e-2f,
                                 float abs_tol = 2e-3f,
                                 int64_t max_checks = 64) {
  // Analytic gradients.
  std::vector<tensor::Matrix> grads;
  grads.reserve(params.size());
  for (tensor::Matrix* p : params) grads.emplace_back(p->rows(), p->cols());
  {
    ag::Tape tape;
    std::vector<ag::Var> leaves;
    for (size_t i = 0; i < params.size(); ++i) {
      leaves.push_back(tape.Parameter(params[i], &grads[i]));
    }
    ag::Var loss = build(&tape, leaves);
    tape.Backward(loss);
  }
  auto eval_loss = [&]() -> double {
    ag::Tape tape;
    std::vector<ag::Var> leaves;
    std::vector<tensor::Matrix> sink;
    sink.reserve(params.size());
    for (tensor::Matrix* p : params) sink.emplace_back(p->rows(), p->cols());
    for (size_t i = 0; i < params.size(); ++i) {
      leaves.push_back(tape.Parameter(params[i], &sink[i]));
    }
    return tape.value(build(&tape, leaves)).scalar();
  };
  for (size_t pi = 0; pi < params.size(); ++pi) {
    tensor::Matrix* p = params[pi];
    const int64_t n = p->size();
    const int64_t stride = std::max<int64_t>(1, n / max_checks);
    for (int64_t i = 0; i < n; i += stride) {
      const float orig = p->data()[i];
      p->data()[i] = orig + eps;
      const double up = eval_loss();
      p->data()[i] = orig - eps;
      const double down = eval_loss();
      p->data()[i] = orig;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic = grads[pi].data()[i];
      const double scale =
          std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
      EXPECT_NEAR(analytic, numeric,
                  std::max(static_cast<double>(abs_tol),
                           static_cast<double>(rel_tol) * scale))
          << "param " << pi << " entry " << i;
    }
  }
}

/// A tiny deterministic dataset: 6 users, 5 items, hand-written
/// chronology so the split is stable. Every user has train/valid/test
/// items.
inline data::Dataset TinyDataset() {
  std::vector<data::Interaction> all;
  int64_t ts = 0;
  // Users 0-2 like items 0-2; users 3-5 like items 2-4 (two clusters).
  const int32_t cluster_a[][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {1, 2},
                                  {2, 0}, {2, 1}, {2, 2}, {0, 2}};
  const int32_t cluster_b[][2] = {{3, 2}, {3, 3}, {4, 3}, {4, 4}, {4, 2},
                                  {5, 3}, {5, 4}, {5, 2}, {3, 4}};
  for (const auto& p : cluster_a) all.push_back({p[0], p[1], ts++});
  for (const auto& p : cluster_b) all.push_back({p[0], p[1], ts++});
  // Interleave a second wave so every user appears in the held-out tail.
  const int32_t tail[][2] = {{0, 3}, {1, 3}, {2, 3}, {3, 0}, {4, 0}, {5, 0},
                             {0, 4}, {1, 4}, {2, 4}, {3, 1}, {4, 1}, {5, 1}};
  for (const auto& p : tail) all.push_back({p[0], p[1], ts++});
  return data::ChronologicalSplitDataset("tiny", 6, 5, std::move(all), 0.6,
                                         0.2);
}

}  // namespace layergcn::testing

#endif  // LAYERGCN_TESTS_TEST_UTIL_H_
