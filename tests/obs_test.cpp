// Tests for the observability subsystem: metrics registry exactness under
// concurrency, histogram bucketing, trace-span nesting, JSON round-trips,
// and the trainer's JSONL telemetry stream.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "models/bpr_mf.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "test_util.h"
#include "train/trainer.h"

namespace layergcn::obs {
namespace {

using layergcn::testing::TinyDataset;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    SetTraceEnabled(false);
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    SetTraceEnabled(false);
    TraceRecorder::Global().Clear();
  }
};

TEST_F(ObsTest, CounterConcurrentAddsSumExactly) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kAddsPerThread; ++i) c->Add(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Total(), 3 * kThreads * kAddsPerThread);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  Gauge* g = MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(1.5);
  g->Set(-2.25);
  EXPECT_DOUBLE_EQ(g->Get(), -2.25);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  Histogram h({10.0, 100.0, 1000.0});
  // v lands in the first bucket with v <= bound; above the last bound it
  // goes to the overflow bucket.
  h.Observe(0.0);     // <= 10
  h.Observe(10.0);    // <= 10 (inclusive upper edge)
  h.Observe(10.5);    // <= 100
  h.Observe(100.0);   // <= 100
  h.Observe(999.9);   // <= 1000
  h.Observe(1000.1);  // overflow
  h.Observe(1e12);    // overflow
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 2u);
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_NEAR(h.Sum(), 0.0 + 10.0 + 10.5 + 100.0 + 999.9 + 1000.1 + 1e12,
              1e-3);
}

TEST_F(ObsTest, HistogramSortsAndDeduplicatesBounds) {
  Histogram h({100.0, 10.0, 100.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{10.0, 100.0}));
}

#if LAYERGCN_OBS_ENABLED
TEST_F(ObsTest, SpanAccumulatesSumAndCount) {
  Counter* sum = MetricsRegistry::Global().GetCounter("span.test.unit.sum_us");
  Counter* count = MetricsRegistry::Global().GetCounter("span.test.unit.count");
  sum->Reset();
  count->Reset();
  for (int i = 0; i < 5; ++i) {
    OBS_SPAN("test.unit");
  }
  EXPECT_EQ(count->Total(), 5u);
}

TEST_F(ObsTest, NestedSpansRecordParentChildOrdering) {
  SetTraceEnabled(true);
  {
    OBS_SPAN("test.parent");
    {
      OBS_SPAN("test.child");
    }
  }
  SetTraceEnabled(false);
  const std::vector<TraceEvent> events = TraceRecorder::Global().Snapshot();
  const TraceEvent* parent = nullptr;
  const TraceEvent* child = nullptr;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "test.parent") parent = &e;
    if (std::string(e.name) == "test.child") child = &e;
  }
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(parent->tid, child->tid);
  EXPECT_EQ(child->depth, parent->depth + 1);
  // Child interval contained in the parent interval.
  EXPECT_GE(child->start_us, parent->start_us);
  EXPECT_LE(child->start_us + child->dur_us,
            parent->start_us + parent->dur_us);
}

TEST_F(ObsTest, ChromeTraceJsonIsValidAndCarriesEvents) {
  SetTraceEnabled(true);
  {
    OBS_SPAN("test.export");
  }
  SetTraceEnabled(false);
  const std::string doc = TraceRecorder::Global().ChromeTraceJson();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &root, &error)) << error;
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::kArray);
  bool found = false;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.Find("name");
    if (name != nullptr && name->string == "test.export") {
      found = true;
      const JsonValue* ph = e.Find("ph");
      ASSERT_NE(ph, nullptr);
      EXPECT_EQ(ph->string, "X");
      EXPECT_NE(e.Find("ts"), nullptr);
      EXPECT_NE(e.Find("dur"), nullptr);
      EXPECT_NE(e.Find("tid"), nullptr);
    }
  }
  EXPECT_TRUE(found);
}
#endif  // LAYERGCN_OBS_ENABLED

TEST_F(ObsTest, SnapshotJsonParses) {
  // Talk to the registry directly: this must hold with the OBS macros
  // compiled out too.
  MetricsRegistry::Global().GetCounter("test.snapshot_counter")->Add(2);
  MetricsRegistry::Global().GetGauge("test.snapshot_gauge")->Set(0.5);
  MetricsRegistry::Global()
      .GetHistogram("test.snapshot_hist", {1.0, 2.0})
      ->Observe(1.5);
  const std::string doc = MetricsRegistry::Global().SnapshotJson();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &root, &error)) << error;
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->Find("test.snapshot_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_GE(c->number, 2.0);
  const JsonValue* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  EXPECT_NE(hists->Find("test.snapshot_hist"), nullptr);
}

TEST_F(ObsTest, EpochTelemetryJsonRoundTrips) {
  EpochTelemetry rec;
  rec.epoch = 3;
  rec.loss = 0.6931471805599453;  // needs all 17 digits to round-trip
  rec.batch_count = 12;
  rec.batch_loss_min = 0.1;
  rec.batch_loss_max = 0.9;
  rec.batch_loss_mean = 0.45;
  rec.grad_norm = 1.25;
  rec.embedding_norm = 7.5;
  rec.adam_lr = 1e-3;
  rec.adam_steps = 36;
  rec.neg_sampled = 100;
  rec.neg_rejected = 4;
  rec.epoch_seconds = 0.25;
  rec.has_eval = true;
  rec.eval_k = 20;
  rec.eval_recall = 0.125;
  rec.eval_ndcg = 0.0625;
  const std::string line = EpochTelemetryJson(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &root, &error)) << error;
  EXPECT_EQ(root.Find("type")->string, "epoch");
  EXPECT_EQ(root.Find("epoch")->number, 3.0);
  EXPECT_EQ(root.Find("loss")->number, rec.loss);  // exact round-trip
  EXPECT_EQ(root.Find("batch_count")->number, 12.0);
  EXPECT_EQ(root.Find("eval_k")->number, 20.0);
  EXPECT_EQ(root.Find("eval_recall")->number, 0.125);
}

TEST_F(ObsTest, EpochTelemetryJsonOmitsEvalFieldsWhenAbsent) {
  EpochTelemetry rec;
  rec.epoch = 1;
  const std::string line = EpochTelemetryJson(rec);
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(line, &root, &error)) << error;
  EXPECT_EQ(root.Find("eval_recall"), nullptr);
  EXPECT_EQ(root.Find("eval_k"), nullptr);
}

TEST_F(ObsTest, JsonWriterEscapesAndHandlesNonFinite) {
  JsonWriter w;
  w.BeginObject()
      .Key("s")
      .String("a\"b\\c\n\t")
      .Key("inf")
      .Number(std::numeric_limits<double>::infinity())
      .EndObject();
  JsonValue root;
  std::string error;
  ASSERT_TRUE(ParseJson(w.str(), &root, &error)) << error;
  EXPECT_EQ(root.Find("s")->string, "a\"b\\c\n\t");
  EXPECT_EQ(root.Find("inf")->type, JsonValue::Type::kNull);
}

TEST_F(ObsTest, ParseJsonRejectsMalformedInput) {
  JsonValue out;
  EXPECT_FALSE(ParseJson("{\"a\":}", &out, nullptr));
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &out, nullptr));
  EXPECT_FALSE(ParseJson("[1,2,", &out, nullptr));
  EXPECT_FALSE(ParseJson("", &out, nullptr));
}

// End-to-end: train a tiny model with a telemetry sink and verify the JSONL
// stream matches the TrainResult exactly.
TEST_F(ObsTest, TrainerStreamsPerEpochTelemetry) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.batch_size = 4;
  cfg.max_epochs = 6;
  cfg.early_stop_patience = 50;
  cfg.l2_reg = 1e-4;
  cfg.seed = 7;

  const std::string path =
      ::testing::TempDir() + "/layergcn_obs_telemetry.jsonl";
  train::TrainOptions options;
  options.validation_k = 2;
  options.report_ks = {1, 2};
  options.telemetry_path = path;
  const train::TrainResult result =
      train::FitRecommender(&model, ds, cfg, options);
  EXPECT_EQ(result.telemetry_path, path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<JsonValue> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue root;
    std::string error;
    ASSERT_TRUE(ParseJson(line, &root, &error)) << error << ": " << line;
    records.push_back(std::move(root));
  }
  ASSERT_EQ(static_cast<int>(records.size()), result.epochs_run);
  ASSERT_GE(records.size(), 1u);

  for (size_t i = 0; i < records.size(); ++i) {
    const JsonValue& r = records[i];
    EXPECT_EQ(r.Find("type")->string, "epoch");
    EXPECT_EQ(r.Find("epoch")->number, static_cast<double>(i + 1));
    // Loss in the stream equals TrainResult::epoch_losses bit-for-bit
    // (%.17g round-trip).
    EXPECT_EQ(r.Find("loss")->number, result.epoch_losses[i]);
    EXPECT_TRUE(std::isfinite(r.Find("loss")->number));
    EXPECT_GT(r.Find("batch_count")->number, 0.0);
    EXPECT_TRUE(std::isfinite(r.Find("grad_norm")->number));
    EXPECT_GT(r.Find("embedding_norm")->number, 0.0);
#if LAYERGCN_OBS_ENABLED
    // These fields come from the instrumentation counters/gauges and are
    // zero when the OBS macros are compiled out.
    EXPECT_DOUBLE_EQ(r.Find("adam_lr")->number, cfg.learning_rate);
    EXPECT_GT(r.Find("neg_sampled")->number, 0.0);
#endif
    EXPECT_GT(r.Find("epoch_seconds")->number, 0.0);
    // eval_every defaults to 1, so every epoch carries validation metrics.
    ASSERT_NE(r.Find("eval_recall"), nullptr);
    EXPECT_EQ(r.Find("eval_k")->number, 2.0);
  }
  std::remove(path.c_str());
}

#if LAYERGCN_OBS_ENABLED
TEST_F(ObsTest, TrainingEmitsHotPathCountersAndSpans) {
  const MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.batch_size = 4;
  cfg.max_epochs = 2;
  cfg.seed = 7;
  train::FitRecommender(&model, ds, cfg);
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  EXPECT_GT(after.CounterDelta(before, "gemm.calls"), 0u);
  EXPECT_GT(after.CounterDelta(before, "bpr.triples"), 0u);
  EXPECT_GT(after.CounterDelta(before, "adam.steps"), 0u);
  EXPECT_GT(after.CounterDelta(before, "span.train.batch.count"), 0u);
  EXPECT_GT(after.CounterDelta(before, "span.train.forward.count"), 0u);
  EXPECT_GT(after.CounterDelta(before, "span.train.backward.count"), 0u);
  EXPECT_GT(after.CounterDelta(before, "span.adam.step.count"), 0u);
  EXPECT_GT(after.CounterDelta(before, "span.tape.backward.count"), 0u);
}
#endif  // LAYERGCN_OBS_ENABLED

#if LAYERGCN_OBS_ENABLED
TEST_F(ObsTest, DisabledMetricsSkipUpdates) {
  Counter* c = MetricsRegistry::Global().GetCounter("test.disabled");
  c->Reset();
  SetEnabled(false);
  OBS_COUNT("test.disabled", 7);
  SetEnabled(true);
  EXPECT_EQ(c->Total(), 0u);
  OBS_COUNT("test.disabled", 7);
  EXPECT_EQ(c->Total(), 7u);
}
#endif  // LAYERGCN_OBS_ENABLED

}  // namespace
}  // namespace layergcn::obs
