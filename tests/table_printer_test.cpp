#include "util/table_printer.h"

#include "gtest/gtest.h"

namespace layergcn::util {
namespace {

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t("Title");
  t.SetHeader({"Model", "R@20"});
  t.AddRow({"LightGCN", "0.3321"});
  t.AddRow({"LayerGCN", "0.3979"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| Model    |"), std::string::npos);
  EXPECT_NE(s.find("| LayerGCN |"), std::string::npos);
  // Rules above header, below header, below body.
  size_t rules = 0;
  for (size_t pos = s.find("+-"); pos != std::string::npos;
       pos = s.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 3u);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.39788), "0.3979");  // rounds
  EXPECT_EQ(TablePrinter::Num(1.0, 2), "1.00");
  EXPECT_EQ(TablePrinter::Num(-0.5, 1), "-0.5");
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter t;
  t.SetHeader({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, CsvPlainValuesUnquoted) {
  TablePrinter t;
  t.SetHeader({"k", "v"});
  t.AddRow({"1", "2.5"});
  EXPECT_EQ(t.ToCsv(), "k,v\n1,2.5\n");
}

TEST(TablePrinterDeathTest, RowWidthMismatchAborts) {
  TablePrinter t;
  t.SetHeader({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "row width");
}

}  // namespace
}  // namespace layergcn::util
