// Two-stage retrieval suite: ItemIndex build determinism across thread
// counts, subset-kernel parity against the full-scan kernels for all three
// encodings, candidate edge cases (empty cells, nprobe >= cells, K larger
// than the candidate pool), index-build failure falling back to exact
// retrieval, and the score cache keying on retrieval mode.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "eval/fused_rank.h"
#include "eval/quant_kernel.h"
#include "obs/metrics.h"
#include "serve/item_index.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace layergcn::serve {
namespace {

namespace fs = std::filesystem;

std::string TempDirFor(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

tensor::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  tensor::Matrix m(rows, cols);
  util::Rng rng(seed);
  m.UniformInit(&rng, -1.f, 1.f);
  return m;
}

// Clustered items: `clusters` well-separated centers, each item a center
// plus small noise, so a k-means index recovers the structure and a user
// sitting near one center finds its whole top-K inside one probed cell.
tensor::Matrix ClusteredItems(int64_t num_items, int64_t dim,
                              int64_t clusters, uint64_t seed) {
  tensor::Matrix centers = RandomMatrix(clusters, dim, seed);
  for (int64_t c = 0; c < clusters; ++c) {
    float* row = centers.row(c);
    for (int64_t p = 0; p < dim; ++p) row[p] *= 4.f;
  }
  tensor::Matrix items(num_items, dim);
  util::Rng rng(seed + 1);
  for (int64_t j = 0; j < num_items; ++j) {
    const float* center = centers.row(j % clusters);
    float* row = items.row(j);
    for (int64_t p = 0; p < dim; ++p) {
      row[p] = center[p] + static_cast<float>(rng.NextUniform(-0.05, 0.05));
    }
  }
  return items;
}

struct IndexImage {
  std::vector<float> centroids;
  std::vector<int64_t> offsets;
  std::vector<int32_t> items;
};

IndexImage Flatten(const ItemIndex& index) {
  IndexImage image;
  const tensor::Matrix& c = index.centroids();
  image.centroids.assign(c.data(), c.data() + c.rows() * c.cols());
  image.offsets.reserve(index.cells() + 1);
  int64_t total = 0;
  for (int32_t cell = 0; cell < index.cells(); ++cell) {
    image.offsets.push_back(total);
    total += index.cell_size(cell);
    const int32_t* begin = index.cell_begin(cell);
    image.items.insert(image.items.end(), begin, begin + index.cell_size(cell));
  }
  image.offsets.push_back(total);
  return image;
}

class RetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override { util::fault::DisarmAll(); }
  void TearDown() override { util::fault::DisarmAll(); }
};

// ------------------------------------------------------------ index build

TEST_F(RetrievalTest, IndexBuildDeterministicAcrossThreadCounts) {
  const tensor::Matrix items = ClusteredItems(500, 16, 12, 0xabc);
  ItemIndexOptions options;
  options.cells = 16;

  IndexImage reference;
  bool have_reference = false;
  for (const int threads : {1, 2, 8}) {
    util::ThreadPool pool(threads);
    util::parallel::ScopedComputePool scoped(&pool);
    const auto built = ItemIndex::Build(items, options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const IndexImage image = Flatten(*built.value());
    if (!have_reference) {
      reference = image;
      have_reference = true;
      continue;
    }
    // Bit-identical, not approximately equal: the same centroids bytes,
    // the same CSR layout, the same member order.
    ASSERT_EQ(image.centroids.size(), reference.centroids.size());
    EXPECT_EQ(std::memcmp(image.centroids.data(), reference.centroids.data(),
                          reference.centroids.size() * sizeof(float)),
              0)
        << "centroids differ at " << threads << " threads";
    EXPECT_EQ(image.offsets, reference.offsets)
        << "cell offsets differ at " << threads << " threads";
    EXPECT_EQ(image.items, reference.items)
        << "cell members differ at " << threads << " threads";
  }
}

TEST_F(RetrievalTest, IndexPartitionsAllItemsSortedWithinCells) {
  const tensor::Matrix items = ClusteredItems(300, 8, 7, 0x77);
  ItemIndexOptions options;
  options.cells = 8;
  const auto built = ItemIndex::Build(items, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const ItemIndex& index = *built.value();

  std::vector<bool> seen(300, false);
  int64_t total = 0;
  for (int32_t cell = 0; cell < index.cells(); ++cell) {
    const int32_t* begin = index.cell_begin(cell);
    int32_t prev = -1;
    for (int64_t i = 0; i < index.cell_size(cell); ++i) {
      const int32_t item = begin[i];
      ASSERT_GE(item, 0);
      ASSERT_LT(item, 300);
      EXPECT_GT(item, prev) << "cell members not sorted ascending";
      prev = item;
      EXPECT_FALSE(seen[item]) << "item " << item << " in two cells";
      seen[item] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, 300);
}

TEST_F(RetrievalTest, MoreCellsThanItemsClampsAndTolaratesEmptyCells) {
  const tensor::Matrix items = RandomMatrix(5, 4, 0x5);
  ItemIndexOptions options;
  options.cells = 64;  // > num_items: clamped to 5
  const auto built = ItemIndex::Build(items, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const ItemIndex& index = *built.value();
  EXPECT_EQ(index.cells(), 5);

  // Duplicate points can still empty a cell; probing past every cell must
  // return all items regardless.
  const tensor::Matrix user = RandomMatrix(1, 4, 0x6);
  std::vector<int32_t> probe;
  index.TopCells(user.row(0), 1000, &probe);  // nprobe >> cells: clamped
  EXPECT_EQ(static_cast<int32_t>(probe.size()), index.cells());
  std::vector<int32_t> candidates;
  index.GatherCandidates(probe, &candidates);
  EXPECT_EQ(candidates, (std::vector<int32_t>{0, 1, 2, 3, 4}));
}

TEST_F(RetrievalTest, BuildRejectsEmptyAndNonFinite) {
  EXPECT_FALSE(ItemIndex::Build(tensor::Matrix(), {}).ok());
  tensor::Matrix bad = RandomMatrix(4, 4, 0x9);
  bad.row(2)[1] = std::numeric_limits<float>::quiet_NaN();
  const auto built = ItemIndex::Build(bad, {});
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), util::StatusCode::kDataLoss);
}

// --------------------------------------------------------- subset kernels

// With candidates = every item, the subset kernel must reproduce the full
// kernel's rankings AND score bits exactly — the contract the two-stage
// re-rank rests on.
TEST_F(RetrievalTest, SubsetParityF32AllItems) {
  const tensor::Matrix users = RandomMatrix(12, 24, 0x100);
  const tensor::Matrix items = RandomMatrix(200, 24, 0x101);
  std::vector<int32_t> user_ids;
  for (int32_t u = 0; u < 12; ++u) user_ids.push_back(u);
  std::vector<std::vector<int32_t>> exclude(12);
  for (int32_t u = 0; u < 12; ++u) exclude[u] = {u, u + 50, u + 100};
  std::vector<int32_t> all_items;
  for (int32_t j = 0; j < 200; ++j) all_items.push_back(j);

  for (const int threads : {1, 8}) {
    util::ThreadPool pool(threads);
    util::parallel::ScopedComputePool scoped(&pool);
    eval::FusedRankConfig config;
    config.enabled = true;
    std::vector<std::vector<float>> full_scores, subset_scores;
    const auto full = eval::FusedScoreTopK(users, user_ids, items, 20,
                                           &exclude, config, nullptr,
                                           &full_scores);
    const auto subset = eval::FusedScoreTopKSubset(
        users, user_ids, items, all_items, 20, &exclude, config, nullptr,
        &subset_scores);
    ASSERT_EQ(subset, full) << "rankings diverge at " << threads
                            << " threads";
    for (size_t u = 0; u < full_scores.size(); ++u) {
      for (size_t r = 0; r < full_scores[u].size(); ++r) {
        EXPECT_EQ(subset_scores[u][r], full_scores[u][r])
            << "score bits diverge user " << u << " rank " << r;
      }
    }
  }
}

// A strict candidate subset must produce the full ranking filtered to the
// candidate set (same relative order, same score bits).
TEST_F(RetrievalTest, SubsetParityF32StrictSubset) {
  const tensor::Matrix users = RandomMatrix(6, 16, 0x200);
  const tensor::Matrix items = RandomMatrix(150, 16, 0x201);
  std::vector<int32_t> user_ids{0, 2, 5};
  std::vector<int32_t> candidates;
  for (int32_t j = 0; j < 150; j += 3) candidates.push_back(j);  // every 3rd

  eval::FusedRankConfig config;
  config.enabled = true;
  std::vector<std::vector<float>> full_scores, subset_scores;
  const auto full = eval::FusedScoreTopK(users, user_ids, items, 150,
                                         nullptr, config, nullptr,
                                         &full_scores);
  const auto subset = eval::FusedScoreTopKSubset(
      users, user_ids, items, candidates, 20, nullptr, config, nullptr,
      &subset_scores);
  for (size_t u = 0; u < user_ids.size(); ++u) {
    std::vector<int32_t> expect_items;
    std::vector<float> expect_scores;
    for (size_t r = 0;
         r < full[u].size() && expect_items.size() < 20; ++r) {
      if (full[u][r] % 3 == 0) {
        expect_items.push_back(full[u][r]);
        expect_scores.push_back(full_scores[u][r]);
      }
    }
    EXPECT_EQ(subset[u], expect_items);
    EXPECT_EQ(subset_scores[u], expect_scores);
  }
}

TEST_F(RetrievalTest, SubsetParityInt8AllItems) {
  const tensor::Matrix users = RandomMatrix(8, 32, 0x300);
  const tensor::Matrix items = RandomMatrix(120, 32, 0x301);
  const tensor::Int8Rows user_q = tensor::QuantizeInt8PerRow(users);
  const tensor::Int8Panel panel =
      tensor::TransposeToPanel(tensor::QuantizeInt8PerRow(items));
  std::vector<int32_t> user_ids{0, 3, 7};
  std::vector<std::vector<int32_t>> exclude(8);
  exclude[3] = {10, 20, 30};
  std::vector<int32_t> all_items;
  for (int32_t j = 0; j < 120; ++j) all_items.push_back(j);

  std::vector<std::vector<float>> full_scores, subset_scores;
  const auto full = eval::QuantScoreTopKInt8(user_q, user_ids, panel, 15,
                                             &exclude, {}, nullptr,
                                             &full_scores);
  const auto subset = eval::QuantScoreTopKInt8Subset(
      user_q, user_ids, panel, all_items, 15, &exclude, {}, nullptr,
      &subset_scores);
  EXPECT_EQ(subset, full);
  EXPECT_EQ(subset_scores, full_scores);
}

TEST_F(RetrievalTest, SubsetParityBf16AllItems) {
  const tensor::Matrix users = RandomMatrix(8, 32, 0x400);
  const tensor::Matrix items = RandomMatrix(120, 32, 0x401);
  const tensor::Bf16Rows user_q = tensor::ToBf16Rows(users);
  const tensor::Bf16Panel panel =
      tensor::TransposeToPanel(tensor::ToBf16Rows(items));
  std::vector<int32_t> user_ids{1, 4};
  std::vector<int32_t> all_items;
  for (int32_t j = 0; j < 120; ++j) all_items.push_back(j);

  std::vector<std::vector<float>> full_scores, subset_scores;
  const auto full = eval::QuantScoreTopKBf16(user_q, user_ids, panel, 15,
                                             nullptr, {}, nullptr,
                                             &full_scores);
  const auto subset = eval::QuantScoreTopKBf16Subset(
      user_q, user_ids, panel, all_items, 15, nullptr, {}, nullptr,
      &subset_scores);
  EXPECT_EQ(subset, full);
  EXPECT_EQ(subset_scores, full_scores);
}

TEST_F(RetrievalTest, SubsetKLargerThanCandidatePool) {
  const tensor::Matrix users = RandomMatrix(2, 8, 0x500);
  const tensor::Matrix items = RandomMatrix(50, 8, 0x501);
  std::vector<int32_t> user_ids{0, 1};
  std::vector<int32_t> candidates{3, 17, 41};
  std::vector<std::vector<int32_t>> exclude(2);
  exclude[1] = {17};

  eval::FusedRankConfig config;
  config.enabled = true;
  const auto ranked = eval::FusedScoreTopKSubset(
      users, user_ids, items, candidates, 10, &exclude, config);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].size(), 3u);  // K = 10, only 3 candidates
  EXPECT_EQ(ranked[1].size(), 2u);  // one candidate excluded
  for (const int32_t item : ranked[1]) EXPECT_NE(item, 17);
}

// --------------------------------------------------------- service wiring

train::ServingExport ClusteredExport(int64_t version, int64_t num_users,
                                     int64_t num_items) {
  train::ServingExport ex;
  ex.version = version;
  ex.item_emb = ClusteredItems(num_items, 16, 10, 0x600);
  ex.user_emb = tensor::Matrix(num_users, 16);
  util::Rng rng(0x601);
  for (int64_t u = 0; u < num_users; ++u) {
    // Users sit near item clusters so ivf retrieval has signal to find.
    const float* anchor = ex.item_emb.row(u % num_items);
    float* row = ex.user_emb.row(u);
    for (int64_t p = 0; p < 16; ++p) {
      row[p] = anchor[p] + static_cast<float>(rng.NextUniform(-0.1, 0.1));
    }
  }
  ex.user_history.assign(num_users, {});
  for (int64_t u = 0; u < num_users; ++u) {
    ex.user_history[u] = {static_cast<int32_t>(u % num_items)};
  }
  return ex;
}

// nprobe >= cells makes the candidate set the whole item space, so the ivf
// response must be bit-identical to the exact response end to end.
TEST_F(RetrievalTest, IvfWithAllCellsProbedMatchesExact) {
  const std::string dir = TempDirFor("retrieval_allcells");
  ASSERT_TRUE(train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1),
                                       ClusteredExport(1, 8, 160))
                  .ok());
  SnapshotStore store(dir);
  ItemIndexOptions index_options;
  index_options.cells = 8;
  store.SetIndexOptions(index_options);
  ASSERT_TRUE(store.Reload().ok());
  ASSERT_TRUE(store.current()->has_index());

  RecommendServiceOptions options;
  options.retrieval = RetrievalMode::kIvf;
  options.nprobe = 1000;             // clamped to every cell
  options.score_cache_capacity = 0;  // no caching in a parity test
  RecommendService service(&store);
  RecommendService ivf_service(&store, options);

  for (int32_t u = 0; u < 8; ++u) {
    RecommendRequest req;
    req.user_id = u;
    req.k = 20;
    const auto ivf = ivf_service.Recommend(req);
    ASSERT_TRUE(ivf.ok()) << ivf.status().ToString();
    EXPECT_EQ(ivf.value().retrieval, RetrievalMode::kIvf);
    EXPECT_EQ(ivf.value().candidates, 160);

    req.exact = true;
    const auto exact = ivf_service.Recommend(req);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_EQ(exact.value().retrieval, RetrievalMode::kExact);
    ASSERT_EQ(ivf.value().items.size(), exact.value().items.size());
    for (size_t r = 0; r < exact.value().items.size(); ++r) {
      EXPECT_EQ(ivf.value().items[r].item, exact.value().items[r].item);
      EXPECT_EQ(ivf.value().items[r].score, exact.value().items[r].score);
    }
  }
}

TEST_F(RetrievalTest, IndexBuildFailureFallsBackToExact) {
  const std::string dir = TempDirFor("retrieval_buildfail");
  ASSERT_TRUE(train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1),
                                       ClusteredExport(1, 4, 80))
                  .ok());
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  SnapshotStore store(dir);
  ItemIndexOptions index_options;
  index_options.cells = 8;
  store.SetIndexOptions(index_options);
  util::fault::Arm("serve.index_build_fail");
  // The build fails but the snapshot still publishes.
  ASSERT_TRUE(store.Reload().ok());
  ASSERT_NE(store.current(), nullptr);
  EXPECT_FALSE(store.current()->has_index());

  RecommendServiceOptions options;
  options.retrieval = RetrievalMode::kIvf;
  RecommendService service(&store, options);
  RecommendRequest req;
  req.user_id = 1;
  req.k = 5;
  const auto resp = service.Recommend(req);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp.value().retrieval, RetrievalMode::kExact);
  EXPECT_EQ(resp.value().candidates, 80);

  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterDelta(before, "serve.retrieval.index_build_failures"),
            1u);
  EXPECT_GE(after.CounterDelta(before, "serve.retrieval.exact_fallbacks"), 1u);
}

TEST_F(RetrievalTest, ScoreCacheKeyedByRetrievalMode) {
  const std::string dir = TempDirFor("retrieval_cachemode");
  ASSERT_TRUE(train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1),
                                       ClusteredExport(1, 4, 80))
                  .ok());
  SnapshotStore store(dir);
  ItemIndexOptions index_options;
  index_options.cells = 8;
  store.SetIndexOptions(index_options);
  ASSERT_TRUE(store.Reload().ok());

  RecommendServiceOptions options;
  options.retrieval = RetrievalMode::kIvf;
  options.nprobe = 2;
  RecommendService service(&store, options);

  RecommendRequest req;
  req.user_id = 2;
  req.k = 5;
  auto resp = service.Recommend(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().cached);
  EXPECT_EQ(resp.value().retrieval, RetrievalMode::kIvf);

  // Same user again: the ivf entry serves ivf requests.
  resp = service.Recommend(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp.value().cached);
  EXPECT_EQ(resp.value().retrieval, RetrievalMode::kIvf);

  // An exact override must MISS the ivf entry — an approximate top-K must
  // never answer a request that demanded the exact one.
  req.exact = true;
  resp = service.Recommend(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().cached);
  EXPECT_EQ(resp.value().retrieval, RetrievalMode::kExact);

  // And the exact entry it cached must not serve the next ivf request.
  req.exact = false;
  resp = service.Recommend(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp.value().cached);
  EXPECT_EQ(resp.value().retrieval, RetrievalMode::kIvf);
}

TEST_F(RetrievalTest, ParseRetrievalModeRoundTrip) {
  RetrievalMode mode;
  EXPECT_TRUE(ParseRetrievalMode("exact", &mode));
  EXPECT_EQ(mode, RetrievalMode::kExact);
  EXPECT_TRUE(ParseRetrievalMode("ivf", &mode));
  EXPECT_EQ(mode, RetrievalMode::kIvf);
  EXPECT_FALSE(ParseRetrievalMode("annoy", &mode));
  EXPECT_STREQ(RetrievalModeName(RetrievalMode::kExact), "exact");
  EXPECT_STREQ(RetrievalModeName(RetrievalMode::kIvf), "ivf");
}

}  // namespace
}  // namespace layergcn::serve
