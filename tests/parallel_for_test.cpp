#include "util/parallel.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace layergcn::util::parallel {
namespace {

using BlockList = std::vector<std::pair<int64_t, int64_t>>;

// Runs For and records every (lo, hi) block it dispatched, in sorted order.
BlockList CollectBlocks(int64_t n, int64_t grain) {
  BlockList blocks;
  std::mutex mu;
  For(
      n,
      [&](int64_t lo, int64_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        blocks.emplace_back(lo, hi);
      },
      grain);
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

TEST(ParallelPartitionTest, EmptyRangeNeverInvokesBody) {
  EXPECT_TRUE(CollectBlocks(0, 8).empty());
  EXPECT_EQ(NumBlocks(0, 8), 0);
  EXPECT_EQ(NumBlocks(-5, 8), 0);
}

TEST(ParallelPartitionTest, SingleElementIsOneBlock) {
  EXPECT_EQ(CollectBlocks(1, 8), (BlockList{{0, 1}}));
  EXPECT_EQ(NumBlocks(1, 8), 1);
}

TEST(ParallelPartitionTest, RangeSmallerThanGrainIsOneBlock) {
  EXPECT_EQ(CollectBlocks(7, 8), (BlockList{{0, 7}}));
}

TEST(ParallelPartitionTest, ExactMultipleSplitsAtGrainBoundaries) {
  EXPECT_EQ(CollectBlocks(24, 8), (BlockList{{0, 8}, {8, 16}, {16, 24}}));
}

TEST(ParallelPartitionTest, RemainderFormsShortFinalBlock) {
  EXPECT_EQ(CollectBlocks(21, 8), (BlockList{{0, 8}, {8, 16}, {16, 21}}));
}

TEST(ParallelPartitionTest, NumBlocksMatchesDispatchedBlocks) {
  for (int64_t n : {0L, 1L, 7L, 8L, 9L, 63L, 64L, 65L, 1000L}) {
    EXPECT_EQ(NumBlocks(n, 8), static_cast<int64_t>(CollectBlocks(n, 8).size()))
        << "n=" << n;
  }
}

TEST(ParallelPartitionTest, PartitionIndependentOfPoolWidth) {
  BlockList reference;
  for (int width : {1, 2, 8}) {
    ThreadPool pool(width);
    ScopedComputePool scope(&pool);
    const BlockList blocks = CollectBlocks(1000, 16);
    if (reference.empty()) {
      reference = blocks;
    } else {
      EXPECT_EQ(blocks, reference) << "width=" << width;
    }
  }
}

TEST(ParallelForTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(8);
  ScopedComputePool scope(&pool);
  const int64_t n = 1003;
  std::vector<int> counts(static_cast<size_t>(n), 0);
  // Blocks own disjoint index ranges, so unsynchronized writes are safe.
  For(
      n,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ++counts[static_cast<size_t>(i)];
      },
      8);
  EXPECT_TRUE(std::all_of(counts.begin(), counts.end(),
                          [](int c) { return c == 1; }));
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  ScopedComputePool scope(&pool);
  const int64_t outer = 64;
  std::vector<double> results(static_cast<size_t>(outer), 0.0);
  For(
      outer,
      [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          // Inner call from a pool worker must run inline (a worker waiting
          // on its own pool would deadlock) with the same blocked math.
          results[static_cast<size_t>(i)] =
              Reduce(100, [](int64_t blo, int64_t bhi) {
                double s = 0.0;
                for (int64_t j = blo; j < bhi; ++j) s += static_cast<double>(j);
                return s;
              });
        }
      },
      1);
  for (double r : results) EXPECT_EQ(r, 4950.0);
}

TEST(ParallelReduceTest, EmptyRangeIsZero) {
  EXPECT_EQ(Reduce(0, [](int64_t, int64_t) { return 1.0; }), 0.0);
}

TEST(ParallelReduceTest, GrainOfOneSumsEveryBlock) {
  const double s = Reduce(
      1000, [](int64_t lo, int64_t) { return static_cast<double>(lo); }, 1);
  EXPECT_EQ(s, 499500.0);
}

TEST(ParallelReduceTest, BitExactAcrossPoolWidths) {
  Rng rng(123);
  std::vector<double> xs(100000);
  for (double& x : xs) x = rng.NextUniform(-1.0, 1.0);
  const auto block = [&](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) s += xs[static_cast<size_t>(i)];
    return s;
  };

  // The width-1 pool takes the inline path; wider pools run the blocks
  // concurrently. All must agree to the last bit.
  double reference = 0.0;
  for (int width : {1, 2, 8}) {
    ThreadPool pool(width);
    ScopedComputePool scope(&pool);
    const double s =
        Reduce(static_cast<int64_t>(xs.size()), block, /*grain=*/64);
    if (width == 1) {
      reference = s;
      // The inline path must equal a hand-rolled blocked sum.
      double manual = 0.0;
      for (size_t lo = 0; lo < xs.size(); lo += 64) {
        manual += block(static_cast<int64_t>(lo),
                        static_cast<int64_t>(std::min(lo + 64, xs.size())));
      }
      EXPECT_EQ(s, manual);
    } else {
      EXPECT_EQ(s, reference) << "width=" << width;
    }
  }
}

TEST(ParallelReduceTest, DeterministicAcrossRepeatedRuns) {
  ThreadPool pool(8);
  ScopedComputePool scope(&pool);
  Rng rng(7);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.NextGaussian();
  const auto block = [&](int64_t lo, int64_t hi) {
    double s = 0.0;
    for (int64_t i = lo; i < hi; ++i) s += xs[static_cast<size_t>(i)];
    return s;
  };
  const double first =
      Reduce(static_cast<int64_t>(xs.size()), block, /*grain=*/128);
  for (int run = 0; run < 10; ++run) {
    EXPECT_EQ(Reduce(static_cast<int64_t>(xs.size()), block, /*grain=*/128),
              first);
  }
}

TEST(ScatterAddRowsTest, BitIdenticalAcrossPoolWidths) {
  Rng rng(42);
  const int64_t batch = 5000, dim = 8, dst_rows = 300;
  tensor::Matrix src(batch, dim);
  src.UniformInit(&rng, -1.f, 1.f);
  tensor::Matrix base(dst_rows, dim);
  base.UniformInit(&rng, -1.f, 1.f);
  std::vector<int32_t> rows(static_cast<size_t>(batch));
  for (int32_t& r : rows) {
    r = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(dst_rows)));
  }

  tensor::Matrix reference;
  for (int width : {1, 2, 8}) {
    ThreadPool pool(width);
    ScopedComputePool scope(&pool);
    tensor::Matrix dst = base;
    tensor::ScatterAddRows(&dst, rows, src);
    if (width == 1) {
      reference = dst;
    } else {
      ASSERT_EQ(0, std::memcmp(dst.data(), reference.data(),
                               sizeof(float) * static_cast<size_t>(
                                                   reference.size())))
          << "width=" << width;
    }
  }
}

}  // namespace
}  // namespace layergcn::util::parallel
