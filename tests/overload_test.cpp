// Overload-control suite: AIMD limiter arithmetic on a synthetic clock,
// brownout ladder hysteresis, strict-priority admission/eviction, and a
// TSan-hunting storm that races Submit() floods against limiter
// adaptation, brownout transitions, and snapshot hot-swaps.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "serve/overload.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace layergcn::serve {
namespace {

namespace fs = std::filesystem;
using SloState = obs::SloMonitor::State;

std::string TempDirFor(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

train::ServingExport SmallExport(int64_t version) {
  train::ServingExport ex;
  ex.version = version;
  ex.user_emb = tensor::Matrix(3, 4);
  ex.item_emb = tensor::Matrix(6, 4);
  util::Rng rng(7 + static_cast<uint64_t>(version));
  ex.user_emb.UniformInit(&rng, -1.f, 1.f);
  ex.item_emb.UniformInit(&rng, -1.f, 1.f);
  ex.user_history = {{0, 1}, {0, 2}, {0, 1, 3}};
  return ex;
}

void SaveSmall(const std::string& dir, int64_t version) {
  const util::Status s = train::SaveServingExport(
      SnapshotStore::SnapshotPath(dir, version), SmallExport(version));
  ASSERT_TRUE(s.ok()) << s.ToString();
}

class OverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::DisarmAll();
    obs::SetEnabled(true);
  }
  void TearDown() override { util::fault::DisarmAll(); }
};

// --- Priority ------------------------------------------------------------

TEST_F(OverloadTest, PriorityNamesRoundTrip) {
  EXPECT_STREQ(PriorityName(Priority::kInteractive), "interactive");
  EXPECT_STREQ(PriorityName(Priority::kBatch), "batch");
  EXPECT_STREQ(PriorityName(Priority::kBackground), "background");
  Priority p = Priority::kBackground;
  EXPECT_TRUE(ParsePriority("interactive", &p));
  EXPECT_EQ(p, Priority::kInteractive);
  EXPECT_TRUE(ParsePriority("batch", &p));
  EXPECT_EQ(p, Priority::kBatch);
  EXPECT_TRUE(ParsePriority("background", &p));
  EXPECT_EQ(p, Priority::kBackground);
  EXPECT_FALSE(ParsePriority("urgent", &p));
  EXPECT_FALSE(ParsePriority("", &p));
}

// --- AdaptiveLimiter -----------------------------------------------------

AdaptiveLimiter::Options SmallLimiter() {
  AdaptiveLimiter::Options o;
  o.initial_limit = 8;
  o.min_limit = 1;
  o.max_limit = 16;
  o.latency_target_us = 1'000;
  o.decrease_factor = 0.5;
  o.decrease_cooldown_us = 1'000;
  o.increase_every = 2;
  return o;
}

TEST_F(OverloadTest, LimiterDecreasesMultiplicativelyWithCooldown) {
  AdaptiveLimiter limiter(SmallLimiter());
  EXPECT_EQ(limiter.limit(), 8);

  // Slow completion: multiplicative decrease.
  limiter.OnComplete(/*now_us=*/10'000, /*latency_us=*/5'000, false);
  EXPECT_EQ(limiter.limit(), 4);
  EXPECT_EQ(limiter.decreases(), 1);

  // A burst of slow completions inside the cooldown is ONE signal.
  limiter.OnComplete(10'100, 5'000, false);
  limiter.OnComplete(10'200, 5'000, false);
  EXPECT_EQ(limiter.limit(), 4);
  EXPECT_EQ(limiter.decreases(), 1);

  // Cooldown elapsed: the next slow completion squeezes again.
  limiter.OnComplete(11'100, 5'000, false);
  EXPECT_EQ(limiter.limit(), 2);

  // The congested flag forces a decrease regardless of latency (deadline
  // partials are overload symptoms even when they finished "fast").
  limiter.OnComplete(13'000, /*latency_us=*/10, /*congested=*/true);
  EXPECT_EQ(limiter.limit(), 1);

  // Floor: never below min_limit.
  limiter.OnComplete(15'000, 5'000, false);
  limiter.OnComplete(17'000, 5'000, false);
  EXPECT_EQ(limiter.limit(), 1);
}

TEST_F(OverloadTest, LimiterIncreasesAdditivelyOnGoodStreaks) {
  AdaptiveLimiter::Options o = SmallLimiter();
  o.initial_limit = 2;
  AdaptiveLimiter limiter(o);

  // increase_every good completions buy exactly +1.
  limiter.OnComplete(1'000, 100, false);
  EXPECT_EQ(limiter.limit(), 2);
  limiter.OnComplete(1'100, 100, false);
  EXPECT_EQ(limiter.limit(), 3);
  EXPECT_EQ(limiter.increases(), 1);

  // A congestion signal resets the streak: the next single good
  // completion must not increase.
  limiter.OnComplete(5'000, 100, false);
  limiter.OnComplete(9'000, 5'000, false);  // decrease, streak reset
  EXPECT_EQ(limiter.limit(), 1);
  limiter.OnComplete(9'100, 100, false);
  EXPECT_EQ(limiter.limit(), 1);
  limiter.OnComplete(9'200, 100, false);
  EXPECT_EQ(limiter.limit(), 2);

  // Ceiling: never above max_limit.
  AdaptiveLimiter::Options top = SmallLimiter();
  top.initial_limit = 16;
  AdaptiveLimiter capped(top);
  for (int i = 0; i < 10; ++i) capped.OnComplete(1'000 + i, 100, false);
  EXPECT_EQ(capped.limit(), 16);
  EXPECT_EQ(capped.increases(), 0);
}

TEST_F(OverloadTest, LimiterExpiryIsAnImmediateCongestionSignal) {
  AdaptiveLimiter limiter(SmallLimiter());
  limiter.OnExpired(10'000);
  EXPECT_EQ(limiter.limit(), 4);
  // Still subject to the cooldown: expiry storms are one signal too.
  limiter.OnExpired(10'500);
  EXPECT_EQ(limiter.limit(), 4);
  limiter.OnExpired(11'500);
  EXPECT_EQ(limiter.limit(), 2);
}

TEST_F(OverloadTest, LimiterSmoothsLatencyForRetryHints) {
  AdaptiveLimiter limiter(SmallLimiter());
  EXPECT_EQ(limiter.smoothed_latency_us(), 0u);
  limiter.OnComplete(1'000, 800, false);
  EXPECT_EQ(limiter.smoothed_latency_us(), 800u);  // first sample seeds
  limiter.OnComplete(2'000, 800, false);
  EXPECT_NEAR(static_cast<double>(limiter.smoothed_latency_us()), 800.0, 8.0);
}

// --- BrownoutController --------------------------------------------------

BrownoutController::Options FastBrownout() {
  BrownoutController::Options o;
  o.enabled = true;
  o.max_level = 3;
  o.step_down_hold_us = 1'000;
  o.step_up_hold_us = 10'000;
  return o;
}

TEST_F(OverloadTest, BrownoutWalksDownRungByRungAndRecoversSlowly) {
  BrownoutController ladder(FastBrownout());
  EXPECT_EQ(ladder.level(), BrownoutLevel::kNone);

  // Sustained breach: one rung per step_down_hold, not straight down.
  EXPECT_EQ(ladder.OnSloState(SloState::kBreach, 10'000), BrownoutLevel::kIvf);
  EXPECT_EQ(ladder.OnSloState(SloState::kBreach, 10'500), BrownoutLevel::kIvf);
  EXPECT_EQ(ladder.OnSloState(SloState::kBreach, 11'000),
            BrownoutLevel::kQuantized);
  EXPECT_EQ(ladder.OnSloState(SloState::kBreach, 12'000),
            BrownoutLevel::kCacheOnly);
  // Bottom rung holds.
  EXPECT_EQ(ladder.OnSloState(SloState::kBreach, 20'000),
            BrownoutLevel::kCacheOnly);
  EXPECT_EQ(ladder.transitions(), 3);

  // kWarn is the hysteresis band: no movement either way, and it resets
  // any recovery credit already earned.
  EXPECT_EQ(ladder.OnSloState(SloState::kOk, 30'000),
            BrownoutLevel::kCacheOnly);
  EXPECT_EQ(ladder.OnSloState(SloState::kWarn, 35'000),
            BrownoutLevel::kCacheOnly);
  // The earlier 5ms of kOk no longer counts: the hold restarts from here.
  EXPECT_EQ(ladder.OnSloState(SloState::kOk, 36'000),
            BrownoutLevel::kCacheOnly);
  EXPECT_EQ(ladder.OnSloState(SloState::kOk, 45'000),
            BrownoutLevel::kCacheOnly);
  EXPECT_EQ(ladder.OnSloState(SloState::kOk, 46'000),
            BrownoutLevel::kQuantized);

  // Each upward rung needs its own full hold.
  EXPECT_EQ(ladder.OnSloState(SloState::kOk, 47'000),
            BrownoutLevel::kQuantized);
  EXPECT_EQ(ladder.OnSloState(SloState::kOk, 56'000), BrownoutLevel::kIvf);
  EXPECT_EQ(ladder.OnSloState(SloState::kOk, 66'000), BrownoutLevel::kNone);
  EXPECT_EQ(ladder.transitions(), 6);
}

TEST_F(OverloadTest, BrownoutRespectsMaxLevelAndDisabled) {
  BrownoutController::Options o = FastBrownout();
  o.max_level = 1;
  BrownoutController shallow(o);
  EXPECT_EQ(shallow.OnSloState(SloState::kBreach, 10'000),
            BrownoutLevel::kIvf);
  EXPECT_EQ(shallow.OnSloState(SloState::kBreach, 20'000),
            BrownoutLevel::kIvf);

  BrownoutController off;  // default options: disabled
  EXPECT_EQ(off.OnSloState(SloState::kBreach, 10'000), BrownoutLevel::kNone);
  EXPECT_EQ(off.OnSloState(SloState::kBreach, 20'000), BrownoutLevel::kNone);
  EXPECT_EQ(off.transitions(), 0);
}

// --- Strict-priority admission -------------------------------------------

TEST_F(OverloadTest, CapacityEvictsLowestClassNewestFirst) {
  const std::string dir = TempDirFor("overload_priority");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  // One blocked compute-pool worker: admission state is deterministic.
  util::ThreadPool pool(1);
  util::parallel::ScopedComputePool scope(&pool);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  RecommendServiceOptions opt;
  opt.queue_capacity = 3;
  opt.rank.num_threads = 1;
  {
    RecommendService service(&store, opt);
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();

    const auto make = [](int32_t user, Priority priority) {
      RecommendRequest req;
      req.user_id = user;
      req.k = 3;
      req.priority = priority;
      return req;
    };
    auto fi = service.Submit(make(0, Priority::kInteractive));
    auto fb1 = service.Submit(make(1, Priority::kBatch));
    auto fb2 = service.Submit(make(2, Priority::kBatch));
    EXPECT_EQ(service.in_flight(), 3);

    // Interactive arrival at capacity evicts the NEWEST queued batch
    // request (fb2), not the oldest — freshest low-priority work has
    // waited least, so shedding it wastes the least queueing effort.
    auto fi2 = service.Submit(make(0, Priority::kInteractive));
    const auto evicted = fb2.get();
    ASSERT_FALSE(evicted.ok());
    EXPECT_EQ(evicted.status().code(),
              util::StatusCode::kResourceExhausted);
    EXPECT_NE(evicted.status().message().find("retry_after_ms="),
              std::string::npos)
        << evicted.status().message();
    EXPECT_EQ(service.in_flight(), 3);

    // A background arrival at capacity finds nothing below itself to
    // evict: it is shed at the door.
    auto fbg = service.Submit(make(1, Priority::kBackground));
    const auto shed = fbg.get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);

    // A batch arrival at capacity cannot evict its own class either.
    auto fb3 = service.Submit(make(2, Priority::kBatch));
    const auto shed_batch = fb3.get();
    ASSERT_FALSE(shed_batch.ok());
    EXPECT_EQ(shed_batch.status().code(),
              util::StatusCode::kResourceExhausted);

    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    // Everything still queued completes: both interactive and the oldest
    // batch request survived the storm.
    EXPECT_TRUE(fi.get().ok());
    EXPECT_TRUE(fb1.get().ok());
    EXPECT_TRUE(fi2.get().ok());

    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(after.CounterDelta(before, "serve.shed"), 3u);
    EXPECT_EQ(after.CounterDelta(before, "serve.shed.batch"), 2u);
    EXPECT_EQ(after.CounterDelta(before, "serve.shed.background"), 1u);
    EXPECT_EQ(after.CounterDelta(before, "serve.shed.interactive"), 0u);
  }
}

// --- The storm: Submit() floods vs adaptation vs hot-swap ----------------

// Every structured outcome an async request may legitimately resolve to
// under overload; anything else is a bug the storm exists to catch.
bool StructuredOutcome(const util::StatusOr<RecommendResponse>& r) {
  if (r.ok()) return true;
  switch (r.status().code()) {
    case util::StatusCode::kResourceExhausted:   // shed / evicted
    case util::StatusCode::kDeadlineExceeded:    // expired or mid-score
      return true;
    default:
      return false;
  }
}

TEST_F(OverloadTest, SubmitStormRacesAdaptationBrownoutAndHotSwap) {
  const std::string dir = TempDirFor("overload_storm");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  util::ThreadPool pool(4);
  util::parallel::ScopedComputePool scope(&pool);

  RecommendServiceOptions opt;
  opt.queue_capacity = 16;
  opt.rank.num_threads = 1;
  opt.overload.adaptive = true;
  opt.overload.limiter.initial_limit = 4;
  opt.overload.limiter.max_limit = 16;
  // A 200us target under storm load guarantees both congestion signals
  // and good streaks, so the limit genuinely moves while Submit() races.
  opt.overload.limiter.latency_target_us = 200;
  opt.overload.limiter.decrease_cooldown_us = 500;
  opt.overload.limiter.increase_every = 4;
  opt.overload.brownout.enabled = true;
  opt.overload.brownout.step_down_hold_us = 1'000;
  opt.overload.brownout.step_up_hold_us = 2'000;
  // An aggressive latency SLO so the burn monitor actually changes state
  // during the storm and drives brownout transitions.
  opt.stats.slo.latency_target_us = 200;

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  std::atomic<int64_t> ok_count{0}, shed_count{0}, deadline_count{0},
      unstructured{0};
  {
    RecommendService service(&store, opt);

    std::atomic<bool> stop_swapping{false};
    std::thread swapper([&] {
      // Hot-swap a new snapshot version every ~2ms for the storm's whole
      // duration: in-flight requests keep their snapshot, new ones see
      // the fresh version, and nothing tears.
      int64_t version = 2;
      while (!stop_swapping.load(std::memory_order_relaxed)) {
        SaveSmall(dir, version);
        ASSERT_TRUE(store.Reload().ok());
        ++version;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; ++t) {
      producers.emplace_back([&, t] {
        std::vector<std::future<util::StatusOr<RecommendResponse>>> futures;
        futures.reserve(kPerProducer);
        for (int i = 0; i < kPerProducer; ++i) {
          RecommendRequest req;
          req.user_id = (t + i) % 3;
          req.k = 3;
          req.priority = static_cast<Priority>(i % kNumPriorities);
          // Half the storm carries tight budgets so deadline expiry and
          // the expired-in-queue path race the limiter too.
          req.budget_us = (i % 2 == 0) ? 500 : 0;
          futures.push_back(service.Submit(req));
        }
        for (auto& f : futures) {
          const auto r = f.get();
          if (!StructuredOutcome(r)) {
            unstructured.fetch_add(1);
          } else if (r.ok()) {
            ok_count.fetch_add(1);
          } else if (r.status().code() ==
                     util::StatusCode::kResourceExhausted) {
            shed_count.fetch_add(1);
          } else {
            deadline_count.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& p : producers) p.join();
    stop_swapping.store(true, std::memory_order_relaxed);
    swapper.join();

    // Full accounting: every offered request resolved to exactly one
    // structured outcome.
    EXPECT_EQ(unstructured.load(), 0);
    EXPECT_EQ(ok_count.load() + shed_count.load() + deadline_count.load(),
              kProducers * kPerProducer);
    EXPECT_GT(ok_count.load(), 0);

    // The limiter stayed inside its bounds while racing everything.
    const OverloadState state = service.overload_state();
    EXPECT_TRUE(state.adaptive);
    EXPECT_GE(state.limit, opt.overload.limiter.min_limit);
    EXPECT_LE(state.limit, opt.overload.limiter.max_limit);
  }  // service dtor drains against the live pool
}

}  // namespace
}  // namespace layergcn::serve
