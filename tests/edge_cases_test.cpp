// Edge-case and failure-injection tests across modules: boundary shapes,
// degenerate datasets, configuration extremes — the conditions a
// downstream user will eventually hit.

#include <cmath>
#include <memory>

#include "core/api.h"
#include "models/bpr_mf.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace layergcn {
namespace {

using layergcn::testing::TinyDataset;

// ---------------------------------------------------------------------------
// Evaluator on degenerate splits.
// ---------------------------------------------------------------------------

TEST(EvaluatorEdgeTest, EmptySplitYieldsZeros) {
  // All interactions in train: no ground truth anywhere.
  std::vector<data::Interaction> train = {{0, 0, 1}, {1, 1, 2}};
  data::Dataset ds = data::BuildDataset("empty", 2, 2, train, {}, {});
  eval::Evaluator evaluator(&ds, {10});
  int calls = 0;
  const auto m = evaluator.Evaluate(
      [&](const std::vector<int32_t>& users) {
        ++calls;
        return tensor::Matrix(static_cast<int64_t>(users.size()),
                              ds.num_items);
      },
      eval::EvalSplit::kTest);
  EXPECT_EQ(calls, 0);  // no users to score
  EXPECT_DOUBLE_EQ(m.recall.at(10), 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg.at(10), 0.0);
}

TEST(EvaluatorEdgeTest, KLargerThanItemUniverse) {
  const data::Dataset ds = TinyDataset();  // 5 items
  eval::Evaluator evaluator(&ds, {50});
  const auto m = evaluator.Evaluate(
      [&](const std::vector<int32_t>& users) {
        tensor::Matrix s(static_cast<int64_t>(users.size()), ds.num_items);
        for (int64_t i = 0; i < s.size(); ++i) {
          s.data()[i] = static_cast<float>(i % 7);
        }
        return s;
      },
      eval::EvalSplit::kTest);
  // With K >= |items|, recall is 1 for every user with ground truth.
  EXPECT_DOUBLE_EQ(m.recall.at(50), 1.0);
}

// ---------------------------------------------------------------------------
// Trainer configuration extremes.
// ---------------------------------------------------------------------------

TEST(TrainerEdgeTest, EvalEveryLargerThanMaxEpochs) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.batch_size = 8;
  cfg.max_epochs = 3;
  cfg.eval_every = 10;  // never evaluates during training
  cfg.seed = 2;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_EQ(r.epochs_run, 3);
  EXPECT_TRUE(r.valid_curve.empty());
  EXPECT_EQ(r.best_epoch, 0);
  // Final test metrics still produced from the last parameters.
  EXPECT_GE(r.test_metrics.recall.at(20), 0.0);
}

TEST(TrainerEdgeTest, SingleEpochRun) {
  const data::Dataset ds = TinyDataset();
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 1;
  cfg.batch_size = 64;
  cfg.max_epochs = 1;
  cfg.seed = 3;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_EQ(r.epochs_run, 1);
  EXPECT_EQ(r.best_epoch, 1);
}

TEST(TrainerEdgeTest, ZeroL2RegTrains) {
  const data::Dataset ds = TinyDataset();
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 2;
  cfg.batch_size = 8;
  cfg.max_epochs = 5;
  cfg.l2_reg = 0.0;
  cfg.seed = 4;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  for (double l : r.epoch_losses) EXPECT_TRUE(std::isfinite(l));
}

TEST(TrainerEdgeTest, CheckpointEpochBeyondRunIsSkipped) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.batch_size = 8;
  cfg.max_epochs = 3;
  cfg.seed = 5;
  train::TrainOptions options;
  options.checkpoint_epochs = {2, 99};
  std::vector<train::CheckpointMetrics> checkpoints;
  train::FitRecommender(&model, ds, cfg, options, &checkpoints);
  ASSERT_EQ(checkpoints.size(), 1u);
  EXPECT_EQ(checkpoints[0].epoch, 2);
}

// ---------------------------------------------------------------------------
// LayerGCN configuration extremes.
// ---------------------------------------------------------------------------

TEST(LayerGcnEdgeTest, SingleLayerModel) {
  const data::Dataset ds = TinyDataset();
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 1;
  cfg.batch_size = 8;
  cfg.max_epochs = 4;
  cfg.seed = 6;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_TRUE(std::isfinite(r.epoch_losses.back()));
}

TEST(LayerGcnEdgeTest, VeryDeepModelStaysFinite) {
  const data::Dataset ds = TinyDataset();
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 16;  // cosine refinement keeps magnitudes bounded
  cfg.batch_size = 8;
  cfg.max_epochs = 3;
  cfg.seed = 7;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  for (double l : r.epoch_losses) EXPECT_TRUE(std::isfinite(l));
  model.PrepareEval();
  const tensor::Matrix s = model.ScoreUsers({0});
  for (int64_t i = 0; i < s.size(); ++i) {
    EXPECT_TRUE(std::isfinite(s.data()[i]));
  }
}

TEST(LayerGcnEdgeTest, LargeEpsilonStillTrains) {
  // §IV: ε can be relaxed to >= 1 while keeping Eq. 6 injective.
  const data::Dataset ds = TinyDataset();
  core::LayerGcnOptions opts;
  opts.epsilon = 1.f;
  core::LayerGcn model(opts);
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 2;
  cfg.batch_size = 8;
  cfg.max_epochs = 6;
  cfg.seed = 8;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(LayerGcnEdgeTest, MaximalDropRatioKeepsTrainingAlive) {
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 2;
  cfg.batch_size = 8;
  cfg.max_epochs = 4;
  cfg.edge_drop_ratio = 0.9;  // keeps ~2 edges of 18
  cfg.seed = 9;
  core::LayerGcn model;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  for (double l : r.epoch_losses) EXPECT_TRUE(std::isfinite(l));
}

// ---------------------------------------------------------------------------
// Dataset degeneracies.
// ---------------------------------------------------------------------------

TEST(DatasetEdgeTest, UserWithSingleInteraction) {
  std::vector<data::Interaction> train = {{0, 0, 1}, {1, 0, 2}, {1, 1, 3}};
  std::vector<data::Interaction> test = {{0, 1, 9}};
  data::Dataset ds = data::BuildDataset("single", 2, 3, train, {}, test);
  ASSERT_EQ(ds.test_users.size(), 1u);
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 2;
  cfg.batch_size = 4;
  cfg.max_epochs = 3;
  cfg.seed = 10;
  cfg.edge_drop_ratio = 0.0;
  cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_TRUE(std::isfinite(r.epoch_losses.back()));
}

TEST(DatasetEdgeTest, ItemNeverInTrainIsStillScoreable) {
  // Item 2 exists in the universe but no one interacted with it: it must
  // receive a finite score and be rankable.
  std::vector<data::Interaction> train = {{0, 0, 1}, {1, 1, 2}, {0, 1, 3},
                                          {1, 0, 4}};
  data::Dataset ds = data::BuildDataset("coldish", 2, 3, train, {}, {});
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 4;
  cfg.num_layers = 2;
  cfg.batch_size = 4;
  cfg.max_epochs = 2;
  cfg.seed = 11;
  cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  cfg.edge_drop_ratio = 0.0;
  train::FitRecommender(&model, ds, cfg);
  model.PrepareEval();
  const tensor::Matrix s = model.ScoreUsers({0});
  EXPECT_TRUE(std::isfinite(s(0, 2)));
}

// ---------------------------------------------------------------------------
// Autograd shape edge cases.
// ---------------------------------------------------------------------------

TEST(AutogradEdgeTest, OneByOneMatricesThroughFullPipeline) {
  tensor::Matrix v(1, 1, 0.5f), g(1, 1);
  ag::Tape tape;
  ag::Var x = tape.Parameter(&v, &g);
  ag::Var loss = ag::Mean(ag::Softplus(ag::Hadamard(x, x)));
  tape.Backward(loss);
  EXPECT_TRUE(std::isfinite(g(0, 0)));
  EXPECT_NE(g(0, 0), 0.f);
}

TEST(AutogradEdgeTest, SingleColumnCosine) {
  tensor::Matrix a(3, 1), b(3, 1), ga(3, 1), gb(3, 1);
  a.Fill(2.f);
  b.Fill(-1.f);
  ag::Tape tape;
  ag::Var va = tape.Parameter(&a, &ga);
  ag::Var vb = tape.Parameter(&b, &gb);
  ag::Var c = ag::RowwiseCosine(va, vb, 1e-8f);
  EXPECT_NEAR(tape.value(c)(0, 0), -1.f, 1e-6f);
  tape.Backward(ag::Sum(c));
  // cos of 1-D vectors is ±1 everywhere: gradient must be (near) zero.
  EXPECT_NEAR(ga(0, 0), 0.f, 1e-5f);
}

}  // namespace
}  // namespace layergcn
