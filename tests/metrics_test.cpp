#include "eval/metrics.h"

#include <cmath>

#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace layergcn::eval {
namespace {

TEST(RecallTest, HandComputedCases) {
  // Ground truth {1, 3}; ranked [3, 0, 1, 2].
  const std::vector<int32_t> ranked{3, 0, 1, 2};
  const std::vector<int32_t> gt{1, 3};
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, gt, 1), 0.5);   // hit 3
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, gt, 2), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, gt, 3), 1.0);   // hit 1 too
  EXPECT_DOUBLE_EQ(RecallAtK(ranked, gt, 10), 1.0);  // k > list length
}

TEST(RecallTest, EmptyGroundTruthIsZero) {
  EXPECT_DOUBLE_EQ(RecallAtK({1, 2}, {}, 2), 0.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  const std::vector<int32_t> gt{0, 1};
  EXPECT_DOUBLE_EQ(NdcgAtK({0, 1, 2, 3}, gt, 2), 1.0);
  EXPECT_DOUBLE_EQ(NdcgAtK({1, 0, 2, 3}, gt, 2), 1.0);  // order within top-2
}

TEST(NdcgTest, HandComputedPartialHit) {
  // GT {2}; ranked [0, 2, 1]: hit at rank 2 -> DCG = 1/log2(3),
  // IDCG = 1/log2(2) = 1.
  const double expected = 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK({0, 2, 1}, {2}, 3), expected, 1e-12);
}

TEST(NdcgTest, LaterHitsWorthLess) {
  const std::vector<int32_t> gt{5};
  const double early = NdcgAtK({5, 1, 2, 3}, gt, 4);
  const double late = NdcgAtK({1, 2, 3, 5}, gt, 4);
  EXPECT_GT(early, late);
  EXPECT_GT(late, 0.0);
}

TEST(NdcgTest, IdcgTruncatesAtK) {
  // |GT| = 3 but K = 2: ideal DCG uses only 2 slots, so two hits in the
  // top-2 give NDCG = 1.
  EXPECT_DOUBLE_EQ(NdcgAtK({0, 1, 9, 9}, {0, 1, 2}, 2), 1.0);
}

TEST(PrecisionTest, HandComputed) {
  // GT {1, 3}; ranked [3, 0, 1, 2].
  const std::vector<int32_t> ranked{3, 0, 1, 2};
  const std::vector<int32_t> gt{1, 3};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, gt, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, gt, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, gt, 4), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, {}, 2), 0.0);
}

TEST(HitRateTest, HandComputed) {
  const std::vector<int32_t> ranked{5, 7, 2};
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, {2}, 3), 1.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, {2}, 2), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, {9}, 3), 0.0);
  EXPECT_DOUBLE_EQ(HitRateAtK(ranked, {}, 3), 0.0);
}

TEST(MapTest, HandComputed) {
  // GT {0, 2}; ranked [0, 1, 2]: precisions at hits 1/1 and 2/3;
  // AP@3 = (1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecisionAtK({0, 1, 2}, {0, 2}, 3), (1.0 + 2.0 / 3) / 2,
              1e-12);
  // Perfect ranking gives AP = 1.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({0, 2, 1}, {0, 2}, 3), 1.0);
  // No hits -> 0.
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({5, 6}, {0}, 2), 0.0);
}

TEST(MrrTest, HandComputed) {
  EXPECT_DOUBLE_EQ(ReciprocalRank({4, 9, 1}, {1}), 1.0 / 3);
  EXPECT_DOUBLE_EQ(ReciprocalRank({4, 9, 1}, {1, 4}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({4, 9}, {8}), 0.0);
}

TEST(MetricRelationTest, RecallPrecisionIdentity) {
  // recall * |GT| == precision * K (both count the same hits).
  const std::vector<int32_t> ranked{9, 4, 2, 7, 0};
  const std::vector<int32_t> gt{0, 2, 5};
  for (int k : {1, 2, 3, 4, 5}) {
    EXPECT_NEAR(RecallAtK(ranked, gt, k) * static_cast<double>(gt.size()),
                PrecisionAtK(ranked, gt, k) * k, 1e-12);
  }
}

TEST(TopKTest, SelectsLargestInOrder) {
  const float scores[] = {0.1f, 0.9f, 0.5f, 0.7f, 0.3f};
  EXPECT_EQ(TopKIndices(scores, 5, 3), (std::vector<int32_t>{1, 3, 2}));
}

TEST(TopKTest, KLargerThanN) {
  const float scores[] = {0.2f, 0.8f};
  EXPECT_EQ(TopKIndices(scores, 2, 5), (std::vector<int32_t>{1, 0}));
}

TEST(TopKTest, ExclusionSkipsMarkedItems) {
  const float scores[] = {0.9f, 0.8f, 0.7f, 0.6f};
  std::vector<bool> excluded{true, false, true, false};
  EXPECT_EQ(TopKIndices(scores, 4, 2, &excluded),
            (std::vector<int32_t>{1, 3}));
}

TEST(TopKTest, TiesBrokenByLowerIndex) {
  const float scores[] = {0.5f, 0.5f, 0.5f, 0.5f};
  EXPECT_EQ(TopKIndices(scores, 4, 2), (std::vector<int32_t>{0, 1}));
}

TEST(RankingMetricsTest, ToStringListsBothFamilies) {
  RankingMetrics m;
  m.recall[10] = 0.25;
  m.ndcg[10] = 0.125;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("R@10"), std::string::npos);
  EXPECT_NE(s.find("N@10"), std::string::npos);
}

// Evaluator integration: brute-force verification on the tiny dataset with
// a hand-crafted scoring function.
TEST(EvaluatorTest, MatchesBruteForceOnTinyDataset) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  // Score = item id (favors high-numbered items), same for all users.
  ScoreFn score = [&](const std::vector<int32_t>& users) {
    tensor::Matrix m(static_cast<int64_t>(users.size()), ds.num_items);
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t c = 0; c < m.cols(); ++c) {
        m(r, c) = static_cast<float>(c);
      }
    }
    return m;
  };
  Evaluator evaluator(&ds, {2});
  const RankingMetrics got = evaluator.Evaluate(score, EvalSplit::kTest);

  // Brute force.
  double recall_sum = 0, ndcg_sum = 0;
  for (int32_t u : ds.test_users) {
    std::vector<int32_t> ranked;
    for (int32_t i = ds.num_items - 1; i >= 0 && ranked.size() < 2; --i) {
      if (!ds.train_graph.HasInteraction(u, i)) ranked.push_back(i);
    }
    recall_sum += RecallAtK(ranked, ds.test_items[static_cast<size_t>(u)], 2);
    ndcg_sum += NdcgAtK(ranked, ds.test_items[static_cast<size_t>(u)], 2);
  }
  const double n = static_cast<double>(ds.test_users.size());
  EXPECT_NEAR(got.recall.at(2), recall_sum / n, 1e-9);
  EXPECT_NEAR(got.ndcg.at(2), ndcg_sum / n, 1e-9);
}

TEST(EvaluatorTest, PerfectOracleScoresPerfectRecall) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  // Oracle: +1 for ground-truth items.
  ScoreFn oracle = [&](const std::vector<int32_t>& users) {
    tensor::Matrix m(static_cast<int64_t>(users.size()), ds.num_items);
    for (size_t r = 0; r < users.size(); ++r) {
      for (int32_t i : ds.test_items[static_cast<size_t>(users[r])]) {
        m(static_cast<int64_t>(r), i) = 1.f;
      }
    }
    return m;
  };
  Evaluator evaluator(&ds, {5});
  const RankingMetrics got = evaluator.Evaluate(oracle, EvalSplit::kTest);
  EXPECT_DOUBLE_EQ(got.recall.at(5), 1.0);
  EXPECT_DOUBLE_EQ(got.ndcg.at(5), 1.0);
}

TEST(EvaluatorTest, SmallChunkSizeGivesSameResult) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  ScoreFn score = [&](const std::vector<int32_t>& users) {
    tensor::Matrix m(static_cast<int64_t>(users.size()), ds.num_items);
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t c = 0; c < m.cols(); ++c) {
        m(r, c) = static_cast<float>((users[static_cast<size_t>(r)] * 7 + c * 13) % 5);
      }
    }
    return m;
  };
  Evaluator big(&ds, {3}, /*chunk_size=*/512);
  Evaluator small(&ds, {3}, /*chunk_size=*/1);
  const auto a = big.Evaluate(score, EvalSplit::kTest);
  const auto b = small.Evaluate(score, EvalSplit::kTest);
  EXPECT_DOUBLE_EQ(a.recall.at(3), b.recall.at(3));
  EXPECT_DOUBLE_EQ(a.ndcg.at(3), b.ndcg.at(3));
}

TEST(EvaluatorTest, PerUserValuesAverageToAggregate) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  ScoreFn score = [&](const std::vector<int32_t>& users) {
    tensor::Matrix m(static_cast<int64_t>(users.size()), ds.num_items);
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t c = 0; c < m.cols(); ++c) {
        m(r, c) = static_cast<float>((c * 31 + users[static_cast<size_t>(r)]) % 7);
      }
    }
    return m;
  };
  Evaluator evaluator(&ds, {3});
  const auto agg = evaluator.Evaluate(score, EvalSplit::kTest);
  const auto per = evaluator.EvaluatePerUser(score, EvalSplit::kTest, 3);
  ASSERT_EQ(per.recall.size(), ds.test_users.size());
  double sum = 0;
  for (double r : per.recall) sum += r;
  EXPECT_NEAR(agg.recall.at(3), sum / static_cast<double>(per.recall.size()),
              1e-9);
}

}  // namespace
}  // namespace layergcn::eval
