// Corruption and recovery suite for the v2 checkpoint format: every
// damaged file must surface as a structured util::Status (never an abort),
// and CheckpointManager must fall back to the newest file that still
// parses.

#include "train/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace layergcn::train {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// A fresh directory under the test temp root.
std::string TempDirFor(const char* name) {
  const std::string dir = TempPath(name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

class CheckpointV2Test : public ::testing::Test {
 protected:
  void SetUp() override { util::fault::DisarmAll(); }
  void TearDown() override { util::fault::DisarmAll(); }
};

TrainingState MakeState() {
  TrainingState st;
  st.epoch = 7;
  st.best_epoch = 5;
  st.best_valid_score = 0.25;
  st.epochs_since_best = 2;
  st.optimizer_steps = 91;
  st.seed = 42;
  st.sampler_cursor = 1234;
  util::Rng rng(9);
  (void)rng.NextU64();
  st.has_rng = true;
  st.rng = rng.GetState();
  st.epoch_losses = {0.9, 0.7, 0.5};
  st.valid_curve = {{2, 0.1}, {4, 0.2}};
  return st;
}

TEST_F(CheckpointV2Test, FullStateRoundTrip) {
  util::Rng rng(1);
  Parameter a("emb", 4, 3), b("w", 2, 2);
  a.InitXavier(&rng);
  b.InitXavier(&rng);
  a.adam_m.UniformInit(&rng, -1.f, 1.f);
  a.adam_v.UniformInit(&rng, 0.f, 1.f);
  TrainingState st = MakeState();
  st.best_snapshot.emplace_back("emb", a.value);
  st.best_snapshot.emplace_back("w", b.value);

  const std::string path = TempPath("v2_full.lgcn");
  ASSERT_TRUE(SaveCheckpointV2(path, {&a, &b}, &st).ok());

  Parameter a2("emb", 4, 3), b2("w", 2, 2);
  TrainingState loaded;
  const util::StatusOr<int> n = LoadCheckpointV2(path, {&a2, &b2}, &loaded);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value(), 2);
  EXPECT_TRUE(a2.value.Equals(a.value));
  EXPECT_TRUE(b2.value.Equals(b.value));
  EXPECT_TRUE(a2.adam_m.Equals(a.adam_m));
  EXPECT_TRUE(a2.adam_v.Equals(a.adam_v));
  EXPECT_EQ(loaded.epoch, st.epoch);
  EXPECT_EQ(loaded.best_epoch, st.best_epoch);
  EXPECT_EQ(loaded.best_valid_score, st.best_valid_score);
  EXPECT_EQ(loaded.epochs_since_best, st.epochs_since_best);
  EXPECT_EQ(loaded.optimizer_steps, st.optimizer_steps);
  EXPECT_EQ(loaded.seed, st.seed);
  EXPECT_EQ(loaded.sampler_cursor, st.sampler_cursor);
  ASSERT_TRUE(loaded.has_rng);
  // The restored stream must continue exactly where the saved one would.
  util::Rng saved_stream(1), loaded_stream(1);
  saved_stream.SetState(st.rng);
  loaded_stream.SetState(loaded.rng);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(saved_stream.NextU64(), loaded_stream.NextU64());
  }
  EXPECT_EQ(loaded.epoch_losses, st.epoch_losses);
  EXPECT_EQ(loaded.valid_curve, st.valid_curve);
  ASSERT_EQ(loaded.best_snapshot.size(), 2u);
  EXPECT_TRUE(loaded.best_snapshot[0].second.Equals(a.value));
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, ZeroByteFileIsDataLoss) {
  const std::string path = TempPath("v2_zero.lgcn");
  { std::ofstream out(path, std::ios::binary); }
  Parameter p("p", 1, 1);
  const util::StatusOr<int> r = LoadCheckpointV2(path, {&p}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  EXPECT_FALSE(ValidateCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, MissingFileIsNotFound) {
  Parameter p("p", 1, 1);
  const util::StatusOr<int> r =
      LoadCheckpointV2(TempPath("v2_absent.lgcn"), {&p}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kNotFound);
}

TEST_F(CheckpointV2Test, TruncatedMidRecordIsDataLoss) {
  util::Rng rng(2);
  Parameter p("emb", 32, 8);
  p.InitXavier(&rng);
  TrainingState st = MakeState();
  const std::string path = TempPath("v2_trunc.lgcn");
  ASSERT_TRUE(SaveCheckpointV2(path, {&p}, &st).ok());
  const auto full_size = fs::file_size(path);
  fs::resize_file(path, full_size * 2 / 3);

  Parameter p2("emb", 32, 8);
  const util::StatusOr<int> r = LoadCheckpointV2(path, {&p2}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, FlippedCrcByteIsDataLoss) {
  util::Rng rng(3);
  Parameter p("emb", 16, 4);
  p.InitXavier(&rng);
  const std::string path = TempPath("v2_crc.lgcn");
  ASSERT_TRUE(SaveCheckpointV2(path, {&p}, nullptr).ok());
  {
    // The final 4 bytes are the stored CRC of the last section.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(-1, std::ios::end);
    char last = 0;
    f.get(last);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(last ^ 0x01));
  }
  Parameter p2("emb", 16, 4);
  const util::StatusOr<int> r = LoadCheckpointV2(path, {&p2}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("CRC mismatch"), std::string::npos);
  std::remove(path.c_str());
}

// Hand-written v1 blob: magic | version=1 | count | name/shape/values.
std::string V1Blob(const std::vector<std::pair<std::string, float>>& entries) {
  std::string out("LGCN", 4);
  const uint32_t version = 1;
  out.append(reinterpret_cast<const char*>(&version), 4);
  const uint32_t count = static_cast<uint32_t>(entries.size());
  out.append(reinterpret_cast<const char*>(&count), 4);
  for (const auto& [name, value] : entries) {
    const uint32_t len = static_cast<uint32_t>(name.size());
    out.append(reinterpret_cast<const char*>(&len), 4);
    out.append(name);
    const int64_t rows = 1, cols = 1;
    out.append(reinterpret_cast<const char*>(&rows), 8);
    out.append(reinterpret_cast<const char*>(&cols), 8);
    out.append(reinterpret_cast<const char*>(&value), 4);
  }
  return out;
}

TEST_F(CheckpointV2Test, V1FileLoadsParamsOnly) {
  const std::string path = TempPath("v1_compat.lgcn");
  {
    std::ofstream out(path, std::ios::binary);
    const std::string blob = V1Blob({{"alpha", 2.5f}, {"beta", -1.0f}});
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  EXPECT_TRUE(IsCheckpointFile(path));
  Parameter a("alpha", 1, 1), b("beta", 1, 1);
  TrainingState st;
  st.epoch = 99;  // must stay untouched: v1 carries no state
  const util::StatusOr<int> r = LoadCheckpointV2(path, {&a, &b}, &st);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value(), 2);
  EXPECT_EQ(a.value(0, 0), 2.5f);
  EXPECT_EQ(b.value(0, 0), -1.0f);
  EXPECT_EQ(st.epoch, 99);
  EXPECT_FALSE(st.has_rng);
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, DuplicateParamNameInFileIsDataLoss) {
  const std::string path = TempPath("v1_dup.lgcn");
  {
    std::ofstream out(path, std::ios::binary);
    const std::string blob = V1Blob({{"same", 1.f}, {"same", 2.f}});
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  }
  Parameter p("same", 1, 1);
  const util::StatusOr<int> r = LoadCheckpointV2(path, {&p}, nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kDataLoss);
  EXPECT_NE(r.status().message().find("duplicate parameter"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, DuplicateParamNameOnSaveIsInvalidArgument) {
  Parameter a("same", 1, 1), b("same", 1, 1);
  const util::Status s =
      SaveCheckpointV2(TempPath("v2_dup_save.lgcn"), {&a, &b}, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
}

TEST_F(CheckpointV2Test, MissingAndMismatchedParamsAreFailedPrecondition) {
  util::Rng rng(4);
  Parameter a("a", 2, 2);
  a.InitXavier(&rng);
  const std::string path = TempPath("v2_match.lgcn");
  ASSERT_TRUE(SaveCheckpointV2(path, {&a}, nullptr).ok());

  Parameter other("other", 2, 2);
  EXPECT_EQ(LoadCheckpointV2(path, {&other}, nullptr).status().code(),
            util::StatusCode::kFailedPrecondition);
  Parameter wrong("a", 3, 2);
  EXPECT_EQ(LoadCheckpointV2(path, {&wrong}, nullptr).status().code(),
            util::StatusCode::kFailedPrecondition);
  // A failed load must not have touched the destination.
  EXPECT_TRUE(wrong.value.Equals(Parameter("a", 3, 2).value));
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, TornWriteFaultIsDetectedOnRead) {
  util::Rng rng(5);
  Parameter p("emb", 16, 8);
  p.InitXavier(&rng);
  const std::string path = TempPath("v2_torn.lgcn");
  util::fault::Arm("checkpoint.torn_write");
  // The writer believes it succeeded — that is the point of the fault.
  ASSERT_TRUE(SaveCheckpointV2(path, {&p}, nullptr).ok());
  EXPECT_FALSE(ValidateCheckpoint(path).ok());
  // Retry after the one-shot fault: the atomic path works again.
  ASSERT_TRUE(SaveCheckpointV2(path, {&p}, nullptr).ok());
  EXPECT_TRUE(ValidateCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, ShortReadAndBitFlipFaultsAreDataLoss) {
  util::Rng rng(6);
  Parameter p("emb", 16, 8);
  p.InitXavier(&rng);
  const std::string path = TempPath("v2_readfault.lgcn");
  ASSERT_TRUE(SaveCheckpointV2(path, {&p}, nullptr).ok());

  util::fault::Arm("checkpoint.short_read");
  EXPECT_EQ(ValidateCheckpoint(path).code(), util::StatusCode::kDataLoss);
  EXPECT_TRUE(ValidateCheckpoint(path).ok());  // fault was one-shot

  util::fault::Arm("checkpoint.bit_flip");
  EXPECT_EQ(ValidateCheckpoint(path).code(), util::StatusCode::kDataLoss);
  EXPECT_TRUE(ValidateCheckpoint(path).ok());
  std::remove(path.c_str());
}

TEST_F(CheckpointV2Test, ManagerRotatesAndKeepsNewest) {
  const std::string dir = TempDirFor("mgr_rotate");
  util::Rng rng(7);
  Parameter p("emb", 4, 2);
  p.InitXavier(&rng);
  CheckpointManager mgr(dir, /*keep_last=*/3);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    TrainingState st = MakeState();
    st.epoch = epoch;
    ASSERT_TRUE(mgr.Write({&p}, st).ok());
  }
  const auto files = CheckpointManager::ListCheckpoints(dir);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].first, 3);
  EXPECT_EQ(files[2].first, 5);
  fs::remove_all(dir);
}

TEST_F(CheckpointV2Test, ManagerFallsBackPastCorruptNewest) {
  obs::SetEnabled(true);
  const std::string dir = TempDirFor("mgr_fallback");
  util::Rng rng(8);
  Parameter p("emb", 4, 2);
  CheckpointManager mgr(dir, 3);
  tensor::Matrix value_at_2;
  for (int epoch = 1; epoch <= 3; ++epoch) {
    p.InitXavier(&rng);
    if (epoch == 2) value_at_2 = p.value;
    TrainingState st = MakeState();
    st.epoch = epoch;
    ASSERT_TRUE(mgr.Write({&p}, st).ok());
  }
  // Corrupt the newest file: fallback must land on epoch 2.
  fs::resize_file(CheckpointManager::CheckpointPath(dir, 3), 20);
  const auto before = obs::MetricsRegistry::Global().Snapshot();

  Parameter p2("emb", 4, 2);
  TrainingState restored;
  ASSERT_TRUE(mgr.RestoreLatest({&p2}, &restored).ok());
  EXPECT_EQ(restored.epoch, 2);
  EXPECT_TRUE(p2.value.Equals(value_at_2));

  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterDelta(before, "checkpoint.fallbacks"), 1u);
  fs::remove_all(dir);
}

TEST_F(CheckpointV2Test, ManagerNotFoundWhenNothingValid) {
  const std::string dir = TempDirFor("mgr_empty");
  CheckpointManager mgr(dir, 3);
  Parameter p("emb", 4, 2);
  EXPECT_EQ(mgr.RestoreLatest({&p}, nullptr).code(),
            util::StatusCode::kNotFound);
  // A directory holding only corrupt files is also NotFound.
  {
    std::ofstream out(CheckpointManager::CheckpointPath(dir, 1),
                      std::ios::binary);
    out << "garbage";
  }
  EXPECT_EQ(mgr.RestoreLatest({&p}, nullptr).code(),
            util::StatusCode::kNotFound);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace layergcn::train
