// Serving-tier observability suite: RequestContext stage timings through
// RecommendService, access-log schema, ServingStats classification and
// percentile gauges, health/readiness reporting, and the Prometheus /
// histogram-summary surfaces of the metrics registry.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/access_log.h"
#include "serve/health.h"
#include "serve/recommend_service.h"
#include "serve/request_context.h"
#include "serve/serving_stats.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace layergcn::serve {
namespace {

namespace fs = std::filesystem;

// A fresh directory under the test temp root.
std::string TempDirFor(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

train::ServingExport SmallExport(int64_t version) {
  train::ServingExport ex;
  ex.version = version;
  ex.user_emb = tensor::Matrix(3, 4);
  ex.item_emb = tensor::Matrix(6, 4);
  util::Rng rng(7 + static_cast<uint64_t>(version));
  ex.user_emb.UniformInit(&rng, -1.f, 1.f);
  ex.item_emb.UniformInit(&rng, -1.f, 1.f);
  ex.user_history = {{0, 1}, {0, 2}, {0, 1, 3}};
  return ex;
}

void SaveSmall(const std::string& dir, int64_t version) {
  const util::Status s = train::SaveServingExport(
      SnapshotStore::SnapshotPath(dir, version), SmallExport(version));
  ASSERT_TRUE(s.ok()) << s.ToString();
}

// An SLO with a 10% error budget so a handful of synthetic requests can
// move the state machine.
obs::SloMonitor::Options WideSlo() {
  obs::SloMonitor::Options slo;
  slo.availability_objective = 0.9;
  slo.latency_target_us = 1'000'000;
  slo.latency_objective = 0.9;
  slo.short_window_us = 1'000'000;
  slo.long_window_us = 10'000'000;
  return slo;
}

// A fully populated successful context, as the driver would hand it to the
// access log after serialization.
RequestContext OkContext(uint64_t id) {
  RequestContext ctx;
  ctx.id = id;
  ctx.user = 1;
  ctx.k = 3;
  ctx.budget_us = 50'000;
  ctx.encoding = eval::ScoreEncoding::kF32;
  ctx.snapshot_version = 9;
  ctx.submit_us = 1'000'000;
  ctx.start_us = 1'000'100;
  ctx.finish_us = 1'000'900;
  ctx.done_us = 1'001'000;
  ctx.stage(Stage::kAdmission) = 100;
  ctx.stage(Stage::kSnapshot) = 50;
  ctx.stage(Stage::kCache) = 10;
  ctx.stage(Stage::kScore) = 700;
  ctx.stage(Stage::kSerialize) = 80;
  return ctx;
}

class ServeObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::DisarmAll();
    obs::SetEnabled(true);
  }
  void TearDown() override { util::fault::DisarmAll(); }
};

uint64_t StageSum(const RequestContext& ctx) {
  uint64_t sum = 0;
  for (int i = 0; i < kNumStages; ++i) sum += ctx.stage_us[i];
  return sum;
}

// ---------------------------------------------------------------- contexts

TEST_F(ServeObsTest, RequestContextTotals) {
  RequestContext ctx = OkContext(1);
  EXPECT_EQ(ctx.total_us(), 1000u);   // submit -> done
  EXPECT_EQ(ctx.service_us(), 900u);  // submit -> finish
  EXPECT_LE(StageSum(ctx), ctx.total_us());
  // Without driver timestamps, total falls back to the service interval.
  ctx.submit_us = 0;
  ctx.done_us = 0;
  EXPECT_EQ(ctx.total_us(), 800u);  // start -> finish
}

TEST_F(ServeObsTest, StageNamesCoverEveryStage) {
  EXPECT_STREQ(StageName(Stage::kAdmission), "admission");
  EXPECT_STREQ(StageName(Stage::kSnapshot), "snapshot");
  EXPECT_STREQ(StageName(Stage::kCache), "cache");
  EXPECT_STREQ(StageName(Stage::kScore), "score");
  EXPECT_STREQ(StageName(Stage::kSerialize), "serialize");
}

// -------------------------------------------------------------- access log

TEST_F(ServeObsTest, AccessRecordJsonSchemaOnSuccess) {
  const std::string line = AccessLog::RecordJson(OkContext(42));
  obs::JsonValue value;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(line, &value, &error)) << error;
  ASSERT_EQ(value.type, obs::JsonValue::Type::kObject);
  for (const char* key :
       {"type", "id", "user", "k", "budget_us", "status", "malformed", "shed",
        "cached", "partial", "degraded", "encoding", "retrieval", "candidates",
        "snapshot_version", "submit_us", "done_us", "latency_us",
        "admission_us", "snapshot_us", "cache_us", "score_us",
        "serialize_us"}) {
    EXPECT_NE(value.Find(key), nullptr) << "missing " << key;
  }
  EXPECT_EQ(value.Find("type")->string, "access");
  EXPECT_EQ(value.Find("id")->number, 42.0);
  EXPECT_EQ(value.Find("status")->string, "OK");
  EXPECT_EQ(value.Find("encoding")->string, "f32");
  EXPECT_EQ(value.Find("retrieval")->string, "exact");
  EXPECT_EQ(value.Find("candidates")->number, 0.0);
  EXPECT_EQ(value.Find("latency_us")->number, 1000.0);
  EXPECT_EQ(value.Find("score_us")->number, 700.0);
  // OK records carry no error message.
  EXPECT_EQ(value.Find("error"), nullptr);
}

TEST_F(ServeObsTest, AccessRecordJsonCarriesErrorsAndFlags) {
  RequestContext shed;
  shed.id = 7;
  shed.shed = true;
  shed.code = util::StatusCode::kResourceExhausted;
  shed.error = "admission queue full";
  shed.submit_us = 500;
  shed.finish_us = 500;
  obs::JsonValue value;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(AccessLog::RecordJson(shed), &value, &error))
      << error;
  EXPECT_EQ(value.Find("status")->string, "RESOURCE_EXHAUSTED");
  EXPECT_TRUE(value.Find("shed")->boolean);
  ASSERT_NE(value.Find("error"), nullptr);
  EXPECT_EQ(value.Find("error")->string, "admission queue full");
  // Shed requests never reached any stage.
  EXPECT_EQ(value.Find("score_us")->number, 0.0);
}

TEST_F(ServeObsTest, AccessLogAppendsOneLinePerRequest) {
  const std::string dir = TempDirFor("serve_obs_accesslog");
  const std::string path = dir + "/access.jsonl";
  AccessLog log;
  ASSERT_TRUE(log.Open(path));
  EXPECT_TRUE(log.is_open());
  for (uint64_t id = 1; id <= 3; ++id) log.Append(OkContext(id));
  EXPECT_TRUE(log.Close());
  EXPECT_FALSE(log.is_open());

  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    obs::JsonValue value;
    std::string error;
    ASSERT_TRUE(obs::ParseJson(line, &value, &error)) << error;
    ++lines;
    EXPECT_EQ(value.Find("id")->number, static_cast<double>(lines));
  }
  EXPECT_EQ(lines, 3);
}

TEST_F(ServeObsTest, ClosedAccessLogIgnoresAppends) {
  AccessLog log;
  log.Append(OkContext(1));  // must not crash or write anywhere
  EXPECT_FALSE(log.is_open());
  EXPECT_FALSE(log.Open("/nonexistent-dir/zzz/access.jsonl"));
}

// ------------------------------------------------- service with a context

TEST_F(ServeObsTest, RecommendFillsContextStagesAndFlags) {
  const std::string dir = TempDirFor("serve_obs_ctx");
  SaveSmall(dir, 3);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  RecommendRequest req;
  req.user_id = 1;
  req.k = 4;
  RequestContext ctx;
  ctx.id = 11;
  ctx.submit_us = obs::NowMicros();
  const auto resp = service.Recommend(req, &ctx);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ctx.done_us = obs::NowMicros();

  EXPECT_EQ(ctx.code, util::StatusCode::kOk);
  EXPECT_EQ(ctx.user, 1);
  EXPECT_EQ(ctx.k, 4);
  EXPECT_EQ(ctx.snapshot_version, 3);
  EXPECT_FALSE(ctx.cached);
  EXPECT_FALSE(ctx.degraded);
  EXPECT_GE(ctx.start_us, ctx.submit_us);
  EXPECT_GE(ctx.finish_us, ctx.start_us);
  EXPECT_GE(ctx.done_us, ctx.finish_us);
  // The stages time disjoint sub-intervals of [submit, done].
  EXPECT_LE(StageSum(ctx), ctx.total_us());

  // The same request again is a cache hit: flagged on the context, and the
  // scoring stage never ran.
  RequestContext hit;
  hit.id = 12;
  hit.submit_us = obs::NowMicros();
  const auto resp2 = service.Recommend(req, &hit);
  ASSERT_TRUE(resp2.ok()) << resp2.status().ToString();
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.stage(Stage::kScore), 0u);

  // Ctx-taking Recommend leaves recording to the caller.
  EXPECT_EQ(service.stats().recorded(), 0u);
  service.stats().Record(ctx, ctx.done_us);
  service.stats().Record(hit, obs::NowMicros());
  EXPECT_EQ(service.stats().recorded(), 2u);
}

TEST_F(ServeObsTest, InvalidRequestSetsContextStatus) {
  const std::string dir = TempDirFor("serve_obs_invalid");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  RecommendRequest req;
  req.user_id = -5;
  RequestContext ctx;
  ctx.id = 1;
  const auto resp = service.Recommend(req, &ctx);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(ctx.code, util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(ctx.error.empty());
  EXPECT_NE(ctx.finish_us, 0u);
}

TEST_F(ServeObsTest, SubmitStampsAdmissionOnTheContext) {
  const std::string dir = TempDirFor("serve_obs_submit");
  SaveSmall(dir, 2);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  RecommendRequest req;
  req.user_id = 0;
  req.k = 3;
  RequestContext ctx;
  ctx.id = 21;
  auto future = service.Submit(req, &ctx);
  const auto resp = future.get();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_NE(ctx.submit_us, 0u);
  EXPECT_GE(ctx.start_us, ctx.submit_us);
  EXPECT_EQ(ctx.stage(Stage::kAdmission), ctx.start_us - ctx.submit_us);
  // Caller records; the service must not have double-counted.
  EXPECT_EQ(service.stats().recorded(), 0u);
}

TEST_F(ServeObsTest, SelfRecordingOverloadsFeedStats) {
  const std::string dir = TempDirFor("serve_obs_selfrecord");
  SaveSmall(dir, 2);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  RecommendRequest req;
  req.user_id = 2;
  req.k = 2;
  ASSERT_TRUE(service.Recommend(req).ok());
  EXPECT_EQ(service.stats().recorded(), 1u);
  ASSERT_TRUE(service.Submit(req).get().ok());
  EXPECT_EQ(service.stats().recorded(), 2u);
}

// ----------------------------------------------------------- serving stats

TEST_F(ServeObsTest, ServingStatsClassifiesAndCounts) {
  ServingStatsOptions options;
  options.slo = WideSlo();
  options.quantile.window_us = 1'000'000;
  options.quantile.num_windows = 12;
  options.gauge_update_every = 1 << 20;  // no automatic refresh mid-test
  ServingStats stats(options);
  const uint64_t now = 1'000'000'000;

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  stats.Record(OkContext(1), now);
  RequestContext malformed;
  malformed.id = 2;
  malformed.malformed = true;
  malformed.code = util::StatusCode::kInvalidArgument;
  stats.Record(malformed, now);
  RequestContext shed;
  shed.id = 3;
  shed.shed = true;
  shed.code = util::StatusCode::kResourceExhausted;
  stats.Record(shed, now);

  EXPECT_EQ(stats.recorded(), 3u);
  // Only answered requests feed the quantile estimators...
  EXPECT_EQ(stats.latency_quantile().Count(now), 1u);
  EXPECT_EQ(stats.stage_quantile(Stage::kScore).Count(now), 1u);
  // ...but every request lands in the SLO windows, and only the shed one
  // is a server error (malformed is the client's mistake).
  const obs::SloMonitor::Burn burn = stats.slo().BurnRates(now);
  EXPECT_EQ(burn.total_long, 3u);
  EXPECT_NEAR(burn.availability_long, (1.0 / 3.0) / 0.1, 1e-9);

  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterDelta(before, "serve.malformed_requests"), 1u);
}

TEST_F(ServeObsTest, UpdateGaugesPublishesSlidingPercentiles) {
  ServingStatsOptions options;
  options.slo = WideSlo();
  options.gauge_update_every = 1 << 20;
  ServingStats stats(options);
  const uint64_t now = 2'000'000'000;
  for (uint64_t i = 1; i <= 100; ++i) {
    RequestContext ctx = OkContext(i);
    ctx.submit_us = now - i * 100;  // latencies 100..10000us
    ctx.done_us = now;
    stats.Record(ctx, now);
  }
  stats.UpdateGauges(now);
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snap.gauges.count("serve.latency.p50_us"));
  ASSERT_TRUE(snap.gauges.count("serve.latency.p99_us"));
  ASSERT_TRUE(snap.gauges.count("serve.stage.score.p95_us"));
  const double p50 = snap.gauges.at("serve.latency.p50_us");
  const double p99 = snap.gauges.at("serve.latency.p99_us");
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p99);
  // The answers come from the sliding estimator itself.
  EXPECT_EQ(p99, static_cast<double>(
                     stats.latency_quantile().Quantile(0.99, now)));
}

TEST_F(ServeObsTest, IsServerErrorClassification) {
  using util::StatusCode;
  EXPECT_TRUE(ServingStats::IsServerError(StatusCode::kResourceExhausted));
  EXPECT_TRUE(ServingStats::IsServerError(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(ServingStats::IsServerError(StatusCode::kFailedPrecondition));
  EXPECT_TRUE(ServingStats::IsServerError(StatusCode::kInternal));
  EXPECT_TRUE(ServingStats::IsServerError(StatusCode::kUnavailable));
  EXPECT_TRUE(ServingStats::IsServerError(StatusCode::kDataLoss));
  EXPECT_FALSE(ServingStats::IsServerError(StatusCode::kOk));
  EXPECT_FALSE(ServingStats::IsServerError(StatusCode::kInvalidArgument));
  EXPECT_FALSE(ServingStats::IsServerError(StatusCode::kNotFound));
  EXPECT_FALSE(ServingStats::IsServerError(StatusCode::kCancelled));
}

// ------------------------------------------------------------------ health

TEST_F(ServeObsTest, HealthReadinessLadder) {
  const std::string dir = TempDirFor("serve_obs_health");
  SnapshotStore store(dir);
  RecommendService service(&store);
  HealthReporter health(&store, &service, {});
  const uint64_t now = obs::NowMicros();

  // No snapshot published: the service cannot answer.
  EXPECT_EQ(health.StatusString(now), "unready");

  SaveSmall(dir, 5);
  ASSERT_TRUE(store.Reload().ok());
  EXPECT_EQ(health.StatusString(now), "ok");

  // An open breaker degrades the report without making it unready.
  for (int i = 0; i < 10; ++i) service.breaker().RecordFailure(now);
  EXPECT_EQ(service.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(health.StatusString(now), "degraded");
}

TEST_F(ServeObsTest, HealthStatusJsonAndAtomicWrite) {
  const std::string dir = TempDirFor("serve_obs_healthjson");
  SaveSmall(dir, 8);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  HealthReporter::Options options;
  options.status_path = dir + "/health.json";
  options.prom_path = dir + "/metrics.prom";
  HealthReporter health(&store, &service, options);

  const uint64_t now = obs::NowMicros();
  const std::string doc = health.StatusJson(now);
  obs::JsonValue value;
  std::string error;
  ASSERT_TRUE(obs::ParseJson(doc, &value, &error)) << error;
  EXPECT_EQ(value.Find("status")->string, "ok");
  ASSERT_NE(value.Find("snapshot"), nullptr);
  EXPECT_EQ(value.Find("snapshot")->Find("version")->number, 8.0);
  EXPECT_TRUE(value.Find("snapshot")->Find("loaded")->boolean);
  ASSERT_NE(value.Find("breaker"), nullptr);
  ASSERT_NE(value.Find("slo"), nullptr);
  ASSERT_NE(value.Find("rates"), nullptr);

  ASSERT_TRUE(health.WriteNow(now));
  EXPECT_EQ(health.writes(), 1u);
  // Both files landed whole (the tmp+rename publish never leaves a torn
  // file behind) and parse/scan cleanly.
  std::ifstream status_in(options.status_path);
  std::ostringstream status_buf;
  status_buf << status_in.rdbuf();
  ASSERT_TRUE(obs::ParseJson(status_buf.str(), &value, &error)) << error;
  std::ifstream prom_in(options.prom_path);
  std::ostringstream prom_buf;
  prom_buf << prom_in.rdbuf();
  EXPECT_NE(prom_buf.str().find("layergcn_"), std::string::npos);
  EXPECT_FALSE(fs::exists(options.status_path + ".tmp"));
}

TEST_F(ServeObsTest, HealthBackgroundWriterStops) {
  const std::string dir = TempDirFor("serve_obs_healthbg");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);
  HealthReporter::Options options;
  options.status_path = dir + "/health.json";
  options.period_us = 3'600'000'000ull;  // only the shutdown flush writes
  HealthReporter health(&store, &service, options);
  health.Start();
  health.Stop();
  EXPECT_GE(health.writes(), 1u);
  EXPECT_TRUE(fs::exists(options.status_path));
  health.Stop();  // idempotent
}

// ------------------------------------------------------- registry surfaces

TEST_F(ServeObsTest, PrometheusTextExposition) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("promtest.requests")->Add(3);
  registry.GetGauge("promtest.depth")->Set(2.5);
  auto* hist =
      registry.GetHistogram("promtest.lat_us", std::vector<double>{1, 2, 4});
  hist->Observe(1.5);
  hist->Observe(100.0);  // overflow bucket

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE layergcn_promtest_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("layergcn_promtest_requests 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE layergcn_promtest_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE layergcn_promtest_lat_us histogram"),
            std::string::npos);
  // Buckets are cumulative and end with +Inf at the total count.
  EXPECT_NE(text.find("layergcn_promtest_lat_us_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("layergcn_promtest_lat_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("layergcn_promtest_lat_us_count 2"), std::string::npos);
}

TEST_F(ServeObsTest, HistogramDataQuantileAndDelta) {
  obs::HistogramData h;
  h.bounds = {10, 20, 40};
  h.bucket_counts = {10, 10, 0, 0};  // 20 values, none in overflow
  h.count = 20;
  h.sum = 300.0;
  // Rank 10 is the last value of the first bucket: interpolates to its
  // upper edge; rank 20 tops out the second bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 20.0);

  obs::HistogramData later = h;
  later.bucket_counts = {15, 12, 2, 1};
  later.count = 30;
  later.sum = 520.0;
  const obs::HistogramData delta = later.Delta(h);
  EXPECT_EQ(delta.count, 10u);
  EXPECT_DOUBLE_EQ(delta.sum, 220.0);
  EXPECT_EQ(delta.bucket_counts,
            (std::vector<uint64_t>{5, 2, 2, 1}));
  // Ranks landing in the overflow bucket answer the last bound.
  obs::HistogramData overflow;
  overflow.bounds = {10};
  overflow.bucket_counts = {0, 5};
  overflow.count = 5;
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.99), 10.0);
  // Mismatched shapes return the newer data unchanged.
  const obs::HistogramData mismatched = later.Delta(overflow);
  EXPECT_EQ(mismatched.count, later.count);
}

}  // namespace
}  // namespace layergcn::serve
