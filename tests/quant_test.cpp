// Quantized storage + kernel suite: int8 round-trip error bounds, bf16
// round-trip relative error, kernel-vs-scalar-reference ranking parity,
// and the per-encoding determinism contract (bit-identical rankings at 1
// and 8 threads and across tile shapes).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "eval/fused_rank.h"
#include "eval/quant_kernel.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "util/rng.h"

namespace layergcn {
namespace {

tensor::Matrix RandomMatrix(int64_t rows, int64_t cols, uint64_t seed,
                            float lo = -1.f, float hi = 1.f) {
  tensor::Matrix m(rows, cols);
  util::Rng rng(seed);
  m.UniformInit(&rng, lo, hi);
  return m;
}

TEST(QuantStorageTest, Int8RoundTripWithinHalfScalePerElement) {
  const tensor::Matrix m = RandomMatrix(17, 24, 123, -3.f, 3.f);
  const tensor::Int8Rows q = tensor::QuantizeInt8PerRow(m);
  ASSERT_EQ(q.rows, 17);
  ASSERT_EQ(q.cols, 24);
  ASSERT_EQ(q.scales.size(), 17u);
  const tensor::Matrix back = tensor::DequantizeInt8(q);
  for (int64_t r = 0; r < m.rows(); ++r) {
    // Symmetric per-row quantization: scale = max|row| / 127, and
    // round-to-nearest bounds the element error by scale / 2.
    float amax = 0.f;
    for (int64_t c = 0; c < m.cols(); ++c) {
      amax = std::max(amax, std::fabs(m.row(r)[c]));
    }
    EXPECT_NEAR(q.scales[static_cast<size_t>(r)], amax / 127.f, 1e-7f);
    for (int64_t c = 0; c < m.cols(); ++c) {
      EXPECT_LE(std::fabs(back.row(r)[c] - m.row(r)[c]),
                q.scales[static_cast<size_t>(r)] * 0.5f + 1e-9f)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantStorageTest, Int8ZeroRowUsesUnitScale) {
  tensor::Matrix m(2, 8);  // zero-initialized
  const tensor::Int8Rows q = tensor::QuantizeInt8PerRow(m);
  EXPECT_EQ(q.scales[0], 1.f);
  for (int8_t v : q.data) EXPECT_EQ(v, 0);
  const tensor::Matrix back = tensor::DequantizeInt8(q);
  for (int64_t c = 0; c < 8; ++c) EXPECT_EQ(back.row(0)[c], 0.f);
}

TEST(QuantStorageTest, Bf16RoundTripWithinOneUlp) {
  const tensor::Matrix m = RandomMatrix(9, 33, 321, -10.f, 10.f);
  const tensor::Bf16Rows q = tensor::ToBf16Rows(m);
  const tensor::Matrix back = tensor::FromBf16Rows(q);
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t c = 0; c < m.cols(); ++c) {
      const float x = m.row(r)[c];
      // bf16 keeps 8 significant bits: round-to-nearest-even is within
      // half an ulp, i.e. 2^-9 relative, slack for the exponent edge.
      EXPECT_LE(std::fabs(back.row(r)[c] - x), std::fabs(x) / 256.f + 1e-12f)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantStorageTest, Bf16ExactValuesSurviveExactly) {
  tensor::Matrix m(1, 4);
  m.row(0)[0] = 1.f;
  m.row(0)[1] = -0.5f;
  m.row(0)[2] = 0.f;
  m.row(0)[3] = 2048.f;  // representable: small exponent shift, short mantissa
  const tensor::Matrix back = tensor::FromBf16Rows(tensor::ToBf16Rows(m));
  for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(back.row(0)[c], m.row(0)[c]);
}

TEST(QuantStorageTest, PanelTransposeIsExact) {
  const tensor::Matrix m = RandomMatrix(13, 7, 99);
  const tensor::Int8Rows q = tensor::QuantizeInt8PerRow(m);
  const tensor::Int8Panel p = tensor::TransposeToPanel(q);
  ASSERT_EQ(p.depth, q.cols);
  ASSERT_EQ(p.count, q.rows);
  ASSERT_EQ(p.scales, q.scales);
  for (int64_t r = 0; r < q.rows; ++r) {
    for (int64_t c = 0; c < q.cols; ++c) {
      EXPECT_EQ(p.depth_row(c)[r], q.row(r)[c]);
    }
  }
}

TEST(QuantKernelTest, ScoreEncodingNamesRoundTrip) {
  for (const eval::ScoreEncoding e :
       {eval::ScoreEncoding::kF32, eval::ScoreEncoding::kInt8,
        eval::ScoreEncoding::kBf16}) {
    eval::ScoreEncoding parsed;
    ASSERT_TRUE(eval::ParseScoreEncoding(eval::ScoreEncodingName(e), &parsed));
    EXPECT_EQ(parsed, e);
  }
  eval::ScoreEncoding unused;
  EXPECT_FALSE(eval::ParseScoreEncoding("fp16", &unused));
  EXPECT_FALSE(eval::ParseScoreEncoding("", &unused));
}

// Scalar oracle: full scores per user, exclusions skipped, ranked by
// (score desc, id asc) — the kernels' documented total order.
std::vector<int32_t> ScalarTopK(const std::vector<float>& scores,
                                const std::vector<int32_t>& exclude, int k) {
  std::vector<int32_t> ids;
  for (int32_t i = 0; i < static_cast<int32_t>(scores.size()); ++i) {
    if (!std::binary_search(exclude.begin(), exclude.end(), i)) {
      ids.push_back(i);
    }
  }
  std::sort(ids.begin(), ids.end(), [&](int32_t a, int32_t b) {
    const float sa = scores[static_cast<size_t>(a)];
    const float sb = scores[static_cast<size_t>(b)];
    return sa != sb ? sa > sb : a < b;
  });
  if (static_cast<int>(ids.size()) > k) ids.resize(static_cast<size_t>(k));
  return ids;
}

struct QuantFixture {
  int32_t num_users = 23;
  int32_t num_items = 157;  // deliberately not a tile multiple
  int64_t dim = 19;
  tensor::Matrix user_emb, item_emb;
  std::vector<std::vector<int32_t>> history;
  std::vector<int32_t> user_ids;

  QuantFixture() {
    user_emb = RandomMatrix(num_users, dim, 11);
    item_emb = RandomMatrix(num_items, dim, 22);
    history.resize(static_cast<size_t>(num_users));
    for (int32_t u = 0; u < num_users; ++u) {
      for (int32_t i = u % 7; i < num_items; i += 7 + u % 5) {
        history[static_cast<size_t>(u)].push_back(i);
      }
      user_ids.push_back(u);
    }
  }
};

TEST(QuantKernelTest, Int8MatchesScalarReferenceExactly) {
  const QuantFixture f;
  const tensor::Int8Rows uq = tensor::QuantizeInt8PerRow(f.user_emb);
  const tensor::Int8Rows iq = tensor::QuantizeInt8PerRow(f.item_emb);
  const tensor::Int8Panel panel = tensor::TransposeToPanel(iq);

  std::vector<std::vector<float>> kernel_scores;
  const auto ranked = eval::QuantScoreTopKInt8(
      uq, f.user_ids, panel, 10, &f.history, {}, nullptr, &kernel_scores);

  for (int32_t u = 0; u < f.num_users; ++u) {
    std::vector<float> scores(static_cast<size_t>(f.num_items));
    for (int32_t i = 0; i < f.num_items; ++i) {
      // The oracle accumulates the integer dot exactly, as the kernel
      // contract promises (int32 cannot overflow at 127^2 * dim).
      int32_t acc = 0;
      for (int64_t p = 0; p < f.dim; ++p) {
        acc += static_cast<int32_t>(uq.row(u)[p]) *
               static_cast<int32_t>(iq.row(i)[p]);
      }
      scores[static_cast<size_t>(i)] = uq.scales[static_cast<size_t>(u)] *
                                       iq.scales[static_cast<size_t>(i)] *
                                       static_cast<float>(acc);
    }
    const std::vector<int32_t> expect =
        ScalarTopK(scores, f.history[static_cast<size_t>(u)], 10);
    ASSERT_EQ(ranked[static_cast<size_t>(u)], expect) << "user " << u;
    for (size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(kernel_scores[static_cast<size_t>(u)][j],
                scores[static_cast<size_t>(expect[j])]);
    }
  }
}

TEST(QuantKernelTest, Bf16MatchesScalarReferenceExactly) {
  const QuantFixture f;
  const tensor::Bf16Rows uq = tensor::ToBf16Rows(f.user_emb);
  const tensor::Bf16Rows iq = tensor::ToBf16Rows(f.item_emb);
  const tensor::Bf16Panel panel = tensor::TransposeToPanel(iq);

  const auto ranked = eval::QuantScoreTopKBf16(uq, f.user_ids, panel, 10,
                                               &f.history, {});

  for (int32_t u = 0; u < f.num_users; ++u) {
    std::vector<float> scores(static_cast<size_t>(f.num_items));
    for (int32_t i = 0; i < f.num_items; ++i) {
      // Ascending-depth f32 accumulation — the kernel's documented order.
      float acc = 0.f;
      for (int64_t p = 0; p < f.dim; ++p) {
        acc += tensor::Bf16ToF32(uq.row(u)[p]) *
               tensor::Bf16ToF32(iq.row(i)[p]);
      }
      scores[static_cast<size_t>(i)] = acc;
    }
    const std::vector<int32_t> expect =
        ScalarTopK(scores, f.history[static_cast<size_t>(u)], 10);
    ASSERT_EQ(ranked[static_cast<size_t>(u)], expect) << "user " << u;
  }
}

TEST(QuantKernelTest, RankingsBitIdenticalAcrossThreadsAndTiles) {
  const QuantFixture f;
  const tensor::Int8Rows uq8 = tensor::QuantizeInt8PerRow(f.user_emb);
  const tensor::Int8Panel ip8 =
      tensor::TransposeToPanel(tensor::QuantizeInt8PerRow(f.item_emb));
  const tensor::Bf16Rows uq16 = tensor::ToBf16Rows(f.user_emb);
  const tensor::Bf16Panel ip16 =
      tensor::TransposeToPanel(tensor::ToBf16Rows(f.item_emb));

  eval::FusedRankConfig base;
  base.num_threads = 1;
  const auto int8_base = eval::QuantScoreTopKInt8(uq8, f.user_ids, ip8, 10,
                                                  &f.history, base);
  const auto bf16_base = eval::QuantScoreTopKBf16(uq16, f.user_ids, ip16, 10,
                                                  &f.history, base);
  for (const int threads : {1, 8}) {
    for (const int64_t item_tile : {16, 64, 1024}) {
      for (const int64_t user_tile : {1, 5, 64}) {
        eval::FusedRankConfig cfg;
        cfg.num_threads = threads;
        cfg.item_tile = item_tile;
        cfg.user_tile = user_tile;
        EXPECT_EQ(eval::QuantScoreTopKInt8(uq8, f.user_ids, ip8, 10,
                                           &f.history, cfg),
                  int8_base)
            << threads << " threads, tile " << user_tile << "x" << item_tile;
        EXPECT_EQ(eval::QuantScoreTopKBf16(uq16, f.user_ids, ip16, 10,
                                           &f.history, cfg),
                  bf16_base)
            << threads << " threads, tile " << user_tile << "x" << item_tile;
      }
    }
  }
}

TEST(QuantKernelTest, QuantTopKOverlapsF32TopK) {
  const QuantFixture f;
  const int k = 20;
  eval::FusedRankConfig cfg;
  cfg.num_threads = 1;
  const auto f32 = eval::FusedScoreTopK(f.user_emb, f.user_ids, f.item_emb,
                                        k, &f.history, cfg);
  const auto int8 = eval::QuantScoreTopKInt8(
      tensor::QuantizeInt8PerRow(f.user_emb), f.user_ids,
      tensor::TransposeToPanel(tensor::QuantizeInt8PerRow(f.item_emb)), k,
      &f.history, cfg);
  const auto bf16 = eval::QuantScoreTopKBf16(
      tensor::ToBf16Rows(f.user_emb), f.user_ids,
      tensor::TransposeToPanel(tensor::ToBf16Rows(f.item_emb)), k,
      &f.history, cfg);

  auto mean_overlap = [&](const std::vector<std::vector<int32_t>>& other) {
    double total = 0.0;
    for (size_t u = 0; u < f32.size(); ++u) {
      std::vector<int32_t> a = f32[u], b = other[u];
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<int32_t> inter;
      std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                            std::back_inserter(inter));
      total += static_cast<double>(inter.size()) /
               static_cast<double>(a.size());
    }
    return total / static_cast<double>(f32.size());
  };
  // Quantization perturbs scores by a bounded amount, so the top-K sets
  // stay close; bf16 (8 significant bits) sits above int8.
  EXPECT_GE(mean_overlap(int8), 0.8);
  EXPECT_GE(mean_overlap(bf16), 0.9);
}

TEST(QuantKernelTest, EmptyUsersAndKLargerThanItems) {
  const QuantFixture f;
  const tensor::Int8Rows uq = tensor::QuantizeInt8PerRow(f.user_emb);
  const tensor::Int8Panel panel =
      tensor::TransposeToPanel(tensor::QuantizeInt8PerRow(f.item_emb));
  EXPECT_TRUE(eval::QuantScoreTopKInt8(uq, {}, panel, 10, nullptr, {})
                  .empty());
  const auto all = eval::QuantScoreTopKInt8(uq, {0}, panel,
                                            f.num_items + 50, nullptr, {});
  EXPECT_EQ(all[0].size(), static_cast<size_t>(f.num_items));
}

}  // namespace
}  // namespace layergcn
