// Randomized-composition fuzzing of the autograd engine: build random DAGs
// of differentiable ops over a pool of matrices and verify every gradient
// against central differences. This catches interaction bugs (gradient
// accumulation across shared subexpressions, shape plumbing) that
// single-op checks cannot.

#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "tensor/ops.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace layergcn::ag {
namespace {

using layergcn::testing::ExpectGradientsMatch;
using layergcn::testing::LossBuilder;

// Grows a random expression DAG: starts from the leaf Vars (all R x C) and
// repeatedly combines two random existing nodes (or transforms one) with a
// random smooth shape-preserving op; nodes are reused, so the backward pass
// must accumulate fan-out gradients correctly. Ends with a smooth scalar
// reduction.
Var BuildRandomDag(Tape* /*tape*/, const std::vector<Var>& leaves,
                   uint64_t structure_seed, int steps) {
  util::Rng rng(structure_seed);
  std::vector<Var> pool = leaves;
  for (int s = 0; s < steps; ++s) {
    const Var a = pool[static_cast<size_t>(
        rng.NextBounded(pool.size()))];
    const Var b = pool[static_cast<size_t>(
        rng.NextBounded(pool.size()))];
    Var out;
    switch (rng.NextInt(0, 8)) {
      case 0:
        out = Add(a, b);
        break;
      case 1:
        out = Sub(a, b);
        break;
      case 2:
        out = Hadamard(a, Tanh(b));  // tanh keeps magnitudes bounded
        break;
      case 3:
        out = Scale(a, 0.5f);
        break;
      case 4:
        out = Sigmoid(a);
        break;
      case 5:
        out = Softplus(a);
        break;
      case 6:
        out = ScaleRows(a, RowwiseCosine(a, b, 1e-6f));
        break;
      default:
        out = AddN({a, b});
        break;
    }
    pool.push_back(out);
  }
  // Smooth scalar head mixing several pool nodes.
  Var head = pool.back();
  if (pool.size() >= 3) {
    head = Add(head, Hadamard(pool[pool.size() / 2], Tanh(pool[0])));
  }
  return Mean(Softplus(head));
}

class AutogradFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutogradFuzzTest, RandomDagGradientsMatchNumerics) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed);
  const int64_t rows = 3 + static_cast<int64_t>(rng.NextBounded(3));
  const int64_t cols = 2 + static_cast<int64_t>(rng.NextBounded(3));
  std::vector<tensor::Matrix> params;
  for (int p = 0; p < 3; ++p) {
    params.push_back(
        layergcn::testing::RandomMatrix(rows, cols, &rng, -0.8f, 0.8f));
  }
  const int steps = 4 + static_cast<int>(rng.NextBounded(5));
  LossBuilder build = [&](Tape* tape, const std::vector<Var>& leaves) {
    return BuildRandomDag(tape, leaves, seed * 977 + 13, steps);
  };
  ExpectGradientsMatch(build, {&params[0], &params[1], &params[2]},
                       /*eps=*/1e-2f, /*rel_tol=*/3e-2f, /*abs_tol=*/3e-3f,
                       /*max_checks=*/24);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutogradFuzzTest,
                         ::testing::Range<uint64_t>(1, 25));

// Deep chain stress: a 40-op sequential chain must stay numerically
// correct (tanh saturation keeps values in range).
TEST(AutogradFuzzTest, DeepChainGradients) {
  util::Rng rng(4242);
  tensor::Matrix x = layergcn::testing::RandomMatrix(4, 3, &rng, -0.5f, 0.5f);
  LossBuilder build = [](Tape*, const std::vector<Var>& leaves) {
    Var v = leaves[0];
    for (int i = 0; i < 40; ++i) {
      v = Tanh(Add(Scale(v, 0.9f), Hadamard(v, Sigmoid(v))));
    }
    return Mean(v);
  };
  ExpectGradientsMatch(build, {&x}, /*eps=*/1e-2f, /*rel_tol=*/3e-2f,
                       /*abs_tol=*/3e-3f);
}

// Wide fan-out stress: one leaf feeding 32 branches summed together; the
// gradient must equal 32x the single-branch gradient.
TEST(AutogradFuzzTest, FanOutAccumulation) {
  util::Rng rng(515);
  tensor::Matrix x = layergcn::testing::RandomMatrix(3, 3, &rng);
  tensor::Matrix g1(3, 3), g32(3, 3);
  {
    Tape tape;
    Var v = tape.Parameter(&x, &g1);
    tape.Backward(Sum(Scale(v, 2.f)));
  }
  {
    Tape tape;
    Var v = tape.Parameter(&x, &g32);
    std::vector<Var> branches(32, Scale(v, 2.f));
    // Distinct op nodes, all reading the same leaf.
    for (auto& b : branches) b = Scale(v, 2.f);
    tape.Backward(Sum(AddN(branches)));
  }
  EXPECT_TRUE(tensor::Scale(g1, 32.f).AllClose(g32, 1e-4f));
}

}  // namespace
}  // namespace layergcn::ag
