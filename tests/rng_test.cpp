#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace layergcn::util {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const int v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  const int n = 20000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(29);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng parent(31);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.NextU64() == child2.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(WeightedSampleTest, ReturnsRequestedCountDistinctSorted) {
  Rng rng(37);
  std::vector<double> w(50, 1.0);
  const auto out = WeightedSampleWithoutReplacement(w, 20, &rng);
  ASSERT_EQ(out.size(), 20u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(out[i - 1], out[i]);  // sorted and distinct
  }
  for (int64_t v : out) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(WeightedSampleTest, KEqualsNReturnsEverything) {
  Rng rng(41);
  std::vector<double> w{1.0, 2.0, 3.0};
  const auto out = WeightedSampleWithoutReplacement(w, 3, &rng);
  EXPECT_EQ(out, (std::vector<int64_t>{0, 1, 2}));
}

TEST(WeightedSampleTest, ZeroKReturnsEmpty) {
  Rng rng(43);
  std::vector<double> w{1.0, 2.0};
  EXPECT_TRUE(WeightedSampleWithoutReplacement(w, 0, &rng).empty());
}

TEST(WeightedSampleTest, ZeroWeightNeverChosenWhenAvoidable) {
  Rng rng(47);
  std::vector<double> w{1.0, 0.0, 1.0, 1.0};
  for (int trial = 0; trial < 200; ++trial) {
    const auto out = WeightedSampleWithoutReplacement(w, 3, &rng);
    EXPECT_TRUE(std::find(out.begin(), out.end(), 1) == out.end())
        << "zero-weight index selected";
  }
}

TEST(WeightedSampleTest, HeavyWeightSelectedMoreOften) {
  Rng rng(53);
  // Index 0 weighs 10x more than each of the others; when sampling 1 of 11
  // it should be picked far more often than 1/11 of the time.
  std::vector<double> w(11, 1.0);
  w[0] = 10.0;
  int zero_count = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const auto out = WeightedSampleWithoutReplacement(w, 1, &rng);
    if (out[0] == 0) ++zero_count;
  }
  // Expected frequency 10/20 = 0.5; uniform would be 1/11 ≈ 0.09.
  EXPECT_GT(zero_count, trials / 4);
}

TEST(UniformSampleTest, DistinctSortedInRange) {
  Rng rng(59);
  for (int64_t k : {0ll, 1ll, 5ll, 50ll, 100ll}) {
    const auto out = UniformSampleWithoutReplacement(100, k, &rng);
    ASSERT_EQ(static_cast<int64_t>(out.size()), k);
    for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1], out[i]);
    for (int64_t v : out) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(UniformSampleTest, SparseAndDensePathsCoverUniformly) {
  Rng rng(61);
  // Sparse path: k << n.
  std::vector<int> counts(100, 0);
  for (int t = 0; t < 3000; ++t) {
    for (int64_t v : UniformSampleWithoutReplacement(100, 5, &rng)) {
      ++counts[static_cast<size_t>(v)];
    }
  }
  // Each index expected 150 times; allow generous slack.
  for (int c : counts) {
    EXPECT_GT(c, 75);
    EXPECT_LT(c, 250);
  }
}

}  // namespace
}  // namespace layergcn::util
