#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace layergcn::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(&pool, 0, 100, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 5, 5, [&](int64_t) { ++calls; });
  ParallelFor(&pool, 7, 3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, 10, 20, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelForTest, GlobalPoolWorks) {
  std::atomic<int> counter{0};
  ParallelFor(0, 64, [&](int64_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, SingleThreadPoolStillCorrect) {
  ThreadPool pool(1);
  std::vector<int> order;
  ParallelFor(&pool, 0, 10, [&](int64_t i) {
    order.push_back(static_cast<int>(i));  // single worker: no race
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

}  // namespace
}  // namespace layergcn::util
