#include "data/statistics.h"

#include <cmath>

#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace layergcn::data {
namespace {

TEST(DegreeStatsTest, HandComputed) {
  const DegreeStats s = ComputeDegreeStats({1, 2, 3, 4});
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 4);
}

TEST(DegreeStatsTest, EmptyAndSingleton) {
  const DegreeStats empty = ComputeDegreeStats({});
  EXPECT_EQ(empty.count, 0);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  const DegreeStats one = ComputeDegreeStats({7});
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.gini, 0.0);
}

TEST(DegreeStatsTest, GiniUniformIsZero) {
  const DegreeStats s = ComputeDegreeStats({5, 5, 5, 5, 5});
  EXPECT_NEAR(s.gini, 0.0, 1e-12);
}

TEST(DegreeStatsTest, GiniExtremeConcentration) {
  // All mass on one node of n: G = (n-1)/n.
  std::vector<int32_t> degrees(10, 0);
  degrees[3] = 100;
  const DegreeStats s = ComputeDegreeStats(degrees);
  EXPECT_NEAR(s.gini, 0.9, 1e-12);
  EXPECT_NEAR(s.top10_share, 1.0, 1e-12);
}

TEST(DegreeStatsTest, GiniOrdersSkewness) {
  const DegreeStats flat = ComputeDegreeStats({10, 11, 9, 10, 10, 12, 8});
  const DegreeStats skew = ComputeDegreeStats({1, 1, 1, 1, 1, 1, 64});
  EXPECT_LT(flat.gini, skew.gini);
}

TEST(LogDegreeHistogramTest, Buckets) {
  int64_t zeros = 0;
  // degrees 1 -> bucket 0; 2,3 -> bucket 1; 4..7 -> bucket 2; 8 -> bucket 3
  const auto hist = LogDegreeHistogram({0, 1, 2, 3, 4, 7, 8}, &zeros);
  EXPECT_EQ(zeros, 1);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(hist[2], 2);
  EXPECT_EQ(hist[3], 1);
}

TEST(GraphStatsTest, BipartiteGraphDensityAndSides) {
  graph::BipartiteGraph g(3, 4, {{0, 0}, {0, 1}, {1, 0}, {2, 3}});
  const GraphStats s = ComputeGraphStats(g);
  EXPECT_NEAR(s.density, 4.0 / 12.0, 1e-12);
  EXPECT_EQ(s.user_degrees.count, 3);
  EXPECT_EQ(s.item_degrees.count, 4);
  EXPECT_NEAR(s.user_degrees.mean, 4.0 / 3.0, 1e-12);
  EXPECT_NE(s.ToString().find("density"), std::string::npos);
}

TEST(GraphStatsTest, YelpMoreSkewedThanMooc) {
  // The Fig. 4 contrast expressed as Gini: Yelp's item degrees are more
  // unequal than MOOC's.
  const Dataset mooc = MakeBenchmarkDataset("mooc", 0.3, 5);
  const Dataset yelp = MakeBenchmarkDataset("yelp", 0.3, 5);
  const GraphStats sm = ComputeGraphStats(mooc.train_graph);
  const GraphStats sy = ComputeGraphStats(yelp.train_graph);
  EXPECT_GT(sy.item_degrees.gini, sm.item_degrees.gini);
  EXPECT_GT(sm.item_degrees.mean, sy.item_degrees.mean);
}

}  // namespace
}  // namespace layergcn::data
