#include "util/strings.h"

#include "gtest/gtest.h"

namespace layergcn::util {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("a\tb", '\t'), (std::vector<std::string>{"a", "b"}));
}

TEST(TrimTest, RemovesSurroundingWhitespaceOnly) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ParseInt64Test, ValidInputs) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("  123  ", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
}

TEST(ParseInt64Test, RejectsMalformed) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999", &v));  // overflow
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_TRUE(ParseDouble(" 7 ", &v));
  EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(ParseDoubleTest, RejectsMalformed) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("x", &v));
  EXPECT_FALSE(ParseDouble("1.2.3", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JoinIntsTest, Joins) {
  EXPECT_EQ(JoinInts({1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(JoinInts({}, ","), "");
  EXPECT_EQ(JoinInts({7}, ","), "7");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "ab"));
}

}  // namespace
}  // namespace layergcn::util
