// Robustness suite for the serving subsystem: corrupt-snapshot fallback,
// deadline expiry mid-block, queue-overflow shedding, circuit-breaker
// transitions, degraded mode, and bit-identical parity between the
// RecommendService ranking and the offline fused-kernel ranking.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "eval/fused_rank.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/circuit_breaker.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace layergcn::serve {
namespace {

namespace fs = std::filesystem;

// A fresh directory under the test temp root.
std::string TempDirFor(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A small export with known popularity structure:
//   counts: item0=3, item1=2, item2=1, item3=1, item4=0, item5=0
//   popular_items (count desc, id asc): [0, 1, 2, 3, 4, 5]
train::ServingExport SmallExport(int64_t version) {
  train::ServingExport ex;
  ex.version = version;
  ex.user_emb = tensor::Matrix(3, 4);
  ex.item_emb = tensor::Matrix(6, 4);
  util::Rng rng(7 + static_cast<uint64_t>(version));
  ex.user_emb.UniformInit(&rng, -1.f, 1.f);
  ex.item_emb.UniformInit(&rng, -1.f, 1.f);
  ex.user_history = {{0, 1}, {0, 2}, {0, 1, 3}};
  return ex;
}

void SaveSmall(const std::string& dir, int64_t version) {
  const util::Status s = train::SaveServingExport(
      SnapshotStore::SnapshotPath(dir, version), SmallExport(version));
  ASSERT_TRUE(s.ok()) << s.ToString();
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::DisarmAll();
    obs::SetEnabled(true);
  }
  void TearDown() override { util::fault::DisarmAll(); }
};

TEST_F(ServeTest, SnapshotRoundTripAndPopularity) {
  const std::string dir = TempDirFor("serve_roundtrip");
  SaveSmall(dir, 4);
  const auto snap = ModelSnapshot::Load(SnapshotStore::SnapshotPath(dir, 4));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap.value()->version(), 4);
  EXPECT_EQ(snap.value()->num_users(), 3);
  EXPECT_EQ(snap.value()->num_items(), 6);
  EXPECT_EQ(snap.value()->dim(), 4);
  EXPECT_EQ(snap.value()->popular_items(),
            (std::vector<int32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(snap.value()->item_counts(), (std::vector<int64_t>{3, 2, 1, 1, 0, 0}));
}

TEST_F(ServeTest, SnapshotNamingAndListing) {
  const std::string dir = TempDirFor("serve_listing");
  EXPECT_EQ(SnapshotStore::SnapshotPath(dir, 12), dir + "/snap-000012.lgcn");
  SaveSmall(dir, 12);
  SaveSmall(dir, 3);
  // Noise the listing must ignore.
  { std::ofstream(dir + "/snap-xxxxxx.lgcn") << "nope"; }
  { std::ofstream(dir + "/other.txt") << "nope"; }
  const auto listed = SnapshotStore::ListSnapshots(dir);
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].first, 3);
  EXPECT_EQ(listed[1].first, 12);
}

TEST_F(ServeTest, ReloadEmptyDirectoryIsStructuredError) {
  const std::string dir = TempDirFor("serve_empty");
  SnapshotStore store(dir);
  const util::Status s = store.Reload();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(store.current(), nullptr);
}

TEST_F(ServeTest, CorruptNewestFallsBackToOlderValid) {
  const std::string dir = TempDirFor("serve_fallback");
  SaveSmall(dir, 1);
  SaveSmall(dir, 3);
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  // One-shot bit flip corrupts the first file read — the newest (v3).
  util::fault::Arm("serve.snapshot_bit_flip");
  SnapshotStore store(dir);
  const util::Status s = store.Reload();
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version(), 1);

  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterDelta(before, "serve.snapshot_fallbacks"), 1u);
}

TEST_F(ServeTest, TornReloadKeepsPreviousSnapshotServing) {
  const std::string dir = TempDirFor("serve_torn");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  ASSERT_EQ(store.current()->version(), 1);

  SaveSmall(dir, 2);
  util::fault::Arm("serve.reload_torn_read");
  // v2 is torn mid-read; the store walks back to v1, which it is already
  // serving, and keeps it — reload is a graceful no-op, not an outage.
  const util::Status s = store.Reload();
  EXPECT_TRUE(s.ok()) << s.ToString();
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version(), 1);

  // Next reload (fault spent) picks up v2.
  ASSERT_TRUE(store.Reload().ok());
  EXPECT_EQ(store.current()->version(), 2);
}

TEST_F(ServeTest, AllSnapshotsCorruptKeepsNothingButNeverCrashes) {
  const std::string dir = TempDirFor("serve_all_corrupt");
  SaveSmall(dir, 1);
  util::fault::Arm("serve.snapshot_bit_flip");
  SnapshotStore store(dir);
  const util::Status s = store.Reload();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(store.current(), nullptr);
}

TEST_F(ServeTest, RequestValidation) {
  const std::string dir = TempDirFor("serve_validation");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  for (const RecommendRequest req :
       {RecommendRequest{-1, 5, 0}, RecommendRequest{3, 5, 0},
        RecommendRequest{0, 0, 0},
        RecommendRequest{0, service.options().max_k + 1, 0}}) {
    const auto r = service.Recommend(req);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kInvalidArgument)
        << r.status().ToString();
  }
  const auto ok = service.Recommend({0, 3, 0});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().items.size(), 3u);
}

TEST_F(ServeTest, NoSnapshotIsFailedPrecondition) {
  const std::string dir = TempDirFor("serve_no_snapshot");
  SnapshotStore store(dir);
  RecommendService service(&store);
  const auto r = service.Recommend({0, 5, 0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, DeadlineExpiryMidBlockReturnsPartialPrefix) {
  const std::string dir = TempDirFor("serve_deadline");
  // 64 items, item_tile 16 (the GEMM panel minimum) => 4 blocks; the armed
  // slow-score stall burns the whole budget inside the first block, so the
  // kernel stops at the first block boundary and only items [0, 16) were
  // ever scored.
  train::ServingExport ex;
  ex.version = 1;
  ex.user_emb = tensor::Matrix(4, 8);
  ex.item_emb = tensor::Matrix(64, 8);
  util::Rng rng(11);
  ex.user_emb.UniformInit(&rng, -1.f, 1.f);
  ex.item_emb.UniformInit(&rng, -1.f, 1.f);
  ex.user_history.assign(4, {});
  ASSERT_TRUE(
      train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1), ex).ok());

  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendServiceOptions opt;
  opt.rank.item_tile = 16;
  opt.rank.num_threads = 1;
  RecommendService service(&store, opt);

  // The stall fires after the first tile and spins until deadline + 1ms,
  // so any budget produces the same partial prefix — size it generously
  // enough that sanitizer-slowed pre-kernel setup cannot eat the whole
  // budget before the first tile is scored.
  util::fault::Arm("serve.slow_score");
  const auto r = service.Recommend({0, 16, /*budget_us=*/100'000});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().partial);
  ASSERT_FALSE(r.value().items.empty());
  EXPECT_LE(r.value().items.size(), 16u);
  for (const ScoredItem& it : r.value().items) {
    EXPECT_GE(it.item, 0);
    EXPECT_LT(it.item, 16);
  }
}

TEST_F(ServeTest, SpentBudgetIsStructuredNotACrash) {
  const std::string dir = TempDirFor("serve_tiny_budget");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);
  // A 1us budget is near-certainly spent before the kernel's first block
  // check; either structured outcome (empty => DeadlineExceeded, something
  // scored => partial success) is acceptable — never UB or a crash.
  const auto r = service.Recommend({0, 4, /*budget_us=*/1});
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded)
        << r.status().ToString();
  }
}

TEST_F(ServeTest, QueueOverflowShedsWithResourceExhausted) {
  const std::string dir = TempDirFor("serve_shed");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  // One compute-pool worker, blocked by a task we control: admitted
  // requests can only queue, so admission state is fully deterministic.
  util::ThreadPool pool(1);
  util::parallel::ScopedComputePool scope(&pool);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  RecommendServiceOptions opt;
  opt.queue_capacity = 2;
  opt.rank.num_threads = 1;  // dedicated kernel pool; never our blocked one
  {
    RecommendService service(&store, opt);
    auto f1 = service.Submit({0, 3, 0});
    auto f2 = service.Submit({1, 3, 0});
    EXPECT_EQ(service.in_flight(), 2);

    auto f3 = service.Submit({2, 3, 0});
    const auto shed = f3.get();  // resolves immediately: shed at the door
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), util::StatusCode::kResourceExhausted);

    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    const auto r1 = f1.get();
    const auto r2 = f2.get();
    EXPECT_TRUE(r1.ok()) << r1.status().ToString();
    EXPECT_TRUE(r2.ok()) << r2.status().ToString();
  }  // dtor drains with the pool alive
}

TEST_F(ServeTest, BudgetExpiredWhileQueuedShedsAtDequeueNeverScored) {
  const std::string dir = TempDirFor("serve_expired_in_queue");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  // Same deterministic-admission trick as the overflow test: one blocked
  // compute-pool worker, so the submitted request can only sit queued
  // while its budget burns down.
  util::ThreadPool pool(1);
  util::parallel::ScopedComputePool scope(&pool);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  RecommendServiceOptions opt;
  opt.rank.num_threads = 1;
  {
    RecommendService service(&store, opt);
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();

    RecommendRequest req;
    req.user_id = 0;
    req.k = 3;
    req.budget_us = 2'000;
    auto f = service.Submit(req);
    // Burn well past the budget while the request is stuck in the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();

    const auto r = f.get();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), util::StatusCode::kDeadlineExceeded)
        << r.status().ToString();

    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::Global().Snapshot();
    EXPECT_EQ(after.CounterDelta(before, "serve.expired_in_queue"), 1u);
    // Never scored: the request must not have entered the Recommend
    // pipeline at all — shedding expired work is the point.
    EXPECT_EQ(after.CounterDelta(before, "serve.requests"), 0u);
  }
}

TEST_F(ServeTest, CircuitBreakerTransitions) {
  CircuitBreaker::Options opt;
  opt.failure_threshold = 2;
  opt.open_cooldown_us = 100;
  opt.half_open_probes = 1;
  CircuitBreaker breaker(opt);

  // Closed: everything is admitted; failures accumulate.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(1000));
  breaker.RecordFailure(1000);
  EXPECT_EQ(breaker.consecutive_failures(), 1);
  EXPECT_TRUE(breaker.Allow(1001));
  breaker.RecordFailure(1001);  // threshold hit -> open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open: rejected until the cooldown elapses.
  EXPECT_FALSE(breaker.Allow(1050));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Cooldown elapsed: half-open, one probe admitted, the rest rejected.
  EXPECT_TRUE(breaker.Allow(1102));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow(1103));

  // Successful probe closes the breaker and resets the failure count.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
  EXPECT_TRUE(breaker.Allow(1104));

  // Re-open, probe fails: straight back to open with a fresh cooldown.
  breaker.RecordFailure(2000);
  breaker.RecordFailure(2001);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.Allow(2102));  // probe
  breaker.RecordFailure(2103);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(2150));
  EXPECT_TRUE(breaker.Allow(2204));  // next cooldown elapsed
}

TEST_F(ServeTest, OpenBreakerServesPopularityFallback) {
  const std::string dir = TempDirFor("serve_degraded");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  RecommendServiceOptions opt;
  opt.breaker.failure_threshold = 1;
  opt.breaker.open_cooldown_us = 3600ull * 1000000ull;  // stay open
  RecommendService service(&store, opt);
  service.breaker().RecordFailure(obs::NowMicros());
  ASSERT_EQ(service.breaker().state(), CircuitBreaker::State::kOpen);

  // User 1's history is {0, 2}; popularity minus history = [1, 3, 4, 5]
  // with counts [2, 1, 0, 0].
  const auto r = service.Recommend({1, 3, 0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().degraded);
  ASSERT_EQ(r.value().items.size(), 3u);
  EXPECT_EQ(r.value().items[0].item, 1);
  EXPECT_EQ(r.value().items[1].item, 3);
  EXPECT_EQ(r.value().items[2].item, 4);
  EXPECT_FLOAT_EQ(r.value().items[0].score, 2.f);
  EXPECT_FLOAT_EQ(r.value().items[1].score, 1.f);
  EXPECT_FLOAT_EQ(r.value().items[2].score, 0.f);
}

// The service must rank bit-identically to the offline evaluation path:
// same FusedScoreTopK kernel, same embeddings, same exclusion lists, same
// (score desc, id asc) total order — at any worker count.
TEST_F(ServeTest, TopKBitIdenticalToEvaluatorKernelAt1And8Threads) {
  const std::string dir = TempDirFor("serve_parity");
  const int32_t num_users = 40;
  const int32_t num_items = 300;
  const int64_t dim = 16;

  train::ServingExport ex;
  ex.version = 1;
  ex.user_emb = tensor::Matrix(num_users, dim);
  ex.item_emb = tensor::Matrix(num_items, dim);
  util::Rng rng(23);
  ex.user_emb.UniformInit(&rng, -1.f, 1.f);
  ex.item_emb.UniformInit(&rng, -1.f, 1.f);
  ex.user_history.resize(num_users);
  for (int32_t u = 0; u < num_users; ++u) {
    for (int32_t i = u % 7; i < num_items; i += 11 + u % 5) {
      ex.user_history[static_cast<size_t>(u)].push_back(i);
    }
  }
  ASSERT_TRUE(
      train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1), ex).ok());
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  const int k = 20;
  std::vector<int32_t> all_users(num_users);
  for (int32_t u = 0; u < num_users; ++u) all_users[static_cast<size_t>(u)] = u;

  std::vector<std::vector<ScoredItem>> per_thread_results;
  for (const int threads : {1, 8}) {
    eval::FusedRankConfig cfg;
    cfg.num_threads = threads;
    // The Evaluator's ranking for these embeddings: the fused kernel over
    // every user with training items excluded (Evaluator::RankUsers makes
    // exactly this call).
    std::vector<std::vector<float>> ref_scores;
    const std::vector<std::vector<int32_t>> reference = eval::FusedScoreTopK(
        ex.user_emb, all_users, ex.item_emb, k, &ex.user_history, cfg,
        /*deadline=*/nullptr, &ref_scores);

    RecommendServiceOptions opt;
    opt.rank.num_threads = threads;
    RecommendService service(&store, opt);
    std::vector<ScoredItem> flat;
    for (int32_t u = 0; u < num_users; ++u) {
      const auto r = service.Recommend({u, k, 0});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_FALSE(r.value().partial);
      EXPECT_FALSE(r.value().degraded);
      const auto& ref_u = reference[static_cast<size_t>(u)];
      ASSERT_EQ(r.value().items.size(), ref_u.size()) << "user " << u;
      for (size_t i = 0; i < ref_u.size(); ++i) {
        EXPECT_EQ(r.value().items[i].item, ref_u[i])
            << "user " << u << " rank " << i << " threads " << threads;
        EXPECT_EQ(r.value().items[i].score, ref_scores[static_cast<size_t>(u)][i])
            << "user " << u << " rank " << i << " threads " << threads;
        flat.push_back(r.value().items[i]);
      }
    }
    per_thread_results.push_back(std::move(flat));
  }

  // And the served rankings themselves are identical across worker counts.
  ASSERT_EQ(per_thread_results[0].size(), per_thread_results[1].size());
  for (size_t i = 0; i < per_thread_results[0].size(); ++i) {
    EXPECT_EQ(per_thread_results[0][i].item, per_thread_results[1][i].item);
    EXPECT_EQ(per_thread_results[0][i].score, per_thread_results[1][i].score);
  }
}

// Every serve fault point degrades or errors structurally — no crash, and
// the service keeps answering afterwards.
TEST_F(ServeTest, FaultSweepNeverCrashes) {
  const std::string dir = TempDirFor("serve_sweep");
  SaveSmall(dir, 1);
  SaveSmall(dir, 2);
  for (const char* point :
       {"serve.snapshot_bit_flip", "serve.reload_torn_read",
        "serve.slow_score"}) {
    SCOPED_TRACE(point);
    util::fault::DisarmAll();
    util::fault::Arm(point);
    SnapshotStore store(dir);
    (void)store.Reload();  // may fall back; must not crash
    RecommendService service(&store);
    const auto r1 = service.Recommend({0, 3, /*budget_us=*/2000});
    if (!r1.ok()) {
      EXPECT_NE(r1.status().code(), util::StatusCode::kOk);
    }
    util::fault::DisarmAll();
    ASSERT_TRUE(store.Reload().ok());
    const auto r2 = service.Recommend({0, 3, 0});
    EXPECT_TRUE(r2.ok()) << r2.status().ToString();
  }
}

// --- Quantized snapshot encodings --------------------------------------

TEST_F(ServeTest, SnapshotCarriesQuantizedCopies) {
  const std::string dir = TempDirFor("serve_quant_roundtrip");
  SaveSmall(dir, 1);
  const auto snap = ModelSnapshot::Load(SnapshotStore::SnapshotPath(dir, 1));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap.value()->has_int8());
  EXPECT_TRUE(snap.value()->has_bf16());
  EXPECT_EQ(snap.value()->user_int8().rows, snap.value()->num_users());
  EXPECT_EQ(snap.value()->item_int8_panel().depth, snap.value()->dim());
  EXPECT_EQ(snap.value()->item_int8_panel().count, snap.value()->num_items());
  EXPECT_EQ(snap.value()->user_bf16().rows, snap.value()->num_users());
  EXPECT_EQ(snap.value()->item_bf16_panel().count, snap.value()->num_items());
}

TEST_F(ServeTest, F32OnlyExportLoadsWithoutQuant) {
  const std::string dir = TempDirFor("serve_quant_f32only");
  train::ServingExport ex = SmallExport(1);
  ex.write_int8 = false;
  ex.write_bf16 = false;
  ASSERT_TRUE(
      train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1), ex).ok());
  const auto snap = ModelSnapshot::Load(SnapshotStore::SnapshotPath(dir, 1));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap.value()->has_int8());
  EXPECT_FALSE(snap.value()->has_bf16());
}

TEST_F(ServeTest, CorruptQuantSectionFallsBackToF32) {
  const std::string dir = TempDirFor("serve_quant_corrupt");
  SaveSmall(dir, 1);
  const std::string path = SnapshotStore::SnapshotPath(dir, 1);

  // Flip a byte inside the bf16 section payload (the last section): its
  // CRC no longer matches, so exactly that quantized copy is dropped.
  std::string image;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    image = buf.str();
  }
  image[image.size() - 8] ^= 0x10;
  { std::ofstream(path, std::ios::binary | std::ios::trunc) << image; }

  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  const auto snap = ModelSnapshot::Load(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(snap.value()->has_int8());   // earlier section, still valid
  EXPECT_FALSE(snap.value()->has_bf16());  // damaged copy dropped
  // The f32 reference is untouched — scoring still works.
  EXPECT_EQ(snap.value()->num_users(), 3);
  EXPECT_EQ(snap.value()->num_items(), 6);
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterDelta(before, "serve.snapshot_fallbacks"), 1u);
}

TEST_F(ServeTest, TruncatedQuantTailFallsBackToF32) {
  const std::string dir = TempDirFor("serve_quant_truncated");
  // Baseline: the same export without quant sections, to find where the
  // quant tail begins.
  train::ServingExport f32_only = SmallExport(1);
  f32_only.write_int8 = false;
  f32_only.write_bf16 = false;
  const std::string probe = dir + "/probe.bin";
  ASSERT_TRUE(train::SaveServingExport(probe, f32_only).ok());
  const auto f32_size = fs::file_size(probe);

  SaveSmall(dir, 1);
  const std::string path = SnapshotStore::SnapshotPath(dir, 1);
  ASSERT_GT(fs::file_size(path), f32_size);

  // Tear the file inside the int8 section payload: both quant sections are
  // gone, the required sections before them are intact.
  fs::resize_file(path, f32_size + 16);
  // The v2 header still claims 5 sections; the parse must degrade, not
  // fail. (Quant sections are written last precisely for this.)
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  const auto snap = ModelSnapshot::Load(path);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_FALSE(snap.value()->has_int8());
  EXPECT_FALSE(snap.value()->has_bf16());
  EXPECT_EQ(snap.value()->num_items(), 6);
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterDelta(before, "serve.snapshot_fallbacks"), 1u);
}

TEST_F(ServeTest, MissingEncodingFallsBackToF32PerRequest) {
  const std::string dir = TempDirFor("serve_encoding_fallback");
  train::ServingExport ex = SmallExport(1);
  ex.write_int8 = false;
  ex.write_bf16 = false;
  ASSERT_TRUE(
      train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1), ex).ok());
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  RecommendServiceOptions opt;
  opt.encoding = eval::ScoreEncoding::kInt8;
  RecommendService service(&store, opt);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  const auto r = service.Recommend({0, 3, 0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().encoding, eval::ScoreEncoding::kF32);
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterDelta(before, "serve.encoding_fallbacks"), 1u);
}

TEST_F(ServeTest, Int8ServingOverlapsF32TopK) {
  const std::string dir = TempDirFor("serve_quant_overlap");
  const int32_t num_users = 30;
  const int32_t num_items = 200;
  train::ServingExport ex;
  ex.version = 1;
  ex.user_emb = tensor::Matrix(num_users, 16);
  ex.item_emb = tensor::Matrix(num_items, 16);
  util::Rng rng(31);
  ex.user_emb.UniformInit(&rng, -1.f, 1.f);
  ex.item_emb.UniformInit(&rng, -1.f, 1.f);
  ex.user_history.resize(num_users);
  ASSERT_TRUE(
      train::SaveServingExport(SnapshotStore::SnapshotPath(dir, 1), ex).ok());
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());

  RecommendServiceOptions f32_opt;
  RecommendServiceOptions int8_opt;
  int8_opt.encoding = eval::ScoreEncoding::kInt8;
  RecommendService f32_service(&store, f32_opt);
  RecommendService int8_service(&store, int8_opt);

  const int k = 20;
  double overlap_total = 0.0;
  for (int32_t u = 0; u < num_users; ++u) {
    const auto rf = f32_service.Recommend({u, k, 0});
    const auto rq = int8_service.Recommend({u, k, 0});
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rq.ok());
    EXPECT_EQ(rq.value().encoding, eval::ScoreEncoding::kInt8);
    std::vector<int32_t> a, b;
    for (const ScoredItem& it : rf.value().items) a.push_back(it.item);
    for (const ScoredItem& it : rq.value().items) b.push_back(it.item);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::vector<int32_t> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    overlap_total += static_cast<double>(inter.size()) /
                     static_cast<double>(a.size());
  }
  // int8 perturbs scores by a bounded amount; the served top-K must stay
  // close to the f32 reference (exact agreement is not required — ranks
  // near the cutoff may swap).
  EXPECT_GE(overlap_total / num_users, 0.8);
}

// --- Score cache --------------------------------------------------------

TEST_F(ServeTest, ScoreCacheHitsServePrefixesAndInvalidateOnHotSwap) {
  const std::string dir = TempDirFor("serve_score_cache");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);  // cache on by default

  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::Global().Snapshot();
  const auto r1 = service.Recommend({0, 4, 0});
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().cached);

  // Same request: served from cache, byte-identical items.
  const auto r2 = service.Recommend({0, 4, 0});
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2.value().cached);
  ASSERT_EQ(r2.value().items.size(), r1.value().items.size());
  for (size_t i = 0; i < r1.value().items.size(); ++i) {
    EXPECT_EQ(r2.value().items[i].item, r1.value().items[i].item);
    EXPECT_EQ(r2.value().items[i].score, r1.value().items[i].score);
  }

  // Smaller k: the cached top-4 answers k=2 exactly (prefix serve).
  const auto r3 = service.Recommend({0, 2, 0});
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().cached);
  ASSERT_EQ(r3.value().items.size(), 2u);
  EXPECT_EQ(r3.value().items[0].item, r1.value().items[0].item);
  EXPECT_EQ(r3.value().items[1].item, r1.value().items[1].item);

  // Larger k cannot be answered from a smaller cached list.
  const auto r4 = service.Recommend({0, 5, 0});
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(r4.value().cached);

  const obs::MetricsSnapshot mid = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(mid.CounterDelta(before, "serve.score_cache_hits"), 2u);
  EXPECT_GE(mid.CounterDelta(before, "serve.score_cache_misses"), 2u);

  // Hot-swap to v2: entries keyed to v1 must never serve again.
  SaveSmall(dir, 2);
  ASSERT_TRUE(store.Reload().ok());
  const auto r5 = service.Recommend({0, 4, 0});
  ASSERT_TRUE(r5.ok());
  EXPECT_FALSE(r5.value().cached);
  EXPECT_EQ(r5.value().snapshot_version, 2);
  const auto r6 = service.Recommend({0, 4, 0});
  ASSERT_TRUE(r6.ok());
  EXPECT_TRUE(r6.value().cached);
  EXPECT_EQ(r6.value().snapshot_version, 2);
}

TEST_F(ServeTest, ScoreCacheDisabledNeverServesCached) {
  const std::string dir = TempDirFor("serve_cache_off");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendServiceOptions opt;
  opt.score_cache_capacity = 0;
  RecommendService service(&store, opt);
  for (int i = 0; i < 3; ++i) {
    const auto r = service.Recommend({0, 4, 0});
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().cached);
  }
}

TEST_F(ServeTest, ScoreCacheEvictsLeastRecentlyUsed) {
  const std::string dir = TempDirFor("serve_cache_lru");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendServiceOptions opt;
  opt.score_cache_capacity = 2;
  RecommendService service(&store, opt);

  ASSERT_TRUE(service.Recommend({0, 3, 0}).ok());  // cache: {0}
  ASSERT_TRUE(service.Recommend({1, 3, 0}).ok());  // cache: {0, 1}
  // Touch 0 so user 1 is the LRU entry, then insert 2 — evicting 1.
  EXPECT_TRUE(service.Recommend({0, 3, 0}).value().cached);
  ASSERT_TRUE(service.Recommend({2, 3, 0}).ok());  // cache: {0, 2}
  EXPECT_TRUE(service.Recommend({0, 3, 0}).value().cached);
  EXPECT_TRUE(service.Recommend({2, 3, 0}).value().cached);
  EXPECT_FALSE(service.Recommend({1, 3, 0}).value().cached);  // evicted
}

TEST_F(ServeTest, HotSwapRacingInFlightRecommends) {
  // Reload() hot-swaps the snapshot pointer while reader threads hammer
  // Recommend(): every response must be complete, OK, and stamped with a
  // version that was published at some point — never a crash, never a
  // torn snapshot. All requests use user 0, valid in every version.
  const std::string dir = TempDirFor("serve_hotswap_race");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> served{0}, failed{0}, bad_version{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto r = service.Recommend({0, 3, 0});
        served.fetch_add(1, std::memory_order_relaxed);
        if (!r.ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.value().snapshot_version < 1 ||
                   r.value().snapshot_version > 40 ||
                   r.value().items.empty()) {
          bad_version.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Publisher side: rotate through 40 versions as fast as reloads go.
  for (int64_t v = 2; v <= 40; ++v) {
    SaveSmall(dir, v);
    ASSERT_TRUE(store.Reload().ok());
    ASSERT_EQ(store.current()->version(), v);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(failed.load(), 0);
  EXPECT_EQ(bad_version.load(), 0);
}

TEST_F(ServeTest, FailedReloadKeepsServingUnderConcurrentLoad) {
  // A reload that finds only garbage must leave in-flight and subsequent
  // requests on the previous snapshot, even while readers are active.
  const std::string dir = TempDirFor("serve_hotswap_fail");
  SaveSmall(dir, 1);
  SnapshotStore store(dir);
  ASSERT_TRUE(store.Reload().ok());
  RecommendService service(&store);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> failed{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto r = service.Recommend({0, 3, 0});
      if (!r.ok() || r.value().snapshot_version != 1) {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int i = 0; i < 20; ++i) {
    // Newer-looking snapshot that is pure garbage: reload validation
    // rejects it and falls back to v1, which it is already serving.
    { std::ofstream(SnapshotStore::SnapshotPath(dir, 2)) << "garbage"; }
    (void)store.Reload();
    ASSERT_NE(store.current(), nullptr);
    ASSERT_EQ(store.current()->version(), 1);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(failed.load(), 0);
}

}  // namespace
}  // namespace layergcn::serve
