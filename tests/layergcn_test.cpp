// Behavioral tests of the paper's model itself: the propagation math of
// Eqs. 6-9 against hand computation, the ego-layer dropping, the
// train-vs-inference adjacency switch, the ablation flags, and the Fig. 5
// introspection.

#include "core/layergcn.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "test_util.h"
#include "train/trainer.h"

namespace layergcn::core {
namespace {

using layergcn::testing::TinyDataset;

train::TrainConfig BaseConfig() {
  train::TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.batch_size = 4;
  cfg.max_epochs = 5;
  cfg.seed = 11;
  cfg.edge_drop_ratio = 0.0;
  cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  return cfg;
}

// Reference implementation of Eqs. 6-9 with plain tensor ops.
tensor::Matrix ReferencePropagate(const sparse::CsrMatrix& adj,
                                  const tensor::Matrix& x0, int layers,
                                  float eps) {
  tensor::Matrix x = x0;
  tensor::Matrix acc(x0.rows(), x0.cols());
  for (int l = 0; l < layers; ++l) {
    tensor::Matrix h = adj.Multiply(x);
    tensor::Matrix a = tensor::RowwiseCosine(h, x0, eps);
    x = tensor::ScaleRows(h, tensor::AddScalar(a, eps));
    tensor::AddInPlace(&acc, x);
  }
  return acc;  // sum readout, ego layer dropped
}

TEST(LayerGcnTest, PropagationMatchesReferenceImplementation) {
  const data::Dataset ds = TinyDataset();
  LayerGcnOptions opts;
  LayerGcn model(opts);
  train::TrainConfig cfg = BaseConfig();
  util::Rng rng(cfg.seed);
  model.Init(ds, cfg, &rng);
  model.BeginEpoch(1, &rng);
  model.PrepareEval();

  // Rebuild the expected result from the same initial embeddings. The model
  // was just initialized and never trained, so Params()[0] still holds X⁰.
  const tensor::Matrix& x0 = model.Params()[0]->value;
  const sparse::CsrMatrix adj = ds.train_graph.NormalizedAdjacency();
  const tensor::Matrix want =
      ReferencePropagate(adj, x0, cfg.num_layers, opts.epsilon);
  EXPECT_TRUE(model.final_embeddings().AllClose(want, 1e-5f));
}

TEST(LayerGcnTest, EgoLayerDroppedFromReadout) {
  // With zero layers of actual graph signal the distinction is invisible,
  // so compare include_ego_layer on/off: they must differ by exactly X⁰.
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg = BaseConfig();

  LayerGcnOptions without;
  LayerGcn m1(without);
  util::Rng rng1(cfg.seed);
  m1.Init(ds, cfg, &rng1);
  m1.BeginEpoch(1, &rng1);
  m1.PrepareEval();

  LayerGcnOptions with;
  with.include_ego_layer = true;
  LayerGcn m2(with);
  util::Rng rng2(cfg.seed);  // same seed => same X⁰
  m2.Init(ds, cfg, &rng2);
  m2.BeginEpoch(1, &rng2);
  m2.PrepareEval();

  const tensor::Matrix diff =
      tensor::Sub(m2.final_embeddings(), m1.final_embeddings());
  EXPECT_TRUE(diff.AllClose(m1.Params()[0]->value, 1e-5f));
}

TEST(LayerGcnTest, MeanReadoutHalvesTwoLayerSum) {
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg = BaseConfig();

  LayerGcn sum_model({.readout = Readout::kSum});
  util::Rng r1(cfg.seed);
  sum_model.Init(ds, cfg, &r1);
  sum_model.BeginEpoch(1, &r1);
  sum_model.PrepareEval();

  LayerGcn mean_model({.readout = Readout::kMean});
  util::Rng r2(cfg.seed);
  mean_model.Init(ds, cfg, &r2);
  mean_model.BeginEpoch(1, &r2);
  mean_model.PrepareEval();

  EXPECT_TRUE(tensor::Scale(sum_model.final_embeddings(), 0.5f)
                  .AllClose(mean_model.final_embeddings(), 1e-5f));
}

TEST(LayerGcnTest, RefinementNoneReducesToLightGcnPropagation) {
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg = BaseConfig();
  LayerGcn model({.refinement = Refinement::kNone});
  util::Rng rng(cfg.seed);
  model.Init(ds, cfg, &rng);
  model.BeginEpoch(1, &rng);
  model.PrepareEval();

  const tensor::Matrix& x0 = model.Params()[0]->value;
  const sparse::CsrMatrix adj = ds.train_graph.NormalizedAdjacency();
  tensor::Matrix x1 = adj.Multiply(x0);
  tensor::Matrix x2 = adj.Multiply(x1);
  tensor::Matrix want = tensor::Add(x1, x2);
  EXPECT_TRUE(model.final_embeddings().AllClose(want, 1e-5f));
}

TEST(LayerGcnTest, FixedAlphaRefinementMatchesGcnii) {
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg = BaseConfig();
  cfg.num_layers = 1;
  LayerGcn model({.refinement = Refinement::kFixedAlpha, .fixed_alpha = 0.3f});
  util::Rng rng(cfg.seed);
  model.Init(ds, cfg, &rng);
  model.BeginEpoch(1, &rng);
  model.PrepareEval();

  const tensor::Matrix& x0 = model.Params()[0]->value;
  const sparse::CsrMatrix adj = ds.train_graph.NormalizedAdjacency();
  tensor::Matrix want = tensor::Add(tensor::Scale(adj.Multiply(x0), 0.7f),
                                    tensor::Scale(x0, 0.3f));
  EXPECT_TRUE(model.final_embeddings().AllClose(want, 1e-5f));
}

TEST(LayerGcnTest, TrainingUsesPrunedGraphInferenceUsesFull) {
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg = BaseConfig();
  cfg.edge_drop_ratio = 0.3;
  cfg.edge_drop_kind = graph::EdgeDropKind::kDegreeDrop;

  // Inference on the full graph (paper behavior).
  LayerGcn full_model({.inference_on_full_graph = true});
  util::Rng r1(cfg.seed);
  full_model.Init(ds, cfg, &r1);
  full_model.BeginEpoch(1, &r1);
  full_model.PrepareEval();

  // Ablation: inference on the pruned graph differs.
  LayerGcn pruned_model({.inference_on_full_graph = false});
  util::Rng r2(cfg.seed);
  pruned_model.Init(ds, cfg, &r2);
  pruned_model.BeginEpoch(1, &r2);
  pruned_model.PrepareEval();

  EXPECT_FALSE(full_model.final_embeddings().AllClose(
      pruned_model.final_embeddings(), 1e-6f));

  // And the full-graph inference must equal the no-dropout propagation of
  // the same embeddings.
  const tensor::Matrix& x0 = full_model.Params()[0]->value;
  const sparse::CsrMatrix adj = ds.train_graph.NormalizedAdjacency();
  const tensor::Matrix want = ReferencePropagate(adj, x0, cfg.num_layers,
                                                 full_model.options().epsilon);
  EXPECT_TRUE(full_model.final_embeddings().AllClose(want, 1e-5f));
}

TEST(LayerGcnTest, SimilarityHistoryRecordedPerLayer) {
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg = BaseConfig();
  cfg.num_layers = 3;
  LayerGcn model({.record_layer_similarities = true});
  util::Rng rng(cfg.seed);
  model.Init(ds, cfg, &rng);
  model.BeginEpoch(1, &rng);
  model.PrepareEval();
  model.PrepareEval();
  const auto& hist = model.layer_similarity_history();
  ASSERT_EQ(hist.size(), 2u);
  ASSERT_EQ(hist[0].size(), 3u);
  for (double a : hist[0]) {
    EXPECT_GE(a, -1.0 - 1e-6);
    EXPECT_LE(a, 1.0 + 1e-6);
  }
}

TEST(LayerGcnTest, TrainsEndToEndWithDegreeDrop) {
  const data::Dataset ds = TinyDataset();
  train::TrainConfig cfg = BaseConfig();
  cfg.edge_drop_ratio = 0.2;
  cfg.edge_drop_kind = graph::EdgeDropKind::kDegreeDrop;
  cfg.max_epochs = 25;
  LayerGcn model;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_TRUE(std::isfinite(r.epoch_losses.back()));
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
  EXPECT_GT(r.test_metrics.recall.at(20), 0.0);
}

TEST(LayerGcnTest, EpsilonKeepsOrthogonalLayersAlive) {
  // If a hidden layer is orthogonal to the ego layer, the refinement
  // multiplies it by (0 + eps): the layer shrinks but must not become
  // exactly zero (the paper's motivation for ε in Eq. 6).
  tensor::Matrix h = tensor::Matrix::FromRows({{1, 0}});
  tensor::Matrix x0 = tensor::Matrix::FromRows({{0, 1}});
  const float eps = 1e-4f;
  tensor::Matrix a = tensor::RowwiseCosine(h, x0, eps);
  tensor::Matrix refined = tensor::ScaleRows(h, tensor::AddScalar(a, eps));
  EXPECT_NE(refined(0, 0), 0.f);
  EXPECT_NEAR(refined(0, 0), eps, 1e-6f);
}

}  // namespace
}  // namespace layergcn::core
