#include "train/trainer.h"

#include "gtest/gtest.h"
#include "models/bpr_mf.h"
#include "test_util.h"

namespace layergcn::train {
namespace {

using layergcn::testing::TinyDataset;

TrainConfig SmallConfig() {
  TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.batch_size = 4;
  cfg.max_epochs = 30;
  cfg.early_stop_patience = 50;
  cfg.l2_reg = 1e-4;
  cfg.seed = 7;
  return cfg;
}

TEST(TrainerTest, RunsAndReportsCurves) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  TrainOptions options;
  options.validation_k = 2;
  options.report_ks = {1, 2, 5};
  const TrainResult r = FitRecommender(&model, ds, SmallConfig(), options);
  EXPECT_EQ(r.epochs_run, 30);
  EXPECT_EQ(static_cast<int>(r.epoch_losses.size()), r.epochs_run);
  EXPECT_EQ(static_cast<int>(r.valid_curve.size()), r.epochs_run);
  EXPECT_GT(r.best_epoch, 0);
  EXPECT_LE(r.best_epoch, r.epochs_run);
  EXPECT_GE(r.best_valid_score, 0.0);
  // Report cutoffs present in the test metrics.
  EXPECT_EQ(r.test_metrics.recall.size(), 3u);
  EXPECT_EQ(r.test_metrics.ndcg.size(), 3u);
  EXPECT_GT(r.train_seconds, 0.0);
}

TEST(TrainerTest, LossDecreasesOnTinyData) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  TrainConfig cfg = SmallConfig();
  cfg.max_epochs = 50;
  const TrainResult r = FitRecommender(&model, ds, cfg);
  // BPR loss starts at ~log(2) with random embeddings and must fall
  // substantially when overfitting 10 training pairs.
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front() * 0.8);
}

TEST(TrainerTest, EarlyStoppingTriggers) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  TrainConfig cfg = SmallConfig();
  cfg.max_epochs = 500;
  cfg.early_stop_patience = 5;
  const TrainResult r = FitRecommender(&model, ds, cfg);
  EXPECT_LT(r.epochs_run, 500);
  EXPECT_GE(r.epochs_run, r.best_epoch + 5);
}

TEST(TrainerTest, CheckpointsRecordedAtRequestedEpochs) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  TrainConfig cfg = SmallConfig();
  cfg.max_epochs = 12;
  TrainOptions options;
  options.checkpoint_epochs = {3, 8};
  std::vector<CheckpointMetrics> checkpoints;
  FitRecommender(&model, ds, cfg, options, &checkpoints);
  ASSERT_EQ(checkpoints.size(), 2u);
  EXPECT_EQ(checkpoints[0].epoch, 3);
  EXPECT_EQ(checkpoints[1].epoch, 8);
  EXPECT_FALSE(checkpoints[0].metrics.recall.empty());
}

TEST(TrainerTest, BatchLossesRecordedWhenRequested) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  TrainConfig cfg = SmallConfig();
  cfg.max_epochs = 4;
  TrainOptions options;
  options.record_batch_losses = true;
  const TrainResult r = FitRecommender(&model, ds, cfg, options);
  const size_t batches_per_epoch = static_cast<size_t>(
      (ds.num_train() + cfg.batch_size - 1) / cfg.batch_size);
  EXPECT_EQ(r.batch_losses.size(), batches_per_epoch * 4);
}

TEST(TrainerTest, DeterministicForSeed) {
  const data::Dataset ds = TinyDataset();
  TrainConfig cfg = SmallConfig();
  cfg.max_epochs = 10;
  models::BprMf m1, m2;
  const TrainResult r1 = FitRecommender(&m1, ds, cfg);
  const TrainResult r2 = FitRecommender(&m2, ds, cfg);
  EXPECT_EQ(r1.epoch_losses, r2.epoch_losses);
  EXPECT_EQ(r1.test_metrics.recall, r2.test_metrics.recall);
  EXPECT_EQ(r1.best_epoch, r2.best_epoch);
}

TEST(TrainerTest, BestEpochParametersRestored) {
  // With eval_every=1 and a validation metric, the final test evaluation
  // must use the snapshot of the best epoch, not the last. We verify by
  // checking EvaluateRecommender on the returned model matches
  // result.test_metrics.
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  TrainConfig cfg = SmallConfig();
  cfg.max_epochs = 25;
  const TrainResult r = FitRecommender(&model, ds, cfg);
  const eval::RankingMetrics again =
      EvaluateRecommender(&model, ds, {10, 20, 50}, eval::EvalSplit::kTest);
  EXPECT_EQ(again.recall.at(20), r.test_metrics.recall.at(20));
}

TEST(TrainerTest, EvalEveryReducesValidationPoints) {
  const data::Dataset ds = TinyDataset();
  models::BprMf model;
  TrainConfig cfg = SmallConfig();
  cfg.max_epochs = 10;
  cfg.eval_every = 5;
  const TrainResult r = FitRecommender(&model, ds, cfg);
  EXPECT_EQ(r.valid_curve.size(), 2u);
  EXPECT_EQ(r.valid_curve[0].first, 5);
  EXPECT_EQ(r.valid_curve[1].first, 10);
}

}  // namespace
}  // namespace layergcn::train
