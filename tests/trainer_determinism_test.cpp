// End-to-end determinism of the parallel training hot path: training
// LayerGCN on a mid-sized synthetic dataset must produce bit-identical
// epoch losses and final embeddings at 1, 2, and 8 compute threads. This is
// the contract the deterministic parallel layer (util/parallel.h) promises:
// fixed block partitions, in-order reduction combines, and row-sharded
// scatter-adds make the thread count unobservable in the numerics.

#include <cstring>
#include <vector>

#include "core/layergcn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "train/trainer.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace layergcn::train {
namespace {

data::Dataset MidDataset() {
  data::SyntheticConfig cfg;
  cfg.name = "determinism";
  cfg.num_users = 300;
  cfg.num_items = 200;
  cfg.num_interactions = 3000;
  std::vector<data::Interaction> interactions =
      data::GenerateInteractions(cfg, /*seed=*/99);
  return data::ChronologicalSplitDataset("determinism", cfg.num_users,
                                         cfg.num_items,
                                         std::move(interactions), 0.8, 0.1);
}

struct RunOutput {
  std::vector<double> epoch_losses;
  tensor::Matrix embeddings;
};

RunOutput TrainAtWidth(const data::Dataset& ds, int width) {
  util::ThreadPool pool(width);
  util::parallel::ScopedComputePool scope(&pool);

  TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.num_layers = 2;
  cfg.batch_size = 256;
  cfg.max_epochs = 3;
  cfg.edge_drop_kind = graph::EdgeDropKind::kDegreeDrop;
  cfg.edge_drop_ratio = 0.2;
  // No validation pass inside the loop: the run is pure training, so the
  // final parameters are exactly the last epoch's.
  cfg.eval_every = 100;
  cfg.early_stop_patience = 1000;
  cfg.seed = 21;

  core::LayerGcn model;
  const TrainResult r = FitRecommender(&model, ds, cfg);
  RunOutput out;
  out.epoch_losses = r.epoch_losses;
  out.embeddings = model.Params()[0]->value;
  return out;
}

TEST(TrainerDeterminismTest, BitExactAcrossThreadCounts) {
  const data::Dataset ds = MidDataset();
  const RunOutput base = TrainAtWidth(ds, 1);
  ASSERT_EQ(base.epoch_losses.size(), 3u);
  ASSERT_GT(base.embeddings.size(), 0);

  for (int width : {2, 8}) {
    const RunOutput run = TrainAtWidth(ds, width);
    // Losses are doubles accumulated through every threaded kernel (SpMM,
    // GEMM, scatter-add, Adam); compare exactly, not within a tolerance.
    ASSERT_EQ(run.epoch_losses.size(), base.epoch_losses.size());
    for (size_t e = 0; e < base.epoch_losses.size(); ++e) {
      EXPECT_EQ(run.epoch_losses[e], base.epoch_losses[e])
          << "width=" << width << " epoch=" << e;
    }
    ASSERT_EQ(run.embeddings.size(), base.embeddings.size());
    EXPECT_EQ(0, std::memcmp(run.embeddings.data(), base.embeddings.data(),
                             sizeof(float) *
                                 static_cast<size_t>(base.embeddings.size())))
        << "width=" << width;
  }
}

TEST(TrainerDeterminismTest, RepeatedRunsAtSameWidthAreBitExact) {
  const data::Dataset ds = MidDataset();
  const RunOutput a = TrainAtWidth(ds, 8);
  const RunOutput b = TrainAtWidth(ds, 8);
  EXPECT_EQ(a.epoch_losses, b.epoch_losses);
  EXPECT_EQ(0, std::memcmp(a.embeddings.data(), b.embeddings.data(),
                           sizeof(float) *
                               static_cast<size_t>(a.embeddings.size())));
}

}  // namespace
}  // namespace layergcn::train
