// Equivalence and determinism tests for the fused score-and-rank kernel
// (eval/fused_rank.h) against the naive materialize-then-rank reference,
// plus the single-pass MultiKMetrics helper against the per-K formulas.
//
// Embeddings are drawn from a small integer lattice so every inner product
// is exactly representable in float regardless of accumulation order or
// FMA contraction — the comparisons below are bit-level, not tolerance
// based, and deliberately produce many tied scores.

#include "eval/fused_rank.h"

#include <algorithm>
#include <vector>

#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace layergcn::eval {
namespace {

// Matrix with integer entries in [-range, range]: exact float arithmetic
// and a high tie rate in the resulting scores.
tensor::Matrix LatticeMatrix(int64_t rows, int64_t cols, int range,
                             util::Rng* rng) {
  tensor::Matrix m(rows, cols);
  for (int64_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->NextInt(-range, range + 1));
  }
  return m;
}

// Sorted-ascending exclusion list per user with roughly `density` items.
std::vector<std::vector<int32_t>> RandomExclusions(int32_t num_users,
                                                   int32_t num_items,
                                                   double density,
                                                   util::Rng* rng) {
  std::vector<std::vector<int32_t>> out(static_cast<size_t>(num_users));
  for (auto& list : out) {
    for (int32_t i = 0; i < num_items; ++i) {
      if (rng->NextBernoulli(density)) list.push_back(i);
    }
  }
  return out;
}

std::vector<int32_t> AllUsers(int32_t num_users) {
  std::vector<int32_t> users(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) users[static_cast<size_t>(u)] = u;
  return users;
}

void ExpectSameRankings(const std::vector<std::vector<int32_t>>& got,
                        const std::vector<std::vector<int32_t>>& want,
                        const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t r = 0; r < got.size(); ++r) {
    EXPECT_EQ(got[r], want[r]) << label << ": user row " << r;
  }
}

struct GraphCase {
  int32_t num_users;
  int32_t num_items;
  int64_t dim;
  int k;
  double exclude_density;
};

TEST(FusedRankTest, MatchesReferenceOnRandomBipartiteGraphs) {
  const GraphCase cases[] = {
      {40, 200, 16, 10, 0.1},    // typical shape
      {7, 30, 3, 50, 0.3},       // K > num_items
      {64, 129, 8, 5, 0.0},      // no exclusions, tile-boundary item count
      {33, 500, 4, 20, 0.6},     // heavy exclusion, tiny dim → many ties
      {1, 17, 1, 17, 0.5},       // single user, K == num_items
  };
  uint64_t seed = 7;
  for (const GraphCase& c : cases) {
    util::Rng rng(seed++);
    const tensor::Matrix user_emb =
        LatticeMatrix(c.num_users, c.dim, 2, &rng);
    const tensor::Matrix item_emb =
        LatticeMatrix(c.num_items, c.dim, 2, &rng);
    const auto exclude =
        RandomExclusions(c.num_users, c.num_items, c.exclude_density, &rng);
    const auto users = AllUsers(c.num_users);

    FusedRankConfig reference;
    reference.enabled = false;
    const auto want =
        FusedScoreTopK(user_emb, users, item_emb, c.k, &exclude, reference);

    FusedRankConfig fused;  // defaults: enabled, 64 x 1024 tiles
    const auto got =
        FusedScoreTopK(user_emb, users, item_emb, c.k, &exclude, fused);
    ExpectSameRankings(got, want, "fused vs reference");
  }
}

TEST(FusedRankTest, TileSizeInvariance) {
  util::Rng rng(11);
  const tensor::Matrix user_emb = LatticeMatrix(50, 8, 2, &rng);
  const tensor::Matrix item_emb = LatticeMatrix(300, 8, 2, &rng);
  const auto exclude = RandomExclusions(50, 300, 0.2, &rng);
  const auto users = AllUsers(50);

  FusedRankConfig reference;
  reference.enabled = false;
  const auto want =
      FusedScoreTopK(user_emb, users, item_emb, 12, &exclude, reference);

  for (const auto& [ut, it] : std::vector<std::pair<int64_t, int64_t>>{
           {1, 16}, {7, 33}, {64, 1024}, {128, 100}, {50, 300}}) {
    FusedRankConfig cfg;
    cfg.user_tile = ut;
    cfg.item_tile = it;
    const auto got =
        FusedScoreTopK(user_emb, users, item_emb, 12, &exclude, cfg);
    ExpectSameRankings(got, want, "tile sweep");
  }
}

TEST(FusedRankTest, FullyExcludedUserGetsEmptyRanking) {
  util::Rng rng(13);
  const tensor::Matrix user_emb = LatticeMatrix(2, 4, 2, &rng);
  const tensor::Matrix item_emb = LatticeMatrix(10, 4, 2, &rng);
  std::vector<std::vector<int32_t>> exclude(2);
  for (int32_t i = 0; i < 10; ++i) exclude[0].push_back(i);  // user 0: all
  const auto ranked =
      FusedScoreTopK(user_emb, AllUsers(2), item_emb, 5, &exclude);
  EXPECT_TRUE(ranked[0].empty());
  EXPECT_EQ(ranked[1].size(), 5u);
}

TEST(FusedRankTest, DeterministicAcrossThreadCounts) {
  util::Rng rng(17);
  const tensor::Matrix user_emb = LatticeMatrix(120, 16, 2, &rng);
  const tensor::Matrix item_emb = LatticeMatrix(700, 16, 2, &rng);
  const auto exclude = RandomExclusions(120, 700, 0.15, &rng);
  const auto users = AllUsers(120);

  std::vector<std::vector<std::vector<int32_t>>> results;
  for (int threads : {1, 2, 8}) {
    FusedRankConfig cfg;
    cfg.num_threads = threads;
    cfg.user_tile = 16;  // several tiles per worker
    cfg.item_tile = 128;
    results.push_back(
        FusedScoreTopK(user_emb, users, item_emb, 20, &exclude, cfg));
  }
  ExpectSameRankings(results[1], results[0], "2 vs 1 threads");
  ExpectSameRankings(results[2], results[0], "8 vs 1 threads");
}

TEST(MultiKMetricsTest, MatchesPerKFormulas) {
  util::Rng rng(23);
  const std::vector<int> ks{1, 3, 5, 10, 50};
  const MultiKMetrics multi(ks);
  for (int trial = 0; trial < 50; ++trial) {
    // Random ranked list (may be shorter than max K) and random ground
    // truth, including the empty ground-truth case.
    const int len = rng.NextInt(0, 40);
    std::vector<int32_t> ranked;
    for (int i = 0; i < len; ++i) {
      const int32_t item = rng.NextInt(0, 60);
      if (std::find(ranked.begin(), ranked.end(), item) == ranked.end()) {
        ranked.push_back(item);
      }
    }
    std::vector<int32_t> gt;
    for (int32_t i = 0; i < 60; ++i) {
      if (rng.NextBernoulli(0.1)) gt.push_back(i);
    }
    std::vector<double> recall(ks.size()), ndcg(ks.size());
    multi.Compute(ranked, gt, recall.data(), ndcg.data());
    for (size_t ki = 0; ki < ks.size(); ++ki) {
      EXPECT_DOUBLE_EQ(recall[ki], RecallAtK(ranked, gt, ks[ki]))
          << "trial " << trial << " K=" << ks[ki];
      EXPECT_DOUBLE_EQ(ndcg[ki], NdcgAtK(ranked, gt, ks[ki]))
          << "trial " << trial << " K=" << ks[ki];
    }
  }
}

TEST(TopKIndicesSortedExcludeTest, MatchesFlagVariant) {
  util::Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t n = rng.NextInt(1, 101);
    std::vector<float> scores(static_cast<size_t>(n));
    for (auto& s : scores) {
      s = static_cast<float>(rng.NextInt(0, 7));  // ties galore
    }
    std::vector<bool> flags(static_cast<size_t>(n), false);
    std::vector<int32_t> sorted;
    for (int64_t i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.3)) {
        flags[static_cast<size_t>(i)] = true;
        sorted.push_back(static_cast<int32_t>(i));
      }
    }
    const int k = rng.NextInt(1, 21);
    EXPECT_EQ(TopKIndicesSortedExclude(scores.data(), n, k, sorted),
              TopKIndices(scores.data(), n, k, &flags))
        << "trial " << trial;
  }
}

// End-to-end: the evaluator's fused embedding path, its exact-reference
// fallback, and the legacy ScoreFn path must report identical metrics on a
// synthetic bipartite dataset (includes tied scores and users whose
// ground-truth lists have different sizes).
TEST(FusedRankEvaluatorTest, EvaluatorPathsAgree) {
  data::SyntheticConfig cfg;
  cfg.name = "fused-eval";
  cfg.num_users = 60;
  cfg.num_items = 40;
  cfg.num_interactions = 900;
  cfg.num_clusters = 4;
  const data::Dataset ds = data::ChronologicalSplitDataset(
      cfg.name, cfg.num_users, cfg.num_items,
      data::GenerateInteractions(cfg, 31));

  util::Rng rng(37);
  const tensor::Matrix user_emb = LatticeMatrix(ds.num_users, 8, 2, &rng);
  const tensor::Matrix item_emb = LatticeMatrix(ds.num_items, 8, 2, &rng);
  const ScoreFn score_fn = [&](const std::vector<int32_t>& users) {
    const tensor::Matrix block = tensor::GatherRows(user_emb, users);
    return tensor::MatMul(block, item_emb, false, true);
  };

  const std::vector<int> ks{5, 10, 20};
  const Evaluator fused_eval(&ds, ks, /*chunk_size=*/16);
  FusedRankConfig reference;
  reference.enabled = false;
  const Evaluator ref_eval(&ds, ks, /*chunk_size=*/16, reference);

  for (EvalSplit split : {EvalSplit::kValidation, EvalSplit::kTest}) {
    const RankingMetrics via_fused =
        fused_eval.Evaluate(user_emb, item_emb, split);
    const RankingMetrics via_reference =
        ref_eval.Evaluate(user_emb, item_emb, split);
    const RankingMetrics via_scorefn = fused_eval.Evaluate(score_fn, split);
    for (int k : ks) {
      EXPECT_DOUBLE_EQ(via_fused.recall.at(k), via_reference.recall.at(k));
      EXPECT_DOUBLE_EQ(via_fused.ndcg.at(k), via_reference.ndcg.at(k));
      EXPECT_DOUBLE_EQ(via_fused.recall.at(k), via_scorefn.recall.at(k));
      EXPECT_DOUBLE_EQ(via_fused.ndcg.at(k), via_scorefn.ndcg.at(k));
    }
    // Per-user values agree as well (feeds the paired t-tests).
    const auto pu_fused =
        fused_eval.EvaluatePerUser(user_emb, item_emb, split, 10);
    const auto pu_scorefn = fused_eval.EvaluatePerUser(score_fn, split, 10);
    ASSERT_EQ(pu_fused.recall.size(), pu_scorefn.recall.size());
    for (size_t i = 0; i < pu_fused.recall.size(); ++i) {
      EXPECT_DOUBLE_EQ(pu_fused.recall[i], pu_scorefn.recall[i]);
      EXPECT_DOUBLE_EQ(pu_fused.ndcg[i], pu_scorefn.ndcg[i]);
    }
  }
}

}  // namespace
}  // namespace layergcn::eval
