// Per-model behavioral tests: every Table II model must train, produce
// correctly shaped scores, beat an untrained copy of itself on a learnable
// synthetic dataset, and be deterministic for a fixed seed.

#include <cmath>
#include <memory>

#include "core/model_factory.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "models/imp_gcn.h"
#include "models/lightgcn.h"
#include "test_util.h"
#include "train/trainer.h"

namespace layergcn::models {
namespace {

using core::CreateModel;
using layergcn::testing::TinyDataset;

// A small but learnable clustered dataset.
data::Dataset LearnableDataset() {
  data::SyntheticConfig cfg;
  cfg.name = "learnable";
  cfg.num_users = 150;
  cfg.num_items = 60;
  cfg.num_interactions = 1600;
  cfg.num_clusters = 4;
  cfg.noise_fraction = 0.1;
  return data::ChronologicalSplitDataset(
      cfg.name, cfg.num_users, cfg.num_items,
      data::GenerateInteractions(cfg, 99));
}

train::TrainConfig FastConfig() {
  train::TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.num_layers = 2;
  cfg.batch_size = 256;
  cfg.max_epochs = 12;
  cfg.early_stop_patience = 100;
  cfg.seed = 5;
  cfg.vae_hidden_dim = 32;
  cfg.vae_latent_dim = 16;
  cfg.ultra_num_negatives = 3;
  cfg.edge_drop_ratio = 0.1;
  return cfg;
}

class AllModelsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModelsTest, TrainsAndScores) {
  const data::Dataset ds = LearnableDataset();
  auto model = CreateModel(GetParam());
  const train::TrainConfig cfg = core::AdaptConfig(GetParam(), FastConfig());
  util::Rng rng(cfg.seed);
  model->Init(ds, cfg, &rng);

  // Untrained baseline recall.
  model->BeginEpoch(1, &rng);
  const eval::RankingMetrics before = train::EvaluateRecommender(
      model.get(), ds, {20}, eval::EvalSplit::kTest);

  // A few epochs of training.
  double first_loss = 0.0, last_loss = 0.0;
  for (int epoch = 1; epoch <= cfg.max_epochs; ++epoch) {
    model->BeginEpoch(epoch, &rng);
    const double loss = model->TrainEpoch(&rng, nullptr);
    if (epoch == 1) first_loss = loss;
    last_loss = loss;
    EXPECT_TRUE(std::isfinite(loss)) << "epoch " << epoch;
  }
  EXPECT_LT(last_loss, first_loss) << "loss should decrease";

  // Scores: shape and finiteness.
  model->PrepareEval();
  const tensor::Matrix scores = model->ScoreUsers({0, 1, 2});
  EXPECT_EQ(scores.rows(), 3);
  EXPECT_EQ(scores.cols(), ds.num_items);
  for (int64_t i = 0; i < scores.size(); ++i) {
    EXPECT_TRUE(std::isfinite(scores.data()[i]));
  }

  const eval::RankingMetrics after = train::EvaluateRecommender(
      model.get(), ds, {20}, eval::EvalSplit::kTest);
  EXPECT_GT(after.recall.at(20), before.recall.at(20))
      << GetParam() << " did not improve over its untrained self";
}

TEST_P(AllModelsTest, ParamsNonEmptyAndNamed) {
  const data::Dataset ds = TinyDataset();
  auto model = CreateModel(GetParam());
  train::TrainConfig cfg = core::AdaptConfig(GetParam(), FastConfig());
  cfg.batch_size = 4;
  util::Rng rng(1);
  model->Init(ds, cfg, &rng);
  const auto params = model->Params();
  EXPECT_FALSE(params.empty());
  for (const auto* p : params) {
    EXPECT_GT(p->value.size(), 0);
    EXPECT_EQ(p->value.rows(), p->grad.rows());
    EXPECT_EQ(p->value.cols(), p->grad.cols());
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableTwo, AllModelsTest,
    ::testing::Values("BPR", "MultiVAE", "EHCF", "BUIR", "NGCF", "LR-GCCF",
                      "LightGCN", "UltraGCN", "IMP-GCN", "LayerGCN-noDrop",
                      "LayerGCN", "LightGCN-LearnW"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelFactoryTest, TableTwoNamesAllConstructible) {
  for (const std::string& name : core::TableTwoModelNames()) {
    EXPECT_NE(CreateModel(name), nullptr) << name;
  }
}

TEST(ModelFactoryDeathTest, UnknownModelAborts) {
  EXPECT_DEATH((void)CreateModel("SVD++"), "unknown model");
}

TEST(ModelFactoryTest, AdaptConfigDisablesDropoutForNoDropVariant) {
  train::TrainConfig base;
  base.edge_drop_ratio = 0.2;
  const train::TrainConfig adapted = core::AdaptConfig("LayerGCN-noDrop", base);
  EXPECT_EQ(adapted.edge_drop_ratio, 0.0);
  EXPECT_EQ(adapted.edge_drop_kind, graph::EdgeDropKind::kNone);
  const train::TrainConfig full = core::AdaptConfig("LayerGCN", base);
  EXPECT_EQ(full.edge_drop_ratio, 0.2);
}

TEST(LightGcnLearnableTest, WeightHistoryRecordedAndNormalized) {
  const data::Dataset ds = LearnableDataset();
  LightGcn model(LightGcnReadout::kLearnableWeights);
  train::TrainConfig cfg = FastConfig();
  cfg.max_epochs = 5;
  util::Rng rng(3);
  model.Init(ds, cfg, &rng);
  for (int epoch = 1; epoch <= 5; ++epoch) {
    model.BeginEpoch(epoch, &rng);
    model.TrainEpoch(&rng, nullptr);
  }
  const auto& hist = model.layer_weight_history();
  ASSERT_GE(hist.size(), 4u);  // recorded from epoch 2 on
  for (const auto& weights : hist) {
    ASSERT_EQ(weights.size(), static_cast<size_t>(cfg.num_layers) + 1);
    double sum = 0;
    for (double w : weights) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);  // softmax-normalized
  }
}

TEST(ImpGcnTest, GroupAssignmentsValid) {
  const data::Dataset ds = LearnableDataset();
  ImpGcn model;
  train::TrainConfig cfg = FastConfig();
  cfg.imp_num_groups = 3;
  util::Rng rng(4);
  model.Init(ds, cfg, &rng);
  model.BeginEpoch(1, &rng);
  const auto& groups = model.user_groups();
  ASSERT_EQ(groups.size(), static_cast<size_t>(ds.num_users));
  for (int g : groups) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, 3);
  }
  // With clustered data, the grouping should use more than one group.
  std::set<int> distinct(groups.begin(), groups.end());
  EXPECT_GT(distinct.size(), 1u);
}

TEST(ModelDeterminismTest, SameSeedSameScores) {
  const data::Dataset ds = LearnableDataset();
  for (const std::string name : {"LightGCN", "LayerGCN"}) {
    auto run = [&]() {
      auto model = CreateModel(name);
      train::TrainConfig cfg = core::AdaptConfig(name, FastConfig());
      cfg.max_epochs = 3;
      util::Rng rng(cfg.seed);
      model->Init(ds, cfg, &rng);
      for (int e = 1; e <= 3; ++e) {
        model->BeginEpoch(e, &rng);
        model->TrainEpoch(&rng, nullptr);
      }
      model->PrepareEval();
      return model->ScoreUsers({0, 5, 10});
    };
    const tensor::Matrix a = run();
    const tensor::Matrix b = run();
    EXPECT_TRUE(a.Equals(b)) << name << " is not deterministic";
  }
}

}  // namespace
}  // namespace layergcn::models
