#include "data/synthetic.h"

#include <algorithm>
#include <set>

#include "gtest/gtest.h"

namespace layergcn::data {
namespace {

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticConfig cfg;
  cfg.num_users = 200;
  cfg.num_items = 50;
  cfg.num_interactions = 1000;
  const auto a = GenerateInteractions(cfg, 7);
  const auto b = GenerateInteractions(cfg, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].item, b[i].item);
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
  }
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticConfig cfg;
  cfg.num_users = 200;
  cfg.num_items = 50;
  cfg.num_interactions = 500;
  const auto a = GenerateInteractions(cfg, 1);
  const auto b = GenerateInteractions(cfg, 2);
  int same = 0;
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    same += (a[i].user == b[i].user && a[i].item == b[i].item);
  }
  EXPECT_LT(same, static_cast<int>(a.size()) / 4);
}

TEST(SyntheticTest, NoDuplicatePairsAndIdsInRange) {
  SyntheticConfig cfg;
  cfg.num_users = 100;
  cfg.num_items = 40;
  cfg.num_interactions = 800;
  const auto xs = GenerateInteractions(cfg, 3);
  std::set<std::pair<int32_t, int32_t>> seen;
  for (const auto& x : xs) {
    EXPECT_GE(x.user, 0);
    EXPECT_LT(x.user, cfg.num_users);
    EXPECT_GE(x.item, 0);
    EXPECT_LT(x.item, cfg.num_items);
    EXPECT_GE(x.timestamp, 0);
    EXPECT_LT(x.timestamp, cfg.time_span);
    EXPECT_TRUE(seen.emplace(x.user, x.item).second) << "duplicate pair";
  }
}

TEST(SyntheticTest, ReachesRequestedCountWhenSparse) {
  SyntheticConfig cfg;
  cfg.num_users = 500;
  cfg.num_items = 200;
  cfg.num_interactions = 2000;  // 2% density: plenty of room
  EXPECT_EQ(GenerateInteractions(cfg, 5).size(), 2000u);
}

TEST(SyntheticTest, SaturatedGraphTerminates) {
  SyntheticConfig cfg;
  cfg.num_users = 5;
  cfg.num_items = 4;
  cfg.num_interactions = 100;  // impossible: only 20 cells exist
  const auto xs = GenerateInteractions(cfg, 5);
  EXPECT_LE(xs.size(), 20u);
  EXPECT_GE(xs.size(), 10u);  // should still fill most of the graph
}

TEST(SyntheticPresetTest, TableOneShapeRelations) {
  // The scaled presets must preserve Table I's qualitative relations.
  const SyntheticConfig mooc = MoocLikeConfig();
  const SyntheticConfig games = GamesLikeConfig();
  const SyntheticConfig food = FoodLikeConfig();
  const SyntheticConfig yelp = YelpLikeConfig();
  // MOOC: users outnumber items by >10x (start-up platform pattern).
  EXPECT_GT(mooc.num_users / mooc.num_items, 10);
  // Yelp has the largest item universe; Food the most users among Amazon.
  EXPECT_GT(yelp.num_items, food.num_items);
  EXPECT_GT(food.num_items, games.num_items);
  EXPECT_GT(yelp.num_interactions, food.num_interactions);
  // Yelp's item popularity is the most skewed (Fig. 4).
  EXPECT_GT(yelp.item_popularity_alpha, mooc.item_popularity_alpha);
}

TEST(SyntheticPresetTest, ScaleMultipliesSizes) {
  const SyntheticConfig base = GamesLikeConfig(1.0);
  const SyntheticConfig big = GamesLikeConfig(2.0);
  EXPECT_EQ(big.num_users, base.num_users * 2);
  EXPECT_EQ(big.num_items, base.num_items * 2);
  EXPECT_EQ(big.num_interactions, base.num_interactions * 2);
}

TEST(SyntheticPresetTest, BenchmarkConfigDispatch) {
  EXPECT_EQ(BenchmarkConfig("mooc").name, "mooc");
  EXPECT_EQ(BenchmarkConfig("yelp").name, "yelp");
  EXPECT_EQ(BenchmarkDatasetNames(),
            (std::vector<std::string>{"mooc", "games", "food", "yelp"}));
}

TEST(SyntheticPresetDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)BenchmarkConfig("netflix"), "unknown");
}

TEST(MakeBenchmarkDatasetTest, ProducesTrainableSplit) {
  Dataset ds = MakeBenchmarkDataset("games", 0.2, 11);
  EXPECT_GT(ds.num_train(), 0);
  EXPECT_GT(ds.num_test(), 0);
  EXPECT_FALSE(ds.test_users.empty());
  EXPECT_EQ(ds.name, "games");
  EXPECT_GT(ds.SparsityPercent(), 90.0);
  // Ground truth items must never collide with training items.
  for (int32_t u : ds.test_users) {
    for (int32_t i : ds.test_items[static_cast<size_t>(u)]) {
      EXPECT_FALSE(ds.train_graph.HasInteraction(u, i));
    }
  }
}

TEST(MakeBenchmarkDatasetTest, MoocItemsDenserThanYelp) {
  // Fig. 4's contrast: MOOC items accumulate far higher degrees.
  Dataset mooc = MakeBenchmarkDataset("mooc", 0.3, 13);
  Dataset yelp = MakeBenchmarkDataset("yelp", 0.3, 13);
  auto mean_item_degree = [](const Dataset& ds) {
    double sum = 0;
    for (int32_t d : ds.train_graph.item_degrees()) sum += d;
    return sum / static_cast<double>(ds.num_items);
  };
  EXPECT_GT(mean_item_degree(mooc), 5.0 * mean_item_degree(yelp));
}

}  // namespace
}  // namespace layergcn::data
