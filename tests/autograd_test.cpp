#include "autograd/tape.h"

#include "autograd/ops.h"
#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace layergcn::ag {
namespace {

namespace t = layergcn::tensor;

TEST(TapeTest, ParameterLeafExposesExternalValue) {
  Matrix value = Matrix::FromRows({{1, 2}});
  Matrix grad(1, 2);
  Tape tape;
  Var x = tape.Parameter(&value, &grad);
  EXPECT_TRUE(tape.value(x).Equals(value));
  EXPECT_TRUE(tape.requires_grad(x));
}

TEST(TapeTest, ConstantHasNoGrad) {
  Tape tape;
  Var c = tape.Constant(Matrix::FromRows({{3}}));
  EXPECT_FALSE(tape.requires_grad(c));
  EXPECT_EQ(tape.value(c).scalar(), 3.f);
}

TEST(TapeTest, BackwardAccumulatesIntoSink) {
  Matrix value = Matrix::FromRows({{1, 2}});
  Matrix grad(1, 2);
  Tape tape;
  Var x = tape.Parameter(&value, &grad);
  Var loss = Sum(Scale(x, 3.f));
  tape.Backward(loss);
  EXPECT_TRUE(grad.Equals(Matrix::FromRows({{3, 3}})));
}

TEST(TapeTest, SinkAccumulatesAcrossTapes) {
  Matrix value = Matrix::FromRows({{1, 2}});
  Matrix grad(1, 2);
  for (int step = 0; step < 2; ++step) {
    Tape tape;
    Var x = tape.Parameter(&value, &grad);
    tape.Backward(Sum(x));
  }
  EXPECT_TRUE(grad.Equals(Matrix::FromRows({{2, 2}})));
}

TEST(TapeTest, RequiresGradPropagatesThroughOps) {
  Matrix value(1, 2, 1.f);
  Matrix grad(1, 2);
  Tape tape;
  Var p = tape.Parameter(&value, &grad);
  Var c = tape.Constant(Matrix(1, 2, 2.f));
  EXPECT_TRUE(tape.requires_grad(Add(p, c)));
  EXPECT_FALSE(tape.requires_grad(Add(c, c)));
  EXPECT_TRUE(tape.requires_grad(Hadamard(c, p)));
}

TEST(TapeTest, UnreachedBranchGetsNoGradient) {
  Matrix v1(1, 1, 1.f), g1(1, 1);
  Matrix v2(1, 1, 1.f), g2(1, 1);
  Tape tape;
  Var a = tape.Parameter(&v1, &g1);
  Var b = tape.Parameter(&v2, &g2);
  Var unused = Scale(b, 5.f);  // recorded but not part of the loss
  (void)unused;
  tape.Backward(Sum(a));
  EXPECT_EQ(g1(0, 0), 1.f);
  EXPECT_EQ(g2(0, 0), 0.f);
  EXPECT_TRUE(tape.grad(unused).empty());
}

TEST(TapeTest, DiamondGraphAccumulatesBothPaths) {
  // loss = sum(x + x) => dL/dx = 2.
  Matrix value(1, 3, 1.f);
  Matrix grad(1, 3);
  Tape tape;
  Var x = tape.Parameter(&value, &grad);
  tape.Backward(Sum(Add(x, x)));
  EXPECT_TRUE(grad.Equals(Matrix(1, 3, 2.f)));
}

TEST(TapeDeathTest, BackwardTwiceAborts) {
  Matrix value(1, 1, 1.f), grad(1, 1);
  Tape tape;
  Var x = tape.Parameter(&value, &grad);
  Var loss = Sum(x);
  tape.Backward(loss);
  EXPECT_DEATH(tape.Backward(loss), "once per tape");
}

TEST(TapeDeathTest, NonScalarLossAborts) {
  Matrix value(2, 2, 1.f), grad(2, 2);
  Tape tape;
  Var x = tape.Parameter(&value, &grad);
  EXPECT_DEATH(tape.Backward(x), "scalar");
}

TEST(TapeDeathTest, CrossTapeVarAborts) {
  Matrix value(1, 1, 1.f), grad(1, 1);
  Tape t1, t2;
  Var x = t1.Parameter(&value, &grad);
  EXPECT_DEATH((void)t2.value(x), "different tape");
}

TEST(TapeDeathTest, ParameterShapeMismatchAborts) {
  Matrix value(2, 2), grad(2, 3);
  Tape tape;
  EXPECT_DEATH((void)tape.Parameter(&value, &grad), "shape mismatch");
}

TEST(OpsValueTest, ForwardValuesMatchTensorKernels) {
  Matrix a = Matrix::FromRows({{1, -2}, {0.5f, 3}});
  Matrix b = Matrix::FromRows({{2, 2}, {-1, 1}});
  Tape tape;
  Var va = tape.Constant(a);
  Var vb = tape.Constant(b);
  EXPECT_TRUE(tape.value(Add(va, vb)).Equals(t::Add(a, b)));
  EXPECT_TRUE(tape.value(Sub(va, vb)).Equals(t::Sub(a, b)));
  EXPECT_TRUE(tape.value(Hadamard(va, vb)).Equals(t::Hadamard(a, b)));
  EXPECT_TRUE(tape.value(Sigmoid(va)).Equals(t::Sigmoid(a)));
  EXPECT_TRUE(tape.value(Softplus(va)).Equals(t::Softplus(a)));
  EXPECT_TRUE(tape.value(Relu(va)).Equals(t::Relu(a)));
  EXPECT_TRUE(
      tape.value(MatMul(va, vb)).Equals(t::MatMul(a, b, false, false)));
  EXPECT_NEAR(tape.value(Sum(va)).scalar(), t::SumAll(a), 1e-6);
  EXPECT_NEAR(tape.value(Mean(va)).scalar(), t::MeanAll(a), 1e-6);
  EXPECT_NEAR(tape.value(SumSquares(va)).scalar(), t::SumSquares(a), 1e-5);
}

TEST(OpsValueTest, SpMMValueMatchesCsr) {
  sparse::CooMatrix coo;
  coo.rows = 2;
  coo.cols = 3;
  coo.entries = {{0, 1, 2.f}, {1, 2, -1.f}};
  sparse::CsrMatrix m = sparse::CsrMatrix::FromCoo(coo);
  Matrix x = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Tape tape;
  Var vx = tape.Constant(x);
  Var y = SpMM(&m, &m /*unused for value*/, vx);
  EXPECT_TRUE(tape.value(y).Equals(m.Multiply(x)));
}

TEST(OpsValueTest, AddNAndLinComb) {
  Matrix a(2, 2, 1.f), b(2, 2, 2.f), c(2, 2, 3.f);
  Tape tape;
  Var va = tape.Constant(a), vb = tape.Constant(b), vc = tape.Constant(c);
  EXPECT_TRUE(tape.value(AddN({va, vb, vc})).Equals(Matrix(2, 2, 6.f)));
  Var w = tape.Constant(Matrix::FromRows({{1}, {0.5f}, {2}}));
  EXPECT_TRUE(tape.value(LinComb({va, vb, vc}, w))
                  .Equals(Matrix(2, 2, 1.f + 1.f + 6.f)));
}

TEST(OpsValueTest, GatherAndConcat) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Tape tape;
  Var va = tape.Constant(a);
  EXPECT_TRUE(tape.value(GatherRows(va, {2, 0}))
                  .Equals(Matrix::FromRows({{5, 6}, {1, 2}})));
  Var cat = ConcatCols({va, va});
  EXPECT_EQ(tape.value(cat).cols(), 4);
  EXPECT_EQ(tape.value(cat)(1, 3), 4.f);
}

TEST(OpsValueTest, DropoutAppliesMask) {
  Matrix x(2, 2, 3.f);
  Matrix mask = Matrix::FromRows({{2, 0}, {0, 2}});
  Tape tape;
  Var vx = tape.Constant(x);
  Var y = Dropout(vx, mask);
  EXPECT_TRUE(tape.value(y).Equals(Matrix::FromRows({{6, 0}, {0, 6}})));
}

TEST(OpsValueTest, TransposeValue) {
  Matrix a = Matrix::FromRows({{1, 2, 3}});
  Tape tape;
  Var v = Transpose(tape.Constant(a));
  EXPECT_EQ(tape.value(v).rows(), 3);
  EXPECT_EQ(tape.value(v)(2, 0), 3.f);
}

}  // namespace
}  // namespace layergcn::ag
