// End-to-end fault tolerance of the training loop:
//
//  1. Kill-and-resume determinism — a run interrupted by a graceful stop
//     and resumed from its checkpoint must be bit-identical (final
//     embeddings, losses, validation curve, test metrics) to an
//     uninterrupted run, at 1 and 8 compute threads.
//  2. Divergence watchdog — an injected NaN loss rolls back to the last
//     good checkpoint and (with lr decay disabled) replays to the same
//     bit-identical result; without a checkpoint it fails with a
//     structured error instead of training on NaNs.

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/layergcn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "train/stop_token.h"
#include "train/trainer.h"
#include "util/fault_injection.h"
#include "util/parallel.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace layergcn::train {
namespace {

namespace fs = std::filesystem;

std::string TempDirFor(const std::string& name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

data::Dataset MidDataset() {
  data::SyntheticConfig cfg;
  cfg.name = "resume";
  cfg.num_users = 300;
  cfg.num_items = 200;
  cfg.num_interactions = 3000;
  std::vector<data::Interaction> interactions =
      data::GenerateInteractions(cfg, /*seed=*/99);
  return data::ChronologicalSplitDataset("resume", cfg.num_users,
                                         cfg.num_items,
                                         std::move(interactions), 0.8, 0.1);
}

TrainConfig ResumeConfig() {
  TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.num_layers = 2;
  cfg.batch_size = 256;
  cfg.max_epochs = 6;
  cfg.edge_drop_kind = graph::EdgeDropKind::kDegreeDrop;
  cfg.edge_drop_ratio = 0.2;
  cfg.eval_every = 2;
  cfg.early_stop_patience = 1000;
  cfg.seed = 21;
  return cfg;
}

// LayerGCN that requests a graceful stop after `stop_after` full epochs —
// a deterministic stand-in for SIGINT arriving mid-run.
class StoppingLayerGcn : public core::LayerGcn {
 public:
  explicit StoppingLayerGcn(int stop_after) : stop_after_(stop_after) {}

  double TrainEpoch(util::Rng* rng,
                    std::vector<double>* batch_losses) override {
    const double loss = core::LayerGcn::TrainEpoch(rng, batch_losses);
    if (++epochs_done_ == stop_after_) RequestGracefulStop();
    return loss;
  }

 private:
  int stop_after_;
  int epochs_done_ = 0;
};

struct RunOutput {
  TrainResult result;
  tensor::Matrix embeddings;
};

RunOutput Uninterrupted(const data::Dataset& ds) {
  core::LayerGcn model;
  RunOutput out;
  out.result = FitRecommender(&model, ds, ResumeConfig());
  out.embeddings = model.Params()[0]->value;
  return out;
}

// Interrupt after `stop_after` epochs with checkpointing on, then resume a
// fresh model from the directory and train to completion. The stop request
// lands after epoch `stop_after` finishes, so the trainer discards that
// epoch (it cannot know the boundary was clean) and resume replays it.
RunOutput KillAndResume(const data::Dataset& ds, const std::string& dir,
                        int stop_after) {
  TrainOptions options;
  options.checkpoint_dir = dir;
  {
    StoppingLayerGcn model(stop_after);
    const TrainResult r = FitRecommender(&model, ds, ResumeConfig(), options);
    EXPECT_TRUE(r.interrupted);
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  }
  ClearStopRequest();
  options.resume = true;
  core::LayerGcn fresh;
  RunOutput out;
  out.result = FitRecommender(&fresh, ds, ResumeConfig(), options);
  out.embeddings = fresh.Params()[0]->value;
  return out;
}

void ExpectBitIdentical(const RunOutput& a, const RunOutput& b,
                        const char* what) {
  ASSERT_EQ(a.result.epoch_losses.size(), b.result.epoch_losses.size())
      << what;
  for (size_t e = 0; e < a.result.epoch_losses.size(); ++e) {
    EXPECT_EQ(a.result.epoch_losses[e], b.result.epoch_losses[e])
        << what << " epoch " << e;
  }
  EXPECT_EQ(a.result.valid_curve, b.result.valid_curve) << what;
  EXPECT_EQ(a.result.best_epoch, b.result.best_epoch) << what;
  EXPECT_EQ(a.result.best_valid_score, b.result.best_valid_score) << what;
  EXPECT_EQ(a.result.test_metrics.ToString(), b.result.test_metrics.ToString())
      << what;
  ASSERT_EQ(a.embeddings.size(), b.embeddings.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.embeddings.data(), b.embeddings.data(),
                           sizeof(float) *
                               static_cast<size_t>(a.embeddings.size())))
      << what;
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::DisarmAll();
    ClearStopRequest();
  }
  void TearDown() override {
    util::fault::DisarmAll();
    ClearStopRequest();
  }
};

TEST_F(ResumeTest, KillAndResumeIsBitIdenticalAcrossThreadCounts) {
  const data::Dataset ds = MidDataset();

  RunOutput base_w1, resumed_w1;
  {
    util::ThreadPool pool(1);
    util::parallel::ScopedComputePool scope(&pool);
    base_w1 = Uninterrupted(ds);
    const std::string dir = TempDirFor("resume_w1");
    resumed_w1 = KillAndResume(ds, dir, /*stop_after=*/3);
    fs::remove_all(dir);
  }
  EXPECT_EQ(resumed_w1.result.start_epoch, 3);
  ExpectBitIdentical(base_w1, resumed_w1, "width 1");

  {
    util::ThreadPool pool(8);
    util::parallel::ScopedComputePool scope(&pool);
    const std::string dir = TempDirFor("resume_w8");
    const RunOutput resumed_w8 = KillAndResume(ds, dir, /*stop_after=*/3);
    fs::remove_all(dir);
    // The resumed run is also identical across widths: resume composes
    // with the deterministic parallel layer.
    ExpectBitIdentical(base_w1, resumed_w8, "width 8");
  }
}

TEST_F(ResumeTest, ResumeAfterCompletionDoesNotRetrain) {
  const data::Dataset ds = MidDataset();
  const std::string dir = TempDirFor("resume_done");
  TrainOptions options;
  options.checkpoint_dir = dir;
  core::LayerGcn model;
  const TrainResult first = FitRecommender(&model, ds, ResumeConfig(), options);
  ASSERT_TRUE(first.status.ok());

  options.resume = true;
  core::LayerGcn again;
  const TrainResult second =
      FitRecommender(&again, ds, ResumeConfig(), options);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.start_epoch, ResumeConfig().max_epochs + 1);
  EXPECT_EQ(second.epoch_losses, first.epoch_losses);
  EXPECT_EQ(second.test_metrics.ToString(), first.test_metrics.ToString());
  fs::remove_all(dir);
}

TEST_F(ResumeTest, ResumeWithoutDirectoryIsFailedPrecondition) {
  const data::Dataset ds = MidDataset();
  TrainOptions options;
  options.resume = true;  // no checkpoint_dir
  core::LayerGcn model;
  const TrainResult r = FitRecommender(&model, ds, ResumeConfig(), options);
  EXPECT_EQ(r.status.code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(ResumeTest, WatchdogRollsBackAndReplaysBitIdentically) {
  const data::Dataset ds = MidDataset();
  const RunOutput base = Uninterrupted(ds);

  const std::string dir = TempDirFor("watchdog_recover");
  TrainOptions options;
  options.checkpoint_dir = dir;
  options.watchdog_lr_decay = 1.0;  // isolate the rollback determinism
  util::fault::Arm("trainer.nan_loss", /*trigger_on_hit=*/3);

  core::LayerGcn model;
  RunOutput recovered;
  recovered.result = FitRecommender(&model, ds, ResumeConfig(), options);
  recovered.embeddings = model.Params()[0]->value;
  ASSERT_TRUE(recovered.result.status.ok())
      << recovered.result.status.ToString();
  EXPECT_EQ(recovered.result.watchdog_rollbacks, 1);
  // Epoch 3 diverged, rolled back to the epoch-2 checkpoint, and replayed
  // without the fault: the outcome must match the clean run exactly.
  ExpectBitIdentical(base, recovered, "watchdog recovery");
  fs::remove_all(dir);
}

TEST_F(ResumeTest, WatchdogWithoutCheckpointIsStructuredError) {
  const data::Dataset ds = MidDataset();
  util::fault::Arm("trainer.nan_loss", /*trigger_on_hit=*/1);
  core::LayerGcn model;
  const TrainResult r = FitRecommender(&model, ds, ResumeConfig());
  EXPECT_EQ(r.status.code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(r.watchdog_rollbacks, 0);
}

TEST_F(ResumeTest, WatchdogBudgetExhaustionIsResourceExhausted) {
  const data::Dataset ds = MidDataset();
  const std::string dir = TempDirFor("watchdog_budget");
  TrainOptions options;
  options.checkpoint_dir = dir;
  options.watchdog_max_rollbacks = 0;
  util::fault::Arm("trainer.nan_loss", /*trigger_on_hit=*/2);
  core::LayerGcn model;
  const TrainResult r = FitRecommender(&model, ds, ResumeConfig(), options);
  EXPECT_EQ(r.status.code(), util::StatusCode::kResourceExhausted);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace layergcn::train
