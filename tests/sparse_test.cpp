#include "sparse/csr_matrix.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace layergcn::sparse {
namespace {

CooMatrix SmallCoo() {
  // 3x4:
  //   [1 0 2 0]
  //   [0 0 0 3]
  //   [4 5 0 0]
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 4;
  coo.entries = {{0, 0, 1}, {0, 2, 2}, {1, 3, 3}, {2, 0, 4}, {2, 1, 5}};
  return coo;
}

TEST(CsrTest, FromCooBasicLayout) {
  CsrMatrix m = CsrMatrix::FromCoo(SmallCoo());
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 1);
  EXPECT_EQ(m.RowNnz(2), 2);
  EXPECT_EQ(m.At(0, 0), 1.f);
  EXPECT_EQ(m.At(0, 1), 0.f);
  EXPECT_EQ(m.At(0, 2), 2.f);
  EXPECT_EQ(m.At(1, 3), 3.f);
  EXPECT_EQ(m.At(2, 1), 5.f);
}

TEST(CsrTest, FromCooUnorderedEntries) {
  CooMatrix coo = SmallCoo();
  std::swap(coo.entries[0], coo.entries[4]);
  std::swap(coo.entries[1], coo.entries[3]);
  CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_EQ(m.At(2, 1), 5.f);
  EXPECT_EQ(m.At(0, 2), 2.f);
}

TEST(CsrTest, FromCooCoalescesDuplicates) {
  CooMatrix coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.entries = {{0, 1, 1.f}, {0, 1, 2.f}, {1, 0, 3.f}};
  CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.At(0, 1), 3.f);
}

TEST(CsrTest, EmptyMatrix) {
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 3;
  CsrMatrix m = CsrMatrix::FromCoo(coo);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.At(1, 1), 0.f);
  tensor::Matrix x(3, 2, 1.f);
  EXPECT_TRUE(m.Multiply(x).Equals(tensor::Matrix(3, 2)));
}

TEST(CsrTest, MultiplyMatchesDenseReference) {
  CsrMatrix m = CsrMatrix::FromCoo(SmallCoo());
  tensor::Matrix x = tensor::Matrix::FromRows(
      {{1, 2}, {3, 4}, {5, 6}, {7, 8}});
  tensor::Matrix y = m.Multiply(x);
  // Dense: row0 = 1*[1,2] + 2*[5,6] = [11,14]; row1 = 3*[7,8] = [21,24];
  // row2 = 4*[1,2] + 5*[3,4] = [19,28].
  EXPECT_TRUE(
      y.Equals(tensor::Matrix::FromRows({{11, 14}, {21, 24}, {19, 28}})));
}

TEST(CsrTest, MultiplyRandomAgainstDense) {
  util::Rng rng(99);
  CooMatrix coo;
  coo.rows = 40;
  coo.cols = 30;
  for (int k = 0; k < 200; ++k) {
    coo.entries.push_back({rng.NextInt(0, 40), rng.NextInt(0, 30),
                           static_cast<float>(rng.NextGaussian())});
  }
  CsrMatrix m = CsrMatrix::FromCoo(coo);
  tensor::Matrix x(30, 8);
  x.UniformInit(&rng, -1.f, 1.f);
  tensor::Matrix got = m.Multiply(x);
  // Dense reference.
  tensor::Matrix dense(40, 30);
  for (const auto& e : coo.entries) dense(e.row, e.col) += e.value;
  tensor::Matrix want = tensor::MatMul(dense, x);
  EXPECT_TRUE(got.AllClose(want, 1e-4f));
}

TEST(CsrTest, TransposeCorrect) {
  CsrMatrix m = CsrMatrix::FromCoo(SmallCoo());
  CsrMatrix t = m.Transpose();
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), 5);
  EXPECT_EQ(t.At(0, 0), 1.f);
  EXPECT_EQ(t.At(0, 2), 4.f);
  EXPECT_EQ(t.At(1, 2), 5.f);
  EXPECT_EQ(t.At(3, 1), 3.f);
  EXPECT_EQ(t.At(2, 0), 2.f);
}

TEST(CsrTest, RowSums) {
  CsrMatrix m = CsrMatrix::FromCoo(SmallCoo());
  const auto sums = m.RowSums();
  EXPECT_DOUBLE_EQ(sums[0], 3.0);
  EXPECT_DOUBLE_EQ(sums[1], 3.0);
  EXPECT_DOUBLE_EQ(sums[2], 9.0);
}

TEST(CsrTest, IsSymmetric) {
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.entries = {{0, 1, 2.f}, {1, 0, 2.f}, {2, 2, 1.f}};
  EXPECT_TRUE(CsrMatrix::FromCoo(coo).IsSymmetric());
  coo.entries.push_back({0, 2, 1.f});
  EXPECT_FALSE(CsrMatrix::FromCoo(coo).IsSymmetric());
}

TEST(SymmetricNormalizeTest, BipartiteAdjacencyValues) {
  // Users {0,1}, items {2,3}: edges 0-2, 0-3, 1-2. Degrees: d0=2, d1=1,
  // d2=2, d3=1. Normalized entry (0,2) = 1/sqrt(2*2) = 0.5, (0,3) =
  // 1/sqrt(2*1), (1,2) = 1/sqrt(1*2).
  CooMatrix coo;
  coo.rows = 4;
  coo.cols = 4;
  auto add_sym = [&](int32_t a, int32_t b) {
    coo.entries.push_back({a, b, 1.f});
    coo.entries.push_back({b, a, 1.f});
  };
  add_sym(0, 2);
  add_sym(0, 3);
  add_sym(1, 2);
  CsrMatrix norm = SymmetricNormalize(coo);
  EXPECT_NEAR(norm.At(0, 2), 0.5f, 1e-6f);
  EXPECT_NEAR(norm.At(0, 3), 1.f / std::sqrt(2.f), 1e-6f);
  EXPECT_NEAR(norm.At(1, 2), 1.f / std::sqrt(2.f), 1e-6f);
  EXPECT_TRUE(norm.IsSymmetric(1e-6f));
}

TEST(SymmetricNormalizeTest, SpectralRadiusAtMostOne) {
  // Power iteration on Â must not blow up: ‖Âx‖ <= ‖x‖ for the normalized
  // adjacency of any graph (its eigenvalues lie in [-1, 1]).
  util::Rng rng(7);
  CooMatrix coo;
  coo.rows = 30;
  coo.cols = 30;
  for (int k = 0; k < 60; ++k) {
    const int32_t a = rng.NextInt(0, 15);
    const int32_t b = rng.NextInt(15, 30);
    coo.entries.push_back({a, b, 1.f});
    coo.entries.push_back({b, a, 1.f});
  }
  CsrMatrix norm = SymmetricNormalize(coo);
  tensor::Matrix x(30, 1);
  x.UniformInit(&rng, -1.f, 1.f);
  double prev = std::sqrt(tensor::SumSquares(x));
  for (int it = 0; it < 10; ++it) {
    x = norm.Multiply(x);
    const double cur = std::sqrt(tensor::SumSquares(x));
    EXPECT_LE(cur, prev * (1.0 + 1e-5));
    prev = cur;
  }
}

TEST(SymmetricNormalizeTest, IsolatedNodeRowsAreZero) {
  CooMatrix coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.entries = {{0, 1, 1.f}, {1, 0, 1.f}};  // node 2 isolated
  CsrMatrix norm = SymmetricNormalize(coo);
  EXPECT_EQ(norm.RowNnz(2), 0);
  EXPECT_NEAR(norm.At(0, 1), 1.f, 1e-6f);
}

TEST(CsrDeathTest, OutOfRangeEntryAborts) {
  CooMatrix coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.entries = {{0, 2, 1.f}};
  EXPECT_DEATH((void)CsrMatrix::FromCoo(coo), "out of");
}

}  // namespace
}  // namespace layergcn::sparse
