#include "util/fault_injection.h"

#include "gtest/gtest.h"

namespace layergcn::util::fault {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { DisarmAll(); }
  void TearDown() override { DisarmAll(); }
};

TEST_F(FaultInjectionTest, DisarmedPointNeverFires) {
  EXPECT_FALSE(Fire("test.point"));
  EXPECT_FALSE(Fire("test.point"));
  EXPECT_EQ(HitCount("test.point"), 2);
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FaultInjectionTest, ArmedPointFiresOnceThenDisarms) {
  Arm("test.one_shot");
  EXPECT_TRUE(AnyArmed());
  EXPECT_TRUE(Fire("test.one_shot"));
  // One-shot: the recovery retry of the same code path must succeed.
  EXPECT_FALSE(Fire("test.one_shot"));
  EXPECT_FALSE(AnyArmed());
}

TEST_F(FaultInjectionTest, TriggerOnNthHit) {
  Arm("test.nth", /*trigger_on_hit=*/3);
  EXPECT_FALSE(Fire("test.nth"));
  EXPECT_FALSE(Fire("test.nth"));
  EXPECT_TRUE(Fire("test.nth"));
  EXPECT_FALSE(Fire("test.nth"));
}

TEST_F(FaultInjectionTest, RearmResetsHitCount) {
  Arm("test.rearm", 2);
  EXPECT_FALSE(Fire("test.rearm"));
  Arm("test.rearm", 2);  // reset: needs two more hits
  EXPECT_FALSE(Fire("test.rearm"));
  EXPECT_TRUE(Fire("test.rearm"));
}

TEST_F(FaultInjectionTest, DisarmSpecificPoint) {
  Arm("test.a");
  Arm("test.b");
  Disarm("test.a");
  EXPECT_FALSE(Fire("test.a"));
  EXPECT_TRUE(Fire("test.b"));
}

TEST_F(FaultInjectionTest, ArmedPointsLists) {
  Arm("test.x");
  Arm("test.y");
  const std::vector<std::string> armed = ArmedPoints();
  EXPECT_EQ(armed.size(), 2u);
}

TEST_F(FaultInjectionTest, IndependentPointsDoNotInterfere) {
  Arm("test.only_this");
  EXPECT_FALSE(Fire("test.other"));
  EXPECT_TRUE(Fire("test.only_this"));
}

}  // namespace
}  // namespace layergcn::util::fault
