// Determinism and state-machine tests for the live-SLO primitives:
// SlidingQuantile (log-bucket exactness, bit-identical merges at any
// thread count, window rotation/aging) and SloMonitor (multi-window
// burn-rate transitions on a synthetic clock, env overrides).

#include <cstdint>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/sliding_quantile.h"
#include "obs/slo.h"

namespace layergcn::obs {
namespace {

using SQ = SlidingQuantile;

TEST(SlidingQuantileTest, SmallValuesBucketExactly) {
  // Below kSubBuckets every value owns its own bucket: zero error.
  for (uint64_t v = 0; v < SQ::kSubBuckets; ++v) {
    EXPECT_EQ(SQ::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(SQ::BucketUpperEdge(static_cast<int>(v)), v);
  }
}

TEST(SlidingQuantileTest, BucketEdgesAreConsistent) {
  // Every bucket's upper edge maps back into that bucket, edge+1 lands in
  // the next one, and edges strictly increase.
  for (int b = 0; b < SQ::kNumBuckets; ++b) {
    const uint64_t edge = SQ::BucketUpperEdge(b);
    EXPECT_EQ(SQ::BucketIndex(edge), b) << "edge " << edge;
    if (b + 1 < SQ::kNumBuckets) {
      EXPECT_EQ(SQ::BucketIndex(edge + 1), b + 1);
      EXPECT_LT(edge, SQ::BucketUpperEdge(b + 1));
    }
  }
  EXPECT_EQ(SQ::BucketIndex(SQ::kMaxValue), SQ::kNumBuckets - 1);
  // Values past kMaxValue saturate into the final bucket.
  EXPECT_EQ(SQ::BucketIndex(SQ::kMaxValue + 12345), SQ::kNumBuckets - 1);
  EXPECT_EQ(SQ::BucketUpperEdge(SQ::kNumBuckets - 1), SQ::kMaxValue);
}

TEST(SlidingQuantileTest, BoundedRelativeError) {
  // The inclusive upper edge over-reports any value by at most
  // 1/kSubBuckets (one sub-bucket of its octave).
  for (uint64_t v : {17ull, 1000ull, 123456ull, 99999999ull, 1ull << 31}) {
    const uint64_t answer = SQ::BucketUpperEdge(SQ::BucketIndex(v));
    EXPECT_GE(answer, v);
    EXPECT_LE(static_cast<double>(answer),
              static_cast<double>(v) * (1.0 + 1.0 / SQ::kSubBuckets));
  }
}

// Feeds the same (value, timestamp) multiset through `num_threads` writers
// and returns the merged counts — identical for every thread count.
std::vector<uint64_t> MergedAfterConcurrentObserve(
    int num_threads, const std::vector<std::pair<uint64_t, uint64_t>>& obs,
    const SQ::Options& options, uint64_t query_us) {
  SQ quantile(options);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < obs.size();
           i += static_cast<size_t>(num_threads)) {
        quantile.Observe(obs[i].first, obs[i].second);
      }
    });
  }
  for (auto& th : threads) th.join();
  return quantile.MergedCounts(query_us);
}

TEST(SlidingQuantileTest, MergedCountsBitDeterministicAcrossThreadCounts) {
  SQ::Options options;
  options.window_us = 1'000'000;
  options.num_windows = 4;
  const uint64_t base = 50'000'000;
  // Deterministic pseudo-random (value, timestamp) workload spanning three
  // window widths, all inside the horizon at query time.
  std::vector<std::pair<uint64_t, uint64_t>> obs;
  uint64_t x = 123456789;
  for (int i = 0; i < 20'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    obs.emplace_back((x >> 33) % 5'000'000,
                     base + x % (options.window_us * 3));
  }
  const uint64_t query = base + options.window_us * 3;
  const auto c1 = MergedAfterConcurrentObserve(1, obs, options, query);
  const auto c2 = MergedAfterConcurrentObserve(2, obs, options, query);
  const auto c8 = MergedAfterConcurrentObserve(8, obs, options, query);
  uint64_t total = 0;
  for (uint64_t c : c1) total += c;
  EXPECT_EQ(total, obs.size());
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1, c8);
}

TEST(SlidingQuantileTest, QuantileAnswersBucketUpperEdge) {
  SQ quantile;  // default 12 x 5s windows
  const uint64_t now = 10'000'000;
  for (uint64_t v = 1; v <= 100; ++v) quantile.Observe(v * 1000, now);
  EXPECT_EQ(quantile.Count(now), 100u);
  // Rank ceil(0.5 * 100) = 50 -> value 50'000, answered at its bucket's
  // inclusive upper edge.
  const uint64_t p50 = quantile.Quantile(0.5, now);
  EXPECT_EQ(p50, SQ::BucketUpperEdge(SQ::BucketIndex(50'000)));
  const auto qs = quantile.Quantiles({0.5, 0.95, 1.0}, now);
  EXPECT_EQ(qs[0], p50);
  EXPECT_LE(qs[0], qs[1]);
  EXPECT_LE(qs[1], qs[2]);
  EXPECT_EQ(qs[2], SQ::BucketUpperEdge(SQ::BucketIndex(100'000)));
  // Empty horizon answers zero.
  EXPECT_EQ(quantile.Quantile(0.99, now + 2 * quantile.horizon_us()), 0u);
}

TEST(SlidingQuantileTest, WindowRotationAgesObservationsOut) {
  SQ::Options options;
  options.window_us = 1000;
  options.num_windows = 2;  // horizon 2ms
  SQ quantile(options);
  quantile.Observe(5, 10'000);
  EXPECT_EQ(quantile.Count(10'000), 1u);
  EXPECT_EQ(quantile.Sum(10'000), 5u);
  quantile.Observe(7, 11'000);
  EXPECT_EQ(quantile.Count(11'500), 2u);
  // One window later the first observation leaves the horizon.
  EXPECT_EQ(quantile.Count(12'500), 1u);
  EXPECT_EQ(quantile.Sum(12'500), 7u);
  // Epoch 12 reuses epoch 10's ring slot; rotation must zero it first.
  quantile.Observe(9, 12'500);
  EXPECT_EQ(quantile.Count(12'500), 2u);
  EXPECT_EQ(quantile.Sum(12'500), 16u);
  // A write whose timestamp predates the slot's current epoch is dropped,
  // never misfiled into the newer window.
  quantile.Observe(1000, 10'500);
  EXPECT_EQ(quantile.Count(12'500), 2u);
  EXPECT_EQ(quantile.Sum(12'500), 16u);
}

TEST(SlidingQuantileTest, DegenerateOptionsAreSanitized) {
  SQ::Options options;
  options.window_us = 0;
  options.num_windows = -3;
  SQ quantile(options);
  EXPECT_EQ(quantile.options().window_us, 1000u);
  EXPECT_EQ(quantile.options().num_windows, 1);
  quantile.Observe(4, 500);
  EXPECT_EQ(quantile.Count(500), 1u);
}

// Wide-budget objectives so burn rates come out as round numbers:
// 10% error budget on both objectives, 1s short / 10s long windows.
SloMonitor::Options TestSlo() {
  SloMonitor::Options options;
  options.availability_objective = 0.9;
  options.latency_target_us = 1000;
  options.latency_objective = 0.9;
  options.short_window_us = 1'000'000;
  options.long_window_us = 10'000'000;
  options.warn_burn = 1.0;
  options.breach_burn = 6.0;
  return options;
}

TEST(SloMonitorTest, HealthyTrafficStaysOk) {
  SloMonitor slo(TestSlo());
  const uint64_t now = 100'000'000;
  for (int i = 0; i < 100; ++i) slo.Record(now, false, true, 500);
  EXPECT_EQ(slo.Update(now), SloMonitor::State::kOk);
  const SloMonitor::Burn burn = slo.BurnRates(now);
  EXPECT_EQ(burn.total_long, 100u);
  EXPECT_EQ(burn.max_long, 0.0);
  EXPECT_EQ(slo.transitions(), 0);
}

TEST(SloMonitorTest, BurnLadderOkWarnBreachRecovery) {
  SloMonitor slo(TestSlo());
  uint64_t now = 200'000'000;
  // 20 server errors in 100: bad fraction 0.2 / budget 0.1 = burn 2.0 —
  // past warn_burn, below breach_burn.
  for (int i = 0; i < 80; ++i) slo.Record(now, false, true, 500);
  for (int i = 0; i < 20; ++i) slo.Record(now, true, false, 0);
  EXPECT_EQ(slo.Update(now), SloMonitor::State::kWarn);
  EXPECT_EQ(slo.transitions(), 1);
  // Pile on errors: fraction 220/300 -> burn 7.3 in BOTH windows = breach.
  for (int i = 0; i < 200; ++i) slo.Record(now, true, false, 0);
  EXPECT_EQ(slo.Update(now), SloMonitor::State::kBreach);
  EXPECT_EQ(slo.transitions(), 2);
  const SloMonitor::Burn burn = slo.BurnRates(now);
  EXPECT_GE(burn.max_short, 6.0);
  EXPECT_GE(burn.max_long, 6.0);
  // Quiet period longer than the long window: everything ages out.
  now += 20'000'000;
  EXPECT_EQ(slo.Update(now), SloMonitor::State::kOk);
  EXPECT_EQ(slo.transitions(), 3);
  EXPECT_EQ(slo.state(), SloMonitor::State::kOk);
  EXPECT_EQ(slo.BurnRates(now).total_long, 0u);
}

TEST(SloMonitorTest, ShortWindowSpikeAloneIsWarnNotBreach) {
  SloMonitor slo(TestSlo());
  const uint64_t base = 300'000'000;
  // Nine seconds of healthy traffic fill the long window.
  for (int s = 0; s < 9; ++s) {
    for (int i = 0; i < 100; ++i) {
      slo.Record(base + static_cast<uint64_t>(s) * 1'000'000, false, true,
                 100);
    }
  }
  // A sharp error spike confined to the current slot: the short window
  // burns past breach_burn but the long window absorbs it — the classic
  // "blip, do not page yet" condition.
  const uint64_t spike = base + 9'000'000;
  for (int i = 0; i < 400; ++i) slo.Record(spike, true, false, 0);
  const SloMonitor::Burn burn = slo.BurnRates(spike);
  EXPECT_GE(burn.max_short, 6.0);
  EXPECT_LT(burn.max_long, 6.0);
  EXPECT_EQ(slo.Update(spike), SloMonitor::State::kWarn);
}

TEST(SloMonitorTest, SlowAnsweredRequestsBurnTheLatencyObjective) {
  SloMonitor slo(TestSlo());
  const uint64_t now = 400'000'000;
  for (int i = 0; i < 20; ++i) slo.Record(now, false, true, 500);
  for (int i = 0; i < 80; ++i) slo.Record(now, false, true, 5000);
  const SloMonitor::Burn burn = slo.BurnRates(now);
  EXPECT_EQ(burn.availability_long, 0.0);
  EXPECT_NEAR(burn.latency_long, 8.0, 1e-9);  // 0.8 slow / 0.1 budget
  EXPECT_EQ(slo.Update(now), SloMonitor::State::kBreach);
}

TEST(SloMonitorTest, UnansweredRequestsDoNotFeedLatency) {
  SloMonitor slo(TestSlo());
  const uint64_t now = 500'000'000;
  // Shed requests are availability errors but carry no latency sample.
  for (int i = 0; i < 10; ++i) slo.Record(now, true, false, 999'999);
  const SloMonitor::Burn burn = slo.BurnRates(now);
  EXPECT_EQ(burn.latency_long, 0.0);
  EXPECT_GT(burn.availability_long, 0.0);
}

TEST(SloMonitorTest, FromEnvOverridesAndIgnoresMalformed) {
  ::setenv("LAYERGCN_SLO_AVAILABILITY", "0.95", 1);
  ::setenv("LAYERGCN_SLO_LATENCY_TARGET_US", "2500", 1);
  ::setenv("LAYERGCN_SLO_LATENCY_OBJECTIVE", "bogus", 1);  // ignored
  ::setenv("LAYERGCN_SLO_WARN_BURN", "2.0", 1);
  const SloMonitor::Options parsed = SloMonitor::FromEnv(TestSlo());
  ::unsetenv("LAYERGCN_SLO_AVAILABILITY");
  ::unsetenv("LAYERGCN_SLO_LATENCY_TARGET_US");
  ::unsetenv("LAYERGCN_SLO_LATENCY_OBJECTIVE");
  ::unsetenv("LAYERGCN_SLO_WARN_BURN");
  EXPECT_DOUBLE_EQ(parsed.availability_objective, 0.95);
  EXPECT_EQ(parsed.latency_target_us, 2500u);
  EXPECT_DOUBLE_EQ(parsed.latency_objective, 0.9);  // malformed kept as-is
  EXPECT_DOUBLE_EQ(parsed.warn_burn, 2.0);
}

TEST(SloMonitorTest, SanitizeClampsDegenerateOptions) {
  SloMonitor::Options options = TestSlo();
  options.availability_objective = 1.5;
  options.long_window_us = 10;  // shorter than the short window
  SloMonitor slo(options);
  EXPECT_DOUBLE_EQ(slo.options().availability_objective, 1.0);
  EXPECT_EQ(slo.options().long_window_us, slo.options().short_window_us);
}

}  // namespace
}  // namespace layergcn::obs
