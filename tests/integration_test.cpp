// End-to-end integration tests across modules: synthetic generation →
// chronological split → training → all-ranking evaluation, exercising the
// exact pipeline the paper's experiments run.

#include <cmath>
#include <memory>

#include "core/api.h"
#include "gtest/gtest.h"

namespace layergcn {
namespace {

data::Dataset SmallMooc(uint64_t seed = 31) {
  return data::MakeBenchmarkDataset("mooc", /*scale=*/0.25, seed);
}

train::TrainConfig FastConfig() {
  train::TrainConfig cfg;
  cfg.embedding_dim = 16;
  cfg.num_layers = 3;
  cfg.batch_size = 512;
  cfg.max_epochs = 15;
  cfg.early_stop_patience = 30;
  cfg.seed = 3;
  return cfg;
}

TEST(IntegrationTest, LayerGcnBeatsRandomScorer) {
  // games has a large enough item universe that a random scorer's
  // Recall@20 is low; the trained model must at least double it.
  const data::Dataset ds = data::MakeBenchmarkDataset("games", 0.3, 31);
  core::LayerGcn model;
  const train::TrainResult r =
      train::FitRecommender(&model, ds, FastConfig());

  // Random scorer baseline.
  eval::Evaluator evaluator(&ds, {20});
  util::Rng rng(17);
  eval::ScoreFn random_score = [&](const std::vector<int32_t>& users) {
    tensor::Matrix m(static_cast<int64_t>(users.size()), ds.num_items);
    m.UniformInit(&rng, 0.f, 1.f);
    return m;
  };
  const auto random_metrics =
      evaluator.Evaluate(random_score, eval::EvalSplit::kTest);
  EXPECT_GT(r.test_metrics.recall.at(20), 2.0 * random_metrics.recall.at(20));
}

TEST(IntegrationTest, FullPipelineDeterministicAcrossRuns) {
  const data::Dataset ds = SmallMooc();
  train::TrainConfig cfg = FastConfig();
  cfg.max_epochs = 6;
  core::LayerGcn m1, m2;
  const train::TrainResult r1 = train::FitRecommender(&m1, ds, cfg);
  const train::TrainResult r2 = train::FitRecommender(&m2, ds, cfg);
  EXPECT_EQ(r1.epoch_losses, r2.epoch_losses);
  EXPECT_EQ(r1.test_metrics.recall, r2.test_metrics.recall);
  EXPECT_EQ(r1.test_metrics.ndcg, r2.test_metrics.ndcg);
}

TEST(IntegrationTest, MetricsMonotoneInK) {
  // Recall@K is monotonically non-decreasing in K for every model.
  const data::Dataset ds = SmallMooc();
  core::LayerGcn model;
  train::TrainConfig cfg = FastConfig();
  cfg.max_epochs = 8;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_LE(r.test_metrics.recall.at(10), r.test_metrics.recall.at(20));
  EXPECT_LE(r.test_metrics.recall.at(20), r.test_metrics.recall.at(50));
}

TEST(IntegrationTest, DegreeDropDoesNotBreakEvaluationGraph) {
  // Even with aggressive pruning during training, inference runs on the
  // full graph and produces usable metrics.
  const data::Dataset ds = SmallMooc();
  train::TrainConfig cfg = FastConfig();
  cfg.max_epochs = 8;
  cfg.edge_drop_ratio = 0.2;  // paper's upper tuning value
  core::LayerGcn model;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_GT(r.test_metrics.recall.at(50), 0.0);
  for (double loss : r.epoch_losses) EXPECT_TRUE(std::isfinite(loss));
}

TEST(IntegrationTest, FactoryModelsProduceDistinctResults) {
  // Different architectures must not accidentally share state through the
  // factory: train two models and verify they differ.
  const data::Dataset ds = SmallMooc();
  train::TrainConfig cfg = FastConfig();
  cfg.max_epochs = 5;
  auto bpr = core::CreateModel("BPR");
  auto lgcn = core::CreateModel("LightGCN");
  const auto r1 = train::FitRecommender(bpr.get(), ds, cfg);
  const auto r2 = train::FitRecommender(lgcn.get(), ds, cfg);
  EXPECT_NE(r1.test_metrics.recall.at(20), r2.test_metrics.recall.at(20));
}

TEST(IntegrationTest, CsvRoundTripTrainsIdentically) {
  // Save the raw interactions, reload them, and verify the rebuilt dataset
  // matches the original split exactly.
  data::SyntheticConfig gen_cfg;
  gen_cfg.num_users = 120;
  gen_cfg.num_items = 50;
  gen_cfg.num_interactions = 900;
  const auto interactions = data::GenerateInteractions(gen_cfg, 5);
  const std::string path = ::testing::TempDir() + "/roundtrip.csv";
  data::SaveInteractions(path, interactions);
  data::LoaderOptions opts;
  int32_t nu = 0, ni = 0;
  auto loaded = data::LoadInteractions(path, opts, &nu, &ni);
  ASSERT_EQ(loaded.size(), interactions.size());

  data::Dataset a = data::ChronologicalSplitDataset(
      "a", gen_cfg.num_users, gen_cfg.num_items, interactions);
  // Loader compacts ids by first appearance; rebuild with its universe.
  data::Dataset b =
      data::ChronologicalSplitDataset("b", nu, ni, std::move(loaded));
  EXPECT_EQ(a.num_train(), b.num_train());
  EXPECT_EQ(a.num_test(), b.num_test());
  std::remove(path.c_str());
}

TEST(IntegrationTest, PublicApiHeaderCoversWorkflow) {
  // Compile-time check that core/api.h exposes the full workflow (this test
  // exercising only types from that one include).
  data::Dataset ds = data::MakeBenchmarkDataset("games", 0.15, 9);
  auto model = core::CreateModel("LayerGCN");
  train::TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.max_epochs = 3;
  cfg.batch_size = 1024;
  const train::TrainResult r = train::FitRecommender(model.get(), ds, cfg);
  EXPECT_EQ(r.epochs_run, 3);
  const eval::RankingMetrics m = train::EvaluateRecommender(
      model.get(), ds, {10}, eval::EvalSplit::kValidation);
  EXPECT_GE(m.recall.at(10), 0.0);
}

}  // namespace
}  // namespace layergcn
