// Property-based tests of the paper's theoretical claims (§IV) and of core
// invariants, swept over randomized instances with TEST_P.

#include <cmath>

#include "data/synthetic.h"
#include "graph/edge_dropout.h"
#include "gtest/gtest.h"
#include "sparse/csr_matrix.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace layergcn {
namespace {

// ---------------------------------------------------------------------------
// Proposition 2 (Eq. 20): when cos(x^l, x⁰) < 0, the refined layer
// x^l·cos(θ) is closer to x⁰ than x^l itself:
//   ‖x^l cos(θ) − x⁰‖ <= ‖x^l − x⁰‖.
// The paper's derivation bounds the divergence; we verify the inequality on
// random vector pairs with negative cosine.
// ---------------------------------------------------------------------------

class OverSmoothingBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverSmoothingBoundTest, RefinementReducesDivergenceWhenCosNegative) {
  util::Rng rng(GetParam());
  int tested = 0;
  while (tested < 50) {
    tensor::Matrix xl(1, 8), x0(1, 8);
    xl.GaussianInit(&rng, 1.f);
    x0.GaussianInit(&rng, 1.f);
    const float cos_theta = tensor::RowwiseCosine(xl, x0, 1e-12f)(0, 0);
    if (cos_theta >= 0.f) continue;
    ++tested;
    const double d_lgn =
        std::sqrt(tensor::SumSquares(tensor::Sub(xl, x0)));
    const double d_lr = std::sqrt(
        tensor::SumSquares(tensor::Sub(tensor::Scale(xl, cos_theta), x0)));
    EXPECT_LE(d_lr, d_lgn + 1e-5)
        << "cos=" << cos_theta << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverSmoothingBoundTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Refinement output bound: |cos + eps| <= 1 + eps, so the refined layer's
// row norms never exceed (1 + eps)·‖h‖ — refinement only attenuates.
// ---------------------------------------------------------------------------

class RefinementBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(RefinementBoundTest, RefinedNormNeverExceedsOriginal) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  const int rows = 20;
  const float eps = 1e-8f;
  tensor::Matrix h(rows, GetParam() + 2), x0(rows, GetParam() + 2);
  h.GaussianInit(&rng, 1.f);
  x0.GaussianInit(&rng, 1.f);
  tensor::Matrix a = tensor::RowwiseCosine(h, x0, eps);
  tensor::Matrix refined = tensor::ScaleRows(h, tensor::AddScalar(a, eps));
  tensor::Matrix norm_h = tensor::RowL2Norms(h);
  tensor::Matrix norm_r = tensor::RowL2Norms(refined);
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_LE(norm_r(r, 0), norm_h(r, 0) * (1.f + 2e-6f) + eps);
    EXPECT_GE(a(r, 0), -1.f - 1e-6f);
    EXPECT_LE(a(r, 0), 1.f + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RefinementBoundTest,
                         ::testing::Values(1, 2, 6, 14, 30));

// ---------------------------------------------------------------------------
// LightGCN over-smoothing (Eq. 15): on a connected bipartite graph, deep
// propagation drives the (normalized) representations of connected nodes
// together; the mean pairwise distance across edges shrinks relative to the
// initial embeddings.
// ---------------------------------------------------------------------------

class OverSmoothingDynamicsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverSmoothingDynamicsTest, DeepPropagationShrinksSamePartDistances) {
  // Note: on a *bipartite* graph Â has the eigenvalue −1 (parity
  // oscillation), so distances across user-item edges alternate rather than
  // vanish; the over-smoothing of Eq. 15 manifests within one part under
  // even powers of Â. We therefore measure user-user distances for users
  // sharing an item, after an even number of layers.
  util::Rng rng(GetParam());
  std::vector<std::pair<int32_t, int32_t>> edges;
  const int32_t nu = 12, ni = 8;
  for (int32_t u = 0; u < nu; ++u) {
    edges.emplace_back(u, u % ni);  // ring-ish backbone
    edges.emplace_back(u, rng.NextInt(0, ni));
  }
  graph::BipartiteGraph g(nu, ni, edges);
  sparse::CsrMatrix adj = g.NormalizedAdjacency();

  tensor::Matrix x(g.num_nodes(), 6);
  x.GaussianInit(&rng, 1.f);

  // User pairs sharing at least one item.
  std::vector<std::pair<int32_t, int32_t>> pairs;
  for (int32_t a = 0; a < nu; ++a) {
    for (int32_t b = a + 1; b < nu; ++b) {
      for (int32_t i : g.user_items()[static_cast<size_t>(a)]) {
        if (g.HasInteraction(b, i)) {
          pairs.emplace_back(a, b);
          break;
        }
      }
    }
  }
  ASSERT_FALSE(pairs.empty());

  auto mean_pair_distance = [&](const tensor::Matrix& emb) {
    // Distances between L2-normalized embeddings: scale-free, so the
    // shrinking reflects direction alignment (over-smoothing), not the
    // shrinking norms of Â^l X.
    tensor::Matrix n = tensor::NormalizeRowsL2(emb);
    double total = 0;
    for (const auto& [a, b] : pairs) {
      double d = 0;
      for (int64_t c = 0; c < n.cols(); ++c) {
        const double diff = n(a, c) - n(b, c);
        d += diff * diff;
      }
      total += std::sqrt(d);
    }
    return total / static_cast<double>(pairs.size());
  };

  const double before = mean_pair_distance(x);
  tensor::Matrix deep = x;
  for (int l = 0; l < 16; ++l) deep = adj.Multiply(deep);
  const double after = mean_pair_distance(deep);
  EXPECT_LT(after, before * 0.5)
      << "16-layer propagation should over-smooth same-part nodes";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverSmoothingDynamicsTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// DegreeDrop expectation property (Eq. 5): across many resamples, the
// empirical keep frequency of an edge decreases with the product of its
// endpoint degrees.
// ---------------------------------------------------------------------------

class DegreeDropBiasTest : public ::testing::TestWithParam<double> {};

TEST_P(DegreeDropBiasTest, KeepFrequencyAntiCorrelatesWithDegreeProduct) {
  util::Rng rng(7);
  data::SyntheticConfig cfg;
  cfg.num_users = 80;
  cfg.num_items = 40;
  cfg.num_interactions = 600;
  const auto interactions = data::GenerateInteractions(cfg, 17);
  std::vector<std::pair<int32_t, int32_t>> pairs;
  for (const auto& x : interactions) pairs.emplace_back(x.user, x.item);
  graph::BipartiteGraph g(cfg.num_users, cfg.num_items, pairs);
  graph::EdgeDropout drop(&g, graph::EdgeDropKind::kDegreeDrop, GetParam());

  std::vector<int> kept_count(static_cast<size_t>(g.num_edges()), 0);
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    for (int64_t e : drop.SampleKeptEdges(&rng, t)) {
      ++kept_count[static_cast<size_t>(e)];
    }
  }
  // Spearman-style check: mean keep rate of the lowest-degree-product
  // quartile must exceed that of the highest quartile.
  std::vector<std::pair<double, int>> by_weight;  // (degree product, kept)
  const auto w = g.DegreeSensitiveEdgeWeights();
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    by_weight.emplace_back(1.0 / (w[static_cast<size_t>(e)] *
                                  w[static_cast<size_t>(e)]),
                           kept_count[static_cast<size_t>(e)]);
  }
  std::sort(by_weight.begin(), by_weight.end());
  const size_t q = by_weight.size() / 4;
  double low = 0, high = 0;
  for (size_t i = 0; i < q; ++i) {
    low += by_weight[i].second;
    high += by_weight[by_weight.size() - 1 - i].second;
  }
  EXPECT_GT(low, high)
      << "low-degree edges must survive more often (ratio " << GetParam()
      << ")";
}

INSTANTIATE_TEST_SUITE_P(Ratios, DegreeDropBiasTest,
                         ::testing::Values(0.2, 0.4, 0.6));

// ---------------------------------------------------------------------------
// Normalized adjacency invariants over random graphs.
// ---------------------------------------------------------------------------

class AdjacencyInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdjacencyInvariantTest, SymmetricBoundedAndBlockStructured) {
  util::Rng rng(GetParam());
  std::vector<std::pair<int32_t, int32_t>> edges;
  const int32_t nu = 20, ni = 15;
  for (int k = 0; k < 60; ++k) {
    edges.emplace_back(rng.NextInt(0, nu), rng.NextInt(0, ni));
  }
  graph::BipartiteGraph g(nu, ni, edges);
  sparse::CsrMatrix adj = g.NormalizedAdjacency();
  EXPECT_TRUE(adj.IsSymmetric(1e-6f));
  for (float v : adj.values()) {
    EXPECT_GT(v, 0.f);
    EXPECT_LE(v, 1.f + 1e-6f);
  }
  // No user-user or item-item entries.
  for (int32_t u = 0; u < nu; ++u) {
    for (int64_t p = adj.row_ptr()[u]; p < adj.row_ptr()[u + 1]; ++p) {
      EXPECT_GE(adj.col_idx()[static_cast<size_t>(p)], nu);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjacencyInvariantTest,
                         ::testing::Values(100, 200, 300, 400, 500));

}  // namespace
}  // namespace layergcn
