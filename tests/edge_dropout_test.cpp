#include "graph/edge_dropout.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace layergcn::graph {
namespace {

// A star-heavy graph: user 0 and item 0 are hubs, the rest are leaves.
BipartiteGraph HubGraph() {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t i = 0; i < 10; ++i) edges.emplace_back(0, i);   // hub user
  for (int32_t u = 1; u < 10; ++u) edges.emplace_back(u, 0);   // hub item
  for (int32_t k = 1; k < 6; ++k) edges.emplace_back(k, k);    // leaf edges
  return BipartiteGraph(10, 10, edges);
}

TEST(EdgeDropoutTest, KindParsingRoundTrip) {
  for (EdgeDropKind k :
       {EdgeDropKind::kNone, EdgeDropKind::kDropEdge,
        EdgeDropKind::kDegreeDrop, EdgeDropKind::kMixed}) {
    EXPECT_EQ(EdgeDropKindFromString(ToString(k)), k);
  }
}

TEST(EdgeDropoutDeathTest, UnknownKindAborts) {
  EXPECT_DEATH((void)EdgeDropKindFromString("bogus"), "unknown");
}

TEST(EdgeDropoutDeathTest, RatioOutOfRangeAborts) {
  BipartiteGraph g = HubGraph();
  EXPECT_DEATH(EdgeDropout(&g, EdgeDropKind::kDropEdge, 1.0), "ratio");
  EXPECT_DEATH(EdgeDropout(&g, EdgeDropKind::kDropEdge, -0.1), "ratio");
}

TEST(EdgeDropoutTest, KeptCountMatchesRatio) {
  BipartiteGraph g = HubGraph();
  util::Rng rng(1);
  for (double ratio : {0.1, 0.3, 0.5, 0.7}) {
    EdgeDropout drop(&g, EdgeDropKind::kDropEdge, ratio);
    const auto kept = drop.SampleKeptEdges(&rng, 0);
    EXPECT_EQ(static_cast<int64_t>(kept.size()), drop.num_kept());
    EXPECT_EQ(drop.num_kept(),
              g.num_edges() - std::llround(ratio * g.num_edges()));
  }
}

TEST(EdgeDropoutTest, KeptEdgesDistinctAndValid) {
  BipartiteGraph g = HubGraph();
  util::Rng rng(2);
  for (EdgeDropKind kind : {EdgeDropKind::kDropEdge,
                            EdgeDropKind::kDegreeDrop}) {
    EdgeDropout drop(&g, kind, 0.4);
    const auto kept = drop.SampleKeptEdges(&rng, 0);
    for (size_t i = 1; i < kept.size(); ++i) EXPECT_LT(kept[i - 1], kept[i]);
    for (int64_t e : kept) {
      EXPECT_GE(e, 0);
      EXPECT_LT(e, g.num_edges());
    }
  }
}

TEST(EdgeDropoutTest, NoneKeepsEverythingAndReturnsFullAdjacency) {
  BipartiteGraph g = HubGraph();
  util::Rng rng(3);
  EdgeDropout drop(&g, EdgeDropKind::kNone, 0.5);  // ratio ignored for kNone
  EXPECT_EQ(drop.num_kept(), g.num_edges());
  sparse::CsrMatrix adj = drop.SampleAdjacency(&rng, 0);
  EXPECT_EQ(adj.nnz(), g.num_edges() * 2);
}

TEST(EdgeDropoutTest, DegreeDropPrunesHubHubEdgesPreferentially) {
  BipartiteGraph g = HubGraph();
  // Edge (0, 0) connects the two hubs (degrees 10 each) => keep weight
  // 1/10; leaf-leaf edges have much higher weight. Count survival over many
  // samples.
  const auto& edge_users = g.edge_users();
  const auto& edge_items = g.edge_items();
  int64_t hub_edge = -1, leaf_edge = -1;
  for (int64_t e = 0; e < g.num_edges(); ++e) {
    if (edge_users[static_cast<size_t>(e)] == 0 &&
        edge_items[static_cast<size_t>(e)] == 0) {
      hub_edge = e;
    }
    if (edge_users[static_cast<size_t>(e)] == 5 &&
        edge_items[static_cast<size_t>(e)] == 5) {
      leaf_edge = e;
    }
  }
  ASSERT_GE(hub_edge, 0);
  ASSERT_GE(leaf_edge, 0);

  util::Rng rng(4);
  EdgeDropout drop(&g, EdgeDropKind::kDegreeDrop, 0.5);
  int hub_kept = 0, leaf_kept = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const auto kept = drop.SampleKeptEdges(&rng, t);
    hub_kept += std::binary_search(kept.begin(), kept.end(), hub_edge);
    leaf_kept += std::binary_search(kept.begin(), kept.end(), leaf_edge);
  }
  EXPECT_LT(hub_kept, leaf_kept)
      << "hub-hub edge should be pruned more often than leaf-leaf";
  EXPECT_GT(leaf_kept, trials * 3 / 5);
}

TEST(EdgeDropoutTest, DropEdgeIsUniformAcrossEdges) {
  BipartiteGraph g = HubGraph();
  util::Rng rng(5);
  EdgeDropout drop(&g, EdgeDropKind::kDropEdge, 0.5);
  std::vector<int> kept_count(static_cast<size_t>(g.num_edges()), 0);
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    for (int64_t e : drop.SampleKeptEdges(&rng, t)) {
      ++kept_count[static_cast<size_t>(e)];
    }
  }
  // Every edge should be kept roughly half the time.
  for (int c : kept_count) {
    EXPECT_GT(c, trials / 4);
    EXPECT_LT(c, trials * 3 / 4);
  }
}

TEST(EdgeDropoutTest, MixedAlternatesByEpochParity) {
  BipartiteGraph g = HubGraph();
  EdgeDropout mixed(&g, EdgeDropKind::kMixed, 0.5);
  EdgeDropout degree(&g, EdgeDropKind::kDegreeDrop, 0.5);
  EdgeDropout uniform(&g, EdgeDropKind::kDropEdge, 0.5);
  // With identical RNG state, the mixed sampler must reproduce DegreeDrop
  // on even epochs and DropEdge on odd epochs.
  util::Rng r1(42), r2(42);
  EXPECT_EQ(mixed.SampleKeptEdges(&r1, 0), degree.SampleKeptEdges(&r2, 0));
  util::Rng r3(43), r4(43);
  EXPECT_EQ(mixed.SampleKeptEdges(&r3, 1), uniform.SampleKeptEdges(&r4, 1));
}

TEST(EdgeDropoutTest, SampledAdjacencyIsRenormalized) {
  BipartiteGraph g = HubGraph();
  util::Rng rng(6);
  EdgeDropout drop(&g, EdgeDropKind::kDegreeDrop, 0.3);
  sparse::CsrMatrix adj = drop.SampleAdjacency(&rng, 0);
  EXPECT_EQ(adj.nnz(), drop.num_kept() * 2);
  EXPECT_TRUE(adj.IsSymmetric(1e-6f));
  // All values must be in (0, 1]: 1/sqrt(d_i d_j) with degrees >= 1.
  for (float v : adj.values()) {
    EXPECT_GT(v, 0.f);
    EXPECT_LE(v, 1.f + 1e-6f);
  }
}

TEST(EdgeDropoutTest, ResamplingDiffersAcrossEpochs) {
  BipartiteGraph g = HubGraph();
  util::Rng rng(7);
  EdgeDropout drop(&g, EdgeDropKind::kDropEdge, 0.5);
  const auto a = drop.SampleKeptEdges(&rng, 0);
  const auto b = drop.SampleKeptEdges(&rng, 1);
  EXPECT_NE(a, b);  // overwhelmingly likely
}

TEST(EdgeDropoutTest, IntoVariantsMatchReturningVariants) {
  BipartiteGraph g = HubGraph();
  for (EdgeDropKind kind : {EdgeDropKind::kNone, EdgeDropKind::kDropEdge,
                            EdgeDropKind::kDegreeDrop, EdgeDropKind::kMixed}) {
    EdgeDropout a(&g, kind, kind == EdgeDropKind::kNone ? 0.0 : 0.4);
    EdgeDropout b(&g, kind, kind == EdgeDropKind::kNone ? 0.0 : 0.4);
    util::Rng ra(5), rb(5);
    std::vector<int64_t> kept;
    sparse::CsrMatrix adj;
    for (int epoch = 0; epoch < 3; ++epoch) {
      // Identical RNG streams must give identical samples...
      a.SampleKeptEdgesInto(&ra, epoch, &kept);
      EXPECT_EQ(kept, b.SampleKeptEdges(&rb, epoch)) << ToString(kind);
      // ...and identical (bit-exact) adjacencies, with `adj` reused across
      // epochs on the Into side.
      util::Rng ra2(100 + epoch), rb2(100 + epoch);
      a.SampleAdjacencyInto(&ra2, epoch, &adj);
      const sparse::CsrMatrix fresh = b.SampleAdjacency(&rb2, epoch);
      EXPECT_EQ(adj.row_ptr(), fresh.row_ptr()) << ToString(kind);
      EXPECT_EQ(adj.col_idx(), fresh.col_idx()) << ToString(kind);
      EXPECT_EQ(adj.values(), fresh.values()) << ToString(kind);
    }
  }
}

TEST(EdgeDropoutTest, NoDropSamplingDoesNotDrawFromTheRng) {
  BipartiteGraph g = HubGraph();
  EdgeDropout drop(&g, EdgeDropKind::kNone, 0.0);
  util::Rng rng(3), untouched(3);
  std::vector<int64_t> kept;
  drop.SampleKeptEdgesInto(&rng, 0, &kept);
  drop.SampleKeptEdgesInto(&rng, 1, &kept);
  EXPECT_EQ(static_cast<int64_t>(kept.size()), g.num_edges());
  // The cached-identity path must leave the stream untouched.
  EXPECT_EQ(rng.NextU64(), untouched.NextU64());
}

}  // namespace
}  // namespace layergcn::graph
