#include "tensor/matrix.h"

#include <cmath>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace layergcn::tensor {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.f);
  }
}

TEST(MatrixTest, FillConstructorAndFill) {
  Matrix m(2, 2, 3.5f);
  EXPECT_EQ(m(1, 1), 3.5f);
  m.Fill(-1.f);
  EXPECT_EQ(m(0, 0), -1.f);
  m.Zero();
  EXPECT_EQ(m(0, 1), 0.f);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 2), 3.f);
  EXPECT_EQ(m(1, 0), 4.f);
}

TEST(MatrixTest, ScalarWrapper) {
  Matrix s = Matrix::Scalar(2.5f);
  EXPECT_EQ(s.rows(), 1);
  EXPECT_EQ(s.cols(), 1);
  EXPECT_EQ(s.scalar(), 2.5f);
}

TEST(MatrixDeathTest, ScalarOfNonScalarAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH((void)m.scalar(), "not a scalar");
}

TEST(MatrixDeathTest, AtOutOfRangeAborts) {
  Matrix m(2, 2);
  EXPECT_DEATH((void)m.at(2, 0), "out of");
  EXPECT_DEATH((void)m.at(0, -1), "out of");
}

TEST(MatrixTest, RowPointerAccess) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_EQ(m.row(1)[0], 3.f);
  m.row(0)[1] = 9.f;
  EXPECT_EQ(m(0, 1), 9.f);
}

TEST(MatrixTest, XavierUniformBounds) {
  util::Rng rng(5);
  Matrix m(100, 50);
  m.XavierUniform(&rng);
  const float a = std::sqrt(6.f / (100 + 50));
  float mn = 1e9f, mx = -1e9f;
  for (int64_t i = 0; i < m.size(); ++i) {
    mn = std::min(mn, m.data()[i]);
    mx = std::max(mx, m.data()[i]);
  }
  EXPECT_GE(mn, -a);
  EXPECT_LE(mx, a);
  EXPECT_LT(mn, -a * 0.8f);  // actually spreads over the range
  EXPECT_GT(mx, a * 0.8f);
}

TEST(MatrixTest, GaussianInitStats) {
  util::Rng rng(6);
  Matrix m(200, 50);
  m.GaussianInit(&rng, 0.5f);
  double sum = 0, sq = 0;
  for (int64_t i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 0.25, 0.02);
}

TEST(MatrixTest, EqualsAndAllClose) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{1, 2}});
  Matrix c = Matrix::FromRows({{1, 2.0001f}});
  Matrix d(2, 1);
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
  EXPECT_TRUE(a.AllClose(c, 1e-3f));
  EXPECT_FALSE(a.AllClose(c, 1e-6f));
  EXPECT_FALSE(a.AllClose(d));  // shape mismatch
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(20, 20, 1.f);
  const std::string s = m.ToString(2, 2);
  EXPECT_NE(s.find("20x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

}  // namespace
}  // namespace layergcn::tensor
