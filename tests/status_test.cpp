#include "util/status.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace layergcn::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(OkStatus().ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = DataLossError("crc mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "crc mismatch");
  EXPECT_EQ(s.ToString(), "DATA_LOSS: crc mismatch");

  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);

  StatusOr<std::vector<int>> vec(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(vec.ok());
  EXPECT_EQ(vec.value().size(), 3u);
  const std::vector<int> moved = std::move(vec).value();
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOrTest, HoldsError) {
  const StatusOr<int> err(NotFoundError("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(err.status().message(), "missing");
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return InvalidArgumentError("not positive");
  return v;
}

Status UsesReturnIfError(int v) {
  const StatusOr<int> parsed = ParsePositive(v);
  LAYERGCN_RETURN_IF_ERROR(parsed.status());
  return OkStatus();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  const Status s = UsesReturnIfError(-1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusDeathTest, ValueOnErrorDies) {
  const StatusOr<int> err(DataLossError("torn file"));
  EXPECT_DEATH((void)err.value(), "torn file");
}

TEST(StatusDeathTest, CheckOkDiesOnError) {
  EXPECT_DEATH(LAYERGCN_CHECK_OK(UnavailableError("disk gone")),
               "disk gone");
}

}  // namespace
}  // namespace layergcn::util
