#include "tensor/ops.h"

#include <cmath>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace layergcn::tensor {
namespace {

Matrix Rand(int64_t r, int64_t c, uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  m.UniformInit(&rng, -2.f, 2.f);
  return m;
}

TEST(ElementwiseTest, AddSubScaleHadamard) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_TRUE(Add(a, b).Equals(Matrix::FromRows({{6, 8}, {10, 12}})));
  EXPECT_TRUE(Sub(b, a).Equals(Matrix::FromRows({{4, 4}, {4, 4}})));
  EXPECT_TRUE(Scale(a, 2.f).Equals(Matrix::FromRows({{2, 4}, {6, 8}})));
  EXPECT_TRUE(Hadamard(a, b).Equals(Matrix::FromRows({{5, 12}, {21, 32}})));
  EXPECT_TRUE(AddScalar(a, 1.f).Equals(Matrix::FromRows({{2, 3}, {4, 5}})));
  EXPECT_TRUE(Negate(a).Equals(Matrix::FromRows({{-1, -2}, {-3, -4}})));
}

TEST(ElementwiseTest, InPlaceVariants) {
  Matrix a = Matrix::FromRows({{1, 2}});
  AddInPlace(&a, Matrix::FromRows({{1, 1}}));
  EXPECT_TRUE(a.Equals(Matrix::FromRows({{2, 3}})));
  AxpyInPlace(&a, 2.f, Matrix::FromRows({{1, 0}}));
  EXPECT_TRUE(a.Equals(Matrix::FromRows({{4, 3}})));
  ScaleInPlace(&a, 0.5f);
  EXPECT_TRUE(a.Equals(Matrix::FromRows({{2, 1.5f}})));
  HadamardInPlace(&a, Matrix::FromRows({{2, 2}}));
  EXPECT_TRUE(a.Equals(Matrix::FromRows({{4, 3}})));
}

TEST(ElementwiseDeathTest, ShapeMismatchAborts) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_DEATH((void)Add(a, b), "shape mismatch");
}

TEST(MatMulTest, HandComputed) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_TRUE(MatMul(a, b).Equals(Matrix::FromRows({{19, 22}, {43, 50}})));
}

TEST(MatMulTest, AllTransposeLayoutsAgree) {
  // Reference: C = A·B with A 3x4, B 4x5.
  Matrix a = Rand(3, 4, 1);
  Matrix b = Rand(4, 5, 2);
  Matrix ref = MatMul(a, b, false, false);
  Matrix at = Transpose(a);
  Matrix bt = Transpose(b);
  EXPECT_TRUE(MatMul(at, b, true, false).AllClose(ref, 1e-5f));
  EXPECT_TRUE(MatMul(a, bt, false, true).AllClose(ref, 1e-5f));
  EXPECT_TRUE(MatMul(at, bt, true, true).AllClose(ref, 1e-5f));
}

TEST(MatMulDeathTest, InnerDimMismatchAborts) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_DEATH((void)MatMul(a, b), "inner dimension");
}

TEST(TransposeTest, Involution) {
  Matrix a = Rand(4, 7, 3);
  EXPECT_TRUE(Transpose(Transpose(a)).Equals(a));
  Matrix t = Transpose(a);
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t(2, 3), a(3, 2));
}

TEST(GatherScatterTest, GatherRows) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix g = GatherRows(a, {2, 0, 2});
  EXPECT_TRUE(g.Equals(Matrix::FromRows({{5, 6}, {1, 2}, {5, 6}})));
}

TEST(GatherScatterTest, ScatterAddAccumulatesDuplicates) {
  Matrix dst(3, 2);
  Matrix src = Matrix::FromRows({{1, 1}, {2, 2}, {4, 4}});
  ScatterAddRows(&dst, {1, 1, 0}, src);
  EXPECT_TRUE(dst.Equals(Matrix::FromRows({{4, 4}, {3, 3}, {0, 0}})));
}

TEST(GatherScatterDeathTest, OutOfRangeRowAborts) {
  Matrix a(2, 2);
  EXPECT_DEATH((void)GatherRows(a, {2}), "row 2");
}

TEST(RowOpsTest, ScaleRows) {
  Matrix x = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix s = Matrix::FromRows({{2}, {-1}});
  EXPECT_TRUE(ScaleRows(x, s).Equals(Matrix::FromRows({{2, 4}, {-3, -4}})));
}

TEST(RowOpsTest, RowDotsAndNorms) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix d = RowDots(a, b);
  EXPECT_FLOAT_EQ(d(0, 0), 17.f);
  EXPECT_FLOAT_EQ(d(1, 0), 53.f);
  Matrix n = RowL2Norms(a);
  EXPECT_NEAR(n(0, 0), std::sqrt(5.f), 1e-6f);
  EXPECT_NEAR(n(1, 0), 5.f, 1e-6f);
}

TEST(RowOpsTest, RowwiseCosineBasics) {
  Matrix a = Matrix::FromRows({{1, 0}, {1, 1}, {2, 0}});
  Matrix b = Matrix::FromRows({{0, 1}, {1, 1}, {-1, 0}});
  Matrix c = RowwiseCosine(a, b, 1e-8f);
  EXPECT_NEAR(c(0, 0), 0.f, 1e-6f);   // orthogonal
  EXPECT_NEAR(c(1, 0), 1.f, 1e-6f);   // identical direction
  EXPECT_NEAR(c(2, 0), -1.f, 1e-6f);  // opposite
}

TEST(RowOpsTest, RowwiseCosineEpsGuardOnZeroVector) {
  Matrix a = Matrix::FromRows({{0, 0}});
  Matrix b = Matrix::FromRows({{1, 1}});
  Matrix c = RowwiseCosine(a, b, 1e-8f);
  EXPECT_EQ(c(0, 0), 0.f);  // 0/eps rather than NaN
  EXPECT_FALSE(std::isnan(c(0, 0)));
}

TEST(RowOpsTest, NormalizeRowsL2) {
  Matrix x = Matrix::FromRows({{3, 4}, {0, 0}});
  Matrix n = NormalizeRowsL2(x);
  EXPECT_NEAR(n(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(n(0, 1), 0.8f, 1e-6f);
  EXPECT_EQ(n(1, 0), 0.f);  // zero row stays zero
}

TEST(RowOpsTest, RowColSumsAndAddRowVector) {
  Matrix x = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_TRUE(RowSums(x).Equals(Matrix::FromRows({{3}, {7}})));
  EXPECT_TRUE(ColSums(x).Equals(Matrix::FromRows({{4, 6}})));
  Matrix b = Matrix::FromRows({{10, 20}});
  EXPECT_TRUE(
      AddRowVector(x, b).Equals(Matrix::FromRows({{11, 22}, {13, 24}})));
}

TEST(ActivationTest, SigmoidValuesAndStability) {
  Matrix x = Matrix::FromRows({{0.f, 100.f, -100.f}});
  Matrix s = Sigmoid(x);
  EXPECT_NEAR(s(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(s(0, 1), 1.f, 1e-6f);
  EXPECT_NEAR(s(0, 2), 0.f, 1e-6f);
  EXPECT_FALSE(std::isnan(s(0, 1)));
  EXPECT_FALSE(std::isnan(s(0, 2)));
}

TEST(ActivationTest, SoftplusStableAndCorrect) {
  Matrix x = Matrix::FromRows({{0.f, 50.f, -50.f, 1.f}});
  Matrix s = Softplus(x);
  EXPECT_NEAR(s(0, 0), std::log(2.f), 1e-6f);
  EXPECT_NEAR(s(0, 1), 50.f, 1e-4f);          // ~x for large x
  EXPECT_NEAR(s(0, 2), 0.f, 1e-6f);           // ~0 for very negative
  EXPECT_NEAR(s(0, 3), std::log1p(std::exp(1.f)), 1e-6f);
}

TEST(ActivationTest, ReluAndLeaky) {
  Matrix x = Matrix::FromRows({{-2, 0, 3}});
  EXPECT_TRUE(Relu(x).Equals(Matrix::FromRows({{0, 0, 3}})));
  Matrix l = LeakyRelu(x, 0.1f);
  EXPECT_NEAR(l(0, 0), -0.2f, 1e-6f);
  EXPECT_EQ(l(0, 2), 3.f);
}

TEST(ActivationTest, ExpLogSqrtSquareTanh) {
  Matrix x = Matrix::FromRows({{1.f, 4.f}});
  EXPECT_NEAR(Exp(x)(0, 0), std::exp(1.f), 1e-5f);
  EXPECT_NEAR(Log(x)(0, 1), std::log(4.f), 1e-6f);
  EXPECT_NEAR(Sqrt(x)(0, 1), 2.f, 1e-6f);
  EXPECT_NEAR(Square(x)(0, 1), 16.f, 1e-6f);
  EXPECT_NEAR(Tanh(x)(0, 0), std::tanh(1.f), 1e-6f);
}

TEST(SoftmaxTest, RowsSumToOneAndStable) {
  Matrix x = Matrix::FromRows({{1000.f, 1000.f, 1000.f}, {0.f, 1.f, 2.f}});
  Matrix s = SoftmaxRows(x);
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_FALSE(std::isnan(s(r, c)));
      sum += s(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_NEAR(s(0, 0), 1.f / 3.f, 1e-5f);
  EXPECT_GT(s(1, 2), s(1, 1));
}

TEST(SoftmaxTest, LogSoftmaxMatchesLogOfSoftmax) {
  Matrix x = Rand(3, 5, 11);
  Matrix ls = LogSoftmaxRows(x);
  Matrix s = SoftmaxRows(x);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(ls(r, c), std::log(s(r, c)), 1e-5f);
    }
  }
}

TEST(ReductionTest, SumMeanMaxSumSquares) {
  Matrix x = Matrix::FromRows({{1, -2}, {3, 4}});
  EXPECT_DOUBLE_EQ(SumAll(x), 6.0);
  EXPECT_DOUBLE_EQ(MeanAll(x), 1.5);
  EXPECT_EQ(MaxAll(x), 4.f);
  EXPECT_DOUBLE_EQ(SumSquares(x), 1 + 4 + 9 + 16);
}

TEST(ConcatSliceTest, RoundTrip) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5}, {6}});
  Matrix c = ConcatCols({&a, &b});
  EXPECT_TRUE(c.Equals(Matrix::FromRows({{1, 2, 5}, {3, 4, 6}})));
  EXPECT_TRUE(SliceCols(c, 0, 2).Equals(a));
  EXPECT_TRUE(SliceCols(c, 2, 3).Equals(b));
  EXPECT_EQ(SliceCols(c, 1, 1).cols(), 0);
}

TEST(ConcatSliceDeathTest, RowMismatchAborts) {
  Matrix a(2, 1), b(3, 1);
  EXPECT_DEATH((void)ConcatCols({&a, &b}), "row mismatch");
}

// Property sweep: SpMM-sized GEMMs agree with a naive triple loop.
class MatMulPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulPropertyTest, MatchesNaiveReference) {
  const int n = GetParam();
  Matrix a = Rand(n, n + 1, static_cast<uint64_t>(n));
  Matrix b = Rand(n + 1, n + 2, static_cast<uint64_t>(n) + 100);
  Matrix got = MatMul(a, b);
  for (int64_t i = 0; i < got.rows(); ++i) {
    for (int64_t j = 0; j < got.cols(); ++j) {
      double acc = 0;
      for (int64_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      EXPECT_NEAR(got(i, j), acc, 1e-4) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

}  // namespace
}  // namespace layergcn::tensor
