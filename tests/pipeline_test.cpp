// Crash-survival suite for the continuous pipeline (DESIGN.md §16):
// WAL kill-at-any-point recovery (torn tails truncated, corrupt records
// skipped and counted, replay bit-identical to an unfaulted run), the
// torn-commit recovery drill, deterministic delta ingest, manifest CRC
// fallback, publisher retry/backoff/abort semantics, warm-start row
// carry, the quality gate, and the supervisor's bounded restart budget.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "pipeline/delta.h"
#include "pipeline/publisher.h"
#include "pipeline/supervisor.h"
#include "pipeline/wal.h"
#include "pipeline/warm_start.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

namespace layergcn::pipeline {
namespace {

namespace fs = std::filesystem;

std::string TempDirFor(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// On-disk segment geometry (mirrors wal.cpp): 16-byte header, then
// 24-byte frames (uint32 len | 16-byte payload | uint32 crc).
constexpr size_t kHeader = 16;
constexpr size_t kFrame = 24;

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Deterministic event stream: event i is a pure function of i, with id
// spaces that widen as the stream advances (warm starts must grow rows).
WalRecord EventAt(int64_t i) {
  const uint64_t h = Mix64(0xabcdull ^ static_cast<uint64_t>(i));
  WalRecord r;
  r.user = static_cast<int32_t>(h % static_cast<uint64_t>(12 + i / 8));
  r.item =
      static_cast<int32_t>((h >> 32) % static_cast<uint64_t>(16 + i / 5));
  r.timestamp = i;
  return r;
}

std::vector<WalRecord> Events(int64_t begin, int64_t end) {
  std::vector<WalRecord> out;
  for (int64_t i = begin; i < end; ++i) out.push_back(EventAt(i));
  return out;
}

train::TrainConfig SmallConfig() {
  train::TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.batch_size = 256;
  cfg.seed = 11;
  return cfg;
}

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::DisarmAll();
    obs::SetEnabled(true);
  }
  void TearDown() override { util::fault::DisarmAll(); }
};

// ---------------------------------------------------------------------------
// WAL

TEST_F(PipelineTest, WalAppendCommitReadBack) {
  const std::string dir = TempDirFor("wal_roundtrip");
  const std::vector<WalRecord> events = Events(0, 10);
  {
    auto wal = InteractionWal::Open({.dir = dir});
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (const WalRecord& e : events) {
      ASSERT_TRUE(wal.value()->Append(e).ok());
    }
    EXPECT_EQ(wal.value()->pending_records(), 10);
    EXPECT_EQ(wal.value()->committed_records(), 0);
    ASSERT_TRUE(wal.value()->Commit().ok());
    EXPECT_EQ(wal.value()->committed_records(), 10);
  }
  // A fresh reader and a fresh writer both see exactly the committed set.
  WalRecoveryStats stats;
  const auto read = InteractionWal::ReadAll(dir, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), events);
  EXPECT_EQ(stats.records, 10);
  EXPECT_EQ(stats.corrupt_records, 0);
  EXPECT_EQ(stats.torn_tails, 0);

  auto reopened = InteractionWal::Open({.dir = dir});
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->committed_records(), 10);
  EXPECT_EQ(reopened.value()->recovery().records, 10);
}

TEST_F(PipelineTest, WalRotatesSegmentsAndSurvivesReopen) {
  const std::string dir = TempDirFor("wal_rotate");
  WalOptions options{.dir = dir, .segment_bytes = 128};  // ~4 frames/segment
  const std::vector<WalRecord> events = Events(0, 40);
  {
    auto wal = InteractionWal::Open(options);
    ASSERT_TRUE(wal.ok());
    for (const WalRecord& e : events) {
      ASSERT_TRUE(wal.value()->Append(e).ok());
      ASSERT_TRUE(wal.value()->Commit().ok());
    }
  }
  EXPECT_GT(InteractionWal::ListSegments(dir).size(), 3u);
  const auto read = InteractionWal::ReadAll(dir);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), events);

  auto reopened = InteractionWal::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->committed_records(), 40);
}

TEST_F(PipelineTest, WalTornTailTruncatedAtAnyCutPoint) {
  // Simulate a crash after any number of bytes of the last frame reached
  // the disk: recovery must keep exactly the complete-frame prefix,
  // truncate the rest, and leave the segment writable.
  const std::vector<WalRecord> events = Events(0, 6);
  for (const size_t partial : {1u, 5u, 11u, 23u}) {
    const std::string dir = TempDirFor("wal_torn");
    {
      auto wal = InteractionWal::Open({.dir = dir});
      ASSERT_TRUE(wal.ok());
      for (const WalRecord& e : events) {
        ASSERT_TRUE(wal.value()->Append(e).ok());
      }
      ASSERT_TRUE(wal.value()->Commit().ok());
    }
    const std::string seg = InteractionWal::SegmentPath(dir, 0);
    // Keep 4 whole frames plus `partial` bytes of the 5th.
    fs::resize_file(seg, kHeader + 4 * kFrame + partial);

    auto wal = InteractionWal::Open({.dir = dir});
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_EQ(wal.value()->recovery().torn_tails, 1);
    EXPECT_EQ(wal.value()->committed_records(), 4);
    EXPECT_EQ(fs::file_size(seg), kHeader + 4 * kFrame);

    // The repaired segment extends cleanly.
    ASSERT_TRUE(wal.value()->Append(EventAt(100)).ok());
    ASSERT_TRUE(wal.value()->Commit().ok());
    const auto read = InteractionWal::ReadAll(dir);
    ASSERT_TRUE(read.ok());
    std::vector<WalRecord> expect(events.begin(), events.begin() + 4);
    expect.push_back(EventAt(100));
    EXPECT_EQ(read.value(), expect);
  }
}

TEST_F(PipelineTest, WalCorruptRecordSkippedAndCounted) {
  const std::string dir = TempDirFor("wal_corrupt");
  const std::vector<WalRecord> events = Events(0, 6);
  {
    auto wal = InteractionWal::Open({.dir = dir});
    ASSERT_TRUE(wal.ok());
    for (const WalRecord& e : events) {
      ASSERT_TRUE(wal.value()->Append(e).ok());
    }
    ASSERT_TRUE(wal.value()->Commit().ok());
  }
  // Flip one payload byte of the third frame on disk: the frame is still
  // complete, so recovery skips it and keeps everything after it.
  const std::string seg = InteractionWal::SegmentPath(dir, 0);
  {
    std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff off = kHeader + 2 * kFrame + 4 + 2;
    f.seekg(off);
    const char b = static_cast<char>(f.get());
    f.seekp(off);
    f.put(static_cast<char>(b ^ 0x40));
  }
  WalRecoveryStats stats;
  const auto read = InteractionWal::ReadAll(dir, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.corrupt_records, 1);
  EXPECT_EQ(stats.torn_tails, 0);
  std::vector<WalRecord> expect = events;
  expect.erase(expect.begin() + 2);
  EXPECT_EQ(read.value(), expect);
}

TEST_F(PipelineTest, WalBitFlipFaultPointCountsCorruptRecord) {
  const std::string dir = TempDirFor("wal_bitflip");
  {
    auto wal = InteractionWal::Open({.dir = dir});
    ASSERT_TRUE(wal.ok());
    for (const WalRecord& e : Events(0, 5)) {
      ASSERT_TRUE(wal.value()->Append(e).ok());
    }
    ASSERT_TRUE(wal.value()->Commit().ok());
  }
  util::fault::Arm("wal.bit_flip");
  WalRecoveryStats stats;
  const auto read = InteractionWal::ReadAll(dir, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.corrupt_records, 1);
  EXPECT_EQ(static_cast<int64_t>(read.value().size()), 4);

  // One-shot: the next read sees the intact file again.
  const auto clean = InteractionWal::ReadAll(dir, &stats);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(stats.corrupt_records, 0);
  EXPECT_EQ(static_cast<int64_t>(clean.value().size()), 5);
}

TEST_F(PipelineTest, WalShortReadFaultPointTruncatesImage) {
  const std::string dir = TempDirFor("wal_shortread");
  {
    auto wal = InteractionWal::Open({.dir = dir});
    ASSERT_TRUE(wal.ok());
    for (const WalRecord& e : Events(0, 8)) {
      ASSERT_TRUE(wal.value()->Append(e).ok());
    }
    ASSERT_TRUE(wal.value()->Commit().ok());
  }
  util::fault::Arm("wal.short_read");
  WalRecoveryStats stats;
  const auto read = InteractionWal::ReadAll(dir, &stats);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(stats.torn_tails, 1);
  EXPECT_LT(static_cast<int64_t>(read.value().size()), 8);
}

TEST_F(PipelineTest, WalGcRemovesOnlyCoveredSealedSegments) {
  const std::string dir = TempDirFor("wal_gc");
  WalOptions options{.dir = dir, .segment_bytes = 128};  // ~5 frames/segment
  auto wal = InteractionWal::Open(options);
  ASSERT_TRUE(wal.ok());
  for (const WalRecord& e : Events(0, 40)) {
    ASSERT_TRUE(wal.value()->Append(e).ok());
    ASSERT_TRUE(wal.value()->Commit().ok());
  }
  const size_t segments_before = InteractionWal::ListSegments(dir).size();
  ASSERT_GT(segments_before, 3u);

  // Covering seq 10 may only remove segments whose records all precede
  // it; every record >= 10 must survive the GC.
  const int64_t removed = wal.value()->GcCoveredSegments(10);
  EXPECT_GE(removed, 1);
  EXPECT_EQ(InteractionWal::ListSegments(dir).size(),
            segments_before - static_cast<size_t>(removed));
  auto read = InteractionWal::ReadAll(dir);
  ASSERT_TRUE(read.ok());
  ASSERT_GE(read.value().size(), 30u);
  const std::vector<WalRecord> tail(read.value().end() - 30,
                                    read.value().end());
  EXPECT_EQ(tail, Events(10, 40));

  // Covering everything still never deletes the active segment, and the
  // writer keeps appending to it across a reopen.
  wal.value()->GcCoveredSegments(40);
  ASSERT_GE(InteractionWal::ListSegments(dir).size(), 1u);
  auto reopened = InteractionWal::Open(options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened.value()->Append(EventAt(40)).ok());
  ASSERT_TRUE(reopened.value()->Commit().ok());
  read = InteractionWal::ReadAll(dir);
  ASSERT_TRUE(read.ok());
  ASSERT_FALSE(read.value().empty());
  EXPECT_EQ(read.value().back(), EventAt(40));
}

TEST_F(PipelineTest, WalEnospcFaultFailsCommitCleanlyAndPoisons) {
  const std::string dir = TempDirFor("wal_enospc");
  auto wal = InteractionWal::Open({.dir = dir});
  ASSERT_TRUE(wal.ok());
  for (const WalRecord& e : Events(0, 5)) {
    ASSERT_TRUE(wal.value()->Append(e).ok());
  }
  ASSERT_TRUE(wal.value()->Commit().ok());

  util::fault::Arm("wal.enospc");
  ASSERT_TRUE(wal.value()->Append(EventAt(5)).ok());
  const util::Status st = wal.value()->Commit();
  EXPECT_EQ(st.code(), util::StatusCode::kResourceExhausted);
  // Unlike a torn write nothing partial landed, and the handle is
  // poisoned like any I/O failure.
  EXPECT_EQ(wal.value()->Commit().code(),
            util::StatusCode::kFailedPrecondition);
  const auto read = InteractionWal::ReadAll(dir);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), Events(0, 5));
}

TEST_F(PipelineTest, TornCommitRecoveryDrillIsLossless) {
  // The supervisor's drill, exercised at every batch position: a commit
  // tears mid-frame, the writer is poisoned, a re-Open truncates the torn
  // tail, and exactly the lost suffix is re-appended. The committed
  // sequence must be bit-identical to an unfaulted run's.
  const int kBatches = 4, kPerBatch = 5;
  const std::string ref_dir = TempDirFor("wal_drill_ref");
  {
    auto wal = InteractionWal::Open({.dir = ref_dir});
    ASSERT_TRUE(wal.ok());
    for (int b = 0; b < kBatches; ++b) {
      for (const WalRecord& e : Events(b * kPerBatch, (b + 1) * kPerBatch)) {
        ASSERT_TRUE(wal.value()->Append(e).ok());
      }
      ASSERT_TRUE(wal.value()->Commit().ok());
    }
  }
  const auto reference = InteractionWal::ReadAll(ref_dir);
  ASSERT_TRUE(reference.ok());

  for (int torn_batch = 0; torn_batch < kBatches; ++torn_batch) {
    const std::string dir = TempDirFor("wal_drill");
    auto wal = InteractionWal::Open({.dir = dir});
    ASSERT_TRUE(wal.ok());
    for (int b = 0; b < kBatches; ++b) {
      const std::vector<WalRecord> batch =
          Events(b * kPerBatch, (b + 1) * kPerBatch);
      if (b == torn_batch) util::fault::Arm("wal.torn_write");
      const int64_t before = wal.value()->committed_records();
      for (const WalRecord& e : batch) {
        ASSERT_TRUE(wal.value()->Append(e).ok());
      }
      util::Status st = wal.value()->Commit();
      if (b == torn_batch) {
        ASSERT_EQ(st.code(), util::StatusCode::kDataLoss);
        // Poisoned until re-opened.
        EXPECT_FALSE(wal.value()->Append(batch[0]).ok());
        wal = InteractionWal::Open({.dir = dir});
        ASSERT_TRUE(wal.ok());
        EXPECT_EQ(wal.value()->recovery().torn_tails, 1);
        const int64_t survived = wal.value()->committed_records() - before;
        ASSERT_GE(survived, 0);
        ASSERT_LE(survived, kPerBatch);
        for (size_t i = static_cast<size_t>(survived); i < batch.size();
             ++i) {
          ASSERT_TRUE(wal.value()->Append(batch[i]).ok());
        }
        ASSERT_TRUE(wal.value()->Commit().ok());
      } else {
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    }
    const auto recovered = InteractionWal::ReadAll(dir);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered.value(), reference.value())
        << "drill diverged when batch " << torn_batch << " tore";
  }
}

// ---------------------------------------------------------------------------
// Delta ingest

TEST_F(PipelineTest, DeltaIngestDeterministicAcrossBatching) {
  const std::vector<WalRecord> events = Events(0, 120);
  DeltaIngestor one;
  one.Apply(events);

  DeltaIngestor many;
  many.Apply(Events(0, 50));
  many.Apply(Events(50, 90));
  many.Apply(Events(90, 120));

  EXPECT_EQ(one.Digest(), many.Digest());
  EXPECT_EQ(one.num_users(), many.num_users());
  EXPECT_EQ(one.num_items(), many.num_items());
  EXPECT_EQ(one.accepted(), many.accepted());
}

TEST_F(PipelineTest, DeltaIngestIdempotentAndBounded) {
  DeltaOptions options;
  options.max_users = 8;
  options.max_items = 1 << 20;
  DeltaIngestor ingestor(options);
  const IngestStats first = ingestor.Apply(Events(0, 60));
  EXPECT_GT(first.applied, 0);
  EXPECT_GT(first.rejected, 0);  // users beyond the cap are refused
  const uint32_t digest = ingestor.Digest();

  // Replaying the identical batch is a pure duplicate no-op.
  const IngestStats again = ingestor.Apply(Events(0, 60));
  EXPECT_EQ(again.applied, 0);
  EXPECT_EQ(again.duplicates + again.rejected, 60);
  EXPECT_EQ(ingestor.Digest(), digest);
  EXPECT_LE(ingestor.num_users(), 8);
}

TEST_F(PipelineTest, DeltaHoldoutRoutingAndDataset) {
  DeltaOptions options;
  options.holdout_cycle = 5;
  DeltaIngestor ingestor(options);
  // Unique events only (distinct users), so routing is exactly cyclic:
  // of every 5 accepted, one goes to valid and one to test.
  std::vector<WalRecord> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back({i, i % 7, i});
  }
  const IngestStats stats = ingestor.Apply(events);
  EXPECT_EQ(stats.applied, 20);
  EXPECT_EQ(ingestor.train_edges(), 12);  // 20 - 4 valid - 4 test

  const data::Dataset dataset = ingestor.BuildDataset();
  EXPECT_EQ(dataset.num_users, 20);
  EXPECT_EQ(dataset.train_graph.num_edges(), 12);
}

// ---------------------------------------------------------------------------
// Manifest

TEST_F(PipelineTest, ManifestRoundTripAndCorruptionDetected) {
  const std::string dir = TempDirFor("manifest");
  const std::string path = dir + "/manifest.txt";
  PipelineManifest m;
  m.run_id = 3;
  m.num_users = 120;
  m.num_items = 456;
  m.version = 7;
  m.trained_events = 9001;
  ASSERT_TRUE(m.Save(path).ok());

  const auto loaded = PipelineManifest::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().run_id, 3);
  EXPECT_EQ(loaded.value().num_users, 120);
  EXPECT_EQ(loaded.value().num_items, 456);
  EXPECT_EQ(loaded.value().version, 7);
  EXPECT_EQ(loaded.value().trained_events, 9001);

  EXPECT_EQ(PipelineManifest::Load(dir + "/nope.txt").status().code(),
            util::StatusCode::kNotFound);

  // Any body damage breaks the CRC.
  {
    std::fstream f(path, std::ios::in | std::ios::out);
    f.seekp(20);
    f.put('9');
  }
  EXPECT_EQ(PipelineManifest::Load(path).status().code(),
            util::StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Publisher

// A tiny publishable model surface: deterministic embeddings + history.
struct FakeModel {
  tensor::Matrix user_emb{4, 8};
  tensor::Matrix item_emb{6, 8};
  std::vector<std::vector<int32_t>> history{{0}, {1, 2}, {}, {3}};

  explicit FakeModel(uint64_t seed) {
    util::Rng rng(seed);
    user_emb.UniformInit(&rng, -1.f, 1.f);
    item_emb.UniformInit(&rng, -1.f, 1.f);
  }
  train::EmbeddingView view() const { return {&user_emb, &item_emb}; }
};

PublisherOptions FastPublisher() {
  PublisherOptions options;
  options.max_retries = 3;
  options.backoff_base_us = 100;
  options.backoff_max_us = 1'000;
  return options;
}

TEST_F(PipelineTest, PublisherRotatesIntoStoreAndPrunes) {
  const std::string dir = TempDirFor("pub_basic");
  serve::SnapshotStore store(dir);
  PublisherOptions options = FastPublisher();
  options.keep_snapshots = 2;
  SnapshotPublisher publisher(&store, options);
  const FakeModel model(5);

  for (int64_t v = 1; v <= 4; ++v) {
    const util::Status st = publisher.Publish(model.view(), model.history, v);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_NE(store.current(), nullptr);
    EXPECT_EQ(store.current()->version(), v);
  }
  EXPECT_EQ(publisher.last_published_version(), 4);
  // Retention pruned old versions; no staging litter remains.
  EXPECT_LE(serve::SnapshotStore::ListSnapshots(dir).size(), 2u);
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".lgcn") << entry.path();
  }
}

TEST_F(PipelineTest, PublisherRetriesThroughTornRename) {
  const std::string dir = TempDirFor("pub_torn");
  serve::SnapshotStore store(dir);
  SnapshotPublisher publisher(&store, FastPublisher());
  const FakeModel model(6);
  ASSERT_TRUE(publisher.Publish(model.view(), model.history, 1).ok());

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  util::fault::Arm("publish.torn_rename");
  const util::Status st = publisher.Publish(model.view(), model.history, 2);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(store.current()->version(), 2);

  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterDelta(before, "pipeline.publish.retries"), 1u);
  EXPECT_GE(after.CounterDelta(before, "pipeline.publish.attempts"), 2u);
  EXPECT_EQ(after.CounterDelta(before, "pipeline.publish.failures"), 0u);
}

TEST_F(PipelineTest, PublisherExhaustedRetriesKeepPreviousServing) {
  const std::string dir = TempDirFor("pub_exhausted");
  serve::SnapshotStore store(dir);
  SnapshotPublisher publisher(&store, FastPublisher());
  const FakeModel model(7);
  ASSERT_TRUE(publisher.Publish(model.view(), model.history, 1).ok());

  // Every rotate attempt of v2 fails: a directory squats on the final
  // name, so rename(2) can never succeed.
  const std::string blocked = serve::SnapshotStore::SnapshotPath(dir, 2);
  fs::create_directories(blocked);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const util::Status st = publisher.Publish(model.view(), model.history, 2);
  EXPECT_FALSE(st.ok());
  // The previous snapshot never stopped serving, the budget is observable,
  // and the staging file was cleaned up.
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version(), 1);
  EXPECT_EQ(publisher.last_published_version(), 1);
  EXPECT_FALSE(fs::exists(dir + "/pub-000002.staging"));
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterDelta(before, "pipeline.publish.attempts"), 4u);
  EXPECT_EQ(after.CounterDelta(before, "pipeline.publish.retries"), 3u);
  EXPECT_EQ(after.CounterDelta(before, "pipeline.publish.failures"), 1u);
}

TEST_F(PipelineTest, SnapshotRetentionKeepsNewestValidAndServingVersion) {
  const std::string dir = TempDirFor("retention");
  serve::SnapshotStore store(dir);
  PublisherOptions options = FastPublisher();
  options.keep_snapshots = 100;  // publisher never prunes in this test
  SnapshotPublisher publisher(&store, options);
  const FakeModel model(9);
  for (int64_t v = 1; v <= 5; ++v) {
    ASSERT_TRUE(publisher.Publish(model.view(), model.history, v).ok());
  }
  ASSERT_EQ(serve::SnapshotStore::ListSnapshots(dir).size(), 5u);

  // Corrupt v4: it must not count toward the keep quota (a corrupt file
  // shields nobody — the fallback walk would skip it).
  fs::resize_file(serve::SnapshotStore::SnapshotPath(dir, 4), 64);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(store.Retain(2), 2);  // v1, v2 go; v3 is the 2nd *valid* keeper
  std::vector<int64_t> versions;
  for (const auto& [v, path] : serve::SnapshotStore::ListSnapshots(dir)) {
    versions.push_back(v);
  }
  EXPECT_EQ(versions, (std::vector<int64_t>{3, 4, 5}));
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterDelta(before, "serve.snapshots_pruned"), 2u);

  // The serving version survives retention even when it falls out of the
  // newest-K window: fake two newer files, keep 1, and v5 (serving) must
  // still be on disk.
  fs::copy_file(serve::SnapshotStore::SnapshotPath(dir, 5),
                serve::SnapshotStore::SnapshotPath(dir, 6));
  fs::copy_file(serve::SnapshotStore::SnapshotPath(dir, 5),
                serve::SnapshotStore::SnapshotPath(dir, 7));
  ASSERT_EQ(store.current()->version(), 5);
  store.Retain(1);
  EXPECT_TRUE(fs::exists(serve::SnapshotStore::SnapshotPath(dir, 5)));
  EXPECT_TRUE(fs::exists(serve::SnapshotStore::SnapshotPath(dir, 7)));
  EXPECT_FALSE(fs::exists(serve::SnapshotStore::SnapshotPath(dir, 6)));
}

// ---------------------------------------------------------------------------
// Warm start

TEST_F(PipelineTest, WarmStartCarriesRowsAcrossGrownIdSpace) {
  const std::string root = TempDirFor("warm_root");
  WarmStartTrainer trainer(SmallConfig());

  DeltaIngestor ingestor;
  ingestor.Apply(Events(0, 150));
  const data::Dataset first = ingestor.BuildDataset();

  WarmStartOptions options;
  options.checkpoint_root = root;
  options.run_id = 1;
  options.bootstrap_epochs = 2;
  options.fine_tune_epochs = 1;
  options.quality_k = 10;
  auto run1 = trainer.Run(first, nullptr, options);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  EXPECT_FALSE(run1.value().warm_started);
  // No serving baseline: the gate passes trivially.
  EXPECT_TRUE(run1.value().gate_passed);
  EXPECT_FALSE(
      train::CheckpointManager::ListCheckpoints(run1.value().checkpoint_dir)
          .empty());

  // Grow the id space, fine-tune run 2 from run 1's checkpoints.
  ingestor.Apply(Events(150, 260));
  const data::Dataset second = ingestor.BuildDataset();
  ASSERT_GT(second.num_users, first.num_users);

  options.run_id = 2;
  options.prev_checkpoint_dir = run1.value().checkpoint_dir;
  options.prev_num_users = first.num_users;
  options.prev_num_items = first.num_items;
  auto run2 = trainer.Run(second, nullptr, options);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_TRUE(run2.value().warm_started);
  ASSERT_NE(run2.value().model, nullptr);
  const train::EmbeddingView view = run2.value().model->GetEmbeddingView();
  ASSERT_TRUE(view.valid());
  EXPECT_EQ(view.user->rows(), second.num_users);
  EXPECT_EQ(view.item->rows(), second.num_items);
}

TEST_F(PipelineTest, WarmStartFallsBackToColdOnMissingCheckpoint) {
  const std::string root = TempDirFor("warm_fallback");
  WarmStartTrainer trainer(SmallConfig());
  DeltaIngestor ingestor;
  ingestor.Apply(Events(0, 150));

  WarmStartOptions options;
  options.checkpoint_root = root;
  options.run_id = 2;
  options.prev_checkpoint_dir = root + "/run-000001";  // never existed
  options.prev_num_users = 10;
  options.prev_num_items = 10;
  options.bootstrap_epochs = 1;
  options.fine_tune_epochs = 1;
  auto run = trainer.Run(ingestor.BuildDataset(), nullptr, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run.value().warm_started);  // degraded to cold, not an error
}

// ---------------------------------------------------------------------------
// Supervisor

SupervisorOptions SmallSupervisor(const std::string& root,
                                  const std::string& snapshots) {
  SupervisorOptions options;
  options.root_dir = root;
  options.snapshot_dir = snapshots;
  options.min_train_events = 120;
  options.train_config = SmallConfig();
  options.warm.bootstrap_epochs = 2;
  options.warm.fine_tune_epochs = 1;
  options.warm.quality_k = 10;
  // The suite exercises crash plumbing, not ranking quality: accept any
  // candidate so tiny datasets cannot flake the publish path.
  options.warm.max_quality_drop = 1.0;
  options.publish.backoff_base_us = 100;
  options.publish.backoff_max_us = 1'000;
  return options;
}

TEST_F(PipelineTest, SupervisorTrainsPublishesAndReplaysDeterministically) {
  const std::string root = TempDirFor("sup_e2e");
  const std::string snapshots = root + "/snapshots";
  serve::SnapshotStore store(snapshots);
  fs::create_directories(snapshots);

  uint32_t digest = 0;
  PipelineManifest manifest;
  {
    PipelineSupervisor supervisor(SmallSupervisor(root, snapshots), &store);
    ASSERT_TRUE(supervisor.Start().ok());
    ASSERT_TRUE(supervisor.Ingest(Events(0, 150)).ok());
    ASSERT_TRUE(supervisor.RunCycle().ok());
    EXPECT_EQ(supervisor.counters().runs_completed, 1);
    EXPECT_EQ(supervisor.counters().publishes, 1);
    ASSERT_NE(store.current(), nullptr);
    EXPECT_EQ(store.current()->version(), 1);
    EXPECT_EQ(supervisor.manifest().version, 1);
    EXPECT_LT(supervisor.events_pending_train(), 120);
    digest = supervisor.ingestor().Digest();
    manifest = supervisor.manifest();
  }

  // A restarted process replays WAL + manifest to the identical position.
  PipelineSupervisor restarted(SmallSupervisor(root, snapshots), &store);
  ASSERT_TRUE(restarted.Start().ok());
  EXPECT_EQ(restarted.ingestor().Digest(), digest);
  EXPECT_EQ(restarted.events_committed(), 150);
  EXPECT_EQ(restarted.manifest().run_id, manifest.run_id);
  EXPECT_EQ(restarted.manifest().version, manifest.version);
  EXPECT_EQ(restarted.manifest().trained_events, manifest.trained_events);
  EXPECT_EQ(restarted.wal_recovery().records, 150);
}

TEST_F(PipelineTest, SupervisorTornCommitMatchesUnfaultedDigest) {
  // The in-process recovery drill end to end: a torn commit mid-stream
  // must leave exactly the state an unfaulted supervisor reaches.
  const std::string root_a = TempDirFor("sup_fault");
  const std::string root_b = TempDirFor("sup_clean");
  serve::SnapshotStore store_a(root_a + "/snapshots");
  serve::SnapshotStore store_b(root_b + "/snapshots");

  PipelineSupervisor faulted(SmallSupervisor(root_a, root_a + "/snapshots"),
                             &store_a);
  PipelineSupervisor clean(SmallSupervisor(root_b, root_b + "/snapshots"),
                           &store_b);
  ASSERT_TRUE(faulted.Start().ok());
  ASSERT_TRUE(clean.Start().ok());

  for (int batch = 0; batch < 3; ++batch) {
    const std::vector<WalRecord> events =
        Events(batch * 40, (batch + 1) * 40);
    if (batch == 1) util::fault::Arm("wal.torn_write");
    ASSERT_TRUE(faulted.Ingest(events).ok());
    ASSERT_TRUE(clean.Ingest(events).ok());
  }
  EXPECT_EQ(faulted.counters().wal_reopens, 1);
  EXPECT_EQ(faulted.events_committed(), clean.events_committed());
  EXPECT_EQ(faulted.ingestor().Digest(), clean.ingestor().Digest());

  // And the on-disk logs replay identically too.
  const auto replay_a = InteractionWal::ReadAll(root_a + "/wal");
  const auto replay_b = InteractionWal::ReadAll(root_b + "/wal");
  ASSERT_TRUE(replay_a.ok());
  ASSERT_TRUE(replay_b.ok());
  EXPECT_EQ(replay_a.value(), replay_b.value());
}

TEST_F(PipelineTest, SupervisorColdStartsOnCorruptManifest) {
  const std::string root = TempDirFor("sup_manifest");
  const std::string snapshots = root + "/snapshots";
  serve::SnapshotStore store(snapshots);
  {
    PipelineSupervisor supervisor(SmallSupervisor(root, snapshots), &store);
    ASSERT_TRUE(supervisor.Start().ok());
    ASSERT_TRUE(supervisor.Ingest(Events(0, 150)).ok());
    ASSERT_TRUE(supervisor.RunCycle().ok());
    ASSERT_EQ(supervisor.manifest().run_id, 1);
  }
  {
    std::fstream f(root + "/manifest.txt", std::ios::in | std::ios::out);
    f.seekp(16);
    f.put('x');
  }
  PipelineSupervisor supervisor(SmallSupervisor(root, snapshots), &store);
  ASSERT_TRUE(supervisor.Start().ok());  // degraded, not dead
  EXPECT_EQ(supervisor.manifest().run_id, 0);
  // The WAL is intact, so the merged state survived the manifest loss.
  EXPECT_EQ(supervisor.events_committed(), 150);
}

TEST_F(PipelineTest, SupervisorHaltsAfterPublishBudgetButKeepsServing) {
  const std::string root = TempDirFor("sup_halt");
  const std::string snapshots = root + "/snapshots";
  serve::SnapshotStore store(snapshots);
  SupervisorOptions options = SmallSupervisor(root, snapshots);
  options.max_stage_failures = 2;
  PipelineSupervisor supervisor(options, &store);
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.Ingest(Events(0, 150)).ok());
  ASSERT_TRUE(supervisor.RunCycle().ok());
  ASSERT_EQ(store.current()->version(), 1);

  // Wedge every future publish: directories squat on the final names.
  fs::create_directories(serve::SnapshotStore::SnapshotPath(snapshots, 2));

  ASSERT_TRUE(supervisor.Ingest(Events(150, 300)).ok());
  const util::Status first = supervisor.RunCycle();
  EXPECT_FALSE(first.ok());
  EXPECT_FALSE(supervisor.halted());  // one strike left

  ASSERT_TRUE(supervisor.Ingest(Events(300, 450)).ok());
  const util::Status second = supervisor.RunCycle();
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(supervisor.halted());
  EXPECT_EQ(supervisor.status().code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_EQ(supervisor.counters().publish_failures, 2);

  // Halted = no more state mutation; the snapshot published before the
  // wedge keeps serving.
  EXPECT_EQ(supervisor.RunCycle().code(),
            util::StatusCode::kResourceExhausted);
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version(), 1);
}

TEST_F(PipelineTest, SupervisorGcsCoveredWalSegmentsAfterPublish) {
  const std::string root = TempDirFor("sup_gc");
  const std::string snapshots = root + "/snapshots";
  serve::SnapshotStore store(snapshots);
  SupervisorOptions options = SmallSupervisor(root, snapshots);
  options.wal_segment_bytes = 256;  // force many segments from 150 events
  options.gc_covered_wal_segments = true;
  PipelineSupervisor supervisor(options, &store);
  ASSERT_TRUE(supervisor.Start().ok());
  // Rotation happens per commit, so batch the ingest to seal segments.
  for (int64_t b = 0; b < 150; b += 10) {
    ASSERT_TRUE(supervisor.Ingest(Events(b, b + 10)).ok());
  }
  const size_t segments_before =
      InteractionWal::ListSegments(root + "/wal").size();
  ASSERT_GT(segments_before, 3u);

  ASSERT_TRUE(supervisor.RunCycle().ok());
  ASSERT_EQ(supervisor.counters().publishes, 1);
  const size_t segments_after =
      InteractionWal::ListSegments(root + "/wal").size();
  EXPECT_LT(segments_after, segments_before);

  // A restart replays only the surviving suffix and keeps running — the
  // GC'd prefix is durable inside the published snapshot + manifest.
  PipelineSupervisor restarted(options, &store);
  ASSERT_TRUE(restarted.Start().ok());
  EXPECT_EQ(restarted.manifest().version, 1);
  EXPECT_LT(restarted.events_committed(), 150);
  EXPECT_EQ(restarted.events_pending_train(), 0);
}

TEST_F(PipelineTest, SupervisorFullDiskDegradesToServingOnly) {
  const std::string root = TempDirFor("sup_enospc");
  const std::string snapshots = root + "/snapshots";
  serve::SnapshotStore store(snapshots);
  PipelineSupervisor supervisor(SmallSupervisor(root, snapshots), &store);
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.Ingest(Events(0, 150)).ok());
  ASSERT_TRUE(supervisor.RunCycle().ok());
  ASSERT_NE(store.current(), nullptr);
  ASSERT_EQ(store.current()->version(), 1);

  // The disk fills: the commit fails as ResourceExhausted and the
  // supervisor halts state mutation instead of crashing or retrying into
  // the same wall.
  util::fault::Arm("wal.enospc");
  const util::Status st = supervisor.Ingest(Events(150, 200));
  EXPECT_EQ(st.code(), util::StatusCode::kResourceExhausted);
  EXPECT_TRUE(supervisor.halted());

  // Serving-only degraded mode: further mutation is refused with the halt
  // reason, but the published snapshot still answers.
  EXPECT_EQ(supervisor.Ingest(Events(200, 210)).code(),
            util::StatusCode::kResourceExhausted);
  EXPECT_EQ(supervisor.RunCycle().code(),
            util::StatusCode::kResourceExhausted);
  ASSERT_NE(store.current(), nullptr);
  EXPECT_EQ(store.current()->version(), 1);
  EXPECT_GT(store.current()->num_users(), 0);
}

}  // namespace
}  // namespace layergcn::pipeline
