#include "graph/bipartite_graph.h"

#include <cmath>

#include "gtest/gtest.h"

namespace layergcn::graph {
namespace {

BipartiteGraph SmallGraph() {
  // Users {0,1,2}, items {0,1}: edges 0-0, 0-1, 1-0, 2-1.
  return BipartiteGraph(3, 2, {{0, 0}, {0, 1}, {1, 0}, {2, 1}});
}

TEST(BipartiteGraphTest, CountsAndDegrees) {
  BipartiteGraph g = SmallGraph();
  EXPECT_EQ(g.num_users(), 3);
  EXPECT_EQ(g.num_items(), 2);
  EXPECT_EQ(g.num_nodes(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.UserDegree(0), 2);
  EXPECT_EQ(g.UserDegree(1), 1);
  EXPECT_EQ(g.UserDegree(2), 1);
  EXPECT_EQ(g.ItemDegree(0), 2);
  EXPECT_EQ(g.ItemDegree(1), 2);
}

TEST(BipartiteGraphTest, DeduplicatesInteractions) {
  BipartiteGraph g(2, 2, {{0, 0}, {0, 0}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.UserDegree(0), 1);
}

TEST(BipartiteGraphTest, ItemNodeOffset) {
  BipartiteGraph g = SmallGraph();
  EXPECT_EQ(g.ItemNode(0), 3);
  EXPECT_EQ(g.ItemNode(1), 4);
}

TEST(BipartiteGraphTest, AdjacencyIsSymmetricBlockStructure) {
  BipartiteGraph g = SmallGraph();
  sparse::CsrMatrix a = sparse::CsrMatrix::FromCoo(g.Adjacency());
  EXPECT_EQ(a.nnz(), 8);  // 4 edges x 2 directions
  EXPECT_TRUE(a.IsSymmetric());
  // User-user and item-item blocks must be zero (Eq. 4).
  EXPECT_EQ(a.At(0, 1), 0.f);
  EXPECT_EQ(a.At(3, 4), 0.f);
  EXPECT_EQ(a.At(0, 3), 1.f);  // user 0 - item 0
  EXPECT_EQ(a.At(4, 2), 1.f);  // item 1 - user 2
}

TEST(BipartiteGraphTest, NormalizedAdjacencyValues) {
  BipartiteGraph g = SmallGraph();
  sparse::CsrMatrix norm = g.NormalizedAdjacency();
  // Entry (u=0, item0 node=3): 1/sqrt(d_u0 * d_i0) = 1/sqrt(2*2) = 0.5.
  EXPECT_NEAR(norm.At(0, 3), 0.5f, 1e-6f);
  // (u=1, item0): 1/sqrt(1*2).
  EXPECT_NEAR(norm.At(1, 3), 1.f / std::sqrt(2.f), 1e-6f);
  EXPECT_TRUE(norm.IsSymmetric(1e-6f));
}

TEST(BipartiteGraphTest, AdjacencySubsetUsesSubsetDegrees) {
  BipartiteGraph g = SmallGraph();
  // Keep only edges 0 (u0-i0) and 3 (u2-i1): every endpoint now degree 1.
  sparse::CsrMatrix norm = g.NormalizedAdjacencySubset({0, 3});
  EXPECT_EQ(norm.nnz(), 4);
  EXPECT_NEAR(norm.At(0, 3), 1.f, 1e-6f);  // re-normalized on pruned graph
  EXPECT_NEAR(norm.At(2, 4), 1.f, 1e-6f);
  EXPECT_EQ(norm.At(0, 4), 0.f);
}

TEST(BipartiteGraphTest, DegreeSensitiveEdgeWeightsMatchEq5) {
  BipartiteGraph g = SmallGraph();
  const auto w = g.DegreeSensitiveEdgeWeights();
  ASSERT_EQ(w.size(), 4u);
  // Edges sorted by (user, item): (0,0), (0,1), (1,0), (2,1).
  EXPECT_NEAR(w[0], 1.0 / (std::sqrt(2.0) * std::sqrt(2.0)), 1e-12);
  EXPECT_NEAR(w[1], 1.0 / (std::sqrt(2.0) * std::sqrt(2.0)), 1e-12);
  EXPECT_NEAR(w[2], 1.0 / (std::sqrt(1.0) * std::sqrt(2.0)), 1e-12);
  EXPECT_NEAR(w[3], 1.0 / (std::sqrt(1.0) * std::sqrt(2.0)), 1e-12);
}

TEST(BipartiteGraphTest, HasInteraction) {
  BipartiteGraph g = SmallGraph();
  EXPECT_TRUE(g.HasInteraction(0, 0));
  EXPECT_TRUE(g.HasInteraction(2, 1));
  EXPECT_FALSE(g.HasInteraction(1, 1));
  EXPECT_FALSE(g.HasInteraction(2, 0));
}

TEST(BipartiteGraphTest, UserItemsSortedAscending) {
  BipartiteGraph g(2, 4, {{0, 3}, {0, 1}, {0, 2}});
  const auto& items = g.user_items()[0];
  EXPECT_EQ(items, (std::vector<int32_t>{1, 2, 3}));
  EXPECT_TRUE(g.user_items()[1].empty());
}

TEST(BipartiteGraphTest, ItemDegreeCdf) {
  // Item degrees: i0 -> 2, i1 -> 2 plus an item with degree 1 and an
  // isolated item.
  BipartiteGraph g(3, 4, {{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 2}});
  const auto cdf = g.ItemDegreeCdf({0.0, 1.0, 2.0, 10.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0], 0.25);  // only the isolated item has degree <= 0
  EXPECT_DOUBLE_EQ(cdf[1], 0.5);   // + the degree-1 item
  EXPECT_DOUBLE_EQ(cdf[2], 1.0);
  EXPECT_DOUBLE_EQ(cdf[3], 1.0);
}

TEST(BipartiteGraphTest, EmptyGraph) {
  BipartiteGraph g(0, 0, {});
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.num_nodes(), 0);
}

TEST(BipartiteGraphDeathTest, OutOfRangeIdsAbort) {
  EXPECT_DEATH(BipartiteGraph(2, 2, {{2, 0}}), "user id");
  EXPECT_DEATH(BipartiteGraph(2, 2, {{0, 5}}), "item id");
}

// Larger random-ish graph for the counting-sort equivalence checks.
BipartiteGraph MediumGraph() {
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t u = 0; u < 40; ++u) {
    for (int32_t i = 0; i < 30; ++i) {
      if ((u * 31 + i * 17) % 7 == 0) edges.emplace_back(u, i);
    }
  }
  return BipartiteGraph(40, 30, edges);
}

void ExpectBitIdentical(const sparse::CsrMatrix& a,
                        const sparse::CsrMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());  // exact float equality, no tolerance
}

TEST(BipartiteGraphTest, SubsetIntoMatchesCooBaselineBitExactly) {
  BipartiteGraph g = MediumGraph();
  // Every third edge kept (ascending, as the samplers guarantee).
  std::vector<int64_t> kept;
  for (int64_t k = 0; k < g.num_edges(); k += 3) kept.push_back(k);

  BipartiteGraph::AdjacencyWorkspace ws;
  sparse::CsrMatrix fast;
  g.NormalizedAdjacencySubsetInto(kept, &ws, &fast);
  ExpectBitIdentical(fast, g.NormalizedAdjacencySubset(kept));
}

TEST(BipartiteGraphTest, SubsetIntoFullIdentityMatchesNormalizedAdjacency) {
  BipartiteGraph g = MediumGraph();
  std::vector<int64_t> all(static_cast<size_t>(g.num_edges()));
  for (int64_t k = 0; k < g.num_edges(); ++k) all[static_cast<size_t>(k)] = k;

  BipartiteGraph::AdjacencyWorkspace ws;
  sparse::CsrMatrix fast;
  g.NormalizedAdjacencySubsetInto(all, &ws, &fast);
  ExpectBitIdentical(fast, g.NormalizedAdjacency());
}

TEST(BipartiteGraphTest, SubsetIntoReusesStorageAcrossRebuilds) {
  BipartiteGraph g = MediumGraph();
  BipartiteGraph::AdjacencyWorkspace ws;
  sparse::CsrMatrix m;
  std::vector<int64_t> kept;
  for (int64_t k = 0; k < g.num_edges(); k += 2) kept.push_back(k);
  g.NormalizedAdjacencySubsetInto(kept, &ws, &m);
  const float* data_before = m.values().data();

  // A second rebuild with no more edges than the first must not reallocate.
  std::vector<int64_t> fewer(kept.begin(), kept.begin() + kept.size() / 2);
  g.NormalizedAdjacencySubsetInto(fewer, &ws, &m);
  EXPECT_EQ(m.values().data(), data_before);
  ExpectBitIdentical(m, g.NormalizedAdjacencySubset(fewer));
}

TEST(BipartiteGraphDeathTest, SubsetIntoRejectsUnsortedKeptList) {
  BipartiteGraph g = SmallGraph();
  BipartiteGraph::AdjacencyWorkspace ws;
  sparse::CsrMatrix m;
  EXPECT_DEATH(g.NormalizedAdjacencySubsetInto({2, 1}, &ws, &m), "ascending");
}

}  // namespace
}  // namespace layergcn::graph
