#include "train/adam.h"

#include <cmath>

#include "gtest/gtest.h"
#include "train/parameter.h"
#include "util/rng.h"

namespace layergcn::train {
namespace {

TEST(AdamTest, SingleStepMatchesHandComputation) {
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  Adam adam(cfg);
  Parameter p("w", 1, 1);
  p.value(0, 0) = 1.f;
  p.grad(0, 0) = 0.5f;
  adam.Step({&p});
  // After one step: m = 0.1*0.5 = 0.05, v = 0.001*0.25, bias-corrected
  // m_hat = 0.5, v_hat = 0.25 => update = lr * 0.5 / (0.5 + eps) ≈ lr.
  EXPECT_NEAR(p.value(0, 0), 1.f - 0.1f, 1e-5f);
  EXPECT_EQ(p.grad(0, 0), 0.f);  // grads zeroed by Step
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(AdamTest, FirstStepMagnitudeIsLrRegardlessOfGradScale) {
  // Adam's bias correction makes the first update ≈ lr * sign(grad).
  for (float g : {0.01f, 1.f, 100.f}) {
    Adam adam(AdamConfig{.learning_rate = 0.05});
    Parameter p("w", 1, 1);
    p.value(0, 0) = 0.f;
    p.grad(0, 0) = g;
    adam.Step({&p});
    EXPECT_NEAR(p.value(0, 0), -0.05f, 1e-4f);
  }
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // minimize f(w) = (w - 3)^2.
  Adam adam(AdamConfig{.learning_rate = 0.1});
  Parameter p("w", 1, 1);
  p.value(0, 0) = -5.f;
  for (int step = 0; step < 500; ++step) {
    p.grad(0, 0) = 2.f * (p.value(0, 0) - 3.f);
    adam.Step({&p});
  }
  EXPECT_NEAR(p.value(0, 0), 3.f, 0.05f);
}

TEST(AdamTest, ConvergesOnMultiParameterLeastSquares) {
  // minimize ||A w - b||^2 for a 3x2 system.
  util::Rng rng(5);
  const float a_data[3][2] = {{1, 2}, {3, 1}, {0, 1}};
  const float b_data[3] = {5, 5, 1};  // solution approx w = [1, 2]... solve
  Adam adam(AdamConfig{.learning_rate = 0.05});
  Parameter w("w", 2, 1);
  w.InitGaussian(&rng, 0.5f);
  for (int step = 0; step < 2000; ++step) {
    float r[3];
    for (int i = 0; i < 3; ++i) {
      r[i] = a_data[i][0] * w.value(0, 0) + a_data[i][1] * w.value(1, 0) -
             b_data[i];
    }
    w.grad.Zero();
    for (int i = 0; i < 3; ++i) {
      w.grad(0, 0) += 2.f * r[i] * a_data[i][0];
      w.grad(1, 0) += 2.f * r[i] * a_data[i][1];
    }
    adam.Step({&w});
  }
  // Residual should be (near) the least-squares optimum: check gradient
  // norm is tiny.
  float r[3];
  double grad0 = 0, grad1 = 0;
  for (int i = 0; i < 3; ++i) {
    r[i] = a_data[i][0] * w.value(0, 0) + a_data[i][1] * w.value(1, 0) -
           b_data[i];
    grad0 += 2.0 * r[i] * a_data[i][0];
    grad1 += 2.0 * r[i] * a_data[i][1];
  }
  EXPECT_NEAR(grad0, 0.0, 0.05);
  EXPECT_NEAR(grad1, 0.0, 0.05);
}

TEST(AdamTest, ResetRestartsBiasCorrection) {
  Adam adam(AdamConfig{.learning_rate = 0.1});
  Parameter p("w", 1, 1);
  p.grad(0, 0) = 1.f;
  adam.Step({&p});
  EXPECT_EQ(adam.step_count(), 1);
  adam.Reset();
  EXPECT_EQ(adam.step_count(), 0);
}

TEST(AdamTest, ZeroGradLeavesValueAlmostUnchanged) {
  Adam adam;
  Parameter p("w", 2, 2);
  p.value.Fill(1.f);
  adam.Step({&p});  // grad is zero
  EXPECT_TRUE(p.value.AllClose(tensor::Matrix(2, 2, 1.f), 1e-6f));
}

TEST(ParameterTest, InitsResetState) {
  util::Rng rng(1);
  Parameter p("w", 2, 2);
  p.grad.Fill(5.f);
  p.adam_m.Fill(5.f);
  p.InitXavier(&rng);
  EXPECT_EQ(p.grad(0, 0), 0.f);
  EXPECT_EQ(p.adam_m(1, 1), 0.f);
  p.grad.Fill(2.f);
  p.ZeroGrad();
  EXPECT_EQ(p.grad(0, 1), 0.f);
}

}  // namespace
}  // namespace layergcn::train
