// Tests of the auxiliary library features: leave-one-out splitting,
// beyond-accuracy metrics, popularity-weighted negative sampling, and the
// hyper-parameter search driver.

#include <map>
#include <memory>
#include <set>

#include "core/api.h"
#include "eval/beyond_accuracy.h"
#include "experiments/grid_search.h"
#include "gtest/gtest.h"
#include "models/bpr_mf.h"
#include "test_util.h"

namespace layergcn {
namespace {

// ---------------------------------------------------------------------------
// Leave-one-out split.
// ---------------------------------------------------------------------------

TEST(LeaveOneOutTest, LastTwoInteractionsHeldOutPerUser) {
  std::vector<data::Interaction> xs = {
      {0, 0, 10}, {0, 1, 20}, {0, 2, 30}, {0, 3, 40},  // user 0: 4
      {1, 0, 5},  {1, 1, 15}, {1, 2, 25},              // user 1: 3
      {2, 0, 7},  {2, 1, 8},                           // user 2: 2 (all train)
  };
  const data::Split s = data::LeaveOneOutSplit(xs);
  EXPECT_EQ(s.train.size(), 5u);  // 2 + 1 + 2
  ASSERT_EQ(s.valid.size(), 2u);
  ASSERT_EQ(s.test.size(), 2u);
  // User 0: valid = item 2 (ts 30), test = item 3 (ts 40).
  EXPECT_EQ(s.valid[0].item, 2);
  EXPECT_EQ(s.test[0].item, 3);
  // User 1: valid = item 1, test = item 2.
  EXPECT_EQ(s.valid[1].item, 1);
  EXPECT_EQ(s.test[1].item, 2);
}

TEST(LeaveOneOutTest, ChronologyRespectedNotInputOrder) {
  std::vector<data::Interaction> xs = {
      {0, 3, 40}, {0, 0, 10}, {0, 2, 30}, {0, 1, 20}};
  const data::Split s = data::LeaveOneOutSplit(xs);
  ASSERT_EQ(s.test.size(), 1u);
  EXPECT_EQ(s.test[0].item, 3);   // latest timestamp
  EXPECT_EQ(s.valid[0].item, 2);  // second-latest
}

TEST(LeaveOneOutTest, DatasetBuildsAndTrains) {
  data::SyntheticConfig gen;
  gen.num_users = 100;
  gen.num_items = 50;
  gen.num_interactions = 900;
  data::Dataset ds = data::LeaveOneOutDataset(
      "loo", gen.num_users, gen.num_items,
      data::GenerateInteractions(gen, 3));
  EXPECT_GT(ds.num_train(), 0);
  EXPECT_GT(static_cast<int64_t>(ds.test_users.size()), 0);
  // Each test user holds out exactly one item under this protocol.
  for (int32_t u : ds.test_users) {
    EXPECT_EQ(ds.test_items[static_cast<size_t>(u)].size(), 1u);
  }
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.max_epochs = 3;
  cfg.batch_size = 256;
  cfg.seed = 4;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_EQ(r.epochs_run, 3);
}

// ---------------------------------------------------------------------------
// Beyond-accuracy metrics.
// ---------------------------------------------------------------------------

TEST(BeyondAccuracyTest, OracleConcentrationVsSpread) {
  // 20 users, 10 items; each user's single training item never collides
  // with the item the "spread" scorer prefers for them.
  std::vector<data::Interaction> train;
  for (int32_t u = 0; u < 20; ++u) {
    train.push_back({u, (u % 10 + 5) % 10, u});
  }
  const data::Dataset ds = data::BuildDataset("ba", 20, 10, train, {}, {});
  std::vector<int32_t> users;
  for (int32_t u = 0; u < ds.num_users; ++u) users.push_back(u);

  // Scorer A: everyone gets the same ranking => minimal coverage.
  eval::ScoreFn concentrated = [&](const std::vector<int32_t>& us) {
    tensor::Matrix m(static_cast<int64_t>(us.size()), ds.num_items);
    for (int64_t r = 0; r < m.rows(); ++r) {
      for (int64_t c = 0; c < m.cols(); ++c) {
        m(r, c) = static_cast<float>(c);
      }
    }
    return m;
  };
  // Scorer B: each user prefers a different item => high coverage.
  eval::ScoreFn spread = [&](const std::vector<int32_t>& us) {
    tensor::Matrix m(static_cast<int64_t>(us.size()), ds.num_items);
    for (size_t r = 0; r < us.size(); ++r) {
      m(static_cast<int64_t>(r), us[r] % ds.num_items) = 1.f;
    }
    return m;
  };
  const auto a = eval::EvaluateBeyondAccuracy(ds, concentrated, users, 1);
  const auto b = eval::EvaluateBeyondAccuracy(ds, spread, users, 1);
  EXPECT_LT(a.coverage, b.coverage);
  EXPECT_GT(a.gini, b.gini);
  EXPECT_FALSE(a.ToString().empty());
}

TEST(BeyondAccuracyTest, PopularityReflectsItemDegrees) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  std::vector<int32_t> users{0, 1, 2};
  // Recommend only the globally most-popular item per user.
  int32_t top_item = 0;
  for (int32_t i = 1; i < ds.num_items; ++i) {
    if (ds.train_graph.ItemDegree(i) >
        ds.train_graph.ItemDegree(top_item)) {
      top_item = i;
    }
  }
  eval::ScoreFn popular_only = [&](const std::vector<int32_t>& us) {
    tensor::Matrix m(static_cast<int64_t>(us.size()), ds.num_items);
    for (int64_t r = 0; r < m.rows(); ++r) m(r, top_item) = 1.f;
    return m;
  };
  const auto metrics =
      eval::EvaluateBeyondAccuracy(ds, popular_only, users, 1);
  // Users who already interacted with top_item get their next-best (index
  // order), so avg popularity is at most the top degree.
  EXPECT_LE(metrics.avg_popularity,
            static_cast<double>(ds.train_graph.ItemDegree(top_item)));
  EXPECT_GT(metrics.avg_popularity, 0.0);
}

TEST(BeyondAccuracyTest, EmptyUserListYieldsZeros) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  const auto m = eval::EvaluateBeyondAccuracy(
      ds,
      [&](const std::vector<int32_t>& us) {
        return tensor::Matrix(static_cast<int64_t>(us.size()), ds.num_items);
      },
      {}, 5);
  EXPECT_DOUBLE_EQ(m.coverage, 0.0);
  EXPECT_DOUBLE_EQ(m.avg_popularity, 0.0);
}

// ---------------------------------------------------------------------------
// Popularity-weighted negative sampling.
// ---------------------------------------------------------------------------

TEST(PopularityNegativesTest, PopularItemsSampledMoreOften) {
  // Item 0 is very popular; items 1..9 have one interaction each; user 20
  // interacted with nothing relevant.
  std::vector<std::pair<int32_t, int32_t>> edges;
  for (int32_t u = 0; u < 10; ++u) edges.emplace_back(u, 0);
  for (int32_t i = 1; i < 10; ++i) edges.emplace_back(10 + i, i);
  edges.emplace_back(20, 10);  // keeps user 20 in the sampler's universe
  graph::BipartiteGraph g(21, 11, edges);

  auto count_negatives = [&](train::NegativeSampling strategy) {
    train::BprSampler sampler(&g, strategy);
    util::Rng rng(5);
    std::map<int32_t, int> counts;
    for (int epoch = 0; epoch < 40; ++epoch) {
      sampler.BeginEpoch(&rng);
      train::BprBatch batch;
      while (sampler.NextBatch(64, &rng, &batch)) {
        for (int64_t k = 0; k < batch.size(); ++k) {
          ++counts[batch.neg_items[static_cast<size_t>(k)]];
        }
      }
    }
    return counts;
  };
  auto uniform = count_negatives(train::NegativeSampling::kUniform);
  auto popular = count_negatives(train::NegativeSampling::kPopularity);
  // Under popularity sampling, item 0 (degree 10) must appear far more
  // often than under uniform sampling.
  EXPECT_GT(popular[0], uniform[0] * 2);
}

TEST(PopularityNegativesTest, NegativesStillValid) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  train::BprSampler sampler(&ds.train_graph,
                            train::NegativeSampling::kPopularity);
  util::Rng rng(6);
  for (int epoch = 0; epoch < 10; ++epoch) {
    sampler.BeginEpoch(&rng);
    train::BprBatch batch;
    while (sampler.NextBatch(8, &rng, &batch)) {
      for (int64_t k = 0; k < batch.size(); ++k) {
        EXPECT_FALSE(ds.train_graph.HasInteraction(
            batch.users[static_cast<size_t>(k)],
            batch.neg_items[static_cast<size_t>(k)]));
      }
    }
  }
}

TEST(PopularityNegativesTest, ModelTrainsWithPopularityNegatives) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  core::LayerGcn model;
  train::TrainConfig cfg;
  cfg.embedding_dim = 8;
  cfg.num_layers = 2;
  cfg.batch_size = 8;
  cfg.max_epochs = 6;
  cfg.seed = 7;
  cfg.negative_sampling = train::NegativeSampling::kPopularity;
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

// ---------------------------------------------------------------------------
// Grid search.
// ---------------------------------------------------------------------------

TEST(GridSearchTest, ExhaustiveGridCoversAllAssignments) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  train::TrainConfig base;
  base.embedding_dim = 8;
  base.num_layers = 1;
  base.batch_size = 8;
  base.max_epochs = 3;
  const std::vector<experiments::SearchDimension> dims = {
      experiments::L2RegDimension({1e-4, 1e-3}),
      experiments::LearningRateDimension({1e-3, 1e-2}),
  };
  experiments::SearchOptions opts;
  opts.validation_k = 2;
  opts.report_ks = {2};
  const auto result = experiments::GridSearch(
      [] { return std::make_unique<models::BprMf>(); }, ds, base, dims, opts);
  EXPECT_EQ(result.trials.size(), 4u);
  std::set<std::pair<double, double>> seen;
  for (const auto& t : result.trials) {
    seen.emplace(t.assignment[0], t.assignment[1]);
  }
  EXPECT_EQ(seen.size(), 4u);
  // The winner's score equals the max across trials.
  double best = 0;
  for (const auto& t : result.trials) best = std::max(best, t.valid_score);
  EXPECT_DOUBLE_EQ(result.best.valid_score, best);
  EXPECT_FALSE(result.Report(dims).empty());
}

TEST(GridSearchTest, MaxTrialsSubsamples) {
  const data::Dataset ds = layergcn::testing::TinyDataset();
  train::TrainConfig base;
  base.embedding_dim = 8;
  base.num_layers = 1;
  base.batch_size = 8;
  base.max_epochs = 2;
  const std::vector<experiments::SearchDimension> dims = {
      experiments::L2RegDimension({1e-5, 1e-4, 1e-3, 1e-2}),
      experiments::NumLayersDimension({1, 2, 3}),
  };
  experiments::SearchOptions opts;
  opts.max_trials = 5;
  opts.validation_k = 2;
  opts.report_ks = {2};
  const auto result = experiments::GridSearch(
      [] { return std::make_unique<models::BprMf>(); }, ds, base, dims, opts);
  EXPECT_EQ(result.trials.size(), 5u);
}

TEST(GridSearchTest, DimensionSettersApply) {
  train::TrainConfig cfg;
  experiments::EdgeDropRatioDimension({0.0}).apply(&cfg, 0.0);
  EXPECT_EQ(cfg.edge_drop_kind, graph::EdgeDropKind::kNone);
  experiments::EmbeddingDimDimension({32}).apply(&cfg, 32);
  EXPECT_EQ(cfg.embedding_dim, 32);
  experiments::NumLayersDimension({5}).apply(&cfg, 5);
  EXPECT_EQ(cfg.num_layers, 5);
}

}  // namespace
}  // namespace layergcn
