// Head-to-head comparison of LayerGCN against LightGCN with statistical
// significance — the evaluation workflow of the paper in miniature:
// identical data, identical budget, per-user paired t-test on Recall@20.
//
//   ./model_comparison [dataset] [seed]     dataset in {mooc,games,food,yelp}

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/api.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "food";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 13;

  data::Dataset dataset = data::MakeBenchmarkDataset(dataset_name, 0.6, seed);
  std::printf("%s\n", dataset.Summary().c_str());

  train::TrainConfig cfg;
  cfg.seed = seed;
  cfg.embedding_dim = 32;
  cfg.num_layers = 4;
  cfg.batch_size = 1024;
  cfg.max_epochs = 35;
  cfg.early_stop_patience = 15;
  cfg.edge_drop_ratio = 0.1;

  core::LayerGcn ours;
  const train::TrainResult r_ours =
      train::FitRecommender(&ours, dataset, cfg);
  auto lightgcn = core::CreateModel("LightGCN");
  const train::TrainResult r_theirs =
      train::FitRecommender(lightgcn.get(), dataset, cfg);

  std::printf("\n%-10s %8s %8s %8s %8s\n", "model", "R@10", "R@20", "N@10",
              "N@20");
  auto print_row = [](const char* name, const eval::RankingMetrics& m) {
    std::printf("%-10s %8.4f %8.4f %8.4f %8.4f\n", name, m.recall.at(10),
                m.recall.at(20), m.ndcg.at(10), m.ndcg.at(20));
  };
  print_row("LayerGCN", r_ours.test_metrics);
  print_row("LightGCN", r_theirs.test_metrics);

  // Per-user paired t-test at K=20, the paper's significance protocol.
  eval::Evaluator evaluator(&dataset, {20});
  ours.PrepareEval();
  lightgcn->PrepareEval();
  const auto per_ours = evaluator.EvaluatePerUser(
      [&](const std::vector<int32_t>& users) { return ours.ScoreUsers(users); },
      eval::EvalSplit::kTest, 20);
  const auto per_theirs = evaluator.EvaluatePerUser(
      [&](const std::vector<int32_t>& users) {
        return lightgcn->ScoreUsers(users);
      },
      eval::EvalSplit::kTest, 20);
  const eval::TTestResult tt =
      eval::PairedTTest(per_ours.recall, per_theirs.recall);
  std::printf(
      "\npaired t-test over %zu users (R@20): t = %.3f, p = %.4f %s\n",
      per_ours.recall.size(), tt.t_statistic, tt.p_value,
      tt.p_value < 0.05
          ? (tt.t_statistic > 0 ? "=> LayerGCN significantly better"
                                : "=> LightGCN significantly better")
          : "=> no significant difference at p<0.05");
  std::printf("convergence: LayerGCN best epoch %d vs LightGCN %d\n",
              r_ours.best_epoch, r_theirs.best_epoch);
  return 0;
}
