// Hyper-parameter tuning workflow — reproduces the paper's §V-A4 protocol
// ("tune λ in {1e-2..1e-5}, the edge dropout ratio in {0.0, 0.1, 0.2}")
// with the library's GridSearch driver, then inspects the winner with both
// accuracy and beyond-accuracy metrics.
//
//   ./hyperparameter_search [dataset] [seed]

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/api.h"
#include "eval/beyond_accuracy.h"
#include "experiments/grid_search.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "games";
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  data::Dataset dataset = data::MakeBenchmarkDataset(dataset_name, 0.5, seed);
  std::printf("%s\n", dataset.Summary().c_str());

  // The paper's LayerGCN tuning grid (§V-A4), scaled for the demo budget.
  train::TrainConfig base;
  base.embedding_dim = 32;
  base.num_layers = 4;
  base.batch_size = 1024;
  base.max_epochs = 25;
  base.early_stop_patience = 25;
  const std::vector<experiments::SearchDimension> dims = {
      experiments::L2RegDimension({1e-5, 1e-4, 1e-3, 1e-2}),
      experiments::EdgeDropRatioDimension({0.0, 0.1, 0.2}),
  };

  experiments::SearchOptions opts;
  opts.seed = seed;
  opts.validation_k = 20;
  const experiments::SearchResult result = experiments::GridSearch(
      [] { return core::CreateModel("LayerGCN"); }, dataset, base, dims,
      opts);

  std::printf("\n%s", result.Report(dims).c_str());
  std::printf("test metrics of the winner: %s\n",
              result.best_test_metrics.ToString().c_str());

  // Retrain the winner and look beyond accuracy.
  train::TrainConfig best_cfg = base;
  best_cfg.seed = seed;
  for (size_t d = 0; d < dims.size(); ++d) {
    dims[d].apply(&best_cfg, result.best.assignment[d]);
  }
  core::LayerGcn model;
  train::FitRecommender(&model, dataset, best_cfg);
  model.PrepareEval();
  const eval::BeyondAccuracyMetrics beyond = eval::EvaluateBeyondAccuracy(
      dataset,
      [&](const std::vector<int32_t>& users) {
        return model.ScoreUsers(users);
      },
      dataset.test_users, /*k=*/10);
  std::printf("beyond-accuracy @10: %s\n", beyond.ToString().c_str());
  return 0;
}
