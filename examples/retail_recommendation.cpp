// Retail (e-commerce) recommendation on a sparse long-tail catalog — the
// Amazon-Games/Food scenario of the paper, plus a model-selection workflow:
// compare LayerGCN against LightGCN and BPR on a validation split before
// shipping, then export recommendations and catalog coverage stats.
//
//   ./retail_recommendation [seed]

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>

#include "core/api.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21;

  // 1. A sparse retail interaction graph (long-tail item catalog).
  data::Dataset dataset = data::MakeBenchmarkDataset("games", 0.6, seed);
  std::printf("purchase data: %s\n", dataset.Summary().c_str());

  // 2. Candidate models, all trained under the same budget; the winner is
  //    picked by validation Recall@20 — never by test metrics.
  train::TrainConfig cfg;
  cfg.seed = seed;
  cfg.embedding_dim = 32;
  cfg.num_layers = 3;
  cfg.batch_size = 1024;
  cfg.max_epochs = 30;
  cfg.early_stop_patience = 12;

  std::map<std::string, std::unique_ptr<train::Recommender>> zoo;
  std::map<std::string, double> valid_score;
  for (const std::string name : {"BPR", "LightGCN", "LayerGCN"}) {
    auto model = core::CreateModel(name);
    const train::TrainConfig adapted = core::AdaptConfig(name, cfg);
    const train::TrainResult r =
        train::FitRecommender(model.get(), dataset, adapted);
    std::printf("  %-9s valid R@20 = %.4f (best epoch %d)\n", name.c_str(),
                r.best_valid_score, r.best_epoch);
    valid_score[name] = r.best_valid_score;
    zoo[name] = std::move(model);
  }
  std::string winner = "BPR";
  for (const auto& [name, score] : valid_score) {
    if (score > valid_score[winner]) winner = name;
  }
  std::printf("selected model: %s\n", winner.c_str());

  // 3. Ship-time check: test metrics of the winner only.
  const eval::RankingMetrics test = train::EvaluateRecommender(
      zoo[winner].get(), dataset, {10, 20, 50}, eval::EvalSplit::kTest);
  std::printf("test metrics: %s\n", test.ToString().c_str());

  // 4. Catalog coverage: what fraction of the catalog appears in some
  //    user's top-10? Long-tail-friendly models should cover more items.
  std::set<int32_t> recommended;
  const int sample_users = std::min<int>(300, dataset.num_users);
  train::Recommender* model = zoo[winner].get();
  model->PrepareEval();
  for (int32_t u = 0; u < sample_users; ++u) {
    tensor::Matrix scores = model->ScoreUsers({u});
    std::vector<bool> owned(static_cast<size_t>(dataset.num_items), false);
    for (int32_t i : dataset.train_graph.user_items()[static_cast<size_t>(u)]) {
      owned[static_cast<size_t>(i)] = true;
    }
    for (int32_t i :
         eval::TopKIndices(scores.row(0), dataset.num_items, 10, &owned)) {
      recommended.insert(i);
    }
  }
  std::printf(
      "catalog coverage: %.1f%% of %d items appear in the top-10 of the "
      "first %d users\n",
      100.0 * static_cast<double>(recommended.size()) / dataset.num_items,
      dataset.num_items, sample_users);
  return 0;
}
