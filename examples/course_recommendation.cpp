// Course recommendation on a MOOC-style platform — the scenario that
// motivates the paper's densest dataset (few courses, many learners, heavy
// item degrees).
//
// Demonstrates:
//   * building a Dataset from raw (user, item, timestamp) records,
//   * why DegreeDrop matters on dense graphs: trains LayerGCN with and
//     without degree-sensitive pruning and compares,
//   * producing a per-learner course plan from the trained model.
//
//   ./course_recommendation [seed]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/api.h"

using namespace layergcn;

namespace {

// Synthesizes an enrollment log shaped like a young MOOC platform: ~100
// courses, thousands of learners, strong popularity skew.
std::vector<data::Interaction> MakeEnrollmentLog(uint64_t seed) {
  data::SyntheticConfig cfg = data::MoocLikeConfig(/*scale=*/0.6);
  return data::GenerateInteractions(cfg, seed);
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const data::SyntheticConfig shape = data::MoocLikeConfig(0.6);

  // 1. Ingest the enrollment log (user, course, time) and split it
  //    chronologically, exactly like a production retraining pipeline
  //    would: past 70% trains, newest 20% tests.
  std::vector<data::Interaction> log = MakeEnrollmentLog(seed);
  data::Dataset dataset = data::ChronologicalSplitDataset(
      "mooc-platform", shape.num_users, shape.num_items, std::move(log));
  std::printf("enrollment data: %s\n", dataset.Summary().c_str());

  // 2. Train LayerGCN twice: with DegreeDrop (paper's full model) and
  //    without pruning, to see the effect on a dense graph.
  train::TrainConfig cfg;
  cfg.seed = seed;
  cfg.embedding_dim = 32;
  cfg.max_epochs = 40;
  cfg.early_stop_patience = 15;

  cfg.edge_drop_kind = graph::EdgeDropKind::kDegreeDrop;
  cfg.edge_drop_ratio = 0.1;
  core::LayerGcn with_drop;
  const train::TrainResult r1 =
      train::FitRecommender(&with_drop, dataset, cfg);

  cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  cfg.edge_drop_ratio = 0.0;
  core::LayerGcn without_drop;
  const train::TrainResult r2 =
      train::FitRecommender(&without_drop, dataset, cfg);

  std::printf("LayerGCN (DegreeDrop): best epoch %d, %s\n", r1.best_epoch,
              r1.test_metrics.ToString().c_str());
  std::printf("LayerGCN (no pruning): best epoch %d, %s\n", r2.best_epoch,
              r2.test_metrics.ToString().c_str());

  // 3. Produce a course plan: for three active learners, recommend the
  //    five courses they have not enrolled in yet.
  std::printf("\ncourse plans (top-5 unenrolled courses per learner):\n");
  int shown = 0;
  for (int32_t u = 0; u < dataset.num_users && shown < 3; ++u) {
    if (dataset.train_graph.UserDegree(u) < 3) continue;
    ++shown;
    tensor::Matrix scores = with_drop.ScoreUsers({u});
    std::vector<bool> enrolled(static_cast<size_t>(dataset.num_items), false);
    for (int32_t i : dataset.train_graph.user_items()[static_cast<size_t>(u)]) {
      enrolled[static_cast<size_t>(i)] = true;
    }
    const auto plan =
        eval::TopKIndices(scores.row(0), dataset.num_items, 5, &enrolled);
    std::printf("  learner %-5d (enrolled in %d):", u,
                dataset.train_graph.UserDegree(u));
    for (int32_t c : plan) std::printf(" course-%d", c);
    std::printf("\n");
  }
  return 0;
}
