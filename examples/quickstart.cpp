// Quickstart: train LayerGCN on a small synthetic dataset and print
// held-out ranking quality plus a few example recommendations.
//
//   ./quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/api.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // 1. Build a dataset. Here: a synthetic MOOC-like interaction graph with
  //    a chronological 70/10/20 split. To use your own data, see
  //    data::LoadInteractions + data::ChronologicalSplitDataset.
  data::Dataset dataset = data::MakeBenchmarkDataset("mooc", /*scale=*/0.5,
                                                     seed);
  std::printf("dataset: %s\n", dataset.Summary().c_str());

  // 2. Configure training. TrainConfig defaults follow the paper (§V-A4):
  //    64-dim embeddings, 4 layers, Adam, DegreeDrop edge pruning.
  train::TrainConfig config;
  config.seed = seed;
  config.max_epochs = 60;
  config.early_stop_patience = 15;
  config.edge_drop_ratio = 0.1;

  // 3. Train the paper's model.
  core::LayerGcn model;
  train::TrainOptions options;
  options.verbose = false;
  const train::TrainResult result =
      train::FitRecommender(&model, dataset, config, options);

  std::printf("trained %d epochs (best %d) in %.1fs\n", result.epochs_run,
              result.best_epoch, result.train_seconds);
  std::printf("test metrics: %s\n", result.test_metrics.ToString().c_str());

  // 4. Recommend: top-5 unseen items for the first three test users.
  eval::Evaluator evaluator(&dataset, {5});
  const auto& users = dataset.test_users;
  const int show = std::min<int>(3, static_cast<int>(users.size()));
  for (int k = 0; k < show; ++k) {
    const int32_t u = users[static_cast<size_t>(k)];
    tensor::Matrix scores = model.ScoreUsers({u});
    std::vector<bool> excluded(static_cast<size_t>(dataset.num_items), false);
    for (int32_t i : dataset.train_graph.user_items()[static_cast<size_t>(u)]) {
      excluded[static_cast<size_t>(i)] = true;
    }
    const std::vector<int32_t> top =
        eval::TopKIndices(scores.row(0), dataset.num_items, 5, &excluded);
    std::printf("user %d -> items:", u);
    for (int32_t i : top) std::printf(" %d", i);
    std::printf("\n");
  }
  return 0;
}
