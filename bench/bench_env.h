// Shared machine/build stamping for the BENCH_*.json writers.
//
// Every bench JSON should record the environment its numbers came from —
// a throughput figure without the core count, thread width, and build
// flavor behind it cannot be compared across runs. WriteBenchEnvJson()
// emits one "env" object with:
//
//   hardware_concurrency  std::thread::hardware_concurrency()
//   compute_pool_threads  worker count of the shared compute pool (the
//                         width parallel kernels actually run at)
//   compiler              __VERSION__
//   build                 "release" (NDEBUG) or "debug"
//   obs_enabled           the LAYERGCN_OBS_ENABLED compile-time switch
//   sanitizer             "address" / "thread" / "none" as detectable at
//                         compile time (UBSan exposes no macro; an
//                         ASan+UBSan build reports "address")
//
// Usage inside an existing fprintf-style writer, after the opening brace:
//
//   std::fprintf(out, "{\n");
//   bench::WriteBenchEnvJson(out);       // emits   "env": {...},\n
//   std::fprintf(out, "  \"bench\": ...);

#ifndef LAYERGCN_BENCH_BENCH_ENV_H_
#define LAYERGCN_BENCH_BENCH_ENV_H_

#include <cstdio>
#include <thread>

#include "obs/obs.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(__SANITIZE_ADDRESS__)
#define __SANITIZE_ADDRESS__ 1
#endif
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace layergcn::bench {

inline const char* BenchSanitizerName() {
#if defined(__SANITIZE_ADDRESS__)
  return "address";
#elif defined(__SANITIZE_THREAD__)
  return "thread";
#else
  return "none";
#endif
}

inline const char* BenchBuildName() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

/// Writes the `"env": {...},` member (two-space indented, trailing comma)
/// into an open JSON object.
inline void WriteBenchEnvJson(std::FILE* out) {
  std::fprintf(out,
               "  \"env\": {\"hardware_concurrency\": %d, "
               "\"compute_pool_threads\": %d, \"compiler\": \"%s\", "
               "\"build\": \"%s\", \"obs_enabled\": %s, "
               "\"sanitizer\": \"%s\"},\n",
               static_cast<int>(std::thread::hardware_concurrency()),
               util::parallel::ComputePool()->num_threads(), __VERSION__,
               BenchBuildName(), LAYERGCN_OBS_ENABLED ? "true" : "false",
               BenchSanitizerName());
}

}  // namespace layergcn::bench

#endif  // LAYERGCN_BENCH_BENCH_ENV_H_
