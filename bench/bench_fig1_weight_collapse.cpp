// Fig. 1 — the recommendation dilemma: learnable layer weights in LightGCN
// collapse onto the ego layer.
//
// Trains the learnable-layer-weight LightGCN variant (softmax-normalized
// weights over X⁰..X⁴) on the MOOC stand-in and prints the weight
// trajectory per epoch; the ego layer's (layer-0) weight should dominate.

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "models/lightgcn.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner(
      "Fig. 1: LightGCN learnable layer weights collapse (MOOC)", env);
  const data::Dataset ds =
      data::MakeBenchmarkDataset("mooc", env.Scale(0.5, 1.0), env.seed);
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig cfg;
  cfg.seed = env.seed;
  cfg.num_layers = 4;
  cfg.max_epochs = env.Epochs(120, 300);
  cfg.early_stop_patience = cfg.max_epochs;  // run the full trajectory
  cfg.edge_drop_ratio = 0.0;
  cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
  if (!env.full) {
    cfg.embedding_dim = 32;
    cfg.batch_size = 1024;
  }

  models::LightGcn model(models::LightGcnReadout::kLearnableWeights);
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  std::printf("trained %d epochs; test %s\n", r.epochs_run,
              r.test_metrics.ToString().c_str());

  const auto& history = model.layer_weight_history();
  util::TablePrinter table("Fig. 1 data: softmax layer weights per epoch");
  table.SetHeader({"epoch", "w(ego X0)", "w(X1)", "w(X2)", "w(X3)",
                   "w(X4)"});
  const size_t stride = history.size() > 20 ? history.size() / 20 : 1;
  for (size_t e = 0; e < history.size(); e += stride) {
    std::vector<std::string> row{std::to_string(e + 2)};  // recorded from 2
    for (double w : history[e]) row.push_back(util::TablePrinter::Num(w));
    table.AddRow(row);
  }
  if (!history.empty()) {
    std::vector<std::string> row{std::to_string(history.size() + 1)};
    for (double w : history.back()) row.push_back(util::TablePrinter::Num(w));
    table.AddRow(row);
  }
  table.Print();

  if (!history.empty()) {
    const auto& final_w = history.back();
    double max_hidden = 0;
    for (size_t l = 1; l < final_w.size(); ++l) {
      max_hidden = std::max(max_hidden, final_w[l]);
    }
    std::printf(
        "\nfinal ego-layer weight: %.4f, max hidden-layer weight: %.4f\n"
        "Shape check vs paper Fig. 1: the ego weight should rise well above\n"
        "the uniform 0.2 while hidden-layer weights decay.\n",
        final_w[0], max_hidden);
  }
  return 0;
}
