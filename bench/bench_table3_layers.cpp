// Table III — LayerGCN (4 layers) vs LightGCN with 1..4 layers on MOOC.
//
// Reproduces the comparison showing LightGCN peaking at a shallow depth
// (over-smoothing beyond it) while a 4-layer LayerGCN beats every LightGCN
// depth.

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "experiments/runner.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner(
      "Table III: accuracy vs #layers, LayerGCN vs LightGCN (MOOC)", env);
  const data::Dataset ds =
      data::MakeBenchmarkDataset("mooc", env.Scale(0.5, 1.0), env.seed);
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig base;
  base.seed = env.seed;
  base.max_epochs = env.Epochs(30, 200);
  base.early_stop_patience = env.full ? 50 : base.max_epochs;
  base.edge_drop_ratio = 0.1;
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
  }

  util::TablePrinter table("Table III [mooc]");
  table.SetHeader({"Model", "R@20", "R@50", "N@20", "N@50"});
  auto add_row = [&](const std::string& label,
                     const eval::RankingMetrics& m) {
    table.AddRow({label, util::TablePrinter::Num(m.recall.at(20)),
                  util::TablePrinter::Num(m.recall.at(50)),
                  util::TablePrinter::Num(m.ndcg.at(20)),
                  util::TablePrinter::Num(m.ndcg.at(50))});
  };

  {
    train::TrainConfig cfg = base;
    cfg.num_layers = 4;
    const auto row = experiments::RunModel("LayerGCN", ds, cfg);
    add_row("LayerGCN - 4 Layers", row.result.test_metrics);
  }
  for (int layers = 4; layers >= 1; --layers) {
    train::TrainConfig cfg = base;
    cfg.num_layers = layers;
    const auto row = experiments::RunModel("LightGCN", ds, cfg);
    add_row("LightGCN - " + std::to_string(layers) + " Layers",
            row.result.test_metrics);
  }
  table.Print();
  std::printf(
      "\nShape check vs paper Table III: the LayerGCN row should beat every\n"
      "LightGCN depth, and LightGCN should peak below 4 layers.\n");
  return 0;
}
