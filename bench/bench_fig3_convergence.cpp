// Fig. 3 — convergence of DegreeDrop vs DropEdge on MOOC.
//
// (a) Convergence epoch for dropout ratios 0.1..0.8 under both samplers.
//     Convergence epoch := the first epoch whose validation Recall@20
//     reaches 98% of the run's maximum (a saturation criterion that is
//     robust to late one-in-a-thousand upticks; the paper's "best epoch"
//     plays the same role under its early-stopping budget).
// (b) Epoch-mean training loss curves at ratio 0.7 for both samplers.

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "experiments/runner.h"
#include "util/table_printer.h"

using namespace layergcn;

namespace {

// First epoch whose validation score reaches `target` (last epoch if never).
int EpochToReach(const std::vector<std::pair<int, double>>& curve,
                 double target) {
  for (const auto& [epoch, score] : curve) {
    if (score >= target) return epoch;
  }
  return curve.empty() ? 0 : curve.back().first;
}

// Best validation score on the curve.
double CurveMax(const std::vector<std::pair<int, double>>& curve) {
  double best = 0;
  for (const auto& [epoch, score] : curve) best = std::max(best, score);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Fig. 3: convergence, DegreeDrop vs DropEdge (MOOC)",
                           env);
  const data::Dataset ds =
      data::MakeBenchmarkDataset("mooc", env.Scale(0.5, 1.0), env.seed);
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig base;
  base.seed = env.seed;
  base.max_epochs = env.Epochs(60, 300);
  base.early_stop_patience = base.max_epochs;  // record the full curve
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
  }

  // ---- (a) convergence epoch vs dropout ratio ----
  // Convergence epoch := first epoch whose validation R@20 reaches 95% of
  // the *shared* target (the lower of the two samplers' best scores), so
  // both samplers chase the same bar; averaged over two seeds to denoise.
  util::TablePrinter table_a(
      "Fig. 3(a) data: epochs to reach the shared validation target");
  table_a.SetHeader({"ratio", "DropEdge", "DegreeDrop"});
  double dropedge_total = 0, degreedrop_total = 0;
  const std::vector<double> ratios = env.full
                                         ? std::vector<double>{0.1, 0.2, 0.3,
                                                               0.4, 0.5, 0.6,
                                                               0.7, 0.8}
                                         : std::vector<double>{0.1, 0.3, 0.5,
                                                               0.7};
  const int num_seeds = env.full ? 3 : 2;
  for (double ratio : ratios) {
    double conv[2] = {0, 0};
    for (int s = 0; s < num_seeds; ++s) {
      std::vector<std::pair<int, double>> curves[2];
      int idx = 0;
      for (graph::EdgeDropKind kind : {graph::EdgeDropKind::kDropEdge,
                                       graph::EdgeDropKind::kDegreeDrop}) {
        train::TrainConfig cfg = base;
        cfg.seed = env.seed + static_cast<uint64_t>(s);
        cfg.edge_drop_kind = kind;
        cfg.edge_drop_ratio = ratio;
        const auto row = experiments::RunModel("LayerGCN", ds, cfg);
        curves[idx++] = row.result.valid_curve;
      }
      const double target =
          0.95 * std::min(CurveMax(curves[0]), CurveMax(curves[1]));
      conv[0] += EpochToReach(curves[0], target);
      conv[1] += EpochToReach(curves[1], target);
    }
    conv[0] /= num_seeds;
    conv[1] /= num_seeds;
    dropedge_total += conv[0];
    degreedrop_total += conv[1];
    table_a.AddRow({util::TablePrinter::Num(ratio, 1),
                    util::TablePrinter::Num(conv[0], 1),
                    util::TablePrinter::Num(conv[1], 1)});
    std::printf("  ratio %.1f done (DropEdge %.1f vs DegreeDrop %.1f)\n",
                ratio, conv[0], conv[1]);
    std::fflush(stdout);
  }
  table_a.Print();
  std::printf(
      "mean convergence epoch: DropEdge %.1f, DegreeDrop %.1f "
      "(reduction %.0f%%)\n",
      dropedge_total / ratios.size(), degreedrop_total / ratios.size(),
      100.0 * (1.0 - degreedrop_total / std::max(dropedge_total, 1.0)));

  // ---- (b) epoch-mean loss curves at ratio 0.7 ----
  util::TablePrinter table_b(
      "\nFig. 3(b) data: epoch-mean training loss, dropout ratio 0.7");
  table_b.SetHeader({"epoch", "DropEdge loss", "DegreeDrop loss"});
  std::vector<double> curves[2];
  int idx = 0;
  for (graph::EdgeDropKind kind : {graph::EdgeDropKind::kDropEdge,
                                   graph::EdgeDropKind::kDegreeDrop}) {
    train::TrainConfig cfg = base;
    cfg.edge_drop_kind = kind;
    cfg.edge_drop_ratio = 0.7;
    cfg.max_epochs = env.Epochs(40, 100);
    cfg.early_stop_patience = cfg.max_epochs;
    const auto row = experiments::RunModel("LayerGCN", ds, cfg);
    curves[idx++] = row.result.epoch_losses;
  }
  const size_t n = std::min(curves[0].size(), curves[1].size());
  const size_t stride = n > 25 ? n / 25 : 1;
  for (size_t e = 0; e < n; e += stride) {
    table_b.AddRow({std::to_string(e + 1),
                    util::TablePrinter::Num(curves[0][e], 5),
                    util::TablePrinter::Num(curves[1][e], 5)});
  }
  table_b.Print();

  double auc[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    for (size_t e = 0; e < n; ++e) auc[c] += curves[c][e];
  }
  std::printf(
      "\nmean epoch loss over the run: DropEdge %.5f, DegreeDrop %.5f\n"
      "Shape check vs paper Fig. 3: DegreeDrop should converge in fewer\n"
      "epochs on average and its loss curve should descend faster.\n",
      auc[0] / n, auc[1] / n);
  return 0;
}
