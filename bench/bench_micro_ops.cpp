// Microbenchmarks (google-benchmark) of the substrate kernels driving the
// experiments: SpMM graph convolution, the layer-refinement chain
// (cosine + row scaling), edge-dropout sampling, GEMM, BPR batch assembly,
// and top-K ranking — the pieces whose costs §IV-C analyzes
// (O(2LMT/B) propagation + O(LNT/B) refinement).

#include <benchmark/benchmark.h>

#include "core/api.h"
#include "models/lightgcn.h"
#include "tensor/ops.h"
#include "train/bpr_sampler.h"

using namespace layergcn;

namespace {

data::Dataset& BenchDataset() {
  static data::Dataset ds = data::MakeBenchmarkDataset("games", 0.5, 42);
  return ds;
}

void BM_SpMMGraphConvolution(benchmark::State& state) {
  const auto& ds = BenchDataset();
  const sparse::CsrMatrix adj = ds.train_graph.NormalizedAdjacency();
  const int64_t dim = state.range(0);
  tensor::Matrix x(ds.train_graph.num_nodes(), dim);
  util::Rng rng(1);
  x.UniformInit(&rng, -1.f, 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adj.Multiply(x));
  }
  state.SetItemsProcessed(state.iterations() * adj.nnz() * dim);
}
BENCHMARK(BM_SpMMGraphConvolution)->Arg(16)->Arg(64)->Arg(128);

void BM_LayerRefinement(benchmark::State& state) {
  // cos(H, X0) + row scaling — the extra O(NT) cost LayerGCN adds per layer.
  const auto& ds = BenchDataset();
  const int64_t dim = state.range(0);
  tensor::Matrix h(ds.train_graph.num_nodes(), dim);
  tensor::Matrix x0(ds.train_graph.num_nodes(), dim);
  util::Rng rng(2);
  h.UniformInit(&rng, -1.f, 1.f);
  x0.UniformInit(&rng, -1.f, 1.f);
  for (auto _ : state) {
    tensor::Matrix a = tensor::RowwiseCosine(h, x0, 1e-8f);
    benchmark::DoNotOptimize(
        tensor::ScaleRows(h, tensor::AddScalar(a, 1e-8f)));
  }
  state.SetItemsProcessed(state.iterations() *
                          ds.train_graph.num_nodes() * dim);
}
BENCHMARK(BM_LayerRefinement)->Arg(16)->Arg(64)->Arg(128);

void BM_DegreeDropSampling(benchmark::State& state) {
  const auto& ds = BenchDataset();
  graph::EdgeDropout drop(&ds.train_graph, graph::EdgeDropKind::kDegreeDrop,
                          static_cast<double>(state.range(0)) / 10.0);
  util::Rng rng(3);
  int epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(drop.SampleKeptEdges(&rng, epoch++));
  }
  state.SetItemsProcessed(state.iterations() * ds.train_graph.num_edges());
}
BENCHMARK(BM_DegreeDropSampling)->Arg(1)->Arg(5);

void BM_DropEdgeSampling(benchmark::State& state) {
  const auto& ds = BenchDataset();
  graph::EdgeDropout drop(&ds.train_graph, graph::EdgeDropKind::kDropEdge,
                          static_cast<double>(state.range(0)) / 10.0);
  util::Rng rng(4);
  int epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(drop.SampleKeptEdges(&rng, epoch++));
  }
  state.SetItemsProcessed(state.iterations() * ds.train_graph.num_edges());
}
BENCHMARK(BM_DropEdgeSampling)->Arg(1)->Arg(5);

void BM_AdjacencyRebuild(benchmark::State& state) {
  // Per-epoch cost of re-normalizing the pruned adjacency.
  const auto& ds = BenchDataset();
  graph::EdgeDropout drop(&ds.train_graph, graph::EdgeDropKind::kDegreeDrop,
                          0.1);
  util::Rng rng(5);
  int epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(drop.SampleAdjacency(&rng, epoch++));
  }
}
BENCHMARK(BM_AdjacencyRebuild);

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(6);
  tensor::Matrix a(n, n), b(n, n);
  a.UniformInit(&rng, -1.f, 1.f);
  b.UniformInit(&rng, -1.f, 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_BprBatchSampling(benchmark::State& state) {
  const auto& ds = BenchDataset();
  train::BprSampler sampler(&ds.train_graph);
  util::Rng rng(7);
  sampler.BeginEpoch(&rng);
  train::BprBatch batch;
  for (auto _ : state) {
    if (!sampler.NextBatch(state.range(0), &rng, &batch)) {
      sampler.BeginEpoch(&rng);
    }
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BprBatchSampling)->Arg(512)->Arg(2048);

void BM_TopKRanking(benchmark::State& state) {
  const auto& ds = BenchDataset();
  util::Rng rng(8);
  tensor::Matrix scores(1, ds.num_items);
  scores.UniformInit(&rng, 0.f, 1.f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::TopKIndices(scores.row(0), ds.num_items,
                          static_cast<int>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * ds.num_items);
}
BENCHMARK(BM_TopKRanking)->Arg(10)->Arg(50);

void BM_LayerGcnTrainEpoch(benchmark::State& state) {
  // One full training epoch of the paper's model on the bench dataset.
  const auto& ds = BenchDataset();
  train::TrainConfig cfg;
  cfg.embedding_dim = 32;
  cfg.num_layers = 4;
  cfg.batch_size = 2048;
  core::LayerGcn model;
  util::Rng rng(9);
  model.Init(ds, cfg, &rng);
  int epoch = 0;
  for (auto _ : state) {
    model.BeginEpoch(++epoch, &rng);
    benchmark::DoNotOptimize(model.TrainEpoch(&rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * ds.num_train());
}
BENCHMARK(BM_LayerGcnTrainEpoch)->Unit(benchmark::kMillisecond);

void BM_LightGcnTrainEpoch(benchmark::State& state) {
  // Baseline cost comparison (§IV-C: same complexity magnitude).
  const auto& ds = BenchDataset();
  train::TrainConfig cfg;
  cfg.embedding_dim = 32;
  cfg.num_layers = 4;
  cfg.batch_size = 2048;
  models::LightGcn model;
  util::Rng rng(10);
  model.Init(ds, cfg, &rng);
  int epoch = 0;
  for (auto _ : state) {
    model.BeginEpoch(++epoch, &rng);
    benchmark::DoNotOptimize(model.TrainEpoch(&rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * ds.num_train());
}
BENCHMARK(BM_LightGcnTrainEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
