// Benchmark: fused blocked score-and-rank kernel vs. the seed's
// materialize-then-rank evaluation pipeline.
//
// The baseline below is a faithful local replica of the pre-fusion
// evaluator: per user chunk it materializes the full |chunk| x |items|
// score matrix with the naive row x row inner-product loop (double
// accumulator, exactly the old tensor::MatMul NT branch), builds a fresh
// vector<bool> exclusion mask per user, selects the top-K with
// eval::TopKIndices, and rescans the ranked list once per (user, K) pair
// via RecallAtK / NdcgAtK. The fused path is the production
// Evaluator::Evaluate(user_emb, item_emb, split) route.
//
// Emits BENCH_fused_rank.json with both timings, the speedup, and the
// max absolute metric difference (acceptance: >= 3x and <= 1e-6 at the
// --full 50k x 20k size).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench/bench_env.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "experiments/env.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace layergcn;

namespace {

// The seed's NT-layout MatMul: one double accumulator per output element,
// no blocking, no transposed copy of `b`.
void NaiveScoresNT(const tensor::Matrix& a, const tensor::Matrix& b,
                   tensor::Matrix* c) {
  const int64_t m = a.rows(), n = b.rows(), kk = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a.row(i);
    float* ci = c->row(i);
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      double acc = 0.0;
      for (int64_t p = 0; p < kk; ++p) acc += ai[p] * bj[p];
      ci[j] = static_cast<float>(acc);
    }
  }
}

// The seed's evaluation pipeline, chunk by chunk.
eval::RankingMetrics NaiveEvaluate(const data::Dataset& ds,
                                   const tensor::Matrix& user_emb,
                                   const tensor::Matrix& item_emb,
                                   const std::vector<int>& ks,
                                   int64_t chunk_size) {
  const std::vector<int32_t>& users = ds.test_users;
  const auto& truth = ds.test_items;
  const auto& adjacency = ds.train_graph.user_items();
  int max_k = 0;
  for (int k : ks) max_k = std::max(max_k, k);

  std::vector<double> recall(ks.size(), 0.0), ndcg(ks.size(), 0.0);
  int64_t counted = 0;
  tensor::Matrix scores(chunk_size, ds.num_items);
  for (size_t lo = 0; lo < users.size(); lo += chunk_size) {
    const size_t hi =
        std::min(users.size(), lo + static_cast<size_t>(chunk_size));
    std::vector<int32_t> chunk(users.begin() + lo, users.begin() + hi);
    tensor::Matrix block(static_cast<int64_t>(chunk.size()), user_emb.cols());
    for (size_t r = 0; r < chunk.size(); ++r) {
      std::copy(user_emb.row(chunk[r]),
                user_emb.row(chunk[r]) + user_emb.cols(), block.row(r));
    }
    NaiveScoresNT(block, item_emb, &scores);
    for (size_t r = 0; r < chunk.size(); ++r) {
      const int32_t u = chunk[r];
      std::vector<bool> excluded(static_cast<size_t>(ds.num_items), false);
      for (int32_t item : adjacency[static_cast<size_t>(u)]) {
        excluded[static_cast<size_t>(item)] = true;
      }
      const std::vector<int32_t> ranked = eval::TopKIndices(
          scores.row(static_cast<int64_t>(r)), ds.num_items, max_k,
          &excluded);
      const auto& gt = truth[static_cast<size_t>(u)];
      for (size_t ki = 0; ki < ks.size(); ++ki) {
        recall[ki] += eval::RecallAtK(ranked, gt, ks[ki]);
        ndcg[ki] += eval::NdcgAtK(ranked, gt, ks[ki]);
      }
      ++counted;
    }
  }
  eval::RankingMetrics out;
  for (size_t ki = 0; ki < ks.size(); ++ki) {
    out.recall[ks[ki]] = counted > 0 ? recall[ki] / counted : 0.0;
    out.ndcg[ks[ki]] = counted > 0 ? ndcg[ki] / counted : 0.0;
  }
  return out;
}

double MaxMetricDiff(const eval::RankingMetrics& a,
                     const eval::RankingMetrics& b,
                     const std::vector<int>& ks) {
  double diff = 0.0;
  for (int k : ks) {
    diff = std::max(diff, std::abs(a.recall.at(k) - b.recall.at(k)));
    diff = std::max(diff, std::abs(a.ndcg.at(k) - b.ndcg.at(k)));
  }
  return diff;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Fused score-and-rank kernel vs. seed pipeline",
                           env);

  // --full reproduces the acceptance size (50k users x 20k items); the fast
  // profile shrinks proportionally so the bench stays interactive on a
  // small box.
  data::SyntheticConfig cfg;
  cfg.name = "fused-bench";
  const double s = env.Scale(0.08, 1.0);
  cfg.num_users = static_cast<int32_t>(50000 * s);
  cfg.num_items = static_cast<int32_t>(20000 * s);
  cfg.num_interactions = static_cast<int64_t>(1500000 * s);
  cfg.num_clusters = 32;
  const data::Dataset ds = data::ChronologicalSplitDataset(
      cfg.name, cfg.num_users, cfg.num_items,
      data::GenerateInteractions(cfg, env.seed));
  std::printf("%s\n", ds.Summary().c_str());

  const int64_t dim = 64;
  util::Rng rng(env.seed);
  tensor::Matrix user_emb(ds.num_users, dim), item_emb(ds.num_items, dim);
  for (int64_t i = 0; i < user_emb.size(); ++i) {
    user_emb.data()[i] = rng.NextFloat() - 0.5f;
  }
  for (int64_t i = 0; i < item_emb.size(); ++i) {
    item_emb.data()[i] = rng.NextFloat() - 0.5f;
  }

  const std::vector<int> ks{10, 20, 50};
  const eval::Evaluator evaluator(&ds, ks);

  std::printf("ranking %zu test users over %d items (dim %ld)...\n",
              ds.test_users.size(), ds.num_items, static_cast<long>(dim));

  util::Timer naive_timer;
  const eval::RankingMetrics naive =
      NaiveEvaluate(ds, user_emb, item_emb, ks, /*chunk_size=*/512);
  const double naive_s = naive_timer.ElapsedSeconds();
  std::printf("  naive  %8.3fs  %s\n", naive_s, naive.ToString().c_str());

  util::Timer fused_timer;
  const eval::RankingMetrics fused =
      evaluator.Evaluate(user_emb, item_emb, eval::EvalSplit::kTest);
  const double fused_s = fused_timer.ElapsedSeconds();
  std::printf("  fused  %8.3fs  %s\n", fused_s, fused.ToString().c_str());

  const double diff = MaxMetricDiff(naive, fused, ks);
  const double speedup = fused_s > 0.0 ? naive_s / fused_s : 0.0;
  const double users = static_cast<double>(ds.test_users.size());
  std::printf("speedup %.2fx, max |metric diff| %.3g\n", speedup, diff);

  FILE* out = std::fopen("BENCH_fused_rank.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fused_rank.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"fused_rank\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"test_users\": %zu,\n"
               "  \"embedding_dim\": %ld,\n"
               "  \"ks\": [10, 20, 50],\n"
               "  \"naive_seconds\": %.6f,\n"
               "  \"fused_seconds\": %.6f,\n"
               "  \"speedup\": %.3f,\n"
               "  \"naive_users_per_second\": %.1f,\n"
               "  \"fused_users_per_second\": %.1f,\n"
               "  \"max_metric_abs_diff\": %.3g\n"
               "}\n",
               ds.num_users, ds.num_items, ds.test_users.size(),
               static_cast<long>(dim), naive_s, fused_s, speedup,
               naive_s > 0.0 ? users / naive_s : 0.0,
               fused_s > 0.0 ? users / fused_s : 0.0, diff);
  std::fclose(out);
  std::printf("wrote BENCH_fused_rank.json\n");

  const bool ok = speedup >= 3.0 && diff <= 1e-6;
  std::printf("acceptance (>=3x, <=1e-6): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
