// Fig. 5 — per-layer similarity weights of LayerGCN during training.
//
// Records the mean cosine similarity a^l between each refined hidden layer
// and the ego layer at every epoch's evaluation. Unlike LightGCN's
// learnable weights (Fig. 1), no single layer should dominate, and
// even-indexed layers (same node type as the target) should weigh more
// than the preceding odd layers.

#include <cmath>
#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Fig. 5: LayerGCN layer similarities (MOOC)", env);
  const data::Dataset ds =
      data::MakeBenchmarkDataset("mooc", env.Scale(0.5, 1.0), env.seed);
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig cfg;
  cfg.seed = env.seed;
  cfg.num_layers = 4;
  cfg.max_epochs = env.Epochs(30, 150);
  cfg.early_stop_patience = cfg.max_epochs;
  cfg.edge_drop_ratio = 0.1;
  if (!env.full) {
    cfg.embedding_dim = 32;
    cfg.batch_size = 1024;
  }

  core::LayerGcnOptions options;
  options.record_layer_similarities = true;
  core::LayerGcn model(options);
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  std::printf("trained %d epochs; test %s\n", r.epochs_run,
              r.test_metrics.ToString().c_str());

  const auto& history = model.layer_similarity_history();
  util::TablePrinter table(
      "Fig. 5 data: mean cos(X^l, X^0) per layer at each epoch");
  table.SetHeader({"epoch", "layer1", "layer2", "layer3", "layer4"});
  const size_t stride = history.size() > 20 ? history.size() / 20 : 1;
  for (size_t e = 0; e < history.size(); e += stride) {
    std::vector<std::string> row{std::to_string(e + 1)};
    for (double a : history[e]) row.push_back(util::TablePrinter::Num(a));
    while (row.size() < 5) row.push_back("-");
    table.AddRow(row);
  }
  table.Print();

  if (!history.empty()) {
    const auto& last = history.back();
    std::printf("\nfinal similarities:");
    for (size_t l = 0; l < last.size(); ++l) {
      std::printf(" layer%zu=%.4f", l + 1, last[l]);
    }
    double max_w = 0, sum = 0;
    for (double a : last) {
      max_w = std::max(max_w, std::fabs(a));
      sum += std::fabs(a);
    }
    std::printf(
        "\nmax |weight| share: %.2f (1.0 would mean one layer dominates)\n"
        "Shape check vs paper Fig. 5: weights spread across layers (no\n"
        "ego-style collapse) and even layers (2, 4) >= their preceding odd\n"
        "layers (same-type nodes in the bipartite graph).\n",
        sum > 0 ? max_w / sum : 0.0);
  }
  return 0;
}
