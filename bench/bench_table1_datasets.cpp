// Table I — statistics of the experimented datasets.
//
// Prints the same columns as the paper (# Users, # Items, # Interactions,
// Sparsity) for the four synthetic stand-ins, plus the paper's original
// numbers for side-by-side comparison.

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Table I: statistics of the experimented datasets",
                           env);
  const double scale = env.Scale(0.5, 1.0);

  util::TablePrinter table("Synthetic stand-ins (this reproduction)");
  table.SetHeader({"Datasets", "# Users", "# Items", "# Interactions",
                   "Sparsity", "mean item degree"});
  for (const std::string& name : data::BenchmarkDatasetNames()) {
    const data::Dataset ds = data::MakeBenchmarkDataset(name, scale, env.seed);
    double item_degree_sum = 0;
    for (int32_t d : ds.train_graph.item_degrees()) item_degree_sum += d;
    table.AddRow({ds.name, std::to_string(ds.num_users),
                  std::to_string(ds.num_items),
                  std::to_string(ds.num_interactions()),
                  util::TablePrinter::Num(ds.SparsityPercent(), 4) + "%",
                  util::TablePrinter::Num(
                      item_degree_sum / ds.num_items, 1)});
  }
  table.Print();

  util::TablePrinter paper("Paper's original datasets (for reference)");
  paper.SetHeader({"Datasets", "# Users", "# Items", "# Interactions",
                   "Sparsity"});
  paper.AddRow({"MOOC", "82,535", "1,302", "458,453", "99.5734%"});
  paper.AddRow({"Games", "50,677", "16,897", "454,529", "99.9469%"});
  paper.AddRow({"Food", "115,144", "39,688", "1,025,169", "99.9776%"});
  paper.AddRow({"Yelp", "99,010", "56,441", "2,762,088", "99.9506%"});
  paper.Print();

  std::printf(
      "\nShape checks vs Table I: MOOC user/item ratio >> 1, Yelp has the\n"
      "largest item universe, Food > Games in interactions, all sparsities\n"
      ">= 90%%.\n");
  return 0;
}
