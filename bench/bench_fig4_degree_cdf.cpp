// Fig. 4 — cumulative distribution of item degrees, MOOC vs Yelp.
//
// Prints P(√degree <= x) over a grid of x (the paper plots the square root
// of the degree on the x-axis, matching the √d terms of Eq. 5), plus an
// ASCII rendering of both CDFs.

#include <cmath>
#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Fig. 4: item degree CDFs, MOOC vs Yelp", env);
  const double scale = env.Scale(0.5, 1.0);

  const data::Dataset mooc =
      data::MakeBenchmarkDataset("mooc", scale, env.seed);
  const data::Dataset yelp =
      data::MakeBenchmarkDataset("yelp", scale, env.seed);
  std::printf("%s\n%s\n", mooc.Summary().c_str(), yelp.Summary().c_str());

  // Evaluate at sqrt-degree thresholds 1..20 (degree 1..400).
  std::vector<double> sqrt_grid;
  for (int x = 1; x <= 20; ++x) sqrt_grid.push_back(x);
  std::vector<double> deg_grid;
  for (double x : sqrt_grid) deg_grid.push_back(x * x);
  const std::vector<double> mooc_cdf =
      mooc.train_graph.ItemDegreeCdf(deg_grid);
  const std::vector<double> yelp_cdf =
      yelp.train_graph.ItemDegreeCdf(deg_grid);

  util::TablePrinter table("Fig. 4 data: P(sqrt(item degree) <= x)");
  table.SetHeader({"sqrt(degree)", "MOOC", "Yelp", "MOOC bar", "Yelp bar"});
  auto bar = [](double v) { return std::string(
      static_cast<size_t>(v * 30 + 0.5), '#'); };
  for (size_t i = 0; i < sqrt_grid.size(); ++i) {
    table.AddRow({util::TablePrinter::Num(sqrt_grid[i], 0),
                  util::TablePrinter::Num(mooc_cdf[i], 3),
                  util::TablePrinter::Num(yelp_cdf[i], 3), bar(mooc_cdf[i]),
                  bar(yelp_cdf[i])});
  }
  table.Print();

  // Summary statistics mirroring the paper's reading of the figure.
  const std::vector<double> top20 = mooc.train_graph.ItemDegreeCdf(
      {static_cast<double>(mooc.num_interactions()) /
       std::max(1, mooc.num_items) * 2.0});
  std::printf(
      "\nYelp P(sqrt(d) <= 3) = %.2f vs MOOC %.2f\n"
      "Shape check vs paper Fig. 4: Yelp's CDF saturates almost immediately\n"
      "(~90%% of items with rooted degree < ~10 in the paper), while MOOC's\n"
      "rises slowly because items accumulate high degrees.\n",
      yelp.train_graph.ItemDegreeCdf({9.0})[0],
      mooc.train_graph.ItemDegreeCdf({9.0})[0]);
  (void)top20;
  return 0;
}
