// Benchmark: goodput under sustained overload, with and without the
// adaptive overload controls.
//
// Setup: a synthetic snapshot (random embeddings + strided histories,
// int8/bf16 copies and an IVF index included so every brownout rung is
// real), served through RecommendService::Submit from paced open-loop
// clients. A closed-loop warmup measures the service's capacity; both
// overload passes then offer 3x that rate so the service cannot keep up
// and *something* must give. Every request carries a deadline budget and
// a priority class (50% interactive / 30% batch / 20% background).
//
//   static    the pre-overload-control configuration: concurrency bound
//             by the static queue_capacity, no limiter, no brownout.
//             Admitted requests thrash the shared compute pool, latency
//             blows through the budget, and goodput collapses even
//             though the CPUs are saturated.
//   adaptive  AIMD limiter + brownout ladder + deadline-aware dequeue.
//             Concurrency squeezes to what the pool can finish inside
//             the budget, excess load is shed at the door (batch first),
//             and sustained SLO breach steps scoring down the
//             exact -> ivf -> quantized -> cache/popularity ladder.
//
// Goodput = complete (non-partial) answers whose end-to-end latency --
// submit to future resolution, measured client-side -- beat the
// request's own budget, per second of wall clock.
//
// Emits BENCH_overload.json. Acceptance (exit 2 on failure):
//   - every response in both passes is answered or a structured shed/
//     expiry: answered + shed + expired == offered, nothing unstructured
//   - interactive shed rate < batch shed rate in the adaptive pass
//     (strict priority actually protected the interactive class)
//   - adaptive goodput >= 1.5x static goodput (skipped under
//     LAYERGCN_BENCH_QUALITY_ONLY=1 -- sanitizer builds distort the
//     timing-dependent gate; the structural gates still hold there)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_env.h"
#include "experiments/env.h"
#include "obs/obs.h"
#include "serve/overload.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

using namespace layergcn;

namespace {

constexpr int kClients = 4;

double Percentile(std::vector<uint64_t>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return static_cast<double>((*latencies)[idx]);
}

serve::Priority MixPriority(int64_t i) {
  const int64_t r = i % 10;
  if (r < 5) return serve::Priority::kInteractive;
  if (r < 8) return serve::Priority::kBatch;
  return serve::Priority::kBackground;
}

struct CapacityResult {
  double req_per_sec = 0.0;
  double mean_us = 0.0;
};

// Closed-loop calibration: kClients threads issue synchronous requests
// back-to-back. The achieved rate is (roughly) the service's capacity on
// this machine and build — the overload passes offer a multiple of it,
// so the bench self-calibrates across hardware and sanitizers.
CapacityResult MeasureCapacity(serve::SnapshotStore* store, int32_t num_users,
                               int64_t per_client, uint64_t seed) {
  serve::RecommendServiceOptions opt;
  opt.score_cache_capacity = 0;
  serve::RecommendService service(store, opt);

  std::vector<uint64_t> sums(kClients, 0);
  std::vector<int64_t> counts(kClients, 0);
  const uint64_t t0 = obs::NowMicros();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(seed + static_cast<uint64_t>(c) * 7919);
      for (int64_t i = 0; i < per_client; ++i) {
        serve::RecommendRequest req;
        req.user_id = static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(num_users)));
        req.k = 20;
        const uint64_t s = obs::NowMicros();
        if (service.Recommend(req).ok()) {
          sums[static_cast<size_t>(c)] += obs::NowMicros() - s;
          ++counts[static_cast<size_t>(c)];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed_s = static_cast<double>(obs::NowMicros() - t0) * 1e-6;

  CapacityResult out;
  uint64_t sum = 0;
  int64_t n = 0;
  for (int c = 0; c < kClients; ++c) {
    sum += sums[static_cast<size_t>(c)];
    n += counts[static_cast<size_t>(c)];
  }
  out.req_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(n) / elapsed_s : 0.0;
  out.mean_us = n > 0 ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
  return out;
}

struct OverloadPass {
  std::string name;
  bool adaptive = false;
  int64_t offered = 0;
  int64_t offered_by_class[serve::kNumPriorities] = {0, 0, 0};
  int64_t shed_by_class[serve::kNumPriorities] = {0, 0, 0};
  int64_t answered = 0;   // ok status: complete, partial, degraded, cached
  int64_t partial = 0;
  int64_t degraded = 0;
  int64_t browned_out = 0;  // answered at a brownout rung below exact
  int64_t shed = 0;         // structured ResourceExhausted
  int64_t expired = 0;      // structured DeadlineExceeded
  int64_t unstructured = 0; // anything else — acceptance failure
  int64_t goodput = 0;      // complete answers within their own budget
  double duration_s = 0.0;
  double goodput_per_sec = 0.0;
  double p50_us = 0.0;  // end-to-end latency of the goodput set
  double p99_us = 0.0;
  int64_t final_limit = 0;
  int64_t brownout_transitions = 0;
};

// One submitted request riding from the paced submitter to the harvester.
struct InFlight {
  std::future<util::StatusOr<serve::RecommendResponse>> future;
  uint64_t submit_us = 0;
  uint64_t budget_us = 0;
  serve::Priority priority = serve::Priority::kInteractive;
};

// Per-client tallies the harvester accumulates while the submitter paces.
struct ClientTally {
  int64_t offered_by_class[serve::kNumPriorities] = {0, 0, 0};
  int64_t shed_by_class[serve::kNumPriorities] = {0, 0, 0};
  int64_t answered = 0, partial = 0, degraded = 0, browned_out = 0;
  int64_t shed = 0, expired = 0, unstructured = 0, goodput = 0;
  std::vector<uint64_t> good_latencies;
};

// Open-loop overload: each of kClients submitter threads offers requests
// at a fixed interval regardless of how the service is coping (that is
// the point — demand does not politely back off), while a paired
// harvester resolves the futures in submission order and classifies the
// outcome. End-to-end latency is measured client-side at resolution.
OverloadPass RunOverloadPass(serve::SnapshotStore* store,
                             const std::string& name, bool adaptive,
                             int32_t num_users, double offered_per_sec,
                             double duration_s, uint64_t budget_us,
                             uint64_t seed) {
  serve::RecommendServiceOptions opt;
  opt.score_cache_capacity = 0;
  opt.queue_capacity = 64;
  if (adaptive) {
    opt.overload.adaptive = true;
    opt.overload.limiter.initial_limit = 8;
    opt.overload.limiter.min_limit = 1;
    opt.overload.limiter.max_limit = 64;
    opt.overload.limiter.latency_target_us = budget_us / 2;
    opt.overload.limiter.decrease_cooldown_us = 10'000;
    opt.overload.limiter.increase_every = 8;
    opt.overload.brownout.enabled = true;
    opt.overload.brownout.step_down_hold_us = 100'000;
    opt.overload.brownout.step_up_hold_us = 500'000;
    opt.stats.slo.latency_target_us = budget_us;
    opt.stats.slo.latency_objective = 0.9;
    opt.stats.slo.availability_objective = 0.9;
    opt.stats.slo.short_window_us = 200'000;
    opt.stats.slo.long_window_us = 1'000'000;
  }
  serve::RecommendService service(store, opt);

  const int64_t per_client = std::max<int64_t>(
      1, static_cast<int64_t>(offered_per_sec * duration_s /
                              static_cast<double>(kClients)));
  const auto interval = std::chrono::nanoseconds(static_cast<int64_t>(
      static_cast<double>(kClients) * 1e9 / offered_per_sec));

  std::vector<ClientTally> tallies(kClients);
  const uint64_t pass_t0 = obs::NowMicros();
  std::vector<std::thread> submitters, harvesters;
  std::vector<std::deque<InFlight>> channels(kClients);
  std::vector<std::mutex> channel_mu(kClients);
  std::vector<std::condition_variable> channel_cv(kClients);
  std::vector<bool> channel_done(kClients, false);

  for (int c = 0; c < kClients; ++c) {
    submitters.emplace_back([&, c] {
      util::Rng rng(seed + static_cast<uint64_t>(c) * 104729);
      const auto start = std::chrono::steady_clock::now();
      for (int64_t i = 0; i < per_client; ++i) {
        std::this_thread::sleep_until(start + interval * i);
        serve::RecommendRequest req;
        req.user_id = static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(num_users)));
        req.k = 20;
        req.budget_us = budget_us;
        req.priority = MixPriority(i + c);
        InFlight f;
        f.submit_us = obs::NowMicros();
        f.budget_us = budget_us;
        f.priority = req.priority;
        f.future = service.Submit(req);
        {
          std::lock_guard<std::mutex> lock(channel_mu[static_cast<size_t>(c)]);
          channels[static_cast<size_t>(c)].push_back(std::move(f));
        }
        channel_cv[static_cast<size_t>(c)].notify_one();
      }
      {
        std::lock_guard<std::mutex> lock(channel_mu[static_cast<size_t>(c)]);
        channel_done[static_cast<size_t>(c)] = true;
      }
      channel_cv[static_cast<size_t>(c)].notify_one();
    });
    harvesters.emplace_back([&, c] {
      ClientTally& mine = tallies[static_cast<size_t>(c)];
      for (;;) {
        InFlight f;
        {
          std::unique_lock<std::mutex> lock(
              channel_mu[static_cast<size_t>(c)]);
          channel_cv[static_cast<size_t>(c)].wait(lock, [&] {
            return !channels[static_cast<size_t>(c)].empty() ||
                   channel_done[static_cast<size_t>(c)];
          });
          if (channels[static_cast<size_t>(c)].empty()) break;
          f = std::move(channels[static_cast<size_t>(c)].front());
          channels[static_cast<size_t>(c)].pop_front();
        }
        const util::StatusOr<serve::RecommendResponse> r = f.future.get();
        const uint64_t done_us = obs::NowMicros();
        ++mine.offered_by_class[static_cast<int>(f.priority)];
        if (r.ok()) {
          ++mine.answered;
          if (r.value().degraded) ++mine.degraded;
          if (r.value().brownout != serve::BrownoutLevel::kNone) {
            ++mine.browned_out;
          }
          if (r.value().partial) {
            ++mine.partial;
          } else {
            const uint64_t e2e =
                done_us > f.submit_us ? done_us - f.submit_us : 0;
            if (e2e <= f.budget_us) {
              ++mine.goodput;
              mine.good_latencies.push_back(e2e);
            }
          }
        } else if (r.status().code() ==
                   util::StatusCode::kResourceExhausted) {
          ++mine.shed;
          ++mine.shed_by_class[static_cast<int>(f.priority)];
        } else if (r.status().code() ==
                   util::StatusCode::kDeadlineExceeded) {
          ++mine.expired;
        } else {
          ++mine.unstructured;
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (std::thread& t : harvesters) t.join();

  OverloadPass out;
  out.name = name;
  out.adaptive = adaptive;
  out.duration_s = static_cast<double>(obs::NowMicros() - pass_t0) * 1e-6;
  std::vector<uint64_t> good;
  for (const ClientTally& t : tallies) {
    for (int p = 0; p < serve::kNumPriorities; ++p) {
      out.offered_by_class[p] += t.offered_by_class[p];
      out.shed_by_class[p] += t.shed_by_class[p];
      out.offered += t.offered_by_class[p];
    }
    out.answered += t.answered;
    out.partial += t.partial;
    out.degraded += t.degraded;
    out.browned_out += t.browned_out;
    out.shed += t.shed;
    out.expired += t.expired;
    out.unstructured += t.unstructured;
    out.goodput += t.goodput;
    good.insert(good.end(), t.good_latencies.begin(), t.good_latencies.end());
  }
  out.goodput_per_sec = out.duration_s > 0.0
                            ? static_cast<double>(out.goodput) / out.duration_s
                            : 0.0;
  out.p50_us = Percentile(&good, 0.50);
  out.p99_us = Percentile(&good, 0.99);
  const serve::OverloadState state = service.overload_state();
  out.final_limit = state.limit;
  out.brownout_transitions = state.brownout_transitions;
  return out;
}

double ShedRate(const OverloadPass& p, serve::Priority cls) {
  const int64_t offered = p.offered_by_class[static_cast<int>(cls)];
  if (offered <= 0) return 0.0;
  return static_cast<double>(p.shed_by_class[static_cast<int>(cls)]) /
         static_cast<double>(offered);
}

void PrintPass(const OverloadPass& p, uint64_t budget_us) {
  std::printf(
      "%-8s  offered %ld over %.2fs  budget %luus\n"
      "          answered %ld (partial %ld, degraded %ld, browned-out %ld), "
      "shed %ld, expired %ld, unstructured %ld\n"
      "          goodput %ld (%.0f/s)  p50 %7.0fus  p99 %7.0fus\n"
      "          shed rate interactive %.3f  batch %.3f  background %.3f\n"
      "          final limit %ld, brownout transitions %ld\n",
      p.name.c_str(), static_cast<long>(p.offered), p.duration_s,
      static_cast<unsigned long>(budget_us), static_cast<long>(p.answered),
      static_cast<long>(p.partial), static_cast<long>(p.degraded),
      static_cast<long>(p.browned_out), static_cast<long>(p.shed),
      static_cast<long>(p.expired), static_cast<long>(p.unstructured),
      static_cast<long>(p.goodput), p.goodput_per_sec, p.p50_us, p.p99_us,
      ShedRate(p, serve::Priority::kInteractive),
      ShedRate(p, serve::Priority::kBatch),
      ShedRate(p, serve::Priority::kBackground),
      static_cast<long>(p.final_limit),
      static_cast<long>(p.brownout_transitions));
}

void WritePassJson(FILE* out, const OverloadPass& p, bool last) {
  std::fprintf(
      out,
      "    {\"pass\": \"%s\", \"adaptive\": %s, \"offered\": %ld, "
      "\"duration_s\": %.3f, \"answered\": %ld, \"partial\": %ld, "
      "\"degraded\": %ld, \"browned_out\": %ld, \"shed\": %ld, "
      "\"expired\": %ld, \"unstructured\": %ld, \"goodput\": %ld, "
      "\"goodput_per_sec\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"shed_rate_interactive\": %.4f, \"shed_rate_batch\": %.4f, "
      "\"shed_rate_background\": %.4f, \"final_limit\": %ld, "
      "\"brownout_transitions\": %ld}%s\n",
      p.name.c_str(), p.adaptive ? "true" : "false",
      static_cast<long>(p.offered), p.duration_s,
      static_cast<long>(p.answered), static_cast<long>(p.partial),
      static_cast<long>(p.degraded), static_cast<long>(p.browned_out),
      static_cast<long>(p.shed), static_cast<long>(p.expired),
      static_cast<long>(p.unstructured), static_cast<long>(p.goodput),
      p.goodput_per_sec, p.p50_us, p.p99_us,
      ShedRate(p, serve::Priority::kInteractive),
      ShedRate(p, serve::Priority::kBatch),
      ShedRate(p, serve::Priority::kBackground),
      static_cast<long>(p.final_limit),
      static_cast<long>(p.brownout_transitions), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Goodput under sustained overload", env);
  obs::SetEnabled(true);
  util::fault::DisarmAll();

  const double s = env.Scale(0.25, 1.0);
  const int32_t num_users = static_cast<int32_t>(4000 * s);
  const int32_t num_items = static_cast<int32_t>(8000 * s);
  const int64_t dim = 64;

  train::ServingExport ex;
  ex.version = 1;
  ex.user_emb = tensor::Matrix(num_users, dim);
  ex.item_emb = tensor::Matrix(num_items, dim);
  util::Rng rng(env.seed);
  ex.user_emb.UniformInit(&rng, -0.5f, 0.5f);
  ex.item_emb.UniformInit(&rng, -0.5f, 0.5f);
  ex.user_history.resize(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) {
    const int32_t stride = 37 + u % 17;
    for (int32_t i = u % stride; i < num_items; i += stride) {
      ex.user_history[static_cast<size_t>(u)].push_back(i);
    }
  }

  const std::string dir =
      std::filesystem::temp_directory_path() / "bench_overload";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const util::Status saved = train::SaveServingExport(
      serve::SnapshotStore::SnapshotPath(dir, 1), ex);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot export failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  serve::SnapshotStore store(dir);
  // Index + quantized copies make the ivf and quantized brownout rungs
  // real mode switches rather than silent exact fallbacks.
  serve::ItemIndexOptions index_options;
  index_options.cells = 64;
  store.SetIndexOptions(index_options);
  const util::Status loaded = store.Reload();
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: %d users x %d items, dim %ld\n", num_users,
              num_items, static_cast<long>(dim));

  const CapacityResult capacity =
      MeasureCapacity(&store, num_users, env.Epochs(100, 400), env.seed);
  if (capacity.req_per_sec <= 0.0) {
    std::fprintf(stderr, "capacity calibration produced no throughput\n");
    return 1;
  }
  // Budget: generous against the uncontended mean so a well-managed
  // service answers within it easily, but far below what a thrashing
  // 64-wide free-for-all can deliver.
  const uint64_t budget_us = std::max<uint64_t>(
      2'000, static_cast<uint64_t>(capacity.mean_us * 3.0));
  const double offered = 3.0 * capacity.req_per_sec;
  const double duration_s = env.Scale(1.0, 2.5);
  std::printf(
      "capacity %.0f req/s (mean %.0fus closed-loop) -> offering %.0f "
      "req/s for %.1fs, budget %luus\n",
      capacity.req_per_sec, capacity.mean_us, offered, duration_s,
      static_cast<unsigned long>(budget_us));

  std::vector<OverloadPass> passes;
  passes.push_back(RunOverloadPass(&store, "static", /*adaptive=*/false,
                                   num_users, offered, duration_s, budget_us,
                                   env.seed + 1));
  PrintPass(passes.back(), budget_us);
  passes.push_back(RunOverloadPass(&store, "adaptive", /*adaptive=*/true,
                                   num_users, offered, duration_s, budget_us,
                                   env.seed + 2));
  PrintPass(passes.back(), budget_us);
  const OverloadPass& st = passes[0];
  const OverloadPass& ad = passes[1];

  FILE* out = std::fopen("BENCH_overload.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_overload.json\n");
    return 1;
  }
  const double ratio =
      st.goodput_per_sec > 0.0
          ? ad.goodput_per_sec / st.goodput_per_sec
          : (ad.goodput_per_sec > 0.0 ? 1e9 : 0.0);
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"overload\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"embedding_dim\": %ld,\n"
               "  \"capacity_req_per_sec\": %.1f,\n"
               "  \"offered_req_per_sec\": %.1f,\n"
               "  \"overload_factor\": 3.0,\n"
               "  \"budget_us\": %lu,\n"
               "  \"goodput_ratio_adaptive_vs_static\": %.3f,\n"
               "  \"passes\": [\n",
               num_users, num_items, static_cast<long>(dim),
               capacity.req_per_sec, offered,
               static_cast<unsigned long>(budget_us), ratio);
  for (size_t i = 0; i < passes.size(); ++i) {
    WritePassJson(out, passes[i], i + 1 == passes.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_overload.json\n");

  bool ok = true;
  for (const OverloadPass& p : passes) {
    if (p.unstructured > 0) {
      std::printf("acceptance: FAIL (%ld unstructured outcomes in %s pass)\n",
                  static_cast<long>(p.unstructured), p.name.c_str());
      ok = false;
    }
    if (p.answered + p.shed + p.expired != p.offered) {
      std::printf(
          "acceptance: FAIL (%s accounting: answered %ld + shed %ld + "
          "expired %ld != offered %ld)\n",
          p.name.c_str(), static_cast<long>(p.answered),
          static_cast<long>(p.shed), static_cast<long>(p.expired),
          static_cast<long>(p.offered));
      ok = false;
    }
  }
  // Priority protection: strict-priority admission must shed the batch
  // class proportionally harder than interactive. When nothing at all was
  // shed the pass was not actually overloaded — also a failure, since the
  // bench exists to measure behavior at 3x capacity.
  if (ad.shed == 0) {
    std::printf(
        "acceptance: FAIL (adaptive pass shed nothing at 3x capacity)\n");
    ok = false;
  } else {
    const double shed_interactive = ShedRate(ad, serve::Priority::kInteractive);
    const double shed_batch = ShedRate(ad, serve::Priority::kBatch);
    if (!(shed_interactive < shed_batch) &&
        !(shed_interactive == 0.0 && shed_batch == 0.0)) {
      std::printf(
          "acceptance: FAIL (interactive shed rate %.4f not below batch "
          "%.4f)\n",
          shed_interactive, shed_batch);
      ok = false;
    }
  }
  const char* quality_only = std::getenv("LAYERGCN_BENCH_QUALITY_ONLY");
  if (quality_only != nullptr && quality_only[0] == '1') {
    std::printf("goodput gate skipped (LAYERGCN_BENCH_QUALITY_ONLY)\n");
  } else if (ratio < 1.5) {
    std::printf(
        "acceptance: FAIL (adaptive goodput %.0f/s < 1.5x static %.0f/s)\n",
        ad.goodput_per_sec, st.goodput_per_sec);
    ok = false;
  } else {
    std::printf("goodput: adaptive %.0f/s vs static %.0f/s (%.2fx)\n",
                ad.goodput_per_sec, st.goodput_per_sec, ratio);
  }
  std::printf("acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
