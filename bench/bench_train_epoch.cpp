// Benchmark: LayerGCN training epoch wall-clock vs. compute-thread count.
//
// Trains the same model/config/seed at 1, 2, and max threads through the
// deterministic parallel layer (util/parallel.h) and records per-epoch
// wall-clock plus the per-phase breakdown from the observability span
// counters (adjacency resampling, BPR sampling, forward, backward, Adam).
// Because the parallel layer is bit-deterministic, the epoch losses must be
// identical across thread counts — the bench verifies that too, and fails
// if any loss differs.
//
// Emits BENCH_train_epoch.json. The scaling acceptance (>= 2x epoch speedup
// at 4+ threads) is only judged when the machine actually has 4+ cores;
// on smaller boxes the numbers are recorded and the check is skipped.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_env.h"
#include "core/layergcn.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "experiments/env.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "train/trainer.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

using namespace layergcn;

namespace {

struct RunResult {
  int threads = 0;
  double epoch_seconds = 0.0;  // mean wall-clock per epoch
  double graph_seconds = 0.0;  // per-phase means
  double sampler_seconds = 0.0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double adam_seconds = 0.0;
  std::vector<double> epoch_losses;
};

double SpanSeconds(const obs::MetricsSnapshot& after,
                   const obs::MetricsSnapshot& before,
                   const std::string& name) {
  return static_cast<double>(
             after.CounterDelta(before, "span." + name + ".sum_us")) *
         1e-6;
}

RunResult TrainAtWidth(const data::Dataset& ds, const train::TrainConfig& cfg,
                       int threads) {
  util::ThreadPool pool(threads);
  util::parallel::ScopedComputePool scope(&pool);

  core::LayerGcn model;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const train::TrainResult r = train::FitRecommender(&model, ds, cfg);
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();

  RunResult out;
  out.threads = threads;
  const double epochs = static_cast<double>(std::max(r.epochs_run, 1));
  out.epoch_seconds = SpanSeconds(after, before, "train.epoch") / epochs;
  out.graph_seconds =
      SpanSeconds(after, before, "train.resample_adjacency") / epochs;
  out.sampler_seconds = SpanSeconds(after, before, "train.sampler") / epochs;
  out.forward_seconds = SpanSeconds(after, before, "train.forward") / epochs;
  out.backward_seconds = SpanSeconds(after, before, "train.backward") / epochs;
  out.adam_seconds = SpanSeconds(after, before, "adam.step") / epochs;
  out.epoch_losses = r.epoch_losses;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Training epoch wall-clock vs. thread count", env);
  obs::SetEnabled(true);

  data::SyntheticConfig cfg;
  cfg.name = "train-epoch-bench";
  const double s = env.Scale(0.25, 1.0);
  cfg.num_users = static_cast<int32_t>(8000 * s);
  cfg.num_items = static_cast<int32_t>(4000 * s);
  cfg.num_interactions = static_cast<int64_t>(200000 * s);
  cfg.num_clusters = 32;
  const data::Dataset ds = data::ChronologicalSplitDataset(
      cfg.name, cfg.num_users, cfg.num_items,
      data::GenerateInteractions(cfg, env.seed));
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig tc;
  tc.embedding_dim = 64;
  tc.num_layers = 3;
  tc.batch_size = 2048;
  tc.max_epochs = env.Epochs(3, 5);
  tc.edge_drop_kind = graph::EdgeDropKind::kDegreeDrop;
  tc.edge_drop_ratio = 0.1;
  tc.eval_every = tc.max_epochs + 1;  // pure training epochs, no eval
  tc.seed = env.seed;

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int max_threads = std::max(2, hw);
  std::vector<int> widths{1, 2};
  if (max_threads > 2) widths.push_back(max_threads);

  std::vector<RunResult> runs;
  for (int w : widths) {
    std::printf("training %d epochs at %d thread(s)...\n", tc.max_epochs, w);
    runs.push_back(TrainAtWidth(ds, tc, w));
    const RunResult& r = runs.back();
    std::printf(
        "  epoch %7.3fs  (graph %.3fs, sampler %.3fs, forward %.3fs, "
        "backward %.3fs, adam %.3fs)  final loss %.9g\n",
        r.epoch_seconds, r.graph_seconds, r.sampler_seconds,
        r.forward_seconds, r.backward_seconds, r.adam_seconds,
        r.epoch_losses.empty() ? 0.0 : r.epoch_losses.back());
  }

  // The deterministic parallel layer promises bit-identical training at any
  // width; a loss mismatch is a correctness bug, not a tuning matter.
  bool deterministic = true;
  for (const RunResult& r : runs) {
    if (r.epoch_losses != runs.front().epoch_losses) deterministic = false;
  }
  const double speedup =
      runs.back().epoch_seconds > 0.0
          ? runs.front().epoch_seconds / runs.back().epoch_seconds
          : 0.0;
  std::printf("losses bit-identical across widths: %s\n",
              deterministic ? "yes" : "NO");
  std::printf("epoch speedup %d -> %d threads: %.2fx (machine has %d cores)\n",
              widths.front(), widths.back(), speedup, hw);

  FILE* out = std::fopen("BENCH_train_epoch.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_train_epoch.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"train_epoch\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"interactions\": %ld,\n"
               "  \"embedding_dim\": %d,\n"
               "  \"num_layers\": %d,\n"
               "  \"epochs\": %d,\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"runs\": [\n",
               ds.num_users, ds.num_items,
               static_cast<long>(ds.num_train()), tc.embedding_dim,
               tc.num_layers, tc.max_epochs, hw);
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(out,
                 "    {\"threads\": %d, \"epoch_seconds\": %.6f, "
                 "\"graph_seconds\": %.6f, \"sampler_seconds\": %.6f, "
                 "\"forward_seconds\": %.6f, \"backward_seconds\": %.6f, "
                 "\"adam_seconds\": %.6f, \"final_loss\": %.17g}%s\n",
                 r.threads, r.epoch_seconds, r.graph_seconds,
                 r.sampler_seconds, r.forward_seconds, r.backward_seconds,
                 r.adam_seconds,
                 r.epoch_losses.empty() ? 0.0 : r.epoch_losses.back(),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"speedup_max_vs_1\": %.3f,\n"
               "  \"losses_bit_identical\": %s\n"
               "}\n",
               speedup, deterministic ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_train_epoch.json\n");

  if (!deterministic) {
    std::printf("acceptance: FAIL (losses differ across thread counts)\n");
    return 2;
  }
  if (hw >= 4) {
    const bool ok = speedup >= 2.0;
    std::printf("acceptance (>=2x at %d threads): %s\n", widths.back(),
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 2;
  }
  std::printf("acceptance: scaling check skipped (%d core(s) available)\n",
              hw);
  return 0;
}
