// Design ablations called out in DESIGN.md §6 (beyond the paper's own
// tables): each LayerGCN design decision is toggled independently on the
// MOOC stand-in.
//
//   1. cosine refinement  vs none (LightGCN-style)  vs fixed-alpha (GCNII)
//   2. ego layer dropped (Eq. 9) vs included
//   3. sum vs mean readout
//   4. DegreeDrop vs DropEdge vs Mixed vs none
//   5. inference on the full graph vs on the pruned graph

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "util/table_printer.h"

using namespace layergcn;

namespace {

eval::RankingMetrics Run(const data::Dataset& ds,
                         const core::LayerGcnOptions& options,
                         train::TrainConfig cfg) {
  core::LayerGcn model(options);
  return train::FitRecommender(&model, ds, cfg).test_metrics;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Ablation: LayerGCN design decisions (MOOC)", env);
  const data::Dataset ds =
      data::MakeBenchmarkDataset("mooc", env.Scale(0.5, 1.0), env.seed);
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig base;
  base.seed = env.seed;
  // 6 layers: deep enough that over-smoothing bites (Fig. 6), so the value
  // of each anti-smoothing design choice is visible.
  base.num_layers = 6;
  base.max_epochs = env.Epochs(45, 200);
  base.early_stop_patience = env.full ? 50 : base.max_epochs;
  base.edge_drop_ratio = 0.1;
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
  }

  util::TablePrinter table("LayerGCN design ablations");
  table.SetHeader({"variant", "R@20", "N@20"});
  auto add = [&](const std::string& label, const eval::RankingMetrics& m) {
    table.AddRow({label, util::TablePrinter::Num(m.recall.at(20)),
                  util::TablePrinter::Num(m.ndcg.at(20))});
    std::printf("  %-34s done\n", label.c_str());
    std::fflush(stdout);
  };

  add("paper defaults", Run(ds, {}, base));
  {
    core::LayerGcnOptions o;
    o.refinement = core::Refinement::kNone;
    add("1. refinement: none", Run(ds, o, base));
  }
  {
    core::LayerGcnOptions o;
    o.refinement = core::Refinement::kFixedAlpha;
    o.fixed_alpha = 0.2f;
    add("1. refinement: fixed alpha=0.2", Run(ds, o, base));
  }
  {
    core::LayerGcnOptions o;
    o.include_ego_layer = true;
    add("2. readout includes ego layer", Run(ds, o, base));
  }
  {
    core::LayerGcnOptions o;
    o.readout = core::Readout::kMean;
    add("3. readout: mean", Run(ds, o, base));
  }
  {
    train::TrainConfig cfg = base;
    cfg.edge_drop_kind = graph::EdgeDropKind::kDropEdge;
    add("4. pruning: DropEdge", Run(ds, {}, cfg));
    cfg.edge_drop_kind = graph::EdgeDropKind::kMixed;
    add("4. pruning: Mixed", Run(ds, {}, cfg));
    cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
    cfg.edge_drop_ratio = 0.0;
    add("4. pruning: none (w/o Dropout)", Run(ds, {}, cfg));
  }
  {
    core::LayerGcnOptions o;
    o.inference_on_full_graph = false;
    add("5. inference on pruned graph", Run(ds, o, base));
  }
  table.Print();
  std::printf(
      "\nExpected shape: the paper-default row leads; disabling the cosine\n"
      "refinement or re-including the ego layer costs accuracy; inference\n"
      "on the pruned graph under-performs full-graph inference.\n");
  return 0;
}
