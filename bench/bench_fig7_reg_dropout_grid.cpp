// Fig. 7 — grid sweep of the L2 regularization coefficient λ against the
// edge dropout ratio on MOOC and Yelp (heatmaps in the paper; here one
// R@20 table per dataset, higher = darker cell).

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "experiments/runner.h"
#include "util/strings.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Fig. 7: lambda x dropout-ratio grid (MOOC, Yelp)",
                           env);
  const double scale = env.Scale(0.4, 1.0);

  const std::vector<double> lambdas =
      env.full ? std::vector<double>{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}
               : std::vector<double>{1e-4, 1e-3, 1e-2};
  const std::vector<double> ratios = {0.0, 0.05, 0.1, 0.2};

  train::TrainConfig base;
  base.seed = env.seed;
  base.max_epochs = env.Epochs(20, 200);
  base.early_stop_patience = env.full ? 50 : base.max_epochs;
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
  }

  const std::vector<std::string> datasets =
      env.full ? std::vector<std::string>{"mooc", "yelp"}
               : std::vector<std::string>{"mooc", "yelp"};
  for (const std::string& dataset_name : datasets) {
    const data::Dataset ds =
        data::MakeBenchmarkDataset(dataset_name, scale, env.seed);
    std::printf("\n%s\n", ds.Summary().c_str());
    util::TablePrinter table("Fig. 7 data [" + dataset_name +
                             "]: R@20 per (lambda, dropout ratio)");
    std::vector<std::string> header{"lambda \\ ratio"};
    for (double r : ratios) header.push_back(util::TablePrinter::Num(r, 2));
    table.SetHeader(header);

    double best = 0;
    std::pair<double, double> best_cell{0, 0};
    for (double lambda : lambdas) {
      std::vector<std::string> row{util::StrFormat("%.0e", lambda)};
      for (double ratio : ratios) {
        train::TrainConfig cfg = base;
        cfg.l2_reg = lambda;
        cfg.edge_drop_ratio = ratio;
        if (ratio == 0.0) cfg.edge_drop_kind = graph::EdgeDropKind::kNone;
        const auto run = experiments::RunModel("LayerGCN", ds, cfg);
        const double r20 = run.result.test_metrics.recall.at(20);
        row.push_back(util::TablePrinter::Num(r20));
        if (r20 > best) {
          best = r20;
          best_cell = {lambda, ratio};
        }
      }
      table.AddRow(row);
      std::printf("  lambda %.0e done\n", lambda);
      std::fflush(stdout);
    }
    table.Print();
    std::printf("best cell: lambda=%.0e ratio=%.2f (R@20=%.4f)\n",
                best_cell.first, best_cell.second, best);
  }
  std::printf(
      "\nShape check vs paper Fig. 7: a moderate dropout ratio (~0.1) and\n"
      "lambda ~ 1e-3 should sit in the best region; very strong\n"
      "regularization (1e-1) degrades accuracy.\n");
  return 0;
}
