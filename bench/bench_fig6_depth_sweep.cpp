// Fig. 6 — effect of the number of layers (1..8) on LayerGCN vs LightGCN,
// MOOC dataset, R@20 and N@20.
//
// LightGCN should peak shallow and degrade with depth (over-smoothing);
// LayerGCN should hold or improve as layers stack.

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "experiments/runner.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner(
      "Fig. 6: effect of #layers on LayerGCN vs LightGCN (MOOC)", env);
  const data::Dataset ds =
      data::MakeBenchmarkDataset("mooc", env.Scale(0.5, 1.0), env.seed);
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig base;
  base.seed = env.seed;
  base.max_epochs = env.Epochs(40, 200);
  base.early_stop_patience = env.full ? 50 : base.max_epochs;
  base.edge_drop_ratio = 0.1;
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
  }
  const std::vector<int> depths =
      env.full ? std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}
               : std::vector<int>{1, 2, 3, 4, 6, 8};

  util::TablePrinter table("Fig. 6 data");
  table.SetHeader({"layers", "LayerGCN R@20", "LightGCN R@20",
                   "LayerGCN N@20", "LightGCN N@20"});
  double layergcn_first = 0, layergcn_last = 0;
  double lightgcn_best = 0, lightgcn_deep = 0;
  for (int layers : depths) {
    train::TrainConfig cfg = base;
    cfg.num_layers = layers;
    const auto ours = experiments::RunModel("LayerGCN", ds, cfg);
    const auto theirs = experiments::RunModel("LightGCN", ds, cfg);
    const double our_r = ours.result.test_metrics.recall.at(20);
    const double their_r = theirs.result.test_metrics.recall.at(20);
    table.AddRow({std::to_string(layers), util::TablePrinter::Num(our_r),
                  util::TablePrinter::Num(their_r),
                  util::TablePrinter::Num(ours.result.test_metrics.ndcg.at(20)),
                  util::TablePrinter::Num(
                      theirs.result.test_metrics.ndcg.at(20))});
    if (layers == depths.front()) layergcn_first = our_r;
    layergcn_last = our_r;
    lightgcn_best = std::max(lightgcn_best, their_r);
    lightgcn_deep = their_r;
    std::printf("  %d layers done\n", layers);
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\nLayerGCN: R@20 %.4f (shallowest) -> %.4f (deepest)\n"
      "LightGCN: best R@20 %.4f, deepest R@20 %.4f\n"
      "Shape check vs paper Fig. 6: LayerGCN at depth >= 4 should beat\n"
      "LightGCN at every depth, and LightGCN should lose accuracy at its\n"
      "deepest setting relative to its shallow peak.\n",
      layergcn_first, layergcn_last, lightgcn_best, lightgcn_deep);
  return 0;
}
