// Benchmark: recommendation serving latency under concurrent load.
//
// Builds a synthetic model snapshot (random embeddings + histories),
// publishes it through a SnapshotStore, and drives a RecommendService from
// several client threads. Two passes:
//
//   clean    no deadlines, no faults — the baseline p50/p99 of the fused
//            scoring path under contention for the shared compute pool
//   faulted  every request carries a deadline budget and each client
//            periodically arms the serve.slow_score fault point — the pass
//            exercises the degradation ladder (partial results, structured
//            DeadlineExceeded, breaker-driven popularity fallback) and
//            must stay crash-free with every response structured
//
// Emits BENCH_serve_latency.json. Acceptance: every request in both passes
// resolves to a structured outcome (exit 2 on any unexpected status), and
// the faulted pass actually hit the ladder (some partial/degraded/deadline
// outcome was observed).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "experiments/env.h"
#include "obs/obs.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

using namespace layergcn;

namespace {

struct PassResult {
  std::string name;
  int client_threads = 0;
  int64_t requests = 0;
  int64_t ok_complete = 0;
  int64_t partial = 0;
  int64_t degraded = 0;
  int64_t deadline_errors = 0;
  int64_t other_errors = 0;  // anything outside the structured set
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

double Percentile(std::vector<uint64_t>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return static_cast<double>((*latencies)[idx]);
}

PassResult RunPass(serve::RecommendService* service, const std::string& name,
                   int client_threads, int64_t requests_per_client,
                   int32_t num_users, uint64_t budget_us, int fault_every,
                   uint64_t seed) {
  PassResult out;
  out.name = name;
  out.client_threads = client_threads;

  std::vector<std::vector<uint64_t>> latencies(
      static_cast<size_t>(client_threads));
  std::vector<PassResult> partials(static_cast<size_t>(client_threads));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(client_threads));
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(seed + static_cast<uint64_t>(c) * 7919);
      PassResult& mine = partials[static_cast<size_t>(c)];
      for (int64_t i = 0; i < requests_per_client; ++i) {
        if (fault_every > 0 && i % fault_every == 0) {
          util::fault::Arm("serve.slow_score");
        }
        serve::RecommendRequest req;
        req.user_id = static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(num_users)));
        req.k = 20;
        req.budget_us = budget_us;
        const uint64_t t0 = obs::NowMicros();
        const util::StatusOr<serve::RecommendResponse> r =
            service->Recommend(req);
        latencies[static_cast<size_t>(c)].push_back(obs::NowMicros() - t0);
        ++mine.requests;
        if (r.ok()) {
          if (r.value().degraded) {
            ++mine.degraded;
          } else if (r.value().partial) {
            ++mine.partial;
          } else {
            ++mine.ok_complete;
          }
        } else if (r.status().code() == util::StatusCode::kDeadlineExceeded) {
          ++mine.deadline_errors;
        } else {
          ++mine.other_errors;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  util::fault::DisarmAll();

  std::vector<uint64_t> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  for (const PassResult& p : partials) {
    out.requests += p.requests;
    out.ok_complete += p.ok_complete;
    out.partial += p.partial;
    out.degraded += p.degraded;
    out.deadline_errors += p.deadline_errors;
    out.other_errors += p.other_errors;
  }
  uint64_t sum = 0;
  for (uint64_t v : all) sum += v;
  out.mean_us =
      all.empty() ? 0.0
                  : static_cast<double>(sum) / static_cast<double>(all.size());
  out.p50_us = Percentile(&all, 0.50);
  out.p99_us = Percentile(&all, 0.99);
  return out;
}

void PrintPass(const PassResult& r) {
  std::printf(
      "%-8s  %ld req x %d clients  p50 %7.0fus  p99 %7.0fus  mean %7.0fus\n"
      "          complete %ld, partial %ld, degraded %ld, deadline %ld, "
      "other %ld\n",
      r.name.c_str(), static_cast<long>(r.requests), r.client_threads,
      r.p50_us, r.p99_us, r.mean_us, static_cast<long>(r.ok_complete),
      static_cast<long>(r.partial), static_cast<long>(r.degraded),
      static_cast<long>(r.deadline_errors), static_cast<long>(r.other_errors));
}

void WritePassJson(FILE* out, const PassResult& r, bool last) {
  std::fprintf(out,
               "    {\"pass\": \"%s\", \"requests\": %ld, "
               "\"client_threads\": %d, \"p50_us\": %.1f, \"p99_us\": %.1f, "
               "\"mean_us\": %.1f, \"complete\": %ld, \"partial\": %ld, "
               "\"degraded\": %ld, \"deadline_errors\": %ld, "
               "\"other_errors\": %ld}%s\n",
               r.name.c_str(), static_cast<long>(r.requests),
               r.client_threads, r.p50_us, r.p99_us, r.mean_us,
               static_cast<long>(r.ok_complete), static_cast<long>(r.partial),
               static_cast<long>(r.degraded),
               static_cast<long>(r.deadline_errors),
               static_cast<long>(r.other_errors), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Serving latency under concurrent load", env);
  obs::SetEnabled(true);
  util::fault::DisarmAll();

  const double s = env.Scale(0.25, 1.0);
  const int32_t num_users = static_cast<int32_t>(4000 * s);
  const int32_t num_items = static_cast<int32_t>(8000 * s);
  const int64_t dim = 64;

  // Synthetic snapshot: random embeddings plus strided histories (so the
  // exclusion path does real work).
  train::ServingExport ex;
  ex.version = 1;
  ex.user_emb = tensor::Matrix(num_users, dim);
  ex.item_emb = tensor::Matrix(num_items, dim);
  util::Rng rng(env.seed);
  ex.user_emb.UniformInit(&rng, -0.5f, 0.5f);
  ex.item_emb.UniformInit(&rng, -0.5f, 0.5f);
  ex.user_history.resize(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) {
    const int32_t stride = 37 + u % 17;
    for (int32_t i = u % stride; i < num_items; i += stride) {
      ex.user_history[static_cast<size_t>(u)].push_back(i);
    }
  }

  const std::string dir =
      std::filesystem::temp_directory_path() / "bench_serve_latency";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const util::Status saved = train::SaveServingExport(
      serve::SnapshotStore::SnapshotPath(dir, 1), ex);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot export failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  serve::SnapshotStore store(dir);
  const util::Status loaded = store.Reload();
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: %d users x %d items, dim %ld\n", num_users,
              num_items, static_cast<long>(dim));

  serve::RecommendServiceOptions opt;
  opt.breaker.failure_threshold = 8;
  opt.breaker.open_cooldown_us = 20000;
  serve::RecommendService service(&store, opt);

  const int clients = 4;
  const int64_t per_client = env.Epochs(250, 1000);
  std::vector<PassResult> passes;
  passes.push_back(RunPass(&service, "clean", clients, per_client, num_users,
                           /*budget_us=*/0, /*fault_every=*/0, env.seed));
  PrintPass(passes.back());
  passes.push_back(RunPass(&service, "faulted", clients, per_client,
                           num_users, /*budget_us=*/2000, /*fault_every=*/16,
                           env.seed + 1));
  PrintPass(passes.back());
  // Every request stalls past its budget: consecutive deadline failures
  // trip the breaker and the service rides the popularity fallback.
  passes.push_back(RunPass(&service, "storm", clients, per_client / 4 + 1,
                           num_users, /*budget_us=*/1500, /*fault_every=*/1,
                           env.seed + 2));
  PrintPass(passes.back());

  FILE* out = std::fopen("BENCH_serve_latency.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve_latency.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"serve_latency\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"embedding_dim\": %ld,\n"
               "  \"topk\": 20,\n"
               "  \"passes\": [\n",
               num_users, num_items, static_cast<long>(dim));
  for (size_t i = 0; i < passes.size(); ++i) {
    WritePassJson(out, passes[i], i + 1 == passes.size());
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote BENCH_serve_latency.json\n");

  bool ok = true;
  for (const PassResult& r : passes) {
    if (r.other_errors > 0) {
      std::printf("acceptance: FAIL (%ld unstructured errors in %s pass)\n",
                  static_cast<long>(r.other_errors), r.name.c_str());
      ok = false;
    }
  }
  const PassResult& faulted = passes.back();
  const bool ladder_hit = faulted.partial + faulted.degraded +
                              faulted.deadline_errors >
                          0;
  if (!ladder_hit) {
    std::printf(
        "acceptance: FAIL (fault pass never exercised the degradation "
        "ladder)\n");
    ok = false;
  }
  std::printf("acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
