// Benchmark: recommendation serving latency under concurrent load.
//
// Builds a synthetic model snapshot (random embeddings + histories),
// publishes it through a SnapshotStore, and drives a RecommendService from
// several client threads. Two passes:
//
//   clean    no deadlines, no faults — the baseline p50/p99 of the fused
//            scoring path under contention for the shared compute pool
//   faulted  every request carries a deadline budget and each client
//            periodically arms the serve.slow_score fault point — the pass
//            exercises the degradation ladder (partial results, structured
//            DeadlineExceeded, breaker-driven popularity fallback) and
//            must stay crash-free with every response structured
//
// Two further passes cover the quantized serving stack:
//
//   quant    planted-signal quality evaluation (Recall@20 / NDCG@20 per
//            encoding against known ground truth, plus top-20 overlap vs
//            f32) and single-threaded scoring throughput per encoding.
//            Acceptance: int8 reaches >= 2x the f32 per-core throughput at
//            <= 0.1% relative Recall@20 / NDCG@20 loss. Set
//            LAYERGCN_BENCH_QUALITY_ONLY=1 to skip the throughput gate
//            (sanitizer builds distort relative timings).
//   cache    repeated hot-user requests against the score cache: hit rate
//            while the snapshot is stable, and invalidation on hot-swap
//            (a request served right after Reload() must not be cached).
//
// Emits BENCH_serve_latency.json. Acceptance: every request in both passes
// resolves to a structured outcome (exit 2 on any unexpected status), and
// the faulted pass actually hit the ladder (some partial/degraded/deadline
// outcome was observed).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_env.h"
#include "eval/fused_rank.h"
#include "eval/quant_kernel.h"
#include "experiments/env.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "train/checkpoint.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/status.h"

using namespace layergcn;

namespace {

struct PassResult {
  std::string name;
  int client_threads = 0;
  int rank_threads = 0;  // compute-pool width scoring ran at
  int64_t requests = 0;
  int64_t ok_complete = 0;
  int64_t partial = 0;
  int64_t degraded = 0;
  int64_t deadline_errors = 0;
  int64_t other_errors = 0;  // anything outside the structured set
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  // Wall-clock throughput of the whole pass, and the same normalized by
  // the compute-pool width — the number the rank-pool sweep watches (ideal
  // scaling keeps per-thread throughput flat as rank_threads grows).
  double req_per_sec = 0.0;
  double per_thread_req_per_sec = 0.0;
  // The same latencies as the registry's serve.latency_us histogram saw
  // them, per-pass via HistogramData::Delta — coarser buckets than the
  // exact client-side sort above, but the series operators actually watch.
  double hist_p50_us = 0.0;
  double hist_p95_us = 0.0;
  double hist_p99_us = 0.0;
};

double Percentile(std::vector<uint64_t>* latencies, double q) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return static_cast<double>((*latencies)[idx]);
}

PassResult RunPass(serve::RecommendService* service, const std::string& name,
                   int client_threads, int64_t requests_per_client,
                   int32_t num_users, uint64_t budget_us, int fault_every,
                   uint64_t seed) {
  PassResult out;
  out.name = name;
  out.client_threads = client_threads;
  out.rank_threads = util::parallel::ComputePool()->num_threads();
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();

  const uint64_t pass_t0 = obs::NowMicros();
  std::vector<std::vector<uint64_t>> latencies(
      static_cast<size_t>(client_threads));
  std::vector<PassResult> partials(static_cast<size_t>(client_threads));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(client_threads));
  for (int c = 0; c < client_threads; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(seed + static_cast<uint64_t>(c) * 7919);
      PassResult& mine = partials[static_cast<size_t>(c)];
      for (int64_t i = 0; i < requests_per_client; ++i) {
        if (fault_every > 0 && i % fault_every == 0) {
          util::fault::Arm("serve.slow_score");
        }
        serve::RecommendRequest req;
        req.user_id = static_cast<int32_t>(
            rng.NextBounded(static_cast<uint64_t>(num_users)));
        req.k = 20;
        req.budget_us = budget_us;
        const uint64_t t0 = obs::NowMicros();
        const util::StatusOr<serve::RecommendResponse> r =
            service->Recommend(req);
        latencies[static_cast<size_t>(c)].push_back(obs::NowMicros() - t0);
        ++mine.requests;
        if (r.ok()) {
          if (r.value().degraded) {
            ++mine.degraded;
          } else if (r.value().partial) {
            ++mine.partial;
          } else {
            ++mine.ok_complete;
          }
        } else if (r.status().code() == util::StatusCode::kDeadlineExceeded) {
          ++mine.deadline_errors;
        } else {
          ++mine.other_errors;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double pass_s =
      static_cast<double>(obs::NowMicros() - pass_t0) * 1e-6;
  util::fault::DisarmAll();

  std::vector<uint64_t> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
  for (const PassResult& p : partials) {
    out.requests += p.requests;
    out.ok_complete += p.ok_complete;
    out.partial += p.partial;
    out.degraded += p.degraded;
    out.deadline_errors += p.deadline_errors;
    out.other_errors += p.other_errors;
  }
  uint64_t sum = 0;
  for (uint64_t v : all) sum += v;
  out.mean_us =
      all.empty() ? 0.0
                  : static_cast<double>(sum) / static_cast<double>(all.size());
  out.p50_us = Percentile(&all, 0.50);
  out.p99_us = Percentile(&all, 0.99);
  out.req_per_sec =
      pass_s > 0.0 ? static_cast<double>(out.requests) / pass_s : 0.0;
  out.per_thread_req_per_sec =
      out.rank_threads > 0 ? out.req_per_sec / out.rank_threads : 0.0;

  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
  const auto it = after.histograms.find("serve.latency_us");
  if (it != after.histograms.end()) {
    obs::HistogramData pass = it->second;
    const auto base = before.histograms.find("serve.latency_us");
    if (base != before.histograms.end()) pass = pass.Delta(base->second);
    out.hist_p50_us = pass.Quantile(0.50);
    out.hist_p95_us = pass.Quantile(0.95);
    out.hist_p99_us = pass.Quantile(0.99);
  }
  return out;
}

void PrintPass(const PassResult& r) {
  std::printf(
      "%-8s  %ld req x %d clients  p50 %7.0fus  p99 %7.0fus  mean %7.0fus\n"
      "          complete %ld, partial %ld, degraded %ld, deadline %ld, "
      "other %ld\n"
      "          registry histogram p50 %7.0fus  p95 %7.0fus  p99 %7.0fus\n"
      "          %.0f req/s at %d rank threads (%.0f req/s/thread)\n",
      r.name.c_str(), static_cast<long>(r.requests), r.client_threads,
      r.p50_us, r.p99_us, r.mean_us, static_cast<long>(r.ok_complete),
      static_cast<long>(r.partial), static_cast<long>(r.degraded),
      static_cast<long>(r.deadline_errors), static_cast<long>(r.other_errors),
      r.hist_p50_us, r.hist_p95_us, r.hist_p99_us, r.req_per_sec,
      r.rank_threads, r.per_thread_req_per_sec);
}

void WritePassJson(FILE* out, const PassResult& r, bool last) {
  std::fprintf(out,
               "    {\"pass\": \"%s\", \"requests\": %ld, "
               "\"client_threads\": %d, \"rank_threads\": %d, "
               "\"p50_us\": %.1f, \"p99_us\": %.1f, "
               "\"mean_us\": %.1f, \"hist_p50_us\": %.1f, "
               "\"hist_p95_us\": %.1f, \"hist_p99_us\": %.1f, "
               "\"req_per_sec\": %.1f, "
               "\"per_thread_req_per_sec\": %.1f, "
               "\"complete\": %ld, \"partial\": %ld, "
               "\"degraded\": %ld, \"deadline_errors\": %ld, "
               "\"other_errors\": %ld}%s\n",
               r.name.c_str(), static_cast<long>(r.requests),
               r.client_threads, r.rank_threads, r.p50_us, r.p99_us,
               r.mean_us, r.hist_p50_us, r.hist_p95_us, r.hist_p99_us,
               r.req_per_sec, r.per_thread_req_per_sec,
               static_cast<long>(r.ok_complete), static_cast<long>(r.partial),
               static_cast<long>(r.degraded),
               static_cast<long>(r.deadline_errors),
               static_cast<long>(r.other_errors), last ? "" : ",");
}

// --- Quantization pass ------------------------------------------------

struct EncodingResult {
  std::string name;
  double recall20 = 0.0;
  double ndcg20 = 0.0;
  double overlap_f32 = 0.0;      // mean |top20 ∩ f32 top20| / 20
  double scores_per_sec = 0.0;   // single-thread user·item scores per sec
  double speedup_vs_f32 = 0.0;
};

// Binary-relevance Recall@K / NDCG@K of `ranked` against the planted truth
// set [truth_lo, truth_lo + truth_n).
void PlantedMetrics(const std::vector<int32_t>& ranked, int32_t truth_lo,
                    int32_t truth_n, double* recall, double* ndcg) {
  double hits = 0.0, dcg = 0.0, idcg = 0.0;
  for (size_t pos = 0; pos < ranked.size(); ++pos) {
    if (ranked[pos] >= truth_lo && ranked[pos] < truth_lo + truth_n) {
      hits += 1.0;
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  for (int32_t i = 0; i < truth_n; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  *recall = hits / static_cast<double>(truth_n);
  *ndcg = dcg / idcg;
}

double MeanOverlap(const std::vector<std::vector<int32_t>>& a,
                   const std::vector<std::vector<int32_t>>& b) {
  double total = 0.0;
  for (size_t u = 0; u < a.size(); ++u) {
    std::vector<int32_t> sa = a[u], sb = b[u];
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    std::vector<int32_t> inter;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(inter));
    total += static_cast<double>(inter.size()) /
             std::max<double>(1.0, static_cast<double>(sa.size()));
  }
  return a.empty() ? 0.0 : total / static_cast<double>(a.size());
}

// Planted-signal quality + single-core throughput per encoding. Users get
// unit directions scaled to norm 2; each user's `planted` items sit along
// the same direction at norm 2.5, so planted scores (~5) clear the random
// tail (<~1) by a margin far wider than any quantization error — ground
// truth is recoverable exactly, and a quality loss from int8/bf16 shows up
// directly in the Recall/NDCG deltas rather than being confounded with
// order-statistic noise near the cutoff.
std::vector<EncodingResult> RunQuantPass(uint64_t seed, bool* f32_parity_ok) {
  const int32_t num_users = 400;
  const int32_t num_items = 2000;
  const int64_t dim = 64;
  const int32_t planted = 4;  // items per user, ids [u*4, u*4+4)
  const int k = 20;

  util::Rng rng(seed);
  tensor::Matrix user_emb(num_users, dim), item_emb(num_items, dim);
  user_emb.UniformInit(&rng, -1.f, 1.f);
  item_emb.UniformInit(&rng, -1.f, 1.f);
  auto normalize = [dim](float* row, float target) {
    float sq = 0.f;
    for (int64_t c = 0; c < dim; ++c) sq += row[c] * row[c];
    const float inv = target / std::sqrt(std::max(sq, 1e-12f));
    for (int64_t c = 0; c < dim; ++c) row[c] *= inv;
  };
  for (int32_t u = 0; u < num_users; ++u) normalize(user_emb.row(u), 2.f);
  for (int32_t i = 0; i < num_items; ++i) normalize(item_emb.row(i), 1.f);
  for (int32_t u = 0; u < num_users; ++u) {
    for (int32_t j = 0; j < planted; ++j) {
      float* row = item_emb.row(u * planted + j);
      const float* urow = user_emb.row(u);
      for (int64_t c = 0; c < dim; ++c) row[c] = 1.25f * urow[c];
    }
  }

  std::vector<int32_t> user_ids(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) {
    user_ids[static_cast<size_t>(u)] = u;
  }
  // Per-core throughput: pin the shared compute pool to one worker for the
  // duration of the pass (a dedicated per-call pool would measure thread
  // spawning, not scoring).
  util::ThreadPool single(1);
  util::parallel::ScopedComputePool pinned(&single);
  eval::FusedRankConfig one_thread;  // num_threads = 0: the pinned pool

  const tensor::Int8Rows user_i8 = tensor::QuantizeInt8PerRow(user_emb);
  const tensor::Int8Panel item_i8 =
      tensor::TransposeToPanel(tensor::QuantizeInt8PerRow(item_emb));
  const tensor::Bf16Rows user_b16 = tensor::ToBf16Rows(user_emb);
  const tensor::Bf16Panel item_b16 =
      tensor::TransposeToPanel(tensor::ToBf16Rows(item_emb));

  // Time min-of-3 sweeps per encoding, issuing one single-user kernel call
  // per request — the exact shape RecommendService::Recommend uses. This
  // is where the precomputed item panels earn their keep: the f32 path
  // re-transposes the item matrix every call, the quantized paths read
  // their snapshot-resident panels directly. Quant structures are built
  // once up front, as a snapshot load would.
  auto timed = [&](auto&& fn, std::vector<std::vector<int32_t>>* ranked,
                   double* scores_per_sec) {
    double best_us = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      ranked->clear();
      const uint64_t t0 = obs::NowMicros();
      for (int32_t u = 0; u < num_users; ++u) {
        std::vector<std::vector<int32_t>> one = fn(u);
        ranked->push_back(std::move(one[0]));
      }
      const double us = static_cast<double>(obs::NowMicros() - t0);
      if (rep == 0 || us < best_us) best_us = us;
    }
    *scores_per_sec = static_cast<double>(num_users) *
                      static_cast<double>(num_items) /
                      (best_us * 1e-6);
  };

  std::vector<std::vector<int32_t>> f32_ranked, i8_ranked, b16_ranked;
  std::vector<EncodingResult> out(3);
  out[0].name = "f32";
  timed([&](int32_t u) {
          return eval::FusedScoreTopK(user_emb, {u}, item_emb, k, nullptr,
                                      one_thread);
        },
        &f32_ranked, &out[0].scores_per_sec);
  out[1].name = "int8";
  timed([&](int32_t u) {
          return eval::QuantScoreTopKInt8(user_i8, {u}, item_i8, k, nullptr,
                                          one_thread);
        },
        &i8_ranked, &out[1].scores_per_sec);
  out[2].name = "bf16";
  timed([&](int32_t u) {
          return eval::QuantScoreTopKBf16(user_b16, {u}, item_b16, k,
                                          nullptr, one_thread);
        },
        &b16_ranked, &out[2].scores_per_sec);

  // The f32 serving kernel must agree bit-for-bit with the offline
  // reference ranking (the Evaluator's scoring order).
  eval::FusedRankConfig reference = one_thread;
  reference.enabled = false;
  *f32_parity_ok = f32_ranked == eval::FusedScoreTopK(user_emb, user_ids,
                                                      item_emb, k, nullptr,
                                                      reference);

  const std::vector<std::vector<int32_t>>* rankings[3] = {
      &f32_ranked, &i8_ranked, &b16_ranked};
  for (int e = 0; e < 3; ++e) {
    double recall_sum = 0.0, ndcg_sum = 0.0;
    for (int32_t u = 0; u < num_users; ++u) {
      double r = 0.0, n = 0.0;
      PlantedMetrics((*rankings[e])[static_cast<size_t>(u)], u * planted,
                     planted, &r, &n);
      recall_sum += r;
      ndcg_sum += n;
    }
    out[static_cast<size_t>(e)].recall20 =
        recall_sum / static_cast<double>(num_users);
    out[static_cast<size_t>(e)].ndcg20 =
        ndcg_sum / static_cast<double>(num_users);
    out[static_cast<size_t>(e)].overlap_f32 =
        MeanOverlap(*rankings[e], f32_ranked);
    out[static_cast<size_t>(e)].speedup_vs_f32 =
        out[0].scores_per_sec > 0.0
            ? out[static_cast<size_t>(e)].scores_per_sec /
                  out[0].scores_per_sec
            : 0.0;
  }
  return out;
}

// --- Score-cache pass -------------------------------------------------

struct CachePassResult {
  int64_t requests = 0;
  int64_t hits = 0;
  double hit_rate = 0.0;
  bool invalidated_on_swap = false;
  bool ok = true;
};

CachePassResult RunCachePass(serve::SnapshotStore* store,
                             const train::ServingExport& ex,
                             const std::string& dir, int32_t num_users) {
  CachePassResult out;
  serve::RecommendServiceOptions opt;
  opt.score_cache_capacity = 256;
  serve::RecommendService service(store, opt);

  const int32_t hot_users = std::min<int32_t>(50, num_users);
  auto round = [&](bool* any_cached, bool* all_ok) {
    for (int32_t u = 0; u < hot_users; ++u) {
      serve::RecommendRequest req;
      req.user_id = u;
      req.k = 20;
      const util::StatusOr<serve::RecommendResponse> r =
          service.Recommend(req);
      ++out.requests;
      if (!r.ok()) {
        *all_ok = false;
        continue;
      }
      if (r.value().cached) {
        ++out.hits;
        if (any_cached != nullptr) *any_cached = true;
      }
    }
  };

  bool all_ok = true;
  round(nullptr, &all_ok);         // cold: every request misses + fills
  bool warm_hit = false;
  for (int i = 0; i < 4; ++i) round(&warm_hit, &all_ok);

  // Hot-swap: publish the same embeddings as a newer version; entries
  // keyed to the old version must never serve again.
  train::ServingExport next = ex;
  next.version = ex.version + 1;
  const util::Status saved = train::SaveServingExport(
      serve::SnapshotStore::SnapshotPath(dir, next.version), next);
  bool post_swap_cached = false;
  if (!saved.ok() || !store->Reload().ok()) {
    all_ok = false;
  } else {
    round(&post_swap_cached, &all_ok);  // must be all fresh
  }

  out.hit_rate = out.requests > 0
                     ? static_cast<double>(out.hits) /
                           static_cast<double>(out.requests)
                     : 0.0;
  out.invalidated_on_swap = !post_swap_cached;
  out.ok = all_ok && warm_hit && out.invalidated_on_swap;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Serving latency under concurrent load", env);
  obs::SetEnabled(true);
  util::fault::DisarmAll();

  const double s = env.Scale(0.25, 1.0);
  const int32_t num_users = static_cast<int32_t>(4000 * s);
  const int32_t num_items = static_cast<int32_t>(8000 * s);
  const int64_t dim = 64;

  // Synthetic snapshot: random embeddings plus strided histories (so the
  // exclusion path does real work).
  train::ServingExport ex;
  ex.version = 1;
  ex.user_emb = tensor::Matrix(num_users, dim);
  ex.item_emb = tensor::Matrix(num_items, dim);
  util::Rng rng(env.seed);
  ex.user_emb.UniformInit(&rng, -0.5f, 0.5f);
  ex.item_emb.UniformInit(&rng, -0.5f, 0.5f);
  ex.user_history.resize(static_cast<size_t>(num_users));
  for (int32_t u = 0; u < num_users; ++u) {
    const int32_t stride = 37 + u % 17;
    for (int32_t i = u % stride; i < num_items; i += stride) {
      ex.user_history[static_cast<size_t>(u)].push_back(i);
    }
  }

  const std::string dir =
      std::filesystem::temp_directory_path() / "bench_serve_latency";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const util::Status saved = train::SaveServingExport(
      serve::SnapshotStore::SnapshotPath(dir, 1), ex);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot export failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  serve::SnapshotStore store(dir);
  const util::Status loaded = store.Reload();
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: %d users x %d items, dim %ld\n", num_users,
              num_items, static_cast<long>(dim));

  serve::RecommendServiceOptions opt;
  opt.breaker.failure_threshold = 8;
  opt.breaker.open_cooldown_us = 20000;
  // The latency passes measure the scoring path; caching is benchmarked by
  // its own pass below.
  opt.score_cache_capacity = 0;
  serve::RecommendService service(&store, opt);

  const int clients = 4;
  const int64_t per_client = env.Epochs(250, 1000);
  std::vector<PassResult> passes;
  passes.push_back(RunPass(&service, "clean", clients, per_client, num_users,
                           /*budget_us=*/0, /*fault_every=*/0, env.seed));
  PrintPass(passes.back());
  passes.push_back(RunPass(&service, "faulted", clients, per_client,
                           num_users, /*budget_us=*/2000, /*fault_every=*/16,
                           env.seed + 1));
  PrintPass(passes.back());
  // Every request stalls past its budget: consecutive deadline failures
  // trip the breaker and the service rides the popularity fallback.
  passes.push_back(RunPass(&service, "storm", clients, per_client / 4 + 1,
                           num_users, /*budget_us=*/1500, /*fault_every=*/1,
                           env.seed + 2));
  PrintPass(passes.back());
  const size_t storm_idx = passes.size() - 1;

  // Rank-pool width sweep: the same clean load with the shared compute
  // pool pinned to 1, 2, and N workers. Per-thread throughput across the
  // sweep shows how request throughput scales with scoring parallelism
  // (rank_threads is recorded in each pass). A fresh service per width:
  // the storm pass leaves the shared service's breaker open, and a sweep
  // riding the popularity fallback would measure nothing.
  std::vector<int> sweep_widths{1, 2};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 2) sweep_widths.push_back(hw);
  for (const int width : sweep_widths) {
    serve::RecommendService sweep_service(&store, opt);
    util::ThreadPool sweep_pool(width);
    util::parallel::ScopedComputePool pinned(&sweep_pool);
    passes.push_back(RunPass(&sweep_service, "sweep_t" + std::to_string(width),
                             clients, per_client / 2 + 1, num_users,
                             /*budget_us=*/0, /*fault_every=*/0,
                             env.seed + 10 + static_cast<uint64_t>(width)));
    PrintPass(passes.back());
  }

  // Quantized scoring: quality against planted truth, per-core throughput.
  bool f32_parity_ok = false;
  const std::vector<EncodingResult> quant =
      RunQuantPass(env.seed + 3, &f32_parity_ok);
  for (const EncodingResult& e : quant) {
    std::printf(
        "quant %-5s recall@20 %.4f  ndcg@20 %.4f  overlap(f32) %.4f  "
        "%.2fM scores/s  (%.2fx f32)\n",
        e.name.c_str(), e.recall20, e.ndcg20, e.overlap_f32,
        e.scores_per_sec / 1e6, e.speedup_vs_f32);
  }
  std::printf("f32 fused == reference ranking: %s\n",
              f32_parity_ok ? "yes" : "NO");

  // Score cache: hit rate on hot users, invalidation on hot-swap.
  const CachePassResult cache = RunCachePass(&store, ex, dir, num_users);
  std::printf(
      "cache: %ld requests, %ld hits (%.2f), invalidated on hot-swap: %s\n",
      static_cast<long>(cache.requests), static_cast<long>(cache.hits),
      cache.hit_rate, cache.invalidated_on_swap ? "yes" : "NO");

  FILE* out = std::fopen("BENCH_serve_latency.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_serve_latency.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"serve_latency\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"embedding_dim\": %ld,\n"
               "  \"topk\": 20,\n"
               "  \"passes\": [\n",
               num_users, num_items, static_cast<long>(dim));
  for (size_t i = 0; i < passes.size(); ++i) {
    WritePassJson(out, passes[i], i + 1 == passes.size());
  }
  std::fprintf(out, "  ],\n  \"quant\": [\n");
  for (size_t i = 0; i < quant.size(); ++i) {
    const EncodingResult& e = quant[i];
    std::fprintf(out,
                 "    {\"encoding\": \"%s\", \"recall20\": %.6f, "
                 "\"ndcg20\": %.6f, \"overlap_f32\": %.6f, "
                 "\"scores_per_sec\": %.0f, \"speedup_vs_f32\": %.3f}%s\n",
                 e.name.c_str(), e.recall20, e.ndcg20, e.overlap_f32,
                 e.scores_per_sec, e.speedup_vs_f32,
                 i + 1 < quant.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n"
               "  \"f32_reference_parity\": %s,\n"
               "  \"score_cache\": {\"requests\": %ld, \"hits\": %ld, "
               "\"hit_rate\": %.4f, \"invalidated_on_swap\": %s}\n"
               "}\n",
               f32_parity_ok ? "true" : "false",
               static_cast<long>(cache.requests),
               static_cast<long>(cache.hits), cache.hit_rate,
               cache.invalidated_on_swap ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_serve_latency.json\n");

  bool ok = true;
  for (const PassResult& r : passes) {
    if (r.other_errors > 0) {
      std::printf("acceptance: FAIL (%ld unstructured errors in %s pass)\n",
                  static_cast<long>(r.other_errors), r.name.c_str());
      ok = false;
    }
  }
  const PassResult& faulted = passes[storm_idx];
  const bool ladder_hit = faulted.partial + faulted.degraded +
                              faulted.deadline_errors >
                          0;
  if (!ladder_hit) {
    std::printf(
        "acceptance: FAIL (fault pass never exercised the degradation "
        "ladder)\n");
    ok = false;
  }

  // Quantization gates: near-zero metric loss always; >= 2x per-core int8
  // throughput unless LAYERGCN_BENCH_QUALITY_ONLY=1 (sanitizer builds
  // distort relative timings, the quality gates still hold there).
  if (!f32_parity_ok) {
    std::printf("acceptance: FAIL (f32 fused != reference ranking)\n");
    ok = false;
  }
  const double kMaxRelLoss = 0.001;  // <= 0.1% relative
  for (size_t e = 1; e < quant.size(); ++e) {
    const double recall_loss =
        (quant[0].recall20 - quant[e].recall20) /
        std::max(quant[0].recall20, 1e-12);
    const double ndcg_loss = (quant[0].ndcg20 - quant[e].ndcg20) /
                             std::max(quant[0].ndcg20, 1e-12);
    if (recall_loss > kMaxRelLoss || ndcg_loss > kMaxRelLoss) {
      std::printf(
          "acceptance: FAIL (%s quality loss: recall %.5f, ndcg %.5f "
          "relative)\n",
          quant[e].name.c_str(), recall_loss, ndcg_loss);
      ok = false;
    }
  }
  const char* quality_only = std::getenv("LAYERGCN_BENCH_QUALITY_ONLY");
  if (quality_only != nullptr && quality_only[0] == '1') {
    std::printf("throughput gate skipped (LAYERGCN_BENCH_QUALITY_ONLY)\n");
  } else if (quant[1].speedup_vs_f32 < 2.0) {
    std::printf("acceptance: FAIL (int8 speedup %.2fx < 2x f32)\n",
                quant[1].speedup_vs_f32);
    ok = false;
  }
  if (!cache.ok) {
    std::printf(
        "acceptance: FAIL (score cache: warm hits %s, invalidated on swap "
        "%s)\n",
        cache.hits > 0 ? "yes" : "NO",
        cache.invalidated_on_swap ? "yes" : "NO");
    ok = false;
  }
  std::printf("acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
