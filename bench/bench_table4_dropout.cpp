// Table IV — DegreeDrop vs DropEdge on all four datasets at training epochs
// 20, 50 and the best epoch.
//
// LayerGCN is trained once per (dataset, dropout kind); test metrics are
// captured at the checkpoint epochs and at the early-stopped best epoch.

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "experiments/runner.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner(
      "Table IV: DegreeDrop vs DropEdge at epochs 20/50/best", env);
  const double scale = env.Scale(0.5, 1.0);

  // Checkpoints are epoch counts from the paper; the fast profile keeps
  // them (20/50) but caps total epochs at 60.
  train::TrainConfig base;
  base.seed = env.seed;
  base.max_epochs = env.Epochs(60, 300);
  base.early_stop_patience = env.full ? 50 : 30;
  base.edge_drop_ratio = 0.1;
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
  }

  util::TablePrinter table("Table IV");
  table.SetHeader({"Datasets", "Variants", "Epoch", "R@20", "R@50", "N@20",
                   "N@50"});

  for (const std::string& dataset_name : data::BenchmarkDatasetNames()) {
    const data::Dataset ds =
        data::MakeBenchmarkDataset(dataset_name, scale, env.seed);
    struct Variant {
      const char* label;
      graph::EdgeDropKind kind;
    };
    for (const Variant& variant :
         {Variant{"DropEdge", graph::EdgeDropKind::kDropEdge},
          Variant{"DegreeDrop", graph::EdgeDropKind::kDegreeDrop}}) {
      train::TrainConfig cfg = base;
      cfg.edge_drop_kind = variant.kind;
      train::TrainOptions options;
      options.checkpoint_epochs = {20, 50};
      std::vector<train::CheckpointMetrics> checkpoints;
      const auto row = experiments::RunModel("LayerGCN", ds, cfg, options,
                                             &checkpoints);
      auto add = [&](const std::string& epoch_label,
                     const eval::RankingMetrics& m) {
        table.AddRow({dataset_name, variant.label, epoch_label,
                      util::TablePrinter::Num(m.recall.at(20)),
                      util::TablePrinter::Num(m.recall.at(50)),
                      util::TablePrinter::Num(m.ndcg.at(20)),
                      util::TablePrinter::Num(m.ndcg.at(50))});
      };
      for (const auto& cp : checkpoints) {
        add(std::to_string(cp.epoch), cp.metrics);
      }
      add("Best(" + std::to_string(row.result.best_epoch) + ")",
          row.result.test_metrics);
      std::printf("  %s / %-10s done (best epoch %d)\n", dataset_name.c_str(),
                  variant.label, row.result.best_epoch);
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper Table IV: DegreeDrop should match or beat\n"
      "DropEdge at the same epoch and at the best epoch on most rows.\n");
  return 0;
}
