// Benchmark: cost of the observability subsystem on a real training run.
//
// Trains the same LayerGCN configuration twice per repetition on one shared
// synthetic dataset: once with every runtime switch off (the
// zero-cost-when-disabled claim — each instrumentation site is one relaxed
// atomic load and a branch) and once fully instrumented (metrics + trace
// recording + JSONL telemetry streaming). Repetitions alternate and the
// minimum wall-clock of each mode is compared, which suppresses scheduler
// noise better than means on a busy box.
//
// A second pass measures the serving path the same way: a synthetic
// snapshot is driven through RecommendService once with observability off
// (plain Recommend, metrics compiled in but switched off) and once fully
// instrumented (RequestContext threading, per-request access-log record,
// stats recording with periodic gauge refresh). Same alternating min-of-N
// discipline, same acceptance bound.
//
// Emits BENCH_obs_overhead.json. Acceptance: full instrumentation costs
// less than 3% wall-clock versus disabled, on both the training and the
// serving pass.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "core/api.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "experiments/env.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "serve/access_log.h"
#include "serve/recommend_service.h"
#include "serve/request_context.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "train/trainer.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace layergcn;

namespace {

constexpr char kTelemetryPath[] = "BENCH_obs_overhead_telemetry.jsonl";

double RunOnce(const data::Dataset& dataset, const train::TrainConfig& cfg,
               bool instrumented) {
  obs::SetEnabled(instrumented);
  obs::SetTraceEnabled(instrumented);
  obs::TraceRecorder::Global().Clear();

  auto model = core::CreateModel("LayerGCN");
  train::TrainOptions options;
  options.report_ks = {20};
  if (instrumented) options.telemetry_path = kTelemetryPath;

  util::Timer timer;
  const train::TrainResult result = train::FitRecommender(
      model.get(), dataset, core::AdaptConfig("LayerGCN", cfg), options);
  const double seconds = timer.ElapsedSeconds();
  (void)result;

  obs::SetTraceEnabled(false);
  obs::SetEnabled(true);
  return seconds;
}

constexpr char kAccessLogPath[] = "BENCH_obs_overhead_access.jsonl";

// One serving sweep: `requests` single-user recommendations against the
// published snapshot. Instrumented mode runs the full per-request
// observability path the driver uses — context threading, stats recording,
// access-log append; disabled mode is the plain Recommend with every
// runtime switch off.
double RunServeSweep(serve::RecommendService* service, int64_t requests,
                     int32_t num_users, bool instrumented, uint64_t seed) {
  obs::SetEnabled(instrumented);
  serve::AccessLog log;
  if (instrumented && !log.Open(kAccessLogPath)) {
    std::fprintf(stderr, "cannot open %s\n", kAccessLogPath);
    std::exit(1);
  }
  util::Rng rng(seed);
  util::Timer timer;
  for (int64_t i = 0; i < requests; ++i) {
    serve::RecommendRequest req;
    req.user_id = static_cast<int32_t>(
        rng.NextBounded(static_cast<uint64_t>(num_users)));
    req.k = 20;
    if (instrumented) {
      serve::RequestContext ctx;
      ctx.id = static_cast<uint64_t>(i) + 1;
      ctx.submit_us = obs::NowMicros();
      const util::StatusOr<serve::RecommendResponse> r =
          service->Recommend(req, &ctx);
      (void)r;
      ctx.done_us = obs::NowMicros();
      service->stats().Record(ctx, ctx.done_us);
      log.Append(ctx);
    } else {
      const util::StatusOr<serve::RecommendResponse> r =
          service->Recommend(req);
      (void)r;
    }
  }
  const double seconds = timer.ElapsedSeconds();
  if (instrumented) log.Close();
  obs::SetEnabled(true);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Observability overhead on a training run", env);

  // The fast profile still needs multi-second runs: resolving a 3% bound
  // requires the timed region to dwarf scheduler jitter and the fixed costs
  // of opening sinks, so the dataset stays moderately large even here.
  data::SyntheticConfig cfg;
  cfg.name = "obs-bench";
  const double s = env.Scale(0.5, 1.0);
  cfg.num_users = static_cast<int32_t>(4000 * s);
  cfg.num_items = static_cast<int32_t>(2000 * s);
  cfg.num_interactions = static_cast<int64_t>(120000 * s);
  cfg.num_clusters = 16;
  const data::Dataset dataset = data::ChronologicalSplitDataset(
      cfg.name, cfg.num_users, cfg.num_items,
      data::GenerateInteractions(cfg, env.seed));
  std::printf("%s\n", dataset.Summary().c_str());

  train::TrainConfig train_cfg;
  train_cfg.embedding_dim = 32;
  train_cfg.num_layers = 3;
  train_cfg.batch_size = 1024;
  train_cfg.max_epochs = env.Epochs(6, 12);
  train_cfg.early_stop_patience = 1000;  // fixed-length run for fair timing
  train_cfg.seed = env.seed;

  // Warm up allocator, thread pool, and code paths outside the timed runs.
  std::printf("warmup...\n");
  RunOnce(dataset, train_cfg, /*instrumented=*/false);

  constexpr int kReps = 3;
  double disabled_min = 1e300;
  double enabled_min = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = RunOnce(dataset, train_cfg, /*instrumented=*/false);
    const double on = RunOnce(dataset, train_cfg, /*instrumented=*/true);
    disabled_min = std::min(disabled_min, off);
    enabled_min = std::min(enabled_min, on);
    std::printf("rep %d: disabled %.3fs, instrumented %.3fs\n", rep + 1, off,
                on);
  }
  std::remove(kTelemetryPath);

  const double overhead =
      disabled_min > 0.0 ? (enabled_min - disabled_min) / disabled_min : 0.0;
  std::printf("min disabled %.3fs, min instrumented %.3fs, overhead %.2f%%\n",
              disabled_min, enabled_min, overhead * 100.0);

  // --- Serving pass ---------------------------------------------------
  const int32_t serve_users = static_cast<int32_t>(2000 * s);
  const int32_t serve_items = static_cast<int32_t>(8000 * s);
  train::ServingExport ex;
  ex.version = 1;
  ex.user_emb = tensor::Matrix(serve_users, 48);
  ex.item_emb = tensor::Matrix(serve_items, 48);
  util::Rng snap_rng(env.seed + 17);
  ex.user_emb.UniformInit(&snap_rng, -0.5f, 0.5f);
  ex.item_emb.UniformInit(&snap_rng, -0.5f, 0.5f);
  ex.user_history.resize(static_cast<size_t>(serve_users));
  const std::string snap_dir =
      std::filesystem::temp_directory_path() / "bench_obs_overhead_snap";
  std::filesystem::remove_all(snap_dir);
  std::filesystem::create_directories(snap_dir);
  const util::Status snap_saved = train::SaveServingExport(
      serve::SnapshotStore::SnapshotPath(snap_dir, 1), ex);
  if (!snap_saved.ok()) {
    std::fprintf(stderr, "snapshot export failed: %s\n",
                 snap_saved.ToString().c_str());
    return 1;
  }
  serve::SnapshotStore store(snap_dir);
  if (!store.Reload().ok()) {
    std::fprintf(stderr, "snapshot load failed\n");
    return 1;
  }
  // Cache off so every request runs the scoring kernel — the path whose
  // per-request instrumentation cost the bound is about.
  serve::RecommendServiceOptions serve_opt;
  serve_opt.score_cache_capacity = 0;
  serve::RecommendService service(&store, serve_opt);

  // Each sweep must run seconds, not tenths — the same jitter argument as
  // the training pass, and the serve path is ~250us/request.
  const int64_t serve_requests = env.Epochs(10000, 30000);
  std::printf("serve warmup...\n");
  RunServeSweep(&service, serve_requests / 4 + 1, serve_users,
                /*instrumented=*/false, env.seed);
  constexpr int kServeReps = 5;
  double serve_disabled_min = 1e300;
  double serve_enabled_min = 1e300;
  for (int rep = 0; rep < kServeReps; ++rep) {
    const double off = RunServeSweep(&service, serve_requests, serve_users,
                                     /*instrumented=*/false, env.seed + 1);
    const double on = RunServeSweep(&service, serve_requests, serve_users,
                                    /*instrumented=*/true, env.seed + 1);
    serve_disabled_min = std::min(serve_disabled_min, off);
    serve_enabled_min = std::min(serve_enabled_min, on);
    std::printf("serve rep %d: disabled %.3fs, instrumented %.3fs\n", rep + 1,
                off, on);
  }
  std::remove(kAccessLogPath);
  const double serve_overhead =
      serve_disabled_min > 0.0
          ? (serve_enabled_min - serve_disabled_min) / serve_disabled_min
          : 0.0;
  std::printf(
      "serve: %ld req/sweep, min disabled %.3fs, min instrumented %.3fs, "
      "overhead %.2f%%\n",
      static_cast<long>(serve_requests), serve_disabled_min,
      serve_enabled_min, serve_overhead * 100.0);

  FILE* out = std::fopen("BENCH_obs_overhead.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs_overhead.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"obs_overhead\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"epochs\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"disabled_seconds\": %.6f,\n"
               "  \"instrumented_seconds\": %.6f,\n"
               "  \"overhead_fraction\": %.6f,\n"
               "  \"serve_requests\": %ld,\n"
               "  \"serve_disabled_seconds\": %.6f,\n"
               "  \"serve_instrumented_seconds\": %.6f,\n"
               "  \"serve_overhead_fraction\": %.6f\n"
               "}\n",
               dataset.num_users, dataset.num_items, train_cfg.max_epochs,
               kReps, disabled_min, enabled_min, overhead,
               static_cast<long>(serve_requests), serve_disabled_min,
               serve_enabled_min, serve_overhead);
  std::fclose(out);
  std::printf("wrote BENCH_obs_overhead.json\n");

  bool ok = true;
  if (overhead >= 0.03) {
    std::printf("acceptance: FAIL (training overhead %.2f%% >= 3%%)\n",
                overhead * 100.0);
    ok = false;
  }
  if (serve_overhead >= 0.03) {
    std::printf("acceptance: FAIL (serving overhead %.2f%% >= 3%%)\n",
                serve_overhead * 100.0);
    ok = false;
  }
  std::printf("acceptance (<3%% overhead): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
