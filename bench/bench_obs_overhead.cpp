// Benchmark: cost of the observability subsystem on a real training run.
//
// Trains the same LayerGCN configuration twice per repetition on one shared
// synthetic dataset: once with every runtime switch off (the
// zero-cost-when-disabled claim — each instrumentation site is one relaxed
// atomic load and a branch) and once fully instrumented (metrics + trace
// recording + JSONL telemetry streaming). Repetitions alternate and the
// minimum wall-clock of each mode is compared, which suppresses scheduler
// noise better than means on a busy box.
//
// Emits BENCH_obs_overhead.json. Acceptance: full instrumentation costs
// less than 3% wall-clock versus disabled.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "core/api.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "experiments/env.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "train/trainer.h"
#include "util/timer.h"

using namespace layergcn;

namespace {

constexpr char kTelemetryPath[] = "BENCH_obs_overhead_telemetry.jsonl";

double RunOnce(const data::Dataset& dataset, const train::TrainConfig& cfg,
               bool instrumented) {
  obs::SetEnabled(instrumented);
  obs::SetTraceEnabled(instrumented);
  obs::TraceRecorder::Global().Clear();

  auto model = core::CreateModel("LayerGCN");
  train::TrainOptions options;
  options.report_ks = {20};
  if (instrumented) options.telemetry_path = kTelemetryPath;

  util::Timer timer;
  const train::TrainResult result = train::FitRecommender(
      model.get(), dataset, core::AdaptConfig("LayerGCN", cfg), options);
  const double seconds = timer.ElapsedSeconds();
  (void)result;

  obs::SetTraceEnabled(false);
  obs::SetEnabled(true);
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Observability overhead on a training run", env);

  // The fast profile still needs multi-second runs: resolving a 3% bound
  // requires the timed region to dwarf scheduler jitter and the fixed costs
  // of opening sinks, so the dataset stays moderately large even here.
  data::SyntheticConfig cfg;
  cfg.name = "obs-bench";
  const double s = env.Scale(0.5, 1.0);
  cfg.num_users = static_cast<int32_t>(4000 * s);
  cfg.num_items = static_cast<int32_t>(2000 * s);
  cfg.num_interactions = static_cast<int64_t>(120000 * s);
  cfg.num_clusters = 16;
  const data::Dataset dataset = data::ChronologicalSplitDataset(
      cfg.name, cfg.num_users, cfg.num_items,
      data::GenerateInteractions(cfg, env.seed));
  std::printf("%s\n", dataset.Summary().c_str());

  train::TrainConfig train_cfg;
  train_cfg.embedding_dim = 32;
  train_cfg.num_layers = 3;
  train_cfg.batch_size = 1024;
  train_cfg.max_epochs = env.Epochs(6, 12);
  train_cfg.early_stop_patience = 1000;  // fixed-length run for fair timing
  train_cfg.seed = env.seed;

  // Warm up allocator, thread pool, and code paths outside the timed runs.
  std::printf("warmup...\n");
  RunOnce(dataset, train_cfg, /*instrumented=*/false);

  constexpr int kReps = 3;
  double disabled_min = 1e300;
  double enabled_min = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = RunOnce(dataset, train_cfg, /*instrumented=*/false);
    const double on = RunOnce(dataset, train_cfg, /*instrumented=*/true);
    disabled_min = std::min(disabled_min, off);
    enabled_min = std::min(enabled_min, on);
    std::printf("rep %d: disabled %.3fs, instrumented %.3fs\n", rep + 1, off,
                on);
  }
  std::remove(kTelemetryPath);

  const double overhead =
      disabled_min > 0.0 ? (enabled_min - disabled_min) / disabled_min : 0.0;
  std::printf("min disabled %.3fs, min instrumented %.3fs, overhead %.2f%%\n",
              disabled_min, enabled_min, overhead * 100.0);

  FILE* out = std::fopen("BENCH_obs_overhead.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_obs_overhead.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"obs_overhead\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"epochs\": %d,\n"
               "  \"reps\": %d,\n"
               "  \"disabled_seconds\": %.6f,\n"
               "  \"instrumented_seconds\": %.6f,\n"
               "  \"overhead_fraction\": %.6f\n"
               "}\n",
               dataset.num_users, dataset.num_items, train_cfg.max_epochs,
               kReps, disabled_min, enabled_min, overhead);
  std::fclose(out);
  std::printf("wrote BENCH_obs_overhead.json\n");

  const bool ok = overhead < 0.03;
  std::printf("acceptance (<3%% overhead): %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
