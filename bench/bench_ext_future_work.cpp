// Extension experiments beyond the paper's evaluation — the two directions
// its §VI names as future work, implemented in this library:
//
//   1. Self-supervised signals: LayerGCN-SSL (two-view DegreeDrop
//      contrastive InfoNCE, SGL/SelfCF style) vs plain LayerGCN.
//   2. Content-based settings: LayerGCN with synthetic content features,
//      in both §II-B integration modes (ego fusion / late fusion),
//      with informative vs pure-noise features as a control.

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "util/strings.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner(
      "Extensions (paper SVI future work): SSL and content features", env);

  // Content experiments need the generator's latent clusters, so build the
  // dataset from GenerateInteractionsWithClusters directly.
  const data::SyntheticConfig gen =
      data::GamesLikeConfig(env.Scale(0.5, 1.0));
  const data::SyntheticOutput out =
      data::GenerateInteractionsWithClusters(gen, env.seed);
  const data::Dataset ds = data::ChronologicalSplitDataset(
      gen.name, gen.num_users, gen.num_items, out.interactions);
  std::printf("%s\n", ds.Summary().c_str());

  train::TrainConfig cfg;
  cfg.seed = env.seed;
  cfg.num_layers = 4;
  cfg.max_epochs = env.Epochs(35, 200);
  cfg.early_stop_patience = env.full ? 50 : cfg.max_epochs;
  cfg.edge_drop_ratio = 0.1;
  if (!env.full) {
    cfg.embedding_dim = 32;
    cfg.batch_size = 1024;
  }

  util::TablePrinter table("Extension comparison [games]");
  table.SetHeader({"variant", "R@20", "N@20", "best epoch"});
  auto add = [&](const std::string& label, train::Recommender* model) {
    const train::TrainResult r = train::FitRecommender(model, ds, cfg);
    table.AddRow({label,
                  util::TablePrinter::Num(r.test_metrics.recall.at(20)),
                  util::TablePrinter::Num(r.test_metrics.ndcg.at(20)),
                  std::to_string(r.best_epoch)});
    std::printf("  %-34s done\n", label.c_str());
    std::fflush(stdout);
  };

  {
    core::LayerGcn base;
    add("LayerGCN (paper)", &base);
  }
  for (float lambda : {5e-5f, 2e-4f, 1e-3f}) {
    core::SslOptions ssl_opts;
    ssl_opts.weight = lambda;
    core::LayerGcnSsl ssl(ssl_opts);
    add(util::StrFormat("LayerGCN-SSL (lambda=%.0e)", lambda), &ssl);
  }

  // Content features: cluster-informed vs pure noise (control).
  std::vector<int> clusters = out.user_clusters;
  clusters.insert(clusters.end(), out.item_clusters.begin(),
                  out.item_clusters.end());
  const int feature_dim = 16;
  const tensor::Matrix informative = data::MakeClusterFeatures(
      clusters, gen.num_clusters, feature_dim, /*noise=*/0.3, env.seed + 1);
  const tensor::Matrix noise_only = data::MakeClusterFeatures(
      std::vector<int>(clusters.size(), 0), 1, feature_dim, /*noise=*/1.0,
      env.seed + 2);
  {
    core::LayerGcnContent m(informative, core::ContentMode::kEgoFusion);
    add("+content, ego fusion (informative)", &m);
  }
  {
    core::LayerGcnContent m(informative, core::ContentMode::kLateFusion);
    add("+content, late fusion (informative)", &m);
  }
  {
    core::LayerGcnContent m(noise_only, core::ContentMode::kEgoFusion);
    add("+content, ego fusion (noise ctrl)", &m);
  }
  table.Print();
  std::printf(
      "\nExpected shape: small SSL weights are neutral-to-mildly-positive at\n"
      "this scale (contrastive signals matter more on large sparse graphs;\n"
      "see SslOptions' scale note); informative content roughly matches\n"
      "plain LayerGCN while pure-noise content must not help (control).\n");
  return 0;
}
