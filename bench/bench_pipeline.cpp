// Benchmark: the continuous ingest → train → publish → serve pipeline.
//
// Three passes over temp-dir pipelines (DESIGN.md §16):
//
//   ingest     durable WAL throughput: events/sec through
//              PipelineSupervisor::Ingest (frame + CRC + fsync batch +
//              delta merge), with training disabled by a high cadence
//   publish    SnapshotPublisher latency distribution: stage, validate,
//              rotate, reload — the time a trained model takes to become
//              the serving snapshot
//   freshness  event → served end to end: per cycle, the wall-clock from
//              the Ingest() of the batch that crosses the training
//              cadence to the moment a Recommend response is stamped with
//              the newly published version (fine-tune included — this is
//              the number EXPERIMENTS.md's freshness-vs-quality table
//              tracks)
//
// Emits BENCH_pipeline.json. Acceptance: every publish lands, every
// freshness cycle publishes a new version, and the post-publish probe
// request serves it.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "experiments/env.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "pipeline/supervisor.h"
#include "pipeline/wal.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "util/rng.h"
#include "util/status.h"

using namespace layergcn;

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

pipeline::WalRecord EventAt(uint64_t seed, int64_t i) {
  const uint64_t h = Mix64(seed ^ static_cast<uint64_t>(i));
  pipeline::WalRecord r;
  r.user = static_cast<int32_t>(h % static_cast<uint64_t>(64 + i / 16));
  r.item =
      static_cast<int32_t>((h >> 32) % static_cast<uint64_t>(96 + i / 10));
  r.timestamp = i;
  return r;
}

std::vector<pipeline::WalRecord> Batch(uint64_t seed, int64_t begin,
                                       int64_t end) {
  std::vector<pipeline::WalRecord> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) out.push_back(EventAt(seed, i));
  return out;
}

std::string FreshDir(const char* name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

double Percentile(std::vector<uint64_t>* v, double q) {
  if (v->empty()) return 0.0;
  std::sort(v->begin(), v->end());
  const size_t idx = std::min(
      v->size() - 1, static_cast<size_t>(q * static_cast<double>(v->size())));
  return static_cast<double>((*v)[idx]);
}

pipeline::SupervisorOptions PipelineOptions(const std::string& root,
                                            uint64_t seed) {
  pipeline::SupervisorOptions options;
  options.root_dir = root;
  options.snapshot_dir = root + "/snapshots";
  options.train_config.embedding_dim = 16;
  options.train_config.num_layers = 2;
  options.train_config.batch_size = 1024;
  options.train_config.seed = seed;
  options.warm.bootstrap_epochs = 2;
  options.warm.fine_tune_epochs = 1;
  options.warm.quality_k = 10;
  options.warm.max_quality_drop = 1.0;  // measure plumbing, not ranking
  options.publish.backoff_base_us = 1'000;
  options.publish.backoff_max_us = 50'000;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Continuous pipeline throughput & freshness", env);
  obs::SetEnabled(true);

  const double s = env.Scale(0.25, 1.0);
  bool ok = true;

  // --- Pass 1: durable ingest throughput --------------------------------
  const int64_t ingest_batches = 20;
  const int64_t ingest_batch_events = static_cast<int64_t>(4000 * s);
  double ingest_events_per_sec = 0.0;
  int64_t ingest_wal_bytes = 0;
  {
    const std::string root = FreshDir("bench_pipeline_ingest");
    serve::SnapshotStore store(root + "/snapshots");
    pipeline::SupervisorOptions options = PipelineOptions(root, env.seed);
    options.min_train_events = ingest_batches * ingest_batch_events + 1;
    pipeline::PipelineSupervisor supervisor(options, &store);
    if (!supervisor.Start().ok()) return 1;

    const uint64_t t0 = obs::NowMicros();
    for (int64_t b = 0; b < ingest_batches; ++b) {
      const util::Status st = supervisor.Ingest(Batch(
          env.seed, b * ingest_batch_events, (b + 1) * ingest_batch_events));
      if (!st.ok()) {
        std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    const uint64_t us = obs::NowMicros() - t0;
    const int64_t total = ingest_batches * ingest_batch_events;
    ingest_events_per_sec =
        us > 0 ? 1e6 * static_cast<double>(total) / static_cast<double>(us)
               : 0.0;
    pipeline::WalRecoveryStats stats;
    (void)pipeline::InteractionWal::ReadAll(root + "/wal", &stats).status();
    ingest_wal_bytes = stats.bytes;
    std::printf("ingest: %lld events in %.1f ms (%.0f events/sec, "
                "%lld WAL bytes)\n",
                static_cast<long long>(total),
                static_cast<double>(us) / 1e3, ingest_events_per_sec,
                static_cast<long long>(ingest_wal_bytes));
  }

  // --- Pass 2: publish latency ------------------------------------------
  const int publish_count = 8;
  std::vector<uint64_t> publish_us;
  {
    const std::string dir = FreshDir("bench_pipeline_publish");
    serve::SnapshotStore store(dir);
    pipeline::PublisherOptions options;
    options.backoff_base_us = 1'000;
    pipeline::SnapshotPublisher publisher(&store, options);

    const int32_t num_users = static_cast<int32_t>(2000 * s);
    const int32_t num_items = static_cast<int32_t>(4000 * s);
    tensor::Matrix user_emb(num_users, 64), item_emb(num_items, 64);
    util::Rng rng(env.seed);
    user_emb.UniformInit(&rng, -0.5f, 0.5f);
    item_emb.UniformInit(&rng, -0.5f, 0.5f);
    std::vector<std::vector<int32_t>> history(
        static_cast<size_t>(num_users));
    for (int32_t u = 0; u < num_users; ++u) {
      for (int32_t i = u % 53; i < num_items; i += 53) {
        history[static_cast<size_t>(u)].push_back(i);
      }
    }
    for (int64_t v = 1; v <= publish_count; ++v) {
      const uint64_t t0 = obs::NowMicros();
      const util::Status st =
          publisher.Publish({&user_emb, &item_emb}, history, v);
      if (!st.ok()) {
        std::fprintf(stderr, "publish %lld failed: %s\n",
                     static_cast<long long>(v), st.ToString().c_str());
        ok = false;
        break;
      }
      publish_us.push_back(obs::NowMicros() - t0);
    }
    std::printf("publish: %zu publishes (%d users x %d items), p50 %.0f us, "
                "p99 %.0f us\n",
                publish_us.size(), num_users, num_items,
                Percentile(&publish_us, 0.5), Percentile(&publish_us, 0.99));
  }

  // --- Pass 3: event -> served freshness --------------------------------
  const int freshness_cycles = 4;
  const int64_t fresh_batch = static_cast<int64_t>(1200 * s);
  std::vector<uint64_t> freshness_us;
  {
    const std::string root = FreshDir("bench_pipeline_fresh");
    serve::SnapshotStore store(root + "/snapshots");
    pipeline::SupervisorOptions options = PipelineOptions(root, env.seed);
    // Events dedup in the ingestor, so the per-cycle accepted count is below
    // the raw batch size; half the batch keeps every cycle above cadence.
    options.min_train_events = fresh_batch / 2;
    pipeline::PipelineSupervisor supervisor(options, &store);
    if (!supervisor.Start().ok()) return 1;
    serve::RecommendService service(&store);

    for (int cycle = 0; cycle < freshness_cycles; ++cycle) {
      const int64_t base = supervisor.events_committed();
      const int64_t version_before = supervisor.manifest().version;
      const uint64_t t0 = obs::NowMicros();
      if (!supervisor.Ingest(Batch(env.seed, base, base + fresh_batch)).ok() ||
          !supervisor.RunCycle().ok()) {
        ok = false;
        break;
      }
      if (supervisor.manifest().version <= version_before) {
        std::fprintf(stderr, "freshness cycle %d did not publish\n", cycle);
        ok = false;
        break;
      }
      // The event is "served" once a live request carries the new version.
      const auto r = service.Recommend({0, 10, 0});
      if (!r.ok() ||
          r.value().snapshot_version != supervisor.manifest().version) {
        std::fprintf(stderr, "freshness cycle %d not serving v%lld\n", cycle,
                     static_cast<long long>(supervisor.manifest().version));
        ok = false;
        break;
      }
      freshness_us.push_back(obs::NowMicros() - t0);
    }
    std::printf("freshness: %zu cycles of %lld events, p50 %.0f us, "
                "max %.0f us (ingest + fine-tune + publish + serve)\n",
                freshness_us.size(), static_cast<long long>(fresh_batch),
                Percentile(&freshness_us, 0.5),
                Percentile(&freshness_us, 1.0));
  }

  FILE* out = std::fopen("BENCH_pipeline.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_pipeline.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"pipeline\",\n"
               "  \"ingest\": {\"batches\": %lld, \"batch_events\": %lld, "
               "\"events_per_sec\": %.0f, \"wal_bytes\": %lld},\n"
               "  \"publish\": {\"count\": %zu, \"p50_us\": %.0f, "
               "\"p99_us\": %.0f},\n"
               "  \"freshness\": {\"cycles\": %zu, \"batch_events\": %lld, "
               "\"p50_us\": %.0f, \"max_us\": %.0f},\n"
               "  \"acceptance\": %s\n"
               "}\n",
               static_cast<long long>(ingest_batches),
               static_cast<long long>(ingest_batch_events),
               ingest_events_per_sec,
               static_cast<long long>(ingest_wal_bytes), publish_us.size(),
               Percentile(&publish_us, 0.5), Percentile(&publish_us, 0.99),
               freshness_us.size(), static_cast<long long>(fresh_batch),
               Percentile(&freshness_us, 0.5), Percentile(&freshness_us, 1.0),
               ok ? "true" : "false");
  std::fclose(out);
  std::printf("wrote BENCH_pipeline.json\n");
  std::printf("acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
