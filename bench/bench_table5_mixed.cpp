// Table V — LayerGCN with mixed DegreeDrop + DropEdge pruning.
//
// The Mixed sampler alternates DegreeDrop (even epochs) and DropEdge (odd
// epochs) when resampling Â_p (paper §V-C3).

#include <cstdio>

#include "core/api.h"
#include "experiments/env.h"
#include "experiments/runner.h"
#include "util/table_printer.h"

using namespace layergcn;

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner(
      "Table V: LayerGCN with mixed DegreeDrop and DropEdge", env);
  const double scale = env.Scale(0.5, 1.0);

  train::TrainConfig base;
  base.seed = env.seed;
  base.max_epochs = env.Epochs(40, 300);
  base.early_stop_patience = env.full ? 50 : base.max_epochs;
  base.edge_drop_ratio = 0.1;
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
  }

  util::TablePrinter table("Table V");
  table.SetHeader({"Datasets", "Dropout Types", "R@20", "R@50", "N@20",
                   "N@50"});
  for (const std::string& dataset_name : data::BenchmarkDatasetNames()) {
    const data::Dataset ds =
        data::MakeBenchmarkDataset(dataset_name, scale, env.seed);
    struct Variant {
      const char* label;
      graph::EdgeDropKind kind;
    };
    for (const Variant& v :
         {Variant{"DropEdge", graph::EdgeDropKind::kDropEdge},
          Variant{"Mixed", graph::EdgeDropKind::kMixed},
          Variant{"DegreeDrop", graph::EdgeDropKind::kDegreeDrop}}) {
      train::TrainConfig cfg = base;
      cfg.edge_drop_kind = v.kind;
      const auto row = experiments::RunModel("LayerGCN", ds, cfg);
      const auto& m = row.result.test_metrics;
      table.AddRow({dataset_name, v.label,
                    util::TablePrinter::Num(m.recall.at(20)),
                    util::TablePrinter::Num(m.recall.at(50)),
                    util::TablePrinter::Num(m.ndcg.at(20)),
                    util::TablePrinter::Num(m.ndcg.at(50))});
      std::printf("  %s / %-10s done\n", dataset_name.c_str(), v.label);
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper Table V: Mixed should usually sit between\n"
      "DropEdge and DegreeDrop, with DegreeDrop best on most rows.\n");
  return 0;
}
