// Table II — overall performance comparison.
//
// Trains every model of the paper's comparison (BPR, MultiVAE, EHCF, BUIR,
// NGCF, LR-GCCF, LightGCN, UltraGCN, IMP-GCN, LayerGCN w/o Dropout,
// LayerGCN Full) on the four datasets and reports R@{10,20,50} and
// N@{10,20,50}, the best baseline (underlined in the paper), LayerGCN's
// improvement percentage, and a per-user paired t-test between LayerGCN
// (Full) and the best baseline at K=20 (the paper's '*' significance mark).
//
// As in the paper, LightGCN searches its layer count in [1, 4] (fast
// profile: {2, 4}) while LayerGCN is fixed at 4 layers.

#include <cstdio>
#include <map>
#include <memory>

#include "core/api.h"
#include "experiments/env.h"
#include "experiments/runner.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace layergcn;

namespace {

struct ModelResult {
  eval::RankingMetrics metrics;
  std::unique_ptr<train::Recommender> model;  // kept for the t-test
};

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Table II: overall performance comparison", env);
  const double scale = env.Scale(0.5, 1.0);
  const int epochs = env.Epochs(45, 200);

  train::TrainConfig base;
  base.seed = env.seed;
  base.max_epochs = epochs;
  base.early_stop_patience = env.full ? 50 : 20;
  base.num_layers = 4;
  base.edge_drop_ratio = 0.1;
  base.l2_reg = 1e-4;
  if (!env.full) {
    base.embedding_dim = 32;
    base.batch_size = 1024;
    base.ultra_num_negatives = 5;
  }

  const std::vector<std::string> models = core::TableTwoModelNames();
  const std::vector<int> ks = {10, 20, 50};

  for (const std::string& dataset_name : data::BenchmarkDatasetNames()) {
    const data::Dataset ds =
        data::MakeBenchmarkDataset(dataset_name, scale, env.seed);
    std::printf("\n%s\n", ds.Summary().c_str());

    std::map<std::string, ModelResult> results;
    for (const std::string& name : models) {
      util::Timer timer;
      train::TrainConfig cfg = core::AdaptConfig(name, base);
      std::unique_ptr<train::Recommender> model = core::CreateModel(name);
      train::TrainResult best;
      std::unique_ptr<train::Recommender> best_model;
      if (name == "LightGCN") {
        // Paper §V-B: LightGCN searches layers in [1, 4].
        const std::vector<int> layer_grid =
            env.full ? std::vector<int>{1, 2, 3, 4} : std::vector<int>{2, 4};
        for (int layers : layer_grid) {
          cfg.num_layers = layers;
          auto candidate = core::CreateModel(name);
          train::TrainResult r =
              train::FitRecommender(candidate.get(), ds, cfg);
          if (!best_model || r.best_valid_score > best.best_valid_score) {
            best = std::move(r);
            best_model = std::move(candidate);
          }
        }
      } else {
        best_model = core::CreateModel(name);
        best = train::FitRecommender(best_model.get(), ds, cfg);
      }
      std::printf("  %-16s trained (best epoch %3d, %s)\n", name.c_str(),
                  best.best_epoch,
                  util::FormatDuration(best.train_seconds).c_str());
      std::fflush(stdout);
      results[name] = {best.test_metrics, std::move(best_model)};
    }

    // Best baseline per metric (everything except the LayerGCN variants).
    auto is_baseline = [](const std::string& m) {
      return m != "LayerGCN" && m != "LayerGCN-noDrop";
    };
    util::TablePrinter table("Table II [" + dataset_name + "]");
    std::vector<std::string> header{"Metric"};
    for (const auto& m : models) header.push_back(m);
    header.push_back("best-baseline");
    header.push_back("improv.%");
    table.SetHeader(header);

    std::string best_baseline_at20;
    for (const char kind : {'R', 'N'}) {
      for (int k : ks) {
        std::vector<std::string> row{
            std::string(1, kind) + "@" + std::to_string(k)};
        double best_base = 0;
        std::string best_name;
        double layergcn_full = 0;
        for (const auto& m : models) {
          const auto& metrics = results[m].metrics;
          const double v =
              kind == 'R' ? metrics.recall.at(k) : metrics.ndcg.at(k);
          row.push_back(util::TablePrinter::Num(v));
          if (is_baseline(m) && v > best_base) {
            best_base = v;
            best_name = m;
          }
          if (m == "LayerGCN") layergcn_full = v;
        }
        row.push_back(best_name);
        row.push_back(util::TablePrinter::Num(
            best_base > 0 ? (layergcn_full - best_base) * 100.0 / best_base
                          : 0.0,
            2));
        table.AddRow(row);
        if (kind == 'R' && k == 20) best_baseline_at20 = best_name;
      }
    }
    table.Print();

    // Paired t-test: LayerGCN (Full) vs the best baseline, per-user R@20.
    if (!best_baseline_at20.empty()) {
      eval::Evaluator evaluator(&ds, {20});
      auto score_fn = [](train::Recommender* m) {
        m->PrepareEval();
        return [m](const std::vector<int32_t>& users) {
          return m->ScoreUsers(users);
        };
      };
      const auto ours = evaluator.EvaluatePerUser(
          score_fn(results["LayerGCN"].model.get()), eval::EvalSplit::kTest,
          20);
      const auto theirs = evaluator.EvaluatePerUser(
          score_fn(results[best_baseline_at20].model.get()),
          eval::EvalSplit::kTest, 20);
      const eval::TTestResult tt = eval::PairedTTest(ours.recall,
                                                     theirs.recall);
      std::printf(
          "paired t-test (per-user R@20) LayerGCN vs %s: t=%.3f p=%.4f%s\n",
          best_baseline_at20.c_str(), tt.t_statistic, tt.p_value,
          tt.p_value < 0.05 && tt.t_statistic > 0 ? "  (*)" : "");
    }
  }
  std::printf(
      "\nShape check vs paper Table II: LayerGCN (Full) should lead or tie\n"
      "on most metrics; LayerGCN (w/o Dropout) close behind; graph models\n"
      "above BPR.\n");
  return 0;
}
