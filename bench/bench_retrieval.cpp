// Benchmark: two-stage retrieval (IVF candidate generation + exact fused
// re-rank) against the exact full-scan reference.
//
// Builds a clustered synthetic catalog — well-separated item clusters with
// users anchored near them, so each user's true top-20 is concentrated in
// one cluster and the coarse quantizer has real structure to recover —
// publishes it as a snapshot with an ItemIndex, and drives one
// RecommendService in ivf mode:
//
//   parity   requests carrying exact=true must be bit-identical (items AND
//            score bits) to the offline eval::FusedScoreTopK ranking, at a
//            1-thread and an 8-thread compute pool
//   sweep    for each nprobe: Recall@20 of the ivf response against the
//            exact response per user, mean candidates scored, and pinned
//            single-core request throughput in both modes — the two-stage
//            path must buy its speedup without losing the ranking
//
// Emits BENCH_retrieval.json. Acceptance: parity holds at both pool
// widths, and some swept nprobe reaches Recall@20 >= 0.95 with >= 5x the
// exact path's per-core request throughput (the throughput half is skipped
// under LAYERGCN_BENCH_QUALITY_ONLY=1 — sanitizer builds distort relative
// timings).
//
// Set LAYERGCN_BENCH_RETRIEVAL_COMPARE_OUT=prefix to additionally write
// <prefix>-exact.json and <prefix>-ivf.json — two structurally identical
// single-mode summaries bench_diff can pair, which tools/check.sh uses to
// exercise the regression gate in both directions.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "eval/fused_rank.h"
#include "experiments/env.h"
#include "obs/obs.h"
#include "serve/item_index.h"
#include "serve/recommend_service.h"
#include "serve/snapshot.h"
#include "tensor/matrix.h"
#include "train/checkpoint.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

using namespace layergcn;

namespace {

struct SweepResult {
  int32_t nprobe = 0;
  double recall20 = 0.0;          // mean top-20 overlap vs the exact ranking
  double mean_candidates = 0.0;   // items the re-rank scored per request
  double candidate_fraction = 0.0;
  double req_per_sec = 0.0;       // pinned single-core ivf throughput
  double speedup_vs_exact = 0.0;
};

// Clustered catalog: `clusters` centers scaled well apart, every item a
// center plus small noise. Same-cluster inner products dominate
// cross-cluster ones by an order of magnitude, so a user anchored near a
// cluster finds its whole top-20 inside it.
void BuildClusteredExport(train::ServingExport* ex, int32_t num_users,
                          int32_t num_items, int64_t dim, int32_t clusters,
                          uint64_t seed) {
  tensor::Matrix centers(clusters, dim);
  util::Rng rng(seed);
  centers.UniformInit(&rng, -4.f, 4.f);
  ex->item_emb = tensor::Matrix(num_items, dim);
  for (int32_t j = 0; j < num_items; ++j) {
    const float* center = centers.row(j % clusters);
    float* row = ex->item_emb.row(j);
    for (int64_t p = 0; p < dim; ++p) {
      row[p] = center[p] + static_cast<float>(rng.NextUniform(-0.1, 0.1));
    }
  }
  ex->user_emb = tensor::Matrix(num_users, dim);
  ex->user_history.assign(static_cast<size_t>(num_users), {});
  for (int32_t u = 0; u < num_users; ++u) {
    const int32_t anchor = (u * 7919) % num_items;
    const float* arow = ex->item_emb.row(anchor);
    float* row = ex->user_emb.row(u);
    for (int64_t p = 0; p < dim; ++p) {
      row[p] = arow[p] + static_cast<float>(rng.NextUniform(-0.2, 0.2));
    }
    // A small sorted history inside the user's cluster keeps the
    // exclusion-cursor path honest on both retrieval paths.
    std::vector<int32_t>& hist = ex->user_history[static_cast<size_t>(u)];
    hist.push_back(anchor);
    if (anchor + clusters < num_items) hist.push_back(anchor + clusters);
    std::sort(hist.begin(), hist.end());
  }
}

double TopKOverlap(const std::vector<serve::ScoredItem>& a,
                   const std::vector<serve::ScoredItem>& b) {
  std::vector<int32_t> sa, sb;
  for (const serve::ScoredItem& it : a) sa.push_back(it.item);
  for (const serve::ScoredItem& it : b) sb.push_back(it.item);
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::vector<int32_t> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter));
  if (sb.empty()) return 1.0;
  return static_cast<double>(inter.size()) / static_cast<double>(sb.size());
}

// Pinned single-core request throughput: min-of-`reps` wall time over one
// Recommend() per sample user. The caller pins the compute pool.
double MeasureThroughput(serve::RecommendService* service, int32_t sample,
                        int k, bool exact, int reps, bool* all_ok) {
  double best_us = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t t0 = obs::NowMicros();
    for (int32_t u = 0; u < sample; ++u) {
      serve::RecommendRequest req;
      req.user_id = u;
      req.k = k;
      req.exact = exact;
      const util::StatusOr<serve::RecommendResponse> r =
          service->Recommend(req);
      if (!r.ok()) *all_ok = false;
    }
    const double us = static_cast<double>(obs::NowMicros() - t0);
    if (rep == 0 || us < best_us) best_us = us;
  }
  return best_us > 0.0 ? static_cast<double>(sample) / (best_us * 1e-6)
                       : 0.0;
}

// Service exact path vs the offline fused kernel: same items, same score
// bits — the contract that makes exact=true a usable reference.
bool ExactParity(serve::RecommendService* service,
                 const serve::ModelSnapshot& snap, int32_t sample, int k) {
  std::vector<int32_t> user_ids(static_cast<size_t>(sample));
  for (int32_t u = 0; u < sample; ++u) user_ids[static_cast<size_t>(u)] = u;
  std::vector<std::vector<float>> scores;
  const std::vector<std::vector<int32_t>> offline = eval::FusedScoreTopK(
      snap.user_emb(), user_ids, snap.item_emb(), k, &snap.user_history(),
      {}, nullptr, &scores);
  for (int32_t u = 0; u < sample; ++u) {
    serve::RecommendRequest req;
    req.user_id = u;
    req.k = k;
    req.exact = true;
    const util::StatusOr<serve::RecommendResponse> r = service->Recommend(req);
    if (!r.ok()) return false;
    const std::vector<serve::ScoredItem>& served = r.value().items;
    const std::vector<int32_t>& want = offline[static_cast<size_t>(u)];
    if (served.size() != want.size()) return false;
    for (size_t i = 0; i < served.size(); ++i) {
      if (served[i].item != want[i]) return false;
      if (served[i].score != scores[static_cast<size_t>(u)][i]) return false;
    }
  }
  return true;
}

void WriteModeSummary(const std::string& path, double req_per_sec,
                      double recall20) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"retrieval_mode\",\n"
               "  \"serve\": {\"req_per_sec\": %.1f, \"recall20\": %.6f}\n"
               "}\n",
               req_per_sec, recall20);
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const experiments::Env env = experiments::ParseEnv(argc, argv);
  experiments::PrintBanner("Two-stage retrieval vs exact scan", env);
  obs::SetEnabled(true);

  const int32_t num_items = 8000;
  const int32_t num_users = 400;
  const int64_t dim = 64;
  const int32_t clusters = 50;
  const int32_t cells = 64;
  const int k = 20;
  const int32_t sample = static_cast<int32_t>(env.Epochs(150, 400));
  const int reps = 3;

  train::ServingExport ex;
  ex.version = 1;
  BuildClusteredExport(&ex, num_users, num_items, dim, clusters, env.seed);

  const std::string dir =
      std::filesystem::temp_directory_path() / "bench_retrieval";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const util::Status saved = train::SaveServingExport(
      serve::SnapshotStore::SnapshotPath(dir, 1), ex);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot export failed: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  serve::SnapshotStore store(dir);
  serve::ItemIndexOptions index_options;
  index_options.cells = cells;
  store.SetIndexOptions(index_options);
  const util::Status loaded = store.Reload();
  if (!loaded.ok() || store.current() == nullptr) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 loaded.ToString().c_str());
    return 1;
  }
  const serve::ModelSnapshot& snap = *store.current();
  if (!snap.has_index()) {
    std::fprintf(stderr, "index build failed; nothing to benchmark\n");
    return 1;
  }
  std::printf(
      "catalog: %d users x %d items, dim %ld, %d clusters; index: %d "
      "cells (%d empty), built in %lldus\n",
      num_users, num_items, static_cast<long>(dim), clusters,
      snap.item_index().cells(), snap.item_index().empty_cells(),
      static_cast<long long>(snap.item_index().build_us()));

  // Parity first: the exact override is only a reference if it reproduces
  // the offline kernel bit-for-bit at any pool width.
  bool parity_1 = false, parity_8 = false;
  {
    serve::RecommendServiceOptions opt;
    opt.retrieval = serve::RetrievalMode::kIvf;
    opt.score_cache_capacity = 0;
    serve::RecommendService service(&store, opt);
    {
      util::ThreadPool pool(1);
      util::parallel::ScopedComputePool pinned(&pool);
      parity_1 = ExactParity(&service, snap, std::min(sample, 100), k);
    }
    {
      util::ThreadPool pool(8);
      util::parallel::ScopedComputePool pinned(&pool);
      parity_8 = ExactParity(&service, snap, std::min(sample, 100), k);
    }
  }
  std::printf("exact-override parity vs offline kernel: 1 thread %s, 8 "
              "threads %s\n",
              parity_1 ? "yes" : "NO", parity_8 ? "yes" : "NO");

  // Exact baseline throughput, pinned to one core.
  double exact_rps = 0.0;
  bool all_ok = true;
  {
    serve::RecommendServiceOptions opt;
    opt.score_cache_capacity = 0;
    serve::RecommendService service(&store, opt);
    util::ThreadPool pool(1);
    util::parallel::ScopedComputePool pinned(&pool);
    exact_rps =
        MeasureThroughput(&service, sample, k, /*exact=*/false, reps, &all_ok);
  }
  std::printf("exact: %.0f req/s single-core\n", exact_rps);

  std::vector<SweepResult> sweep;
  for (const int32_t nprobe : {1, 2, 4, 8, 16}) {
    serve::RecommendServiceOptions opt;
    opt.retrieval = serve::RetrievalMode::kIvf;
    opt.nprobe = nprobe;
    opt.score_cache_capacity = 0;
    serve::RecommendService service(&store, opt);

    SweepResult r;
    r.nprobe = nprobe;
    int64_t candidate_sum = 0;
    double overlap_sum = 0.0;
    for (int32_t u = 0; u < sample; ++u) {
      serve::RecommendRequest req;
      req.user_id = u;
      req.k = k;
      const util::StatusOr<serve::RecommendResponse> ivf =
          service.Recommend(req);
      req.exact = true;
      const util::StatusOr<serve::RecommendResponse> exact =
          service.Recommend(req);
      if (!ivf.ok() || !exact.ok()) {
        all_ok = false;
        continue;
      }
      candidate_sum += ivf.value().candidates;
      overlap_sum += TopKOverlap(ivf.value().items, exact.value().items);
    }
    r.recall20 = sample > 0 ? overlap_sum / sample : 0.0;
    r.mean_candidates =
        sample > 0 ? static_cast<double>(candidate_sum) / sample : 0.0;
    r.candidate_fraction = r.mean_candidates / num_items;
    {
      util::ThreadPool pool(1);
      util::parallel::ScopedComputePool pinned(&pool);
      r.req_per_sec = MeasureThroughput(&service, sample, k, /*exact=*/false,
                                        reps, &all_ok);
    }
    r.speedup_vs_exact = exact_rps > 0.0 ? r.req_per_sec / exact_rps : 0.0;
    std::printf(
        "nprobe %2d  recall@20 %.4f  candidates %6.0f (%.3f of catalog)  "
        "%.0f req/s  (%.2fx exact)\n",
        r.nprobe, r.recall20, r.mean_candidates, r.candidate_fraction,
        r.req_per_sec, r.speedup_vs_exact);
    sweep.push_back(r);
  }

  // Best operating point: highest speedup among the recall-qualified.
  const SweepResult* best = nullptr;
  for (const SweepResult& r : sweep) {
    if (r.recall20 >= 0.95 &&
        (best == nullptr || r.speedup_vs_exact > best->speedup_vs_exact)) {
      best = &r;
    }
  }

  FILE* out = std::fopen("BENCH_retrieval.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_retrieval.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::WriteBenchEnvJson(out);
  std::fprintf(out,
               "  \"bench\": \"retrieval\",\n"
               "  \"num_users\": %d,\n"
               "  \"num_items\": %d,\n"
               "  \"embedding_dim\": %ld,\n"
               "  \"clusters\": %d,\n"
               "  \"topk\": %d,\n"
               "  \"sample_users\": %d,\n"
               "  \"index\": {\"cells\": %d, \"empty_cells\": %d, "
               "\"build_us\": %lld},\n"
               "  \"exact\": {\"req_per_sec\": %.1f},\n"
               "  \"parity_1_thread\": %s,\n"
               "  \"parity_8_threads\": %s,\n"
               "  \"sweep\": [\n",
               num_users, num_items, static_cast<long>(dim), clusters, k,
               sample, snap.item_index().cells(),
               snap.item_index().empty_cells(),
               static_cast<long long>(snap.item_index().build_us()),
               exact_rps, parity_1 ? "true" : "false",
               parity_8 ? "true" : "false");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    std::fprintf(out,
                 "    {\"nprobe\": %d, \"recall20\": %.6f, "
                 "\"mean_candidates\": %.1f, \"candidate_fraction\": %.5f, "
                 "\"req_per_sec\": %.1f, \"speedup_vs_exact\": %.3f}%s\n",
                 r.nprobe, r.recall20, r.mean_candidates,
                 r.candidate_fraction, r.req_per_sec, r.speedup_vs_exact,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ]");
  if (best != nullptr) {
    std::fprintf(out,
                 ",\n  \"best\": {\"nprobe\": %d, \"recall20\": %.6f, "
                 "\"speedup_vs_exact\": %.3f}\n",
                 best->nprobe, best->recall20, best->speedup_vs_exact);
  } else {
    std::fprintf(out, "\n");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_retrieval.json\n");

  // Optional paired single-mode summaries for bench_diff (tools/check.sh
  // runs the diff in both directions to exercise the regression gate).
  const char* compare_prefix =
      std::getenv("LAYERGCN_BENCH_RETRIEVAL_COMPARE_OUT");
  if (compare_prefix != nullptr && compare_prefix[0] != '\0' &&
      best != nullptr) {
    WriteModeSummary(std::string(compare_prefix) + "-exact.json", exact_rps,
                     1.0);
    WriteModeSummary(std::string(compare_prefix) + "-ivf.json",
                     best->req_per_sec, best->recall20);
  }

  bool ok = true;
  if (!all_ok) {
    std::printf("acceptance: FAIL (some requests returned errors)\n");
    ok = false;
  }
  if (!parity_1 || !parity_8) {
    std::printf("acceptance: FAIL (exact override != offline kernel)\n");
    ok = false;
  }
  if (best == nullptr) {
    std::printf("acceptance: FAIL (no nprobe reached recall@20 >= 0.95)\n");
    ok = false;
  }
  const char* quality_only = std::getenv("LAYERGCN_BENCH_QUALITY_ONLY");
  if (quality_only != nullptr && quality_only[0] == '1') {
    std::printf("throughput gate skipped (LAYERGCN_BENCH_QUALITY_ONLY)\n");
  } else if (best != nullptr && best->speedup_vs_exact < 5.0) {
    std::printf(
        "acceptance: FAIL (best qualified speedup %.2fx < 5x exact at "
        "nprobe %d)\n",
        best->speedup_vs_exact, best->nprobe);
    ok = false;
  }
  std::printf("acceptance: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}
