// Multi-window burn-rate SLO monitoring.
//
// An SLO here is two objectives over a rolling horizon:
//   availability  at most (1 - availability_objective) of requests may fail
//                 for server-side reasons (shed, deadline with nothing
//                 scored, no snapshot, internal errors),
//   latency       at most (1 - latency_objective) of answered requests may
//                 take longer than latency_target_us.
//
// Burn rate is the SRE-workbook ratio: (observed bad fraction) divided by
// (error budget). Burn 1.0 spends the budget exactly at the edge of the
// objective; burn 6.0 spends it six times too fast. The monitor evaluates
// the worse of the two objectives over a short window (reacts fast, noisy)
// and a long window (smooths, slow), and classifies:
//
//   kOk      long-window burn < warn_burn
//   kWarn    long-window burn >= warn_burn, or the short window alone is
//            burning at >= breach_burn (early warning)
//   kBreach  short AND long windows both burn at >= breach_burn — the
//            standard multi-window page condition: fast burn that is not
//            just a blip
//
// Windows are slot-granular rings (slot width = short_window_us): "short"
// merges the current and previous slots, "long" merges every slot in the
// ring. Callers pass now_us explicitly (obs::NowMicros() in production),
// so tests drive the state machine with a synthetic clock — the same
// pattern as serve::CircuitBreaker.
//
// Update() latches the state, counts transitions (slo.transitions) and
// exports slo.state / slo.burn_* gauges. Part of src/obs: standard library
// only (getenv for the LAYERGCN_SLO_* overrides).

#ifndef LAYERGCN_OBS_SLO_H_
#define LAYERGCN_OBS_SLO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace layergcn::obs {

class SloMonitor {
 public:
  struct Options {
    /// Fraction of requests that must not fail server-side.
    double availability_objective = 0.999;
    /// Answered requests slower than this count against the latency SLO.
    uint64_t latency_target_us = 100'000;
    /// Fraction of answered requests that must beat latency_target_us.
    double latency_objective = 0.99;
    /// Short window width; also the ring's slot width.
    uint64_t short_window_us = 5'000'000;
    /// Long window width; rounded up to a multiple of short_window_us.
    uint64_t long_window_us = 60'000'000;
    /// Long-window burn >= this is kWarn.
    double warn_burn = 1.0;
    /// Short + long windows both >= this is kBreach.
    double breach_burn = 6.0;
  };

  enum class State { kOk, kWarn, kBreach };
  static const char* StateName(State state);

  /// `options` overridden by LAYERGCN_SLO_AVAILABILITY,
  /// LAYERGCN_SLO_LATENCY_TARGET_US, LAYERGCN_SLO_LATENCY_OBJECTIVE,
  /// LAYERGCN_SLO_SHORT_WINDOW_US, LAYERGCN_SLO_LONG_WINDOW_US,
  /// LAYERGCN_SLO_WARN_BURN, LAYERGCN_SLO_BREACH_BURN when set and
  /// parseable; malformed values are ignored.
  static Options FromEnv(Options options);

  SloMonitor();  // default Options
  explicit SloMonitor(const Options& options);

  /// Accounts one request. `server_error` = failed for a server-side
  /// reason (availability). `answered` = a response with a meaningful
  /// latency (then `latency_us` feeds the latency objective).
  void Record(uint64_t now_us, bool server_error, bool answered,
              uint64_t latency_us);

  /// Burn rates over both windows; `max_short` / `max_long` are the worse
  /// of the two objectives per window.
  struct Burn {
    double availability_short = 0.0;
    double availability_long = 0.0;
    double latency_short = 0.0;
    double latency_long = 0.0;
    double max_short = 0.0;
    double max_long = 0.0;
    uint64_t total_short = 0;
    uint64_t total_long = 0;
  };
  Burn BurnRates(uint64_t now_us) const;

  /// Re-evaluates the state at `now_us`, latches it, counts a transition
  /// if it changed, and refreshes the slo.* gauges. Returns the new state.
  State Update(uint64_t now_us);

  State state() const;
  /// Lifetime count of state changes latched by Update().
  int64_t transitions() const;

  const Options& options() const { return options_; }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{UINT64_MAX};
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> answered{0};
    std::atomic<uint64_t> slow{0};
  };

  struct WindowTotals {
    uint64_t total = 0, errors = 0, answered = 0, slow = 0;
  };
  WindowTotals Merge(uint64_t now_us, int slots_back) const;
  bool PrepareSlot(Slot* slot, uint64_t epoch);

  const Options options_;
  const int num_slots_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::mutex rotate_mu_;

  mutable std::mutex state_mu_;
  State state_ = State::kOk;
  int64_t transitions_ = 0;
};

}  // namespace layergcn::obs

#endif  // LAYERGCN_OBS_SLO_H_
