#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace layergcn::obs {

void AppendJsonString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_.push_back(',');
    has_elements_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_.push_back('}');
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  has_elements_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_.push_back(']');
  has_elements_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  if (!has_elements_.empty()) {
    if (has_elements_.back()) out_.push_back(',');
    has_elements_.back() = true;
  }
  AppendJsonString(k, &out_);
  out_.push_back(':');
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  AppendJsonString(v, &out_);
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_.append("null");
    return *this;
  }
  char buf[32];
  // %.17g round-trips every IEEE-754 double exactly.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_.append(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  BeforeValue();
  out_.append(std::to_string(v));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_.append(v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_.append("null");
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a bounded view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipSpace();
    if (!ParseValue(out, 0)) {
      if (error != nullptr) {
        *error = message_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const char* msg) {
    message_ = msg;
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return Fail("invalid literal");
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool HexDigit(char c, uint32_t* out) {
    if (c >= '0' && c <= '9') {
      *out = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      *out = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      *out = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
    return true;
  }

  void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i) {
            uint32_t d;
            if (!HexDigit(text_[pos_ + static_cast<size_t>(i)], &d)) {
              return Fail("bad \\u escape");
            }
            cp = (cp << 4) | d;
          }
          pos_ += 4;
          // Surrogate pair handling for completeness.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 6 <= text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            uint32_t lo = 0;
            bool ok = true;
            for (int i = 0; i < 4; ++i) {
              uint32_t d;
              if (!HexDigit(text_[pos_ + 2 + static_cast<size_t>(i)], &d)) {
                ok = false;
                break;
              }
              lo = (lo << 4) | d;
            }
            if (ok && lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              pos_ += 6;
            }
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("invalid fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        return Fail("invalid exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string message_;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser(text);
  return parser.Parse(out, error);
}

}  // namespace layergcn::obs
