#include "obs/telemetry.h"

#include "obs/json.h"

namespace layergcn::obs {

std::string EpochTelemetryJson(const EpochTelemetry& r) {
  JsonWriter w;
  w.BeginObject();
  w.Key("type").String("epoch");
  w.Key("epoch").Int(r.epoch);
  w.Key("loss").Number(r.loss);
  w.Key("batch_count").Int(r.batch_count);
  w.Key("batch_loss_min").Number(r.batch_loss_min);
  w.Key("batch_loss_max").Number(r.batch_loss_max);
  w.Key("batch_loss_mean").Number(r.batch_loss_mean);
  w.Key("grad_norm").Number(r.grad_norm);
  w.Key("embedding_norm").Number(r.embedding_norm);
  w.Key("adam_lr").Number(r.adam_lr);
  w.Key("adam_steps").Int(r.adam_steps);
  w.Key("neg_sampled").Int(r.neg_sampled);
  w.Key("neg_rejected").Int(r.neg_rejected);
  w.Key("checkpoint_writes").Int(r.checkpoint_writes);
  w.Key("checkpoint_fallbacks").Int(r.checkpoint_fallbacks);
  w.Key("watchdog_rollbacks").Int(r.watchdog_rollbacks);
  w.Key("epoch_seconds").Number(r.epoch_seconds);
  w.Key("graph_seconds").Number(r.graph_seconds);
  w.Key("sampler_seconds").Number(r.sampler_seconds);
  w.Key("forward_seconds").Number(r.forward_seconds);
  w.Key("backward_seconds").Number(r.backward_seconds);
  w.Key("adam_seconds").Number(r.adam_seconds);
  if (r.has_eval) {
    w.Key("eval_k").Int(r.eval_k);
    w.Key("eval_recall").Number(r.eval_recall);
    w.Key("eval_ndcg").Number(r.eval_ndcg);
    w.Key("eval_seconds").Number(r.eval_seconds);
  }
  w.EndObject();
  return w.str();
}

TelemetrySink::TelemetrySink(const std::string& path)
    : path_(path), out_(path) {}

void TelemetrySink::WriteEpoch(const EpochTelemetry& record) {
  WriteLine(EpochTelemetryJson(record));
}

void TelemetrySink::WriteLine(const std::string& json_object) {
  std::lock_guard<std::mutex> lock(mu_);
  out_ << json_object << "\n";
  out_.flush();
}

}  // namespace layergcn::obs
