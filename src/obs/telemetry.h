// Structured JSONL training telemetry.
//
// The trainer streams one EpochTelemetry record per epoch into a
// TelemetrySink; each record is a single JSON object on its own line,
// flushed immediately so a crashed or killed run keeps every completed
// epoch. tools/validate_jsonl checks the output, and experiments can
// aggregate runs by following TrainResult::telemetry_path.

#ifndef LAYERGCN_OBS_TELEMETRY_H_
#define LAYERGCN_OBS_TELEMETRY_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

namespace layergcn::obs {

/// Everything the trainer knows about one epoch.
struct EpochTelemetry {
  int epoch = 0;
  double loss = 0.0;

  // Per-batch loss statistics within the epoch.
  int64_t batch_count = 0;
  double batch_loss_min = 0.0;
  double batch_loss_max = 0.0;
  double batch_loss_mean = 0.0;

  // Optimizer / parameter state.
  double grad_norm = 0.0;       // L2 of the last batch's gradients
  double embedding_norm = 0.0;  // L2 over all parameter values
  double adam_lr = 0.0;
  int64_t adam_steps = 0;  // cumulative optimizer steps

  // BPR sampler behaviour this epoch.
  int64_t neg_sampled = 0;
  int64_t neg_rejected = 0;

  // Fault-tolerance subsystem activity, cumulative over the run:
  // checkpoint files written, corrupt checkpoints skipped during restore,
  // and divergence-watchdog rollbacks.
  int64_t checkpoint_writes = 0;
  int64_t checkpoint_fallbacks = 0;
  int64_t watchdog_rollbacks = 0;

  // Wall-clock breakdown (seconds) this epoch.
  double epoch_seconds = 0.0;
  double graph_seconds = 0.0;  // per-epoch adjacency resampling
  double sampler_seconds = 0.0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double adam_seconds = 0.0;

  // Validation metrics, present only on evaluated epochs.
  bool has_eval = false;
  int eval_k = 0;
  double eval_recall = 0.0;
  double eval_ndcg = 0.0;
  double eval_seconds = 0.0;
};

/// Append-oriented JSONL file sink (thread-safe per line).
class TelemetrySink {
 public:
  /// Opens (truncates) `path`. Check ok() before use.
  explicit TelemetrySink(const std::string& path);

  bool ok() const { return out_.good(); }
  const std::string& path() const { return path_; }

  /// Writes one {"type":"epoch",...} line.
  void WriteEpoch(const EpochTelemetry& record);

  /// Writes an arbitrary pre-rendered JSON object as one line. The caller
  /// guarantees `json_object` is a single valid JSON value with no newline.
  void WriteLine(const std::string& json_object);

 private:
  std::string path_;
  std::mutex mu_;
  std::ofstream out_;
};

/// Renders an epoch record as its JSONL line (exposed for tests).
std::string EpochTelemetryJson(const EpochTelemetry& record);

}  // namespace layergcn::obs

#endif  // LAYERGCN_OBS_TELEMETRY_H_
