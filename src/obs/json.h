// Minimal JSON support shared by the observability sinks: a streaming
// writer (metrics snapshots, Chrome traces, JSONL telemetry) and a strict
// recursive-descent parser (tests and tools/validate_jsonl).
//
// The writer emits compact, valid JSON: strings are escaped, and non-finite
// doubles — which JSON cannot represent — are written as null.

#ifndef LAYERGCN_OBS_JSON_H_
#define LAYERGCN_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace layergcn::obs {

/// Appends the JSON string literal (quotes + escapes) for `s` to `out`.
void AppendJsonString(std::string_view s, std::string* out);

/// Streaming writer with automatic comma/colon placement.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Object key; must be followed by exactly one value (or container).
  JsonWriter& Key(std::string_view k);

  JsonWriter& String(std::string_view v);
  JsonWriter& Number(double v);  // non-finite -> null
  JsonWriter& Int(int64_t v);
  JsonWriter& Uint(uint64_t v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  /// The document so far.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: true once the first element was written.
  std::vector<bool> has_elements_;
  bool pending_key_ = false;
};

/// Parsed JSON value (numbers as double, objects keep insertion order).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member with `key`, or nullptr. Objects only.
  const JsonValue* Find(std::string_view key) const;
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
};

/// Strict parse of a complete JSON document (no trailing garbage). On
/// failure returns false and, when `error` is non-null, a message with the
/// byte offset.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

}  // namespace layergcn::obs

#endif  // LAYERGCN_OBS_JSON_H_
