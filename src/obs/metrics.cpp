#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace layergcn::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  // Bounds must be strictly ascending; enforce by sorting + deduping so a
  // bad literal degrades gracefully instead of mis-bucketing.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.reserve(bounds_.size() + 1);
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_.push_back(std::make_unique<Counter>());
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<size_t>(it - bounds_.begin())]->Increment();
  count_.Increment();
  sum_.Add(v);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b->Total());
  return out;
}

double Histogram::Sum() const { return sum_.Total(); }

void Histogram::Reset() {
  for (auto& b : buckets_) b->Reset();
  count_.Reset();
  sum_.Reset();
}

double HistogramData::Quantile(double q) const {
  if (count == 0 || bucket_counts.empty()) return 0.0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::min(std::max<uint64_t>(rank, 1), count);
  uint64_t cum = 0;
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    const uint64_t in_bucket = bucket_counts[i];
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double within =
        static_cast<double>(rank - cum) / static_cast<double>(in_bucket);
    return lo + (hi - lo) * within;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

HistogramData HistogramData::Delta(const HistogramData& earlier) const {
  if (earlier.bounds != bounds ||
      earlier.bucket_counts.size() != bucket_counts.size()) {
    return *this;
  }
  HistogramData out;
  out.bounds = bounds;
  out.bucket_counts.resize(bucket_counts.size());
  for (size_t i = 0; i < bucket_counts.size(); ++i) {
    out.bucket_counts[i] = bucket_counts[i] >= earlier.bucket_counts[i]
                               ? bucket_counts[i] - earlier.bucket_counts[i]
                               : 0;
  }
  out.count = count >= earlier.count ? count - earlier.count : 0;
  out.sum = sum - earlier.sum;
  return out;
}

uint64_t MetricsSnapshot::CounterDelta(const MetricsSnapshot& earlier,
                                       const std::string& name) const {
  const auto now_it = counters.find(name);
  if (now_it == counters.end()) return 0;
  const auto then_it = earlier.counters.find(name);
  const uint64_t then = then_it == earlier.counters.end() ? 0 : then_it->second;
  return now_it->second >= then ? now_it->second - then : 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked: metric pointers cached in function-local statics and updates
  // from thread_local destructors must stay valid through shutdown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->Total();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->Get();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramData data;
    data.bounds = histogram->bounds();
    data.bucket_counts = histogram->BucketCounts();
    data.count = histogram->Count();
    data.sum = histogram->Sum();
    out.histograms[name] = std::move(data);
  }
  return out;
}

std::string MetricsRegistry::SnapshotJson() const {
  const MetricsSnapshot snap = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) {
    w.Key(name).Uint(value);
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) {
    w.Key(name).Number(value);
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : snap.histograms) {
    w.Key(name).BeginObject();
    w.Key("bounds").BeginArray();
    for (double b : h.bounds) w.Number(b);
    w.EndArray();
    w.Key("bucket_counts").BeginArray();
    for (uint64_t c : h.bucket_counts) w.Uint(c);
    w.EndArray();
    w.Key("count").Uint(h.count);
    w.Key("sum").Number(h.sum);
    w.Key("p50").Number(h.Quantile(0.50));
    w.Key("p95").Number(h.Quantile(0.95));
    w.Key("p99").Number(h.Quantile(0.99));
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

bool MetricsRegistry::WriteSnapshotJson(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << SnapshotJson() << "\n";
  return out.good();
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; the registry's dotted
// names map '.' (and any other illegal byte) to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = "layergcn_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendNumber(double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

std::string MetricsRegistry::PrometheusText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    AppendNumber(value, &out);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cum += h.bucket_counts[i];
      out += prom + "_bucket{le=\"";
      if (i < h.bounds.size()) {
        AppendNumber(h.bounds[i], &out);
      } else {
        out += "+Inf";
      }
      out += "\"} " + std::to_string(cum) + "\n";
    }
    out += prom + "_sum ";
    AppendNumber(h.sum, &out);
    out += "\n";
    out += prom + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

bool MetricsRegistry::WritePrometheusText(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << PrometheusText();
  return out.good();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace layergcn::obs
