#include "obs/sliding_quantile.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace layergcn::obs {
namespace {

// Degenerate options degrade to a 1-window, 1ms estimator instead of UB.
SlidingQuantile::Options Sanitize(SlidingQuantile::Options o) {
  if (o.num_windows < 1) o.num_windows = 1;
  if (o.window_us == 0) o.window_us = 1000;
  return o;
}

}  // namespace

SlidingQuantile::SlidingQuantile() : SlidingQuantile(Options()) {}

SlidingQuantile::SlidingQuantile(const Options& options)
    : options_(Sanitize(options)) {
  windows_.reserve(static_cast<size_t>(options_.num_windows));
  for (int i = 0; i < options_.num_windows; ++i) {
    windows_.push_back(std::make_unique<Window>());
  }
}

int SlidingQuantile::BucketIndex(uint64_t value) {
  if (value > kMaxValue) value = kMaxValue;
  if (value < kSubBuckets) return static_cast<int>(value);
  const int e = std::bit_width(value) - 1;  // >= kSubBucketBits
  const int group = e - kSubBucketBits + 1;
  const int sub = static_cast<int>((value >> (e - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  return group * kSubBuckets + sub;
}

uint64_t SlidingQuantile::BucketUpperEdge(int bucket) {
  if (bucket < 0) return 0;
  if (bucket >= kNumBuckets) return kMaxValue;
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const int group = bucket / kSubBuckets;
  const int sub = bucket % kSubBuckets;
  return ((static_cast<uint64_t>(kSubBuckets + sub) + 1)
          << (group - 1)) - 1;
}

bool SlidingQuantile::PrepareWindow(Window* slot, uint64_t epoch) {
  const uint64_t stamped = slot->epoch.load(std::memory_order_acquire);
  if (stamped == epoch) return true;
  if (stamped != UINT64_MAX && stamped > epoch) return false;  // too old
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const uint64_t again = slot->epoch.load(std::memory_order_acquire);
  if (again == epoch) return true;
  if (again != UINT64_MAX && again > epoch) return false;
  for (auto& b : slot->buckets) b.store(0, std::memory_order_relaxed);
  slot->count.store(0, std::memory_order_relaxed);
  slot->sum.store(0, std::memory_order_relaxed);
  // Release-publish the epoch after the counts are zeroed: a writer that
  // observes the new stamp never adds into pre-reset state.
  slot->epoch.store(epoch, std::memory_order_release);
  return true;
}

void SlidingQuantile::Observe(uint64_t value, uint64_t now_us) {
  if (value > kMaxValue) value = kMaxValue;
  const uint64_t epoch = now_us / options_.window_us;
  Window* slot =
      windows_[static_cast<size_t>(
                   epoch % static_cast<uint64_t>(options_.num_windows))]
          .get();
  if (!PrepareWindow(slot, epoch)) return;
  slot->buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->sum.fetch_add(value, std::memory_order_relaxed);
}

template <typename Fn>
void SlidingQuantile::ForEachLiveWindow(uint64_t now_us, Fn&& fn) const {
  const uint64_t cur = now_us / options_.window_us;
  const uint64_t oldest =
      cur >= static_cast<uint64_t>(options_.num_windows - 1)
          ? cur - static_cast<uint64_t>(options_.num_windows - 1)
          : 0;
  for (const auto& w : windows_) {
    const uint64_t epoch = w->epoch.load(std::memory_order_acquire);
    if (epoch == UINT64_MAX || epoch < oldest || epoch > cur) continue;
    fn(*w);
  }
}

std::vector<uint64_t> SlidingQuantile::MergedCounts(uint64_t now_us) const {
  std::vector<uint64_t> out(static_cast<size_t>(kNumBuckets), 0);
  ForEachLiveWindow(now_us, [&out](const Window& w) {
    for (int b = 0; b < kNumBuckets; ++b) {
      out[static_cast<size_t>(b)] +=
          w.buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
  });
  return out;
}

uint64_t SlidingQuantile::Count(uint64_t now_us) const {
  uint64_t n = 0;
  ForEachLiveWindow(now_us, [&n](const Window& w) {
    n += w.count.load(std::memory_order_relaxed);
  });
  return n;
}

uint64_t SlidingQuantile::Sum(uint64_t now_us) const {
  uint64_t s = 0;
  ForEachLiveWindow(now_us, [&s](const Window& w) {
    s += w.sum.load(std::memory_order_relaxed);
  });
  return s;
}

std::vector<uint64_t> SlidingQuantile::Quantiles(
    const std::vector<double>& qs, uint64_t now_us) const {
  std::vector<uint64_t> out(qs.size(), 0);
  const std::vector<uint64_t> counts = MergedCounts(now_us);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return out;
  size_t qi = 0;
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets && qi < qs.size(); ++b) {
    cum += counts[static_cast<size_t>(b)];
    while (qi < qs.size()) {
      // rank ceil(q * total), clamped into [1, total].
      uint64_t rank = static_cast<uint64_t>(
          std::ceil(qs[qi] * static_cast<double>(total)));
      rank = std::min(std::max<uint64_t>(rank, 1), total);
      if (cum < rank) break;
      out[qi++] = BucketUpperEdge(b);
    }
  }
  return out;
}

uint64_t SlidingQuantile::Quantile(double q, uint64_t now_us) const {
  return Quantiles({q}, now_us)[0];
}

}  // namespace layergcn::obs
