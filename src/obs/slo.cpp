#include "obs/slo.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace layergcn::obs {
namespace {

SloMonitor::Options Sanitize(SloMonitor::Options o) {
  o.availability_objective = std::clamp(o.availability_objective, 0.0, 1.0);
  o.latency_objective = std::clamp(o.latency_objective, 0.0, 1.0);
  if (o.short_window_us == 0) o.short_window_us = 1'000'000;
  if (o.long_window_us < o.short_window_us) {
    o.long_window_us = o.short_window_us;
  }
  return o;
}

void EnvDouble(const char* name, double* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end != v && *end == '\0') *out = parsed;
}

void EnvUint64(const char* name, uint64_t* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end != v && *end == '\0') *out = parsed;
}

// observed bad fraction / error budget; an all-good window burns 0, a
// zero-budget objective burns "infinitely" (capped for display sanity).
double BurnOf(uint64_t bad, uint64_t total, double objective) {
  if (total == 0) return 0.0;
  const double fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  const double budget = 1.0 - objective;
  if (budget <= 0.0) return fraction > 0.0 ? 1e9 : 0.0;
  return fraction / budget;
}

}  // namespace

const char* SloMonitor::StateName(State state) {
  switch (state) {
    case State::kOk: return "ok";
    case State::kWarn: return "warn";
    case State::kBreach: return "breach";
  }
  return "unknown";
}

SloMonitor::Options SloMonitor::FromEnv(Options options) {
  EnvDouble("LAYERGCN_SLO_AVAILABILITY", &options.availability_objective);
  EnvUint64("LAYERGCN_SLO_LATENCY_TARGET_US", &options.latency_target_us);
  EnvDouble("LAYERGCN_SLO_LATENCY_OBJECTIVE", &options.latency_objective);
  EnvUint64("LAYERGCN_SLO_SHORT_WINDOW_US", &options.short_window_us);
  EnvUint64("LAYERGCN_SLO_LONG_WINDOW_US", &options.long_window_us);
  EnvDouble("LAYERGCN_SLO_WARN_BURN", &options.warn_burn);
  EnvDouble("LAYERGCN_SLO_BREACH_BURN", &options.breach_burn);
  return Sanitize(options);
}

SloMonitor::SloMonitor() : SloMonitor(Options()) {}

SloMonitor::SloMonitor(const Options& options)
    : options_(Sanitize(options)),
      num_slots_(static_cast<int>(
          (options_.long_window_us + options_.short_window_us - 1) /
          options_.short_window_us) +
                 1) {
  slots_.reserve(static_cast<size_t>(num_slots_));
  for (int i = 0; i < num_slots_; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

bool SloMonitor::PrepareSlot(Slot* slot, uint64_t epoch) {
  const uint64_t stamped = slot->epoch.load(std::memory_order_acquire);
  if (stamped == epoch) return true;
  if (stamped != UINT64_MAX && stamped > epoch) return false;
  std::lock_guard<std::mutex> lock(rotate_mu_);
  const uint64_t again = slot->epoch.load(std::memory_order_acquire);
  if (again == epoch) return true;
  if (again != UINT64_MAX && again > epoch) return false;
  slot->total.store(0, std::memory_order_relaxed);
  slot->errors.store(0, std::memory_order_relaxed);
  slot->answered.store(0, std::memory_order_relaxed);
  slot->slow.store(0, std::memory_order_relaxed);
  slot->epoch.store(epoch, std::memory_order_release);
  return true;
}

void SloMonitor::Record(uint64_t now_us, bool server_error, bool answered,
                        uint64_t latency_us) {
  const uint64_t epoch = now_us / options_.short_window_us;
  Slot* slot =
      slots_[static_cast<size_t>(epoch % static_cast<uint64_t>(num_slots_))]
          .get();
  if (!PrepareSlot(slot, epoch)) return;
  slot->total.fetch_add(1, std::memory_order_relaxed);
  if (server_error) slot->errors.fetch_add(1, std::memory_order_relaxed);
  if (answered) {
    slot->answered.fetch_add(1, std::memory_order_relaxed);
    if (latency_us > options_.latency_target_us) {
      slot->slow.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

SloMonitor::WindowTotals SloMonitor::Merge(uint64_t now_us,
                                           int slots_back) const {
  WindowTotals out;
  const uint64_t cur = now_us / options_.short_window_us;
  const uint64_t oldest = cur >= static_cast<uint64_t>(slots_back)
                              ? cur - static_cast<uint64_t>(slots_back)
                              : 0;
  for (const auto& s : slots_) {
    const uint64_t epoch = s->epoch.load(std::memory_order_acquire);
    if (epoch == UINT64_MAX || epoch < oldest || epoch > cur) continue;
    out.total += s->total.load(std::memory_order_relaxed);
    out.errors += s->errors.load(std::memory_order_relaxed);
    out.answered += s->answered.load(std::memory_order_relaxed);
    out.slow += s->slow.load(std::memory_order_relaxed);
  }
  return out;
}

SloMonitor::Burn SloMonitor::BurnRates(uint64_t now_us) const {
  // Short = current + previous slot (spans at least short_window_us of
  // wall clock whatever the phase); long = the whole ring.
  const WindowTotals s = Merge(now_us, 1);
  const WindowTotals l = Merge(now_us, num_slots_ - 1);
  Burn burn;
  burn.availability_short =
      BurnOf(s.errors, s.total, options_.availability_objective);
  burn.availability_long =
      BurnOf(l.errors, l.total, options_.availability_objective);
  burn.latency_short = BurnOf(s.slow, s.answered, options_.latency_objective);
  burn.latency_long = BurnOf(l.slow, l.answered, options_.latency_objective);
  burn.max_short = std::max(burn.availability_short, burn.latency_short);
  burn.max_long = std::max(burn.availability_long, burn.latency_long);
  burn.total_short = s.total;
  burn.total_long = l.total;
  return burn;
}

SloMonitor::State SloMonitor::Update(uint64_t now_us) {
  const Burn burn = BurnRates(now_us);
  State next = State::kOk;
  if (burn.max_short >= options_.breach_burn &&
      burn.max_long >= options_.breach_burn) {
    next = State::kBreach;
  } else if (burn.max_long >= options_.warn_burn ||
             burn.max_short >= options_.breach_burn) {
    next = State::kWarn;
  }
  bool changed = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (next != state_) {
      state_ = next;
      ++transitions_;
      changed = true;
    }
  }
  if (changed) OBS_COUNT("slo.transitions", 1);
  OBS_GAUGE("slo.state", static_cast<int>(next));
  OBS_GAUGE("slo.burn.availability_short", burn.availability_short);
  OBS_GAUGE("slo.burn.availability_long", burn.availability_long);
  OBS_GAUGE("slo.burn.latency_short", burn.latency_short);
  OBS_GAUGE("slo.burn.latency_long", burn.latency_long);
  return next;
}

SloMonitor::State SloMonitor::state() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return state_;
}

int64_t SloMonitor::transitions() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return transitions_;
}

}  // namespace layergcn::obs
