// RAII trace spans with Chrome trace-event JSON export.
//
// OBS_SPAN("gemm") opens a span that closes at end of scope. Each completed
// span becomes one event {name, start_us, dur_us, tid, depth} in a
// per-thread buffer; WriteChromeTrace() merges the buffers into a
// chrome://tracing-loadable "X" (complete-event) document, where nesting is
// reconstructed from interval containment per thread row.
//
// Cost model: a span site whose runtime switches are all off is one relaxed
// atomic load and a branch. With metrics on it additionally accumulates
// span.<name>.sum_us / span.<name>.count in the MetricsRegistry (two
// sharded adds); with tracing on it appends one event under the calling
// thread's buffer mutex (uncontended — the buffer is thread-owned, the lock
// exists only so export can read live buffers safely).
//
// Span names must be string literals (or otherwise outlive the recorder);
// events store the pointer, not a copy.

#ifndef LAYERGCN_OBS_TRACE_H_
#define LAYERGCN_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace layergcn::obs {

/// One completed span.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_us = 0;  // NowMicros() epoch
  uint64_t dur_us = 0;
  uint32_t tid = 0;
  uint32_t depth = 0;  // nesting depth on its thread at open time
  /// Request the span served (0 = none). Spans inherit the calling
  /// thread's TraceRequestScope, so every kernel/cache/serialize span of a
  /// served request is keyed to that request's id in the Chrome trace.
  uint64_t request_id = 0;
};

/// RAII: tags every span closed on this thread within the scope with
/// `request_id` (restores the previous id on exit, so nested scopes work).
/// The serving tier opens one per request around the whole request path.
class TraceRequestScope {
 public:
  explicit TraceRequestScope(uint64_t request_id);
  ~TraceRequestScope();

  TraceRequestScope(const TraceRequestScope&) = delete;
  TraceRequestScope& operator=(const TraceRequestScope&) = delete;

  /// The calling thread's active request id (0 outside any scope).
  static uint64_t Current();

 private:
  uint64_t prev_;
};

/// Process-wide span store.
class TraceRecorder {
 public:
  /// The global instance (leaked singleton: thread-exit flushes may run
  /// during static destruction).
  static TraceRecorder& Global();

  /// Appends one event to the calling thread's buffer.
  void Record(const TraceEvent& event);

  /// Every recorded event (live + retired buffers), sorted by
  /// (tid, start_us, depth). Safe to call while other threads record.
  std::vector<TraceEvent> Snapshot() const;

  /// Renders Snapshot() as a Chrome trace-event JSON document.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Drops every recorded event.
  void Clear();

  /// Number of recorded events (tests).
  size_t NumEvents() const;

 private:
  TraceRecorder() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

namespace internal {

// Per-call-site state created once by OBS_SPAN: the span name plus its
// pre-resolved metric counters (so the hot path never touches the registry
// lock).
struct SpanSite {
  explicit SpanSite(const char* span_name);

  const char* name;
  Counter* sum_us;
  Counter* count;
};

}  // namespace internal

/// RAII span. Prefer the OBS_SPAN macro; the dynamic-name constructor is
/// for sites whose name is only known at run time (e.g. per-op autograd
/// timings) and pays a registry lookup per close when metrics are on.
class SpanGuard {
 public:
  explicit SpanGuard(const internal::SpanSite* site);
  explicit SpanGuard(const char* dynamic_name);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void Open(uint32_t flags);

  const internal::SpanSite* site_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
  uint32_t depth_ = 0;
  uint32_t flags_ = 0;  // switches latched at open
};

}  // namespace layergcn::obs

#if LAYERGCN_OBS_ENABLED

#define LAYERGCN_OBS_CONCAT_INNER(a, b) a##b
#define LAYERGCN_OBS_CONCAT(a, b) LAYERGCN_OBS_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope. `name` must
/// be a string literal.
#define OBS_SPAN(name)                                                        \
  static const ::layergcn::obs::internal::SpanSite LAYERGCN_OBS_CONCAT(       \
      obs_span_site_, __LINE__)(name);                                        \
  ::layergcn::obs::SpanGuard LAYERGCN_OBS_CONCAT(obs_span_guard_, __LINE__)(  \
      &LAYERGCN_OBS_CONCAT(obs_span_site_, __LINE__))

/// Span with a runtime name (must outlive the recorder, i.e. be a literal
/// or interned string).
#define OBS_SPAN_DYNAMIC(name) ::layergcn::obs::SpanGuard obs_span_dyn_(name)

#else  // !LAYERGCN_OBS_ENABLED

#define OBS_SPAN(name) ((void)0)
#define OBS_SPAN_DYNAMIC(name) ((void)0)

#endif  // LAYERGCN_OBS_ENABLED

#endif  // LAYERGCN_OBS_TRACE_H_
