// Run-wide observability: runtime switches, thread ids, monotonic clock,
// and the zero-cost-when-disabled instrumentation macros.
//
// Layering: layergcn_obs sits *below* layergcn_util (the thread pool and
// logging are themselves instrumented), so nothing in src/obs may include a
// util/ header. The subsystem has three independent pieces:
//
//   obs/metrics.h   — MetricsRegistry: counters / gauges / histograms with
//                     lock-free per-thread shards merged on snapshot.
//   obs/trace.h     — RAII trace spans exported as Chrome trace-event JSON.
//   obs/telemetry.h — structured JSONL sink the trainer streams epochs into.
//
// Gating is two-level:
//   * compile time: the LAYERGCN_OBS CMake option (default ON) defines
//     LAYERGCN_OBS_ENABLED; when OFF every OBS_* macro expands to nothing
//     and instrumented code carries zero cost.
//   * run time: Flags() is a single relaxed atomic load; a disabled span
//     costs exactly that one load + branch. Metrics default ON (sharded
//     counter bumps are nanoseconds), tracing defaults OFF (it buffers
//     events).

#ifndef LAYERGCN_OBS_OBS_H_
#define LAYERGCN_OBS_OBS_H_

#include <cstdint>

#ifndef LAYERGCN_OBS_ENABLED
#define LAYERGCN_OBS_ENABLED 1
#endif

namespace layergcn::obs {

// Bit mask of the runtime switches, readable with one atomic load.
enum : uint32_t {
  kMetricsBit = 1u << 0,
  kTraceBit = 1u << 1,
};

/// Current switch mask (relaxed load; the only cost of a disabled site).
uint32_t Flags();

/// Master metrics switch (counters, gauges, histograms, span accumulation).
bool Enabled();
void SetEnabled(bool on);

/// Trace-span recording switch (events buffered for Chrome export).
bool TraceEnabled();
void SetTraceEnabled(bool on);

/// Small dense id of the calling thread (0 = first thread to ask). Stable
/// for the thread's lifetime; also used by util/logging for per-line ids.
uint32_t ThreadId();

/// Microseconds on the steady clock since the first call in the process.
/// All span timestamps share this epoch.
uint64_t NowMicros();

}  // namespace layergcn::obs

// NowMicros() for instrumentation sites: compiles to 0 when the subsystem
// is compiled out, so paired OBS_COUNT(..., now - start) math folds away.
#if LAYERGCN_OBS_ENABLED
#define OBS_NOW_US() ::layergcn::obs::NowMicros()
#else
#define OBS_NOW_US() (static_cast<uint64_t>(0))
#endif

#endif  // LAYERGCN_OBS_OBS_H_
