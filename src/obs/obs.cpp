#include "obs/obs.h"

#include <atomic>
#include <chrono>

namespace layergcn::obs {
namespace {

// Metrics default ON (sharded bumps are nanoseconds and every sink wants
// them); tracing defaults OFF (it buffers one event per span).
std::atomic<uint32_t> g_flags{kMetricsBit};

std::atomic<uint32_t> g_next_thread_id{0};

uint32_t AssignThreadId() {
  return g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

uint32_t Flags() { return g_flags.load(std::memory_order_relaxed); }

bool Enabled() { return (Flags() & kMetricsBit) != 0; }

void SetEnabled(bool on) {
  if (on) {
    g_flags.fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    g_flags.fetch_and(~kMetricsBit, std::memory_order_relaxed);
  }
}

bool TraceEnabled() { return (Flags() & kTraceBit) != 0; }

void SetTraceEnabled(bool on) {
  if (on) {
    g_flags.fetch_or(kTraceBit, std::memory_order_relaxed);
  } else {
    g_flags.fetch_and(~kTraceBit, std::memory_order_relaxed);
  }
}

uint32_t ThreadId() {
  thread_local const uint32_t id = AssignThreadId();
  return id;
}

uint64_t NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

}  // namespace layergcn::obs
