#include "obs/trace.h"

#include <algorithm>
#include <fstream>
#include <mutex>

#include "obs/json.h"

namespace layergcn::obs {
namespace {

// Per-thread event buffer. Owned by its thread; the mutex exists so export
// and thread-exit retirement can read/move the events safely while the
// owner appends (appends are uncontended in the steady state).
struct ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
};

thread_local uint32_t t_span_depth = 0;
thread_local uint64_t t_request_id = 0;

}  // namespace

TraceRequestScope::TraceRequestScope(uint64_t request_id)
    : prev_(t_request_id) {
  t_request_id = request_id;
}

TraceRequestScope::~TraceRequestScope() { t_request_id = prev_; }

uint64_t TraceRequestScope::Current() { return t_request_id; }

struct TraceRecorder::Impl {
  mutable std::mutex mu;  // guards buffers/retired membership
  std::vector<ThreadBuffer*> live;
  std::vector<TraceEvent> retired;

  ThreadBuffer* BufferForThisThread() {
    // The registration wrapper retires the buffer's events when the thread
    // exits so short-lived pool threads are not lost.
    thread_local struct Registration {
      ThreadBuffer buffer;
      Impl* owner;

      explicit Registration(Impl* impl) : owner(impl) {
        std::lock_guard<std::mutex> lock(owner->mu);
        owner->live.push_back(&buffer);
      }
      ~Registration() {
        std::lock_guard<std::mutex> lock(owner->mu);
        {
          std::lock_guard<std::mutex> buf_lock(buffer.mu);
          owner->retired.insert(owner->retired.end(), buffer.events.begin(),
                                buffer.events.end());
          buffer.events.clear();
        }
        owner->live.erase(
            std::find(owner->live.begin(), owner->live.end(), &buffer));
      }
    } registration(this);
    return &registration.buffer;
  }
};

TraceRecorder::Impl* TraceRecorder::impl() {
  // Leaked: thread_local Registration destructors run after static
  // destruction begins on the main thread.
  static Impl* instance = new Impl();
  return instance;
}

const TraceRecorder::Impl* TraceRecorder::impl() const {
  return const_cast<TraceRecorder*>(this)->impl();
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Record(const TraceEvent& event) {
  ThreadBuffer* buffer = impl()->BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  const Impl* i = impl();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(i->mu);
    out = i->retired;
    for (ThreadBuffer* buffer : i->live) {
      std::lock_guard<std::mutex> buf_lock(buffer->mu);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return out;
}

std::string TraceRecorder::ChromeTraceJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("ph").String("X");
    w.Key("ts").Uint(e.start_us);
    w.Key("dur").Uint(e.dur_us);
    w.Key("pid").Int(1);
    w.Key("tid").Uint(e.tid);
    w.Key("args").BeginObject();
    w.Key("depth").Uint(e.depth);
    if (e.request_id != 0) w.Key("request_id").Uint(e.request_id);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) return false;
  out << ChromeTraceJson() << "\n";
  return out.good();
}

void TraceRecorder::Clear() {
  Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  i->retired.clear();
  for (ThreadBuffer* buffer : i->live) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    buffer->events.clear();
  }
}

size_t TraceRecorder::NumEvents() const {
  const Impl* i = impl();
  std::lock_guard<std::mutex> lock(i->mu);
  size_t n = i->retired.size();
  for (ThreadBuffer* buffer : i->live) {
    std::lock_guard<std::mutex> buf_lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

namespace internal {

SpanSite::SpanSite(const char* span_name)
    : name(span_name),
      sum_us(MetricsRegistry::Global().GetCounter(std::string("span.") +
                                                  span_name + ".sum_us")),
      count(MetricsRegistry::Global().GetCounter(std::string("span.") +
                                                 span_name + ".count")) {}

}  // namespace internal

void SpanGuard::Open(uint32_t flags) {
  flags_ = flags;
  if (flags_ == 0) return;
  depth_ = t_span_depth++;
  start_us_ = NowMicros();
}

SpanGuard::SpanGuard(const internal::SpanSite* site) : site_(site) {
  Open(Flags());
}

SpanGuard::SpanGuard(const char* dynamic_name) : name_(dynamic_name) {
  Open(Flags());
}

SpanGuard::~SpanGuard() {
  if (flags_ == 0) return;
  const uint64_t end_us = NowMicros();
  --t_span_depth;
  const uint64_t dur = end_us - start_us_;
  const char* name = site_ != nullptr ? site_->name : name_;
  if ((flags_ & kTraceBit) != 0) {
    TraceRecorder::Global().Record(
        TraceEvent{name, start_us_, dur, ThreadId(), depth_, t_request_id});
  }
  if ((flags_ & kMetricsBit) != 0) {
    if (site_ != nullptr) {
      site_->sum_us->Add(dur);
      site_->count->Increment();
    } else {
      MetricsRegistry& registry = MetricsRegistry::Global();
      registry.GetCounter(std::string("span.") + name + ".sum_us")->Add(dur);
      registry.GetCounter(std::string("span.") + name + ".count")
          ->Increment();
    }
  }
}

}  // namespace layergcn::obs
