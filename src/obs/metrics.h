// MetricsRegistry: named counters, gauges, and fixed-bucket histograms.
//
// Writers never take the registry lock: each Counter/Histogram spreads its
// updates over cache-line-padded atomic shards indexed by obs::ThreadId(),
// so concurrent increments from pool workers do not bounce a shared line.
// Snapshot() merges the shards under the registry mutex and returns plain
// totals; exact-sum semantics hold because every update is an atomic add.
//
// Get*() returns a stable pointer valid for the process lifetime — call
// sites cache it in a function-local static (the OBS_COUNT / OBS_GAUGE /
// OBS_OBSERVE macros in this header do exactly that).

#ifndef LAYERGCN_OBS_METRICS_H_
#define LAYERGCN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace layergcn::obs {

namespace internal {

// One cache line per shard so concurrent writers do not false-share.
struct alignas(64) CounterShard {
  std::atomic<uint64_t> value{0};
};

struct alignas(64) DoubleShard {
  std::atomic<double> value{0.0};
};

constexpr int kNumShards = 16;

inline int ShardIndex() {
  return static_cast<int>(ThreadId() % static_cast<uint32_t>(kNumShards));
}

// Sharded double accumulator (CAS add per shard; exact merge on read for
// the magnitudes metrics see — each shard sums in isolation).
class DoubleAdder {
 public:
  void Add(double d) {
    std::atomic<double>& a = shards_[ShardIndex()].value;
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + d,
                                    std::memory_order_relaxed)) {
    }
  }
  double Total() const {
    double total = 0.0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.value.store(0.0, std::memory_order_relaxed);
  }

 private:
  DoubleShard shards_[kNumShards];
};

}  // namespace internal

/// Monotonic counter.
class Counter {
 public:
  void Add(uint64_t delta) {
    shards_[internal::ShardIndex()].value.fetch_add(delta,
                                                    std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Exact sum of every Add() that happened-before the call.
  uint64_t Total() const {
    uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  internal::CounterShard shards_[internal::kNumShards];
};

/// Last-write-wins double gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are ascending upper edges; a value v
/// lands in the first bucket with v <= bounds[i], or the overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged per-bucket counts (size bounds().size() + 1; last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.Total(); }
  double Sum() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Counter>> buckets_;  // last bucket = overflow
  Counter count_;
  internal::DoubleAdder sum_;
};

/// Plain-value view of every metric, merged across shards.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<uint64_t> bucket_counts;
  uint64_t count = 0;
  double sum = 0.0;

  /// The q-quantile (0 < q <= 1) estimated from the bucket counts by
  /// linear interpolation inside the bucket holding rank ceil(q * count);
  /// ranks landing in the overflow bucket answer the last bound. 0 when
  /// the histogram is empty. Deterministic given the same counts.
  double Quantile(double q) const;

  /// this minus `earlier`, bucket by bucket (for per-phase summaries over
  /// a long-lived histogram). Bounds must match; mismatched shapes return
  /// a copy of *this.
  HistogramData Delta(const HistogramData& earlier) const;
};

struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// counters[name] here minus counters[name] in `earlier` (0 if absent).
  uint64_t CounterDelta(const MetricsSnapshot& earlier,
                        const std::string& name) const;
};

/// Process-wide registry of named metrics.
class MetricsRegistry {
 public:
  /// The global instance (leaked singleton: safe from thread_local dtors).
  static MetricsRegistry& Global();

  /// Get-or-create. Pointers stay valid for the process lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is used on first creation only; later calls return the
  /// existing histogram regardless.
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  /// Snapshot rendered as one JSON object (stable key order). Histograms
  /// carry p50/p95/p99 summaries next to their bucket counts.
  std::string SnapshotJson() const;
  /// Writes SnapshotJson() to `path`; false on I/O failure.
  bool WriteSnapshotJson(const std::string& path) const;

  /// Snapshot rendered as Prometheus text exposition format (one
  /// `layergcn_`-prefixed family per metric; '.' in names becomes '_';
  /// histograms export cumulative `_bucket{le=...}` series + _sum/_count).
  std::string PrometheusText() const;
  /// Writes PrometheusText() to `path`; false on I/O failure.
  bool WritePrometheusText(const std::string& path) const;

  /// Zeroes every registered metric (names stay registered).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace layergcn::obs

#if LAYERGCN_OBS_ENABLED

/// Adds `n` to counter `name` (resolved once, gated on the runtime switch).
#define OBS_COUNT(name, n)                                              \
  do {                                                                  \
    if (::layergcn::obs::Flags() & ::layergcn::obs::kMetricsBit) {      \
      static ::layergcn::obs::Counter* obs_counter_ =                   \
          ::layergcn::obs::MetricsRegistry::Global().GetCounter(name);  \
      obs_counter_->Add(static_cast<uint64_t>(n));                      \
    }                                                                   \
  } while (0)

/// Sets gauge `name` to `v`.
#define OBS_GAUGE(name, v)                                            \
  do {                                                                \
    if (::layergcn::obs::Flags() & ::layergcn::obs::kMetricsBit) {    \
      static ::layergcn::obs::Gauge* obs_gauge_ =                     \
          ::layergcn::obs::MetricsRegistry::Global().GetGauge(name);  \
      obs_gauge_->Set(static_cast<double>(v));                        \
    }                                                                 \
  } while (0)

/// Observes `v` in histogram `name`; parenthesize the bounds argument:
/// OBS_OBSERVE("pool.task_us", (std::vector<double>{10, 100, 1000}), us).
#define OBS_OBSERVE(name, bounds, v)                                       \
  do {                                                                     \
    if (::layergcn::obs::Flags() & ::layergcn::obs::kMetricsBit) {         \
      static ::layergcn::obs::Histogram* obs_histogram_ =                  \
          ::layergcn::obs::MetricsRegistry::Global().GetHistogram(name,    \
                                                                  bounds); \
      obs_histogram_->Observe(static_cast<double>(v));                     \
    }                                                                      \
  } while (0)

#else  // !LAYERGCN_OBS_ENABLED

#define OBS_COUNT(name, n) ((void)0)
#define OBS_GAUGE(name, v) ((void)0)
#define OBS_OBSERVE(name, bounds, v) ((void)0)

#endif  // LAYERGCN_OBS_ENABLED

#endif  // LAYERGCN_OBS_METRICS_H_
