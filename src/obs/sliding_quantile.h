// Sliding-window quantile estimation over fixed log-spaced buckets.
//
// The serving tier needs "p99 latency over the last minute" as a live
// gauge, not an all-of-process histogram: a latency spike an hour ago must
// age out. SlidingQuantile keeps a ring of time windows, each a fixed
// array of log-bucket counters; Observe() lands a value in the window its
// timestamp belongs to, and Quantile() merges the windows still inside the
// horizon and walks the merged counts.
//
// Determinism: bucketing is pure integer math (HDR-style: the leading bit
// picks an octave group, the next kSubBucketBits bits the sub-bucket), all
// counters are exact uint64 sums, and a quantile is answered with the
// bucket's inclusive upper edge. The same multiset of (value, timestamp)
// observations therefore yields bit-identical merged counts and quantiles
// at any thread count and any interleaving — the property slo_test pins.
//
// Resolution: kSubBuckets sub-buckets per octave bound the relative error
// of any reported quantile by 1/kSubBuckets (6.25%). Values are clamped to
// kMaxValue (~71 minutes in microseconds); larger observations saturate
// into the top bucket.
//
// Concurrency: writers are lock-free in the steady state (one relaxed
// epoch load + two atomic adds). A writer that first touches a window slot
// whose epoch moved forward takes a small rotation mutex to zero and
// re-stamp the slot; readers merge under no lock (exact-sum semantics per
// bucket, monitoring-grade consistency across buckets).
//
// Part of src/obs: standard library only, usable below util/.

#ifndef LAYERGCN_OBS_SLIDING_QUANTILE_H_
#define LAYERGCN_OBS_SLIDING_QUANTILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace layergcn::obs {

class SlidingQuantile {
 public:
  struct Options {
    /// Width of one ring window. The estimator's time resolution.
    uint64_t window_us = 5'000'000;
    /// Windows merged per query; horizon = window_us * num_windows.
    int num_windows = 12;
  };

  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  /// Observations above this saturate into the final bucket.
  static constexpr uint64_t kMaxValue = (uint64_t{1} << 32) - 1;
  /// Buckets 0..kSubBuckets-1 are exact; each further octave contributes
  /// kSubBuckets buckets up to kMaxValue's octave.
  static constexpr int kNumBuckets = (32 - kSubBucketBits + 1) * kSubBuckets;

  SlidingQuantile();  // default Options
  explicit SlidingQuantile(const Options& options);

  /// Records `value` (clamped to kMaxValue) in the window containing
  /// `now_us`. Timestamps may arrive slightly out of order; anything older
  /// than the horizon is dropped.
  void Observe(uint64_t value, uint64_t now_us);

  /// The q-quantile (0 < q <= 1) of the observations inside
  /// [now_us - horizon, now_us], answered as the inclusive upper edge of
  /// the bucket holding rank ceil(q * count). 0 when the horizon is empty.
  uint64_t Quantile(double q, uint64_t now_us) const;

  /// One merged pass answering several quantiles at once (gauge refresh).
  /// `qs` must be ascending; returns one value per q.
  std::vector<uint64_t> Quantiles(const std::vector<double>& qs,
                                  uint64_t now_us) const;

  /// Observations inside the horizon.
  uint64_t Count(uint64_t now_us) const;
  /// Exact sum of (clamped) observations inside the horizon.
  uint64_t Sum(uint64_t now_us) const;

  /// Merged per-bucket counts inside the horizon (size kNumBuckets).
  /// Exposed so tests can pin the deterministic-merge property directly.
  std::vector<uint64_t> MergedCounts(uint64_t now_us) const;

  const Options& options() const { return options_; }
  uint64_t horizon_us() const {
    return options_.window_us * static_cast<uint64_t>(options_.num_windows);
  }

  /// Deterministic log-bucket index for `value` (clamped). Values below
  /// kSubBuckets map exactly to their own bucket.
  static int BucketIndex(uint64_t value);
  /// Largest value mapping to `bucket` (inclusive upper edge).
  static uint64_t BucketUpperEdge(int bucket);

 private:
  struct alignas(64) Window {
    std::atomic<uint64_t> epoch{UINT64_MAX};  // window_us units; MAX = empty
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kNumBuckets] = {};
  };

  /// Ensures `slot` is stamped for `epoch`, zeroing stale counts under the
  /// rotation mutex. Returns false when the slot already belongs to a
  /// newer epoch (the observation is too old to record).
  bool PrepareWindow(Window* slot, uint64_t epoch);

  template <typename Fn>
  void ForEachLiveWindow(uint64_t now_us, Fn&& fn) const;

  const Options options_;
  std::mutex rotate_mu_;
  std::vector<std::unique_ptr<Window>> windows_;
};

}  // namespace layergcn::obs

#endif  // LAYERGCN_OBS_SLIDING_QUANTILE_H_
