#include "train/bpr_sampler.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "util/logging.h"

namespace layergcn::train {

BprSampler::BprSampler(const graph::BipartiteGraph* graph,
                       NegativeSampling strategy)
    : graph_(graph), strategy_(strategy) {
  LAYERGCN_CHECK(graph != nullptr);
  LAYERGCN_CHECK_GT(graph->num_edges(), 0);
  order_.resize(static_cast<size_t>(graph->num_edges()));
  for (size_t k = 0; k < order_.size(); ++k) {
    order_[k] = static_cast<int64_t>(k);
  }
  if (strategy_ == NegativeSampling::kPopularity) {
    std::vector<double> w(static_cast<size_t>(graph->num_items()));
    for (int32_t i = 0; i < graph->num_items(); ++i) {
      // degree^0.75, smoothed so zero-degree items stay sampleable.
      w[static_cast<size_t>(i)] =
          std::pow(static_cast<double>(graph->ItemDegree(i)) + 1.0, 0.75);
    }
    popularity_ = util::DiscreteDistribution(w);
  }
}

void BprSampler::BeginEpoch(util::Rng* rng) {
  // Re-seed the permutation with the identity before shuffling: the epoch's
  // edge order must be a pure function of the incoming RNG state, not of
  // the shuffle history, or a checkpoint-resumed run (fresh sampler, same
  // RNG state) would draw different batches than the uninterrupted one.
  for (size_t k = 0; k < order_.size(); ++k) {
    order_[k] = static_cast<int64_t>(k);
  }
  rng->Shuffle(&order_);
  cursor_ = 0;
}

int32_t BprSampler::SampleNegative(int32_t user, util::Rng* rng) const {
  const auto& items = graph_->user_items()[static_cast<size_t>(user)];
  const int32_t num_items = graph_->num_items();
  LAYERGCN_CHECK_LT(static_cast<int32_t>(items.size()), num_items)
      << "user " << user << " has interacted with every item";
  uint64_t rejected = 0;
  for (;;) {
    const int32_t j =
        strategy_ == NegativeSampling::kPopularity
            ? static_cast<int32_t>(popularity_.Sample(rng))
            : static_cast<int32_t>(
                  rng->NextBounded(static_cast<uint64_t>(num_items)));
    if (!std::binary_search(items.begin(), items.end(), j)) {
      OBS_COUNT("bpr.neg_sampled", rejected + 1);
      if (rejected > 0) OBS_COUNT("bpr.neg_rejected", rejected);
      return j;
    }
    ++rejected;
  }
}

bool BprSampler::NextBatch(int64_t batch_size, util::Rng* rng,
                           BprBatch* batch) {
  batch->users.clear();
  batch->pos_items.clear();
  batch->neg_items.clear();
  if (cursor_ >= order_.size()) return false;
  const size_t end =
      std::min(order_.size(), cursor_ + static_cast<size_t>(batch_size));
  batch->users.reserve(end - cursor_);
  batch->pos_items.reserve(end - cursor_);
  batch->neg_items.reserve(end - cursor_);
  const auto& edge_users = graph_->edge_users();
  const auto& edge_items = graph_->edge_items();
  for (; cursor_ < end; ++cursor_) {
    const int64_t e = order_[cursor_];
    const int32_t u = edge_users[static_cast<size_t>(e)];
    batch->users.push_back(u);
    batch->pos_items.push_back(edge_items[static_cast<size_t>(e)]);
    batch->neg_items.push_back(SampleNegative(u, rng));
  }
  OBS_COUNT("bpr.triples", batch->users.size());
  return true;
}

int64_t BprSampler::NumBatches(int64_t batch_size) const {
  const int64_t m = graph_->num_edges();
  return (m + batch_size - 1) / batch_size;
}

}  // namespace layergcn::train
