#include "train/stop_token.h"

#include <atomic>
#include <csignal>

namespace layergcn::train {
namespace {

std::atomic<bool> g_stop_requested{false};

void StopSignalHandler(int /*signum*/) {
  // Only an atomic store: anything heavier is not async-signal-safe.
  g_stop_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

void RequestGracefulStop() {
  g_stop_requested.store(true, std::memory_order_relaxed);
}

bool StopRequested() {
  return g_stop_requested.load(std::memory_order_relaxed);
}

void ClearStopRequest() {
  g_stop_requested.store(false, std::memory_order_relaxed);
}

void InstallStopSignalHandlers() {
  std::signal(SIGINT, StopSignalHandler);
  std::signal(SIGTERM, StopSignalHandler);
}

}  // namespace layergcn::train
