// Process-wide graceful-stop request for training loops.
//
// SIGINT/SIGTERM (or a programmatic RequestGracefulStop) set a flag that
// models poll at batch boundaries and the trainer polls at epoch
// boundaries: the current batch finishes, the trainer discards the partial
// epoch, writes/keeps a consistent epoch-boundary checkpoint, and returns
// with TrainResult::interrupted set. A second signal still kills the
// process the ordinary way — the handler only sets the flag.

#ifndef LAYERGCN_TRAIN_STOP_TOKEN_H_
#define LAYERGCN_TRAIN_STOP_TOKEN_H_

namespace layergcn::train {

/// Asks the running training loop to stop at the next batch boundary.
/// Async-signal-safe.
void RequestGracefulStop();

/// True once a stop has been requested and not yet cleared.
bool StopRequested();

/// Clears the flag (FitRecommender does this on entry; tests use it for
/// isolation).
void ClearStopRequest();

/// Installs SIGINT/SIGTERM handlers that call RequestGracefulStop().
void InstallStopSignalHandlers();

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_STOP_TOKEN_H_
