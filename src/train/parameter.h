// Trainable parameter: value, gradient, and Adam state in one bundle.

#ifndef LAYERGCN_TRAIN_PARAMETER_H_
#define LAYERGCN_TRAIN_PARAMETER_H_

#include <string>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace layergcn::train {

/// A named trainable matrix with its gradient accumulator and Adam moments.
/// Models keep Parameters as members and hand Parameter* lists to the
/// optimizer; autograd tapes reference ¶m.value and sink into ¶m.grad.
struct Parameter {
  std::string name;
  tensor::Matrix value;
  tensor::Matrix grad;
  tensor::Matrix adam_m;
  tensor::Matrix adam_v;

  Parameter() = default;
  Parameter(std::string param_name, int64_t rows, int64_t cols)
      : name(std::move(param_name)),
        value(rows, cols),
        grad(rows, cols),
        adam_m(rows, cols),
        adam_v(rows, cols) {}

  /// Xavier-uniform init of the value (paper §V-A4); zeroes grad and moments.
  void InitXavier(util::Rng* rng) {
    value.XavierUniform(rng);
    ResetState();
  }

  /// N(0, stddev²) init; zeroes grad and moments.
  void InitGaussian(util::Rng* rng, float stddev) {
    value.GaussianInit(rng, stddev);
    ResetState();
  }

  /// Constant init; zeroes grad and moments.
  void InitConstant(float v) {
    value.Fill(v);
    ResetState();
  }

  /// Zeroes the gradient accumulator (call before each backward pass).
  void ZeroGrad() { grad.Zero(); }

  /// Zeroes grad and optimizer moments (keeps the value).
  void ResetState() {
    grad.Zero();
    adam_m.Zero();
    adam_v.Zero();
  }
};

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_PARAMETER_H_
