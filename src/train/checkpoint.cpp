#include "train/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::train {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'L', 'G', 'C', 'N'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;
// magic + version + section/param count.
constexpr size_t kHeaderBytes = 12;

// v2 section tags. Unknown tags are skipped on load.
enum SectionTag : uint32_t {
  kTagMeta = 1,
  kTagRng = 2,
  kTagParamValues = 3,
  kTagAdamM = 4,
  kTagAdamV = 5,
  kTagBestSnapshot = 6,
  kTagHistory = 7,
  kTagServeHistory = 8,
  kTagServeMeta = 9,
  kTagServeInt8 = 10,
  kTagServeBf16 = 11,
};

constexpr uint32_t kMetaStateVersion = 1;
constexpr uint32_t kServeMetaVersion = 1;
constexpr uint32_t kServeQuantVersion = 1;

// The quantized serving sections are optional accelerations of the always-
// present f32 reference: damage inside one of them must not fail the whole
// snapshot load, only drop the quantized copy (the caller falls back to
// f32 and counts serve.snapshot_fallbacks).
inline bool IsServeQuantTag(uint32_t tag) {
  return tag == kTagServeInt8 || tag == kTagServeBf16;
}

// Value-table names of the serving-export embedding blocks.
constexpr char kServeUserEmbName[] = "serve.user_emb";
constexpr char kServeItemEmbName[] = "serve.item_emb";

// ---------------------------------------------------------------------------
// Buffer writers.

template <typename T>
void AppendPod(std::string* buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  buf->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void AppendBytes(std::string* buf, const void* p, size_t n) {
  buf->append(static_cast<const char*>(p), n);
}

void AppendNamedMatrix(std::string* buf, const std::string& name,
                       const tensor::Matrix& m) {
  AppendPod(buf, static_cast<uint32_t>(name.size()));
  AppendBytes(buf, name.data(), name.size());
  AppendPod(buf, m.rows());
  AppendPod(buf, m.cols());
  AppendBytes(buf, m.data(),
              static_cast<size_t>(m.size()) * sizeof(float));
}

// Table of named matrices: uint32 count, then each entry.
std::string MatrixTablePayload(
    const std::vector<std::pair<std::string, const tensor::Matrix*>>& table) {
  std::string payload;
  AppendPod(&payload, static_cast<uint32_t>(table.size()));
  for (const auto& [name, m] : table) AppendNamedMatrix(&payload, name, *m);
  return payload;
}

void AppendSection(std::string* out, uint32_t tag,
                   const std::string& payload) {
  AppendPod(out, tag);
  AppendPod(out, static_cast<uint64_t>(payload.size()));
  out->append(payload);
  AppendPod(out, util::Crc32(payload.data(), payload.size()));
}

// ---------------------------------------------------------------------------
// Buffer reader with explicit bounds checks.

class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

  bool ReadBytes(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    return ReadBytes(out, sizeof(T));
  }

  bool ReadString(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    pos_ += n;
    return true;
  }

  const char* cursor() const { return data_ + pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

using MatrixTable = std::map<std::string, tensor::Matrix>;

util::Status ParseMatrixTable(const std::string& path, const char* what,
                              ByteReader* in, MatrixTable* out) {
  uint32_t count = 0;
  if (!in->ReadPod(&count)) {
    return util::DataLossError(path + ": truncated " + what + " table");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    std::string name;
    if (!in->ReadPod(&name_len) || !in->ReadString(name_len, &name)) {
      return util::DataLossError(path + ": truncated " + what +
                                 " entry name");
    }
    int64_t rows = 0, cols = 0;
    if (!in->ReadPod(&rows) || !in->ReadPod(&cols)) {
      return util::DataLossError(path + ": truncated " + what +
                                 " entry header for '" + name + "'");
    }
    if (rows < 0 || cols < 0 ||
        (cols > 0 && rows > static_cast<int64_t>(in->remaining() /
                                                 (sizeof(float) *
                                                  static_cast<size_t>(cols))))) {
      return util::DataLossError(path + ": implausible shape " +
                                 std::to_string(rows) + "x" +
                                 std::to_string(cols) + " for '" + name +
                                 "' in " + what + " table");
    }
    tensor::Matrix m(rows, cols);
    if (!in->ReadBytes(m.data(),
                       static_cast<size_t>(m.size()) * sizeof(float))) {
      return util::DataLossError(path + ": truncated " + what +
                                 " payload for '" + name + "'");
    }
    if (!out->emplace(std::move(name), std::move(m)).second) {
      return util::DataLossError(path + ": duplicate parameter name in " +
                                 what + " table");
    }
  }
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Whole-file image read, with the read-side fault points applied to the
// in-memory copy so corruption is indistinguishable from real disk damage.

util::Status ReadFileImage(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return util::NotFoundError("cannot open " + path);
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (in.bad()) {
    return util::UnavailableError("read failure on " + path);
  }
  if (util::fault::Fire("checkpoint.short_read") && !buf.empty()) {
    buf.resize(buf.size() - buf.size() / 3 - 1);
  }
  if (util::fault::Fire("checkpoint.bit_flip") && !buf.empty()) {
    buf[buf.size() / 2] = static_cast<char>(buf[buf.size() / 2] ^ 0x10);
  }
  // Serve-side fault points: a flipped bit in a snapshot image and a torn
  // read during hot-swap reload. They live here because every snapshot
  // load goes through this reader, so injected damage is indistinguishable
  // from real disk damage.
  if (util::fault::Fire("serve.snapshot_bit_flip") && !buf.empty()) {
    buf[buf.size() / 3] = static_cast<char>(buf[buf.size() / 3] ^ 0x04);
  }
  if (util::fault::Fire("serve.reload_torn_read") && !buf.empty()) {
    buf.resize(buf.size() / 2);
  }
  *out = std::move(buf);
  return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Serialization.

std::vector<std::pair<std::string, const tensor::Matrix*>> ValueTable(
    const std::vector<Parameter*>& params,
    tensor::Matrix Parameter::*field) {
  std::vector<std::pair<std::string, const tensor::Matrix*>> table;
  table.reserve(params.size());
  for (const Parameter* p : params) table.emplace_back(p->name, &(p->*field));
  return table;
}

std::string SerializeV2(const std::vector<Parameter*>& params,
                        const TrainingState* state) {
  // Section count first: params + both moment tables, plus the state
  // sections when present.
  uint32_t sections = 3;
  if (state != nullptr) {
    sections += 2;  // meta + history
    if (state->has_rng) ++sections;
    if (!state->best_snapshot.empty()) ++sections;
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendPod(&out, kVersionV2);
  AppendPod(&out, sections);

  if (state != nullptr) {
    std::string meta;
    AppendPod(&meta, kMetaStateVersion);
    AppendPod(&meta, state->epoch);
    AppendPod(&meta, state->best_epoch);
    AppendPod(&meta, state->best_valid_score);
    AppendPod(&meta, state->epochs_since_best);
    AppendPod(&meta, state->optimizer_steps);
    AppendPod(&meta, state->seed);
    AppendPod(&meta, state->sampler_cursor);
    AppendSection(&out, kTagMeta, meta);

    if (state->has_rng) {
      std::string rng;
      for (uint64_t s : state->rng.s) AppendPod(&rng, s);
      AppendPod(&rng, state->rng.spare_bits);
      AppendPod(&rng, state->rng.has_spare);
      AppendSection(&out, kTagRng, rng);
    }
  }

  AppendSection(&out, kTagParamValues,
                MatrixTablePayload(ValueTable(params, &Parameter::value)));
  AppendSection(&out, kTagAdamM,
                MatrixTablePayload(ValueTable(params, &Parameter::adam_m)));
  AppendSection(&out, kTagAdamV,
                MatrixTablePayload(ValueTable(params, &Parameter::adam_v)));

  if (state != nullptr) {
    if (!state->best_snapshot.empty()) {
      std::vector<std::pair<std::string, const tensor::Matrix*>> best;
      best.reserve(state->best_snapshot.size());
      for (const auto& [name, m] : state->best_snapshot) {
        best.emplace_back(name, &m);
      }
      AppendSection(&out, kTagBestSnapshot, MatrixTablePayload(best));
    }

    std::string history;
    AppendPod(&history, static_cast<uint64_t>(state->epoch_losses.size()));
    for (double loss : state->epoch_losses) AppendPod(&history, loss);
    AppendPod(&history, static_cast<uint64_t>(state->valid_curve.size()));
    for (const auto& [epoch, score] : state->valid_curve) {
      AppendPod(&history, epoch);
      AppendPod(&history, score);
    }
    AppendSection(&out, kTagHistory, history);
  }
  return out;
}

// Fully parsed v2 file, staged before anything is applied to parameters so
// corruption can never leave a half-restored model.
struct ParsedCheckpoint {
  MatrixTable values;
  MatrixTable adam_m;
  MatrixTable adam_v;
  MatrixTable best_snapshot;
  bool has_best_snapshot = false;
  bool has_meta = false;
  TrainingState state;

  // Serving-export sections (absent in training checkpoints).
  bool has_serve_meta = false;
  int64_t serve_version = 0;
  int64_t serve_num_users = 0;
  int64_t serve_num_items = 0;
  int64_t serve_dim = 0;
  bool has_serve_history = false;
  std::vector<std::vector<int32_t>> serve_history;
  bool has_serve_int8 = false;
  tensor::Int8Rows serve_user_int8, serve_item_int8;
  bool has_serve_bf16 = false;
  tensor::Bf16Rows serve_user_bf16, serve_item_bf16;
  bool serve_quant_dropped = false;
};

util::Status ParseMeta(const std::string& path, ByteReader* in,
                       TrainingState* state) {
  uint32_t state_version = 0;
  if (!in->ReadPod(&state_version)) {
    return util::DataLossError(path + ": truncated meta section");
  }
  if (state_version != kMetaStateVersion) {
    return util::DataLossError(path + ": unsupported meta state version " +
                               std::to_string(state_version));
  }
  if (!in->ReadPod(&state->epoch) || !in->ReadPod(&state->best_epoch) ||
      !in->ReadPod(&state->best_valid_score) ||
      !in->ReadPod(&state->epochs_since_best) ||
      !in->ReadPod(&state->optimizer_steps) || !in->ReadPod(&state->seed) ||
      !in->ReadPod(&state->sampler_cursor)) {
    return util::DataLossError(path + ": truncated meta section");
  }
  return util::OkStatus();
}

util::Status ParseRng(const std::string& path, ByteReader* in,
                      TrainingState* state) {
  for (uint64_t& s : state->rng.s) {
    if (!in->ReadPod(&s)) {
      return util::DataLossError(path + ": truncated rng section");
    }
  }
  if (!in->ReadPod(&state->rng.spare_bits) ||
      !in->ReadPod(&state->rng.has_spare)) {
    return util::DataLossError(path + ": truncated rng section");
  }
  state->has_rng = true;
  return util::OkStatus();
}

util::Status ParseHistory(const std::string& path, ByteReader* in,
                          TrainingState* state) {
  uint64_t n = 0;
  if (!in->ReadPod(&n) || n > in->remaining() / sizeof(double)) {
    return util::DataLossError(path + ": truncated history section");
  }
  state->epoch_losses.resize(n);
  for (double& loss : state->epoch_losses) {
    if (!in->ReadPod(&loss)) {
      return util::DataLossError(path + ": truncated history losses");
    }
  }
  uint64_t m = 0;
  if (!in->ReadPod(&m) ||
      m > in->remaining() / (sizeof(int64_t) + sizeof(double))) {
    return util::DataLossError(path + ": truncated history curve");
  }
  state->valid_curve.resize(m);
  for (auto& [epoch, score] : state->valid_curve) {
    if (!in->ReadPod(&epoch) || !in->ReadPod(&score)) {
      return util::DataLossError(path + ": truncated history curve");
    }
  }
  return util::OkStatus();
}

util::Status ParseServeMeta(const std::string& path, ByteReader* in,
                            ParsedCheckpoint* parsed) {
  uint32_t meta_version = 0;
  if (!in->ReadPod(&meta_version)) {
    return util::DataLossError(path + ": truncated serve meta section");
  }
  if (meta_version != kServeMetaVersion) {
    return util::DataLossError(path + ": unsupported serve meta version " +
                               std::to_string(meta_version));
  }
  if (!in->ReadPod(&parsed->serve_version) ||
      !in->ReadPod(&parsed->serve_num_users) ||
      !in->ReadPod(&parsed->serve_num_items) ||
      !in->ReadPod(&parsed->serve_dim)) {
    return util::DataLossError(path + ": truncated serve meta section");
  }
  parsed->has_serve_meta = true;
  return util::OkStatus();
}

util::Status ParseServeHistory(const std::string& path, ByteReader* in,
                               ParsedCheckpoint* parsed) {
  uint64_t num_users = 0;
  if (!in->ReadPod(&num_users) || num_users > in->remaining()) {
    return util::DataLossError(path + ": truncated serve history section");
  }
  parsed->serve_history.resize(num_users);
  for (uint64_t u = 0; u < num_users; ++u) {
    uint64_t len = 0;
    if (!in->ReadPod(&len) || len > in->remaining() / sizeof(int32_t)) {
      return util::DataLossError(path + ": truncated serve history list " +
                                 std::to_string(u));
    }
    std::vector<int32_t>& items = parsed->serve_history[u];
    items.resize(len);
    if (len > 0 &&
        !in->ReadBytes(items.data(), len * sizeof(int32_t))) {
      return util::DataLossError(path + ": truncated serve history list " +
                                 std::to_string(u));
    }
  }
  parsed->has_serve_history = true;
  return util::OkStatus();
}

util::Status ParseInt8Block(const std::string& path, ByteReader* in,
                            tensor::Int8Rows* out) {
  int64_t rows = 0, cols = 0;
  if (!in->ReadPod(&rows) || !in->ReadPod(&cols) || rows < 0 || cols < 0 ||
      (cols > 0 &&
       rows > static_cast<int64_t>(in->remaining() /
                                   static_cast<size_t>(cols)))) {
    return util::DataLossError(path + ": truncated int8 block header");
  }
  out->rows = rows;
  out->cols = cols;
  out->scales.resize(static_cast<size_t>(rows));
  out->data.resize(static_cast<size_t>(rows * cols));
  if (!in->ReadBytes(out->scales.data(),
                     static_cast<size_t>(rows) * sizeof(float)) ||
      !in->ReadBytes(out->data.data(), static_cast<size_t>(rows * cols))) {
    return util::DataLossError(path + ": truncated int8 block payload");
  }
  return util::OkStatus();
}

util::Status ParseBf16Block(const std::string& path, ByteReader* in,
                            tensor::Bf16Rows* out) {
  int64_t rows = 0, cols = 0;
  if (!in->ReadPod(&rows) || !in->ReadPod(&cols) || rows < 0 || cols < 0 ||
      (cols > 0 &&
       rows > static_cast<int64_t>(in->remaining() /
                                   (sizeof(uint16_t) *
                                    static_cast<size_t>(cols))))) {
    return util::DataLossError(path + ": truncated bf16 block header");
  }
  out->rows = rows;
  out->cols = cols;
  out->data.resize(static_cast<size_t>(rows * cols));
  if (!in->ReadBytes(out->data.data(),
                     static_cast<size_t>(rows * cols) * sizeof(uint16_t))) {
    return util::DataLossError(path + ": truncated bf16 block payload");
  }
  return util::OkStatus();
}

util::Status ParseServeInt8(const std::string& path, ByteReader* in,
                            ParsedCheckpoint* parsed) {
  uint32_t quant_version = 0;
  if (!in->ReadPod(&quant_version) || quant_version != kServeQuantVersion) {
    return util::DataLossError(path + ": bad serve int8 section version");
  }
  LAYERGCN_RETURN_IF_ERROR(
      ParseInt8Block(path, in, &parsed->serve_user_int8));
  LAYERGCN_RETURN_IF_ERROR(
      ParseInt8Block(path, in, &parsed->serve_item_int8));
  parsed->has_serve_int8 = true;
  return util::OkStatus();
}

util::Status ParseServeBf16(const std::string& path, ByteReader* in,
                            ParsedCheckpoint* parsed) {
  uint32_t quant_version = 0;
  if (!in->ReadPod(&quant_version) || quant_version != kServeQuantVersion) {
    return util::DataLossError(path + ": bad serve bf16 section version");
  }
  LAYERGCN_RETURN_IF_ERROR(
      ParseBf16Block(path, in, &parsed->serve_user_bf16));
  LAYERGCN_RETURN_IF_ERROR(
      ParseBf16Block(path, in, &parsed->serve_item_bf16));
  parsed->has_serve_bf16 = true;
  return util::OkStatus();
}

util::Status ParseV2(const std::string& path, ByteReader* in,
                     uint32_t section_count, ParsedCheckpoint* parsed) {
  bool saw_values = false;
  for (uint32_t s = 0; s < section_count; ++s) {
    uint32_t tag = 0;
    uint64_t payload_len = 0;
    if (!in->ReadPod(&tag) || !in->ReadPod(&payload_len)) {
      return util::DataLossError(path + ": truncated section header (" +
                                 std::to_string(s) + " of " +
                                 std::to_string(section_count) + ")");
    }
    if (payload_len > in->remaining()) {
      // Quantized serving sections are optional *and written last*: a tail
      // truncation that eats into them loses only the quantized copies, so
      // degrade to the f32 reference instead of rejecting the file. Damage
      // to any required section still fails the whole load.
      if (IsServeQuantTag(tag)) {
        parsed->serve_quant_dropped = true;
        break;
      }
      return util::DataLossError(path + ": section " + std::to_string(tag) +
                                 " payload exceeds file size");
    }
    const char* payload = in->cursor();
    in->Skip(static_cast<size_t>(payload_len));
    uint32_t stored_crc = 0;
    if (!in->ReadPod(&stored_crc)) {
      if (IsServeQuantTag(tag)) {
        parsed->serve_quant_dropped = true;
        break;
      }
      return util::DataLossError(path + ": section " + std::to_string(tag) +
                                 " missing CRC");
    }
    const uint32_t actual_crc =
        util::Crc32(payload, static_cast<size_t>(payload_len));
    if (actual_crc != stored_crc) {
      if (IsServeQuantTag(tag)) {
        // Drop just this quantized copy; the rest of the file is intact.
        parsed->serve_quant_dropped = true;
        continue;
      }
      return util::DataLossError(
          path + ": CRC mismatch in section " + std::to_string(tag) +
          util::StrFormat(" (stored %08x, computed %08x)", stored_crc,
                          actual_crc));
    }
    ByteReader section(payload, static_cast<size_t>(payload_len));
    switch (tag) {
      case kTagMeta:
        LAYERGCN_RETURN_IF_ERROR(ParseMeta(path, &section, &parsed->state));
        parsed->has_meta = true;
        break;
      case kTagRng:
        LAYERGCN_RETURN_IF_ERROR(ParseRng(path, &section, &parsed->state));
        break;
      case kTagParamValues:
        LAYERGCN_RETURN_IF_ERROR(
            ParseMatrixTable(path, "parameter", &section, &parsed->values));
        saw_values = true;
        break;
      case kTagAdamM:
        LAYERGCN_RETURN_IF_ERROR(
            ParseMatrixTable(path, "adam_m", &section, &parsed->adam_m));
        break;
      case kTagAdamV:
        LAYERGCN_RETURN_IF_ERROR(
            ParseMatrixTable(path, "adam_v", &section, &parsed->adam_v));
        break;
      case kTagBestSnapshot:
        LAYERGCN_RETURN_IF_ERROR(ParseMatrixTable(
            path, "best snapshot", &section, &parsed->best_snapshot));
        parsed->has_best_snapshot = true;
        break;
      case kTagHistory:
        LAYERGCN_RETURN_IF_ERROR(
            ParseHistory(path, &section, &parsed->state));
        break;
      case kTagServeHistory:
        LAYERGCN_RETURN_IF_ERROR(ParseServeHistory(path, &section, parsed));
        break;
      case kTagServeMeta:
        LAYERGCN_RETURN_IF_ERROR(ParseServeMeta(path, &section, parsed));
        break;
      case kTagServeInt8:
        // CRC passed but the body may still be malformed (e.g. written by
        // a buggy tool): a bad quant body drops the copy, not the file.
        if (!ParseServeInt8(path, &section, parsed).ok()) {
          parsed->has_serve_int8 = false;
          parsed->serve_quant_dropped = true;
        }
        break;
      case kTagServeBf16:
        if (!ParseServeBf16(path, &section, parsed).ok()) {
          parsed->has_serve_bf16 = false;
          parsed->serve_quant_dropped = true;
        }
        break;
      default:
        // Unknown section from a newer writer: the CRC already validated,
        // so skipping is safe.
        break;
    }
  }
  if (!saw_values) {
    return util::DataLossError(path + ": no parameter value section");
  }
  return util::OkStatus();
}

util::Status ParseV1(const std::string& path, ByteReader* in,
                     ParsedCheckpoint* parsed) {
  // v1 body: uint32 param count | per param: name/rows/cols/values. One
  // flat record, no CRC — truncation is the only detectable corruption.
  return ParseMatrixTable(path, "parameter", in, &parsed->values);
}

util::Status ParseCheckpointImage(const std::string& path,
                                  const std::string& image,
                                  ParsedCheckpoint* parsed) {
  ByteReader in(image.data(), image.size());
  char magic[4];
  if (!in.ReadBytes(magic, sizeof(magic)) ||
      !std::equal(magic, magic + 4, kMagic)) {
    return util::DataLossError(path + " is not a LayerGCN checkpoint");
  }
  uint32_t version = 0;
  if (!in.ReadPod(&version)) {
    return util::DataLossError(path + ": truncated header");
  }
  if (version == kVersionV1) return ParseV1(path, &in, parsed);
  if (version == kVersionV2) {
    uint32_t section_count = 0;
    if (!in.ReadPod(&section_count)) {
      return util::DataLossError(path + ": truncated header");
    }
    return ParseV2(path, &in, section_count, parsed);
  }
  return util::DataLossError(path + ": unsupported checkpoint version " +
                             std::to_string(version));
}

// Copies `table[name]` into `dst` when present with the right shape.
// Moment tables are best-effort: a params-only consumer may pass params
// whose moments were never part of the file.
void ApplyMomentTable(const MatrixTable& table, const std::string& name,
                      tensor::Matrix* dst) {
  const auto it = table.find(name);
  if (it == table.end()) return;
  if (it->second.rows() != dst->rows() || it->second.cols() != dst->cols()) {
    return;
  }
  *dst = it->second;
}

// Atomic image write shared by checkpoints and serving exports: buffer ->
// temp file -> fsync -> rename, with the torn-write fault applied before
// the safe path so tests can simulate a crash inside the write window.
util::Status AtomicWriteImage(const std::string& path,
                              const std::string& image) {
  if (util::fault::Fire("checkpoint.torn_write")) {
    // Simulated crash inside the write window: a prefix of the image lands
    // under the final name (as if the filesystem lost the rename barrier)
    // and the writer believes it succeeded. Readers must detect this.
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(image.data(),
               static_cast<std::streamsize>(image.size() * 3 / 5));
    return util::OkStatus();
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      return util::UnavailableError("cannot write " + tmp);
    }
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return util::UnavailableError("write failure on " + tmp);
    }
  }
#if defined(__unix__) || defined(__APPLE__)
  // Push the data to stable storage before the rename makes it visible.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::UnavailableError("cannot rename " + tmp + " to " + path);
  }
  return util::OkStatus();
}

}  // namespace

util::Status SaveCheckpointV2(const std::string& path,
                              const std::vector<Parameter*>& params,
                              const TrainingState* state) {
  std::set<std::string> names;
  for (const Parameter* p : params) {
    LAYERGCN_CHECK(p != nullptr);
    if (!names.insert(p->name).second) {
      return util::InvalidArgumentError("duplicate parameter name: " +
                                        p->name);
    }
  }
  return AtomicWriteImage(path, SerializeV2(params, state));
}

util::Status SaveServingExport(const std::string& path,
                               const ServingExport& ex) {
  if (ex.user_emb.cols() != ex.item_emb.cols()) {
    return util::InvalidArgumentError(util::StrFormat(
        "serving export embedding width mismatch (user %lld, item %lld)",
        static_cast<long long>(ex.user_emb.cols()),
        static_cast<long long>(ex.item_emb.cols())));
  }
  if (static_cast<int64_t>(ex.user_history.size()) != ex.user_emb.rows()) {
    return util::InvalidArgumentError(util::StrFormat(
        "serving export history size %lld != user count %lld",
        static_cast<long long>(ex.user_history.size()),
        static_cast<long long>(ex.user_emb.rows())));
  }
  for (const std::vector<int32_t>& items : ex.user_history) {
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i] < 0 || items[i] >= ex.item_emb.rows()) {
        return util::InvalidArgumentError(
            "serving export history item id " + std::to_string(items[i]) +
            " out of range");
      }
      if (i > 0 && items[i] <= items[i - 1]) {
        return util::InvalidArgumentError(
            "serving export history lists must be sorted ascending and "
            "duplicate-free");
      }
    }
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendPod(&out, kVersionV2);
  // meta + values + history, plus the optional quantized copies. The quant
  // sections go LAST so a tail truncation degrades to f32 instead of
  // killing the snapshot.
  AppendPod(&out, static_cast<uint32_t>(3 + (ex.write_int8 ? 1 : 0) +
                                        (ex.write_bf16 ? 1 : 0)));

  std::string meta;
  AppendPod(&meta, kServeMetaVersion);
  AppendPod(&meta, ex.version);
  AppendPod(&meta, ex.user_emb.rows());
  AppendPod(&meta, ex.item_emb.rows());
  AppendPod(&meta, ex.user_emb.cols());
  AppendSection(&out, kTagServeMeta, meta);

  AppendSection(&out, kTagParamValues,
                MatrixTablePayload({{kServeUserEmbName, &ex.user_emb},
                                    {kServeItemEmbName, &ex.item_emb}}));

  std::string history;
  AppendPod(&history, static_cast<uint64_t>(ex.user_history.size()));
  for (const std::vector<int32_t>& items : ex.user_history) {
    AppendPod(&history, static_cast<uint64_t>(items.size()));
    AppendBytes(&history, items.data(), items.size() * sizeof(int32_t));
  }
  AppendSection(&out, kTagServeHistory, history);

  if (ex.write_int8) {
    std::string quant;
    AppendPod(&quant, kServeQuantVersion);
    for (const tensor::Matrix* m : {&ex.user_emb, &ex.item_emb}) {
      const tensor::Int8Rows q = tensor::QuantizeInt8PerRow(*m);
      AppendPod(&quant, q.rows);
      AppendPod(&quant, q.cols);
      AppendBytes(&quant, q.scales.data(), q.scales.size() * sizeof(float));
      AppendBytes(&quant, q.data.data(), q.data.size());
    }
    AppendSection(&out, kTagServeInt8, quant);
  }

  if (ex.write_bf16) {
    std::string quant;
    AppendPod(&quant, kServeQuantVersion);
    for (const tensor::Matrix* m : {&ex.user_emb, &ex.item_emb}) {
      const tensor::Bf16Rows q = tensor::ToBf16Rows(*m);
      AppendPod(&quant, q.rows);
      AppendPod(&quant, q.cols);
      AppendBytes(&quant, q.data.data(), q.data.size() * sizeof(uint16_t));
    }
    AppendSection(&out, kTagServeBf16, quant);
  }

  return AtomicWriteImage(path, out);
}

util::StatusOr<ServingExport> LoadServingExport(const std::string& path) {
  std::string image;
  LAYERGCN_RETURN_IF_ERROR(ReadFileImage(path, &image));
  ParsedCheckpoint parsed;
  LAYERGCN_RETURN_IF_ERROR(ParseCheckpointImage(path, image, &parsed));
  if (!parsed.has_serve_meta || !parsed.has_serve_history) {
    return util::DataLossError(path + " is not a serving export (serve "
                               "sections absent)");
  }
  const auto user_it = parsed.values.find(kServeUserEmbName);
  const auto item_it = parsed.values.find(kServeItemEmbName);
  if (user_it == parsed.values.end() || item_it == parsed.values.end()) {
    return util::DataLossError(path + ": serving export missing embedding "
                               "matrices");
  }
  ServingExport ex;
  ex.version = parsed.serve_version;
  ex.user_emb = std::move(user_it->second);
  ex.item_emb = std::move(item_it->second);
  ex.user_history = std::move(parsed.serve_history);
  // The meta section double-checks the payload shapes so a section-level
  // mix-up (e.g. a file assembled from two snapshots) cannot slip through.
  if (ex.user_emb.rows() != parsed.serve_num_users ||
      ex.item_emb.rows() != parsed.serve_num_items ||
      ex.user_emb.cols() != parsed.serve_dim ||
      ex.item_emb.cols() != parsed.serve_dim ||
      static_cast<int64_t>(ex.user_history.size()) != parsed.serve_num_users) {
    return util::DataLossError(path + ": serving export sections disagree "
                               "on shapes");
  }
  for (const std::vector<int32_t>& items : ex.user_history) {
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i] < 0 || items[i] >= ex.item_emb.rows() ||
          (i > 0 && items[i] <= items[i - 1])) {
        return util::DataLossError(path + ": serving export history list "
                                   "unsorted or out of range");
      }
    }
  }

  // Quantized copies ride along only when shape-consistent with the f32
  // reference; a disagreement means the section is stale or damaged, and
  // the right degradation is dropping the copy, not failing the snapshot.
  ex.quant_dropped = parsed.serve_quant_dropped;
  if (parsed.has_serve_int8) {
    if (parsed.serve_user_int8.rows == ex.user_emb.rows() &&
        parsed.serve_user_int8.cols == ex.user_emb.cols() &&
        parsed.serve_item_int8.rows == ex.item_emb.rows() &&
        parsed.serve_item_int8.cols == ex.item_emb.cols()) {
      ex.has_int8 = true;
      ex.user_int8 = std::move(parsed.serve_user_int8);
      ex.item_int8 = std::move(parsed.serve_item_int8);
    } else {
      ex.quant_dropped = true;
    }
  }
  if (parsed.has_serve_bf16) {
    if (parsed.serve_user_bf16.rows == ex.user_emb.rows() &&
        parsed.serve_user_bf16.cols == ex.user_emb.cols() &&
        parsed.serve_item_bf16.rows == ex.item_emb.rows() &&
        parsed.serve_item_bf16.cols == ex.item_emb.cols()) {
      ex.has_bf16 = true;
      ex.user_bf16 = std::move(parsed.serve_user_bf16);
      ex.item_bf16 = std::move(parsed.serve_item_bf16);
    } else {
      ex.quant_dropped = true;
    }
  }
  return ex;
}

util::StatusOr<int> LoadCheckpointV2(const std::string& path,
                                     const std::vector<Parameter*>& params,
                                     TrainingState* state) {
  std::string image;
  LAYERGCN_RETURN_IF_ERROR(ReadFileImage(path, &image));
  ParsedCheckpoint parsed;
  LAYERGCN_RETURN_IF_ERROR(ParseCheckpointImage(path, image, &parsed));

  // Validate the full match before mutating anything.
  for (const Parameter* p : params) {
    const auto it = parsed.values.find(p->name);
    if (it == parsed.values.end()) {
      return util::FailedPreconditionError(
          path + ": checkpoint missing parameter: " + p->name);
    }
    if (it->second.rows() != p->value.rows() ||
        it->second.cols() != p->value.cols()) {
      return util::FailedPreconditionError(util::StrFormat(
          "%s: shape mismatch for %s (file %lldx%lld, param %lldx%lld)",
          path.c_str(), p->name.c_str(),
          static_cast<long long>(it->second.rows()),
          static_cast<long long>(it->second.cols()),
          static_cast<long long>(p->value.rows()),
          static_cast<long long>(p->value.cols())));
    }
  }

  int restored = 0;
  for (Parameter* p : params) {
    p->value = parsed.values.at(p->name);
    ApplyMomentTable(parsed.adam_m, p->name, &p->adam_m);
    ApplyMomentTable(parsed.adam_v, p->name, &p->adam_v);
    ++restored;
  }
  if (state != nullptr && (parsed.has_meta || parsed.state.has_rng)) {
    if (parsed.has_best_snapshot) {
      parsed.state.best_snapshot.reserve(parsed.best_snapshot.size());
      for (auto& [name, m] : parsed.best_snapshot) {
        parsed.state.best_snapshot.emplace_back(name, std::move(m));
      }
    }
    *state = std::move(parsed.state);
  }
  return restored;
}

util::Status ValidateCheckpoint(const std::string& path) {
  std::string image;
  LAYERGCN_RETURN_IF_ERROR(ReadFileImage(path, &image));
  ParsedCheckpoint parsed;
  return ParseCheckpointImage(path, image, &parsed);
}

// ---------------------------------------------------------------------------
// CheckpointManager.

CheckpointManager::CheckpointManager(std::string dir, int keep_last)
    : dir_(std::move(dir)), keep_last_(keep_last) {
  LAYERGCN_CHECK_GE(keep_last_, 1);
}

std::string CheckpointManager::CheckpointPath(const std::string& dir,
                                              int64_t epoch) {
  return dir + "/" +
         util::StrFormat("ckpt-%06lld.lgcn", static_cast<long long>(epoch));
}

std::vector<std::pair<int64_t, std::string>> CheckpointManager::ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    int64_t epoch = 0;
    if (name.size() == 16 && util::StartsWith(name, "ckpt-") &&
        name.compare(11, 5, ".lgcn") == 0 &&
        util::ParseInt64(name.substr(5, 6), &epoch)) {
      out.emplace_back(epoch, entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

util::Status CheckpointManager::Write(const std::vector<Parameter*>& params,
                                      const TrainingState& state) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return util::UnavailableError("cannot create checkpoint dir " + dir_ +
                                  ": " + ec.message());
  }
  const std::string path = CheckpointPath(dir_, state.epoch);
  LAYERGCN_RETURN_IF_ERROR(SaveCheckpointV2(path, params, &state));
  OBS_COUNT("checkpoint.writes", 1);

  // Rotation: drop the oldest files beyond keep_last (never the one just
  // written). Removal failures are non-fatal — worst case extra files stay.
  std::vector<std::pair<int64_t, std::string>> existing =
      ListCheckpoints(dir_);
  while (existing.size() > static_cast<size_t>(keep_last_)) {
    if (existing.front().second == path) break;
    fs::remove(existing.front().second, ec);
    existing.erase(existing.begin());
  }
  return util::OkStatus();
}

util::Status CheckpointManager::RestoreLatest(
    const std::vector<Parameter*>& params, TrainingState* state) {
  const std::vector<std::pair<int64_t, std::string>> files =
      ListCheckpoints(dir_);
  if (files.empty()) {
    return util::NotFoundError("no checkpoints in " + dir_);
  }
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    TrainingState candidate;
    const util::StatusOr<int> restored =
        LoadCheckpointV2(it->second, params, &candidate);
    if (restored.ok()) {
      if (state != nullptr) *state = std::move(candidate);
      if (it != files.rbegin()) {
        LAYERGCN_LOG(kWarning)
            << "fell back to " << it->second << " ("
            << std::distance(files.rbegin(), it) << " newer corrupt)";
      }
      return util::OkStatus();
    }
    LAYERGCN_LOG(kWarning) << "skipping corrupt checkpoint " << it->second
                           << ": " << restored.status().ToString();
    OBS_COUNT("checkpoint.fallbacks", 1);
  }
  return util::NotFoundError("no valid checkpoint in " + dir_ + " (" +
                             std::to_string(files.size()) +
                             " corrupt files skipped)");
}

// ---------------------------------------------------------------------------
// Legacy die-on-error entry points.

void SaveCheckpoint(const std::string& path,
                    const std::vector<Parameter*>& params) {
  const util::Status s = SaveCheckpointV2(path, params, nullptr);
  LAYERGCN_CHECK(s.ok()) << s.message();
}

int LoadCheckpoint(const std::string& path,
                   const std::vector<Parameter*>& params) {
  const util::StatusOr<int> restored =
      LoadCheckpointV2(path, params, nullptr);
  LAYERGCN_CHECK(restored.ok()) << restored.status().message();
  return restored.value();
}

bool IsCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  // A complete header is magic + version + count; anything shorter is a
  // truncated header, not a checkpoint.
  char header[kHeaderBytes];
  in.read(header, sizeof(header));
  if (static_cast<size_t>(in.gcount()) != sizeof(header)) return false;
  if (!std::equal(header, header + 4, kMagic)) return false;
  uint32_t version = 0;
  std::memcpy(&version, header + 4, sizeof(version));
  return version == kVersionV1 || version == kVersionV2;
}

}  // namespace layergcn::train
