#include "train/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <set>

#include "util/logging.h"

namespace layergcn::train {
namespace {

constexpr char kMagic[4] = {'L', 'G', 'C', 'N'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

}  // namespace

void SaveCheckpoint(const std::string& path,
                    const std::vector<Parameter*>& params) {
  std::set<std::string> names;
  for (const Parameter* p : params) {
    LAYERGCN_CHECK(p != nullptr);
    LAYERGCN_CHECK(names.insert(p->name).second)
        << "duplicate parameter name: " << p->name;
  }
  std::ofstream out(path, std::ios::binary);
  LAYERGCN_CHECK(out.good()) << "cannot write " << path;
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(params.size()));
  for (const Parameter* p : params) {
    WritePod(out, static_cast<uint32_t>(p->name.size()));
    out.write(p->name.data(), static_cast<int64_t>(p->name.size()));
    WritePod(out, p->value.rows());
    WritePod(out, p->value.cols());
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<int64_t>(p->value.size()) *
                  static_cast<int64_t>(sizeof(float)));
  }
  LAYERGCN_CHECK(out.good()) << "write failure on " << path;
}

int LoadCheckpoint(const std::string& path,
                   const std::vector<Parameter*>& params) {
  std::ifstream in(path, std::ios::binary);
  LAYERGCN_CHECK(in.good()) << "cannot open " << path;
  char magic[4];
  in.read(magic, sizeof(magic));
  LAYERGCN_CHECK(in.good() && std::equal(magic, magic + 4, kMagic))
      << path << " is not a LayerGCN checkpoint";
  uint32_t version = 0, count = 0;
  LAYERGCN_CHECK(ReadPod(in, &version) && version == kVersion)
      << "unsupported checkpoint version";
  LAYERGCN_CHECK(ReadPod(in, &count));

  std::map<std::string, tensor::Matrix> loaded;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    LAYERGCN_CHECK(ReadPod(in, &name_len)) << "truncated checkpoint";
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    int64_t rows = 0, cols = 0;
    LAYERGCN_CHECK(ReadPod(in, &rows) && ReadPod(in, &cols))
        << "truncated checkpoint";
    tensor::Matrix m(rows, cols);
    in.read(reinterpret_cast<char*>(m.data()),
            static_cast<int64_t>(m.size()) *
                static_cast<int64_t>(sizeof(float)));
    LAYERGCN_CHECK(in.good()) << "truncated checkpoint payload";
    loaded.emplace(std::move(name), std::move(m));
  }

  int restored = 0;
  for (Parameter* p : params) {
    const auto it = loaded.find(p->name);
    LAYERGCN_CHECK(it != loaded.end())
        << "checkpoint missing parameter: " << p->name;
    LAYERGCN_CHECK(it->second.rows() == p->value.rows() &&
                   it->second.cols() == p->value.cols())
        << "shape mismatch for " << p->name;
    p->value = it->second;
    ++restored;
  }
  return restored;
}

bool IsCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  uint32_t version = 0;
  return in.good() && std::equal(magic, magic + 4, kMagic) &&
         ReadPod(in, &version) && version == kVersion;
}

}  // namespace layergcn::train
