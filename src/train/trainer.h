// The early-stopped training loop shared by all models.
//
// Protocol per the paper (§V-A4): train up to max_epochs epochs, evaluate
// Recall@20 on the validation split every eval_every epochs, stop when the
// best validation score has not improved for early_stop_patience epochs,
// and restore the parameters of the best epoch before the final test
// evaluation.
//
// Fault tolerance (DESIGN.md §11): with TrainOptions::checkpoint_dir set
// the loop writes a rotating v2 checkpoint every checkpoint_every epochs
// and can resume from the newest valid one bit-identically to an
// uninterrupted run. A divergence watchdog rolls back to the last good
// checkpoint when loss / grad norm / parameter norm turn non-finite, and
// SIGINT/SIGTERM request a graceful stop at the next batch boundary.

#ifndef LAYERGCN_TRAIN_TRAINER_H_
#define LAYERGCN_TRAIN_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "train/adam.h"
#include "train/recommender.h"
#include "util/status.h"

namespace layergcn::train {

/// Everything the experiment harnesses need from one training run.
struct TrainResult {
  /// Epoch (1-based) with the best validation score.
  int best_epoch = 0;
  /// Best validation Recall@K (K = validation_k).
  double best_valid_score = 0.0;
  /// Test metrics evaluated with the best epoch's parameters.
  eval::RankingMetrics test_metrics;
  /// Mean loss per epoch, in order.
  std::vector<double> epoch_losses;
  /// Per-batch losses of every epoch concatenated (Fig. 3(b)); only kept
  /// when TrainOptions::record_batch_losses is set.
  std::vector<double> batch_losses;
  /// Validation score at each evaluated epoch (epoch index, score).
  std::vector<std::pair<int, double>> valid_curve;
  /// Total training epochs actually run.
  int epochs_run = 0;
  /// Wall-clock seconds spent in training (excl. final test eval).
  double train_seconds = 0.0;
  /// Path of the JSONL telemetry stream written during this run; empty when
  /// TrainOptions::telemetry_path was unset or the file could not be opened.
  std::string telemetry_path;
  /// kOk for a run that trained to completion (early stop and graceful
  /// interruption included); otherwise the structured reason training
  /// could not proceed (resume failure, watchdog budget exhausted, ...).
  util::Status status;
  /// True when a graceful-stop request (SIGINT/SIGTERM) ended the loop.
  bool interrupted = false;
  /// Watchdog rollbacks performed during the run.
  int watchdog_rollbacks = 0;
  /// First epoch of this process's loop (> 1 when resumed).
  int start_epoch = 1;
};

/// Knobs of the loop itself (the model hyper-parameters live in
/// TrainConfig).
struct TrainOptions {
  /// Cutoff used for validation-based early stopping.
  int validation_k = 20;
  /// Metric cutoffs to report on the test split.
  std::vector<int> report_ks = {10, 20, 50};
  bool record_batch_losses = false;
  /// Also evaluate test metrics at these epoch checkpoints (paper Table IV
  /// reports epochs 20 and 50). Results appended to checkpoint_metrics.
  std::vector<int> checkpoint_epochs;
  /// Verbose epoch logging.
  bool verbose = false;
  /// When set, one obs::EpochTelemetry JSONL record is streamed here per
  /// epoch (losses, grad/embedding norms, sampler stats, wall-clock
  /// breakdown, validation metrics on evaluated epochs). Enables the
  /// runtime metrics switch for the run.
  std::string telemetry_path;

  // --- Fault tolerance (DESIGN.md §11) ---

  /// When set, a rotating v2 checkpoint (params + optimizer + RNG +
  /// early-stop state) is written here every checkpoint_every epochs.
  std::string checkpoint_dir;
  /// Epoch cadence of checkpoint writes (>= 1).
  int checkpoint_every = 1;
  /// Rotating retention: keep the newest K checkpoint files.
  int keep_checkpoints = 3;
  /// Resume from the newest valid checkpoint in checkpoint_dir before
  /// training. An empty directory starts fresh; a missing checkpoint_dir
  /// is a FailedPrecondition error.
  bool resume = false;

  /// Warm-start hook, invoked once right after model->Init() (parameters
  /// freshly initialized) and before resume/training: the callback may
  /// overwrite parameter values and optimizer state in place — e.g. carry
  /// rows from a previous run's checkpoint into a grown embedding table
  /// (src/pipeline/warm_start.h). A non-OK status aborts the run with that
  /// status in TrainResult::status.
  std::function<util::Status(Recommender*)> warm_start;

  /// Divergence watchdog: per-epoch NaN/Inf checks on loss, gradient norm
  /// and parameter norm, with rollback to the last good checkpoint.
  bool watchdog = true;
  /// Rollback budget before the watchdog gives up with ResourceExhausted.
  int watchdog_max_rollbacks = 2;
  /// Learning-rate multiplier applied (cumulatively) after each rollback;
  /// 1.0 disables the scale-down.
  double watchdog_lr_decay = 0.5;
};

/// Test metrics captured at a requested checkpoint epoch.
struct CheckpointMetrics {
  int epoch = 0;
  eval::RankingMetrics metrics;
};

/// Runs the full loop and returns the result. `checkpoints` (optional)
/// receives test metrics at TrainOptions::checkpoint_epochs.
TrainResult FitRecommender(Recommender* model, const data::Dataset& dataset,
                           const TrainConfig& config,
                           const TrainOptions& options = {},
                           std::vector<CheckpointMetrics>* checkpoints =
                               nullptr);

/// Evaluates an already-trained model on the chosen split.
eval::RankingMetrics EvaluateRecommender(Recommender* model,
                                         const data::Dataset& dataset,
                                         const std::vector<int>& ks,
                                         eval::EvalSplit split);

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_TRAINER_H_
