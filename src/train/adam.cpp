#include "train/adam.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace layergcn::train {

void Adam::Step(const std::vector<Parameter*>& params) {
  OBS_SPAN("adam.step");
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = config_.learning_rate;
  const double eps = config_.epsilon;

  // One fused pass per parameter: the update, the gradient zeroing, and the
  // squared-grad-norm partial all happen in the same blocked sweep (the
  // norm used to be a second full scan over every gradient when metrics
  // were on). Blocks are fixed-size and partials combine in block order
  // (util::parallel), so both the updated values and the published norm are
  // bit-identical at any thread count.
  double grad_sq = 0.0;
  for (Parameter* p : params) {
    LAYERGCN_CHECK(p != nullptr);
    const int64_t n = p->value.size();
    float* value = p->value.data();
    float* grad = p->grad.data();
    float* m = p->adam_m.data();
    float* v = p->adam_v.data();
    grad_sq += util::parallel::Reduce(n, [&](int64_t lo, int64_t hi) {
      double sq = 0.0;
      for (int64_t i = lo; i < hi; ++i) {
        const double g = grad[i];
        sq += g * g;
        const double mi = b1 * m[i] + (1.0 - b1) * g;
        const double vi = b2 * v[i] + (1.0 - b2) * g * g;
        m[i] = static_cast<float>(mi);
        v[i] = static_cast<float>(vi);
        const double m_hat = mi / bias1;
        const double v_hat = vi / bias2;
        value[i] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));
        grad[i] = 0.f;
      }
      return sq;
    });
  }
  if (obs::Enabled()) {
    OBS_GAUGE("adam.grad_norm", std::sqrt(grad_sq));
    OBS_GAUGE("adam.lr", lr);
    OBS_COUNT("adam.steps", 1);
  }
}

}  // namespace layergcn::train
