#include "train/adam.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace layergcn::train {

void Adam::Step(const std::vector<Parameter*>& params) {
  OBS_SPAN("adam.step");
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  const double lr = config_.learning_rate;
  const double eps = config_.epsilon;

  // Global gradient L2 norm across all parameters, published as a gauge
  // before the update consumes (and zeroes) the gradients. The extra pass
  // is skipped entirely when metrics are off.
  if (obs::Enabled()) {
    double sq = 0.0;
    for (const Parameter* p : params) {
      if (p == nullptr) continue;
      const float* grad = p->grad.data();
      const int64_t n = p->grad.size();
      for (int64_t i = 0; i < n; ++i) {
        sq += static_cast<double>(grad[i]) * grad[i];
      }
    }
    OBS_GAUGE("adam.grad_norm", std::sqrt(sq));
    OBS_GAUGE("adam.lr", lr);
    OBS_COUNT("adam.steps", 1);
  }

  for (Parameter* p : params) {
    LAYERGCN_CHECK(p != nullptr);
    const int64_t n = p->value.size();
    float* value = p->value.data();
    float* grad = p->grad.data();
    float* m = p->adam_m.data();
    float* v = p->adam_v.data();
    for (int64_t i = 0; i < n; ++i) {
      const double g = grad[i];
      const double mi = b1 * m[i] + (1.0 - b1) * g;
      const double vi = b2 * v[i] + (1.0 - b2) * g * g;
      m[i] = static_cast<float>(mi);
      v[i] = static_cast<float>(vi);
      const double m_hat = mi / bias1;
      const double v_hat = vi / bias2;
      value[i] -= static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + eps));
    }
    p->grad.Zero();
  }
}

}  // namespace layergcn::train
