// Mini-batch sampler for BPR training triples (paper Eq. 11).
//
// Each epoch shuffles the training interactions; each batch pairs every
// positive (u, i) with a uniformly sampled negative item j that u has not
// interacted with in training.

#ifndef LAYERGCN_TRAIN_BPR_SAMPLER_H_
#define LAYERGCN_TRAIN_BPR_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/discrete_distribution.h"
#include "util/rng.h"

namespace layergcn::train {

/// One mini-batch of (user, positive item, negative item) triples.
struct BprBatch {
  std::vector<int32_t> users;
  std::vector<int32_t> pos_items;
  std::vector<int32_t> neg_items;

  int64_t size() const { return static_cast<int64_t>(users.size()); }
};

/// How negative items are drawn.
enum class NegativeSampling {
  kUniform,     // uniform over the item universe (paper's protocol)
  kPopularity,  // ∝ degree^0.75 (word2vec-style popularity sampling):
                // harder negatives, less long-tail pessimism
};

/// Epoch-based triple sampler over a training graph.
class BprSampler {
 public:
  /// `graph` must outlive the sampler and have at least one edge and two
  /// items (otherwise no negative can exist for some user).
  explicit BprSampler(const graph::BipartiteGraph* graph,
                      NegativeSampling strategy = NegativeSampling::kUniform);

  /// Starts a new pass: shuffles the interaction order.
  void BeginEpoch(util::Rng* rng);

  /// Fills `batch` with up to `batch_size` triples; returns false when the
  /// epoch is exhausted (batch left empty).
  bool NextBatch(int64_t batch_size, util::Rng* rng, BprBatch* batch);

  /// Number of batches a full epoch yields for the given size.
  int64_t NumBatches(int64_t batch_size) const;

  /// Position in the shuffled edge order (checkpoint state). At an epoch
  /// boundary this equals num_edges; BeginEpoch resets it to 0.
  uint64_t cursor() const { return static_cast<uint64_t>(cursor_); }
  void set_cursor(uint64_t cursor) { cursor_ = static_cast<size_t>(cursor); }

 private:
  int32_t SampleNegative(int32_t user, util::Rng* rng) const;

  const graph::BipartiteGraph* graph_;
  NegativeSampling strategy_;
  util::DiscreteDistribution popularity_;  // kPopularity only
  std::vector<int64_t> order_;             // shuffled edge indices
  size_t cursor_ = 0;
};

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_BPR_SAMPLER_H_
