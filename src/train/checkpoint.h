// Binary checkpointing of model parameters and full training state.
//
// Format v2 (little-endian), per-section CRC-checksummed records:
//
//   magic "LGCN" | uint32 version=2 | uint32 section count
//   per section: uint32 tag | uint64 payload length | payload bytes |
//                uint32 CRC-32 of the payload
//
// Section tags (unknown tags are skipped on load, so the format is
// forward-extensible):
//   1 meta           epoch, best epoch/score, early-stop patience state,
//                    optimizer step count, seed, sampler cursor
//   2 rng            the trainer's util::Rng stream state (6 x uint64)
//   3 param values   named-matrix table: uint32 count, then per entry
//                    uint32 name length | name | int64 rows | int64 cols |
//                    rows*cols float32
//   4 adam m         first-moment table (same layout as 3)
//   5 adam v         second-moment table
//   6 best snapshot  parameter values of the best validation epoch
//   7 history        epoch losses + validation curve
//   8 serve history  per-user training histories (serving exports only)
//   9 serve meta     serving-export version + shape summary
//  10 serve int8     per-row-scale int8 user/item embedding copies
//  11 serve bf16     bf16 user/item embedding copies
//
// Writes are atomic: the file is serialized to a buffer, written to
// `path.tmp`, flushed/synced, and renamed over `path`, so a crash never
// leaves a half-written file under the final name. CheckpointManager adds
// rotating last-K retention and falls back to the newest *valid* file when
// the latest is torn or corrupt.
//
// Format v1 (magic | version=1 | param count | name/shape/values entries)
// remains loadable as a params-only checkpoint. I/O and corruption
// problems surface as util::Status (never aborts); the legacy void/int
// entry points below wrap the Status API and keep their historical
// die-on-error behavior for callers that want it.

#ifndef LAYERGCN_TRAIN_CHECKPOINT_H_
#define LAYERGCN_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/quant.h"
#include "train/parameter.h"
#include "util/rng.h"
#include "util/status.h"

namespace layergcn::train {

/// Everything beyond raw parameter values that a resumed run needs in
/// order to continue bit-identically to an uninterrupted one.
struct TrainingState {
  /// Last fully completed epoch (1-based); resume continues at epoch + 1.
  int64_t epoch = 0;

  // Early-stopping state of the trainer loop.
  int64_t best_epoch = 0;
  double best_valid_score = 0.0;
  int64_t epochs_since_best = 0;

  /// Adam bias-correction step counter (moments live on the parameters).
  int64_t optimizer_steps = 0;
  /// Seed the run was started with (resume sanity check).
  uint64_t seed = 0;
  /// BPR sampler position in its shuffled edge order (at an epoch boundary
  /// this equals the edge count; kept for completeness and diagnostics).
  uint64_t sampler_cursor = 0;

  /// Trainer RNG stream state; has_rng distinguishes a restored stream
  /// from a params-only (v1 or legacy-save) checkpoint.
  bool has_rng = false;
  util::Rng::State rng;

  // Result history so a resumed TrainResult matches the uninterrupted one.
  std::vector<double> epoch_losses;
  std::vector<std::pair<int64_t, double>> valid_curve;

  /// Parameter values at the best validation epoch (empty before the
  /// first evaluation improves on zero).
  std::vector<std::pair<std::string, tensor::Matrix>> best_snapshot;
};

/// Writes a v2 checkpoint atomically (buffer -> temp file -> rename).
/// `state` may be nullptr for a params-only checkpoint (no meta / rng /
/// moment sections beyond the Adam moments, which are always written).
util::Status SaveCheckpointV2(const std::string& path,
                              const std::vector<Parameter*>& params,
                              const TrainingState* state);

/// Loads parameter values (and, for v2 files, Adam moments) into matching
/// parameters by name; `state` (optional) receives the training state when
/// the file carries it. v1 files restore values only. Returns the number
/// of parameters restored, or a Status describing the corruption /
/// mismatch — never aborts.
util::StatusOr<int> LoadCheckpointV2(const std::string& path,
                                     const std::vector<Parameter*>& params,
                                     TrainingState* state);

/// Validates that `path` parses end-to-end (header, sections, CRCs)
/// without applying it to any parameters.
util::Status ValidateCheckpoint(const std::string& path);

/// Rotating checkpoint directory: writes ckpt-NNNNNN.lgcn files, keeps the
/// most recent `keep_last`, and restores from the newest file that passes
/// validation, skipping torn/corrupt ones (counted as
/// `checkpoint.fallbacks` in the metrics registry).
class CheckpointManager {
 public:
  /// `keep_last` >= 1. The directory is created on the first Write().
  explicit CheckpointManager(std::string dir, int keep_last = 3);

  const std::string& dir() const { return dir_; }

  /// Atomically writes the checkpoint for state.epoch and prunes old files
  /// beyond keep_last. Increments `checkpoint.writes`.
  util::Status Write(const std::vector<Parameter*>& params,
                     const TrainingState& state);

  /// Restores the newest valid checkpoint into `params`/`state`. Corrupt
  /// files are skipped (newest first) with a warning; kNotFound when the
  /// directory holds no valid checkpoint.
  util::Status RestoreLatest(const std::vector<Parameter*>& params,
                             TrainingState* state);

  /// (epoch, path) of every well-named checkpoint file, ascending epoch.
  static std::vector<std::pair<int64_t, std::string>> ListCheckpoints(
      const std::string& dir);

  /// The file name Write() uses for `epoch`.
  static std::string CheckpointPath(const std::string& dir, int64_t epoch);

 private:
  std::string dir_;
  int keep_last_;
};

/// Embedding-only serving export — the fixed final embeddings a serving
/// process needs (PAPER.md Eq. 7 makes inference a snapshot of user/item
/// matrices), in the v2 container (per-section CRCs, atomic temp+rename
/// write): the value table carries the "serve.user_emb" / "serve.item_emb"
/// matrices, section 8 the per-user training histories (serve-side
/// exclusion lists + popularity source), section 9 the export meta,
/// sections 10/11 the optional int8 (per-row-scale) and bf16 quantized
/// embedding copies for bandwidth-conscious scoring. The f32 matrices are
/// always written — they are the bit-exact reference, and old (pre-quant)
/// snapshots load exactly as before. Training state is deliberately
/// absent: a snapshot is immutable serving data, not a resume point.
struct ServingExport {
  /// Monotone snapshot version (by convention the epoch that produced it).
  int64_t version = 0;
  tensor::Matrix user_emb;  // one row per user id
  tensor::Matrix item_emb;  // one row per item id
  /// Sorted-ascending training items per user; size = user_emb.rows().
  std::vector<std::vector<int32_t>> user_history;

  // --- Save-side knobs ---------------------------------------------------
  /// Which quantized sections SaveServingExport derives from the f32
  /// matrices and writes alongside them (both on by default; the f32
  /// reference is unconditional).
  bool write_int8 = true;
  bool write_bf16 = true;

  // --- Load-side results -------------------------------------------------
  /// Decoded quantized sections, valid only when the matching has_ flag is
  /// set. SaveServingExport ignores these (it re-derives from f32).
  bool has_int8 = false;
  bool has_bf16 = false;
  tensor::Int8Rows user_int8, item_int8;
  tensor::Bf16Rows user_bf16, item_bf16;
  /// Set by LoadServingExport when a quantized section was present but
  /// corrupt, truncated, or shape-inconsistent: the quantized copy was
  /// dropped and scoring must fall back to the still-valid f32 reference
  /// (callers count this as serve.snapshot_fallbacks).
  bool quant_dropped = false;
};

/// Writes `ex` atomically. InvalidArgument when the shapes are inconsistent
/// (width mismatch, history size != user count, out-of-range item ids).
util::Status SaveServingExport(const std::string& path,
                               const ServingExport& ex);

/// Reads a serving export back. Corruption (bad magic, CRC mismatch,
/// truncation) and missing serve sections surface as DataLoss — never UB;
/// the fault points `serve.snapshot_bit_flip` / `serve.reload_torn_read`
/// damage the in-memory file image on the next read when armed.
util::StatusOr<ServingExport> LoadServingExport(const std::string& path);

/// Legacy entry point: writes a params-only v2 checkpoint. Aborts on I/O
/// failure or duplicate parameter names.
void SaveCheckpoint(const std::string& path,
                    const std::vector<Parameter*>& params);

/// Legacy entry point: loads values into matching parameters (by name).
/// Every parameter in `params` must be present in the file with an
/// identical shape; extra entries in the file are ignored. Returns the
/// number of parameters restored; aborts on any error.
int LoadCheckpoint(const std::string& path,
                   const std::vector<Parameter*>& params);

/// True if `path` looks like a checkpoint: long enough to hold a complete
/// header and carrying the magic plus a supported version (1 or 2). A
/// truncated header is not a checkpoint.
bool IsCheckpointFile(const std::string& path);

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_CHECKPOINT_H_
