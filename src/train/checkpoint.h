// Binary checkpointing of model parameters.
//
// Format (little-endian):
//   magic "LGCN" | uint32 version | uint32 param count |
//   per param: uint32 name length | name bytes |
//              int64 rows | int64 cols | rows*cols float32 values
//
// Only parameter *values* are stored (optimizer moments are training
// state, not model state). Loading matches parameters by name and aborts
// on shape mismatches, so checkpoints are robust to parameter-list
// reordering but not to architecture changes.

#ifndef LAYERGCN_TRAIN_CHECKPOINT_H_
#define LAYERGCN_TRAIN_CHECKPOINT_H_

#include <string>
#include <vector>

#include "train/parameter.h"

namespace layergcn::train {

/// Writes the parameters' values to `path`. Aborts on I/O failure or
/// duplicate parameter names.
void SaveCheckpoint(const std::string& path,
                    const std::vector<Parameter*>& params);

/// Loads values into matching parameters (by name). Every parameter in
/// `params` must be present in the file with an identical shape; extra
/// entries in the file are ignored. Returns the number of parameters
/// restored.
int LoadCheckpoint(const std::string& path,
                   const std::vector<Parameter*>& params);

/// True if `path` looks like a checkpoint (magic + version readable).
bool IsCheckpointFile(const std::string& path);

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_CHECKPOINT_H_
