// Adam optimizer (Kingma & Ba, 2015) — the optimizer used for every model
// in the paper (§V-A4).

#ifndef LAYERGCN_TRAIN_ADAM_H_
#define LAYERGCN_TRAIN_ADAM_H_

#include <cstdint>
#include <vector>

#include "train/parameter.h"

namespace layergcn::train {

/// Adam hyper-parameters.
struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

/// Stateless-per-parameter Adam: moments live on the Parameter, the
/// optimizer owns only the step counter, so parameter sets may differ
/// between calls (e.g. alternating sub-networks).
class Adam {
 public:
  explicit Adam(const AdamConfig& config = {}) : config_(config) {}

  /// Applies one update from each parameter's .grad, then zeroes the grads.
  void Step(const std::vector<Parameter*>& params);

  /// Resets the bias-correction step counter.
  void Reset() { t_ = 0; }

  int64_t step_count() const { return t_; }
  /// Restores the bias-correction counter (checkpoint resume). The moments
  /// live on the Parameters, so counter + moments fully restore Adam.
  void set_step_count(int64_t t) { t_ = t; }
  const AdamConfig& config() const { return config_; }
  void set_learning_rate(double lr) { config_.learning_rate = lr; }

 private:
  AdamConfig config_;
  int64_t t_ = 0;
};

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_ADAM_H_
