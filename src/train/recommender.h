// The Recommender interface and the shared training configuration.
//
// Every model in src/models and src/core implements Recommender; the
// Trainer (train/trainer.h) drives any of them through the same
// early-stopped loop the paper uses for all baselines (§V-A4: Adam, Xavier
// init, embedding size 64, early stopping 50, at most 1000 epochs).

#ifndef LAYERGCN_TRAIN_RECOMMENDER_H_
#define LAYERGCN_TRAIN_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "graph/edge_dropout.h"
#include "tensor/matrix.h"
#include "train/bpr_sampler.h"
#include "train/parameter.h"
#include "util/rng.h"

namespace layergcn::train {

/// Hyper-parameters shared across models. Model-specific fields are grouped
/// and ignored by models that do not use them.
struct TrainConfig {
  // --- Common (paper §V-A4) ---
  int embedding_dim = 64;
  int num_layers = 4;
  double learning_rate = 1e-3;
  /// λ of the L2 penalty in Eq. 12.
  double l2_reg = 1e-4;
  int64_t batch_size = 2048;
  /// Negative-item sampling strategy for BPR triples.
  NegativeSampling negative_sampling = NegativeSampling::kUniform;

  // --- Edge dropout (LayerGCN §III-B1) ---
  graph::EdgeDropKind edge_drop_kind = graph::EdgeDropKind::kDegreeDrop;
  double edge_drop_ratio = 0.1;

  // --- Trainer loop ---
  int max_epochs = 1000;
  int early_stop_patience = 50;
  /// Validation cadence in epochs.
  int eval_every = 1;
  uint64_t seed = 42;

  // --- NGCF ---
  double message_dropout = 0.1;

  // --- MultiVAE ---
  int vae_hidden_dim = 128;
  int vae_latent_dim = 64;
  double vae_beta = 0.2;  // KL annealing cap
  int64_t vae_user_batch = 256;

  // --- UltraGCN ---
  double ultra_w1 = 1e-6;
  double ultra_w2 = 1.0;
  double ultra_w3 = 1e-6;
  double ultra_w4 = 1.0;
  double ultra_item_loss_weight = 1e-3;
  int ultra_num_negatives = 10;
  int ultra_item_topk = 10;

  // --- BUIR ---
  double buir_momentum = 0.995;

  // --- IMP-GCN ---
  int imp_num_groups = 3;
};

/// Read-only view of the factorized scoring state of inner-product models:
/// `user` holds one row per user, `item` one row per item, and the score of
/// (u, i) is the dot product of their rows. Models expose it (after
/// PrepareEval()) so the evaluator can rank through the fused blocked
/// kernel without materializing score matrices; models whose scores are
/// not a plain inner product return an invalid view and are evaluated
/// through ScoreUsers().
struct EmbeddingView {
  const tensor::Matrix* user = nullptr;
  const tensor::Matrix* item = nullptr;
  bool valid() const { return user != nullptr && item != nullptr; }
};

/// Abstract recommender trained by the Trainer and scored by the Evaluator.
class Recommender {
 public:
  virtual ~Recommender() = default;

  /// Model name as it appears in the paper's tables (e.g. "LightGCN").
  virtual std::string name() const = 0;

  /// Builds parameters and graph caches. Called once before training.
  virtual void Init(const data::Dataset& dataset, const TrainConfig& config,
                    util::Rng* rng) = 0;

  /// Hook at the start of every epoch (resampling Â_p, target-network EMA
  /// schedules, ...). Default: no-op.
  virtual void BeginEpoch(int epoch, util::Rng* rng);

  /// Runs one training epoch; returns the mean batch loss. `batch_losses`
  /// (optional) receives each batch's loss — used for Fig. 3(b).
  virtual double TrainEpoch(util::Rng* rng,
                            std::vector<double>* batch_losses) = 0;

  /// Refreshes inference caches (e.g. propagate over the FULL graph rather
  /// than the pruned training graph, per §III-B1). Called before scoring.
  virtual void PrepareEval() {}

  /// Preference scores: |users| x num_items.
  virtual tensor::Matrix ScoreUsers(
      const std::vector<int32_t>& users) const = 0;

  /// Fast-path scoring state for the fused evaluation kernel. Valid only
  /// after PrepareEval(); the default (invalid) view routes evaluation
  /// through ScoreUsers().
  virtual EmbeddingView GetEmbeddingView() const { return {}; }

  /// All trainable parameters (for the optimizer / snapshotting).
  virtual std::vector<Parameter*> Params() = 0;

  // --- Checkpoint/resume hooks -------------------------------------------
  // Together with Params() (values + Adam moments) and the trainer's RNG,
  // these restore enough state that a resumed run continues bit-identically
  // to an uninterrupted one. Models without an optimizer/sampler keep the
  // no-op defaults.

  /// Optimizer bias-correction step counter.
  virtual int64_t OptimizerSteps() const { return 0; }
  virtual void SetOptimizerSteps(int64_t /*steps*/) {}

  /// Multiplies the configured learning rate by `factor` (divergence
  /// watchdog backoff after a rollback).
  virtual void ScaleLearningRate(double /*factor*/) {}

  /// Position of the mini-batch sampler in its epoch order.
  virtual uint64_t SamplerCursor() const { return 0; }
  virtual void SetSamplerCursor(uint64_t /*cursor*/) {}
};

}  // namespace layergcn::train

#endif  // LAYERGCN_TRAIN_RECOMMENDER_H_
