#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "train/checkpoint.h"
#include "train/stop_token.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace layergcn::train {
namespace {

// Snapshot / restore of parameter values for best-epoch restoration.
std::vector<tensor::Matrix> SnapshotParams(
    const std::vector<Parameter*>& params) {
  std::vector<tensor::Matrix> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value);
  return out;
}

void RestoreParams(const std::vector<Parameter*>& params,
                   const std::vector<tensor::Matrix>& snapshot) {
  LAYERGCN_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

eval::ScoreFn MakeScoreFn(Recommender* model) {
  return [model](const std::vector<int32_t>& users) {
    return model->ScoreUsers(users);
  };
}

// Inner-product models rank through the fused blocked kernel; everything
// else goes through the chunked ScoreFn pipeline. Both paths produce the
// same metrics for the same scores.
eval::RankingMetrics EvaluateModel(Recommender* model,
                                   const eval::Evaluator& evaluator,
                                   eval::EvalSplit split) {
  const EmbeddingView view = model->GetEmbeddingView();
  if (view.valid()) return evaluator.Evaluate(*view.user, *view.item, split);
  return evaluator.Evaluate(MakeScoreFn(model), split);
}

// L2 norm over every parameter value of the model.
double ParamsNorm(const std::vector<Parameter*>& params) {
  double sq = 0.0;
  for (const Parameter* p : params) {
    const float* v = p->value.data();
    const int64_t n = p->value.size();
    for (int64_t i = 0; i < n; ++i) sq += static_cast<double>(v[i]) * v[i];
  }
  return std::sqrt(sq);
}

// Seconds accumulated by span `name` between two metric snapshots.
double SpanDeltaSeconds(const obs::MetricsSnapshot& after,
                        const obs::MetricsSnapshot& before,
                        const std::string& name) {
  return static_cast<double>(
             after.CounterDelta(before, "span." + name + ".sum_us")) *
         1e-6;
}

double GaugeOrZero(const obs::MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.gauges.find(name);
  return it != snap.gauges.end() ? it->second : 0.0;
}

int64_t CounterOrZero(const obs::MetricsSnapshot& snap,
                      const std::string& name) {
  const auto it = snap.counters.find(name);
  return it != snap.counters.end() ? static_cast<int64_t>(it->second) : 0;
}

}  // namespace

void Recommender::BeginEpoch(int /*epoch*/, util::Rng* /*rng*/) {}

TrainResult FitRecommender(Recommender* model, const data::Dataset& dataset,
                           const TrainConfig& config,
                           const TrainOptions& options,
                           std::vector<CheckpointMetrics>* checkpoints) {
  LAYERGCN_CHECK(model != nullptr);
  ClearStopRequest();
  util::Rng rng(config.seed);
  model->Init(dataset, config, &rng);
  if (options.warm_start) {
    if (util::Status warmed = options.warm_start(model); !warmed.ok()) {
      TrainResult aborted;
      aborted.status = std::move(warmed);
      return aborted;
    }
  }

  eval::Evaluator valid_eval(&dataset, {options.validation_k});
  eval::Evaluator test_eval(&dataset, options.report_ks);

  TrainResult result;
  std::vector<tensor::Matrix> best_snapshot;
  int epochs_since_best = 0;
  util::Timer timer;

  // Telemetry stream (satellite of the observability subsystem): one JSONL
  // record per epoch. Opening the sink also flips the runtime metrics
  // switch so span/counter deltas below are populated.
  std::unique_ptr<obs::TelemetrySink> telemetry;
  if (!options.telemetry_path.empty()) {
    obs::SetEnabled(true);
    telemetry = std::make_unique<obs::TelemetrySink>(options.telemetry_path);
    if (!telemetry->ok()) {
      LAYERGCN_LOG(kWarning) << "cannot open telemetry sink "
                             << options.telemetry_path << "; disabled";
      telemetry.reset();
    } else {
      result.telemetry_path = options.telemetry_path;
    }
  }
  const bool want_batch_losses =
      options.record_batch_losses || telemetry != nullptr;

  // Rotating fault-tolerance checkpoints (distinct from the paper's
  // checkpoint_epochs metric probes).
  std::unique_ptr<CheckpointManager> manager;
  if (!options.checkpoint_dir.empty()) {
    manager = std::make_unique<CheckpointManager>(
        options.checkpoint_dir, std::max(1, options.keep_checkpoints));
  }
  const int checkpoint_every = std::max(1, options.checkpoint_every);

  // (epoch, offset into result.batch_losses before that epoch's batches):
  // lets a watchdog rollback truncate the concatenated batch-loss record.
  std::vector<std::pair<int, size_t>> batch_loss_marks;

  // Everything the next checkpoint must carry so a resumed run replays
  // bit-identically: at this point `epoch_done` epochs are complete and
  // `rng` is positioned exactly where BeginEpoch(epoch_done + 1) reads it.
  const auto capture_state = [&](int epoch_done) {
    TrainingState st;
    st.epoch = epoch_done;
    st.best_epoch = result.best_epoch;
    st.best_valid_score = result.best_valid_score;
    st.epochs_since_best = epochs_since_best;
    st.optimizer_steps = model->OptimizerSteps();
    st.seed = config.seed;
    st.sampler_cursor = model->SamplerCursor();
    st.has_rng = true;
    st.rng = rng.GetState();
    st.epoch_losses = result.epoch_losses;
    st.valid_curve.reserve(result.valid_curve.size());
    for (const auto& [e, score] : result.valid_curve) {
      st.valid_curve.emplace_back(e, score);
    }
    if (!best_snapshot.empty()) {
      const std::vector<Parameter*> params = model->Params();
      LAYERGCN_CHECK_EQ(params.size(), best_snapshot.size());
      for (size_t i = 0; i < params.size(); ++i) {
        st.best_snapshot.emplace_back(params[i]->name, best_snapshot[i]);
      }
    }
    return st;
  };

  // Inverse of capture_state: rewinds trainer-side state to a restored
  // checkpoint (parameter values/moments were already applied by the
  // checkpoint loader).
  const auto apply_state = [&](const TrainingState& st) {
    if (st.seed != config.seed) {
      LAYERGCN_LOG(kWarning)
          << "checkpoint seed " << st.seed << " != configured seed "
          << config.seed << "; resumed run will not match the original";
    }
    if (st.has_rng) rng.SetState(st.rng);
    model->SetOptimizerSteps(st.optimizer_steps);
    model->SetSamplerCursor(st.sampler_cursor);
    result.best_epoch = static_cast<int>(st.best_epoch);
    result.best_valid_score = st.best_valid_score;
    epochs_since_best = static_cast<int>(st.epochs_since_best);
    result.epoch_losses = st.epoch_losses;
    result.valid_curve.clear();
    for (const auto& [e, score] : st.valid_curve) {
      result.valid_curve.emplace_back(static_cast<int>(e), score);
    }
    result.epochs_run = static_cast<int>(st.epoch);
    best_snapshot.clear();
    if (!st.best_snapshot.empty()) {
      const std::vector<Parameter*> params = model->Params();
      best_snapshot.reserve(params.size());
      for (Parameter* p : params) {
        const auto it = std::find_if(
            st.best_snapshot.begin(), st.best_snapshot.end(),
            [&](const auto& entry) { return entry.first == p->name; });
        if (it == st.best_snapshot.end()) {
          LAYERGCN_LOG(kWarning)
              << "checkpoint best-epoch snapshot lacks parameter " << p->name
              << "; dropping the snapshot";
          best_snapshot.clear();
          break;
        }
        best_snapshot.push_back(it->second);
      }
    }
    while (!batch_loss_marks.empty() &&
           batch_loss_marks.back().first > st.epoch) {
      result.batch_losses.resize(batch_loss_marks.back().second);
      batch_loss_marks.pop_back();
    }
  };

  int start_epoch = 1;
  int64_t last_checkpoint_epoch = 0;
  if (options.resume) {
    if (manager == nullptr) {
      result.status = util::FailedPreconditionError(
          "resume requested without a checkpoint directory");
      return result;
    }
    TrainingState st;
    const util::Status restored = manager->RestoreLatest(model->Params(), &st);
    if (restored.ok()) {
      apply_state(st);
      start_epoch = static_cast<int>(st.epoch) + 1;
      last_checkpoint_epoch = st.epoch;
      LAYERGCN_LOG(kInfo) << model->name() << " resumed from "
                          << options.checkpoint_dir << " at epoch "
                          << st.epoch;
    } else if (restored.code() == util::StatusCode::kNotFound) {
      LAYERGCN_LOG(kInfo) << "no checkpoint in " << options.checkpoint_dir
                          << "; starting fresh";
    } else {
      result.status = restored;
      return result;
    }
  }
  result.start_epoch = start_epoch;

  int rollbacks = 0;
  double lr_scale = 1.0;
  // A resumed run may already be past its early-stop patience.
  bool early_stopped = epochs_since_best >= config.early_stop_patience &&
                       result.best_epoch != 0;

  for (int epoch = start_epoch;
       epoch <= config.max_epochs && !early_stopped; ++epoch) {
    if (StopRequested()) {
      // Clean epoch boundary: persist the completed prefix if the cadence
      // has not already done so, then leave.
      if (manager != nullptr && last_checkpoint_epoch < epoch - 1) {
        const util::Status s =
            manager->Write(model->Params(), capture_state(epoch - 1));
        if (!s.ok()) {
          LAYERGCN_LOG(kWarning) << "stop checkpoint failed: " << s.ToString();
        }
      }
      result.interrupted = true;
      break;
    }

    obs::MetricsSnapshot epoch_start;
    if (telemetry != nullptr) {
      epoch_start = obs::MetricsRegistry::Global().Snapshot();
    }
    util::Timer epoch_timer;
    model->BeginEpoch(epoch, &rng);
    std::vector<double> batch_losses;
    double loss = 0.0;
    {
      OBS_SPAN("train.epoch");
      loss = model->TrainEpoch(&rng,
                               want_batch_losses ? &batch_losses : nullptr);
    }
    if (util::fault::Fire("trainer.nan_loss")) {
      loss = std::numeric_limits<double>::quiet_NaN();
    }
    if (StopRequested()) {
      // The epoch ended early at a batch boundary; its partial updates are
      // not at a checkpointable boundary, so discard the epoch entirely —
      // resume restores the last checkpoint's consistent state.
      result.interrupted = true;
      break;
    }
    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    result.epoch_losses.push_back(loss);
    if (options.record_batch_losses) {
      batch_loss_marks.emplace_back(epoch, result.batch_losses.size());
      result.batch_losses.insert(result.batch_losses.end(),
                                 batch_losses.begin(), batch_losses.end());
    }
    result.epochs_run = epoch;
    const double param_norm = ParamsNorm(model->Params());

    obs::EpochTelemetry record;
    double grad_norm = 0.0;
    if (telemetry != nullptr) {
      const obs::MetricsSnapshot now =
          obs::MetricsRegistry::Global().Snapshot();
      record.epoch = epoch;
      record.loss = loss;
      record.batch_count = static_cast<int64_t>(batch_losses.size());
      if (!batch_losses.empty()) {
        record.batch_loss_min =
            *std::min_element(batch_losses.begin(), batch_losses.end());
        record.batch_loss_max =
            *std::max_element(batch_losses.begin(), batch_losses.end());
        double sum = 0.0;
        for (double b : batch_losses) sum += b;
        record.batch_loss_mean =
            sum / static_cast<double>(batch_losses.size());
      }
      grad_norm = GaugeOrZero(now, "adam.grad_norm");
      record.grad_norm = grad_norm;
      record.embedding_norm = param_norm;
      record.adam_lr = GaugeOrZero(now, "adam.lr");
      record.adam_steps = CounterOrZero(now, "adam.steps");
      record.neg_sampled = static_cast<int64_t>(
          now.CounterDelta(epoch_start, "bpr.neg_sampled"));
      record.neg_rejected = static_cast<int64_t>(
          now.CounterDelta(epoch_start, "bpr.neg_rejected"));
      record.checkpoint_writes = CounterOrZero(now, "checkpoint.writes");
      record.checkpoint_fallbacks = CounterOrZero(now, "checkpoint.fallbacks");
      record.watchdog_rollbacks = CounterOrZero(now, "watchdog.rollbacks");
      record.epoch_seconds = epoch_seconds;
      record.graph_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.resample_adjacency");
      record.sampler_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.sampler");
      record.forward_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.forward");
      record.backward_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.backward");
      record.adam_seconds = SpanDeltaSeconds(now, epoch_start, "adam.step");
    }

    // Divergence watchdog: a non-finite loss, gradient norm, or parameter
    // norm means the epoch poisoned the model; roll back to the last good
    // checkpoint with a smaller step size instead of training on NaNs.
    const bool diverged = options.watchdog &&
                          (!std::isfinite(loss) || !std::isfinite(param_norm) ||
                           !std::isfinite(grad_norm));
    if (diverged) {
      if (telemetry != nullptr) telemetry->WriteEpoch(record);
      LAYERGCN_LOG(kWarning)
          << model->name() << " diverged at epoch " << epoch << " (loss "
          << loss << ", param norm " << param_norm << ", grad norm "
          << grad_norm << ")";
      if (manager == nullptr || last_checkpoint_epoch == 0) {
        result.status = util::FailedPreconditionError(
            "training diverged with no checkpoint to roll back to");
        break;
      }
      if (rollbacks >= options.watchdog_max_rollbacks) {
        result.status = util::ResourceExhaustedError(util::StrFormat(
            "training diverged after %d watchdog rollbacks", rollbacks));
        break;
      }
      TrainingState st;
      const util::Status restored =
          manager->RestoreLatest(model->Params(), &st);
      if (!restored.ok()) {
        result.status = restored;
        break;
      }
      ++rollbacks;
      result.watchdog_rollbacks = rollbacks;
      OBS_COUNT("watchdog.rollbacks", 1);
      lr_scale *= options.watchdog_lr_decay;
      model->ScaleLearningRate(lr_scale);
      apply_state(st);
      LAYERGCN_LOG(kWarning)
          << "rolled back to epoch " << st.epoch << " (rollback " << rollbacks
          << "/" << options.watchdog_max_rollbacks << ", lr scale " << lr_scale
          << ")";
      epoch = static_cast<int>(st.epoch);  // loop re-runs st.epoch + 1
      continue;
    }

    const bool checkpoint_due =
        checkpoints != nullptr &&
        std::find(options.checkpoint_epochs.begin(),
                  options.checkpoint_epochs.end(),
                  epoch) != options.checkpoint_epochs.end();
    if (checkpoint_due) {
      model->PrepareEval();
      CheckpointMetrics cm;
      cm.epoch = epoch;
      cm.metrics = EvaluateModel(model, test_eval, eval::EvalSplit::kTest);
      checkpoints->push_back(std::move(cm));
    }

    if (epoch % config.eval_every == 0) {
      util::Timer eval_timer;
      model->PrepareEval();
      const eval::RankingMetrics vm =
          EvaluateModel(model, valid_eval, eval::EvalSplit::kValidation);
      const double score = vm.recall.at(options.validation_k);
      result.valid_curve.emplace_back(epoch, score);
      if (telemetry != nullptr) {
        record.has_eval = true;
        record.eval_k = options.validation_k;
        record.eval_recall = score;
        record.eval_ndcg = vm.ndcg.at(options.validation_k);
        record.eval_seconds = eval_timer.ElapsedSeconds();
      }
      if (options.verbose) {
        LAYERGCN_LOG(kInfo) << model->name() << " epoch " << epoch << " loss "
                            << loss << " valid R@" << options.validation_k
                            << " = " << score;
      }
      if (score > result.best_valid_score || result.best_epoch == 0) {
        result.best_valid_score = score;
        result.best_epoch = epoch;
        best_snapshot = SnapshotParams(model->Params());
        epochs_since_best = 0;
      } else {
        epochs_since_best += config.eval_every;
        if (epochs_since_best >= config.early_stop_patience) {
          early_stopped = true;
        }
      }
    }
    if (telemetry != nullptr) telemetry->WriteEpoch(record);

    // Cadence checkpoint (plus the loop's natural exit points, so resume
    // never has to repeat a completed run).
    if (manager != nullptr &&
        (epoch % checkpoint_every == 0 || early_stopped ||
         epoch == config.max_epochs)) {
      const util::Status s =
          manager->Write(model->Params(), capture_state(epoch));
      if (!s.ok()) {
        LAYERGCN_LOG(kWarning) << "checkpoint write failed: " << s.ToString();
      } else {
        last_checkpoint_epoch = epoch;
      }
    }
  }
  result.train_seconds = timer.ElapsedSeconds();

  if (!result.status.ok() && best_snapshot.empty()) {
    // Nothing trustworthy to evaluate (e.g. divergence before the first
    // improvement); hand the structured error back instead of scoring
    // poisoned parameters.
    return result;
  }
  if (!best_snapshot.empty()) {
    RestoreParams(model->Params(), best_snapshot);
  }
  model->PrepareEval();
  result.test_metrics = EvaluateModel(model, test_eval, eval::EvalSplit::kTest);
  return result;
}

eval::RankingMetrics EvaluateRecommender(Recommender* model,
                                         const data::Dataset& dataset,
                                         const std::vector<int>& ks,
                                         eval::EvalSplit split) {
  model->PrepareEval();
  eval::Evaluator evaluator(&dataset, ks);
  return EvaluateModel(model, evaluator, split);
}

}  // namespace layergcn::train
