#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace layergcn::train {
namespace {

// Snapshot / restore of parameter values for best-epoch restoration.
std::vector<tensor::Matrix> SnapshotParams(
    const std::vector<Parameter*>& params) {
  std::vector<tensor::Matrix> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value);
  return out;
}

void RestoreParams(const std::vector<Parameter*>& params,
                   const std::vector<tensor::Matrix>& snapshot) {
  LAYERGCN_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

eval::ScoreFn MakeScoreFn(Recommender* model) {
  return [model](const std::vector<int32_t>& users) {
    return model->ScoreUsers(users);
  };
}

// Inner-product models rank through the fused blocked kernel; everything
// else goes through the chunked ScoreFn pipeline. Both paths produce the
// same metrics for the same scores.
eval::RankingMetrics EvaluateModel(Recommender* model,
                                   const eval::Evaluator& evaluator,
                                   eval::EvalSplit split) {
  const EmbeddingView view = model->GetEmbeddingView();
  if (view.valid()) return evaluator.Evaluate(*view.user, *view.item, split);
  return evaluator.Evaluate(MakeScoreFn(model), split);
}

// L2 norm over every parameter value of the model.
double ParamsNorm(const std::vector<Parameter*>& params) {
  double sq = 0.0;
  for (const Parameter* p : params) {
    const float* v = p->value.data();
    const int64_t n = p->value.size();
    for (int64_t i = 0; i < n; ++i) sq += static_cast<double>(v[i]) * v[i];
  }
  return std::sqrt(sq);
}

// Seconds accumulated by span `name` between two metric snapshots.
double SpanDeltaSeconds(const obs::MetricsSnapshot& after,
                        const obs::MetricsSnapshot& before,
                        const std::string& name) {
  return static_cast<double>(
             after.CounterDelta(before, "span." + name + ".sum_us")) *
         1e-6;
}

double GaugeOrZero(const obs::MetricsSnapshot& snap, const std::string& name) {
  const auto it = snap.gauges.find(name);
  return it != snap.gauges.end() ? it->second : 0.0;
}

}  // namespace

void Recommender::BeginEpoch(int /*epoch*/, util::Rng* /*rng*/) {}

TrainResult FitRecommender(Recommender* model, const data::Dataset& dataset,
                           const TrainConfig& config,
                           const TrainOptions& options,
                           std::vector<CheckpointMetrics>* checkpoints) {
  LAYERGCN_CHECK(model != nullptr);
  util::Rng rng(config.seed);
  model->Init(dataset, config, &rng);

  eval::Evaluator valid_eval(&dataset, {options.validation_k});
  eval::Evaluator test_eval(&dataset, options.report_ks);

  TrainResult result;
  std::vector<tensor::Matrix> best_snapshot;
  int epochs_since_best = 0;
  util::Timer timer;

  // Telemetry stream (satellite of the observability subsystem): one JSONL
  // record per epoch. Opening the sink also flips the runtime metrics
  // switch so span/counter deltas below are populated.
  std::unique_ptr<obs::TelemetrySink> telemetry;
  if (!options.telemetry_path.empty()) {
    obs::SetEnabled(true);
    telemetry = std::make_unique<obs::TelemetrySink>(options.telemetry_path);
    if (!telemetry->ok()) {
      LAYERGCN_LOG(kWarning) << "cannot open telemetry sink "
                             << options.telemetry_path << "; disabled";
      telemetry.reset();
    } else {
      result.telemetry_path = options.telemetry_path;
    }
  }
  const bool want_batch_losses =
      options.record_batch_losses || telemetry != nullptr;

  for (int epoch = 1; epoch <= config.max_epochs; ++epoch) {
    obs::MetricsSnapshot epoch_start;
    if (telemetry != nullptr) {
      epoch_start = obs::MetricsRegistry::Global().Snapshot();
    }
    util::Timer epoch_timer;
    model->BeginEpoch(epoch, &rng);
    std::vector<double> batch_losses;
    double loss = 0.0;
    {
      OBS_SPAN("train.epoch");
      loss = model->TrainEpoch(&rng,
                               want_batch_losses ? &batch_losses : nullptr);
    }
    const double epoch_seconds = epoch_timer.ElapsedSeconds();
    result.epoch_losses.push_back(loss);
    if (options.record_batch_losses) {
      result.batch_losses.insert(result.batch_losses.end(),
                                 batch_losses.begin(), batch_losses.end());
    }
    result.epochs_run = epoch;

    obs::EpochTelemetry record;
    if (telemetry != nullptr) {
      const obs::MetricsSnapshot now =
          obs::MetricsRegistry::Global().Snapshot();
      record.epoch = epoch;
      record.loss = loss;
      record.batch_count = static_cast<int64_t>(batch_losses.size());
      if (!batch_losses.empty()) {
        record.batch_loss_min =
            *std::min_element(batch_losses.begin(), batch_losses.end());
        record.batch_loss_max =
            *std::max_element(batch_losses.begin(), batch_losses.end());
        double sum = 0.0;
        for (double b : batch_losses) sum += b;
        record.batch_loss_mean =
            sum / static_cast<double>(batch_losses.size());
      }
      record.grad_norm = GaugeOrZero(now, "adam.grad_norm");
      record.embedding_norm = ParamsNorm(model->Params());
      record.adam_lr = GaugeOrZero(now, "adam.lr");
      const auto steps = now.counters.find("adam.steps");
      record.adam_steps =
          steps != now.counters.end()
              ? static_cast<int64_t>(steps->second) : 0;
      record.neg_sampled = static_cast<int64_t>(
          now.CounterDelta(epoch_start, "bpr.neg_sampled"));
      record.neg_rejected = static_cast<int64_t>(
          now.CounterDelta(epoch_start, "bpr.neg_rejected"));
      record.epoch_seconds = epoch_seconds;
      record.graph_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.resample_adjacency");
      record.sampler_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.sampler");
      record.forward_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.forward");
      record.backward_seconds =
          SpanDeltaSeconds(now, epoch_start, "train.backward");
      record.adam_seconds = SpanDeltaSeconds(now, epoch_start, "adam.step");
    }

    const bool checkpoint_due =
        checkpoints != nullptr &&
        std::find(options.checkpoint_epochs.begin(),
                  options.checkpoint_epochs.end(),
                  epoch) != options.checkpoint_epochs.end();
    if (checkpoint_due) {
      model->PrepareEval();
      CheckpointMetrics cm;
      cm.epoch = epoch;
      cm.metrics = EvaluateModel(model, test_eval, eval::EvalSplit::kTest);
      checkpoints->push_back(std::move(cm));
    }

    if (epoch % config.eval_every != 0) {
      if (telemetry != nullptr) telemetry->WriteEpoch(record);
      continue;
    }
    util::Timer eval_timer;
    model->PrepareEval();
    const eval::RankingMetrics vm =
        EvaluateModel(model, valid_eval, eval::EvalSplit::kValidation);
    const double score = vm.recall.at(options.validation_k);
    result.valid_curve.emplace_back(epoch, score);
    if (telemetry != nullptr) {
      record.has_eval = true;
      record.eval_k = options.validation_k;
      record.eval_recall = score;
      record.eval_ndcg = vm.ndcg.at(options.validation_k);
      record.eval_seconds = eval_timer.ElapsedSeconds();
      telemetry->WriteEpoch(record);
    }
    if (options.verbose) {
      LAYERGCN_LOG(kInfo) << model->name() << " epoch " << epoch << " loss "
                          << loss << " valid R@" << options.validation_k
                          << " = " << score;
    }
    if (score > result.best_valid_score || result.best_epoch == 0) {
      result.best_valid_score = score;
      result.best_epoch = epoch;
      best_snapshot = SnapshotParams(model->Params());
      epochs_since_best = 0;
    } else {
      epochs_since_best += config.eval_every;
      if (epochs_since_best >= config.early_stop_patience) break;
    }
  }
  result.train_seconds = timer.ElapsedSeconds();

  if (!best_snapshot.empty()) {
    RestoreParams(model->Params(), best_snapshot);
  }
  model->PrepareEval();
  result.test_metrics = EvaluateModel(model, test_eval, eval::EvalSplit::kTest);
  return result;
}

eval::RankingMetrics EvaluateRecommender(Recommender* model,
                                         const data::Dataset& dataset,
                                         const std::vector<int>& ks,
                                         eval::EvalSplit split) {
  model->PrepareEval();
  eval::Evaluator evaluator(&dataset, ks);
  return EvaluateModel(model, evaluator, split);
}

}  // namespace layergcn::train
