#include "train/trainer.h"

#include <algorithm>

#include "util/logging.h"
#include "util/timer.h"

namespace layergcn::train {
namespace {

// Snapshot / restore of parameter values for best-epoch restoration.
std::vector<tensor::Matrix> SnapshotParams(
    const std::vector<Parameter*>& params) {
  std::vector<tensor::Matrix> out;
  out.reserve(params.size());
  for (const Parameter* p : params) out.push_back(p->value);
  return out;
}

void RestoreParams(const std::vector<Parameter*>& params,
                   const std::vector<tensor::Matrix>& snapshot) {
  LAYERGCN_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

eval::ScoreFn MakeScoreFn(Recommender* model) {
  return [model](const std::vector<int32_t>& users) {
    return model->ScoreUsers(users);
  };
}

// Inner-product models rank through the fused blocked kernel; everything
// else goes through the chunked ScoreFn pipeline. Both paths produce the
// same metrics for the same scores.
eval::RankingMetrics EvaluateModel(Recommender* model,
                                   const eval::Evaluator& evaluator,
                                   eval::EvalSplit split) {
  const EmbeddingView view = model->GetEmbeddingView();
  if (view.valid()) return evaluator.Evaluate(*view.user, *view.item, split);
  return evaluator.Evaluate(MakeScoreFn(model), split);
}

}  // namespace

void Recommender::BeginEpoch(int /*epoch*/, util::Rng* /*rng*/) {}

TrainResult FitRecommender(Recommender* model, const data::Dataset& dataset,
                           const TrainConfig& config,
                           const TrainOptions& options,
                           std::vector<CheckpointMetrics>* checkpoints) {
  LAYERGCN_CHECK(model != nullptr);
  util::Rng rng(config.seed);
  model->Init(dataset, config, &rng);

  eval::Evaluator valid_eval(&dataset, {options.validation_k});
  eval::Evaluator test_eval(&dataset, options.report_ks);

  TrainResult result;
  std::vector<tensor::Matrix> best_snapshot;
  int epochs_since_best = 0;
  util::Timer timer;

  for (int epoch = 1; epoch <= config.max_epochs; ++epoch) {
    model->BeginEpoch(epoch, &rng);
    std::vector<double> batch_losses;
    const double loss = model->TrainEpoch(
        &rng, options.record_batch_losses ? &batch_losses : nullptr);
    result.epoch_losses.push_back(loss);
    if (options.record_batch_losses) {
      result.batch_losses.insert(result.batch_losses.end(),
                                 batch_losses.begin(), batch_losses.end());
    }
    result.epochs_run = epoch;

    const bool checkpoint_due =
        checkpoints != nullptr &&
        std::find(options.checkpoint_epochs.begin(),
                  options.checkpoint_epochs.end(),
                  epoch) != options.checkpoint_epochs.end();
    if (checkpoint_due) {
      model->PrepareEval();
      CheckpointMetrics cm;
      cm.epoch = epoch;
      cm.metrics = EvaluateModel(model, test_eval, eval::EvalSplit::kTest);
      checkpoints->push_back(std::move(cm));
    }

    if (epoch % config.eval_every != 0) continue;
    model->PrepareEval();
    const eval::RankingMetrics vm =
        EvaluateModel(model, valid_eval, eval::EvalSplit::kValidation);
    const double score = vm.recall.at(options.validation_k);
    result.valid_curve.emplace_back(epoch, score);
    if (options.verbose) {
      LAYERGCN_LOG(kInfo) << model->name() << " epoch " << epoch << " loss "
                          << loss << " valid R@" << options.validation_k
                          << " = " << score;
    }
    if (score > result.best_valid_score || result.best_epoch == 0) {
      result.best_valid_score = score;
      result.best_epoch = epoch;
      best_snapshot = SnapshotParams(model->Params());
      epochs_since_best = 0;
    } else {
      epochs_since_best += config.eval_every;
      if (epochs_since_best >= config.early_stop_patience) break;
    }
  }
  result.train_seconds = timer.ElapsedSeconds();

  if (!best_snapshot.empty()) {
    RestoreParams(model->Params(), best_snapshot);
  }
  model->PrepareEval();
  result.test_metrics = EvaluateModel(model, test_eval, eval::EvalSplit::kTest);
  return result;
}

eval::RankingMetrics EvaluateRecommender(Recommender* model,
                                         const data::Dataset& dataset,
                                         const std::vector<int>& ks,
                                         eval::EvalSplit split) {
  model->PrepareEval();
  eval::Evaluator evaluator(&dataset, ks);
  return EvaluateModel(model, evaluator, split);
}

}  // namespace layergcn::train
