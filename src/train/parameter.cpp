// Parameter is header-only; this translation unit anchors the library.
#include "train/parameter.h"
