#include "graph/edge_dropout.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace layergcn::graph {

EdgeDropKind EdgeDropKindFromString(const std::string& s) {
  if (s == "none") return EdgeDropKind::kNone;
  if (s == "dropedge") return EdgeDropKind::kDropEdge;
  if (s == "degreedrop") return EdgeDropKind::kDegreeDrop;
  if (s == "mixed") return EdgeDropKind::kMixed;
  LAYERGCN_CHECK(false) << "unknown edge dropout kind: " << s;
  return EdgeDropKind::kNone;
}

std::string ToString(EdgeDropKind kind) {
  switch (kind) {
    case EdgeDropKind::kNone:
      return "none";
    case EdgeDropKind::kDropEdge:
      return "dropedge";
    case EdgeDropKind::kDegreeDrop:
      return "degreedrop";
    case EdgeDropKind::kMixed:
      return "mixed";
  }
  return "?";
}

EdgeDropout::EdgeDropout(const BipartiteGraph* graph, EdgeDropKind kind,
                         double ratio)
    : graph_(graph), kind_(kind), ratio_(ratio) {
  LAYERGCN_CHECK(graph != nullptr);
  LAYERGCN_CHECK(ratio >= 0.0 && ratio < 1.0)
      << "pruning ratio must be in [0, 1), got " << ratio;
  if (kind_ == EdgeDropKind::kNone) ratio_ = 0.0;
  const int64_t m = graph_->num_edges();
  num_kept_ = m - static_cast<int64_t>(std::llround(ratio_ * static_cast<double>(m)));
  LAYERGCN_CHECK_GE(num_kept_, 0);
  if (kind_ == EdgeDropKind::kDegreeDrop || kind_ == EdgeDropKind::kMixed) {
    degree_weights_ = graph_->DegreeSensitiveEdgeWeights();
  }
}

std::vector<int64_t> EdgeDropout::SampleKeptEdges(util::Rng* rng,
                                                  int epoch) const {
  const int64_t m = graph_->num_edges();
  if (kind_ == EdgeDropKind::kNone || num_kept_ == m) {
    std::vector<int64_t> all(static_cast<size_t>(m));
    for (int64_t k = 0; k < m; ++k) all[static_cast<size_t>(k)] = k;
    return all;
  }
  EdgeDropKind effective = kind_;
  if (kind_ == EdgeDropKind::kMixed) {
    effective =
        (epoch % 2 == 0) ? EdgeDropKind::kDegreeDrop : EdgeDropKind::kDropEdge;
  }
  if (effective == EdgeDropKind::kDegreeDrop) {
    return util::WeightedSampleWithoutReplacement(degree_weights_, num_kept_,
                                                  rng);
  }
  return util::UniformSampleWithoutReplacement(m, num_kept_, rng);
}

sparse::CsrMatrix EdgeDropout::SampleAdjacency(util::Rng* rng,
                                               int epoch) const {
  if (kind_ == EdgeDropKind::kNone || num_kept_ == graph_->num_edges()) {
    return graph_->NormalizedAdjacency();
  }
  return graph_->NormalizedAdjacencySubset(SampleKeptEdges(rng, epoch));
}

}  // namespace layergcn::graph
