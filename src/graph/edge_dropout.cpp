#include "graph/edge_dropout.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace layergcn::graph {

EdgeDropKind EdgeDropKindFromString(const std::string& s) {
  if (s == "none") return EdgeDropKind::kNone;
  if (s == "dropedge") return EdgeDropKind::kDropEdge;
  if (s == "degreedrop") return EdgeDropKind::kDegreeDrop;
  if (s == "mixed") return EdgeDropKind::kMixed;
  LAYERGCN_CHECK(false) << "unknown edge dropout kind: " << s;
  return EdgeDropKind::kNone;
}

std::string ToString(EdgeDropKind kind) {
  switch (kind) {
    case EdgeDropKind::kNone:
      return "none";
    case EdgeDropKind::kDropEdge:
      return "dropedge";
    case EdgeDropKind::kDegreeDrop:
      return "degreedrop";
    case EdgeDropKind::kMixed:
      return "mixed";
  }
  return "?";
}

EdgeDropout::EdgeDropout(const BipartiteGraph* graph, EdgeDropKind kind,
                         double ratio)
    : graph_(graph), kind_(kind), ratio_(ratio) {
  LAYERGCN_CHECK(graph != nullptr);
  LAYERGCN_CHECK(ratio >= 0.0 && ratio < 1.0)
      << "pruning ratio must be in [0, 1), got " << ratio;
  if (kind_ == EdgeDropKind::kNone) ratio_ = 0.0;
  const int64_t m = graph_->num_edges();
  num_kept_ = m - static_cast<int64_t>(std::llround(ratio_ * static_cast<double>(m)));
  LAYERGCN_CHECK_GE(num_kept_, 0);
  if (kind_ == EdgeDropKind::kDegreeDrop || kind_ == EdgeDropKind::kMixed) {
    degree_weights_ = graph_->DegreeSensitiveEdgeWeights();
  }
}

const std::vector<int64_t>& EdgeDropout::IdentityEdges() {
  if (identity_edges_.empty() && graph_->num_edges() > 0) {
    const int64_t m = graph_->num_edges();
    identity_edges_.resize(static_cast<size_t>(m));
    for (int64_t k = 0; k < m; ++k) {
      identity_edges_[static_cast<size_t>(k)] = k;
    }
  }
  return identity_edges_;
}

void EdgeDropout::SampleKeptEdgesInto(util::Rng* rng, int epoch,
                                      std::vector<int64_t>* kept) {
  const int64_t m = graph_->num_edges();
  if (kind_ == EdgeDropKind::kNone || num_kept_ == m) {
    // No-drop path: assign from the cached identity list instead of
    // regenerating it, so the per-epoch cost is a memcpy into existing
    // capacity rather than a fresh build.
    const std::vector<int64_t>& all = IdentityEdges();
    kept->assign(all.begin(), all.end());
    return;
  }
  EdgeDropKind effective = kind_;
  if (kind_ == EdgeDropKind::kMixed) {
    effective =
        (epoch % 2 == 0) ? EdgeDropKind::kDegreeDrop : EdgeDropKind::kDropEdge;
  }
  if (effective == EdgeDropKind::kDegreeDrop) {
    util::WeightedSampleWithoutReplacementInto(degree_weights_, num_kept_, rng,
                                               kept);
    return;
  }
  util::UniformSampleWithoutReplacementInto(m, num_kept_, rng, kept);
}

std::vector<int64_t> EdgeDropout::SampleKeptEdges(util::Rng* rng, int epoch) {
  std::vector<int64_t> kept;
  SampleKeptEdgesInto(rng, epoch, &kept);
  return kept;
}

void EdgeDropout::SampleAdjacencyInto(util::Rng* rng, int epoch,
                                      sparse::CsrMatrix* out) {
  if (kind_ == EdgeDropKind::kNone || num_kept_ == graph_->num_edges()) {
    // The full adjacency never changes across epochs: skip the rebuild when
    // asked to refill the destination of the previous call. The shape check
    // guards against a new matrix recycling the cached address.
    if (out != full_adjacency_dst_ || out->rows() != graph_->num_nodes() ||
        out->nnz() != graph_->num_edges() * 2) {
      graph_->NormalizedAdjacencySubsetInto(IdentityEdges(), &workspace_, out);
      full_adjacency_dst_ = out;
    }
    return;
  }
  SampleKeptEdgesInto(rng, epoch, &kept_scratch_);
  graph_->NormalizedAdjacencySubsetInto(kept_scratch_, &workspace_, out);
}

sparse::CsrMatrix EdgeDropout::SampleAdjacency(util::Rng* rng, int epoch) {
  sparse::CsrMatrix out;
  SampleAdjacencyInto(rng, epoch, &out);
  return out;
}

}  // namespace layergcn::graph
