// The user-item bipartite interaction graph and its (normalized) adjacency.
//
// Node indexing convention used throughout the library: the unified node id
// space has users first, items after — user u is node u, item i is node
// num_users + i, matching the block adjacency of paper Eq. 4:
//
//   A = [[0, R], [Rᵀ, 0]]  ∈ R^{N x N},  N = N_U + N_I.

#ifndef LAYERGCN_GRAPH_BIPARTITE_GRAPH_H_
#define LAYERGCN_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sparse/csr_matrix.h"

namespace layergcn::graph {

/// Immutable user-item interaction graph.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Builds from unique (user, item) interaction pairs. Duplicate pairs are
  /// tolerated (deduplicated). Ids must satisfy 0 <= user < num_users and
  /// 0 <= item < num_items.
  BipartiteGraph(int32_t num_users, int32_t num_items,
                 const std::vector<std::pair<int32_t, int32_t>>& interactions);

  int32_t num_users() const { return num_users_; }
  int32_t num_items() const { return num_items_; }
  /// Total node count N = N_U + N_I.
  int64_t num_nodes() const {
    return static_cast<int64_t>(num_users_) + num_items_;
  }
  /// Number of user-item edges M (each counted once, not twice).
  int64_t num_edges() const { return static_cast<int64_t>(edge_user_.size()); }

  const std::vector<int32_t>& edge_users() const { return edge_user_; }
  const std::vector<int32_t>& edge_items() const { return edge_item_; }

  /// Degree of user u (number of interacted items).
  int32_t UserDegree(int32_t u) const { return user_degree_[u]; }
  /// Degree of item i (number of interacting users).
  int32_t ItemDegree(int32_t i) const { return item_degree_[i]; }
  const std::vector<int32_t>& user_degrees() const { return user_degree_; }
  const std::vector<int32_t>& item_degrees() const { return item_degree_; }

  /// Unified node id of item i.
  int64_t ItemNode(int32_t i) const {
    return static_cast<int64_t>(num_users_) + i;
  }

  /// Symmetric COO adjacency A of Eq. 4 over the unified node space (each
  /// interaction contributes two entries).
  sparse::CooMatrix Adjacency() const;

  /// Â = D^{-1/2} A D^{-1/2}, the LightGCN/LayerGCN transition matrix
  /// (no self-loops).
  sparse::CsrMatrix NormalizedAdjacency() const;

  /// Adjacency restricted to the edge subset `kept` (indices into the edge
  /// arrays), symmetric COO over the unified node space. Used to build the
  /// pruned adjacency A_p of §III-B1.
  sparse::CooMatrix AdjacencySubset(const std::vector<int64_t>& kept) const;

  /// Re-normalized pruned transition matrix Â_p from an edge subset.
  sparse::CsrMatrix NormalizedAdjacencySubset(
      const std::vector<int64_t>& kept) const;

  /// Reusable scratch for NormalizedAdjacencySubsetInto: kept-degree counts
  /// and per-row fill cursors. Steady-state epochs allocate nothing.
  struct AdjacencyWorkspace {
    std::vector<int32_t> user_degree;  // degree within the kept subset
    std::vector<int32_t> item_degree;
    std::vector<int64_t> cursor;  // one fill cursor per unified node row
  };

  /// Counting-sort build of Â_p directly into *out: O(|kept| + N) with no
  /// comparison sort and no COO intermediate, reusing `ws` and the CSR
  /// storage of *out across epochs. `kept` must be ascending (both edge
  /// samplers return sorted indices); because the edge arrays are sorted by
  /// (user, item), a single ascending pass then emits every CSR row with
  /// its columns already in order. Bit-identical to
  /// NormalizedAdjacencySubset(kept).
  void NormalizedAdjacencySubsetInto(const std::vector<int64_t>& kept,
                                     AdjacencyWorkspace* ws,
                                     sparse::CsrMatrix* out) const;

  /// Keep-probability weights of paper Eq. 5: p_{e_k} = 1/(√d_i √d_j) for
  /// the edge's two endpoints (unnormalized; the sampler normalizes).
  std::vector<double> DegreeSensitiveEdgeWeights() const;

  /// Items each user interacted with, sorted ascending (adjacency lists for
  /// negative sampling and evaluation).
  const std::vector<std::vector<int32_t>>& user_items() const {
    return user_items_;
  }

  /// True if user u interacted with item i. O(log deg(u)).
  bool HasInteraction(int32_t u, int32_t i) const;

  /// Cumulative distribution of item degrees evaluated at the given degree
  /// thresholds: out[k] = fraction of items with degree <= thresholds[k]
  /// (paper Fig. 4).
  std::vector<double> ItemDegreeCdf(const std::vector<double>& thresholds) const;

 private:
  int32_t num_users_ = 0;
  int32_t num_items_ = 0;
  std::vector<int32_t> edge_user_;
  std::vector<int32_t> edge_item_;
  std::vector<int32_t> user_degree_;
  std::vector<int32_t> item_degree_;
  std::vector<std::vector<int32_t>> user_items_;
};

}  // namespace layergcn::graph

#endif  // LAYERGCN_GRAPH_BIPARTITE_GRAPH_H_
