#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"

namespace layergcn::graph {

BipartiteGraph::BipartiteGraph(
    int32_t num_users, int32_t num_items,
    const std::vector<std::pair<int32_t, int32_t>>& interactions)
    : num_users_(num_users), num_items_(num_items) {
  LAYERGCN_CHECK_GE(num_users, 0);
  LAYERGCN_CHECK_GE(num_items, 0);

  std::vector<std::pair<int32_t, int32_t>> pairs = interactions;
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

  edge_user_.reserve(pairs.size());
  edge_item_.reserve(pairs.size());
  user_degree_.assign(static_cast<size_t>(num_users), 0);
  item_degree_.assign(static_cast<size_t>(num_items), 0);
  user_items_.assign(static_cast<size_t>(num_users), {});

  for (const auto& [u, i] : pairs) {
    LAYERGCN_CHECK(u >= 0 && u < num_users) << "user id " << u;
    LAYERGCN_CHECK(i >= 0 && i < num_items) << "item id " << i;
    edge_user_.push_back(u);
    edge_item_.push_back(i);
    ++user_degree_[static_cast<size_t>(u)];
    ++item_degree_[static_cast<size_t>(i)];
    user_items_[static_cast<size_t>(u)].push_back(i);
  }
  // pairs were sorted, so each user's item list is already ascending.
}

sparse::CooMatrix BipartiteGraph::Adjacency() const {
  sparse::CooMatrix coo;
  coo.rows = num_nodes();
  coo.cols = num_nodes();
  coo.entries.reserve(edge_user_.size() * 2);
  for (size_t k = 0; k < edge_user_.size(); ++k) {
    const int32_t u = edge_user_[k];
    const int32_t i = static_cast<int32_t>(ItemNode(edge_item_[k]));
    coo.entries.push_back({u, i, 1.f});
    coo.entries.push_back({i, u, 1.f});
  }
  return coo;
}

sparse::CsrMatrix BipartiteGraph::NormalizedAdjacency() const {
  return sparse::SymmetricNormalize(Adjacency());
}

sparse::CooMatrix BipartiteGraph::AdjacencySubset(
    const std::vector<int64_t>& kept) const {
  sparse::CooMatrix coo;
  coo.rows = num_nodes();
  coo.cols = num_nodes();
  coo.entries.reserve(kept.size() * 2);
  for (int64_t k : kept) {
    LAYERGCN_CHECK(k >= 0 && k < num_edges()) << "edge index " << k;
    const int32_t u = edge_user_[static_cast<size_t>(k)];
    const int32_t i =
        static_cast<int32_t>(ItemNode(edge_item_[static_cast<size_t>(k)]));
    coo.entries.push_back({u, i, 1.f});
    coo.entries.push_back({i, u, 1.f});
  }
  return coo;
}

sparse::CsrMatrix BipartiteGraph::NormalizedAdjacencySubset(
    const std::vector<int64_t>& kept) const {
  return sparse::SymmetricNormalize(AdjacencySubset(kept));
}

void BipartiteGraph::NormalizedAdjacencySubsetInto(
    const std::vector<int64_t>& kept, AdjacencyWorkspace* ws,
    sparse::CsrMatrix* out) const {
  LAYERGCN_CHECK(ws != nullptr && out != nullptr);
  const int64_t n = num_nodes();
  const size_t nu = static_cast<size_t>(num_users_);
  const size_t ni = static_cast<size_t>(num_items_);

  // Kept-subset degrees (assign() reuses capacity after the first epoch).
  ws->user_degree.assign(nu, 0);
  ws->item_degree.assign(ni, 0);
  int64_t prev = -1;
  for (int64_t k : kept) {
    LAYERGCN_CHECK(k >= 0 && k < num_edges()) << "edge index " << k;
    LAYERGCN_CHECK_GT(k, prev) << "kept edges must be ascending";
    prev = k;
    ++ws->user_degree[static_cast<size_t>(edge_user_[static_cast<size_t>(k)])];
    ++ws->item_degree[static_cast<size_t>(edge_item_[static_cast<size_t>(k)])];
  }

  const int64_t nnz = static_cast<int64_t>(kept.size()) * 2;
  out->Rebuild(n, n, nnz, [&](int64_t* row_ptr, int32_t* col_idx,
                              float* values) {
    // Counting sort: kept degrees are exactly the per-row entry counts
    // (user rows first, item rows after, matching the unified node space).
    row_ptr[0] = 0;
    for (size_t u = 0; u < nu; ++u) {
      row_ptr[u + 1] = row_ptr[u] + ws->user_degree[u];
    }
    for (size_t i = 0; i < ni; ++i) {
      row_ptr[nu + i + 1] = row_ptr[nu + i] + ws->item_degree[i];
    }
    ws->cursor.assign(row_ptr, row_ptr + n);

    // One ascending pass emits both triangle halves with columns already
    // sorted: edges are ordered by (user, item), so a user row sees its
    // item columns ascending, and an item row sees its user columns
    // ascending. Values match SymmetricNormalize bit-for-bit: degrees are
    // exact small integers and the normalization arithmetic is identical.
    for (int64_t k : kept) {
      const size_t e = static_cast<size_t>(k);
      const int32_t u = edge_user_[e];
      const int64_t inode = ItemNode(edge_item_[e]);
      const double du = ws->user_degree[static_cast<size_t>(u)];
      const double di = ws->item_degree[static_cast<size_t>(edge_item_[e])];
      const float v =
          static_cast<float>(1.0 / (std::sqrt(du) * std::sqrt(di)));
      const int64_t up = ws->cursor[static_cast<size_t>(u)]++;
      col_idx[up] = static_cast<int32_t>(inode);
      values[up] = v;
      const int64_t ip = ws->cursor[static_cast<size_t>(inode)]++;
      col_idx[ip] = u;
      values[ip] = v;
    }
  });
}

std::vector<double> BipartiteGraph::DegreeSensitiveEdgeWeights() const {
  std::vector<double> w(edge_user_.size());
  for (size_t k = 0; k < edge_user_.size(); ++k) {
    const double du = user_degree_[static_cast<size_t>(edge_user_[k])];
    const double di = item_degree_[static_cast<size_t>(edge_item_[k])];
    // Degrees are >= 1 by construction (the edge itself contributes).
    w[k] = 1.0 / (std::sqrt(du) * std::sqrt(di));
  }
  return w;
}

bool BipartiteGraph::HasInteraction(int32_t u, int32_t i) const {
  LAYERGCN_CHECK(u >= 0 && u < num_users_);
  const auto& items = user_items_[static_cast<size_t>(u)];
  return std::binary_search(items.begin(), items.end(), i);
}

std::vector<double> BipartiteGraph::ItemDegreeCdf(
    const std::vector<double>& thresholds) const {
  std::vector<int32_t> degrees = item_degree_;
  std::sort(degrees.begin(), degrees.end());
  std::vector<double> cdf;
  cdf.reserve(thresholds.size());
  const double n = static_cast<double>(std::max<size_t>(degrees.size(), 1));
  for (double t : thresholds) {
    const auto it = std::upper_bound(degrees.begin(), degrees.end(), t);
    cdf.push_back(static_cast<double>(it - degrees.begin()) / n);
  }
  return cdf;
}

}  // namespace layergcn::graph
