// Edge-dropout samplers: DegreeDrop (paper §III-B1), DropEdge (uniform,
// Rong et al. 2020), and their alternating mixture (paper Table V).
//
// During training, LayerGCN propagates over the pruned re-normalized
// adjacency Â_p and resamples it every epoch; at inference it uses the full
// Â. DegreeDrop keeps edge e=(i,j) with probability proportional to
// 1/(√d_i √d_j) (Eq. 5) and samples M−m edges without replacement from the
// resulting multinomial, so edges between two popular nodes are pruned
// preferentially — the nodes most prone to over-smoothing per GCNII.

#ifndef LAYERGCN_GRAPH_EDGE_DROPOUT_H_
#define LAYERGCN_GRAPH_EDGE_DROPOUT_H_

#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "sparse/csr_matrix.h"
#include "util/rng.h"

namespace layergcn::graph {

/// Which pruning distribution to use.
enum class EdgeDropKind {
  kNone,        // no pruning: Â_p == Â
  kDropEdge,    // uniform (DropEdge)
  kDegreeDrop,  // degree-sensitive (paper Eq. 5)
  kMixed,       // alternate DegreeDrop / DropEdge by epoch parity (Table V)
};

/// Parses "none" / "dropedge" / "degreedrop" / "mixed".
EdgeDropKind EdgeDropKindFromString(const std::string& s);
std::string ToString(EdgeDropKind kind);

/// Per-epoch sampler of the pruned, re-normalized adjacency Â_p.
class EdgeDropout {
 public:
  /// `graph` must outlive the sampler. `ratio` is the fraction m/M of edges
  /// to prune, in [0, 1).
  EdgeDropout(const BipartiteGraph* graph, EdgeDropKind kind, double ratio);

  /// Samples the kept-edge index set for one epoch. For kMixed, even epochs
  /// use DegreeDrop and odd epochs use DropEdge.
  std::vector<int64_t> SampleKeptEdges(util::Rng* rng, int epoch) const;

  /// Samples Â_p for one epoch (re-normalized over the pruned graph). With
  /// kNone or ratio == 0 this is the full Â.
  sparse::CsrMatrix SampleAdjacency(util::Rng* rng, int epoch) const;

  EdgeDropKind kind() const { return kind_; }
  double ratio() const { return ratio_; }
  /// Number of edges kept per sample.
  int64_t num_kept() const { return num_kept_; }

 private:
  const BipartiteGraph* graph_;
  EdgeDropKind kind_;
  double ratio_;
  int64_t num_kept_;
  std::vector<double> degree_weights_;  // Eq. 5 weights, cached
};

}  // namespace layergcn::graph

#endif  // LAYERGCN_GRAPH_EDGE_DROPOUT_H_
