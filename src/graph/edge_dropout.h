// Edge-dropout samplers: DegreeDrop (paper §III-B1), DropEdge (uniform,
// Rong et al. 2020), and their alternating mixture (paper Table V).
//
// During training, LayerGCN propagates over the pruned re-normalized
// adjacency Â_p and resamples it every epoch; at inference it uses the full
// Â. DegreeDrop keeps edge e=(i,j) with probability proportional to
// 1/(√d_i √d_j) (Eq. 5) and samples M−m edges without replacement from the
// resulting multinomial, so edges between two popular nodes are pruned
// preferentially — the nodes most prone to over-smoothing per GCNII.
//
// The per-epoch rebuild is allocation-free at steady state: the sampler
// owns a kept-edge buffer, a counting-sort workspace, and hands the CSR to
// the caller through SampleAdjacencyInto, which reuses the destination's
// storage (BipartiteGraph::NormalizedAdjacencySubsetInto).

#ifndef LAYERGCN_GRAPH_EDGE_DROPOUT_H_
#define LAYERGCN_GRAPH_EDGE_DROPOUT_H_

#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "sparse/csr_matrix.h"
#include "util/rng.h"

namespace layergcn::graph {

/// Which pruning distribution to use.
enum class EdgeDropKind {
  kNone,        // no pruning: Â_p == Â
  kDropEdge,    // uniform (DropEdge)
  kDegreeDrop,  // degree-sensitive (paper Eq. 5)
  kMixed,       // alternate DegreeDrop / DropEdge by epoch parity (Table V)
};

/// Parses "none" / "dropedge" / "degreedrop" / "mixed".
EdgeDropKind EdgeDropKindFromString(const std::string& s);
std::string ToString(EdgeDropKind kind);

/// Per-epoch sampler of the pruned, re-normalized adjacency Â_p.
class EdgeDropout {
 public:
  /// `graph` must outlive the sampler. `ratio` is the fraction m/M of edges
  /// to prune, in [0, 1).
  EdgeDropout(const BipartiteGraph* graph, EdgeDropKind kind, double ratio);

  /// Samples the kept-edge index set (ascending) for one epoch into *kept,
  /// reusing its capacity. For kMixed, even epochs use DegreeDrop and odd
  /// epochs use DropEdge. In the no-drop case this copies a cached identity
  /// list instead of rebuilding it.
  void SampleKeptEdgesInto(util::Rng* rng, int epoch,
                           std::vector<int64_t>* kept);

  /// Convenience wrapper returning a fresh vector (tests / one-shot use;
  /// the training loop goes through the Into variants).
  std::vector<int64_t> SampleKeptEdges(util::Rng* rng, int epoch);

  /// Samples Â_p for one epoch into *out (re-normalized over the pruned
  /// graph), reusing out's CSR storage and the internal workspace: the
  /// steady-state epoch performs no allocation and no comparison sort.
  /// With kNone or ratio == 0 this produces the full Â.
  void SampleAdjacencyInto(util::Rng* rng, int epoch, sparse::CsrMatrix* out);

  /// Convenience wrapper returning a fresh matrix.
  sparse::CsrMatrix SampleAdjacency(util::Rng* rng, int epoch);

  EdgeDropKind kind() const { return kind_; }
  double ratio() const { return ratio_; }
  /// Number of edges kept per sample.
  int64_t num_kept() const { return num_kept_; }

 private:
  /// The cached [0, M) identity kept-list (built on first use).
  const std::vector<int64_t>& IdentityEdges();

  const BipartiteGraph* graph_;
  EdgeDropKind kind_;
  double ratio_;
  int64_t num_kept_;
  std::vector<double> degree_weights_;  // Eq. 5 weights, cached
  std::vector<int64_t> identity_edges_;  // cached no-drop kept list
  std::vector<int64_t> kept_scratch_;    // per-epoch kept buffer
  BipartiteGraph::AdjacencyWorkspace workspace_;  // counting-sort scratch
  // Destination last filled with the (epoch-invariant) full adjacency;
  // SampleAdjacencyInto skips the rebuild when asked to fill it again.
  sparse::CsrMatrix* full_adjacency_dst_ = nullptr;
};

}  // namespace layergcn::graph

#endif  // LAYERGCN_GRAPH_EDGE_DROPOUT_H_
