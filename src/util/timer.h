// Wall-clock timing helpers used by trainers and experiment harnesses.

#ifndef LAYERGCN_UTIL_TIMER_H_
#define LAYERGCN_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace layergcn::util {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() { Reset(); }

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Formats a duration like "1m23.4s" / "456ms" for log lines.
std::string FormatDuration(double seconds);

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_TIMER_H_
