// Wall-clock timing helpers used by trainers and experiment harnesses.
//
// Everything here reads std::chrono::steady_clock — never the wall clock —
// so measured durations are immune to NTP steps and DST shifts.

#ifndef LAYERGCN_UTIL_TIMER_H_
#define LAYERGCN_UTIL_TIMER_H_

#include <chrono>
#include <string>

namespace layergcn::util {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() { Reset(); }

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Stopwatch that accumulates its scope's duration into the obs
/// MetricsRegistry on destruction: counters `<name>.sum_us` and
/// `<name>.count` (same layout the OBS_SPAN sites use, so legacy timing
/// call sites land in the same snapshot). No-op while obs metrics are
/// runtime-disabled. `name` must outlive the scope (use a literal).
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) : name_(name) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  const char* name_;
  Timer timer_;
};

/// Formats a duration like "1m23.4s" / "456ms" for log lines.
std::string FormatDuration(double seconds);

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_TIMER_H_
