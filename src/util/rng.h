// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic component (parameter init, negative sampling, edge
// dropout, synthetic data generation) draws from a util::Rng seeded
// explicitly, so any experiment is reproducible from its seed. The engine is
// xoshiro256** seeded via SplitMix64, which is fast, high-quality, and has a
// well-defined cross-platform bit stream (unlike std::mt19937 paired with
// std::uniform_*_distribution, whose outputs are implementation-defined).

#ifndef LAYERGCN_UTIL_RNG_H_
#define LAYERGCN_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace layergcn::util {

/// Deterministic random number generator (xoshiro256** + SplitMix64 seeding).
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream on
  /// every platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a uniformly distributed integer in [0, bound). Requires
  /// bound > 0. Uses Lemire's unbiased bounded sampling.
  uint64_t NextBounded(uint64_t bound);

  /// Returns an int uniformly in [lo, hi). Requires lo < hi.
  int NextInt(int lo, int hi);

  /// Returns a double uniformly in [0, 1).
  double NextDouble();

  /// Returns a float uniformly in [0, 1).
  float NextFloat();

  /// Returns a double uniformly in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Returns a standard normal variate (Box-Muller, cached spare).
  double NextGaussian();

  /// Returns true with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffles the vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Forks an independent child stream. Children of distinct calls are
  /// statistically independent of each other and of the parent.
  Rng Fork();

  /// Complete serializable engine state: xoshiro words plus the cached
  /// Box-Muller spare (without it, a restored stream would diverge on the
  /// next NextGaussian()). spare_bits is the bit pattern of the spare
  /// double, meaningful only when has_spare != 0.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    uint64_t spare_bits = 0;
    uint64_t has_spare = 0;
  };

  /// Captures the exact stream position; SetState(GetState()) is a no-op
  /// and a restored Rng continues the identical stream bit-for-bit.
  State GetState() const;
  void SetState(const State& state);

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

/// Samples `k` distinct indices from [0, n) *without replacement*, where
/// index i is drawn with probability proportional to weights[i]. This is the
/// weighted sampling primitive behind DegreeDrop (paper Eq. 5): edges are
/// kept by a multinomial draw over degree-sensitive probabilities.
///
/// Implementation: Efraimidis-Spirakis reservoir keys (u^(1/w)) which is
/// equivalent to sequential weighted sampling without replacement and runs
/// in O(n log k). Zero-weight items are never selected unless all positive
/// weights are exhausted. Requires 0 <= k <= n.
std::vector<int64_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int64_t k, Rng* rng);

/// As WeightedSampleWithoutReplacement, but writes the sorted sample into
/// *out, reusing its capacity. Draws the identical random stream and
/// produces the identical sample as the returning variant.
void WeightedSampleWithoutReplacementInto(const std::vector<double>& weights,
                                          int64_t k, Rng* rng,
                                          std::vector<int64_t>* out);

/// Samples `k` distinct indices uniformly from [0, n) without replacement
/// (partial Fisher-Yates). Requires 0 <= k <= n.
std::vector<int64_t> UniformSampleWithoutReplacement(int64_t n, int64_t k,
                                                     Rng* rng);

/// As UniformSampleWithoutReplacement, but writes the sorted sample into
/// *out, reusing its capacity (the dense path uses *out itself as the
/// Fisher-Yates index array). Identical stream and sample as the returning
/// variant.
void UniformSampleWithoutReplacementInto(int64_t n, int64_t k, Rng* rng,
                                         std::vector<int64_t>* out);

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_RNG_H_
