#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace layergcn::util {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  LAYERGCN_CHECK_EQ(row.size(), header_.size())
      << "row width must match header width";
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  out += render_row(header_);
  out += rule();
  for (const auto& row : rows_) out += render_row(row);
  out += rule();
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += "\"\"";
      else q += ch;
    }
    return q + "\"";
  };
  std::ostringstream ss;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c) ss << ",";
    ss << quote(header_[c]);
  }
  ss << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) ss << ",";
      ss << quote(row[c]);
    }
    ss << "\n";
  }
  return ss.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace layergcn::util
