#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <queue>

namespace layergcn::util {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  // xoshiro256** must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int Rng::NextInt(int lo, int hi) {
  assert(lo < hi);
  return lo + static_cast<int>(
                  NextBounded(static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo)));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextU64()); }

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  // Round-trip the spare through its bit pattern so NaN/denormal values
  // (impossible today, but cheap to be exact about) survive unchanged.
  static_assert(sizeof(double) == sizeof(uint64_t));
  std::memcpy(&state.spare_bits, &spare_gaussian_, sizeof(double));
  state.has_spare = has_spare_gaussian_ ? 1 : 0;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  std::memcpy(&spare_gaussian_, &state.spare_bits, sizeof(double));
  has_spare_gaussian_ = state.has_spare != 0;
  // Restoring an all-zero engine would wedge xoshiro; that state is
  // unreachable from any seed, so treat it as corruption from the caller.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::vector<int64_t> WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int64_t k, Rng* rng) {
  std::vector<int64_t> out;
  WeightedSampleWithoutReplacementInto(weights, k, rng, &out);
  return out;
}

void WeightedSampleWithoutReplacementInto(const std::vector<double>& weights,
                                          int64_t k, Rng* rng,
                                          std::vector<int64_t>* out) {
  const int64_t n = static_cast<int64_t>(weights.size());
  assert(k >= 0 && k <= n);
  out->clear();
  if (k == 0) return;

  // Efraimidis-Spirakis: key_i = u_i^(1/w_i); keep the k largest keys. We use
  // log(u)/w which preserves the order and avoids pow() underflow. Items with
  // non-positive weight get key -inf so they lose to every positive-weight
  // item, but can still fill the reservoir if k exceeds the number of
  // positive-weight items.
  using Entry = std::pair<double, int64_t>;  // (key, index); min-heap on key.
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int64_t i = 0; i < n; ++i) {
    double key;
    if (weights[i] > 0.0) {
      double u = rng->NextDouble();
      // Guard u == 0: log(0) = -inf would unfairly drop the item entirely.
      if (u <= 0.0) u = 0x1.0p-60;
      key = std::log(u) / weights[i];
    } else {
      key = -std::numeric_limits<double>::infinity();
    }
    if (static_cast<int64_t>(heap.size()) < k) {
      heap.emplace(key, i);
    } else if (key > heap.top().first) {
      heap.pop();
      heap.emplace(key, i);
    }
  }
  out->reserve(static_cast<size_t>(k));
  while (!heap.empty()) {
    out->push_back(heap.top().second);
    heap.pop();
  }
  std::sort(out->begin(), out->end());
}

std::vector<int64_t> UniformSampleWithoutReplacement(int64_t n, int64_t k,
                                                     Rng* rng) {
  std::vector<int64_t> out;
  UniformSampleWithoutReplacementInto(n, k, rng, &out);
  return out;
}

void UniformSampleWithoutReplacementInto(int64_t n, int64_t k, Rng* rng,
                                         std::vector<int64_t>* out) {
  assert(k >= 0 && k <= n);
  out->clear();
  if (k == 0) return;
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates, using *out itself as the index
    // array so repeat calls reuse its capacity.
    std::vector<int64_t>& idx = *out;
    idx.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) idx[static_cast<size_t>(i)] = i;
    for (int64_t i = 0; i < k; ++i) {
      int64_t j = i + static_cast<int64_t>(
                          rng->NextBounded(static_cast<uint64_t>(n - i)));
      std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
    }
    idx.resize(static_cast<size_t>(k));
    std::sort(idx.begin(), idx.end());
    return;
  }
  // Sparse case: rejection sampling into a sorted vector.
  out->reserve(static_cast<size_t>(k));
  while (static_cast<int64_t>(out->size()) < k) {
    int64_t c = static_cast<int64_t>(rng->NextBounded(static_cast<uint64_t>(n)));
    auto it = std::lower_bound(out->begin(), out->end(), c);
    if (it == out->end() || *it != c) out->insert(it, c);
  }
}

}  // namespace layergcn::util
