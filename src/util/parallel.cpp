#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/metrics.h"
#include "util/logging.h"

namespace layergcn::util {
namespace parallel {
namespace {

// Process-global override installed by ScopedComputePool. Plain atomic:
// installs happen on the orchestration thread, reads from kernel call sites.
std::atomic<ThreadPool*> g_override{nullptr};

// One dispatch: `workers` tasks drain the block list through a shared
// cursor. Returns after every block has completed.
void RunBlocks(ThreadPool* pool, int64_t blocks, int64_t grain, int64_t n,
               int workers,
               const std::function<void(int64_t, int64_t, int64_t)>& run) {
  std::atomic<int64_t> cursor{0};  // outlives the tasks: Wait() is below
  for (int w = 0; w < workers; ++w) {
    pool->Submit([&cursor, blocks, grain, n, &run] {
      for (;;) {
        const int64_t b = cursor.fetch_add(1, std::memory_order_relaxed);
        if (b >= blocks) return;
        const int64_t lo = b * grain;
        const int64_t hi = std::min(n, lo + grain);
        run(b, lo, hi);
      }
    });
  }
  pool->Wait();
}

}  // namespace

int64_t NumBlocks(int64_t n, int64_t grain) {
  if (n <= 0) return 0;
  LAYERGCN_CHECK_GT(grain, 0);
  return (n + grain - 1) / grain;
}

ThreadPool* ComputePool() {
  ThreadPool* p = g_override.load(std::memory_order_acquire);
  return p != nullptr ? p : &ThreadPool::Global();
}

ScopedComputePool::ScopedComputePool(ThreadPool* pool)
    : previous_(g_override.exchange(pool, std::memory_order_acq_rel)) {}

ScopedComputePool::~ScopedComputePool() {
  g_override.store(previous_, std::memory_order_release);
}

void For(int64_t n, const std::function<void(int64_t, int64_t)>& body,
         int64_t grain) {
  const int64_t blocks = NumBlocks(n, grain);
  if (blocks == 0) return;
  ThreadPool* pool = ComputePool();
  const int workers =
      static_cast<int>(std::min<int64_t>(pool->num_threads(), blocks));
  if (blocks <= 1 || workers <= 1 || InPoolWorker()) {
    for (int64_t b = 0; b < blocks; ++b) {
      body(b * grain, std::min(n, b * grain + grain));
    }
    return;
  }
  OBS_COUNT("parallel.for_dispatches", 1);
  OBS_COUNT("parallel.for_blocks", blocks);
  RunBlocks(pool, blocks, grain, n, workers,
            [&body](int64_t /*b*/, int64_t lo, int64_t hi) { body(lo, hi); });
}

double Reduce(int64_t n,
              const std::function<double(int64_t, int64_t)>& block,
              int64_t grain) {
  const int64_t blocks = NumBlocks(n, grain);
  if (blocks == 0) return 0.0;
  ThreadPool* pool = ComputePool();
  const int workers =
      static_cast<int>(std::min<int64_t>(pool->num_threads(), blocks));
  if (blocks <= 1 || workers <= 1 || InPoolWorker()) {
    // Same blocked accumulation and left-to-right combine as the parallel
    // path, so serial results are bitwise identical.
    double acc = 0.0;
    for (int64_t b = 0; b < blocks; ++b) {
      acc += block(b * grain, std::min(n, b * grain + grain));
    }
    return acc;
  }
  OBS_COUNT("parallel.reduce_dispatches", 1);
  OBS_COUNT("parallel.reduce_blocks", blocks);
  std::vector<double> partials(static_cast<size_t>(blocks), 0.0);
  RunBlocks(pool, blocks, grain, n, workers,
            [&block, &partials](int64_t b, int64_t lo, int64_t hi) {
              partials[static_cast<size_t>(b)] = block(lo, hi);
            });
  double acc = 0.0;
  for (double p : partials) acc += p;
  return acc;
}

}  // namespace parallel
}  // namespace layergcn::util
