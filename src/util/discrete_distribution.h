// Sampling from a fixed discrete distribution by inverse-CDF binary search.
//
// Used by the synthetic dataset generators (Zipf popularity over users and
// items) and by weighted negative sampling. Header-only.

#ifndef LAYERGCN_UTIL_DISCRETE_DISTRIBUTION_H_
#define LAYERGCN_UTIL_DISCRETE_DISTRIBUTION_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace layergcn::util {

/// Immutable discrete distribution over {0, ..., n-1} with O(log n) sampling.
class DiscreteDistribution {
 public:
  DiscreteDistribution() = default;

  /// Builds from non-negative weights; at least one must be positive.
  explicit DiscreteDistribution(const std::vector<double>& weights) {
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
      LAYERGCN_CHECK_GE(w, 0.0) << "negative weight";
      acc += w;
      cdf_.push_back(acc);
    }
    LAYERGCN_CHECK_GT(acc, 0.0) << "all weights zero";
    total_ = acc;
  }

  /// Number of outcomes.
  int64_t size() const { return static_cast<int64_t>(cdf_.size()); }

  /// Draws one index.
  int64_t Sample(Rng* rng) const {
    const double u = rng->NextDouble() * total_;
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    const int64_t idx = it == cdf_.end()
                            ? static_cast<int64_t>(cdf_.size()) - 1
                            : static_cast<int64_t>(it - cdf_.begin());
    return idx;
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

/// Zipf-like weights: w_i = 1/(i+1)^alpha for i in [0, n). alpha = 0 gives
/// the uniform distribution; larger alpha gives heavier skew.
inline std::vector<double> ZipfWeights(int64_t n, double alpha) {
  std::vector<double> w(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    w[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  return w;
}

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_DISCRETE_DISTRIBUTION_H_
