// Console table formatting for experiment harnesses.
//
// Every bench binary prints its table/figure data through TablePrinter so
// the output visually matches the paper's tables and can be diffed across
// runs. Also supports CSV emission for plotting.

#ifndef LAYERGCN_UTIL_TABLE_PRINTER_H_
#define LAYERGCN_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace layergcn::util {

/// Builds and renders a fixed-column text table.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title = "");

  /// Sets the header row. Must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; its size must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal places.
  static std::string Num(double v, int precision = 4);

  /// Renders the table with column alignment and ASCII rules.
  std::string ToString() const;

  /// Renders as CSV (header + rows, comma-separated, quoted when needed).
  std::string ToCsv() const;

  /// Prints ToString() to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_TABLE_PRINTER_H_
