// Deterministic data-parallel primitives over the shared ThreadPool.
//
// The training hot path (Adam, elementwise autograd kernels, the embedding
// scatter-add) must produce bit-identical results at 1, 2, or N threads so
// any run is reproducible from its seed regardless of the machine it lands
// on. The primitives here make that a structural property instead of a
// per-kernel proof obligation:
//
//   * The iteration space [0, n) is split into fixed-size blocks of `grain`
//     iterations. The partition depends only on (n, grain) — never on the
//     worker count — so block boundaries are identical on every machine.
//   * Blocks are claimed dynamically (atomic cursor), so scheduling stays
//     load-balanced; but a block only ever writes its own outputs or its own
//     partial-reduction slot, so which worker ran it cannot be observed.
//   * Reduction partials are combined on the calling thread in ascending
//     block order (a fixed left-to-right tree). Each block accumulates in
//     double; the combine is a double sum in block order. The serial path
//     performs the same blocked accumulation, so serial == parallel bitwise.
//
// Nested use is safe: a call made from inside a pool worker runs inline
// (the same rule ThreadPool::ParallelFor follows), with identical blocking
// and combine order, so determinism survives nesting too.
//
// The pool used by every kernel in the library is ComputePool(): by default
// the process-global pool (sized by LAYERGCN_NUM_THREADS or the hardware),
// overridable with ScopedComputePool for tests, benchmarks, and the CLI
// --threads flag.

#ifndef LAYERGCN_UTIL_PARALLEL_H_
#define LAYERGCN_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "util/thread_pool.h"

namespace layergcn::util {
namespace parallel {

/// Default block size for scalar elementwise kernels: large enough that the
/// per-block dispatch (one atomic increment + one std::function call) is
/// noise, small enough that mid-size embedding tables still split. Kernels
/// iterating over rows scale it down by the row width so a block always
/// represents roughly this much scalar work.
///
/// The pool is engaged only when the partition has more than one block (and
/// the pool has more than one worker, and the caller is not already a pool
/// worker); otherwise the same blocked loop runs inline on the caller, so
/// the work-size cutoff is the grain itself.
inline constexpr int64_t kDefaultGrain = 16384;

/// Number of fixed blocks for an iteration space of `n` at block size
/// `grain` (== ceil(n / grain); 0 when n <= 0).
int64_t NumBlocks(int64_t n, int64_t grain);

/// The pool the compute kernels run on: the ScopedComputePool override if
/// one is active, else ThreadPool::Global().
ThreadPool* ComputePool();

/// RAII override of ComputePool(). Intended for single-threaded
/// orchestration (tests / benchmarks / CLI startup); the override is
/// process-global, not per-thread.
class ScopedComputePool {
 public:
  explicit ScopedComputePool(ThreadPool* pool);
  ~ScopedComputePool();

  ScopedComputePool(const ScopedComputePool&) = delete;
  ScopedComputePool& operator=(const ScopedComputePool&) = delete;

 private:
  ThreadPool* previous_;
};

/// Runs body(lo, hi) for every fixed block [lo, hi) of [0, n). Blocks may
/// run concurrently and in any order; `body` must write only state owned by
/// its block. Deterministic for any worker count provided each output
/// element is computed by exactly one block (true by construction for
/// elementwise kernels).
void For(int64_t n, const std::function<void(int64_t, int64_t)>& body,
         int64_t grain = kDefaultGrain);

/// Blocked reduction: block(lo, hi) returns its partial (accumulated in
/// double over the block); partials are summed in ascending block order.
/// Bit-exact for any worker count, including the inline/serial path.
double Reduce(int64_t n,
              const std::function<double(int64_t, int64_t)>& block,
              int64_t grain = kDefaultGrain);

}  // namespace parallel
}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_PARALLEL_H_
