#include "util/fault_injection.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::util::fault {
namespace {

struct PointState {
  bool armed = false;
  int trigger_on_hit = 1;
  int64_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, PointState> points;
  bool env_parsed = false;
};

Registry& GetRegistry() {
  static Registry* r = new Registry();  // leaked: safe at exit
  return *r;
}

// Parses LAYERGCN_FAULT ("point[:nth][,point[:nth]...]") once. Caller holds
// the registry lock.
void ParseEnvLocked(Registry* r) {
  if (r->env_parsed) return;
  r->env_parsed = true;
  const char* env = std::getenv("LAYERGCN_FAULT");
  if (env == nullptr || *env == '\0') return;
  for (const std::string& entry : Split(env, ',')) {
    const std::string spec(Trim(entry));
    if (spec.empty()) continue;
    const size_t colon = spec.find(':');
    std::string name = spec.substr(0, colon);
    int64_t nth = 1;
    if (colon != std::string::npos &&
        (!ParseInt64(spec.substr(colon + 1), &nth) || nth < 1)) {
      LAYERGCN_LOG(kWarning) << "LAYERGCN_FAULT: bad trigger count in '"
                             << spec << "'; using 1";
      nth = 1;
    }
    PointState& p = r->points[name];
    p.armed = true;
    p.trigger_on_hit = static_cast<int>(nth);
    p.hits = 0;
    LAYERGCN_LOG(kWarning) << "fault injection armed: " << name << " (hit "
                           << nth << ")";
  }
}

}  // namespace

void Arm(const std::string& point, int trigger_on_hit) {
  LAYERGCN_CHECK_GE(trigger_on_hit, 1);
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ParseEnvLocked(&r);
  PointState& p = r.points[point];
  p.armed = true;
  p.trigger_on_hit = trigger_on_hit;
  p.hits = 0;
}

void Disarm(const std::string& point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(point);
  if (it != r.points.end()) it->second.armed = false;
}

void DisarmAll() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.points.clear();
  // The env stays consumed: DisarmAll is test isolation, and re-arming from
  // a stale environment would undo it.
  r.env_parsed = true;
}

bool Fire(const std::string& point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ParseEnvLocked(&r);
  PointState& p = r.points[point];
  ++p.hits;
  if (!p.armed || p.hits != p.trigger_on_hit) return false;
  p.armed = false;  // one-shot: a recovery retry passes clean
  LAYERGCN_LOG(kWarning) << "fault injection fired: " << point;
  return true;
}

int64_t HitCount(const std::string& point) {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(point);
  return it != r.points.end() ? it->second.hits : 0;
}

bool AnyArmed() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  ParseEnvLocked(&r);
  for (const auto& [name, p] : r.points) {
    if (p.armed) return true;
  }
  return false;
}

std::vector<std::string> ArmedPoints() {
  Registry& r = GetRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> out;
  for (const auto& [name, p] : r.points) {
    if (p.armed) out.push_back(name);
  }
  return out;
}

}  // namespace layergcn::util::fault
