// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// integrity check of the checkpoint format v2. Table-driven, byte at a
// time; incremental via the running-crc overload so writers can checksum
// while streaming.

#ifndef LAYERGCN_UTIL_CRC32_H_
#define LAYERGCN_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace layergcn::util {

/// CRC-32 of `len` bytes at `data`.
uint32_t Crc32(const void* data, size_t len);

/// Extends a running CRC (start from Crc32Init(), finish with Crc32Final()).
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);
uint32_t Crc32Final(uint32_t crc);

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_CRC32_H_
