// String / CSV helpers shared by the data loaders and experiment reporters.

#ifndef LAYERGCN_UTIL_STRINGS_H_
#define LAYERGCN_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace layergcn::util {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses an integer; returns false on malformed input or overflow.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on malformed input.
bool ParseDouble(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins elements with `sep` using operator<< formatting.
std::string JoinInts(const std::vector<int>& v, std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_STRINGS_H_
