#include "util/status.h"

namespace layergcn::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return std::string(StatusCodeName(code_)) + ": " + message_;
}

void Status::CheckOk(const char* file, int line) const {
  if (ok()) return;
  CheckFailed(file, line, "status.ok()", ToString());
}

Status OkStatus() { return Status(); }
Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

}  // namespace layergcn::util
