#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace layergcn::util {
namespace {

// True on threads that live inside a ThreadPool. ParallelFor{,Ranges} check
// it to run inline instead of submitting nested work: Wait() counts *all*
// in-flight tasks, so a worker waiting on its own pool would never return.
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    // Keep at least two workers even on single-core machines: ParallelFor
    // only engages the pool when num_threads() > 1, and the concurrent
    // submit/wait paths should stay exercised (and sanitized) everywhere.
    if (num_threads < 2) num_threads = 2;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    LAYERGCN_CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++in_flight_;
    OBS_GAUGE("pool.queue_depth", tasks_.size());
  }
  OBS_COUNT("pool.tasks_submitted", 1);
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      const uint64_t wait_start = OBS_NOW_US();
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      OBS_COUNT("pool.idle_us", OBS_NOW_US() - wait_start);
      if (tasks_.empty()) return;  // shutdown_ with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    const uint64_t task_start = OBS_NOW_US();
    task();
    [[maybe_unused]] const uint64_t task_us = OBS_NOW_US() - task_start;
    OBS_COUNT("pool.tasks_executed", 1);
    OBS_COUNT("pool.task_us", task_us);
    OBS_OBSERVE("pool.task_dur_us",
                (std::vector<double>{10, 100, 1000, 10000, 100000, 1000000}),
                task_us);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool([] {
    // LAYERGCN_NUM_THREADS overrides the hardware sizing (results are
    // bit-identical either way; the knob only trades wall-clock).
    const char* env = std::getenv("LAYERGCN_NUM_THREADS");
    if (env != nullptr) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
        return static_cast<int>(v);
      }
      LAYERGCN_LOG(kWarning) << "ignoring invalid LAYERGCN_NUM_THREADS='"
                             << env << "'";
    }
    return 0;  // ThreadPool default: hardware concurrency, floored at 2
  }());
  return pool;
}

bool InPoolWorker() { return t_in_pool_worker; }

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int workers = pool->num_threads();
  if (n == 1 || workers <= 1 || t_in_pool_worker) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  const int64_t chunks = std::min<int64_t>(workers, n);
  const int64_t chunk_size = (n + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t lo = begin + c * chunk_size;
    const int64_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    pool->Submit([lo, hi, &body] {
      for (int64_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool->Wait();
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body) {
  ParallelFor(parallel::ComputePool(), begin, end, body);
}

void ParallelForRanges(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int workers = pool->num_threads();
  if (workers <= 1 || n == 1 || t_in_pool_worker) {
    body(begin, end);
    return;
  }
  const int64_t chunks = std::min<int64_t>(workers, n);
  const int64_t chunk_size = (n + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t lo = begin + c * chunk_size;
    const int64_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    pool->Submit([lo, hi, &body] { body(lo, hi); });
  }
  pool->Wait();
}

void ParallelForRanges(int64_t begin, int64_t end,
                       const std::function<void(int64_t, int64_t)>& body) {
  ParallelForRanges(parallel::ComputePool(), begin, end, body);
}

}  // namespace layergcn::util
