#include "util/crc32.h"

#include <array>

namespace layergcn::util {
namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Init() { return 0xFFFFFFFFu; }

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32Final(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

uint32_t Crc32(const void* data, size_t len) {
  return Crc32Final(Crc32Update(Crc32Init(), data, len));
}

}  // namespace layergcn::util
