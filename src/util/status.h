// util::Status / util::StatusOr — structured error propagation for I/O and
// recovery paths.
//
// LAYERGCN_CHECK stays the right tool for programmer-error invariants
// (shape mismatches inside kernels, broken preconditions). Status is for
// *environmental* failures the caller can reasonably handle: a torn
// checkpoint, a malformed dataset row, a missing file. The checkpoint and
// loader paths return Status so the CLI and experiment runner can degrade
// gracefully (fall back to an older checkpoint, skip a bad row, print a
// diagnostic and exit) instead of aborting the process.

#ifndef LAYERGCN_UTIL_STATUS_H_
#define LAYERGCN_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/logging.h"

namespace layergcn::util {

/// Canonical error space (subset of the usual gRPC/absl codes; extend as
/// call sites need them).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     // caller passed something unusable
  kNotFound,            // file / checkpoint / key absent
  kDataLoss,            // corruption: bad CRC, truncation, torn write
  kFailedPrecondition,  // operation needs state that is not there
  kResourceExhausted,   // bounded retry budget spent
  kCancelled,           // stopped on request (signal / stop token)
  kInternal,            // invariant violated on an error path
  kUnavailable,         // transient I/O failure
  kDeadlineExceeded,    // request budget expired before completion
};

/// Human-readable code name ("DATA_LOSS", "OK", ...).
const char* StatusCodeName(StatusCode code);

/// A (code, message) pair. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "DATA_LOSS: section crc mismatch" (or "OK").
  std::string ToString() const;

  /// Dies with the status message when not ok (bridges Status call sites
  /// back into abort-on-failure contexts like the legacy wrappers).
  void CheckOk(const char* file, int line) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status DataLossError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);

/// A Status or a value. No exceptions, no heap: the value lives inline and
/// is only valid when ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    LAYERGCN_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LAYERGCN_CHECK(ok()) << "value() on error StatusOr: "
                         << status_.ToString();
    return value_;
  }
  T& value() & {
    LAYERGCN_CHECK(ok()) << "value() on error StatusOr: "
                         << status_.ToString();
    return value_;
  }
  T&& value() && {
    LAYERGCN_CHECK(ok()) << "value() on error StatusOr: "
                         << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;  // OK iff value_ is meaningful
  T value_{};
};

}  // namespace layergcn::util

/// Early-returns the expression's Status when it is not OK.
#define LAYERGCN_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::layergcn::util::Status status_macro_ = (expr);    \
    if (!status_macro_.ok()) return status_macro_;      \
  } while (0)

/// Dies when `expr` (a Status) is not OK; for tests and legacy wrappers.
#define LAYERGCN_CHECK_OK(expr) (expr).CheckOk(__FILE__, __LINE__)

#endif  // LAYERGCN_UTIL_STATUS_H_
