#include "util/timer.h"

#include <cstdio>
#include <string>

#include "obs/metrics.h"

namespace layergcn::util {

ScopedTimer::~ScopedTimer() {
  if (!obs::Enabled()) return;
  const auto micros = static_cast<uint64_t>(timer_.ElapsedSeconds() * 1e6);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter(std::string(name_) + ".sum_us")->Add(micros);
  registry.GetCounter(std::string(name_) + ".count")->Increment();
}

std::string FormatDuration(double seconds) {
  char buf[64];
  if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fms", seconds * 1e3);
  } else if (seconds < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else {
    int minutes = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof(buf), "%dm%.1fs", minutes,
                  seconds - 60.0 * minutes);
  }
  return buf;
}

}  // namespace layergcn::util
