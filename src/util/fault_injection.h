// Test-only fault injection for the fault-tolerance paths.
//
// A fault *point* is a named site in production code that asks
// `fault::Fire("name")` whether it should misbehave this time. Points are
// disarmed by default and Fire() is a cheap early-out, so shipping the
// probes costs nothing; tests (and tools/check.sh) arm them either
// programmatically or through the environment:
//
//   LAYERGCN_FAULT="checkpoint.bit_flip,trainer.nan_loss:3"
//
// arms `checkpoint.bit_flip` to fire on its 1st hit and `trainer.nan_loss`
// on its 3rd. Every armed point is one-shot: it fires once, then disarms,
// so a recovery retry of the same code path succeeds.
//
// Points wired up in this PR:
//   checkpoint.torn_write    writer persists only a prefix of the file
//                            (simulates a crash inside the write window)
//   checkpoint.short_read    reader sees a truncated file image
//   checkpoint.bit_flip      reader sees one flipped payload bit
//   trainer.nan_loss         the epoch loss is replaced with a quiet NaN
//
// Serving points (src/serve/):
//   serve.snapshot_bit_flip  snapshot reader sees one flipped payload bit
//                            (CRC mismatch -> newest-valid fallback)
//   serve.reload_torn_read   snapshot reader sees half the file, as if a
//                            reload raced a partially written snapshot
//   serve.slow_score         the fused rank kernel stalls past the
//                            request deadline (only fires when a request
//                            carries a budget) -> partial result or
//                            DeadlineExceeded, breaker food
//
// Pipeline points (src/pipeline/):
//   wal.torn_write           a WAL commit persists only a mid-frame prefix
//                            of the batch and poisons the writer (recovery
//                            re-opens, truncates the torn tail)
//   wal.short_read           WAL recovery sees a truncated segment image
//   wal.bit_flip             WAL recovery sees one flipped payload bit
//                            (CRC mismatch -> record skipped + counted)
//   wal.enospc               a WAL commit fails as ResourceExhausted with
//                            nothing written (full disk); the writer is
//                            poisoned and owners that cannot restore
//                            durability degrade to serving-only
//   publish.torn_rename      the publisher's rotate step leaves a torn
//                            file under the final snap- name (store falls
//                            back; the bounded retry renames over it)

#ifndef LAYERGCN_UTIL_FAULT_INJECTION_H_
#define LAYERGCN_UTIL_FAULT_INJECTION_H_

#include <string>
#include <vector>

namespace layergcn::util::fault {

/// Arms `point` to fire on its `trigger_on_hit`-th Fire() call (1-based),
/// then disarm. Re-arming resets the hit count.
void Arm(const std::string& point, int trigger_on_hit = 1);

/// Disarms `point` (no-op if not armed).
void Disarm(const std::string& point);

/// Disarms everything and clears hit counts (test isolation). Also
/// re-enables env arming for the next Fire() if the env was never read.
void DisarmAll();

/// Called by production code at a fault point. Counts the hit; returns
/// true exactly when the armed trigger count is reached. Reads
/// LAYERGCN_FAULT on first use. Thread-safe.
bool Fire(const std::string& point);

/// Number of Fire() calls seen by `point` since the last (re-)arm or
/// DisarmAll (armed or not — probes count either way once the point has
/// been touched).
int64_t HitCount(const std::string& point);

/// True if any point is currently armed.
bool AnyArmed();

/// Names of currently armed points (diagnostics).
std::vector<std::string> ArmedPoints();

}  // namespace layergcn::util::fault

#endif  // LAYERGCN_UTIL_FAULT_INJECTION_H_
