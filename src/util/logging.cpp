#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace layergcn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (level < g_level.load()) return;
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  LogMessage(LogLevel::kError, file, line,
             std::string("CHECK failed: ") + expr +
                 (msg.empty() ? "" : (" — " + msg)));
  std::abort();
}

}  // namespace layergcn::util
