#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <ostream>
#include <utility>

#include "obs/json.h"
#include "obs/obs.h"

namespace layergcn::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;  // guards the sink and stderr emission
LogSink g_sink;      // empty => stderr

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::string IsoTimestampUtc() {
  using namespace std::chrono;
  const system_clock::time_point now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

std::string LogRecordJson(const LogRecord& record) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("ts").String(record.timestamp);
  w.Key("level").String(LevelName(record.level));
  w.Key("file").String(record.file);
  w.Key("line").Int(record.line);
  w.Key("tid").Uint(record.thread_id);
  w.Key("msg").String(record.message);
  w.EndObject();
  return w.str();
}

LogSink MakeJsonLogSink(std::ostream* out) {
  return [out](const LogRecord& record) {
    *out << LogRecordJson(record) << "\n";
    out->flush();
  };
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (level < g_level.load()) return;
  LogRecord record;
  record.level = level;
  record.timestamp = IsoTimestampUtc();
  record.file = Basename(file);
  record.line = line;
  record.thread_id = obs::ThreadId();
  record.message = msg;

  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(record);
    return;
  }
  std::fprintf(stderr, "[%s %s %s:%d t%u] %s\n", record.timestamp.c_str(),
               LevelName(level), record.file, line, record.thread_id,
               record.message.c_str());
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& msg) {
  LogMessage(LogLevel::kError, file, line,
             std::string("CHECK failed: ") + expr +
                 (msg.empty() ? "" : (" — " + msg)));
  std::abort();
}

}  // namespace layergcn::util
