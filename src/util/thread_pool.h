// A small fixed-size thread pool with a ParallelFor convenience wrapper.
//
// Heavy kernels (SpMM, GEMM, top-K ranking) parallelize over row ranges.
// OpenMP is used inside the tensor kernels where available; this pool covers
// coarse-grained task parallelism (e.g. evaluating user chunks) and gives a
// deterministic work partition: ParallelFor always splits [begin, end) into
// the same contiguous chunks for a given worker count, so results that are
// reduced in chunk order are reproducible.

#ifndef LAYERGCN_UTIL_THREAD_POOL_H_
#define LAYERGCN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace layergcn::util {

/// Fixed-size worker pool.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>= 1). Defaults to the hardware
  /// concurrency, floored at two so the parallel paths run everywhere.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide shared pool. Sized by the LAYERGCN_NUM_THREADS
  /// environment variable when set (>= 1), else the hardware concurrency.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  int64_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// Runs body(i) for every i in [begin, end), split into contiguous chunks
/// across the pool. Blocks until complete. `body` must be safe to call
/// concurrently for distinct i. When called from inside a pool worker the
/// loop runs inline (nested waits on the same pool would deadlock).
void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

/// ParallelFor on the global pool.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& body);

/// Range-based variant for kernels that keep per-range scratch: splits
/// [begin, end) into at most num_threads() contiguous ranges and runs
/// body(lo, hi) for each. The partition is deterministic for a given worker
/// count, and each range is handled by a single invocation, so `body` can
/// allocate scratch once and reuse it across the range. Runs inline when
/// called from inside a pool worker.
void ParallelForRanges(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int64_t, int64_t)>& body);

/// ParallelForRanges on the global pool.
void ParallelForRanges(int64_t begin, int64_t end,
                       const std::function<void(int64_t, int64_t)>& body);

/// True on threads that live inside any ThreadPool. Parallel primitives
/// check it to run nested calls inline (a worker waiting on its own pool
/// would deadlock).
bool InPoolWorker();

}  // namespace layergcn::util

#endif  // LAYERGCN_UTIL_THREAD_POOL_H_
