// Minimal leveled logging and check macros.
//
// Each stderr line carries an ISO-8601 UTC timestamp and the small dense
// obs thread id:
//
//   [2026-08-07T12:34:56.789Z INFO trainer.cpp:97 t0] LayerGCN epoch 3 ...
//
// An optional sink installed with SetLogSink() replaces the stderr writer
// (e.g. MakeJsonLogSink streams structured JSONL); LOG call sites are
// unaffected either way.
//
// LAYERGCN_CHECK is used for programmer-error invariants in both debug and
// release builds (the library is research infrastructure: failing loudly on
// a shape mismatch beats silently producing garbage metrics).

#ifndef LAYERGCN_UTIL_LOGGING_H_
#define LAYERGCN_UTIL_LOGGING_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>

namespace layergcn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// One log call, as handed to sinks.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string timestamp;  // ISO-8601 UTC with milliseconds
  const char* file = "";  // basename of the source file
  int line = 0;
  uint32_t thread_id = 0;  // obs::ThreadId()
  std::string message;
};

/// Receives every record that passes the level filter.
using LogSink = std::function<void(const LogRecord&)>;

/// Installs `sink` in place of the default stderr writer; pass nullptr to
/// restore stderr. Thread-safe.
void SetLogSink(LogSink sink);

/// A sink that writes one JSON object per record to `*out` (which must
/// outlive the sink), e.g. SetLogSink(MakeJsonLogSink(&log_file)).
LogSink MakeJsonLogSink(std::ostream* out);

/// Renders a record as its JSON line (exposed for tests).
std::string LogRecordJson(const LogRecord& record);

/// Emits one log line (thread-safe).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

/// Terminates the process after logging `msg` with source location.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& msg);

namespace internal {

// Stream collector so call sites can write LOG(...) << a << b;
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream ss_;
};

class CheckStream {
 public:
  CheckStream(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckStream() { CheckFailed(file_, line_, expr_, ss_.str()); }
  template <typename T>
  CheckStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream ss_;
};

}  // namespace internal
}  // namespace layergcn::util

#define LAYERGCN_LOG(level)                                              \
  ::layergcn::util::internal::LogStream(::layergcn::util::LogLevel::level, \
                                        __FILE__, __LINE__)

#define LAYERGCN_CHECK(cond)                                       \
  if (cond) {                                                      \
  } else                                                           \
    ::layergcn::util::internal::CheckStream(__FILE__, __LINE__, #cond)

#define LAYERGCN_CHECK_EQ(a, b) LAYERGCN_CHECK((a) == (b))
#define LAYERGCN_CHECK_NE(a, b) LAYERGCN_CHECK((a) != (b))
#define LAYERGCN_CHECK_LT(a, b) LAYERGCN_CHECK((a) < (b))
#define LAYERGCN_CHECK_LE(a, b) LAYERGCN_CHECK((a) <= (b))
#define LAYERGCN_CHECK_GT(a, b) LAYERGCN_CHECK((a) > (b))
#define LAYERGCN_CHECK_GE(a, b) LAYERGCN_CHECK((a) >= (b))

#endif  // LAYERGCN_UTIL_LOGGING_H_
