// Sparse matrices in COO and CSR form, plus the graph-convolution kernels.
//
// The graph convolution ÂX (paper Eqs. 2, 6, 13) is an SpMM between the
// (re-)normalized adjacency and the dense embedding table. CSR keeps the
// per-row neighbor lists contiguous, so SpMM parallelizes over output rows
// with no write conflicts. Since Â is symmetric for the bipartite user-item
// graph, the SpMM backward pass reuses the same matrix (ÂᵀG = ÂG), but a
// general Transpose() is provided for non-symmetric operands.

#ifndef LAYERGCN_SPARSE_CSR_MATRIX_H_
#define LAYERGCN_SPARSE_CSR_MATRIX_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/matrix.h"

namespace layergcn::sparse {

/// One coordinate-format entry.
struct CooEntry {
  int32_t row = 0;
  int32_t col = 0;
  float value = 0.f;
};

/// Coordinate-format sparse matrix used during construction.
struct CooMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<CooEntry> entries;
};

/// Compressed-sparse-row matrix. Immutable through the read API; Rebuild()
/// reconstructs in place for per-epoch reuse without reallocating.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Builds from COO. Duplicate (row, col) pairs are coalesced by summing
  /// their values. Entries may be in any order.
  static CsrMatrix FromCoo(const CooMatrix& coo);

  /// In-place rebuild for callers that reconstruct the matrix every epoch
  /// (DegreeDrop adjacency resampling): resizes the three arrays — reusing
  /// their capacity, so steady-state rebuilds allocate nothing — and hands
  /// them to `fill`, which must leave a valid CSR: row_ptr[0] == 0,
  /// non-decreasing, row_ptr[rows] == nnz, and strictly ascending column
  /// indices within each row.
  void Rebuild(int64_t rows, int64_t cols, int64_t nnz,
               const std::function<void(int64_t* row_ptr, int32_t* col_idx,
                                        float* values)>& fill);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Returns the value at (r, c), or 0 if the entry is absent. O(log deg).
  float At(int64_t r, int64_t c) const;

  /// Number of stored entries in row r.
  int64_t RowNnz(int64_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// out = this * dense. dense.rows() must equal cols(). Parallel over rows.
  tensor::Matrix Multiply(const tensor::Matrix& dense) const;

  /// Returns the transposed matrix.
  CsrMatrix Transpose() const;

  /// Returns the vector of row sums (out-degrees when values are 1).
  std::vector<double> RowSums() const;

  /// True if the matrix equals its transpose (same sparsity and values).
  bool IsSymmetric(float tol = 0.f) const;

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<int64_t> row_ptr_;   // size rows_+1
  std::vector<int32_t> col_idx_;   // size nnz
  std::vector<float> values_;      // size nnz
};

/// Returns D^{-1/2} A D^{-1/2} where D is the diagonal degree matrix of A
/// computed from its row sums (paper's re-normalization; with no self-loops
/// for the LightGCN/LayerGCN transition matrix, with self-loops when the
/// caller has already added I to A). Zero-degree rows/columns produce zero
/// scaling (isolated nodes simply stop propagating, matching the behavior
/// of the reference implementations).
CsrMatrix SymmetricNormalize(const CooMatrix& adjacency);

}  // namespace layergcn::sparse

#endif  // LAYERGCN_SPARSE_CSR_MATRIX_H_
