#include "sparse/csr_matrix.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace layergcn::sparse {

CsrMatrix CsrMatrix::FromCoo(const CooMatrix& coo) {
  CsrMatrix out;
  out.rows_ = coo.rows;
  out.cols_ = coo.cols;
  out.row_ptr_.assign(static_cast<size_t>(coo.rows) + 1, 0);

  std::vector<CooEntry> entries = coo.entries;
  for (const CooEntry& e : entries) {
    LAYERGCN_CHECK(e.row >= 0 && e.row < coo.rows && e.col >= 0 &&
                   e.col < coo.cols)
        << "COO entry (" << e.row << "," << e.col << ") out of " << coo.rows
        << "x" << coo.cols;
  }
  std::sort(entries.begin(), entries.end(),
            [](const CooEntry& a, const CooEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  // Coalesce duplicates while filling CSR arrays.
  out.col_idx_.reserve(entries.size());
  out.values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    const int32_t r = entries[i].row;
    const int32_t c = entries[i].col;
    float v = 0.f;
    while (i < entries.size() && entries[i].row == r && entries[i].col == c) {
      v += entries[i].value;
      ++i;
    }
    out.col_idx_.push_back(c);
    out.values_.push_back(v);
    ++out.row_ptr_[static_cast<size_t>(r) + 1];
  }
  for (size_t r = 0; r < static_cast<size_t>(coo.rows); ++r) {
    out.row_ptr_[r + 1] += out.row_ptr_[r];
  }
  return out;
}

void CsrMatrix::Rebuild(
    int64_t rows, int64_t cols, int64_t nnz,
    const std::function<void(int64_t* row_ptr, int32_t* col_idx,
                             float* values)>& fill) {
  LAYERGCN_CHECK(rows >= 0 && cols >= 0 && nnz >= 0);
  rows_ = rows;
  cols_ = cols;
  row_ptr_.resize(static_cast<size_t>(rows) + 1);
  col_idx_.resize(static_cast<size_t>(nnz));
  values_.resize(static_cast<size_t>(nnz));
  fill(row_ptr_.data(), col_idx_.data(), values_.data());
  LAYERGCN_CHECK_EQ(row_ptr_.front(), 0);
  LAYERGCN_CHECK_EQ(row_ptr_.back(), nnz);
}

float CsrMatrix::At(int64_t r, int64_t c) const {
  LAYERGCN_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const auto begin = col_idx_.begin() + row_ptr_[r];
  const auto end = col_idx_.begin() + row_ptr_[r + 1];
  const auto it = std::lower_bound(begin, end, static_cast<int32_t>(c));
  if (it == end || *it != c) return 0.f;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

tensor::Matrix CsrMatrix::Multiply(const tensor::Matrix& dense) const {
  LAYERGCN_CHECK_EQ(cols_, dense.rows())
      << "SpMM dimension mismatch: " << rows_ << "x" << cols_ << " * "
      << dense.rows() << "x" << dense.cols();
  tensor::Matrix out(rows_, dense.cols());
  const int64_t t = dense.cols();
  OBS_SPAN("spmm");
  OBS_COUNT("spmm.calls", 1);
  OBS_COUNT("spmm.nnz_processed", nnz());
  OBS_COUNT("spmm.flops", 2 * nnz() * t);
  const auto run_rows = [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      float* dst = out.row(r);
      for (int64_t p = row_ptr_[static_cast<size_t>(r)];
           p < row_ptr_[static_cast<size_t>(r) + 1]; ++p) {
        const float w = values_[static_cast<size_t>(p)];
        const float* src = dense.row(col_idx_[static_cast<size_t>(p)]);
#pragma omp simd
        for (int64_t c = 0; c < t; ++c) dst[c] += w * src[c];
      }
    }
  };

  // Parallelize over nnz-balanced row ranges on the shared thread pool
  // (output rows are disjoint, so there are no write conflicts and the
  // result is independent of the worker count). row_ptr_ is the cumulative
  // nnz, so balanced boundaries come from a lower_bound per range.
  util::ThreadPool& pool = *util::parallel::ComputePool();
  const int64_t ranges = std::min<int64_t>(pool.num_threads(), rows_);
  if (ranges <= 1 || nnz() * t < 131072) {
    run_rows(0, rows_);
    return out;
  }
  std::vector<int64_t> bounds(static_cast<size_t>(ranges) + 1, 0);
  bounds[static_cast<size_t>(ranges)] = rows_;
  for (int64_t i = 1; i < ranges; ++i) {
    const int64_t target = nnz() * i / ranges;
    const auto it =
        std::lower_bound(row_ptr_.begin(), row_ptr_.end(), target);
    const int64_t row =
        std::min<int64_t>(it - row_ptr_.begin(), rows_);
    bounds[static_cast<size_t>(i)] =
        std::max(row, bounds[static_cast<size_t>(i) - 1]);
  }
  util::ParallelFor(&pool, 0, ranges, [&](int64_t i) {
    run_rows(bounds[static_cast<size_t>(i)], bounds[static_cast<size_t>(i) + 1]);
  });
  return out;
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  out.col_idx_.resize(values_.size());
  out.values_.resize(values_.size());

  // Counting sort by column.
  for (int32_t c : col_idx_) ++out.row_ptr_[static_cast<size_t>(c) + 1];
  for (size_t c = 0; c < static_cast<size_t>(cols_); ++c) {
    out.row_ptr_[c + 1] += out.row_ptr_[c];
  }
  std::vector<int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const int32_t c = col_idx_[static_cast<size_t>(p)];
      const int64_t slot = cursor[static_cast<size_t>(c)]++;
      out.col_idx_[static_cast<size_t>(slot)] = static_cast<int32_t>(r);
      out.values_[static_cast<size_t>(slot)] = values_[static_cast<size_t>(p)];
    }
  }
  return out;
}

std::vector<double> CsrMatrix::RowSums() const {
  std::vector<double> sums(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      sums[static_cast<size_t>(r)] += values_[static_cast<size_t>(p)];
    }
  }
  return sums;
}

bool CsrMatrix::IsSymmetric(float tol) const {
  if (rows_ != cols_) return false;
  const CsrMatrix t = Transpose();
  if (t.col_idx_ != col_idx_ || t.row_ptr_ != row_ptr_) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (std::fabs(values_[i] - t.values_[i]) > tol) return false;
  }
  return true;
}

CsrMatrix SymmetricNormalize(const CooMatrix& adjacency) {
  // Degrees from row sums of |entries| (values are weights; for 0/1
  // adjacency this is the node degree).
  std::vector<double> degree(static_cast<size_t>(adjacency.rows), 0.0);
  std::vector<double> col_degree(static_cast<size_t>(adjacency.cols), 0.0);
  for (const CooEntry& e : adjacency.entries) {
    degree[static_cast<size_t>(e.row)] += e.value;
    col_degree[static_cast<size_t>(e.col)] += e.value;
  }
  CooMatrix scaled;
  scaled.rows = adjacency.rows;
  scaled.cols = adjacency.cols;
  scaled.entries.reserve(adjacency.entries.size());
  for (const CooEntry& e : adjacency.entries) {
    const double dr = degree[static_cast<size_t>(e.row)];
    const double dc = col_degree[static_cast<size_t>(e.col)];
    float v = 0.f;
    if (dr > 0.0 && dc > 0.0) {
      v = static_cast<float>(e.value / (std::sqrt(dr) * std::sqrt(dc)));
    }
    scaled.entries.push_back({e.row, e.col, v});
  }
  return CsrMatrix::FromCoo(scaled);
}

}  // namespace layergcn::sparse
