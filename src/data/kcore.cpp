#include "data/kcore.h"

#include <unordered_map>

#include "util/logging.h"

namespace layergcn::data {

std::vector<Interaction> KCoreFilter(std::vector<Interaction> interactions,
                                     int user_k, int item_k) {
  LAYERGCN_CHECK(user_k >= 0 && item_k >= 0);
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<int32_t, int> udeg, ideg;
    for (const Interaction& x : interactions) {
      ++udeg[x.user];
      ++ideg[x.item];
    }
    std::vector<Interaction> kept;
    kept.reserve(interactions.size());
    for (const Interaction& x : interactions) {
      if (udeg[x.user] >= user_k && ideg[x.item] >= item_k) {
        kept.push_back(x);
      }
    }
    if (kept.size() != interactions.size()) changed = true;
    interactions = std::move(kept);
  }
  return interactions;
}

std::vector<Interaction> CompactIds(const std::vector<Interaction>& in,
                                    int32_t* num_users, int32_t* num_items) {
  std::unordered_map<int32_t, int32_t> umap, imap;
  std::vector<Interaction> out;
  out.reserve(in.size());
  for (const Interaction& x : in) {
    auto [uit, unew] = umap.try_emplace(
        x.user, static_cast<int32_t>(umap.size()));
    auto [iit, inew] = imap.try_emplace(
        x.item, static_cast<int32_t>(imap.size()));
    (void)unew;
    (void)inew;
    out.push_back({uit->second, iit->second, x.timestamp});
  }
  *num_users = static_cast<int32_t>(umap.size());
  *num_items = static_cast<int32_t>(imap.size());
  return out;
}

}  // namespace layergcn::data
