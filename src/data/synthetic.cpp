#include "data/synthetic.h"

#include <algorithm>
#include <unordered_set>

#include "data/split.h"
#include "tensor/ops.h"
#include "util/discrete_distribution.h"
#include "util/logging.h"
#include "util/rng.h"

namespace layergcn::data {
namespace {

// Assigns each of `n` entities a cluster id in [0, clusters), round-robin
// over a shuffled order so cluster sizes are balanced but membership is
// random.
std::vector<int> AssignClusters(int64_t n, int clusters, util::Rng* rng) {
  std::vector<int> ids(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    ids[static_cast<size_t>(i)] = static_cast<int>(i % clusters);
  }
  rng->Shuffle(&ids);
  return ids;
}

}  // namespace

std::vector<Interaction> GenerateInteractions(const SyntheticConfig& config,
                                              uint64_t seed) {
  return GenerateInteractionsWithClusters(config, seed).interactions;
}

SyntheticOutput GenerateInteractionsWithClusters(const SyntheticConfig& config,
                                                 uint64_t seed) {
  LAYERGCN_CHECK_GT(config.num_users, 0);
  LAYERGCN_CHECK_GT(config.num_items, 0);
  LAYERGCN_CHECK_GT(config.num_clusters, 0);
  LAYERGCN_CHECK(config.noise_fraction >= 0.0 && config.noise_fraction <= 1.0);
  util::Rng rng(seed);

  // Cluster memberships.
  const std::vector<int> user_cluster =
      AssignClusters(config.num_users, config.num_clusters, &rng);
  const std::vector<int> item_cluster =
      AssignClusters(config.num_items, config.num_clusters, &rng);

  // Per-cluster item lists.
  std::vector<std::vector<int32_t>> cluster_items(
      static_cast<size_t>(config.num_clusters));
  for (int32_t i = 0; i < config.num_items; ++i) {
    cluster_items[static_cast<size_t>(item_cluster[static_cast<size_t>(i)])]
        .push_back(i);
  }

  // User activity: Zipf weights over a shuffled user order, so user id does
  // not correlate with activity.
  std::vector<double> user_w =
      util::ZipfWeights(config.num_users, config.user_popularity_alpha);
  rng.Shuffle(&user_w);
  const util::DiscreteDistribution user_dist(user_w);

  // Global item popularity (used by the noise channel): Zipf over a shuffled
  // item order.
  std::vector<double> item_w =
      util::ZipfWeights(config.num_items, config.item_popularity_alpha);
  rng.Shuffle(&item_w);
  const util::DiscreteDistribution global_item_dist(item_w);

  // Within-cluster popularity: Zipf over the cluster's items ranked by their
  // global weight, so popular items are popular both globally and locally.
  std::vector<util::DiscreteDistribution> cluster_dist;
  cluster_dist.reserve(static_cast<size_t>(config.num_clusters));
  for (const auto& items : cluster_items) {
    if (items.empty()) {
      cluster_dist.emplace_back();
      continue;
    }
    std::vector<double> w;
    w.reserve(items.size());
    for (int32_t i : items) w.push_back(item_w[static_cast<size_t>(i)]);
    cluster_dist.emplace_back(w);
  }

  std::unordered_set<int64_t> seen;
  seen.reserve(static_cast<size_t>(config.num_interactions) * 2);
  std::vector<Interaction> out;
  out.reserve(static_cast<size_t>(config.num_interactions));

  constexpr int kMaxRetries = 64;
  int64_t failures = 0;
  while (static_cast<int64_t>(out.size()) < config.num_interactions) {
    bool placed = false;
    for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
      const int32_t u = static_cast<int32_t>(user_dist.Sample(&rng));
      int32_t item;
      if (rng.NextBernoulli(config.noise_fraction)) {
        // Natural noise: a globally popular item regardless of preference.
        item = static_cast<int32_t>(global_item_dist.Sample(&rng));
      } else {
        int c = user_cluster[static_cast<size_t>(u)];
        if (rng.NextBernoulli(config.cluster_mix)) {
          c = rng.NextInt(0, config.num_clusters);
        }
        const auto& items = cluster_items[static_cast<size_t>(c)];
        if (items.empty()) continue;
        item = items[static_cast<size_t>(
            cluster_dist[static_cast<size_t>(c)].Sample(&rng))];
      }
      const int64_t key =
          static_cast<int64_t>(u) * config.num_items + item;
      if (!seen.insert(key).second) continue;  // duplicate; retry
      const int64_t ts =
          static_cast<int64_t>(rng.NextBounded(
              static_cast<uint64_t>(config.time_span)));
      out.push_back({u, item, ts});
      placed = true;
      break;
    }
    if (!placed) {
      // The graph is saturating (few unseen pairs remain); give up on this
      // draw rather than looping forever.
      if (++failures > config.num_interactions) break;
    }
  }
  SyntheticOutput result;
  result.interactions = std::move(out);
  result.user_clusters = user_cluster;
  result.item_clusters = item_cluster;
  return result;
}

tensor::Matrix MakeClusterFeatures(const std::vector<int>& clusters,
                                   int num_clusters, int feature_dim,
                                   double noise, uint64_t seed) {
  LAYERGCN_CHECK_GT(num_clusters, 0);
  LAYERGCN_CHECK_GT(feature_dim, 0);
  util::Rng rng(seed);
  // One random unit prototype per cluster.
  tensor::Matrix prototypes(num_clusters, feature_dim);
  prototypes.GaussianInit(&rng, 1.f);
  prototypes = tensor::NormalizeRowsL2(prototypes);

  tensor::Matrix features(static_cast<int64_t>(clusters.size()), feature_dim);
  for (size_t r = 0; r < clusters.size(); ++r) {
    const int c = clusters[r];
    LAYERGCN_CHECK(c >= 0 && c < num_clusters) << "cluster id " << c;
    float* dst = features.row(static_cast<int64_t>(r));
    const float* proto = prototypes.row(c);
    for (int d = 0; d < feature_dim; ++d) {
      dst[d] = proto[d] +
               static_cast<float>(rng.NextGaussian() * noise);
    }
  }
  return features;
}

SyntheticConfig MoocLikeConfig(double scale) {
  SyntheticConfig c;
  c.name = "mooc";
  // Real MOOC: 82,535 users / 1,302 items / 458,453 interactions — a
  // start-up-platform pattern where users outnumber items ~60x and items
  // accumulate very high degrees. Scaled ~27x down.
  c.num_users = static_cast<int32_t>(3000 * scale);
  c.num_items = static_cast<int32_t>(200 * scale);
  c.num_interactions = static_cast<int64_t>(20000 * scale);
  c.num_clusters = 10;
  c.user_popularity_alpha = 0.6;
  c.item_popularity_alpha = 0.7;  // dense, flat-ish item degrees (Fig. 4)
  c.noise_fraction = 0.2;         // dense platforms accumulate more noise
  c.cluster_mix = 0.10;
  return c;
}

SyntheticConfig GamesLikeConfig(double scale) {
  SyntheticConfig c;
  c.name = "games";
  // Real Games: 50,677 users / 16,897 items / 454,529 interactions, 5-core.
  c.num_users = static_cast<int32_t>(2400 * scale);
  c.num_items = static_cast<int32_t>(800 * scale);
  c.num_interactions = static_cast<int64_t>(15000 * scale);
  c.num_clusters = 24;
  c.user_popularity_alpha = 0.8;
  c.item_popularity_alpha = 0.9;
  c.noise_fraction = 0.15;
  c.cluster_mix = 0.10;
  return c;
}

SyntheticConfig FoodLikeConfig(double scale) {
  SyntheticConfig c;
  c.name = "food";
  // Real Food: 115,144 users / 39,688 items / 1,025,169 interactions.
  c.num_users = static_cast<int32_t>(3200 * scale);
  c.num_items = static_cast<int32_t>(1100 * scale);
  c.num_interactions = static_cast<int64_t>(20000 * scale);
  c.num_clusters = 32;
  c.user_popularity_alpha = 0.8;
  c.item_popularity_alpha = 1.0;
  c.noise_fraction = 0.15;
  c.cluster_mix = 0.10;
  return c;
}

SyntheticConfig YelpLikeConfig(double scale) {
  SyntheticConfig c;
  c.name = "yelp";
  // Real Yelp: 99,010 users / 56,441 items / 2,762,088 interactions,
  // 10-core, heavily skewed item degrees (Fig. 4 right).
  c.num_users = static_cast<int32_t>(2800 * scale);
  c.num_items = static_cast<int32_t>(1600 * scale);
  c.num_interactions = static_cast<int64_t>(26000 * scale);
  c.num_clusters = 32;
  c.user_popularity_alpha = 0.9;
  c.item_popularity_alpha = 1.2;
  c.noise_fraction = 0.15;
  c.cluster_mix = 0.10;
  return c;
}

SyntheticConfig BenchmarkConfig(const std::string& name, double scale) {
  if (name == "mooc") return MoocLikeConfig(scale);
  if (name == "games") return GamesLikeConfig(scale);
  if (name == "food") return FoodLikeConfig(scale);
  if (name == "yelp") return YelpLikeConfig(scale);
  LAYERGCN_CHECK(false) << "unknown benchmark dataset: " << name;
  return {};
}

Dataset MakeBenchmarkDataset(const std::string& name, double scale,
                             uint64_t seed) {
  const SyntheticConfig config = BenchmarkConfig(name, scale);
  std::vector<Interaction> interactions = GenerateInteractions(config, seed);
  return ChronologicalSplitDataset(config.name, config.num_users,
                                   config.num_items, std::move(interactions));
}

std::vector<std::string> BenchmarkDatasetNames() {
  return {"mooc", "games", "food", "yelp"};
}

}  // namespace layergcn::data
