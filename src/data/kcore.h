// Iterative k-core filtering of interaction lists (paper §V-A: 5-core for
// the Amazon datasets, 10-core for Yelp).

#ifndef LAYERGCN_DATA_KCORE_H_
#define LAYERGCN_DATA_KCORE_H_

#include <vector>

#include "data/dataset.h"

namespace layergcn::data {

/// Repeatedly removes users with fewer than `user_k` interactions and items
/// with fewer than `item_k` interactions until a fixed point. Ids are NOT
/// remapped (use CompactIds for that).
std::vector<Interaction> KCoreFilter(std::vector<Interaction> interactions,
                                     int user_k, int item_k);

/// Remaps user and item ids to dense 0..n-1 ranges (ordered by first
/// appearance in the list) and reports the new universe sizes.
std::vector<Interaction> CompactIds(const std::vector<Interaction>& in,
                                    int32_t* num_users, int32_t* num_items);

}  // namespace layergcn::data

#endif  // LAYERGCN_DATA_KCORE_H_
