// Synthetic interaction generators calibrated to the paper's four datasets.
//
// The paper evaluates on MOOC, Amazon-Games, Amazon-Food and Yelp (Table I),
// none of which can be shipped here. These generators produce bipartite
// implicit-feedback graphs with the *topological* properties the paper's
// phenomena depend on:
//
//   * power-law (Zipf) user activity and item popularity, with the skew
//     exponent tuned per dataset (MOOC: few items with very high degree —
//     Fig. 4 left; Yelp: long-tailed item degrees — Fig. 4 right),
//   * latent preference clusters (users mostly interact within their
//     cluster), so collaborative filtering signal exists to be learned,
//   * a controllable "natural noise" fraction of off-cluster interactions —
//     the noise DegreeDrop is designed to attenuate (§III-B1),
//   * timestamps for chronological 70/10/20 splitting (§V-A).
//
// Scaled-down user/item/interaction counts keep experiments tractable on a
// 2-core CPU box; the `scale` parameter grows every preset proportionally.

#ifndef LAYERGCN_DATA_SYNTHETIC_H_
#define LAYERGCN_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tensor/matrix.h"

namespace layergcn::data {

/// Tunable parameters of the generator.
struct SyntheticConfig {
  std::string name = "synthetic";
  int32_t num_users = 1000;
  int32_t num_items = 500;
  int64_t num_interactions = 10000;

  /// Number of latent preference clusters.
  int num_clusters = 16;
  /// Zipf exponent of user activity (0 = uniform).
  double user_popularity_alpha = 0.8;
  /// Zipf exponent of item popularity within each cluster.
  double item_popularity_alpha = 1.0;
  /// Probability that an interaction ignores the user's cluster and picks a
  /// globally popular item instead ("natural noise", §I).
  double noise_fraction = 0.15;
  /// Probability that an in-preference interaction targets a random
  /// secondary cluster (interest diversity).
  double cluster_mix = 0.10;
  /// Timestamps are drawn uniformly from [0, time_span).
  int64_t time_span = 1000000;
};

/// Generates a deduplicated interaction list under `config`.
std::vector<Interaction> GenerateInteractions(const SyntheticConfig& config,
                                              uint64_t seed);

/// Generation output including the latent cluster assignments (needed to
/// synthesize correlated *content features* for the content-based
/// LayerGCN extension, paper §II-B).
struct SyntheticOutput {
  std::vector<Interaction> interactions;
  std::vector<int> user_clusters;  // size num_users
  std::vector<int> item_clusters;  // size num_items
};

/// Same generator, also returning the cluster assignments. Identical
/// interaction stream to GenerateInteractions for the same (config, seed).
SyntheticOutput GenerateInteractionsWithClusters(const SyntheticConfig& config,
                                                 uint64_t seed);

/// Synthesizes content features for entities with known clusters: each row
/// is that cluster's prototype vector plus N(0, noise²) perturbation, so
/// features correlate with preferences without revealing interactions.
tensor::Matrix MakeClusterFeatures(const std::vector<int>& clusters,
                                   int num_clusters, int feature_dim,
                                   double noise, uint64_t seed);

/// Preset calibrated to the MOOC dataset's shape: user count two orders of
/// magnitude above item count, dense item degrees (Table I row 1, Fig. 4).
SyntheticConfig MoocLikeConfig(double scale = 1.0);
/// Preset for Amazon Video Games: sparse, moderate item universe.
SyntheticConfig GamesLikeConfig(double scale = 1.0);
/// Preset for Amazon Grocery & Gourmet Food: larger and sparser than Games.
SyntheticConfig FoodLikeConfig(double scale = 1.0);
/// Preset for Yelp: largest item universe, heavily skewed item degrees.
SyntheticConfig YelpLikeConfig(double scale = 1.0);

/// Returns the preset for a dataset name in {"mooc", "games", "food",
/// "yelp"}; aborts on unknown names.
SyntheticConfig BenchmarkConfig(const std::string& name, double scale = 1.0);

/// End-to-end: generate → chronological 70/10/20 split → Dataset.
Dataset MakeBenchmarkDataset(const std::string& name, double scale,
                             uint64_t seed);

/// The four paper datasets in Table I order: mooc, games, food, yelp.
std::vector<std::string> BenchmarkDatasetNames();

}  // namespace layergcn::data

#endif  // LAYERGCN_DATA_SYNTHETIC_H_
