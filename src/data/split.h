// Chronological 70/10/20 splitting (paper §V-A, following Ji et al. [46]).

#ifndef LAYERGCN_DATA_SPLIT_H_
#define LAYERGCN_DATA_SPLIT_H_

#include <vector>

#include "data/dataset.h"

namespace layergcn::data {

/// Result of a three-way split.
struct Split {
  std::vector<Interaction> train;
  std::vector<Interaction> valid;
  std::vector<Interaction> test;
};

/// Sorts all interactions globally by (timestamp, user, item) and cuts the
/// first `train_frac` into train, the next `valid_frac` into valid, and the
/// remainder into test. Fractions must be positive and sum to < 1 for a
/// non-empty test set. The secondary (user, item) key makes ties
/// deterministic.
Split ChronologicalSplit(std::vector<Interaction> interactions,
                         double train_frac = 0.7, double valid_frac = 0.1);

/// Convenience: split + BuildDataset in one call.
Dataset ChronologicalSplitDataset(std::string name, int32_t num_users,
                                  int32_t num_items,
                                  std::vector<Interaction> interactions,
                                  double train_frac = 0.7,
                                  double valid_frac = 0.1);

/// Leave-one-out split — the other protocol common in the CF literature
/// (e.g. NCF, UltraGCN's ablations): per user, the chronologically last
/// interaction goes to test and the second-to-last to validation; the rest
/// train. Users with fewer than 3 interactions contribute everything to
/// training. Ties on timestamps break by (user, item) like
/// ChronologicalSplit.
Split LeaveOneOutSplit(std::vector<Interaction> interactions);

/// Convenience: leave-one-out split + BuildDataset.
Dataset LeaveOneOutDataset(std::string name, int32_t num_users,
                           int32_t num_items,
                           std::vector<Interaction> interactions);

}  // namespace layergcn::data

#endif  // LAYERGCN_DATA_SPLIT_H_
