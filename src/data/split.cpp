#include "data/split.h"

#include <algorithm>

#include "util/logging.h"

namespace layergcn::data {

Split ChronologicalSplit(std::vector<Interaction> interactions,
                         double train_frac, double valid_frac) {
  LAYERGCN_CHECK(train_frac > 0.0 && valid_frac > 0.0 &&
                 train_frac + valid_frac < 1.0)
      << "bad split fractions " << train_frac << "/" << valid_frac;
  std::sort(interactions.begin(), interactions.end(),
            [](const Interaction& a, const Interaction& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              if (a.user != b.user) return a.user < b.user;
              return a.item < b.item;
            });
  const size_t n = interactions.size();
  const size_t n_train = static_cast<size_t>(train_frac * static_cast<double>(n));
  const size_t n_valid =
      static_cast<size_t>(valid_frac * static_cast<double>(n));
  Split out;
  out.train.assign(interactions.begin(),
                   interactions.begin() + static_cast<int64_t>(n_train));
  out.valid.assign(interactions.begin() + static_cast<int64_t>(n_train),
                   interactions.begin() +
                       static_cast<int64_t>(n_train + n_valid));
  out.test.assign(interactions.begin() +
                      static_cast<int64_t>(n_train + n_valid),
                  interactions.end());
  return out;
}

Dataset ChronologicalSplitDataset(std::string name, int32_t num_users,
                                  int32_t num_items,
                                  std::vector<Interaction> interactions,
                                  double train_frac, double valid_frac) {
  Split s = ChronologicalSplit(std::move(interactions), train_frac, valid_frac);
  return BuildDataset(std::move(name), num_users, num_items, s.train, s.valid,
                      s.test);
}

Split LeaveOneOutSplit(std::vector<Interaction> interactions) {
  std::sort(interactions.begin(), interactions.end(),
            [](const Interaction& a, const Interaction& b) {
              if (a.user != b.user) return a.user < b.user;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.item < b.item;
            });
  Split out;
  size_t begin = 0;
  while (begin < interactions.size()) {
    size_t end = begin;
    while (end < interactions.size() &&
           interactions[end].user == interactions[begin].user) {
      ++end;
    }
    const size_t count = end - begin;
    if (count >= 3) {
      out.train.insert(out.train.end(),
                       interactions.begin() + static_cast<int64_t>(begin),
                       interactions.begin() + static_cast<int64_t>(end - 2));
      out.valid.push_back(interactions[end - 2]);
      out.test.push_back(interactions[end - 1]);
    } else {
      out.train.insert(out.train.end(),
                       interactions.begin() + static_cast<int64_t>(begin),
                       interactions.begin() + static_cast<int64_t>(end));
    }
    begin = end;
  }
  return out;
}

Dataset LeaveOneOutDataset(std::string name, int32_t num_users,
                           int32_t num_items,
                           std::vector<Interaction> interactions) {
  Split s = LeaveOneOutSplit(std::move(interactions));
  return BuildDataset(std::move(name), num_users, num_items, s.train, s.valid,
                      s.test);
}

}  // namespace layergcn::data
