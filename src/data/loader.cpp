#include "data/loader.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::data {

std::vector<Interaction> LoadInteractions(const std::string& path,
                                          const LoaderOptions& options,
                                          int32_t* num_users,
                                          int32_t* num_items) {
  std::ifstream in(path);
  LAYERGCN_CHECK(in.good()) << "cannot open " << path;
  std::unordered_map<std::string, int32_t> umap, imap;
  std::vector<Interaction> out;
  std::string line;
  int64_t line_no = 0;
  const int needed = std::max(
      {options.user_column, options.item_column, options.timestamp_column});
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no <= options.skip_lines) continue;
    if (util::Trim(line).empty()) continue;
    const std::vector<std::string> fields =
        util::Split(line, options.delimiter);
    LAYERGCN_CHECK_GT(static_cast<int>(fields.size()), needed)
        << path << ":" << line_no << ": expected at least " << needed + 1
        << " fields";
    const std::string user(util::Trim(fields[static_cast<size_t>(
        options.user_column)]));
    const std::string item(util::Trim(fields[static_cast<size_t>(
        options.item_column)]));
    int64_t ts = line_no;  // fall back to row order
    if (options.timestamp_column >= 0) {
      double ts_value = 0.0;
      LAYERGCN_CHECK(util::ParseDouble(
          fields[static_cast<size_t>(options.timestamp_column)], &ts_value))
          << path << ":" << line_no << ": bad timestamp";
      ts = static_cast<int64_t>(ts_value);
    }
    const auto [uit, _u] =
        umap.try_emplace(user, static_cast<int32_t>(umap.size()));
    const auto [iit, _i] =
        imap.try_emplace(item, static_cast<int32_t>(imap.size()));
    out.push_back({uit->second, iit->second, ts});
  }
  *num_users = static_cast<int32_t>(umap.size());
  *num_items = static_cast<int32_t>(imap.size());
  return out;
}

void SaveInteractions(const std::string& path,
                      const std::vector<Interaction>& interactions) {
  std::ofstream out(path);
  LAYERGCN_CHECK(out.good()) << "cannot write " << path;
  for (const Interaction& x : interactions) {
    out << x.user << "," << x.item << "," << x.timestamp << "\n";
  }
}

}  // namespace layergcn::data
