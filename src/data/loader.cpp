#include "data/loader.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>
#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::data {

namespace {

// Line numbers listed in the skipped-rows warning / error message.
constexpr size_t kMaxReportedLines = 10;

std::string FormatLineNumbers(const std::vector<int64_t>& lines,
                              int64_t total) {
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += ", ";
    out += util::StrFormat("%lld", static_cast<long long>(lines[i]));
  }
  if (total > static_cast<int64_t>(lines.size())) out += ", ...";
  return out;
}

}  // namespace

util::StatusOr<std::vector<Interaction>> LoadInteractionsOr(
    const std::string& path, const LoaderOptions& options,
    int32_t* num_users, int32_t* num_items, LoadStats* stats) {
  std::ifstream in(path);
  if (!in.good()) {
    return util::NotFoundError(util::StrFormat("cannot open %s",
                                               path.c_str()));
  }
  LoadStats local_stats;
  LoadStats* st = stats != nullptr ? stats : &local_stats;
  *st = LoadStats{};

  // Records one malformed row; non-OK once the tolerance budget is spent.
  const auto malformed = [&](int64_t line_no,
                             const std::string& why) -> util::Status {
    ++st->rows_malformed;
    if (st->malformed_lines.size() < kMaxReportedLines) {
      st->malformed_lines.push_back(line_no);
    }
    if (st->rows_malformed > options.max_malformed) {
      return util::InvalidArgumentError(util::StrFormat(
          "%s: %lld malformed row(s) exceed max_malformed=%lld; last: %s",
          path.c_str(), static_cast<long long>(st->rows_malformed),
          static_cast<long long>(options.max_malformed), why.c_str()));
    }
    return util::OkStatus();
  };

  std::unordered_map<std::string, int32_t> umap, imap;
  std::vector<Interaction> out;
  std::string line;
  int64_t line_no = 0;
  const int needed = std::max(
      {options.user_column, options.item_column, options.timestamp_column});
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no <= options.skip_lines) continue;
    if (util::Trim(line).empty()) continue;
    ++st->rows_total;
    const std::vector<std::string> fields =
        util::Split(line, options.delimiter);
    if (static_cast<int>(fields.size()) <= needed) {
      LAYERGCN_RETURN_IF_ERROR(malformed(
          line_no,
          util::StrFormat("%s:%lld: expected at least %d fields",
                          path.c_str(), static_cast<long long>(line_no),
                          needed + 1)));
      continue;
    }
    int64_t ts = line_no;  // fall back to row order
    if (options.timestamp_column >= 0) {
      double ts_value = 0.0;
      if (!util::ParseDouble(
              fields[static_cast<size_t>(options.timestamp_column)],
              &ts_value)) {
        LAYERGCN_RETURN_IF_ERROR(malformed(
            line_no,
            util::StrFormat("%s:%lld: bad timestamp", path.c_str(),
                            static_cast<long long>(line_no))));
        continue;
      }
      ts = static_cast<int64_t>(ts_value);
    }
    const std::string user(util::Trim(fields[static_cast<size_t>(
        options.user_column)]));
    const std::string item(util::Trim(fields[static_cast<size_t>(
        options.item_column)]));
    const auto [uit, _u] =
        umap.try_emplace(user, static_cast<int32_t>(umap.size()));
    const auto [iit, _i] =
        imap.try_emplace(item, static_cast<int32_t>(imap.size()));
    out.push_back({uit->second, iit->second, ts});
    ++st->rows_loaded;
  }
  if (st->rows_malformed > 0) {
    LAYERGCN_LOG(kWarning) << path << ": skipped " << st->rows_malformed
                           << " malformed row(s) (lines "
                           << FormatLineNumbers(st->malformed_lines,
                                                st->rows_malformed)
                           << ")";
  }
  *num_users = static_cast<int32_t>(umap.size());
  *num_items = static_cast<int32_t>(imap.size());
  return out;
}

std::vector<Interaction> LoadInteractions(const std::string& path,
                                          const LoaderOptions& options,
                                          int32_t* num_users,
                                          int32_t* num_items) {
  util::StatusOr<std::vector<Interaction>> result =
      LoadInteractionsOr(path, options, num_users, num_items);
  LAYERGCN_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

void SaveInteractions(const std::string& path,
                      const std::vector<Interaction>& interactions) {
  std::ofstream out(path);
  LAYERGCN_CHECK(out.good()) << "cannot write " << path;
  for (const Interaction& x : interactions) {
    out << x.user << "," << x.item << "," << x.timestamp << "\n";
  }
}

}  // namespace layergcn::data
