#include "data/dataset.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::data {

int64_t Dataset::num_valid() const {
  int64_t n = 0;
  for (const auto& v : valid_items) n += static_cast<int64_t>(v.size());
  return n;
}

int64_t Dataset::num_test() const {
  int64_t n = 0;
  for (const auto& v : test_items) n += static_cast<int64_t>(v.size());
  return n;
}

double Dataset::SparsityPercent() const {
  const double cells =
      static_cast<double>(num_users) * static_cast<double>(num_items);
  if (cells == 0.0) return 100.0;
  return 100.0 * (1.0 - static_cast<double>(num_interactions()) / cells);
}

std::string Dataset::Summary() const {
  return util::StrFormat(
      "%s: %d users, %d items, %lld train / %lld valid / %lld test "
      "interactions, sparsity %.4f%%",
      name.c_str(), num_users, num_items,
      static_cast<long long>(num_train()),
      static_cast<long long>(num_valid()),
      static_cast<long long>(num_test()), SparsityPercent());
}

Dataset BuildDataset(std::string name, int32_t num_users, int32_t num_items,
                     const std::vector<Interaction>& train,
                     const std::vector<Interaction>& valid,
                     const std::vector<Interaction>& test) {
  Dataset ds;
  ds.name = std::move(name);
  ds.num_users = num_users;
  ds.num_items = num_items;

  ds.train.reserve(train.size());
  for (const Interaction& x : train) ds.train.emplace_back(x.user, x.item);
  std::sort(ds.train.begin(), ds.train.end());
  ds.train.erase(std::unique(ds.train.begin(), ds.train.end()),
                 ds.train.end());

  ds.train_graph = graph::BipartiteGraph(num_users, num_items, ds.train);

  // Cold-start filtering: a held-out interaction is kept only if both its
  // user and item occur in training (paper §V-A).
  auto fill = [&](const std::vector<Interaction>& src,
                  std::vector<std::vector<int32_t>>* items,
                  std::vector<int32_t>* users) {
    items->assign(static_cast<size_t>(num_users), {});
    for (const Interaction& x : src) {
      LAYERGCN_CHECK(x.user >= 0 && x.user < num_users);
      LAYERGCN_CHECK(x.item >= 0 && x.item < num_items);
      if (ds.train_graph.UserDegree(x.user) == 0) continue;
      if (ds.train_graph.ItemDegree(x.item) == 0) continue;
      // Ignore held-out pairs that also appear in training (already known).
      if (ds.train_graph.HasInteraction(x.user, x.item)) continue;
      (*items)[static_cast<size_t>(x.user)].push_back(x.item);
    }
    for (int32_t u = 0; u < num_users; ++u) {
      auto& v = (*items)[static_cast<size_t>(u)];
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
      if (!v.empty()) users->push_back(u);
    }
  };
  fill(valid, &ds.valid_items, &ds.valid_users);
  fill(test, &ds.test_items, &ds.test_users);
  return ds;
}

}  // namespace layergcn::data
