#include "data/statistics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/strings.h"

namespace layergcn::data {

DegreeStats ComputeDegreeStats(const std::vector<int32_t>& degrees) {
  DegreeStats s;
  if (degrees.empty()) return s;
  std::vector<int32_t> sorted = degrees;
  std::sort(sorted.begin(), sorted.end());
  s.count = static_cast<int64_t>(sorted.size());
  s.min = sorted.front();
  s.max = sorted.back();
  const double total =
      std::accumulate(sorted.begin(), sorted.end(), 0.0);
  s.mean = total / static_cast<double>(sorted.size());
  const size_t n = sorted.size();
  s.median = n % 2 == 1 ? sorted[n / 2]
                        : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  if (total > 0.0) {
    // Gini over the sorted sequence: G = (2 Σ_i i·x_i)/(n Σ x) − (n+1)/n,
    // with 1-based i over ascending x.
    double weighted = 0.0;
    for (size_t i = 0; i < n; ++i) {
      weighted += static_cast<double>(i + 1) * sorted[i];
    }
    s.gini = 2.0 * weighted / (static_cast<double>(n) * total) -
             (static_cast<double>(n) + 1.0) / static_cast<double>(n);
    // Share of interactions on the top 10% highest-degree nodes.
    const size_t top = std::max<size_t>(1, n / 10);
    double top_sum = 0.0;
    for (size_t i = n - top; i < n; ++i) top_sum += sorted[i];
    s.top10_share = top_sum / total;
  }
  return s;
}

std::vector<int64_t> LogDegreeHistogram(const std::vector<int32_t>& degrees,
                                        int64_t* zero_count) {
  *zero_count = 0;
  std::vector<int64_t> hist;
  for (int32_t d : degrees) {
    if (d <= 0) {
      ++*zero_count;
      continue;
    }
    const size_t bucket = static_cast<size_t>(
        std::floor(std::log2(static_cast<double>(d))));
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

std::string GraphStats::ToString() const {
  return util::StrFormat(
      "density %.5f | user degree mean %.2f median %.1f gini %.3f | "
      "item degree mean %.2f median %.1f gini %.3f top10-share %.2f",
      density, user_degrees.mean, user_degrees.median, user_degrees.gini,
      item_degrees.mean, item_degrees.median, item_degrees.gini,
      item_degrees.top10_share);
}

GraphStats ComputeGraphStats(const graph::BipartiteGraph& graph) {
  GraphStats s;
  s.user_degrees = ComputeDegreeStats(graph.user_degrees());
  s.item_degrees = ComputeDegreeStats(graph.item_degrees());
  const double cells = static_cast<double>(graph.num_users()) *
                       static_cast<double>(graph.num_items());
  s.density = cells > 0.0 ? static_cast<double>(graph.num_edges()) / cells
                          : 0.0;
  return s;
}

}  // namespace layergcn::data
