// Descriptive statistics of interaction graphs: degree distributions, skew
// measures, and train/test overlap — used by the dataset benches (Table I,
// Fig. 4) and for sanity-checking user-supplied data.

#ifndef LAYERGCN_DATA_STATISTICS_H_
#define LAYERGCN_DATA_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

namespace layergcn::data {

/// Summary statistics of a degree sequence.
struct DegreeStats {
  int64_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  int32_t min = 0;
  int32_t max = 0;
  /// Gini coefficient of the degree distribution in [0, 1]; 0 = perfectly
  /// uniform, →1 = all edges on one node. The paper's Fig. 4 contrast
  /// (MOOC flat vs Yelp skewed) shows up directly here.
  double gini = 0.0;
  /// Fraction of total interactions captured by the top 10% of nodes.
  double top10_share = 0.0;
};

/// Computes DegreeStats from a degree sequence. Empty input yields zeros.
DegreeStats ComputeDegreeStats(const std::vector<int32_t>& degrees);

/// Degree histogram with logarithmic buckets [1,2), [2,4), [4,8), ...;
/// out[i] is the node count in bucket i. Nodes of degree 0 are counted in
/// `zero_count`.
std::vector<int64_t> LogDegreeHistogram(const std::vector<int32_t>& degrees,
                                        int64_t* zero_count);

/// Full per-side statistics of a bipartite graph.
struct GraphStats {
  DegreeStats user_degrees;
  DegreeStats item_degrees;
  double density = 0.0;  // M / (N_U * N_I)

  std::string ToString() const;
};

/// Computes GraphStats for a training graph.
GraphStats ComputeGraphStats(const graph::BipartiteGraph& graph);

}  // namespace layergcn::data

#endif  // LAYERGCN_DATA_STATISTICS_H_
