// Interaction records and the split Dataset consumed by trainers/evaluators.

#ifndef LAYERGCN_DATA_DATASET_H_
#define LAYERGCN_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/bipartite_graph.h"

namespace layergcn::data {

/// One observed user-item interaction (implicit feedback) with a timestamp
/// used only for chronological splitting.
struct Interaction {
  int32_t user = 0;
  int32_t item = 0;
  int64_t timestamp = 0;
};

/// A fully prepared dataset: chronologically split interactions, the
/// training bipartite graph, and per-user ground-truth sets for validation
/// and testing (cold-start users/items already removed from the held-out
/// portions, per paper §V-A).
struct Dataset {
  std::string name;
  int32_t num_users = 0;
  int32_t num_items = 0;

  /// Training interactions as (user, item) pairs (deduplicated).
  std::vector<std::pair<int32_t, int32_t>> train;

  /// Ground truth: valid_items[u] / test_items[u] hold the held-out items of
  /// user u, sorted ascending; empty when the user has no held-out items.
  std::vector<std::vector<int32_t>> valid_items;
  std::vector<std::vector<int32_t>> test_items;

  /// Bipartite graph over the training interactions only.
  graph::BipartiteGraph train_graph;

  /// Users with at least one validation (resp. test) item.
  std::vector<int32_t> valid_users;
  std::vector<int32_t> test_users;

  int64_t num_train() const { return static_cast<int64_t>(train.size()); }
  int64_t num_valid() const;
  int64_t num_test() const;
  int64_t num_interactions() const {
    return num_train() + num_valid() + num_test();
  }

  /// 1 − |interactions| / (|U|·|I|), as percent — the Sparsity column of
  /// paper Table I.
  double SparsityPercent() const;

  /// One-line summary for logs.
  std::string Summary() const;
};

/// Assembles a Dataset from already-split interaction lists: builds the
/// training graph, drops valid/test interactions whose user or item is
/// cold-start (absent from training), and fills the ground-truth tables.
Dataset BuildDataset(std::string name, int32_t num_users, int32_t num_items,
                     const std::vector<Interaction>& train,
                     const std::vector<Interaction>& valid,
                     const std::vector<Interaction>& test);

}  // namespace layergcn::data

#endif  // LAYERGCN_DATA_DATASET_H_
