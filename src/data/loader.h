// Loading interaction tables from delimited text files.
//
// Accepts the common "user,item,timestamp" layout (e.g. exported MOOC /
// Amazon / Yelp dumps). Raw string ids are supported: non-numeric user/item
// fields are hashed into dense ids via CompactIds-style first-appearance
// mapping.

#ifndef LAYERGCN_DATA_LOADER_H_
#define LAYERGCN_DATA_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace layergcn::data {

/// Options for LoadInteractions.
struct LoaderOptions {
  char delimiter = ',';
  int user_column = 0;
  int item_column = 1;
  /// Set to -1 if the file has no timestamp column; row order is then used
  /// as the timestamp.
  int timestamp_column = 2;
  /// Number of header lines to skip.
  int skip_lines = 0;
  /// Malformed rows (too few fields, unparsable timestamp) tolerated per
  /// file: up to this many are skipped and counted, one warning lists
  /// their line numbers; one more is an InvalidArgument error. The default
  /// 0 keeps the historical strictness (any malformed row fails the load).
  int64_t max_malformed = 0;
};

/// What LoadInteractionsOr saw while parsing (diagnostics for callers that
/// enable malformed-row tolerance).
struct LoadStats {
  /// Data rows examined (header and blank lines excluded).
  int64_t rows_total = 0;
  int64_t rows_loaded = 0;
  int64_t rows_malformed = 0;
  /// Line numbers (1-based) of the first few malformed rows.
  std::vector<int64_t> malformed_lines;
};

/// Parses `path`. User/item fields may be arbitrary strings; they are
/// mapped to dense ids by first appearance, and the universe sizes are
/// returned via num_users / num_items. Malformed rows are skipped up to
/// LoaderOptions::max_malformed (reported through `stats` when non-null);
/// past the budget the load fails with InvalidArgument. A missing file is
/// NotFound. Never aborts.
util::StatusOr<std::vector<Interaction>> LoadInteractionsOr(
    const std::string& path, const LoaderOptions& options,
    int32_t* num_users, int32_t* num_items, LoadStats* stats = nullptr);

/// Legacy entry point: LoadInteractionsOr that aborts with a descriptive
/// error instead of returning a Status.
std::vector<Interaction> LoadInteractions(const std::string& path,
                                          const LoaderOptions& options,
                                          int32_t* num_users,
                                          int32_t* num_items);

/// Writes interactions as "user,item,timestamp" lines (round-trips with
/// LoadInteractions under default options).
void SaveInteractions(const std::string& path,
                      const std::vector<Interaction>& interactions);

}  // namespace layergcn::data

#endif  // LAYERGCN_DATA_LOADER_H_
