// Loading interaction tables from delimited text files.
//
// Accepts the common "user,item,timestamp" layout (e.g. exported MOOC /
// Amazon / Yelp dumps). Raw string ids are supported: non-numeric user/item
// fields are hashed into dense ids via CompactIds-style first-appearance
// mapping.

#ifndef LAYERGCN_DATA_LOADER_H_
#define LAYERGCN_DATA_LOADER_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace layergcn::data {

/// Options for LoadInteractions.
struct LoaderOptions {
  char delimiter = ',';
  int user_column = 0;
  int item_column = 1;
  /// Set to -1 if the file has no timestamp column; row order is then used
  /// as the timestamp.
  int timestamp_column = 2;
  /// Number of header lines to skip.
  int skip_lines = 0;
};

/// Parses `path`. User/item fields may be arbitrary strings; they are mapped
/// to dense ids by first appearance, and the universe sizes are returned via
/// num_users / num_items. Malformed rows abort with a descriptive error.
std::vector<Interaction> LoadInteractions(const std::string& path,
                                          const LoaderOptions& options,
                                          int32_t* num_users,
                                          int32_t* num_items);

/// Writes interactions as "user,item,timestamp" lines (round-trips with
/// LoadInteractions under default options).
void SaveInteractions(const std::string& path,
                      const std::vector<Interaction>& interactions);

}  // namespace layergcn::data

#endif  // LAYERGCN_DATA_LOADER_H_
