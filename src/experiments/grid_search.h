// Hyper-parameter search over TrainConfig — the tuning protocol of paper
// §V-A4 ("we carefully tune the hyper-parameters of each model") as a
// reusable driver: grid or random search, selection by validation score,
// final report on the test split.

#ifndef LAYERGCN_EXPERIMENTS_GRID_SEARCH_H_
#define LAYERGCN_EXPERIMENTS_GRID_SEARCH_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "train/trainer.h"
#include "util/rng.h"
#include "util/status.h"

namespace layergcn::experiments {

/// One tunable dimension: a name (for reports), the candidate values, and
/// a setter that writes a candidate into a TrainConfig.
struct SearchDimension {
  std::string name;
  std::vector<double> values;
  std::function<void(train::TrainConfig*, double)> apply;
};

/// Builders for the dimensions the paper tunes.
SearchDimension L2RegDimension(std::vector<double> values);
SearchDimension EdgeDropRatioDimension(std::vector<double> values);
SearchDimension LearningRateDimension(std::vector<double> values);
SearchDimension NumLayersDimension(std::vector<int> values);
SearchDimension EmbeddingDimDimension(std::vector<int> values);

/// One evaluated configuration.
struct SearchTrial {
  std::vector<double> assignment;  // one value per dimension, in order
  double valid_score = 0.0;
  int best_epoch = 0;
};

/// Search outcome: every trial plus the winner re-evaluated on test.
struct SearchResult {
  std::vector<SearchTrial> trials;
  SearchTrial best;
  eval::RankingMetrics best_test_metrics;

  /// "l2_reg=1e-03 edge_drop_ratio=0.1 -> valid 0.4031" per trial.
  std::string Report(const std::vector<SearchDimension>& dims) const;
};

/// Options for the search loop.
struct SearchOptions {
  /// 0 = exhaustive grid; otherwise sample this many random assignments
  /// (without replacement when the grid is small enough).
  int max_trials = 0;
  /// Validation cutoff used for selection.
  int validation_k = 20;
  std::vector<int> report_ks = {10, 20, 50};
  uint64_t seed = 42;
  bool verbose = false;
};

/// Runs the search: every trial builds a fresh model via `make_model`,
/// trains it under the modified config, and scores the validation split.
/// The best assignment is retrained (same seed) and reported on test.
/// A degenerate search space — no dimensions, or a dimension with no
/// candidate values — is an InvalidArgument (these arrive from CLI flags
/// and experiment specs, so they are caller input, not invariants).
util::StatusOr<SearchResult> GridSearchOr(
    const std::function<std::unique_ptr<train::Recommender>()>& make_model,
    const data::Dataset& dataset, const train::TrainConfig& base_config,
    const std::vector<SearchDimension>& dimensions,
    const SearchOptions& options = {});

/// Legacy entry point: GridSearchOr that aborts on a degenerate space.
SearchResult GridSearch(
    const std::function<std::unique_ptr<train::Recommender>()>& make_model,
    const data::Dataset& dataset, const train::TrainConfig& base_config,
    const std::vector<SearchDimension>& dimensions,
    const SearchOptions& options = {});

}  // namespace layergcn::experiments

#endif  // LAYERGCN_EXPERIMENTS_GRID_SEARCH_H_
