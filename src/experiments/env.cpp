#include "experiments/env.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::experiments {
namespace {

bool FlagValue(std::string_view arg, std::string_view name,
               std::string_view* value) {
  if (!util::StartsWith(arg, name)) return false;
  arg.remove_prefix(name.size());
  if (arg.empty() || arg[0] != '=') return false;
  *value = arg.substr(1);
  return true;
}

}  // namespace

Env ParseEnv(int argc, char** argv) {
  Env env;
  if (const char* s = std::getenv("REPRO_SCALE")) {
    double v;
    if (util::ParseDouble(s, &v)) env.scale = v;
  }
  if (const char* s = std::getenv("REPRO_EPOCHS")) {
    int64_t v;
    if (util::ParseInt64(s, &v)) env.max_epochs = static_cast<int>(v);
  }
  if (const char* s = std::getenv("REPRO_SEED")) {
    int64_t v;
    if (util::ParseInt64(s, &v)) env.seed = static_cast<uint64_t>(v);
  }
  if (const char* s = std::getenv("REPRO_FULL")) {
    env.full = std::string_view(s) == "1";
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    std::string_view value;
    if (FlagValue(arg, "--scale", &value)) {
      double v;
      LAYERGCN_CHECK(util::ParseDouble(value, &v)) << "bad --scale";
      env.scale = v;
    } else if (FlagValue(arg, "--epochs", &value)) {
      int64_t v;
      LAYERGCN_CHECK(util::ParseInt64(value, &v)) << "bad --epochs";
      env.max_epochs = static_cast<int>(v);
    } else if (FlagValue(arg, "--seed", &value)) {
      int64_t v;
      LAYERGCN_CHECK(util::ParseInt64(value, &v)) << "bad --seed";
      env.seed = static_cast<uint64_t>(v);
    } else if (arg == "--full") {
      env.full = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--scale=F] [--epochs=N] [--seed=N] [--full]\n",
          argv[0]);
      std::exit(0);
    } else {
      LAYERGCN_CHECK(false) << "unknown flag: " << arg;
    }
  }
  return env;
}

void PrintBanner(const std::string& title, const Env& env) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("scale=%.2f seed=%llu%s%s\n", env.scale,
              static_cast<unsigned long long>(env.seed),
              env.max_epochs > 0 ? " (epoch override)" : "",
              env.full ? " [FULL]" : " [fast profile]");
}

}  // namespace layergcn::experiments
