#include "experiments/runner.h"

#include "util/table_printer.h"

namespace layergcn::experiments {

RunRow RunModel(const std::string& model_name, const data::Dataset& dataset,
                const train::TrainConfig& config,
                const train::TrainOptions& options,
                std::vector<train::CheckpointMetrics>* checkpoints) {
  std::unique_ptr<train::Recommender> model = core::CreateModel(model_name);
  const train::TrainConfig adapted = core::AdaptConfig(model_name, config);
  RunRow row;
  row.model = model_name;
  row.dataset = dataset.name;
  row.result =
      train::FitRecommender(model.get(), dataset, adapted, options,
                            checkpoints);
  return row;
}

std::vector<std::string> MetricCells(const eval::RankingMetrics& metrics,
                                     const std::vector<int>& ks) {
  std::vector<std::string> cells;
  for (int k : ks) {
    const auto it = metrics.recall.find(k);
    if (it != metrics.recall.end()) {
      cells.push_back(util::TablePrinter::Num(it->second));
    }
  }
  for (int k : ks) {
    const auto it = metrics.ndcg.find(k);
    if (it != metrics.ndcg.end()) {
      cells.push_back(util::TablePrinter::Num(it->second));
    }
  }
  return cells;
}

}  // namespace layergcn::experiments
