#include "experiments/runner.h"

#include "util/logging.h"
#include "util/table_printer.h"

namespace layergcn::experiments {

util::StatusOr<RunRow> RunModelOr(
    const std::string& model_name, const data::Dataset& dataset,
    const train::TrainConfig& config, const train::TrainOptions& options,
    std::vector<train::CheckpointMetrics>* checkpoints) {
  util::StatusOr<std::unique_ptr<train::Recommender>> model =
      core::CreateModelOr(model_name);
  if (!model.ok()) return model.status();
  const train::TrainConfig adapted = core::AdaptConfig(model_name, config);
  RunRow row;
  row.model = model_name;
  row.dataset = dataset.name;
  row.result = train::FitRecommender(model.value().get(), dataset, adapted,
                                     options, checkpoints);
  return row;
}

RunRow RunModel(const std::string& model_name, const data::Dataset& dataset,
                const train::TrainConfig& config,
                const train::TrainOptions& options,
                std::vector<train::CheckpointMetrics>* checkpoints) {
  util::StatusOr<RunRow> row =
      RunModelOr(model_name, dataset, config, options, checkpoints);
  LAYERGCN_CHECK(row.ok()) << row.status().message();
  return std::move(row).value();
}

std::vector<std::string> MetricCells(const eval::RankingMetrics& metrics,
                                     const std::vector<int>& ks) {
  std::vector<std::string> cells;
  for (int k : ks) {
    const auto it = metrics.recall.find(k);
    if (it != metrics.recall.end()) {
      cells.push_back(util::TablePrinter::Num(it->second));
    }
  }
  for (int k : ks) {
    const auto it = metrics.ndcg.find(k);
    if (it != metrics.ndcg.end()) {
      cells.push_back(util::TablePrinter::Num(it->second));
    }
  }
  return cells;
}

}  // namespace layergcn::experiments
