#include "experiments/grid_search.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::experiments {

SearchDimension L2RegDimension(std::vector<double> values) {
  return {"l2_reg", std::move(values),
          [](train::TrainConfig* cfg, double v) { cfg->l2_reg = v; }};
}

SearchDimension EdgeDropRatioDimension(std::vector<double> values) {
  return {"edge_drop_ratio", std::move(values),
          [](train::TrainConfig* cfg, double v) {
            cfg->edge_drop_ratio = v;
            if (v == 0.0) cfg->edge_drop_kind = graph::EdgeDropKind::kNone;
          }};
}

SearchDimension LearningRateDimension(std::vector<double> values) {
  return {"learning_rate", std::move(values),
          [](train::TrainConfig* cfg, double v) { cfg->learning_rate = v; }};
}

SearchDimension NumLayersDimension(std::vector<int> values) {
  std::vector<double> as_double(values.begin(), values.end());
  return {"num_layers", std::move(as_double),
          [](train::TrainConfig* cfg, double v) {
            cfg->num_layers = static_cast<int>(v);
          }};
}

SearchDimension EmbeddingDimDimension(std::vector<int> values) {
  std::vector<double> as_double(values.begin(), values.end());
  return {"embedding_dim", std::move(as_double),
          [](train::TrainConfig* cfg, double v) {
            cfg->embedding_dim = static_cast<int>(v);
          }};
}

std::string SearchResult::Report(
    const std::vector<SearchDimension>& dims) const {
  std::ostringstream ss;
  for (const SearchTrial& trial : trials) {
    for (size_t d = 0; d < dims.size(); ++d) {
      ss << dims[d].name << "=" << trial.assignment[d] << " ";
    }
    ss << "-> valid " << util::StrFormat("%.4f", trial.valid_score)
       << " (epoch " << trial.best_epoch << ")\n";
  }
  ss << "best:";
  for (size_t d = 0; d < dims.size(); ++d) {
    ss << " " << dims[d].name << "=" << best.assignment[d];
  }
  ss << " valid " << util::StrFormat("%.4f", best.valid_score) << "\n";
  return ss.str();
}

namespace {

// Enumerates all assignments of the cartesian product.
void EnumerateGrid(const std::vector<SearchDimension>& dims, size_t depth,
                   std::vector<double>* current,
                   std::vector<std::vector<double>>* out) {
  if (depth == dims.size()) {
    out->push_back(*current);
    return;
  }
  for (double v : dims[depth].values) {
    current->push_back(v);
    EnumerateGrid(dims, depth + 1, current, out);
    current->pop_back();
  }
}

}  // namespace

util::StatusOr<SearchResult> GridSearchOr(
    const std::function<std::unique_ptr<train::Recommender>()>& make_model,
    const data::Dataset& dataset, const train::TrainConfig& base_config,
    const std::vector<SearchDimension>& dimensions,
    const SearchOptions& options) {
  if (dimensions.empty()) {
    return util::InvalidArgumentError("grid search needs >= 1 dimension");
  }
  for (const SearchDimension& d : dimensions) {
    if (d.values.empty()) {
      return util::InvalidArgumentError("search dimension " + d.name +
                                        " has no candidate values");
    }
    if (d.apply == nullptr) {
      return util::InvalidArgumentError("search dimension " + d.name +
                                        " has no apply function");
    }
  }

  std::vector<std::vector<double>> assignments;
  {
    std::vector<double> scratch;
    EnumerateGrid(dimensions, 0, &scratch, &assignments);
  }
  if (options.max_trials > 0 &&
      static_cast<size_t>(options.max_trials) < assignments.size()) {
    // Random subset without replacement, deterministic under the seed.
    util::Rng rng(options.seed ^ 0xA5A5A5A5ULL);
    const auto picked = util::UniformSampleWithoutReplacement(
        static_cast<int64_t>(assignments.size()), options.max_trials, &rng);
    std::vector<std::vector<double>> subset;
    subset.reserve(picked.size());
    for (int64_t idx : picked) {
      subset.push_back(assignments[static_cast<size_t>(idx)]);
    }
    assignments = std::move(subset);
  }

  train::TrainOptions train_options;
  train_options.validation_k = options.validation_k;
  train_options.report_ks = options.report_ks;

  SearchResult result;
  result.trials.reserve(assignments.size());
  int best_index = -1;
  for (const std::vector<double>& assignment : assignments) {
    train::TrainConfig cfg = base_config;
    cfg.seed = options.seed;
    for (size_t d = 0; d < dimensions.size(); ++d) {
      dimensions[d].apply(&cfg, assignment[d]);
    }
    auto model = make_model();
    const train::TrainResult r =
        train::FitRecommender(model.get(), dataset, cfg, train_options);
    SearchTrial trial;
    trial.assignment = assignment;
    trial.valid_score = r.best_valid_score;
    trial.best_epoch = r.best_epoch;
    if (options.verbose) {
      LAYERGCN_LOG(kInfo) << "trial valid=" << trial.valid_score;
    }
    result.trials.push_back(trial);
    if (best_index < 0 ||
        trial.valid_score > result.trials[static_cast<size_t>(best_index)]
                                .valid_score) {
      best_index = static_cast<int>(result.trials.size()) - 1;
      result.best_test_metrics = r.test_metrics;
    }
  }
  result.best = result.trials[static_cast<size_t>(best_index)];
  return result;
}

SearchResult GridSearch(
    const std::function<std::unique_ptr<train::Recommender>()>& make_model,
    const data::Dataset& dataset, const train::TrainConfig& base_config,
    const std::vector<SearchDimension>& dimensions,
    const SearchOptions& options) {
  util::StatusOr<SearchResult> result =
      GridSearchOr(make_model, dataset, base_config, dimensions, options);
  LAYERGCN_CHECK(result.ok()) << result.status().message();
  return std::move(result).value();
}

}  // namespace layergcn::experiments
