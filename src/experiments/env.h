// Shared experiment-environment handling for the bench binaries.
//
// Every bench accepts the same overrides, from flags or environment
// variables (flags win):
//
//   --scale=F / REPRO_SCALE    dataset scale multiplier (default 1.0)
//   --epochs=N / REPRO_EPOCHS  cap on training epochs
//   --seed=N / REPRO_SEED      RNG seed (default 42)
//   --full / REPRO_FULL=1      full-size run (default is a fast profile
//                              sized for a small CPU box)

#ifndef LAYERGCN_EXPERIMENTS_ENV_H_
#define LAYERGCN_EXPERIMENTS_ENV_H_

#include <cstdint>
#include <string>

namespace layergcn::experiments {

/// Parsed experiment environment.
struct Env {
  double scale = 1.0;
  int max_epochs = 0;  // 0 = use the bench's default
  uint64_t seed = 42;
  bool full = false;

  /// Effective epoch budget: the override if set, otherwise fast/full
  /// defaults provided by the bench.
  int Epochs(int fast_default, int full_default) const {
    if (max_epochs > 0) return max_epochs;
    return full ? full_default : fast_default;
  }

  /// Effective dataset scale: `scale` times the bench's fast/full base.
  double Scale(double fast_base, double full_base) const {
    return scale * (full ? full_base : fast_base);
  }
};

/// Parses argv + environment. Unknown flags abort with a usage message.
Env ParseEnv(int argc, char** argv);

/// Prints the standard experiment banner (binary name + env).
void PrintBanner(const std::string& title, const Env& env);

}  // namespace layergcn::experiments

#endif  // LAYERGCN_EXPERIMENTS_ENV_H_
