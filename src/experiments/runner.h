// Shared drivers for the table/figure benches: run a named model on a
// dataset and collect the paper's metrics.

#ifndef LAYERGCN_EXPERIMENTS_RUNNER_H_
#define LAYERGCN_EXPERIMENTS_RUNNER_H_

#include <string>
#include <vector>

#include "core/model_factory.h"
#include "data/dataset.h"
#include "train/trainer.h"
#include "util/status.h"

namespace layergcn::experiments {

/// One (model, dataset) result row.
struct RunRow {
  std::string model;
  std::string dataset;
  train::TrainResult result;
};

/// Trains `model_name` (factory name) on `dataset` with the given config
/// (adapted per-model via core::AdaptConfig) and returns the row.
/// An unknown model name is an InvalidArgument; training-time failures
/// stay inside the returned row's result.status (callers already branch
/// on it per trial).
util::StatusOr<RunRow> RunModelOr(
    const std::string& model_name, const data::Dataset& dataset,
    const train::TrainConfig& config, const train::TrainOptions& options = {},
    std::vector<train::CheckpointMetrics>* checkpoints = nullptr);

/// Legacy entry point: RunModelOr that aborts on unknown model names.
RunRow RunModel(const std::string& model_name, const data::Dataset& dataset,
                const train::TrainConfig& config,
                const train::TrainOptions& options = {},
                std::vector<train::CheckpointMetrics>* checkpoints = nullptr);

/// Formats the paper's six metric columns R@10 R@20 R@50 N@10 N@20 N@50
/// from a metrics object (missing cutoffs are skipped).
std::vector<std::string> MetricCells(const eval::RankingMetrics& metrics,
                                     const std::vector<int>& ks);

}  // namespace layergcn::experiments

#endif  // LAYERGCN_EXPERIMENTS_RUNNER_H_
