#include "eval/fused_rank.h"

#include <algorithm>
#include <memory>

#include "eval/metrics.h"
#include "eval/rank_heap.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace layergcn::eval {
namespace {

using internal::DeadlineExpired;
using internal::HeapEntry;
using internal::HeapPush;
using internal::MaybeSlowScore;
using internal::Worse;

// Exact-reference fallback: materialize one score row per user with the
// ascending-depth scalar dot, mark exclusions in a fresh flag vector, rank
// with TopKIndices — the seed pipeline, kept as the bit-level oracle.
void ReferenceTopK(const tensor::Matrix& user_emb,
                   const std::vector<int32_t>& user_ids,
                   const tensor::Matrix& item_emb, int k,
                   const std::vector<std::vector<int32_t>>* exclude,
                   int64_t lo, int64_t hi,
                   std::vector<std::vector<int32_t>>* out,
                   RankDeadline* deadline,
                   std::vector<std::vector<float>>* scores_out) {
  const int64_t num_items = item_emb.rows();
  const int64_t depth = item_emb.cols();
  for (int64_t r = lo; r < hi; ++r) {
    MaybeSlowScore(deadline);
    if (DeadlineExpired(deadline)) return;  // remaining users stay empty
    const int32_t u = user_ids[static_cast<size_t>(r)];
    const float* urow = user_emb.row(u);
    std::vector<float> scores(static_cast<size_t>(num_items), 0.f);
    for (int64_t i = 0; i < num_items; ++i) {
      const float* irow = item_emb.row(i);
      float acc = 0.f;
      for (int64_t p = 0; p < depth; ++p) acc += urow[p] * irow[p];
      scores[static_cast<size_t>(i)] = acc;
    }
    std::vector<bool> flags(static_cast<size_t>(num_items), false);
    if (exclude != nullptr) {
      for (int32_t i : (*exclude)[static_cast<size_t>(u)]) {
        flags[static_cast<size_t>(i)] = true;
      }
    }
    std::vector<int32_t>& ranked = (*out)[static_cast<size_t>(r)];
    ranked = TopKIndices(scores.data(), num_items, k, &flags);
    if (scores_out != nullptr) {
      std::vector<float>& sc = (*scores_out)[static_cast<size_t>(r)];
      sc.resize(ranked.size());
      for (size_t i = 0; i < ranked.size(); ++i) {
        sc[i] = scores[static_cast<size_t>(ranked[i])];
      }
    }
  }
}

}  // namespace

std::vector<std::vector<int32_t>> FusedScoreTopK(
    const tensor::Matrix& user_emb, const std::vector<int32_t>& user_ids,
    const tensor::Matrix& item_emb, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out) {
  LAYERGCN_CHECK_GT(k, 0);
  LAYERGCN_CHECK_EQ(user_emb.cols(), item_emb.cols())
      << "user/item embedding width mismatch";
  const int64_t num_users = static_cast<int64_t>(user_ids.size());
  const int64_t num_items = item_emb.rows();
  const int64_t depth = item_emb.cols();
  std::vector<std::vector<int32_t>> out(user_ids.size());
  if (scores_out != nullptr) scores_out->assign(user_ids.size(), {});
  if (num_users == 0 || num_items == 0) return out;
  OBS_SPAN("eval.fused_rank");
  OBS_COUNT("fused_rank.calls", 1);
  OBS_COUNT("fused_rank.users_ranked", num_users);
  // The fused kernel streams the full score matrix through GemmMicroPanel;
  // account for that GEMM work here since the micro-kernel itself is not
  // instrumented (it is the innermost hot loop).
  OBS_COUNT("gemm.calls", 1);
  OBS_COUNT("gemm.flops", 2 * num_users * num_items * depth);

  // Optional dedicated pool (determinism tests sweep the worker count);
  // otherwise the shared compute pool, so ScopedComputePool overrides apply.
  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = util::parallel::ComputePool();
  if (config.num_threads > 0) {
    local_pool = std::make_unique<util::ThreadPool>(config.num_threads);
    pool = local_pool.get();
  }

  if (!config.enabled) {
    util::ParallelForRanges(pool, 0, num_users, [&](int64_t lo, int64_t hi) {
      ReferenceTopK(user_emb, user_ids, item_emb, k, exclude, lo, hi, &out,
                    deadline, scores_out);
    });
    return out;
  }

  // Item embeddings transposed once to (depth x num_items): the micro-kernel
  // streams items with unit stride and the panel is shared by every tile.
  tensor::Matrix items_t(depth, num_items);
  for (int64_t i = 0; i < num_items; ++i) {
    const float* src = item_emb.row(i);
    for (int64_t p = 0; p < depth; ++p) items_t(p, i) = src[p];
  }

  const int64_t user_tile = std::max<int64_t>(1, config.user_tile);
  const int64_t item_tile = std::max<int64_t>(tensor::kGemmTileN,
                                              config.item_tile);
  const int64_t cap = std::min<int64_t>(k, num_items);
  const int64_t num_tiles = (num_users + user_tile - 1) / user_tile;

  util::ParallelForRanges(pool, 0, num_tiles, [&](int64_t tile_lo,
                                                  int64_t tile_hi) {
    OBS_SPAN("eval.fused_rank.tiles");
    OBS_COUNT("fused_rank.tiles", tile_hi - tile_lo);
    // Per-worker scratch, allocated once per range and reused across tiles:
    // the score block, the bounded heaps, and the exclusion cursors.
    std::vector<float> scores(static_cast<size_t>(user_tile * item_tile));
    std::vector<HeapEntry> heaps(static_cast<size_t>(user_tile * cap));
    std::vector<int64_t> heap_sizes(static_cast<size_t>(user_tile));
    std::vector<const float*> user_rows(static_cast<size_t>(user_tile));
    std::vector<size_t> cursors(static_cast<size_t>(user_tile));

    for (int64_t tile = tile_lo; tile < tile_hi; ++tile) {
      if (DeadlineExpired(deadline)) break;  // untouched users stay empty
      const int64_t base = tile * user_tile;
      const int64_t m = std::min(user_tile, num_users - base);
      for (int64_t r = 0; r < m; ++r) {
        user_rows[static_cast<size_t>(r)] =
            user_emb.row(user_ids[static_cast<size_t>(base + r)]);
        heap_sizes[static_cast<size_t>(r)] = 0;
        cursors[static_cast<size_t>(r)] = 0;
      }

      for (int64_t j0 = 0; j0 < num_items; j0 += item_tile) {
        // Deadline is enforced at item-tile boundaries: cheap enough to
        // check here, and a tile bounds how late expiry can be noticed.
        MaybeSlowScore(deadline);
        if (j0 > 0 && DeadlineExpired(deadline)) break;
        const int64_t jn = std::min(item_tile, num_items - j0);
        std::fill(scores.begin(), scores.begin() + m * jn, 0.f);
        GemmMicroPanel(user_rows.data(), m, depth, items_t, j0, jn,
                       scores.data(), jn);

        // Stream the block into the heaps; item tiles arrive in ascending
        // order, so each user's sorted exclusion list is walked by a single
        // monotone cursor instead of a per-user flag vector.
        for (int64_t r = 0; r < m; ++r) {
          const std::vector<int32_t>* exc =
              exclude != nullptr
                  ? &(*exclude)[static_cast<size_t>(
                        user_ids[static_cast<size_t>(base + r)])]
                  : nullptr;
          size_t& cur = cursors[static_cast<size_t>(r)];
          const float* srow = scores.data() + r * jn;
          HeapEntry* heap = heaps.data() + r * cap;
          int64_t* hs = &heap_sizes[static_cast<size_t>(r)];
          for (int64_t j = 0; j < jn; ++j) {
            const int32_t item = static_cast<int32_t>(j0 + j);
            if (exc != nullptr) {
              while (cur < exc->size() && (*exc)[cur] < item) ++cur;
              if (cur < exc->size() && (*exc)[cur] == item) {
                ++cur;
                continue;
              }
            }
            HeapPush(heap, hs, cap, HeapEntry{srow[j], item});
          }
        }
      }

      // Extract whatever the heaps hold — the full top-K normally, a
      // truncated prefix scan when the deadline cut the item loop short.
      for (int64_t r = 0; r < m; ++r) {
        HeapEntry* heap = heaps.data() + r * cap;
        const int64_t hs = heap_sizes[static_cast<size_t>(r)];
        std::sort(heap, heap + hs,
                  [](const HeapEntry& a, const HeapEntry& b) {
                    return Worse(b, a);
                  });
        std::vector<int32_t>& ranked = out[static_cast<size_t>(base + r)];
        ranked.resize(static_cast<size_t>(hs));
        for (int64_t i = 0; i < hs; ++i) {
          ranked[static_cast<size_t>(i)] = heap[i].idx;
        }
        if (scores_out != nullptr) {
          std::vector<float>& sc = (*scores_out)[static_cast<size_t>(base + r)];
          sc.resize(static_cast<size_t>(hs));
          for (int64_t i = 0; i < hs; ++i) {
            sc[static_cast<size_t>(i)] = heap[i].score;
          }
        }
      }
    }
  });
  return out;
}

std::vector<std::vector<int32_t>> FusedScoreTopKSubset(
    const tensor::Matrix& user_emb, const std::vector<int32_t>& user_ids,
    const tensor::Matrix& item_emb, const std::vector<int32_t>& candidates,
    int k, const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out) {
  LAYERGCN_CHECK_GT(k, 0);
  LAYERGCN_CHECK_EQ(user_emb.cols(), item_emb.cols())
      << "user/item embedding width mismatch";
  const int64_t n = static_cast<int64_t>(candidates.size());
  const int64_t depth = item_emb.cols();
  std::vector<std::vector<int32_t>> out(user_ids.size());
  if (scores_out != nullptr) scores_out->assign(user_ids.size(), {});
  if (user_ids.empty() || n == 0) return out;
  OBS_SPAN("eval.fused_rank.subset");
  OBS_COUNT("fused_rank.subset_calls", 1);

  const int64_t cap = std::min<int64_t>(k, n);
  const int64_t item_tile = std::max<int64_t>(16, config.item_tile);
  std::vector<HeapEntry> heap;
  for (size_t r = 0; r < user_ids.size(); ++r) {
    if (r > 0 && DeadlineExpired(deadline)) break;
    const int32_t u = user_ids[r];
    const float* urow = user_emb.row(u);
    const std::vector<int32_t>* exc =
        exclude != nullptr ? &(*exclude)[static_cast<size_t>(u)] : nullptr;
    internal::RankCandidateSubset(
        candidates.data(), n, cap, item_tile, exc, deadline, &heap, &out[r],
        scores_out != nullptr ? &(*scores_out)[r] : nullptr,
        [&](int32_t item) {
          const float* irow = item_emb.row(item);
          float acc = 0.f;
          for (int64_t p = 0; p < depth; ++p) acc += urow[p] * irow[p];
          return acc;
        });
  }
  return out;
}

}  // namespace layergcn::eval
