#include "eval/evaluator.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace layergcn::eval {

Evaluator::Evaluator(const data::Dataset* dataset, std::vector<int> ks,
                     int64_t chunk_size)
    : dataset_(dataset), ks_(std::move(ks)), chunk_size_(chunk_size) {
  LAYERGCN_CHECK(dataset != nullptr);
  LAYERGCN_CHECK(!ks_.empty());
  LAYERGCN_CHECK_GT(chunk_size_, 0);
  max_k_ = *std::max_element(ks_.begin(), ks_.end());
}

RankingMetrics Evaluator::Evaluate(const ScoreFn& score_fn,
                                   EvalSplit split) const {
  const auto& users = split == EvalSplit::kValidation ? dataset_->valid_users
                                                      : dataset_->test_users;
  const auto& truth = split == EvalSplit::kValidation ? dataset_->valid_items
                                                      : dataset_->test_items;
  RankingMetrics out;
  for (int k : ks_) {
    out.recall[k] = 0.0;
    out.ndcg[k] = 0.0;
  }
  if (users.empty()) return out;

  const auto& user_items = dataset_->train_graph.user_items();
  const int64_t num_items = dataset_->num_items;

  for (size_t begin = 0; begin < users.size();
       begin += static_cast<size_t>(chunk_size_)) {
    const size_t end =
        std::min(users.size(), begin + static_cast<size_t>(chunk_size_));
    const std::vector<int32_t> chunk(users.begin() + static_cast<int64_t>(begin),
                                     users.begin() + static_cast<int64_t>(end));
    const tensor::Matrix scores = score_fn(chunk);
    LAYERGCN_CHECK(scores.rows() == static_cast<int64_t>(chunk.size()) &&
                   scores.cols() == num_items)
        << "score matrix must be |users| x num_items";

    // Rank and accumulate per user; parallel over the chunk with per-thread
    // partial sums folded in deterministically afterwards.
    std::vector<std::vector<double>> recall_parts(
        chunk.size(), std::vector<double>(ks_.size(), 0.0));
    std::vector<std::vector<double>> ndcg_parts(
        chunk.size(), std::vector<double>(ks_.size(), 0.0));
    util::ParallelFor(0, static_cast<int64_t>(chunk.size()), [&](int64_t r) {
      const int32_t u = chunk[static_cast<size_t>(r)];
      // Exclude training items (all-ranking protocol).
      std::vector<bool> excluded(static_cast<size_t>(num_items), false);
      for (int32_t i : user_items[static_cast<size_t>(u)]) {
        excluded[static_cast<size_t>(i)] = true;
      }
      const std::vector<int32_t> ranked =
          TopKIndices(scores.row(r), num_items, max_k_, &excluded);
      const auto& gt = truth[static_cast<size_t>(u)];
      for (size_t ki = 0; ki < ks_.size(); ++ki) {
        recall_parts[static_cast<size_t>(r)][ki] =
            RecallAtK(ranked, gt, ks_[ki]);
        ndcg_parts[static_cast<size_t>(r)][ki] = NdcgAtK(ranked, gt, ks_[ki]);
      }
    });
    for (size_t r = 0; r < chunk.size(); ++r) {
      for (size_t ki = 0; ki < ks_.size(); ++ki) {
        out.recall[ks_[ki]] += recall_parts[r][ki];
        out.ndcg[ks_[ki]] += ndcg_parts[r][ki];
      }
    }
  }
  const double n = static_cast<double>(users.size());
  for (int k : ks_) {
    out.recall[k] /= n;
    out.ndcg[k] /= n;
  }
  return out;
}

Evaluator::PerUser Evaluator::EvaluatePerUser(const ScoreFn& score_fn,
                                              EvalSplit split, int k) const {
  const auto& users = split == EvalSplit::kValidation ? dataset_->valid_users
                                                      : dataset_->test_users;
  const auto& truth = split == EvalSplit::kValidation ? dataset_->valid_items
                                                      : dataset_->test_items;
  const auto& user_items = dataset_->train_graph.user_items();
  const int64_t num_items = dataset_->num_items;

  PerUser out;
  out.recall.resize(users.size());
  out.ndcg.resize(users.size());
  for (size_t begin = 0; begin < users.size();
       begin += static_cast<size_t>(chunk_size_)) {
    const size_t end =
        std::min(users.size(), begin + static_cast<size_t>(chunk_size_));
    const std::vector<int32_t> chunk(users.begin() + static_cast<int64_t>(begin),
                                     users.begin() + static_cast<int64_t>(end));
    const tensor::Matrix scores = score_fn(chunk);
    util::ParallelFor(0, static_cast<int64_t>(chunk.size()), [&](int64_t r) {
      const int32_t u = chunk[static_cast<size_t>(r)];
      std::vector<bool> excluded(static_cast<size_t>(num_items), false);
      for (int32_t i : user_items[static_cast<size_t>(u)]) {
        excluded[static_cast<size_t>(i)] = true;
      }
      const std::vector<int32_t> ranked =
          TopKIndices(scores.row(r), num_items, k, &excluded);
      const auto& gt = truth[static_cast<size_t>(u)];
      out.recall[begin + static_cast<size_t>(r)] = RecallAtK(ranked, gt, k);
      out.ndcg[begin + static_cast<size_t>(r)] = NdcgAtK(ranked, gt, k);
    });
  }
  return out;
}

}  // namespace layergcn::eval
