#include "eval/evaluator.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace layergcn::eval {

Evaluator::Evaluator(const data::Dataset* dataset, std::vector<int> ks,
                     int64_t chunk_size, FusedRankConfig fused)
    : dataset_(dataset), ks_(std::move(ks)), chunk_size_(chunk_size),
      fused_(fused) {
  LAYERGCN_CHECK(dataset != nullptr);
  LAYERGCN_CHECK(!ks_.empty());
  LAYERGCN_CHECK_GT(chunk_size_, 0);
  max_k_ = *std::max_element(ks_.begin(), ks_.end());
}

const std::vector<int32_t>& Evaluator::SplitUsers(EvalSplit split) const {
  return split == EvalSplit::kValidation ? dataset_->valid_users
                                         : dataset_->test_users;
}

const std::vector<std::vector<int32_t>>& Evaluator::SplitTruth(
    EvalSplit split) const {
  return split == EvalSplit::kValidation ? dataset_->valid_items
                                         : dataset_->test_items;
}

std::vector<int32_t> Evaluator::ValidUsers(EvalSplit split) const {
  const auto& users = SplitUsers(split);
  const auto& truth = SplitTruth(split);
  const auto& user_items = dataset_->train_graph.user_items();
  const int64_t id_space = std::min(
      static_cast<int64_t>(dataset_->num_users),
      std::min(static_cast<int64_t>(truth.size()),
               static_cast<int64_t>(user_items.size())));
  std::vector<int32_t> valid;
  valid.reserve(users.size());
  for (int32_t u : users) {
    if (u >= 0 && static_cast<int64_t>(u) < id_space &&
        !truth[static_cast<size_t>(u)].empty()) {
      valid.push_back(u);
    }
  }
  const size_t skipped = users.size() - valid.size();
  if (skipped > 0) {
    OBS_COUNT("eval.skipped_users", skipped);
    LAYERGCN_LOG(kWarning)
        << "skipped " << skipped << " of " << users.size()
        << " split users (id out of range or empty ground truth)";
  }
  return valid;
}

RankingMetrics Evaluator::Evaluate(const ScoreFn& score_fn,
                                   EvalSplit split) const {
  OBS_SPAN("eval.evaluate");
  const std::vector<int32_t> users = ValidUsers(split);
  const auto& truth = SplitTruth(split);
  RankingMetrics out;
  for (int k : ks_) {
    out.recall[k] = 0.0;
    out.ndcg[k] = 0.0;
  }
  if (users.empty()) return out;

  const auto& user_items = dataset_->train_graph.user_items();
  const int64_t num_items = dataset_->num_items;
  const MultiKMetrics multi_k(ks_);

  std::vector<double> recall_total(ks_.size(), 0.0);
  std::vector<double> ndcg_total(ks_.size(), 0.0);
  for (size_t begin = 0; begin < users.size();
       begin += static_cast<size_t>(chunk_size_)) {
    const size_t end =
        std::min(users.size(), begin + static_cast<size_t>(chunk_size_));
    const std::vector<int32_t> chunk(users.begin() + static_cast<int64_t>(begin),
                                     users.begin() + static_cast<int64_t>(end));
    const tensor::Matrix scores = score_fn(chunk);
    LAYERGCN_CHECK(scores.rows() == static_cast<int64_t>(chunk.size()) &&
                   scores.cols() == num_items)
        << "score matrix must be |users| x num_items";

    // Rank and accumulate per user; parallel over the chunk with per-user
    // partial results folded in deterministically afterwards. Every cutoff
    // is derived from one pass over the ranked list (prefix sums), and
    // training items are skipped via the sorted adjacency list.
    std::vector<double> recall_parts(chunk.size() * ks_.size(), 0.0);
    std::vector<double> ndcg_parts(chunk.size() * ks_.size(), 0.0);
    util::ParallelFor(0, static_cast<int64_t>(chunk.size()), [&](int64_t r) {
      const int32_t u = chunk[static_cast<size_t>(r)];
      const std::vector<int32_t> ranked = TopKIndicesSortedExclude(
          scores.row(r), num_items, max_k_,
          user_items[static_cast<size_t>(u)]);
      multi_k.Compute(ranked, truth[static_cast<size_t>(u)],
                      recall_parts.data() + r * static_cast<int64_t>(ks_.size()),
                      ndcg_parts.data() + r * static_cast<int64_t>(ks_.size()));
    });
    for (size_t r = 0; r < chunk.size(); ++r) {
      for (size_t ki = 0; ki < ks_.size(); ++ki) {
        recall_total[ki] += recall_parts[r * ks_.size() + ki];
        ndcg_total[ki] += ndcg_parts[r * ks_.size() + ki];
      }
    }
  }
  const double n = static_cast<double>(users.size());
  for (size_t ki = 0; ki < ks_.size(); ++ki) {
    out.recall[ks_[ki]] = recall_total[ki] / n;
    out.ndcg[ks_[ki]] = ndcg_total[ki] / n;
  }
  return out;
}

std::vector<std::vector<int32_t>> Evaluator::RankUsers(
    const tensor::Matrix& user_emb, const tensor::Matrix& item_emb,
    const std::vector<int32_t>& users, int k) const {
  LAYERGCN_CHECK_EQ(item_emb.rows(), dataset_->num_items)
      << "item embedding block must have one row per item";
  LAYERGCN_CHECK_GE(user_emb.rows(), dataset_->num_users)
      << "user embedding block must cover every user id";
  return FusedScoreTopK(user_emb, users, item_emb, k,
                        &dataset_->train_graph.user_items(), fused_);
}

RankingMetrics Evaluator::Evaluate(const tensor::Matrix& user_emb,
                                   const tensor::Matrix& item_emb,
                                   EvalSplit split) const {
  OBS_SPAN("eval.evaluate");
  const std::vector<int32_t> users = ValidUsers(split);
  const auto& truth = SplitTruth(split);
  RankingMetrics out;
  for (int k : ks_) {
    out.recall[k] = 0.0;
    out.ndcg[k] = 0.0;
  }
  if (users.empty()) return out;

  const std::vector<std::vector<int32_t>> ranked =
      RankUsers(user_emb, item_emb, users, max_k_);
  const MultiKMetrics multi_k(ks_);
  std::vector<double> recall(ks_.size());
  std::vector<double> ndcg(ks_.size());
  std::vector<double> recall_total(ks_.size(), 0.0);
  std::vector<double> ndcg_total(ks_.size(), 0.0);
  for (size_t r = 0; r < users.size(); ++r) {
    multi_k.Compute(ranked[r], truth[static_cast<size_t>(users[r])],
                    recall.data(), ndcg.data());
    for (size_t ki = 0; ki < ks_.size(); ++ki) {
      recall_total[ki] += recall[ki];
      ndcg_total[ki] += ndcg[ki];
    }
  }
  const double n = static_cast<double>(users.size());
  for (size_t ki = 0; ki < ks_.size(); ++ki) {
    out.recall[ks_[ki]] = recall_total[ki] / n;
    out.ndcg[ks_[ki]] = ndcg_total[ki] / n;
  }
  return out;
}

Evaluator::PerUser Evaluator::EvaluatePerUser(const ScoreFn& score_fn,
                                              EvalSplit split, int k) const {
  const std::vector<int32_t> users = ValidUsers(split);
  const auto& truth = SplitTruth(split);
  const auto& user_items = dataset_->train_graph.user_items();
  const int64_t num_items = dataset_->num_items;

  PerUser out;
  out.recall.resize(users.size());
  out.ndcg.resize(users.size());
  for (size_t begin = 0; begin < users.size();
       begin += static_cast<size_t>(chunk_size_)) {
    const size_t end =
        std::min(users.size(), begin + static_cast<size_t>(chunk_size_));
    const std::vector<int32_t> chunk(users.begin() + static_cast<int64_t>(begin),
                                     users.begin() + static_cast<int64_t>(end));
    const tensor::Matrix scores = score_fn(chunk);
    util::ParallelFor(0, static_cast<int64_t>(chunk.size()), [&](int64_t r) {
      const int32_t u = chunk[static_cast<size_t>(r)];
      const std::vector<int32_t> ranked = TopKIndicesSortedExclude(
          scores.row(r), num_items, k, user_items[static_cast<size_t>(u)]);
      const auto& gt = truth[static_cast<size_t>(u)];
      out.recall[begin + static_cast<size_t>(r)] = RecallAtK(ranked, gt, k);
      out.ndcg[begin + static_cast<size_t>(r)] = NdcgAtK(ranked, gt, k);
    });
  }
  return out;
}

Evaluator::PerUser Evaluator::EvaluatePerUser(const tensor::Matrix& user_emb,
                                              const tensor::Matrix& item_emb,
                                              EvalSplit split, int k) const {
  const std::vector<int32_t> users = ValidUsers(split);
  const auto& truth = SplitTruth(split);
  PerUser out;
  out.recall.resize(users.size());
  out.ndcg.resize(users.size());
  const std::vector<std::vector<int32_t>> ranked =
      RankUsers(user_emb, item_emb, users, k);
  for (size_t r = 0; r < users.size(); ++r) {
    const auto& gt = truth[static_cast<size_t>(users[r])];
    out.recall[r] = RecallAtK(ranked[r], gt, k);
    out.ndcg[r] = NdcgAtK(ranked[r], gt, k);
  }
  return out;
}

}  // namespace layergcn::eval
