// All-ranking evaluation of a recommender over a Dataset split.
//
// The Evaluator is model-agnostic: it pulls score rows through a callback so
// any scoring function (GCN embeddings, MF, VAE decoders) can be plugged in.
// Inner-product models can instead hand over their user/item embedding
// blocks, which routes evaluation through the fused blocked score-and-rank
// kernel (eval/fused_rank.h) — the full |users| x |items| score matrix is
// never materialized. Both paths compute every Recall@K / NDCG@K cutoff in
// a single pass per user (eval::MultiKMetrics) and exclude training items
// via the user's sorted adjacency list.

#ifndef LAYERGCN_EVAL_EVALUATOR_H_
#define LAYERGCN_EVAL_EVALUATOR_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "eval/fused_rank.h"
#include "eval/metrics.h"
#include "tensor/matrix.h"

namespace layergcn::eval {

/// Scoring callback: returns a |users| x num_items matrix of preference
/// scores for the given users.
using ScoreFn =
    std::function<tensor::Matrix(const std::vector<int32_t>& users)>;

/// Which held-out split to evaluate.
enum class EvalSplit { kValidation, kTest };

/// All-ranking evaluator.
class Evaluator {
 public:
  /// `dataset` must outlive the evaluator. `ks` are the cutoffs (paper uses
  /// {10, 20, 50}). `fused` tunes the fused kernel used by the
  /// embedding-block overloads (set fused.enabled = false to force the
  /// exact-reference materialize-then-rank path).
  Evaluator(const data::Dataset* dataset, std::vector<int> ks,
            int64_t chunk_size = 512, FusedRankConfig fused = {});

  /// Computes mean Recall@K / NDCG@K over all users with ground truth in
  /// the chosen split. Training items are excluded from the candidates
  /// (all-ranking protocol). Scores arrive chunk-wise via `score_fn`.
  ///
  /// Malformed split entries — user ids outside the dataset's id space, or
  /// users with an empty ground-truth list — are skipped rather than
  /// indexed (counted as eval.skipped_users, warned once per call), and
  /// the metric means are taken over the evaluated users only. Datasets
  /// from data::BuildDataset never contain such entries, so this changes
  /// nothing for well-formed data; it turns a hand-built or corrupted
  /// split from UB into a measurable skip.
  RankingMetrics Evaluate(const ScoreFn& score_fn, EvalSplit split) const;

  /// Fused-kernel overload for inner-product models: `user_emb` holds one
  /// row per user (row u = user u; extra trailing rows are ignored) and
  /// `item_emb` one row per item, score(u, i) = <user_emb[u], item_emb[i]>.
  /// Produces the same metrics as the ScoreFn overload for the equivalent
  /// scoring function.
  RankingMetrics Evaluate(const tensor::Matrix& user_emb,
                          const tensor::Matrix& item_emb,
                          EvalSplit split) const;

  /// Per-user metric values (for paired significance tests): one entry per
  /// evaluated user (malformed split entries are skipped, as above), in
  /// split order.
  struct PerUser {
    std::vector<double> recall;  // at ks[primary_index]
    std::vector<double> ndcg;
  };
  PerUser EvaluatePerUser(const ScoreFn& score_fn, EvalSplit split,
                          int k) const;
  PerUser EvaluatePerUser(const tensor::Matrix& user_emb,
                          const tensor::Matrix& item_emb, EvalSplit split,
                          int k) const;

  const std::vector<int>& ks() const { return ks_; }
  const FusedRankConfig& fused_config() const { return fused_; }

 private:
  const std::vector<int32_t>& SplitUsers(EvalSplit split) const;
  const std::vector<std::vector<int32_t>>& SplitTruth(EvalSplit split) const;

  /// The split's users that can actually be evaluated: id inside every
  /// indexed table (truth, train adjacency, embeddings) and non-empty
  /// ground truth. Skips are counted and warned.
  std::vector<int32_t> ValidUsers(EvalSplit split) const;

  /// Top-`k` rankings for `users` (a ValidUsers() list), via the fused
  /// kernel.
  std::vector<std::vector<int32_t>> RankUsers(
      const tensor::Matrix& user_emb, const tensor::Matrix& item_emb,
      const std::vector<int32_t>& users, int k) const;

  const data::Dataset* dataset_;
  std::vector<int> ks_;
  int max_k_;
  int64_t chunk_size_;
  FusedRankConfig fused_;
};

}  // namespace layergcn::eval

#endif  // LAYERGCN_EVAL_EVALUATOR_H_
