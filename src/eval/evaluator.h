// All-ranking evaluation of a recommender over a Dataset split.
//
// The Evaluator is model-agnostic: it pulls score rows through a callback so
// any scoring function (GCN embeddings, MF, VAE decoders) can be plugged in.
// Scoring and ranking run in parallel over user chunks.

#ifndef LAYERGCN_EVAL_EVALUATOR_H_
#define LAYERGCN_EVAL_EVALUATOR_H_

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "tensor/matrix.h"

namespace layergcn::eval {

/// Scoring callback: returns a |users| x num_items matrix of preference
/// scores for the given users.
using ScoreFn =
    std::function<tensor::Matrix(const std::vector<int32_t>& users)>;

/// Which held-out split to evaluate.
enum class EvalSplit { kValidation, kTest };

/// All-ranking evaluator.
class Evaluator {
 public:
  /// `dataset` must outlive the evaluator. `ks` are the cutoffs (paper uses
  /// {10, 20, 50}).
  Evaluator(const data::Dataset* dataset, std::vector<int> ks,
            int64_t chunk_size = 512);

  /// Computes mean Recall@K / NDCG@K over all users with ground truth in
  /// the chosen split. Training items are excluded from the candidates
  /// (all-ranking protocol).
  RankingMetrics Evaluate(const ScoreFn& score_fn, EvalSplit split) const;

  /// Per-user metric values (for paired significance tests): one entry per
  /// user with ground truth, in `users()` order.
  struct PerUser {
    std::vector<double> recall;  // at ks[primary_index]
    std::vector<double> ndcg;
  };
  PerUser EvaluatePerUser(const ScoreFn& score_fn, EvalSplit split,
                          int k) const;

  const std::vector<int>& ks() const { return ks_; }

 private:
  const data::Dataset* dataset_;
  std::vector<int> ks_;
  int max_k_;
  int64_t chunk_size_;
};

}  // namespace layergcn::eval

#endif  // LAYERGCN_EVAL_EVALUATOR_H_
