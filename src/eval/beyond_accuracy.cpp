#include "eval/beyond_accuracy.h"

#include <algorithm>

#include "eval/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace layergcn::eval {

std::string BeyondAccuracyMetrics::ToString() const {
  return util::StrFormat(
      "coverage=%.3f avg_popularity=%.1f exposure_gini=%.3f", coverage,
      avg_popularity, gini);
}

BeyondAccuracyMetrics EvaluateBeyondAccuracy(
    const data::Dataset& dataset, const ScoreFn& score_fn,
    const std::vector<int32_t>& users, int k, int64_t chunk_size) {
  LAYERGCN_CHECK_GT(k, 0);
  const int64_t num_items = dataset.num_items;
  std::vector<int64_t> exposure(static_cast<size_t>(num_items), 0);
  double popularity_sum = 0.0;
  int64_t rec_count = 0;
  const auto& user_items = dataset.train_graph.user_items();

  for (size_t begin = 0; begin < users.size();
       begin += static_cast<size_t>(chunk_size)) {
    const size_t end =
        std::min(users.size(), begin + static_cast<size_t>(chunk_size));
    const std::vector<int32_t> chunk(users.begin() + static_cast<int64_t>(begin),
                                     users.begin() + static_cast<int64_t>(end));
    const tensor::Matrix scores = score_fn(chunk);
    LAYERGCN_CHECK(scores.rows() == static_cast<int64_t>(chunk.size()) &&
                   scores.cols() == num_items);
    for (size_t r = 0; r < chunk.size(); ++r) {
      const int32_t u = chunk[r];
      std::vector<bool> excluded(static_cast<size_t>(num_items), false);
      for (int32_t i : user_items[static_cast<size_t>(u)]) {
        excluded[static_cast<size_t>(i)] = true;
      }
      for (int32_t i : TopKIndices(scores.row(static_cast<int64_t>(r)),
                                   num_items, k, &excluded)) {
        ++exposure[static_cast<size_t>(i)];
        popularity_sum += dataset.train_graph.ItemDegree(i);
        ++rec_count;
      }
    }
  }

  BeyondAccuracyMetrics out;
  if (rec_count == 0) return out;
  int64_t covered = 0;
  for (int64_t e : exposure) covered += (e > 0);
  out.coverage =
      static_cast<double>(covered) / static_cast<double>(num_items);
  out.avg_popularity = popularity_sum / static_cast<double>(rec_count);

  // Gini over exposure counts (ascending).
  std::vector<int64_t> sorted = exposure;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0, weighted = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    total += static_cast<double>(sorted[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
  }
  const double n = static_cast<double>(sorted.size());
  if (total > 0.0) {
    out.gini = 2.0 * weighted / (n * total) - (n + 1.0) / n;
  }
  return out;
}

}  // namespace layergcn::eval
