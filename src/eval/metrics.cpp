#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

#include "util/logging.h"

namespace layergcn::eval {

std::string RankingMetrics::ToString() const {
  std::ostringstream ss;
  bool first = true;
  for (const auto& [k, v] : recall) {
    if (!first) ss << " ";
    first = false;
    ss << "R@" << k << "=" << v;
  }
  for (const auto& [k, v] : ndcg) {
    ss << " N@" << k << "=" << v;
  }
  return ss.str();
}

double RecallAtK(const std::vector<int32_t>& ranked,
                 const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty()) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(ground_truth.size());
}

double NdcgAtK(const std::vector<int32_t>& ranked,
               const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty()) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  double dcg = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);  // rank i+1
    }
  }
  const int ideal = std::min<int>(k, static_cast<int>(ground_truth.size()));
  double idcg = 0.0;
  for (int i = 0; i < ideal; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double PrecisionAtK(const std::vector<int32_t>& ranked,
                    const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty() || k <= 0) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double HitRateAtK(const std::vector<int32_t>& ranked,
                  const std::vector<int32_t>& ground_truth, int k) {
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      return 1.0;
    }
  }
  return 0.0;
}

double AveragePrecisionAtK(const std::vector<int32_t>& ranked,
                           const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty() || k <= 0) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  double sum = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const int denom = std::min<int>(k, static_cast<int>(ground_truth.size()));
  return denom > 0 ? sum / denom : 0.0;
}

double ReciprocalRank(const std::vector<int32_t>& ranked,
                      const std::vector<int32_t>& ground_truth) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[i])) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

std::vector<int32_t> TopKIndicesSortedExclude(
    const float* scores, int64_t n, int k,
    const std::vector<int32_t>& excluded_sorted) {
  LAYERGCN_CHECK_GT(k, 0);
  using Entry = std::pair<float, int64_t>;  // (score, -index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  size_t cur = 0;
  for (int64_t i = 0; i < n; ++i) {
    while (cur < excluded_sorted.size() && excluded_sorted[cur] < i) ++cur;
    if (cur < excluded_sorted.size() && excluded_sorted[cur] == i) {
      ++cur;
      continue;
    }
    const Entry e{scores[i], -i};
    if (static_cast<int>(heap.size()) < k) {
      heap.push(e);
    } else if (e > heap.top()) {
      heap.pop();
      heap.push(e);
    }
  }
  std::vector<int32_t> out(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<int32_t>(-heap.top().second);
    heap.pop();
  }
  return out;
}

MultiKMetrics::MultiKMetrics(std::vector<int> ks) : ks_(std::move(ks)) {
  LAYERGCN_CHECK(!ks_.empty());
  for (int k : ks_) LAYERGCN_CHECK_GT(k, 0);
  max_k_ = *std::max_element(ks_.begin(), ks_.end());
  order_.resize(ks_.size());
  for (size_t i = 0; i < ks_.size(); ++i) order_[i] = i;
  std::sort(order_.begin(), order_.end(),
            [this](size_t a, size_t b) { return ks_[a] < ks_[b]; });
  cum_discount_.resize(static_cast<size_t>(max_k_) + 1, 0.0);
  for (int i = 1; i <= max_k_; ++i) {
    cum_discount_[static_cast<size_t>(i)] =
        cum_discount_[static_cast<size_t>(i) - 1] +
        1.0 / std::log2(static_cast<double>(i) + 1.0);
  }
}

void MultiKMetrics::Compute(const std::vector<int32_t>& ranked,
                            const std::vector<int32_t>& ground_truth,
                            double* recall, double* ndcg) const {
  for (size_t i = 0; i < ks_.size(); ++i) {
    recall[i] = 0.0;
    ndcg[i] = 0.0;
  }
  if (ground_truth.empty()) return;
  const double inv_gt = 1.0 / static_cast<double>(ground_truth.size());
  const auto record = [&](size_t ki, int hits, double dcg) {
    recall[ki] = static_cast<double>(hits) * inv_gt;
    const int ideal =
        std::min<int>(ks_[ki], static_cast<int>(ground_truth.size()));
    const double idcg = cum_discount_[static_cast<size_t>(ideal)];
    ndcg[ki] = idcg > 0.0 ? dcg / idcg : 0.0;
  };

  const int limit = std::min<int>(max_k_, static_cast<int>(ranked.size()));
  int hits = 0;
  double dcg = 0.0;
  size_t oi = 0;
  for (int pos = 0; pos < limit; ++pos) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(pos)])) {
      ++hits;
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
    while (oi < order_.size() && ks_[order_[oi]] == pos + 1) {
      record(order_[oi], hits, dcg);
      ++oi;
    }
  }
  // Cutoffs beyond the list length saturate at the full-list prefix.
  while (oi < order_.size()) {
    record(order_[oi], hits, dcg);
    ++oi;
  }
}

std::vector<int32_t> TopKIndices(const float* scores, int64_t n, int k,
                                 const std::vector<bool>* excluded) {
  LAYERGCN_CHECK_GT(k, 0);
  // Min-heap of (score, -index) keeps the k best with deterministic
  // tie-breaking (lower index wins ties).
  using Entry = std::pair<float, int64_t>;  // (score, -index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int64_t i = 0; i < n; ++i) {
    if (excluded != nullptr && (*excluded)[static_cast<size_t>(i)]) continue;
    const Entry e{scores[i], -i};
    if (static_cast<int>(heap.size()) < k) {
      heap.push(e);
    } else if (e > heap.top()) {
      heap.pop();
      heap.push(e);
    }
  }
  std::vector<int32_t> out(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<int32_t>(-heap.top().second);
    heap.pop();
  }
  return out;
}

}  // namespace layergcn::eval
