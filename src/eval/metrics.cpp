#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

#include "util/logging.h"

namespace layergcn::eval {

std::string RankingMetrics::ToString() const {
  std::ostringstream ss;
  bool first = true;
  for (const auto& [k, v] : recall) {
    if (!first) ss << " ";
    first = false;
    ss << "R@" << k << "=" << v;
  }
  for (const auto& [k, v] : ndcg) {
    ss << " N@" << k << "=" << v;
  }
  return ss.str();
}

double RecallAtK(const std::vector<int32_t>& ranked,
                 const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty()) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(ground_truth.size());
}

double NdcgAtK(const std::vector<int32_t>& ranked,
               const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty()) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  double dcg = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);  // rank i+1
    }
  }
  const int ideal = std::min<int>(k, static_cast<int>(ground_truth.size()));
  double idcg = 0.0;
  for (int i = 0; i < ideal; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double PrecisionAtK(const std::vector<int32_t>& ranked,
                    const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty() || k <= 0) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double HitRateAtK(const std::vector<int32_t>& ranked,
                  const std::vector<int32_t>& ground_truth, int k) {
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      return 1.0;
    }
  }
  return 0.0;
}

double AveragePrecisionAtK(const std::vector<int32_t>& ranked,
                           const std::vector<int32_t>& ground_truth, int k) {
  if (ground_truth.empty() || k <= 0) return 0.0;
  const int limit = std::min<int>(k, static_cast<int>(ranked.size()));
  int hits = 0;
  double sum = 0.0;
  for (int i = 0; i < limit; ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[static_cast<size_t>(i)])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  const int denom = std::min<int>(k, static_cast<int>(ground_truth.size()));
  return denom > 0 ? sum / denom : 0.0;
}

double ReciprocalRank(const std::vector<int32_t>& ranked,
                      const std::vector<int32_t>& ground_truth) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (std::binary_search(ground_truth.begin(), ground_truth.end(),
                           ranked[i])) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

std::vector<int32_t> TopKIndices(const float* scores, int64_t n, int k,
                                 const std::vector<bool>* excluded) {
  LAYERGCN_CHECK_GT(k, 0);
  // Min-heap of (score, -index) keeps the k best with deterministic
  // tie-breaking (lower index wins ties).
  using Entry = std::pair<float, int64_t>;  // (score, -index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (int64_t i = 0; i < n; ++i) {
    if (excluded != nullptr && (*excluded)[static_cast<size_t>(i)]) continue;
    const Entry e{scores[i], -i};
    if (static_cast<int>(heap.size()) < k) {
      heap.push(e);
    } else if (e > heap.top()) {
      heap.pop();
      heap.push(e);
    }
  }
  std::vector<int32_t> out(heap.size());
  for (int64_t i = static_cast<int64_t>(heap.size()) - 1; i >= 0; --i) {
    out[static_cast<size_t>(i)] = static_cast<int32_t>(-heap.top().second);
    heap.pop();
  }
  return out;
}

}  // namespace layergcn::eval
