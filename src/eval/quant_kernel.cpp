#include "eval/quant_kernel.h"

#include <algorithm>
#include <memory>

#include "eval/rank_heap.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/thread_pool.h"

namespace layergcn::eval {
namespace {

using internal::DeadlineExpired;
using internal::HeapEntry;
using internal::HeapPush;
using internal::MaybeSlowScore;
using internal::Worse;

// The shared tile traversal: `score_block(r, j0, jn, out)` fills `out[j]`
// with the score of (tile user r, item j0 + j) for j in [0, jn). Everything
// around it — tiling, exclusion cursors, heaps, deadline checks, result
// extraction — is encoding-independent and identical to FusedScoreTopK.
template <typename ScoreBlock>
std::vector<std::vector<int32_t>> TiledScoreTopK(
    int64_t num_users_total, const std::vector<int32_t>& user_ids,
    int64_t num_items, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out, const char* span_name,
    ScoreBlock&& score_block) {
  LAYERGCN_CHECK_GT(k, 0);
  (void)num_users_total;
  const int64_t num_users = static_cast<int64_t>(user_ids.size());
  std::vector<std::vector<int32_t>> out(user_ids.size());
  if (scores_out != nullptr) scores_out->assign(user_ids.size(), {});
  if (num_users == 0 || num_items == 0) return out;
  OBS_SPAN(span_name);
  OBS_COUNT("quant_rank.calls", 1);
  OBS_COUNT("quant_rank.users_ranked", num_users);

  std::unique_ptr<util::ThreadPool> local_pool;
  util::ThreadPool* pool = util::parallel::ComputePool();
  if (config.num_threads > 0) {
    local_pool = std::make_unique<util::ThreadPool>(config.num_threads);
    pool = local_pool.get();
  }

  const int64_t user_tile = std::max<int64_t>(1, config.user_tile);
  const int64_t item_tile = std::max<int64_t>(16, config.item_tile);
  const int64_t cap = std::min<int64_t>(k, num_items);
  const int64_t num_tiles = (num_users + user_tile - 1) / user_tile;

  util::ParallelForRanges(pool, 0, num_tiles, [&](int64_t tile_lo,
                                                  int64_t tile_hi) {
    std::vector<float> scores(static_cast<size_t>(item_tile));
    std::vector<HeapEntry> heaps(static_cast<size_t>(user_tile * cap));
    std::vector<int64_t> heap_sizes(static_cast<size_t>(user_tile));
    std::vector<size_t> cursors(static_cast<size_t>(user_tile));

    for (int64_t tile = tile_lo; tile < tile_hi; ++tile) {
      if (DeadlineExpired(deadline)) break;  // untouched users stay empty
      const int64_t base = tile * user_tile;
      const int64_t m = std::min(user_tile, num_users - base);
      for (int64_t r = 0; r < m; ++r) {
        heap_sizes[static_cast<size_t>(r)] = 0;
        cursors[static_cast<size_t>(r)] = 0;
      }

      for (int64_t j0 = 0; j0 < num_items; j0 += item_tile) {
        // Deadline is enforced at item-tile boundaries, exactly like the
        // f32 kernel: cheap to check, bounded detection latency.
        MaybeSlowScore(deadline);
        if (j0 > 0 && DeadlineExpired(deadline)) break;
        const int64_t jn = std::min(item_tile, num_items - j0);
        for (int64_t r = 0; r < m; ++r) {
          score_block(user_ids[static_cast<size_t>(base + r)], j0, jn,
                      scores.data());

          const std::vector<int32_t>* exc =
              exclude != nullptr
                  ? &(*exclude)[static_cast<size_t>(
                        user_ids[static_cast<size_t>(base + r)])]
                  : nullptr;
          size_t& cur = cursors[static_cast<size_t>(r)];
          HeapEntry* heap = heaps.data() + r * cap;
          int64_t* hs = &heap_sizes[static_cast<size_t>(r)];
          for (int64_t j = 0; j < jn; ++j) {
            const int32_t item = static_cast<int32_t>(j0 + j);
            if (exc != nullptr) {
              while (cur < exc->size() && (*exc)[cur] < item) ++cur;
              if (cur < exc->size() && (*exc)[cur] == item) {
                ++cur;
                continue;
              }
            }
            HeapPush(heap, hs, cap, HeapEntry{scores[static_cast<size_t>(j)],
                                              item});
          }
        }
      }

      for (int64_t r = 0; r < m; ++r) {
        HeapEntry* heap = heaps.data() + r * cap;
        const int64_t hs = heap_sizes[static_cast<size_t>(r)];
        std::sort(heap, heap + hs,
                  [](const HeapEntry& a, const HeapEntry& b) {
                    return Worse(b, a);
                  });
        std::vector<int32_t>& ranked = out[static_cast<size_t>(base + r)];
        ranked.resize(static_cast<size_t>(hs));
        for (int64_t i = 0; i < hs; ++i) {
          ranked[static_cast<size_t>(i)] = heap[i].idx;
        }
        if (scores_out != nullptr) {
          std::vector<float>& sc =
              (*scores_out)[static_cast<size_t>(base + r)];
          sc.resize(static_cast<size_t>(hs));
          for (int64_t i = 0; i < hs; ++i) {
            sc[static_cast<size_t>(i)] = heap[i].score;
          }
        }
      }
    }
  });
  return out;
}

}  // namespace

const char* ScoreEncodingName(ScoreEncoding encoding) {
  switch (encoding) {
    case ScoreEncoding::kF32: return "f32";
    case ScoreEncoding::kInt8: return "int8";
    case ScoreEncoding::kBf16: return "bf16";
  }
  return "?";
}

bool ParseScoreEncoding(const std::string& name, ScoreEncoding* out) {
  if (name == "f32") { *out = ScoreEncoding::kF32; return true; }
  if (name == "int8") { *out = ScoreEncoding::kInt8; return true; }
  if (name == "bf16") { *out = ScoreEncoding::kBf16; return true; }
  return false;
}

std::vector<std::vector<int32_t>> QuantScoreTopKInt8(
    const tensor::Int8Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Int8Panel& item_panel, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out) {
  LAYERGCN_CHECK_EQ(user_q.cols, item_panel.depth)
      << "int8 user/item depth mismatch";
  const int64_t depth = item_panel.depth;
  const int64_t num_items = item_panel.count;

  // Per-thread int32 accumulator tile, sized once. Each call to the block
  // lambda is single-threaded within one worker, so a thread_local scratch
  // is race-free and allocation-free on the hot path.
  thread_local std::vector<int32_t> acc;

  return TiledScoreTopK(
      user_q.rows, user_ids, num_items, k, exclude, config, deadline,
      scores_out, "eval.quant_rank.int8",
      [&](int32_t user, int64_t j0, int64_t jn, float* out_scores) {
        if (static_cast<int64_t>(acc.size()) < jn) {
          acc.resize(static_cast<size_t>(jn));
        }
        int32_t* a = acc.data();
        std::fill(a, a + jn, 0);
        const int8_t* urow = user_q.row(user);
        for (int64_t p = 0; p < depth; ++p) {
          const int32_t uq = urow[p];
          if (uq == 0) continue;
          const int8_t* prow = item_panel.depth_row(p) + j0;
#pragma omp simd
          for (int64_t j = 0; j < jn; ++j) {
            a[j] += uq * static_cast<int32_t>(prow[j]);
          }
        }
        const float su = user_q.scales[static_cast<size_t>(user)];
        const float* si = item_panel.scales.data() + j0;
#pragma omp simd
        for (int64_t j = 0; j < jn; ++j) {
          out_scores[j] = su * si[j] * static_cast<float>(a[j]);
        }
      });
}

std::vector<std::vector<int32_t>> QuantScoreTopKBf16(
    const tensor::Bf16Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Bf16Panel& item_panel, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out) {
  LAYERGCN_CHECK_EQ(user_q.cols, item_panel.depth)
      << "bf16 user/item depth mismatch";
  const int64_t depth = item_panel.depth;
  const int64_t num_items = item_panel.count;

  // The user row widens to f32 once per block; items widen in-register in
  // the inner loop (a 16-bit shift, vectorizable).
  thread_local std::vector<float> urow_f32;

  return TiledScoreTopK(
      user_q.rows, user_ids, num_items, k, exclude, config, deadline,
      scores_out, "eval.quant_rank.bf16",
      [&](int32_t user, int64_t j0, int64_t jn, float* out_scores) {
        if (static_cast<int64_t>(urow_f32.size()) < depth) {
          urow_f32.resize(static_cast<size_t>(depth));
        }
        const uint16_t* urow = user_q.row(user);
        for (int64_t p = 0; p < depth; ++p) {
          urow_f32[static_cast<size_t>(p)] = tensor::Bf16ToF32(urow[p]);
        }
        std::fill(out_scores, out_scores + jn, 0.f);
        for (int64_t p = 0; p < depth; ++p) {
          const float up = urow_f32[static_cast<size_t>(p)];
          const uint16_t* prow = item_panel.depth_row(p) + j0;
#pragma omp simd
          for (int64_t j = 0; j < jn; ++j) {
            out_scores[j] += up * tensor::Bf16ToF32(prow[j]);
          }
        }
      });
}

namespace {

// Shared scaffolding for the quantized subset kernels: per-user serial
// scan through internal::RankCandidateSubset with a per-pair score
// callback (see rank_heap.h for the determinism/parity argument).
template <typename ScorePair>
std::vector<std::vector<int32_t>> SubsetTopK(
    const std::vector<int32_t>& user_ids, const std::vector<int32_t>& candidates,
    int64_t num_items, int k, const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out, const char* span_name,
    ScorePair&& score) {
  LAYERGCN_CHECK_GT(k, 0);
  (void)num_items;
  const int64_t n = static_cast<int64_t>(candidates.size());
  std::vector<std::vector<int32_t>> out(user_ids.size());
  if (scores_out != nullptr) scores_out->assign(user_ids.size(), {});
  if (user_ids.empty() || n == 0) return out;
  OBS_SPAN(span_name);
  OBS_COUNT("quant_rank.subset_calls", 1);

  const int64_t cap = std::min<int64_t>(k, n);
  const int64_t item_tile = std::max<int64_t>(16, config.item_tile);
  std::vector<HeapEntry> heap;
  for (size_t r = 0; r < user_ids.size(); ++r) {
    if (r > 0 && DeadlineExpired(deadline)) break;
    const int32_t u = user_ids[r];
    const std::vector<int32_t>* exc =
        exclude != nullptr ? &(*exclude)[static_cast<size_t>(u)] : nullptr;
    internal::RankCandidateSubset(
        candidates.data(), n, cap, item_tile, exc, deadline, &heap, &out[r],
        scores_out != nullptr ? &(*scores_out)[r] : nullptr,
        [&](int32_t item) { return score(u, item); });
  }
  return out;
}

}  // namespace

std::vector<std::vector<int32_t>> QuantScoreTopKInt8Subset(
    const tensor::Int8Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Int8Panel& item_panel,
    const std::vector<int32_t>& candidates, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out) {
  LAYERGCN_CHECK_EQ(user_q.cols, item_panel.depth)
      << "int8 user/item depth mismatch";
  const int64_t depth = item_panel.depth;
  const int64_t count = item_panel.count;
  return SubsetTopK(
      user_ids, candidates, count, k, exclude, config, deadline, scores_out,
      "eval.quant_rank.int8_subset", [&](int32_t user, int32_t item) {
        // Exact int32 accumulation — the same integer sum the full kernel
        // computes, just gathered column-wise from the depth-major panel.
        const int8_t* urow = user_q.row(user);
        const int8_t* col = item_panel.data.data() + item;
        int32_t acc = 0;
        for (int64_t p = 0; p < depth; ++p) {
          acc += static_cast<int32_t>(urow[p]) *
                 static_cast<int32_t>(col[p * count]);
        }
        return user_q.scales[static_cast<size_t>(user)] *
               item_panel.scales[static_cast<size_t>(item)] *
               static_cast<float>(acc);
      });
}

std::vector<std::vector<int32_t>> QuantScoreTopKBf16Subset(
    const tensor::Bf16Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Bf16Panel& item_panel,
    const std::vector<int32_t>& candidates, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config, RankDeadline* deadline,
    std::vector<std::vector<float>>* scores_out) {
  LAYERGCN_CHECK_EQ(user_q.cols, item_panel.depth)
      << "bf16 user/item depth mismatch";
  const int64_t depth = item_panel.depth;
  const int64_t count = item_panel.count;
  return SubsetTopK(
      user_ids, candidates, count, k, exclude, config, deadline, scores_out,
      "eval.quant_rank.bf16_subset", [&](int32_t user, int32_t item) {
        // Ascending-depth f32 accumulation of widened products — the exact
        // per-element order of the full bf16 kernel.
        const uint16_t* urow = user_q.row(user);
        const uint16_t* col = item_panel.data.data() + item;
        float acc = 0.f;
        for (int64_t p = 0; p < depth; ++p) {
          acc += tensor::Bf16ToF32(urow[p]) * tensor::Bf16ToF32(col[p * count]);
        }
        return acc;
      });
}

}  // namespace layergcn::eval
