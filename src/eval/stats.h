// Statistical helpers: paired t-test for the significance marks in paper
// Table II ("significant at the level of p < 0.05 with a paired t-test").

#ifndef LAYERGCN_EVAL_STATS_H_
#define LAYERGCN_EVAL_STATS_H_

#include <vector>

namespace layergcn::eval {

/// Result of a paired t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;  // two-sided
  int degrees_of_freedom = 0;
};

/// Two-sided paired t-test over matched samples a and b (same length >= 2).
/// Returns p = 1 when the differences have zero variance and zero mean.
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Mean of a sample.
double Mean(const std::vector<double>& xs);

/// Unbiased sample standard deviation (n-1 denominator).
double SampleStdDev(const std::vector<double>& xs);

/// Regularized incomplete beta function I_x(a, b) via continued fractions
/// (Lentz), used for the Student-t CDF. Exposed for testing.
double IncompleteBeta(double a, double b, double x);

/// Student-t two-sided tail probability for statistic `t` with `df` degrees
/// of freedom.
double StudentTTwoSidedP(double t, int df);

}  // namespace layergcn::eval

#endif  // LAYERGCN_EVAL_STATS_H_
