// Beyond-accuracy evaluation: catalog coverage and popularity bias of the
// recommendation lists.
//
// Accuracy metrics alone reward recommending popular items; the
// degree-sensitive pruning of LayerGCN is motivated partly by hub
// over-smoothing, so these diagnostics show *what* a model recommends:
//
//   * coverage@K      — fraction of the catalog appearing in at least one
//                       user's top-K,
//   * avg_popularity  — mean training degree of recommended items (lower =
//                       more long-tail exposure),
//   * gini@K          — Gini coefficient of recommendation counts across
//                       items (lower = exposure spread more evenly).

#ifndef LAYERGCN_EVAL_BEYOND_ACCURACY_H_
#define LAYERGCN_EVAL_BEYOND_ACCURACY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/evaluator.h"

namespace layergcn::eval {

/// Beyond-accuracy summary of top-K recommendation lists.
struct BeyondAccuracyMetrics {
  double coverage = 0.0;        // in [0, 1]
  double avg_popularity = 0.0;  // mean training item degree of recs
  double gini = 0.0;            // exposure inequality across items

  std::string ToString() const;
};

/// Computes the metrics over the top-K lists of the given users (training
/// items excluded, all-ranking protocol). `score_fn` is the same callback
/// the Evaluator uses.
BeyondAccuracyMetrics EvaluateBeyondAccuracy(
    const data::Dataset& dataset, const ScoreFn& score_fn,
    const std::vector<int32_t>& users, int k, int64_t chunk_size = 512);

}  // namespace layergcn::eval

#endif  // LAYERGCN_EVAL_BEYOND_ACCURACY_H_
