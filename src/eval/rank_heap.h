// Internals shared by the f32 fused ranking kernel (fused_rank.cpp) and
// the quantized scoring kernels (quant_kernel.cpp): the bounded top-K heap
// with the (score desc, index asc) total order, and the cooperative
// deadline / slow-score fault helpers. Splitting these out keeps every
// encoding's ranking semantics — tie-breaking, deadline enforcement at
// tile boundaries, partial-result behavior — literally the same code.

#ifndef LAYERGCN_EVAL_RANK_HEAP_H_
#define LAYERGCN_EVAL_RANK_HEAP_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "eval/fused_rank.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/fault_injection.h"

namespace layergcn::eval::internal {

// True when the deadline is armed and has passed. The first worker to see
// the clock run out latches `expired` so later checks (and the caller) skip
// the clock read.
inline bool DeadlineExpired(RankDeadline* deadline) {
  if (deadline == nullptr || deadline->deadline_us == 0) return false;
  if (deadline->expired.load(std::memory_order_relaxed)) return true;
  if (obs::NowMicros() < deadline->deadline_us) return false;
  if (!deadline->expired.exchange(true, std::memory_order_relaxed)) {
    OBS_COUNT("fused_rank.deadline_expired", 1);
  }
  return true;
}

// Fault point `serve.slow_score`: stall scoring until just past the armed
// deadline so the next boundary check trips mid-request. Only meaningful
// when a deadline is set (otherwise there is nothing to overrun).
inline void MaybeSlowScore(const RankDeadline* deadline) {
  if (deadline == nullptr || deadline->deadline_us == 0) return;
  if (!util::fault::Fire("serve.slow_score")) return;
  const uint64_t until = deadline->deadline_us + 1000;
  while (obs::NowMicros() < until) {
  }
}

// Heap entry ordered by (score desc, index asc) — the TopKIndices order.
struct HeapEntry {
  float score;
  int32_t idx;
};

// True when `a` ranks strictly below `b`.
inline bool Worse(const HeapEntry& a, const HeapEntry& b) {
  return a.score != b.score ? a.score < b.score : a.idx > b.idx;
}

// Bounded min-heap over a flat array: the root is the worst kept entry.
inline void HeapPush(HeapEntry* h, int64_t* size, int64_t cap, HeapEntry e) {
  if (*size < cap) {
    int64_t i = (*size)++;
    h[i] = e;
    while (i > 0) {
      const int64_t parent = (i - 1) / 2;
      if (!Worse(h[i], h[parent])) break;
      std::swap(h[i], h[parent]);
      i = parent;
    }
    return;
  }
  if (!Worse(h[0], e)) return;
  h[0] = e;
  int64_t i = 0;
  for (;;) {
    const int64_t l = 2 * i + 1;
    const int64_t r = 2 * i + 2;
    int64_t worst = i;
    if (l < cap && Worse(h[l], h[worst])) worst = l;
    if (r < cap && Worse(h[r], h[worst])) worst = r;
    if (worst == i) break;
    std::swap(h[i], h[worst]);
    i = worst;
  }
}

// Ranks one user over a sorted-ascending candidate subset — the shared
// traversal behind the per-encoding *Subset kernels (two-stage retrieval
// re-rank). `score(item)` returns the user-item score for a global item
// id; it must compute exactly what the full kernel would for that pair,
// which is what makes the subset ranking a strict restriction of the full
// ranking. The walk mirrors the full kernels: candidates are consumed in
// `item_tile`-sized runs with the deadline checked at each run boundary
// (the first run always completes, like the full kernels' first item
// tile), the sorted exclusion list advances with a monotone cursor, and
// results come out of the same bounded heap, so (score desc, id asc)
// tie-breaking and partial-on-deadline semantics are literally the same
// code path.
template <typename ScoreFn>
inline void RankCandidateSubset(const int32_t* candidates, int64_t n,
                                int64_t cap, int64_t item_tile,
                                const std::vector<int32_t>* exclude,
                                RankDeadline* deadline,
                                std::vector<HeapEntry>* heap_buf,
                                std::vector<int32_t>* ranked_out,
                                std::vector<float>* scores_out,
                                ScoreFn&& score) {
  if (static_cast<int64_t>(heap_buf->size()) < cap) {
    heap_buf->resize(static_cast<size_t>(cap));
  }
  HeapEntry* heap = heap_buf->data();
  int64_t hs = 0;
  size_t cur = 0;
  for (int64_t j0 = 0; j0 < n; j0 += item_tile) {
    MaybeSlowScore(deadline);
    if (j0 > 0 && DeadlineExpired(deadline)) break;
    const int64_t jn = std::min(item_tile, n - j0);
    for (int64_t j = 0; j < jn; ++j) {
      const int32_t item = candidates[j0 + j];
      if (exclude != nullptr) {
        while (cur < exclude->size() && (*exclude)[cur] < item) ++cur;
        if (cur < exclude->size() && (*exclude)[cur] == item) {
          ++cur;
          continue;
        }
      }
      HeapPush(heap, &hs, cap, HeapEntry{score(item), item});
    }
  }
  std::sort(heap, heap + hs, [](const HeapEntry& a, const HeapEntry& b) {
    return Worse(b, a);
  });
  ranked_out->resize(static_cast<size_t>(hs));
  for (int64_t i = 0; i < hs; ++i) {
    (*ranked_out)[static_cast<size_t>(i)] = heap[i].idx;
  }
  if (scores_out != nullptr) {
    scores_out->resize(static_cast<size_t>(hs));
    for (int64_t i = 0; i < hs; ++i) {
      (*scores_out)[static_cast<size_t>(i)] = heap[i].score;
    }
  }
}

}  // namespace layergcn::eval::internal

#endif  // LAYERGCN_EVAL_RANK_HEAP_H_
