// Fused blocked score-and-rank kernel for all-ranking evaluation.
//
// The all-ranking protocol scores every item for every evaluated user and
// keeps the top-K. The materialize-then-rank pipeline builds a
// |chunk| x |items| score matrix first and ranks each row afterwards; this
// kernel fuses the two: for each user tile x item tile it computes a small
// score block with the register-blocked GEMM micro-kernel
// (tensor/gemm.h), drops training items inline by walking the user's
// sorted adjacency list (no per-user vector<bool>), and streams the
// surviving scores into a bounded per-user top-K heap. The full score
// matrix is never materialized; per-worker scratch (score tile + heaps) is
// allocated once per row range and reused.
//
// Ranking order matches eval::TopKIndices exactly: items ordered by
// (score desc, index asc). That total order makes the top-K set unique, so
// the result is deterministic for any tile size or worker count.

#ifndef LAYERGCN_EVAL_FUSED_RANK_H_
#define LAYERGCN_EVAL_FUSED_RANK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace layergcn::eval {

/// Cooperative per-call deadline for the fused kernel (serving requests
/// carry one; offline evaluation passes none). The kernel checks the clock
/// at item-tile boundaries — never inside the GEMM micro-kernel — and on
/// expiry stops scanning: users whose tiles already streamed keep their
/// (possibly truncated) top-K, untouched users come back empty, and
/// `expired` is set so the caller can flag the result partial. Which items
/// were scanned before expiry is timing-dependent, so partial results are
/// NOT deterministic — complete results (expired == false) remain
/// bit-identical to an undeadlined call.
struct RankDeadline {
  /// Absolute deadline on the obs::NowMicros() clock; 0 disarms the check.
  uint64_t deadline_us = 0;
  /// Set by the kernel when the deadline tripped (workers share the flag).
  std::atomic<bool> expired{false};
};

/// Tuning knobs for the fused kernel.
struct FusedRankConfig {
  /// When false, ranking uses the exact-reference materialize-then-rank
  /// fallback (naive dot products + TopKIndices) — the bit-level oracle the
  /// fused path is tested against.
  bool enabled = true;
  /// Users scored per tile (heaps live in the scratch of one worker).
  int64_t user_tile = 64;
  /// Items scored per tile (score block is user_tile x item_tile floats).
  int64_t item_tile = 1024;
  /// Worker count: 0 = the shared compute pool (util::parallel::
  /// ComputePool()), otherwise a dedicated pool of this size (used by the
  /// determinism tests).
  int num_threads = 0;
};

/// Top-K item rankings (best first) for each requested user.
///
/// `user_emb` holds one row per *node or user* — `user_ids[r]` indexes into
/// it — and `item_emb` one row per item; both must share the same width.
/// The score of (user u, item i) is the inner product of their rows.
/// `exclude` (optional) maps each user id to its sorted-ascending list of
/// excluded items (training interactions); excluded items never appear in
/// the ranking. Returns one ranked list per entry of `user_ids`, each of
/// length min(k, num_items - |excluded|).
///
/// `deadline` (optional) bounds the call's wall clock (see RankDeadline).
/// `scores_out` (optional) receives the score of every returned item,
/// aligned with the returned index lists.
std::vector<std::vector<int32_t>> FusedScoreTopK(
    const tensor::Matrix& user_emb, const std::vector<int32_t>& user_ids,
    const tensor::Matrix& item_emb, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config = {}, RankDeadline* deadline = nullptr,
    std::vector<std::vector<float>>* scores_out = nullptr);

/// Exact top-K restricted to a candidate subset (the two-stage retrieval
/// re-rank). `candidates` is a sorted-ascending, duplicate-free list of
/// item ids; every other argument keeps FusedScoreTopK's contract. Each
/// (user, candidate) score is the ascending-depth scalar inner product —
/// bit-identical to what FusedScoreTopK computes for the same pair — so
/// the result equals FusedScoreTopK's ranking filtered to the candidate
/// set; with `candidates` = all items it is bit-identical outright.
/// Deadline checks happen every config.item_tile candidates; candidate
/// lists are small (~1-4k), so the call runs on the calling thread —
/// serving parallelism comes from concurrent requests, not from splitting
/// one subset.
std::vector<std::vector<int32_t>> FusedScoreTopKSubset(
    const tensor::Matrix& user_emb, const std::vector<int32_t>& user_ids,
    const tensor::Matrix& item_emb, const std::vector<int32_t>& candidates,
    int k, const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config = {}, RankDeadline* deadline = nullptr,
    std::vector<std::vector<float>>* scores_out = nullptr);

}  // namespace layergcn::eval

#endif  // LAYERGCN_EVAL_FUSED_RANK_H_
