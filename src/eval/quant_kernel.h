// Quantized score-and-rank kernels for serving (int8 / bf16 encodings).
//
// These are the bandwidth-conscious siblings of eval::FusedScoreTopK: the
// same user-tile x item-tile traversal, the same bounded top-K heap with
// the (score desc, id asc) total order, the same sorted-exclusion cursor
// walk, and the same RankDeadline enforcement at item-tile boundaries —
// only the score-block computation differs per encoding:
//
//   int8   score(u, i) = s_u * s_i * Σ_p qu[p] * qi[p], with the integer
//          dot accumulated exactly in int32. Integer addition commutes, so
//          the int8 ranking is bit-deterministic at any thread count or
//          tile size by construction.
//   bf16   score(u, i) = Σ_p bf16(u[p]) * bf16(i[p]) accumulated in f32 in
//          ascending-depth order — the same per-element order as the f32
//          kernel, hence equally deterministic.
//
// Item embeddings arrive as a depth-major panel (tensor/quant.h) built
// once per snapshot load, so no per-request transpose happens on the hot
// path. Rankings are deterministic *within* an encoding; across encodings
// they differ by quantization error (measured in bench_serve_latency's
// quantization pass and gated in tools/check.sh).

#ifndef LAYERGCN_EVAL_QUANT_KERNEL_H_
#define LAYERGCN_EVAL_QUANT_KERNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/fused_rank.h"
#include "tensor/quant.h"

namespace layergcn::eval {

/// Which embedding encoding a scoring path reads. kF32 is the bit-exact
/// reference (FusedScoreTopK); the quantized encodings trade bounded score
/// error for smaller embedding streams.
enum class ScoreEncoding { kF32, kInt8, kBf16 };

const char* ScoreEncodingName(ScoreEncoding encoding);

/// Parses "f32" / "int8" / "bf16". Returns false on anything else.
bool ParseScoreEncoding(const std::string& name, ScoreEncoding* out);

/// Top-K ranking over int8-quantized embeddings. Mirrors FusedScoreTopK's
/// contract: one ranked list (best first) per entry of `user_ids`,
/// `exclude` maps user id -> sorted excluded items, `deadline` bounds the
/// scan at item-tile boundaries, `scores_out` receives the dequantized
/// scores aligned with the rankings. `config.enabled` is ignored (there is
/// no materialized reference path for quantized scoring; quant_test checks
/// the kernel against a scalar reference instead).
std::vector<std::vector<int32_t>> QuantScoreTopKInt8(
    const tensor::Int8Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Int8Panel& item_panel, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config = {}, RankDeadline* deadline = nullptr,
    std::vector<std::vector<float>>* scores_out = nullptr);

/// Top-K ranking over bf16 embeddings. Same contract as the int8 kernel.
std::vector<std::vector<int32_t>> QuantScoreTopKBf16(
    const tensor::Bf16Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Bf16Panel& item_panel, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config = {}, RankDeadline* deadline = nullptr,
    std::vector<std::vector<float>>* scores_out = nullptr);

/// Candidate-subset variants for the two-stage retrieval re-rank.
/// `candidates` is a sorted-ascending, duplicate-free item id list; each
/// (user, candidate) score is computed exactly as the full kernel computes
/// it (int8: exact int32 accumulation, order-free; bf16: ascending-depth
/// f32 accumulation), so the subset ranking is the full kernel's ranking
/// filtered to the candidates. Deadline checks run every config.item_tile
/// candidates; like eval::FusedScoreTopKSubset, the scan stays on the
/// calling thread.
std::vector<std::vector<int32_t>> QuantScoreTopKInt8Subset(
    const tensor::Int8Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Int8Panel& item_panel,
    const std::vector<int32_t>& candidates, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config = {}, RankDeadline* deadline = nullptr,
    std::vector<std::vector<float>>* scores_out = nullptr);

std::vector<std::vector<int32_t>> QuantScoreTopKBf16Subset(
    const tensor::Bf16Rows& user_q, const std::vector<int32_t>& user_ids,
    const tensor::Bf16Panel& item_panel,
    const std::vector<int32_t>& candidates, int k,
    const std::vector<std::vector<int32_t>>* exclude,
    const FusedRankConfig& config = {}, RankDeadline* deadline = nullptr,
    std::vector<std::vector<float>>* scores_out = nullptr);

}  // namespace layergcn::eval

#endif  // LAYERGCN_EVAL_QUANT_KERNEL_H_
