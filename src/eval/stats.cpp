#include "eval/stats.h"

#include <cmath>

#include "util/logging.h"

namespace layergcn::eval {

double Mean(const std::vector<double>& xs) {
  LAYERGCN_CHECK(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double SampleStdDev(const std::vector<double>& xs) {
  LAYERGCN_CHECK_GE(xs.size(), 2u);
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double IncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // Continued fraction (Numerical-Recipes-style modified Lentz). Use the
  // symmetry I_x(a,b) = 1 − I_{1−x}(b,a) to keep the fraction convergent.
  const double ln_beta = std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front =
      std::exp(a * std::log(x) + b * std::log(1.0 - x) - ln_beta);
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - IncompleteBeta(b, a, 1.0 - x);
  }
  constexpr double kTiny = 1e-300;
  constexpr int kMaxIter = 300;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double num = m * (b - m) * x / ((a + m2 - 1.0) * (a + m2));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    num = -(a + m) * (a + b + m) * x / ((a + m2) * (a + m2 + 1.0));
    d = 1.0 + num * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + num / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-12) break;
  }
  return front * h / a;
}

double StudentTTwoSidedP(double t, int df) {
  LAYERGCN_CHECK_GE(df, 1);
  const double x =
      static_cast<double>(df) / (static_cast<double>(df) + t * t);
  return IncompleteBeta(static_cast<double>(df) / 2.0, 0.5, x);
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  LAYERGCN_CHECK_EQ(a.size(), b.size());
  LAYERGCN_CHECK_GE(a.size(), 2u);
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double mu = Mean(diff);
  const double sd = SampleStdDev(diff);
  TTestResult r;
  r.degrees_of_freedom = static_cast<int>(a.size()) - 1;
  if (sd == 0.0) {
    r.t_statistic = mu == 0.0 ? 0.0 : (mu > 0.0 ? 1e30 : -1e30);
    r.p_value = mu == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t_statistic = mu / (sd / std::sqrt(static_cast<double>(a.size())));
  r.p_value = StudentTTwoSidedP(r.t_statistic, r.degrees_of_freedom);
  return r;
}

}  // namespace layergcn::eval
