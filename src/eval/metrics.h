// Ranking metrics: Recall@K and NDCG@K (paper Eqs. 26-27).
//
// Metrics follow the all-ranking protocol: for each user every item they
// have not interacted with in training is a candidate; the top-K of the
// score vector is compared against the held-out ground truth.

#ifndef LAYERGCN_EVAL_METRICS_H_
#define LAYERGCN_EVAL_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace layergcn::eval {

/// Metric values keyed by K (e.g. {10: ..., 20: ..., 50: ...}).
struct RankingMetrics {
  std::map<int, double> recall;
  std::map<int, double> ndcg;

  /// "R@20=0.3979 N@20=0.2272 ..." for logs.
  std::string ToString() const;
};

/// Recall@K for one user: |top-K hits| / |ground truth| (Eq. 26).
/// `ranked` is the recommendation list (best first, at least K long or
/// shorter if the candidate set is small); `ground_truth` must be sorted
/// ascending.
double RecallAtK(const std::vector<int32_t>& ranked,
                 const std::vector<int32_t>& ground_truth, int k);

/// NDCG@K for one user with binary relevance: DCG@K / IDCG@K where
/// DCG@K = Σ_{i<=K} [hit_i] / log2(i + 1) (Eq. 27; 2^rel − 1 = rel for
/// binary relevance).
double NdcgAtK(const std::vector<int32_t>& ranked,
               const std::vector<int32_t>& ground_truth, int k);

/// Precision@K: |top-K hits| / K.
double PrecisionAtK(const std::vector<int32_t>& ranked,
                    const std::vector<int32_t>& ground_truth, int k);

/// HitRate@K: 1 if any ground-truth item appears in the top-K, else 0.
double HitRateAtK(const std::vector<int32_t>& ranked,
                  const std::vector<int32_t>& ground_truth, int k);

/// MAP@K: mean of precision-at-hit over the first K positions, normalized
/// by min(K, |ground truth|).
double AveragePrecisionAtK(const std::vector<int32_t>& ranked,
                           const std::vector<int32_t>& ground_truth, int k);

/// MRR: reciprocal rank of the first hit anywhere in `ranked` (0 if none).
double ReciprocalRank(const std::vector<int32_t>& ranked,
                      const std::vector<int32_t>& ground_truth);

/// Selects the indices of the `k` largest scores (ties broken by lower
/// index), best first. `excluded` marks indices to skip (training items).
/// O(n log k) partial heap selection.
std::vector<int32_t> TopKIndices(const float* scores, int64_t n, int k,
                                 const std::vector<bool>* excluded = nullptr);

/// Same selection, but exclusions arrive as a sorted-ascending index list
/// that is walked by a monotone cursor — no per-call flag vector of size n.
std::vector<int32_t> TopKIndicesSortedExclude(
    const float* scores, int64_t n, int k,
    const std::vector<int32_t>& excluded_sorted);

/// Single-pass Recall@K / NDCG@K over a whole cutoff set.
///
/// The naive per-K formulas rescan the ranked list once per (user, K) pair;
/// this helper walks the list once, maintaining the running hit count and
/// DCG, and emits every cutoff as its position streams by (prefix sums).
/// IDCG comes from a cumulative discount table built at construction, so
/// Compute() allocates nothing and is safe to call concurrently.
class MultiKMetrics {
 public:
  /// `ks` are the cutoffs, in the order Compute() reports them.
  explicit MultiKMetrics(std::vector<int> ks);

  /// Fills recall[i] / ndcg[i] with the metric at ks[i] for one user.
  /// `ground_truth` must be sorted ascending; both outputs must hold
  /// ks().size() entries. Matches RecallAtK / NdcgAtK exactly.
  void Compute(const std::vector<int32_t>& ranked,
               const std::vector<int32_t>& ground_truth, double* recall,
               double* ndcg) const;

  const std::vector<int>& ks() const { return ks_; }
  int max_k() const { return max_k_; }

 private:
  std::vector<int> ks_;
  std::vector<size_t> order_;  // indices into ks_, ascending by cutoff
  int max_k_ = 0;
  std::vector<double> cum_discount_;  // [i] = Σ_{j<i} 1/log2(j + 2)
};

}  // namespace layergcn::eval

#endif  // LAYERGCN_EVAL_METRICS_H_
