#include "models/multivae.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace layergcn::models {

void MultiVae::Init(const data::Dataset& dataset,
                    const train::TrainConfig& config, util::Rng* rng) {
  dataset_ = &dataset;
  config_ = config;
  adam_ = train::Adam(train::AdamConfig{.learning_rate = config.learning_rate});
  epoch_ = 0;

  const int64_t ni = dataset.num_items;
  const int64_t h = config.vae_hidden_dim;
  const int64_t z = config.vae_latent_dim;

  enc_w1_ = train::Parameter("enc_w1", ni, h);
  enc_b1_ = train::Parameter("enc_b1", 1, h);
  enc_w_mu_ = train::Parameter("enc_w_mu", h, z);
  enc_b_mu_ = train::Parameter("enc_b_mu", 1, z);
  enc_w_logvar_ = train::Parameter("enc_w_logvar", h, z);
  enc_b_logvar_ = train::Parameter("enc_b_logvar", 1, z);
  dec_w1_ = train::Parameter("dec_w1", z, h);
  dec_b1_ = train::Parameter("dec_b1", 1, h);
  dec_w2_ = train::Parameter("dec_w2", h, ni);
  dec_b2_ = train::Parameter("dec_b2", 1, ni);
  for (train::Parameter* p :
       {&enc_w1_, &enc_w_mu_, &enc_w_logvar_, &dec_w1_, &dec_w2_}) {
    p->InitXavier(rng);
  }
  for (train::Parameter* p :
       {&enc_b1_, &enc_b_mu_, &enc_b_logvar_, &dec_b1_, &dec_b2_}) {
    p->InitConstant(0.f);
  }
}

tensor::Matrix MultiVae::HistoryRows(const std::vector<int32_t>& users) const {
  const auto& user_items = dataset_->train_graph.user_items();
  tensor::Matrix x(static_cast<int64_t>(users.size()), dataset_->num_items);
  for (size_t r = 0; r < users.size(); ++r) {
    const auto& items = user_items[static_cast<size_t>(users[r])];
    if (items.empty()) continue;
    const float v = 1.f / std::sqrt(static_cast<float>(items.size()));
    float* row = x.row(static_cast<int64_t>(r));
    for (int32_t i : items) row[i] = v;
  }
  return x;
}

std::vector<train::Parameter*> MultiVae::Params() {
  return {&enc_w1_,       &enc_b1_, &enc_w_mu_, &enc_b_mu_, &enc_w_logvar_,
          &enc_b_logvar_, &dec_w1_, &dec_b1_,   &dec_w2_,   &dec_b2_};
}

double MultiVae::TrainEpoch(util::Rng* rng,
                            std::vector<double>* batch_losses) {
  ++epoch_;
  // Linear KL annealing to vae_beta over the first 40 epochs.
  const double beta =
      config_.vae_beta * std::min(1.0, static_cast<double>(epoch_) / 40.0);

  // Shuffled pass over users with at least one training interaction.
  std::vector<int32_t> users;
  for (int32_t u = 0; u < dataset_->num_users; ++u) {
    if (dataset_->train_graph.UserDegree(u) > 0) users.push_back(u);
  }
  rng->Shuffle(&users);

  double total = 0.0;
  int64_t batches = 0;
  std::vector<train::Parameter*> params = Params();
  const int64_t bs = config_.vae_user_batch;
  for (size_t begin = 0; begin < users.size();
       begin += static_cast<size_t>(bs)) {
    const size_t end = std::min(users.size(), begin + static_cast<size_t>(bs));
    const std::vector<int32_t> chunk(users.begin() + static_cast<int64_t>(begin),
                                     users.begin() + static_cast<int64_t>(end));
    tensor::Matrix x_rows = HistoryRows(chunk);

    ag::Tape tape;
    ag::Var x = tape.Constant(x_rows);
    auto param = [&](train::Parameter* p) {
      return tape.Parameter(&p->value, &p->grad);
    };
    // Encoder.
    ag::Var h = ag::Tanh(ag::AddRowVector(ag::MatMul(x, param(&enc_w1_)),
                                          param(&enc_b1_)));
    ag::Var mu = ag::AddRowVector(ag::MatMul(h, param(&enc_w_mu_)),
                                  param(&enc_b_mu_));
    ag::Var logvar = ag::AddRowVector(ag::MatMul(h, param(&enc_w_logvar_)),
                                      param(&enc_b_logvar_));
    // Reparameterization: z = μ + ε ⊙ exp(logvar / 2).
    tensor::Matrix noise(tape.value(mu).rows(), tape.value(mu).cols());
    noise.GaussianInit(rng, 1.f);
    ag::Var std_dev = ag::Exp(ag::Scale(logvar, 0.5f));
    ag::Var z = ag::Add(mu, ag::Hadamard(std_dev, tape.Constant(noise)));
    // Decoder.
    ag::Var hd = ag::Tanh(ag::AddRowVector(ag::MatMul(z, param(&dec_w1_)),
                                           param(&dec_b1_)));
    ag::Var logits = ag::AddRowVector(ag::MatMul(hd, param(&dec_w2_)),
                                      param(&dec_b2_));
    // Multinomial negative log-likelihood: −mean_u Σ_i x_ui log_softmax_i.
    ag::Var log_probs = ag::LogSoftmaxRows(logits);
    ag::Var ll_terms = ag::Hadamard(log_probs, x);
    const float rows = static_cast<float>(chunk.size());
    ag::Var nll = ag::Scale(
        ag::Sum(ll_terms),
        -1.f / rows);
    // KL(q||p) = −0.5 Σ (1 + logvar − μ² − exp(logvar)) / B.
    ag::Var kl_terms = ag::Sub(ag::Sub(ag::AddScalar(logvar, 1.f),
                                       ag::Square(mu)),
                               ag::Exp(logvar));
    ag::Var kl = ag::Scale(ag::Sum(kl_terms), -0.5f / rows);
    ag::Var loss =
        ag::Add(nll, ag::Scale(kl, static_cast<float>(beta)));

    tape.Backward(loss);
    adam_.Step(params);
    const double lv = tape.value(loss).scalar();
    total += lv;
    if (batch_losses != nullptr) batch_losses->push_back(lv);
    ++batches;
  }
  return batches > 0 ? total / static_cast<double>(batches) : 0.0;
}

tensor::Matrix MultiVae::ScoreUsers(const std::vector<int32_t>& users) const {
  // Deterministic forward through μ.
  namespace t = layergcn::tensor;
  const tensor::Matrix x = HistoryRows(users);
  tensor::Matrix h =
      t::Tanh(t::AddRowVector(t::MatMul(x, enc_w1_.value), enc_b1_.value));
  tensor::Matrix mu =
      t::AddRowVector(t::MatMul(h, enc_w_mu_.value), enc_b_mu_.value);
  tensor::Matrix hd =
      t::Tanh(t::AddRowVector(t::MatMul(mu, dec_w1_.value), dec_b1_.value));
  return t::AddRowVector(t::MatMul(hd, dec_w2_.value), dec_b2_.value);
}

}  // namespace layergcn::models
